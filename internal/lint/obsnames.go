package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerObsNames enforces the observability naming convention at compile
// time: every constant metric/span name handed to internal/obs must be two
// or more dot-separated snake_case components ("mcts.leaf_eval"). The obs
// registry panics on malformed names at first use, but a name on a cold
// path (an error counter, say) can ship unexercised; this check moves the
// failure to `make check`.
var AnalyzerObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "metric/span names passed to internal/obs must be dotted snake_case",
	Run:  runObsNames,
}

// obsNameArg maps each name-taking function or method of internal/obs to
// the index of its name argument.
var obsNameArg = map[string]int{
	"Counter":     0,
	"Gauge":       0,
	"FloatGauge":  0,
	"Histogram":   0,
	"GaugeFunc":   0,
	"NewTrace":    0,
	"Lap":         0,
	"Span":        1,
	"ObserveSpan": 1,
}

func runObsNames(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if pathIsAny(p.Path, "internal/obs") {
		// The package defines the convention; its own tests deliberately
		// exercise malformed names.
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
				return true
			}
			idx, ok := obsNameArg[fn.Name()]
			if !ok || idx >= len(call.Args) {
				return true
			}
			arg := call.Args[idx]
			tv, ok := p.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic name; the runtime validator catches it
			}
			if name := constant.StringVal(tv.Value); !validObsName(name) {
				report(arg.Pos(), "obs name %q passed to %s is not dotted snake_case: want two or more dot-separated [a-z][a-z0-9_]* components like \"mcts.leaf_eval\"", name, fn.Name())
			}
			return true
		})
	}
}

// validObsName mirrors obs.ValidName; duplicated so the lint engine stays
// free of module-internal imports (it must be able to analyze a broken
// obs package without failing to build).
func validObsName(name string) bool {
	parts := strings.Split(name, ".")
	if len(parts) < 2 {
		return false
	}
	for _, part := range parts {
		if len(part) == 0 || part[0] < 'a' || part[0] > 'z' {
			return false
		}
		for i := 1; i < len(part); i++ {
			c := part[i]
			if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
				return false
			}
		}
	}
	return true
}
