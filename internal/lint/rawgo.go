package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerRawGo flags `go` statements outside the sanctioned concurrency
// homes — internal/parallel (the deterministic worker pool), internal/serve
// (the request plumbing), internal/cluster (the coordinator's forwarding,
// hedging, and lease loops), and client (hedged request racing): ad-hoc
// goroutines in compute code reintroduce schedule-dependent execution
// order, which is exactly what the pool's contiguous sharding and
// fixed-order reduction exist to prevent. Hot-path concurrency must go
// through parallel.For/SumChunks; daemon plumbing in cmd/ that genuinely
// needs a goroutine carries an //oarsmt:allow rawgo(reason) annotation.
// Note goroleak exempts only parallel and serve: every goroutine in
// cluster and client must still carry a context or done channel.
var AnalyzerRawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "go statements outside internal/parallel, internal/serve, internal/cluster and client",
	Run:  runRawGo,
}

func runRawGo(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if pathIsAny(p.Path, "internal/parallel", "internal/serve", "internal/cluster", "client") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				report(g.Pos(), "raw go statement: route concurrency through the deterministic worker pool (parallel.For) or annotate //oarsmt:allow rawgo(reason)")
			}
			return true
		})
	}
}
