package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerRawGo flags `go` statements outside internal/parallel (the
// deterministic worker pool) and internal/serve (the request plumbing):
// ad-hoc goroutines in compute code reintroduce schedule-dependent
// execution order, which is exactly what the pool's contiguous sharding
// and fixed-order reduction exist to prevent. Hot-path concurrency must go
// through parallel.For/SumChunks; daemon plumbing in cmd/ that genuinely
// needs a goroutine carries an //oarsmt:allow rawgo(reason) annotation.
var AnalyzerRawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "go statements outside internal/parallel and internal/serve",
	Run:  runRawGo,
}

func runRawGo(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if pathIsAny(p.Path, "internal/parallel", "internal/serve") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				report(g.Pos(), "raw go statement: route concurrency through the deterministic worker pool (parallel.For) or annotate //oarsmt:allow rawgo(reason)")
			}
			return true
		})
	}
}
