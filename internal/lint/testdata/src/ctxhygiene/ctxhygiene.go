// Package ctxhygiene is the golden corpus for the ctxhygiene analyzer:
// minting a root context inside a function that already receives one
// severs the caller's deadline and must be flagged; convenience wrappers
// without a ctx parameter must not.
package ctxhygiene

import "context"

func severedDeadline(ctx context.Context) error {
	sub := context.Background() // want "context.Background in a function that already receives a ctx"
	return work(sub)
}

func lazyTODO(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := work(context.TODO()); err != nil { // want "context.TODO in a function that already receives a ctx"
			return err
		}
	}
	return work(ctx)
}

// wrapper has no ctx parameter, so there is no caller context to drop:
// this is the sanctioned convenience-API shape.
func wrapper() error {
	return severedDeadline(context.Background())
}

func derived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(sub)
}

func work(ctx context.Context) error {
	return ctx.Err()
}
