// Package cgb is the dependency half of the call-graph unit-test corpus.
package cgb

import "time"

// Clock is a wall-clock source.
func Clock() int64 { return time.Now().UnixNano() }

// Pure reaches nothing.
func Pure(x int) int { return x * 2 }
