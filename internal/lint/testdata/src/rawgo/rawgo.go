// Package rawgo is the golden corpus for the rawgo analyzer: ad-hoc go
// statements outside the worker pool and the serving layer must be
// flagged; annotated plumbing must not.
package rawgo

func spawn() int {
	ch := make(chan int, 1)
	go func() { ch <- 1 }() // want "raw go statement"
	return <-ch
}

func spawnCall(done chan struct{}) {
	go close(done) // want "raw go statement"
}

func annotated() {
	done := make(chan struct{})
	//oarsmt:allow rawgo(corpus: demonstrates an annotated exemption)
	go close(done)
	<-done
}
