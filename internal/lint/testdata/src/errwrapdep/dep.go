// Package errwrapdep is the dependency half of the errwrap golden corpus:
// bare, sanitized, and pass-through error creators one package below the
// declared boundaries.
package errwrapdep

import (
	"errors"
	"fmt"
)

// ErrDep is the corpus's declared sentinel.
var ErrDep = errors.New("dep: boom")

// Bare creates an unclassifiable error that escapes to a boundary.
func Bare() error {
	return errors.New("dep: bare") // want "errors.New creates an error that can cross the errwrap.Boundary boundary"
}

// Wrapped sanitizes with the sentinel; the walk stops here.
func Wrapped() error {
	return fmt.Errorf("%w: context", ErrDep)
}

// PassThrough wraps without a sentinel: the wrap neither sanitizes nor
// trips the check — the bare creation below it is the finding.
func PassThrough() error {
	if err := Bare(); err != nil {
		return fmt.Errorf("passthrough: %w", err)
	}
	return nil
}
