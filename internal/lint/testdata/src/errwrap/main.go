// Golden corpus for the errwrap analyzer: boundaries are declared with
// the //oarsmt:errboundary marker (the corpus package path is neither the
// module root nor internal/serve, so no function is a boundary by
// accident).
package errwrap

import (
	"errors"
	"fmt"

	dep "oarsmt/internal/lint/testdata/src/errwrapdep"
)

// Boundary reaches dep.Bare through the pass-through wrapper; the finding
// lands at the creation site in errwrapdep.
//
//oarsmt:errboundary
func Boundary() error {
	return dep.PassThrough()
}

// CleanBoundary's subtree is sanitized at dep.Wrapped, so the walk never
// reaches anything bare.
//
//oarsmt:errboundary
func CleanBoundary() error {
	return dep.Wrapped()
}

// OwnBare creates the bare error directly in the boundary function.
//
//oarsmt:errboundary
func OwnBare() (int, error) {
	return 0, fmt.Errorf("own bare") // want "fmt.Errorf without %w creates an error that can cross the errwrap.OwnBare boundary"
}

// SuppressedBoundary carries a reviewed errwrap annotation at the
// creation site.
//
//oarsmt:errboundary
func SuppressedBoundary() error {
	return errors.New("reviewed") //oarsmt:allow errwrap(corpus: reviewed bare error)
}

// helper is bare but unreachable from any boundary.
func helper() error { return fmt.Errorf("helper bare") }
