// Package detmap is the golden corpus for the detmap analyzer: map ranges
// whose iteration order can leak into results must be flagged, the
// collect-then-sort idiom and annotated order-insensitive reductions must
// not. Each // want comment is a regexp the harness matches against the
// diagnostic reported on that line.
package detmap

import (
	"sort"
	"strings"
)

// collectThenSort is the sanctioned idiom: keys are gathered and sorted
// before use, so iteration order cannot escape.
func collectThenSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// filteredCollect mixes filtering and continue branches into the
// collection loop; still order-safe because the slice is sorted after.
func filteredCollect(m map[string]int) []string {
	var keep []string
	for k, v := range m {
		if k == "" {
			continue
		}
		if v > 0 {
			keep = append(keep, k)
		}
	}
	sort.Strings(keep)
	return keep
}

// leakOrder appends in map order and never sorts: the result depends on
// the iteration order of the map.
func leakOrder(m map[string]int) string {
	var parts []string
	for k := range m { // want "range over map m"
		parts = append(parts, k)
	}
	return strings.Join(parts, ",")
}

// floatSum accumulates floats in map order: float addition is not
// associative, so even a "reduction" leaks the order into rounding.
func floatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "range over map m"
		total += v
	}
	return total
}

// minScan is order-insensitive by construction and carries the annotation
// the analyzer demands for such proofs.
func minScan(m map[int]bool) int {
	best := -1
	//oarsmt:allow detmap(pure min-scan; the result is the same for every visit order)
	for k := range m {
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}

// trailingAllow exercises the trailing-comment placement of the
// annotation on the offending line itself.
func trailingAllow(m map[int]int) int {
	n := 0
	for range m { //oarsmt:allow detmap(pure cardinality count; order-insensitive)
		n++
	}
	return n
}
