// Package dettaintdep is the dependency half of the dettaint golden
// corpus: it holds nondeterminism sources one package boundary away from
// the deterministic roots declared in the dettaint package, which is
// exactly the blind spot the interprocedural analyzer exists to cover.
package dettaintdep

import "time"

// Stamp reads the wall clock; reached from a det root it is a finding at
// this site, with the cross-package call path in the message.
func Stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock read .time.Now. reaches deterministic root"
}

// Pure is reachable from roots but has nothing to report.
func Pure(x int) int { return x + 1 }
