// Package obsnames is the golden corpus for the obsnames analyzer:
// constant metric/span names handed to internal/obs must be dotted
// snake_case; dynamic names are left to the runtime validator.
package obsnames

import (
	"context"
	"time"

	"oarsmt/internal/obs"
)

// badName is constant-folded into its use sites, so naming a metric
// through a const is checked just like a literal.
const badName = "HeapPops"

func registry(ctx context.Context) {
	obs.Default.Counter("route.heap_pops").Inc()                       // fine
	obs.Default.Counter(badName)                                       // want "obs name .HeapPops. passed to Counter is not dotted snake_case"
	obs.Default.Gauge("serve.queueDepth")                              // want "obs name .serve.queueDepth. passed to Gauge is not dotted snake_case"
	obs.Default.FloatGauge("rl.loss")                                  // fine
	obs.Default.Histogram("latency")                                   // want "obs name .latency. passed to Histogram is not dotted snake_case"
	obs.Default.GaugeFunc("serve.2queue", func() float64 { return 0 }) // want "obs name .serve.2queue. passed to GaugeFunc is not dotted snake_case"
}

func spans(ctx context.Context) {
	ctx, end := obs.Span(ctx, "core.route") // fine
	defer end()
	obs.Span(ctx, "core.Route")                   // want "obs name .core.Route. passed to Span is not dotted snake_case"
	obs.ObserveSpan(ctx, "rl.epoch", time.Second) // fine
	obs.ObserveSpan(ctx, "rl epoch", time.Second) // want "obs name .rl.epoch. passed to ObserveSpan is not dotted snake_case"
	obs.NewTrace("route")                         // want "obs name .route. passed to NewTrace is not dotted snake_case"
	obs.NewTrace("oarsmt.route")                  // fine
}

func laps(sw *obs.Stopwatch) {
	sw.Lap("mcts.select") // fine
	sw.Lap("mcts.Select") // want "obs name .mcts.Select. passed to Lap is not dotted snake_case"
}

// dynamic names cannot be judged statically and are skipped.
func dynamic(which string) {
	obs.Default.Counter("route." + which)
}
