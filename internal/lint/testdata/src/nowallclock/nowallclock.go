// Package nowallclock is the golden corpus for the nowallclock analyzer:
// wall-clock reads in deterministic library code must be flagged;
// annotated timing metadata and non-clock uses of package time must not.
package nowallclock

import "time"

func elapsed() time.Duration {
	start := time.Now() // want "time.Now outside timing code"
	work()
	return time.Since(start) // want "time.Since outside timing code"
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "time.Until outside timing code"
}

// conversions and constants of package time are not wall-clock reads.
func epoch() time.Time {
	return time.Unix(0, 0).Add(5 * time.Second)
}

func annotated() time.Time {
	//oarsmt:allow nowallclock(corpus: demonstrates an annotated exemption)
	return time.Now()
}

func work() {}
