// Golden corpus for the goroleak analyzer: goroutines must have a
// context or channel plumbed in — as an argument, captured in the
// literal's body, or used inside a same-package named callee.
package goroleak

import "context"

// leakyLit spawns a literal nothing can stop.
func leakyLit() {
	go func() { // want "goroutine has neither a context nor a done channel"
		for {
		}
	}()
}

// ctxLit captures a context: stoppable.
func ctxLit(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// chanArg passes a done channel as an argument: stoppable.
func chanArg(done chan struct{}) {
	go worker(done)
}

func worker(done chan struct{}) {
	<-done
}

// S's loop method selects on its stop channel, so go s.loop() is vetted
// by looking inside the same-package body.
type S struct {
	stop chan struct{}
}

func (s *S) Start() {
	go s.loop()
}

func (s *S) loop() {
	for {
		select {
		case <-s.stop:
			return
		}
	}
}

// leakyNamed spawns a named function with no stop machinery at all.
func leakyNamed() {
	go spin() // want "goroutine has neither a context nor a done channel"
}

func spin() {
	for {
	}
}

// suppressed carries a reviewed annotation.
func suppressed() {
	go spin() //oarsmt:allow goroleak(corpus: reviewed fire-and-forget)
}
