// Golden corpus for the dettaint analyzer: deterministic roots are
// declared with the //oarsmt:detroot marker; sources are direct, one
// package away (dettaintdep), sanctioned by a legacy allow annotation, or
// suppressed by a dettaint-specific one.
package dettaint

import (
	"math/rand"
	"time"

	dep "oarsmt/internal/lint/testdata/src/dettaintdep"
)

// Root reaches a cross-package clock read, a global rand call, and an
// order-escaping map range.
//
//oarsmt:detroot
func Root(xs map[int]int) int {
	s := dep.Stamp()
	r := rand.Int() // want "global math/rand call .rand.Int. reaches deterministic root"
	t := 0
	for k := range xs { // want "map iteration order .range over map xs. reaches deterministic root"
		t += k
	}
	return int(s) + r + t
}

// NotRoot also reaches Stamp, but nothing marks it deterministic, so it
// contributes no findings.
func NotRoot() int64 { return dep.Stamp() }

// CleanRoot only reaches pure code.
//
//oarsmt:detroot
func CleanRoot(x int) int { return dep.Pure(x) }

// SanctionedRoot's clock read carries a reviewed legacy annotation, which
// sanctions the source for the taint engine too.
//
//oarsmt:detroot
func SanctionedRoot() int64 {
	return time.Now().UnixNano() //oarsmt:allow nowallclock(corpus: reviewed timing exception)
}

// SuppressedRoot's source is excused with a dettaint-specific annotation.
//
//oarsmt:detroot
func SuppressedRoot() int {
	return rand.Int() //oarsmt:allow dettaint(corpus: reviewed randomness)
}
