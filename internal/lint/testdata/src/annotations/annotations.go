// Package annotations is the golden corpus for the //oarsmt:allow
// machinery itself: malformed annotations, unknown analyzer names, empty
// reasons and stale (non-suppressing) annotations are all findings — a
// typo in a suppression must never silently disable it.
package annotations

import "sort"

// clean is ordinary allowed code so the package has something to check.
func clean(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

//oarsmt:allow detmap missing parentheses // want "malformed annotation"

//oarsmt:allow nosuchanalyzer(reason here) // want "unknown analyzer"

//oarsmt:allow detmap() // want "empty reason"

//oarsmt:allow detmap(this line suppresses nothing at all) // want "unused //oarsmt:allow detmap annotation"
