// Package cga is the main half of the call-graph unit-test corpus:
// cross-package edges into cgb, a clean function, and a mutual recursion
// whose taint must converge under the fixpoint.
package cga

import dep "oarsmt/internal/lint/testdata/src/cgb"

// A reaches the clock through one cross-package edge.
func A() int64 { return dep.Clock() }

// B reaches only pure code.
func B(x int) int { return dep.Pure(x) }

// Rec1 and Rec2 are mutually recursive; both reach the clock through
// taint, exercising cycle convergence.
func Rec1(n int) int {
	if n <= 0 {
		return 0
	}
	return Rec2(n - 1)
}

func Rec2(n int) int { return Rec1(n) + taint() }

func taint() int { return int(dep.Clock()) }
