// Package seededrand is the golden corpus for the seededrand analyzer:
// math/rand top-level functions draw from the shared global source and
// must be flagged; explicit seeded instances and type references must not.
package seededrand

import "math/rand"

func draw() int {
	return rand.Intn(10) // want "rand.Intn uses the shared global source"
}

func deal(n int) []int {
	return rand.Perm(n) // want "rand.Perm uses the shared global source"
}

// Taking a function value is just as much a use as calling it.
var shuffle = rand.Shuffle // want "rand.Shuffle uses the shared global source"

// seeded is the sanctioned pattern: an explicit per-purpose generator.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Types and methods on instances are untouched.
func methods(r *rand.Rand, src rand.Source) int {
	_ = src
	return r.Intn(3)
}
