// Golden corpus for the spanend analyzer: every obs.Span open must be
// deferred, ended on all return paths, or handed off.
package spanend

import (
	"context"

	"oarsmt/internal/obs"
)

func work() {}

// deferred is the canonical idiom.
func deferred(ctx context.Context) {
	ctx, end := obs.Span(ctx, "corpus.ok")
	defer end()
	_ = ctx
	work()
}

// discarded drops the end function outright.
func discarded(ctx context.Context) {
	_, _ = obs.Span(ctx, "corpus.discarded") // want "end function is discarded"
}

// bare discards both results.
func bare(ctx context.Context) {
	obs.Span(ctx, "corpus.bare") // want "opened and immediately discarded"
}

// earlyReturn ends the span on the fall-through path only.
func earlyReturn(ctx context.Context, fail bool) error {
	_, end := obs.Span(ctx, "corpus.early")
	if fail {
		return nil // want "still open"
	}
	end()
	return nil
}

// inlineOK brackets one phase and ends before returning.
func inlineOK(ctx context.Context) {
	_, end := obs.Span(ctx, "corpus.inline")
	work()
	end()
}

// bothBranches ends the span in every branch before the final return.
func bothBranches(ctx context.Context, fail bool) error {
	_, end := obs.Span(ctx, "corpus.branches")
	if fail {
		end()
		return nil
	}
	end()
	return nil
}

// loopOpen opens a span per iteration but only ends it sometimes.
func loopOpen(ctx context.Context) {
	for i := 0; i < 3; i++ {
		_, end := obs.Span(ctx, "corpus.loop") // want "not ended before the iteration ends"
		if i == 0 {
			end()
		}
	}
}

// handoff passes the end function along: ownership moved, trusted.
func handoff(ctx context.Context) {
	_, end := obs.Span(ctx, "corpus.handoff")
	finishLater(end)
}

func finishLater(end func()) { end() }

// suppressed carries a reviewed annotation.
func suppressed(ctx context.Context) {
	obs.Span(ctx, "corpus.suppressed") //oarsmt:allow spanend(corpus: reviewed)
}
