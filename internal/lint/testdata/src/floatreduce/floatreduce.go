// Package floatreduce is the golden corpus for the floatreduce analyzer:
// float accumulation into variables captured by parallel callbacks must be
// flagged; shard-private accumulators, shard-indexed slots and
// parallel.SumChunks must not.
package floatreduce

import "oarsmt/internal/parallel"

func capturedAdd(xs []float64) float64 {
	total := 0.0
	parallel.For(len(xs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			total += xs[i] // want "float accumulation into captured .total."
		}
	})
	return total
}

func capturedSub(xs []float64) float64 {
	var t float64
	parallel.ForWith(4, len(xs), func(_, lo, hi int) {
		t -= xs[lo] // want "float accumulation into captured .t."
	})
	return t
}

func capturedInc(n int) float64 {
	var ticks float64
	parallel.For(n, func(_, lo, hi int) {
		ticks++ // want "float accumulation into captured .ticks."
	})
	return ticks
}

// shardPrivate is the sanctioned manual pattern: a local accumulator per
// shard, merged in shard order afterwards.
func shardPrivate(xs []float64) float64 {
	w := 4
	sums := make([]float64, w)
	parallel.ForWith(w, len(xs), func(shard, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		sums[shard] = s
	})
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total
}

// sumChunks is the primary sanctioned pattern; its partial callback is the
// reduction site by design and is not flagged.
func sumChunks(xs []float64) float64 {
	return parallel.SumChunks(len(xs), func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		return s
	})
}
