package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerSpanend verifies that every obs.Span open is paired with its
// end on every return path. A span whose end function is dropped or
// skipped on an early return serialises with a zero duration — the trace
// silently lies about exactly the operation that errored, which is when
// the trace is being read. The robust idiom is
//
//	ctx, end := obs.Span(ctx, "core.route")
//	defer end()
//
// Mid-function spans (bracketing one phase, not the whole call) may call
// end() directly, but the analyzer then walks the statement structure and
// reports any return that can fire between the open and the end.
var AnalyzerSpanend = &Analyzer{
	Name: "spanend",
	Doc:  "obs spans not ended on every return path",
	Run:  runSpanend,
}

func runSpanend(p *Package, report func(pos token.Pos, format string, args ...any)) {
	eachFunc(p, func(_ *ast.File, fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 {
				return true
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok || !isObsSpanCall(p, call) {
				return true
			}
			name := spanName(p, call)
			if len(assign.Lhs) != 2 {
				return true
			}
			endIdent, ok := assign.Lhs[1].(*ast.Ident)
			if !ok || endIdent.Name == "_" {
				report(call.Pos(), "obs span %s opened but its end function is discarded: the span will serialise with zero duration; keep it and defer it", name)
				return true
			}
			endObj := p.Info.Defs[endIdent]
			if endObj == nil {
				endObj = p.Info.Uses[endIdent]
			}
			if endObj == nil {
				return true
			}
			checkSpanEnded(p, fd, assign, call, name, endObj, report)
			return true
		})
		// A span opened as a bare expression discards both results.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			expr, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			if call, ok := expr.X.(*ast.CallExpr); ok && isObsSpanCall(p, call) {
				report(call.Pos(), "obs span %s opened and immediately discarded: bind the end function and defer it", spanName(p, call))
			}
			return true
		})
	})
}

// isObsSpanCall matches obs.Span(ctx, name) calls.
func isObsSpanCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "Span" && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/obs")
}

// spanName extracts the constant span name for the message, or "".
func spanName(p *Package, call *ast.CallExpr) string {
	if len(call.Args) < 2 {
		return "(unknown)"
	}
	if tv, ok := p.Info.Types[call.Args[1]]; ok && tv.Value != nil {
		return tv.Value.String()
	}
	return "(dynamic)"
}

// checkSpanEnded verifies the end function is either deferred or called
// before every return that follows the open. The walk is a structured
// must-have-ended analysis over the statement tree: branch bodies are
// analysed with the state at the branch, and a return while the span is
// open is a finding. If the end function escapes (stored, passed along),
// the analyzer trusts the caller and stays silent.
func checkSpanEnded(p *Package, fd *ast.FuncDecl, open *ast.AssignStmt, call *ast.CallExpr, name string, endObj types.Object, report func(pos token.Pos, format string, args ...any)) {
	isEndCall := func(s ast.Stmt) bool {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			return false
		}
		c, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(c.Fun).(*ast.Ident)
		return ok && p.Info.Uses[id] == endObj
	}
	// If the end function escapes (passed as an argument, reassigned),
	// ownership moved and the analyzer trusts the new owner.
	escapes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if ok {
			for _, arg := range c.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && p.Info.Uses[id] == endObj {
					escapes = true
				}
			}
		}
		if as, ok := n.(*ast.AssignStmt); ok && as != open {
			for _, rhs := range as.Rhs {
				ast.Inspect(rhs, func(rn ast.Node) bool {
					if id, ok := rn.(*ast.Ident); ok && p.Info.Uses[id] == endObj {
						escapes = true
					}
					return true
				})
			}
		}
		return true
	})
	if escapes {
		return
	}
	deferred := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(d.Call.Fun).(*ast.Ident); ok && p.Info.Uses[id] == endObj {
			deferred = true
		}
		return true
	})
	if deferred {
		return
	}

	// Structured walk: find the block containing the open, then verify no
	// return can fire before an end() on that path.
	var walk func(stmts []ast.Stmt, ended bool, active bool) (bool, bool)
	// walk returns (ended-after, active-after); active becomes true once
	// the open statement is passed.
	walk = func(stmts []ast.Stmt, ended bool, active bool) (bool, bool) {
		for _, st := range stmts {
			if st == ast.Stmt(open) {
				active, ended = true, false
				continue
			}
			if !active {
				// The open may sit inside this statement (nested block).
				if containsNode(st, open) {
					switch s := st.(type) {
					case *ast.BlockStmt:
						ended, active = walk(s.List, ended, active)
					case *ast.IfStmt:
						ended, active = walkIf(walk, s, ended, active)
					case *ast.ForStmt:
						ended, active = walk(s.Body.List, ended, active)
						// A span opened inside a loop must end inside it.
						if active && !ended {
							report(call.Pos(), "obs span %s opened in a loop is not ended before the iteration ends", name)
							active = false
						}
					case *ast.RangeStmt:
						ended, active = walk(s.Body.List, ended, active)
						if active && !ended {
							report(call.Pos(), "obs span %s opened in a loop is not ended before the iteration ends", name)
							active = false
						}
					default:
						// Switch/select/etc. hosting the open: too exotic,
						// trust it.
						active = false
					}
				}
				continue
			}
			// Active: the span is open on this path.
			if isEndCall(st) {
				ended = true
				continue
			}
			switch s := st.(type) {
			case *ast.ReturnStmt:
				if !ended {
					report(s.Pos(), "return while obs span %s (opened at line %d) is still open: end it on this path or defer the end function", name, p.Fset.Position(call.Pos()).Line)
				}
			case *ast.IfStmt:
				ended, active = walkIf(walk, s, ended, active)
			case *ast.BlockStmt:
				ended, active = walk(s.List, ended, active)
			case *ast.ForStmt:
				walk(s.Body.List, ended, active)
			case *ast.RangeStmt:
				walk(s.Body.List, ended, active)
			case *ast.SwitchStmt:
				for _, cc := range s.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						walk(c.Body, ended, active)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, cc := range s.Body.List {
					if c, ok := cc.(*ast.CaseClause); ok {
						walk(c.Body, ended, active)
					}
				}
			}
		}
		return ended, active
	}
	walk(fd.Body.List, false, false)
}

// walkIf analyses an if/else with the walk function: both branches start
// from the current state; the state after the if is the conjunction
// (ended only if every branch ends or exits).
func walkIf(walk func([]ast.Stmt, bool, bool) (bool, bool), s *ast.IfStmt, ended, active bool) (bool, bool) {
	thenEnded, _ := walk(s.Body.List, ended, active)
	elseEnded := ended
	if s.Else != nil {
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseEnded, _ = walk(e.List, ended, active)
		case *ast.IfStmt:
			elseEnded, _ = walkIf(walk, e, ended, active)
		}
	}
	// A branch that unconditionally returns has been checked inside walk;
	// the fall-through state is the weakest of the branches that can fall
	// through. Without full CFG reasoning, take the conservative meet.
	return thenEnded && elseEnded, active
}

// containsNode reports whether needle is within the subtree of hay.
func containsNode(hay ast.Node, needle ast.Node) bool {
	found := false
	ast.Inspect(hay, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}
