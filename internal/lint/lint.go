// Package lint is the repository's dependency-free static-analysis engine.
// It enforces the determinism and concurrency contracts that the rest of
// the codebase only states in prose: bit-identical routing results at any
// worker count, cache-replay equality in internal/serve, and reproducible
// MCTS-generated training labels. One unsorted map range or stray
// time.Now() in a reward path silently breaks those guarantees; this
// package makes the contract machine-checked.
//
// The engine is built exclusively on the standard library (go/parser,
// go/ast, go/types with the source importer) because the module has zero
// dependencies and the build environment is offline. See DESIGN.md
// "Static analysis" for the analyzer catalogue and the annotation grammar.
//
// # Suppressions
//
// A finding that is a provably order-insensitive reduction (or otherwise
// intentional) is whitelisted in place with
//
//	//oarsmt:allow <analyzer>(<reason>)
//
// on the offending line or the line directly above it. The runner verifies
// that every annotation suppresses at least one finding; a stale
// annotation is itself reported, so suppressions cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one type-checked package as the analyzers see it.
type Package struct {
	// Path is the import path ("oarsmt/internal/route"). Corpus packages
	// loaded from testdata get a synthetic "testdata/<name>" path.
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	// Types and Info come from go/types; Info is always populated even
	// when type checking reported errors (analysis degrades gracefully).
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds non-fatal type-checker errors, mostly useful when
	// debugging the loader itself.
	TypeErrors []error
}

// An Analyzer checks one invariant over a package and reports findings
// through the report callback.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package, report func(pos token.Pos, format string, args ...any))
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerDetmap,
		AnalyzerNoWallClock,
		AnalyzerSeededRand,
		AnalyzerRawGo,
		AnalyzerFloatReduce,
		AnalyzerCtxHygiene,
		AnalyzerObsNames,
	}
}

// ByName resolves an analyzer by name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the given analyzers over the packages, applies the
// //oarsmt:allow suppressions, and returns the surviving diagnostics
// sorted by position. Unused annotations and annotation grammar errors are
// appended as findings of the pseudo-analyzer "allow".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	enabled := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	for _, p := range pkgs {
		anns, annErrs := collectAnnotations(p)
		var raw []Diagnostic
		for _, a := range analyzers {
			a := a
			a.Run(p, func(pos token.Pos, format string, args ...any) {
				raw = append(raw, Diagnostic{
					Pos:      p.Fset.Position(pos),
					Analyzer: a.Name,
					Message:  fmt.Sprintf(format, args...),
				})
			})
		}
		for _, d := range raw {
			if !suppress(anns, d) {
				diags = append(diags, d)
			}
		}
		for _, e := range annErrs {
			diags = append(diags, e)
		}
		// An annotation must earn its keep: if it suppressed nothing, the
		// code it excused has been fixed (or the annotation is wrong) and
		// it must be deleted. Annotations for analyzers that were not run
		// this invocation are exempt rather than falsely "unused".
		for _, an := range anns {
			if !an.used && enabled[an.analyzer] {
				diags = append(diags, Diagnostic{
					Pos:      an.pos,
					Analyzer: "allow",
					Message: fmt.Sprintf(
						"unused //oarsmt:allow %s annotation: it suppresses no finding; delete it", an.analyzer),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppress consumes a matching annotation for the diagnostic, if any.
func suppress(anns []*annotation, d Diagnostic) bool {
	for _, an := range anns {
		if an.analyzer != d.Analyzer || an.pos.Filename != d.Pos.Filename {
			continue
		}
		// The annotation covers its own line (trailing comment) and the
		// line directly below (comment on its own line above the code).
		if d.Pos.Line == an.pos.Line || d.Pos.Line == an.pos.Line+1 {
			an.used = true
			return true
		}
	}
	return false
}

// detPackages are the import-path suffixes of the packages whose outputs
// must be bit-reproducible: anything feeding tree construction,
// serialization, training labels, or the serving cache key.
var detPackages = []string{
	"internal/geom",
	"internal/grid",
	"internal/layout",
	"internal/route",
	"internal/mcts",
	"internal/core",
	"internal/nn",
	"internal/tensor",
	"internal/rl",
	// The route store's segment bytes must be reproducible (compaction
	// rewrites are compared bit-for-bit across machines), so the whole
	// package is held to collect-then-sort iteration.
	"internal/store",
}

// isDeterministicFile reports whether detmap applies to the file: every
// file of a deterministic package, plus the canonical-hash half of
// internal/serve (serve/hash.go feeds the cache key, so its iteration
// order is part of the serving contract even though the rest of serve is
// free to use maps for bookkeeping). Corpus packages under testdata are
// always in scope so the golden tests exercise the analyzer.
func isDeterministicFile(p *Package, filename string) bool {
	if strings.HasPrefix(p.Path, "testdata/") {
		return true
	}
	for _, suf := range detPackages {
		if p.Path == "oarsmt/"+suf || strings.HasSuffix(p.Path, "/"+suf) {
			return true
		}
	}
	return strings.HasSuffix(filename, "internal/serve/hash.go")
}

// pathIsAny reports whether the package path matches one of the given
// module-relative suffixes.
func pathIsAny(path string, sufs ...string) bool {
	for _, suf := range sufs {
		if path == "oarsmt/"+suf || strings.HasSuffix(path, "/"+suf) || path == suf {
			return true
		}
	}
	return false
}
