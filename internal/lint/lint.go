// Package lint is the repository's dependency-free static-analysis engine.
// It enforces the determinism and concurrency contracts that the rest of
// the codebase only states in prose: bit-identical routing results at any
// worker count, cache-replay equality in internal/serve, and reproducible
// MCTS-generated training labels. One unsorted map range or stray
// time.Now() in a reward path silently breaks those guarantees; this
// package makes the contract machine-checked.
//
// The engine is built exclusively on the standard library (go/parser,
// go/ast, go/types with the source importer) because the module has zero
// dependencies and the build environment is offline.
//
// # Architecture
//
// Analyzers come in two shapes. Package-local analyzers (detmap, rawgo,
// spanend, ...) check one package's AST at a time. Interprocedural
// analyzers (dettaint, errwrap) run over a Program: a cross-package call
// graph with per-function summaries — nondeterminism sources reached,
// sentinel errors wrapped — propagated to a fixpoint, so a clock read two
// package boundaries below a deterministic root is still found. See
// DESIGN.md "Static analysis" for the analyzer catalogue, the summary
// machinery, and the annotation grammar.
//
// # Suppressions
//
// A finding that is a provably order-insensitive reduction (or otherwise
// intentional) is whitelisted in place with
//
//	//oarsmt:allow <analyzer>(<reason>)
//
// on the offending line or the line directly above it. The runner verifies
// that every annotation suppresses at least one finding; a stale
// annotation is itself reported, so suppressions cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one type-checked package as the analyzers see it.
type Package struct {
	// Path is the import path ("oarsmt/internal/route"). Corpus packages
	// loaded from testdata get a synthetic "testdata/<name>" path.
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	// Types and Info come from go/types; Info is always populated even
	// when type checking reported errors (analysis degrades gracefully).
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds non-fatal type-checker errors, mostly useful when
	// debugging the loader itself.
	TypeErrors []error
}

// An Analyzer checks one invariant. Exactly one of Run (package-local)
// and RunProgram (interprocedural, needs the whole-program call graph and
// summaries) is set.
type Analyzer struct {
	Name string
	Doc  string
	// Run checks one package in isolation.
	Run func(p *Package, report func(pos token.Pos, format string, args ...any))
	// RunProgram checks the whole program; findings may land in any
	// package (the engine resolves suppressions by position).
	RunProgram func(prog *Program, report func(pos token.Pos, format string, args ...any))
}

// Interprocedural reports whether the analyzer needs a whole-program view.
func (a *Analyzer) Interprocedural() bool { return a.RunProgram != nil }

// Analyzers returns the full suite in stable order: the package-local
// analyzers first, then the interprocedural ones.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerDetmap,
		AnalyzerNoWallClock,
		AnalyzerSeededRand,
		AnalyzerRawGo,
		AnalyzerFloatReduce,
		AnalyzerCtxHygiene,
		AnalyzerObsNames,
		AnalyzerGoroleak,
		AnalyzerSpanend,
		AnalyzerDettaint,
		AnalyzerErrwrap,
	}
}

// ByName resolves an analyzer by name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// SplitAnalyzers partitions the set into package-local and
// interprocedural analyzers, preserving order.
func SplitAnalyzers(analyzers []*Analyzer) (local, program []*Analyzer) {
	for _, a := range analyzers {
		if a.Interprocedural() {
			program = append(program, a)
		} else {
			local = append(local, a)
		}
	}
	return local, program
}

// Stats accumulates per-analyzer wall time across a run; pass nil to skip
// timing entirely.
type Stats struct {
	ByAnalyzer map[string]time.Duration
}

// NewStats returns an empty timing collector.
func NewStats() *Stats { return &Stats{ByAnalyzer: make(map[string]time.Duration)} }

func (s *Stats) add(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.ByAnalyzer[name] += d
}

// timed runs f, attributing its wall time to name. Timing is measurement
// of the linter itself, never an input to any analyzed result.
func (s *Stats) timed(name string, f func()) {
	if s == nil {
		f()
		return
	}
	start := time.Now() //oarsmt:allow nowallclock(analyzer self-timing for make lint -timing; measurement only, never analysis input)
	f()
	s.add(name, time.Since(start)) //oarsmt:allow nowallclock(analyzer self-timing for make lint -timing; measurement only, never analysis input)
}

// Run executes the given analyzers over the packages, applies the
// //oarsmt:allow suppressions, and returns the surviving diagnostics
// sorted by position. Unused annotations and annotation grammar errors are
// appended as findings of the pseudo-analyzer "allow". Interprocedural
// analyzers run over a Program built from exactly the given packages.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	local, program := SplitAnalyzers(analyzers)
	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, RunLocal(p, local, true, nil)...)
	}
	if len(program) > 0 {
		prog := BuildProgram(pkgs)
		diags = append(diags, RunProgram(prog, program, false, nil)...)
	}
	SortDiagnostics(diags)
	return diags
}

// RunLocal executes package-local analyzers over one package and applies
// suppressions. When withGrammar is set, malformed //oarsmt:allow
// annotations are reported here (exactly one of the local/program passes
// should claim them, or they double-report). The result is the package's
// complete, cache-ready local diagnostic set, sorted.
func RunLocal(p *Package, analyzers []*Analyzer, withGrammar bool, stats *Stats) []Diagnostic {
	anns, annErrs := collectAnnotations(p)
	var raw []Diagnostic
	for _, a := range analyzers {
		a := a
		stats.timed(a.Name, func() {
			a.Run(p, func(pos token.Pos, format string, args ...any) {
				raw = append(raw, Diagnostic{
					Pos:      p.Fset.Position(pos),
					Analyzer: a.Name,
					Message:  fmt.Sprintf(format, args...),
				})
			})
		})
	}
	diags := applySuppressions(anns, raw)
	if withGrammar {
		diags = append(diags, annErrs...)
	}
	diags = append(diags, unusedAnnotations(anns, analyzers)...)
	SortDiagnostics(diags)
	return diags
}

// RunProgram executes interprocedural analyzers over the program and
// applies suppressions from whichever package each finding lands in. The
// result is the program-wide, cache-ready diagnostic set, sorted.
func RunProgram(prog *Program, analyzers []*Analyzer, withGrammar bool, stats *Stats) []Diagnostic {
	var anns []*annotation
	var annErrs []Diagnostic
	for _, p := range prog.Pkgs {
		a, e := collectAnnotations(p)
		anns = append(anns, a...)
		annErrs = append(annErrs, e...)
	}
	var raw []Diagnostic
	for _, a := range analyzers {
		a := a
		stats.timed(a.Name, func() {
			a.RunProgram(prog, func(pos token.Pos, format string, args ...any) {
				raw = append(raw, Diagnostic{
					Pos:      prog.Fset().Position(pos),
					Analyzer: a.Name,
					Message:  fmt.Sprintf(format, args...),
				})
			})
		})
	}
	diags := applySuppressions(anns, raw)
	if withGrammar {
		diags = append(diags, annErrs...)
	}
	diags = append(diags, unusedAnnotations(anns, analyzers)...)
	SortDiagnostics(diags)
	return diags
}

// Fset returns the shared file set of the program's packages.
func (prog *Program) Fset() *token.FileSet {
	if len(prog.Pkgs) > 0 {
		return prog.Pkgs[0].Fset
	}
	return token.NewFileSet()
}

// applySuppressions drops diagnostics covered by a matching annotation,
// marking those annotations used.
func applySuppressions(anns []*annotation, raw []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range raw {
		if !suppress(anns, d) {
			out = append(out, d)
		}
	}
	return out
}

// unusedAnnotations reports annotations for enabled analyzers that
// suppressed nothing: the code they excused has been fixed (or the
// annotation is wrong) and they must be deleted. Annotations for
// analyzers outside the enabled set are exempt rather than falsely
// "unused".
func unusedAnnotations(anns []*annotation, enabled []*Analyzer) []Diagnostic {
	names := make(map[string]bool, len(enabled))
	for _, a := range enabled {
		names[a.Name] = true
	}
	var out []Diagnostic
	for _, an := range anns {
		if !an.used && names[an.analyzer] {
			out = append(out, Diagnostic{
				Pos:      an.pos,
				Analyzer: "allow",
				Message: fmt.Sprintf(
					"unused //oarsmt:allow %s annotation: it suppresses no finding; delete it", an.analyzer),
			})
		}
	}
	return out
}

// SortDiagnostics orders findings by file, line, column, analyzer — the
// stable order the -json schema documents.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// suppress consumes a matching annotation for the diagnostic, if any.
func suppress(anns []*annotation, d Diagnostic) bool {
	for _, an := range anns {
		if an.analyzer != d.Analyzer || an.pos.Filename != d.Pos.Filename {
			continue
		}
		// The annotation covers its own line (trailing comment) and the
		// line directly below (comment on its own line above the code).
		if d.Pos.Line == an.pos.Line || d.Pos.Line == an.pos.Line+1 {
			an.used = true
			return true
		}
	}
	return false
}

// detPackages are the import-path suffixes of the packages whose outputs
// must be bit-reproducible: anything feeding tree construction,
// serialization, training labels, or the serving cache key. detmap
// enforces map-range hygiene per site inside them; dettaint picks up
// where the list ends, following actual call paths out of the
// deterministic roots into any package.
var detPackages = []string{
	"internal/geom",
	"internal/grid",
	"internal/layout",
	"internal/route",
	"internal/mcts",
	"internal/core",
	"internal/nn",
	"internal/tensor",
	"internal/rl",
	// The route store's segment bytes must be reproducible (compaction
	// rewrites are compared bit-for-bit across machines), so the whole
	// package is held to collect-then-sort iteration.
	"internal/store",
}

// isDeterministicFile reports whether detmap applies to the file: every
// file of a deterministic package, plus the canonical-hash half of
// internal/serve (serve/hash.go feeds the cache key, so its iteration
// order is part of the serving contract even though the rest of serve is
// free to use maps for bookkeeping). Corpus packages under testdata are
// always in scope so the golden tests exercise the analyzer.
func isDeterministicFile(p *Package, filename string) bool {
	if strings.HasPrefix(p.Path, "testdata/") {
		return true
	}
	for _, suf := range detPackages {
		if p.Path == "oarsmt/"+suf || strings.HasSuffix(p.Path, "/"+suf) {
			return true
		}
	}
	return strings.HasSuffix(filename, "internal/serve/hash.go")
}

// pathIsAny reports whether the package path matches one of the given
// module-relative suffixes.
func pathIsAny(path string, sufs ...string) bool {
	for _, suf := range sufs {
		if path == "oarsmt/"+suf || strings.HasSuffix(path, "/"+suf) || path == suf {
			return true
		}
	}
	return false
}
