package lint

import (
	"go/ast"
)

// Summary is the per-function fact set the fixpoint engine propagates
// over the call graph. Direct facts are extracted once from the AST;
// Reaches is the transitive closure (direct facts plus everything any
// statically resolved callee reaches), computed by iterating to a
// fixpoint so cycles and any call-graph shape converge.
type Summary struct {
	// Sources are the function's own unsanctioned nondeterminism sources:
	// wall-clock reads, global math/rand calls, and (outside the
	// deterministic packages, where detmap enforces the contract per
	// site) map ranges whose order is not re-canonicalised by sorting.
	// Sources carrying a reviewed //oarsmt:allow annotation for a
	// sanctioning analyzer are excluded here.
	Sources []Source
	// Reaches[kind] reports whether the function transitively reaches a
	// source of that kind (including its own).
	Reaches [3]bool
	// Sanitizes reports that the function wraps a declared sentinel error
	// with %w: errors flowing through it are presumed classified, so
	// errwrap's boundary walk stops here.
	Sanitizes bool
	// Bares are fresh errors (errors.New, fmt.Errorf without %w) created
	// in the body that can escape through a return statement.
	Bares []BareError
}

// ReachesAny reports whether the function reaches any nondeterminism
// source at all.
func (s *Summary) ReachesAny() bool {
	return s.Reaches[SrcWallClock] || s.Reaches[SrcGlobalRand] || s.Reaches[SrcMapOrder]
}

// computeSummaries fills every FuncInfo.Summary: one AST pass for direct
// facts, then a worklist-free round-robin fixpoint for reachability (the
// graph is small — the whole module is a few hundred functions — so
// iterate-until-stable beats maintaining SCC machinery).
func computeSummaries(prog *Program) {
	idxByPkg := make(map[*Package]*sourceIndex)
	for _, p := range prog.Pkgs {
		idxByPkg[p] = newSourceIndex(p)
	}
	for _, fi := range prog.order {
		idx := idxByPkg[fi.Pkg]
		sum := &Summary{}
		var raw []Source
		raw = wallClockSources(fi.Pkg, fi.Decl.Body, raw)
		raw = globalRandSources(fi.Pkg, fi.Decl.Body, raw)
		// Map-order sources inside the deterministic packages are detmap's
		// jurisdiction (reported per site there); counting them here too
		// would double-report every finding at each reachable root.
		file := fi.Pkg.Fset.Position(fi.Decl.Pos()).Filename
		if !isDeterministicFile(fi.Pkg, file) {
			raw = mapOrderSources(fi.Pkg, fi.Decl.Body, raw)
		}
		for _, src := range raw {
			if !idx.sanctioned(src.Pos) {
				sum.Sources = append(sum.Sources, src)
				sum.Reaches[src.Kind] = true
			}
		}
		sum.Sanitizes, sum.Bares = errorFacts(fi.Pkg, fi.Decl)
		fi.Summary = sum
	}
	// Fixpoint: propagate reachability up the call graph until stable.
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.order {
			for _, call := range fi.Calls {
				callee, ok := prog.Funcs[call.Callee]
				if !ok {
					continue // stdlib or unresolved: direct facts cover it
				}
				for k := range fi.Summary.Reaches {
					if callee.Summary.Reaches[k] && !fi.Summary.Reaches[k] {
						fi.Summary.Reaches[k] = true
						changed = true
					}
				}
			}
		}
	}
}

// docContains reports whether the function's doc comment contains the
// given marker directive (e.g. //oarsmt:detroot).
func docContains(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == marker || len(c.Text) > len(marker) && c.Text[:len(marker)] == marker {
			return true
		}
	}
	return false
}
