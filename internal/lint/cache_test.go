package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// writeScratchModule lays out a tiny two-package module (b imports a, a
// has one nowallclock violation) and returns its root.
func writeScratchModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratchmod\n\ngo 1.22\n",
		"a/a.go": `package a

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
		"b/b.go": `package b

import "scratchmod/a"

func Twice() int64 { return a.Stamp() * 2 }
`,
	}
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func runScratch(t *testing.T, root string, cache *Cache) ([]Diagnostic, CacheStats) {
	t.Helper()
	// A fresh loader per run, so a cache hit is provably served from disk
	// rather than from the loader's in-memory memoisation.
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, cs, err := RunCached(loader, cache, []string{"./..."}, Analyzers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return diags, cs
}

func renderAll(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.String())
	}
	return out
}

// TestCacheRoundTrip pins the cache contract: a cold run populates it, a
// warm run over the unchanged tree serves every entry from disk with
// identical diagnostics, and an edit invalidates exactly the packages
// whose dependency closure contains the edited file.
func TestCacheRoundTrip(t *testing.T) {
	root := writeScratchModule(t)
	cache, err := OpenCache(filepath.Join(root, ".lintcache"))
	if err != nil {
		t.Fatal(err)
	}

	cold, cs := runScratch(t, root, cache)
	if cs.LocalHits != 0 || cs.LocalMisses != 2 || cs.ProgramHit || !cs.ProgramRan {
		t.Fatalf("cold run stats = %+v, want 2 local misses and a program run", cs)
	}
	if len(cold) == 0 {
		t.Fatal("scratch module produced no diagnostics; the corpus violation is gone")
	}

	warm, cs := runScratch(t, root, cache)
	if cs.LocalHits != 2 || cs.LocalMisses != 0 || !cs.ProgramHit || cs.ProgramRan {
		t.Fatalf("warm run stats = %+v, want all hits", cs)
	}
	coldS, warmS := renderAll(cold), renderAll(warm)
	if len(coldS) != len(warmS) {
		t.Fatalf("warm run returned %d diagnostics, cold returned %d", len(warmS), len(coldS))
	}
	for i := range coldS {
		if coldS[i] != warmS[i] {
			t.Errorf("diagnostic %d differs:\n  cold: %s\n  warm: %s", i, coldS[i], warmS[i])
		}
	}

	// Editing only b invalidates b but leaves a's entry valid.
	bPath := filepath.Join(root, "b", "b.go")
	data, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, cs = runScratch(t, root, cache)
	if cs.LocalHits != 1 || cs.LocalMisses != 1 || cs.ProgramHit || !cs.ProgramRan {
		t.Fatalf("post-edit stats = %+v, want exactly b invalidated and the program re-run", cs)
	}

	// Editing a (the dependency) invalidates both closures.
	aPath := filepath.Join(root, "a", "a.go")
	data, err = os.ReadFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aPath, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, cs = runScratch(t, root, cache)
	if cs.LocalHits != 0 || cs.LocalMisses != 2 {
		t.Fatalf("post-dep-edit stats = %+v, want both packages invalidated", cs)
	}
}

// TestCacheOff pins the degraded path: RunCached with a nil cache is
// plain load-and-run.
func TestCacheOff(t *testing.T) {
	root := writeScratchModule(t)
	diags, cs := runScratch(t, root, nil)
	if cs.LocalHits != 0 || cs.ProgramHit {
		t.Fatalf("nil cache reported hits: %+v", cs)
	}
	if len(diags) == 0 {
		t.Fatal("nil-cache run produced no diagnostics")
	}
}
