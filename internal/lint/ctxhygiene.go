package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerCtxHygiene flags context.Background() and context.TODO() inside
// library functions that already receive a context.Context parameter:
// minting a fresh root context there severs the caller's deadline and
// cancellation, which is how a cancelled serving request keeps burning CPU
// in a Dijkstra expansion. Executables (package main) own their root
// context and are exempt; convenience wrappers without a ctx parameter
// (Route calling RouteCtx(context.Background(), ...)) are fine because no
// caller context exists to drop.
var AnalyzerCtxHygiene = &Analyzer{
	Name: "ctxhygiene",
	Doc:  "context.Background/TODO in functions that already receive a ctx",
	Run:  runCtxHygiene,
}

func runCtxHygiene(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if p.Name == "main" {
		return
	}
	eachFunc(p, func(_ *ast.File, fd *ast.FuncDecl) {
		if !hasCtxParam(p, fd.Type) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := selTo(p, sel, "context"); ok && (name == "Background" || name == "TODO") {
				report(sel.Pos(), "context.%s in a function that already receives a ctx: this drops the caller's deadline and cancellation; derive from the ctx parameter instead", name)
			}
			return true
		})
	})
}
