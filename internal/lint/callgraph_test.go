package lint

import (
	"path/filepath"
	"testing"
)

// loadCallgraphCorpus loads the synthetic two-package corpus (cga imports
// cgb) under real module import paths and builds its program.
func loadCallgraphCorpus(t *testing.T) *Program {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(
		filepath.Join("internal", "lint", "testdata", "src", "cga"),
		filepath.Join("internal", "lint", "testdata", "src", "cgb"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	return BuildProgram(pkgs)
}

func (prog *Program) funcByName(t *testing.T, pkgSuffix, name string) *FuncInfo {
	t.Helper()
	for _, fi := range prog.Functions() {
		if fi.Fn.Name() == name && pathIsAny(fi.Fn.Pkg().Path(), pkgSuffix) {
			return fi
		}
	}
	t.Fatalf("function %s.%s not in program", pkgSuffix, name)
	return nil
}

// TestCallGraph pins the structural properties of BuildProgram over the
// synthetic corpus: cross-package edges resolve, traversal order is
// deterministic, and file-to-package resolution works.
func TestCallGraph(t *testing.T) {
	prog := loadCallgraphCorpus(t)

	// Every declared function is a node.
	wantFuncs := []struct{ pkg, name string }{
		{"cga", "A"}, {"cga", "B"}, {"cga", "Rec1"}, {"cga", "Rec2"}, {"cga", "taint"},
		{"cgb", "Clock"}, {"cgb", "Pure"},
	}
	if got := len(prog.Functions()); got != len(wantFuncs) {
		t.Errorf("program has %d functions, want %d", got, len(wantFuncs))
	}
	for _, w := range wantFuncs {
		prog.funcByName(t, w.pkg, w.name)
	}

	// A's single call resolves across the package boundary to cgb.Clock.
	a := prog.funcByName(t, "cga", "A")
	clock := prog.funcByName(t, "cgb", "Clock")
	if len(a.Calls) != 1 || a.Calls[0].Callee != clock.Fn {
		t.Errorf("cga.A calls = %v, want exactly cgb.Clock", callNames(a.Calls))
	}

	// Functions() is sorted by (package path, position): all of cga before
	// cgb, and cga's functions in declaration order.
	var order []string
	for _, fi := range prog.Functions() {
		order = append(order, FuncDisplayName(fi.Fn))
	}
	want := []string{"cga.A", "cga.B", "cga.Rec1", "cga.Rec2", "cga.taint", "cgb.Clock", "cgb.Pure"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("function order = %v, want %v", order, want)
		}
	}

	// PackageOf resolves a position back to its owning package.
	if p := prog.PackageOf(prog.Fset(), a.Decl.Pos()); p != a.Pkg {
		t.Errorf("PackageOf(cga.A) = %v, want %v", p, a.Pkg)
	}
}

// TestSummaryFixpoint verifies taint propagation: direct sources, one
// cross-package hop, clean functions, and convergence through a mutual
// recursion.
func TestSummaryFixpoint(t *testing.T) {
	prog := loadCallgraphCorpus(t)

	clock := prog.funcByName(t, "cgb", "Clock")
	if len(clock.Summary.Sources) != 1 || clock.Summary.Sources[0].Kind != SrcWallClock {
		t.Errorf("cgb.Clock sources = %v, want one wall-clock read", clock.Summary.Sources)
	}
	if !clock.Summary.Reaches[SrcWallClock] {
		t.Error("cgb.Clock does not reach its own wall-clock source")
	}

	for _, tc := range []struct {
		pkg, name string
		reaches   bool
	}{
		{"cga", "A", true},
		{"cga", "B", false},
		{"cga", "Rec1", true}, // via Rec2 -> taint -> Clock, through the cycle
		{"cga", "Rec2", true},
		{"cga", "taint", true},
		{"cgb", "Pure", false},
	} {
		fi := prog.funcByName(t, tc.pkg, tc.name)
		if got := fi.Summary.Reaches[SrcWallClock]; got != tc.reaches {
			t.Errorf("%s.%s reaches wall clock = %v, want %v", tc.pkg, tc.name, got, tc.reaches)
		}
		if len(fi.Summary.Bares) != 0 {
			t.Errorf("%s.%s has unexpected bare errors %v", tc.pkg, tc.name, fi.Summary.Bares)
		}
	}
}

func callNames(calls []Call) []string {
	var out []string
	for _, c := range calls {
		out = append(out, c.Callee.FullName())
	}
	return out
}
