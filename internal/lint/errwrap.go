package lint

import (
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerErrwrap enforces the module's error contract interprocedurally:
// every error that can cross the root API (exported functions of package
// oarsmt) or the serving boundary (exported functions and methods of
// internal/serve, whose errors the HTTP layer maps to status codes with
// errors.Is) must wrap a declared sentinel so callers can match it.
//
// The walk starts at each boundary function and descends the call graph.
// A function that wraps a package-level sentinel with %w (fmt.Errorf("%w:
// ...", errs.ErrInvalidLayout, ...)) sanitizes the subtree below it — the
// sentinel is attached there — so the walk stops. Any other reachable
// function that creates a fresh, unclassifiable error (errors.New or
// fmt.Errorf without %w) escaping through its returns is a finding: that
// anonymous error can surface to an API caller or an HTTP status mapper
// that has nothing to match it against.
//
// Additional boundaries are marked with an //oarsmt:errboundary doc
// directive. Pass-through wraps (fmt.Errorf("ctx: %w", err) without a
// sentinel) neither sanitize nor trip the check: the sentinel is presumed
// to come from below, and if it does not, the creation site below is the
// finding.
var AnalyzerErrwrap = &Analyzer{
	Name:       "errwrap",
	Doc:        "bare errors crossing the root API or serve boundary without a sentinel (interprocedural)",
	RunProgram: runErrwrap,
}

// errBoundaryMarker marks additional error-contract boundaries.
const errBoundaryMarker = "//oarsmt:errboundary"

// isErrBoundary reports whether the function is an error-contract
// boundary: an exported error-returning function of the module root
// package or of internal/serve, or one carrying the doc marker.
func isErrBoundary(prog *Program, fi *FuncInfo) bool {
	if docContains(fi.Decl, errBoundaryMarker) {
		return true
	}
	fn := fi.Fn
	if fn.Pkg() == nil || !fn.Exported() || !returnsError(fi) {
		return false
	}
	path := fn.Pkg().Path()
	if pathIsAny(path, "internal/serve") {
		return true
	}
	// The module root package: its path contains no slash beyond the
	// module path itself — every loaded package path is either the module
	// path or modulePath/sub/dir, so "no internal/" and "no /" suffice
	// for both real loads ("oarsmt") and corpus loads.
	return !strings.Contains(path, "/")
}

// returnsError reports whether the function's last result is an error.
func returnsError(fi *FuncInfo) bool {
	sig, ok := fi.Fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return isErrorType(res.At(res.Len() - 1).Type())
}

func runErrwrap(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	reported := make(map[token.Pos]bool)
	for _, root := range prog.Functions() {
		if !isErrBoundary(prog, root) {
			continue
		}
		parent := map[*FuncInfo]*FuncInfo{root: nil}
		queue := []*FuncInfo{root}
		for len(queue) > 0 {
			fi := queue[0]
			queue = queue[1:]
			for _, bare := range fi.Summary.Bares {
				if reported[bare.Pos] {
					continue
				}
				reported[bare.Pos] = true
				report(bare.Pos, "%s creates an error that can cross the %s boundary without wrapping a sentinel (path %s); wrap a declared sentinel with %%w (errs.ErrInvalidLayout, errs.ErrInternal, ...) so callers can errors.Is it, or annotate //oarsmt:allow errwrap(reason)",
					bare.Desc, FuncDisplayName(root.Fn), pathString(fi, parent))
			}
			if fi.Summary.Sanitizes {
				// Only the root can be in the queue while sanitizing
				// (non-roots are filtered before enqueue): a sanitizing
				// boundary classifies its own subtree, so don't descend.
				continue
			}
			for _, call := range fi.Calls {
				callee, ok := prog.Funcs[call.Callee]
				if !ok {
					continue
				}
				if _, seen := parent[callee]; seen {
					continue
				}
				if callee.Summary.Sanitizes {
					continue // subtree classified at this frontier
				}
				if !returnsError(callee) {
					continue // its errors cannot flow back out
				}
				parent[callee] = fi
				queue = append(queue, callee)
			}
		}
	}
}
