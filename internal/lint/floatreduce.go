package lint

import (
	"go/ast"
	"go/token"
)

// AnalyzerFloatReduce flags floating-point accumulation (`+=`, `-=`, `++`,
// `--`) into a variable captured from outside a parallel.For / ForWith /
// Map callback. Besides being a data race, a captured float accumulator
// makes the rounding depend on which shard adds first — float addition is
// not associative — so the result changes with the worker count. The
// deterministic alternatives are parallel.SumChunks (fixed-order chunked
// reduction) or shard-private partials merged in shard order; writes to
// indexed slots (sums[shard] += x) are shard-disjoint by construction and
// therefore not flagged.
var AnalyzerFloatReduce = &Analyzer{
	Name: "floatreduce",
	Doc:  "captured float accumulation inside parallel callbacks",
	Run:  runFloatReduce,
}

// parallelEntryPoints are the pool entry points whose callbacks run
// concurrently. SumChunks is excluded: its partial callback is the
// sanctioned reduction site.
var parallelEntryPoints = map[string]bool{"For": true, "ForWith": true, "Map": true}

func runFloatReduce(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := selTo(p, call.Fun, "oarsmt/internal/parallel")
			if !ok || !parallelEntryPoints[name] {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				checkCallback(p, name, lit, report)
			}
			return true
		})
	}
}

func checkCallback(p *Package, entry string, lit *ast.FuncLit, report func(pos token.Pos, format string, args ...any)) {
	// A variable is captured when it was declared before the callback's
	// body begins; accumulators local to the callback are shard-private
	// and safe.
	captured := func(x ast.Expr) (string, bool) {
		id, ok := x.(*ast.Ident)
		if !ok {
			return "", false // indexed/field writes are shard-disjoint patterns
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return "", false
		}
		tv, ok := p.Info.Types[x]
		if !ok || !isFloat(tv.Type) {
			return "", false
		}
		if obj.Pos() >= lit.Body.Pos() && obj.Pos() < lit.Body.End() {
			return "", false
		}
		return id.Name, true
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN {
				return true
			}
			for _, lhs := range s.Lhs {
				if name, ok := captured(lhs); ok {
					report(s.Pos(), "float accumulation into captured %q inside parallel.%s callback: rounding order depends on the schedule; use parallel.SumChunks or shard-private partials", name, entry)
				}
			}
		case *ast.IncDecStmt:
			if name, ok := captured(s.X); ok {
				report(s.Pos(), "float accumulation into captured %q inside parallel.%s callback: rounding order depends on the schedule; use parallel.SumChunks or shard-private partials", name, entry)
			}
		}
		return true
	})
}
