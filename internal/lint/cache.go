package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Cache is the on-disk result cache (default location
// <module root>/.lintcache). Each entry is a JSON file named by a
// SHA-256 key over everything that can change its diagnostics: the
// engine version, the Go toolchain version, the enabled analyzer names,
// and the content hash of the package's (or, for the interprocedural
// entry, the whole pattern set's) transitive source closure. Entries
// are therefore immutable: a source edit produces a new key, it never
// mutates an old entry, so a stale hit is impossible and no locking is
// needed for concurrent readers.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// cachedDiag is the serialized form of a Diagnostic. File paths are
// stored relative to the module root so a cache survives the checkout
// being moved (and so entries contain no absolute local paths).
type cachedDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type cacheEntry struct {
	Engine string       `json:"engine"`
	Diags  []cachedDiag `json:"diags"`
}

func (c *Cache) get(key, moduleRoot string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Engine != engineVersion {
		return nil, false
	}
	diags := make([]Diagnostic, 0, len(e.Diags))
	for _, d := range e.Diags {
		var out Diagnostic
		out.Pos.Filename = filepath.Join(moduleRoot, filepath.FromSlash(d.File))
		out.Pos.Line = d.Line
		out.Pos.Column = d.Col
		out.Analyzer = d.Analyzer
		out.Message = d.Message
		diags = append(diags, out)
	}
	return diags, true
}

func (c *Cache) put(key, moduleRoot string, diags []Diagnostic) {
	e := cacheEntry{Engine: engineVersion, Diags: make([]cachedDiag, 0, len(diags))}
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(moduleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		e.Diags = append(e.Diags, cachedDiag{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	data, err := json.Marshal(e)
	if err != nil {
		return // cache writes are best-effort
	}
	tmp := filepath.Join(c.dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	// Rename is atomic on POSIX; a failure just means a future cache miss.
	_ = os.Rename(tmp, filepath.Join(c.dir, key+".json"))
}

// cacheKey derives an entry key from the analyzer set and a closure hash.
func cacheKey(kind string, analyzers []*Analyzer, closure string) string {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	h := sha256.New()
	fmt.Fprintln(h, engineVersion)
	fmt.Fprintln(h, runtime.Version())
	fmt.Fprintln(h, kind)
	fmt.Fprintln(h, strings.Join(names, ","))
	fmt.Fprintln(h, closure)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheStats reports what a cached run did, for the driver's -timing
// output.
type CacheStats struct {
	LocalHits   int
	LocalMisses int
	// ProgramHit / ProgramRan: whether the single interprocedural entry
	// was served from cache or recomputed (both false when no
	// interprocedural analyzer is enabled).
	ProgramHit bool
	ProgramRan bool
}

// RunCached is Run with an on-disk result cache in front of it. Patterns
// are expanded and fingerprinted with an imports-only scan (no type
// checking); each package whose dependency-closure hash has a cache
// entry for the enabled package-local analyzers is served from disk, and
// the interprocedural pass is served whole when the hash of the entire
// pattern closure matches. Only on a miss are packages actually loaded
// and type-checked. With cache == nil it degrades to plain Load + Run.
func RunCached(l *Loader, cache *Cache, patterns []string, analyzers []*Analyzer, stats *Stats) ([]Diagnostic, CacheStats, error) {
	var cs CacheStats
	dirs, err := l.Expand(patterns...)
	if err != nil {
		return nil, cs, err
	}
	local, program := SplitAnalyzers(analyzers)

	if cache == nil {
		pkgs, err := l.LoadDirs(dirs)
		if err != nil {
			return nil, cs, err
		}
		var diags []Diagnostic
		for _, p := range pkgs {
			diags = append(diags, RunLocal(p, local, true, stats)...)
		}
		cs.LocalMisses = len(pkgs)
		if len(program) > 0 {
			diags = append(diags, RunProgram(BuildProgram(pkgs), program, false, stats)...)
			cs.ProgramRan = true
		}
		SortDiagnostics(diags)
		return diags, cs, nil
	}

	scan, err := scanModule(l, dirs)
	if err != nil {
		return nil, cs, err
	}

	var diags []Diagnostic
	var missDirs []string
	localKeys := make(map[string]string, len(dirs))
	for _, d := range dirs {
		key := cacheKey("local", local, scan.closureHash(d))
		localKeys[d] = key
		if got, ok := cache.get(key, l.ModuleRoot); ok {
			diags = append(diags, got...)
			cs.LocalHits++
		} else {
			missDirs = append(missDirs, d)
			cs.LocalMisses++
		}
	}

	// The interprocedural entry covers the whole pattern set, keyed over
	// the union of every package's closure.
	var progKey string
	progMiss := false
	if len(program) > 0 {
		closures := make([]string, 0, len(dirs))
		for _, d := range dirs {
			closures = append(closures, scan.closureHash(d))
		}
		sort.Strings(closures)
		progKey = cacheKey("program", program, strings.Join(closures, "\n"))
		if got, ok := cache.get(progKey, l.ModuleRoot); ok {
			diags = append(diags, got...)
			cs.ProgramHit = true
		} else {
			progMiss = true
		}
	}

	if len(missDirs) > 0 {
		pkgs, err := l.LoadDirs(missDirs)
		if err != nil {
			return nil, cs, err
		}
		for i, p := range pkgs {
			d := RunLocal(p, local, true, stats)
			cache.put(localKeys[missDirs[i]], l.ModuleRoot, d)
			diags = append(diags, d...)
		}
	}
	if progMiss {
		// The program pass needs every pattern package loaded, not just
		// the local misses (the loader memoises, so overlap is free).
		pkgs, err := l.LoadDirs(dirs)
		if err != nil {
			return nil, cs, err
		}
		d := RunProgram(BuildProgram(pkgs), program, false, stats)
		cache.put(progKey, l.ModuleRoot, d)
		diags = append(diags, d...)
		cs.ProgramRan = true
	}
	SortDiagnostics(diags)
	return diags, cs, nil
}
