package lint

import (
	"errors"
	"fmt"
	"go/token"
	"strings"
)

// annotation is one parsed //oarsmt:allow comment.
type annotation struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const allowPrefix = "//oarsmt:allow"

// Annotation grammar errors, distinguished so collectAnnotations can word
// its diagnostics and the fuzz target can assert that every malformed
// input maps to exactly one of them.
var (
	errAllowNotAnnotation = errors.New("not an //oarsmt:allow annotation")
	errAllowMalformed     = errors.New("malformed annotation")
	errAllowEmptyReason   = errors.New("empty reason")
)

// parseAllow parses the raw text of one comment against the annotation
// grammar
//
//	//oarsmt:allow <analyzer>(<non-empty reason>)
//
// It is a pure function of the text: analyzer-name validity is the
// caller's concern (the registry is not part of the grammar). Returns
// errAllowNotAnnotation when the comment is not an allow annotation at
// all, errAllowMalformed / errAllowEmptyReason when it is one but breaks
// the grammar. Content after the closing parenthesis is tolerated so
// prose can follow an annotation on the same comment line.
func parseAllow(text string) (analyzer, reason string, err error) {
	if !strings.HasPrefix(text, allowPrefix) {
		return "", "", errAllowNotAnnotation
	}
	rest := text[len(allowPrefix):]
	if rest == "" || rest[0] != ' ' {
		return "", "", errAllowMalformed
	}
	rest = strings.TrimSpace(rest)
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.IndexByte(rest, ')')
	if open <= 0 || closeIdx < open {
		return "", "", errAllowMalformed
	}
	analyzer = rest[:open]
	reason = strings.TrimSpace(rest[open+1 : closeIdx])
	if reason == "" {
		return analyzer, "", errAllowEmptyReason
	}
	return analyzer, reason, nil
}

// formatAllow renders an annotation in canonical form. For every text
// that parseAllow accepts, parseAllow(formatAllow(analyzer, reason))
// yields the same (analyzer, reason) — the round-trip property the fuzz
// target FuzzAllowAnnotation pins down.
func formatAllow(analyzer, reason string) string {
	return fmt.Sprintf("%s %s(%s)", allowPrefix, analyzer, reason)
}

// collectAnnotations parses every //oarsmt:allow comment in the package.
// Malformed annotations and annotations naming an unknown analyzer are
// returned as diagnostics — a typo in a suppression must not silently
// disable it.
func collectAnnotations(p *Package) ([]*annotation, []Diagnostic) {
	var anns []*annotation
	var errsOut []Diagnostic
	bad := func(pos token.Position, format string, args ...any) {
		errsOut = append(errsOut, Diagnostic{Pos: pos, Analyzer: "allow", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, err := parseAllow(c.Text)
				pos := p.Fset.Position(c.Pos())
				switch {
				case errors.Is(err, errAllowNotAnnotation):
					continue
				case errors.Is(err, errAllowMalformed):
					bad(pos, "malformed annotation %q: want //oarsmt:allow <analyzer>(<reason>)", c.Text)
					continue
				case errors.Is(err, errAllowEmptyReason):
					bad(pos, "annotation for %q has an empty reason: say why the finding is safe", name)
					continue
				}
				if ByName(name) == nil {
					bad(pos, "annotation names unknown analyzer %q", name)
					continue
				}
				anns = append(anns, &annotation{pos: pos, analyzer: name, reason: reason})
			}
		}
	}
	return anns, errsOut
}
