package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// annotation is one parsed //oarsmt:allow comment.
type annotation struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const allowPrefix = "//oarsmt:allow"

// collectAnnotations parses every //oarsmt:allow comment in the package.
// Grammar (one annotation per comment, no space before the parenthesis):
//
//	//oarsmt:allow <analyzer>(<non-empty reason>)
//
// Malformed annotations and annotations naming an unknown analyzer are
// returned as diagnostics — a typo in a suppression must not silently
// disable it.
func collectAnnotations(p *Package) ([]*annotation, []Diagnostic) {
	var anns []*annotation
	var errs []Diagnostic
	bad := func(pos token.Position, format string, args ...any) {
		errs = append(errs, Diagnostic{Pos: pos, Analyzer: "allow", Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := c.Text[len(allowPrefix):]
				if rest == "" || rest[0] != ' ' {
					bad(pos, "malformed annotation %q: want //oarsmt:allow <analyzer>(<reason>)", c.Text)
					continue
				}
				rest = strings.TrimSpace(rest)
				open := strings.IndexByte(rest, '(')
				closeIdx := strings.IndexByte(rest, ')')
				if open <= 0 || closeIdx < open {
					bad(pos, "malformed annotation %q: want //oarsmt:allow <analyzer>(<reason>)", c.Text)
					continue
				}
				name := rest[:open]
				reason := strings.TrimSpace(rest[open+1 : closeIdx])
				if ByName(name) == nil {
					bad(pos, "annotation names unknown analyzer %q", name)
					continue
				}
				if reason == "" {
					bad(pos, "annotation for %q has an empty reason: say why the finding is safe", name)
					continue
				}
				anns = append(anns, &annotation{pos: pos, analyzer: name, reason: reason})
			}
		}
	}
	return anns, errs
}
