package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// corpusCases maps each golden corpus to the analyzers run over it. The
// annotations corpus uses detmap as its carrier analyzer because the
// //oarsmt:allow machinery itself is analyzer-agnostic. Single-dir
// corpora load under the synthetic "testdata/<name>" import path;
// multi-dir corpora (the interprocedural analyzers need a cross-package
// call graph) load under their real module import paths so the corpus
// packages can import each other.
var corpusCases = []struct {
	name      string
	dirs      []string // corpus dirs under testdata/src; first is primary
	analyzers []string
}{
	{"detmap", []string{"detmap"}, []string{"detmap"}},
	{"nowallclock", []string{"nowallclock"}, []string{"nowallclock"}},
	{"seededrand", []string{"seededrand"}, []string{"seededrand"}},
	{"rawgo", []string{"rawgo"}, []string{"rawgo"}},
	{"floatreduce", []string{"floatreduce"}, []string{"floatreduce"}},
	{"ctxhygiene", []string{"ctxhygiene"}, []string{"ctxhygiene"}},
	{"obsnames", []string{"obsnames"}, []string{"obsnames"}},
	{"annotations", []string{"annotations"}, []string{"detmap"}},
	{"goroleak", []string{"goroleak"}, []string{"goroleak"}},
	{"spanend", []string{"spanend"}, []string{"spanend"}},
	{"dettaint", []string{"dettaint", "dettaintdep"}, []string{"dettaint"}},
	{"errwrap", []string{"errwrap", "errwrapdep"}, []string{"errwrap"}},
}

// loadCorpus loads one corpus case: a single directory keeps the legacy
// synthetic import path, while multi-directory corpora go through the
// module loader so cross-corpus imports resolve.
func loadCorpus(t *testing.T, loader *Loader, dirs []string) []*Package {
	t.Helper()
	if len(dirs) == 1 {
		rel := filepath.Join("internal", "lint", "testdata", "src", dirs[0])
		pkg, err := loader.LoadCorpus(rel, dirs[0])
		if err != nil {
			t.Fatal(err)
		}
		return []*Package{pkg}
	}
	var pats []string
	for _, d := range dirs {
		pats = append(pats, filepath.Join("internal", "lint", "testdata", "src", d))
	}
	pkgs, err := loader.Load(pats...)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// parseWants returns the expected-diagnostic regexps of every corpus file,
// keyed by filename and line.
func parseWants(t *testing.T, dir string) map[string]map[int][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string]map[int][]*regexp.Regexp)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		perLine := make(map[int][]*regexp.Regexp)
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				perLine[i+1] = append(perLine[i+1], re)
			}
		}
		wants[path] = perLine
	}
	return wants
}

func TestGoldenCorpus(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range corpusCases {
		t.Run(tc.name, func(t *testing.T) {
			pkgs := loadCorpus(t, loader, tc.dirs)
			for _, pkg := range pkgs {
				if len(pkg.TypeErrors) > 0 {
					t.Fatalf("corpus must type-check cleanly, got: %v", pkg.TypeErrors)
				}
			}
			var analyzers []*Analyzer
			for _, name := range tc.analyzers {
				a := ByName(name)
				if a == nil {
					t.Fatalf("unknown analyzer %q", name)
				}
				analyzers = append(analyzers, a)
			}
			diags := Run(pkgs, analyzers)

			wants := make(map[string]map[int][]*regexp.Regexp)
			for _, d := range tc.dirs {
				rel := filepath.Join("internal", "lint", "testdata", "src", d)
				for file, perLine := range parseWants(t, filepath.Join(loader.ModuleRoot, rel)) {
					wants[file] = perLine
				}
			}
			matched := make(map[*regexp.Regexp]bool)
			for _, d := range diags {
				res := "unexpected"
				for _, re := range wants[d.Pos.Filename][d.Pos.Line] {
					if !matched[re] && re.MatchString(d.Message) {
						matched[re] = true
						res = "ok"
						break
					}
				}
				if res != "ok" {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for file, perLine := range wants {
				for line, res := range perLine {
					for _, re := range res {
						if !matched[re] {
							t.Errorf("%s:%d: missing expected diagnostic matching %q", file, line, re)
						}
					}
				}
			}
		})
	}
}

// TestCorpusPositions pins the exact positions of one seeded violation per
// analyzer, so a regression that reports the right message at the wrong
// place cannot slip through the regexp matching above.
func TestCorpusPositions(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range corpusCases {
		if tc.name == "annotations" {
			continue
		}
		pkgs := loadCorpus(t, loader, tc.dirs)
		diags := Run(pkgs, []*Analyzer{ByName(tc.name)})
		if len(diags) == 0 {
			t.Errorf("%s: corpus produced no diagnostics", tc.name)
			continue
		}
		for _, d := range diags {
			if d.Analyzer != tc.name {
				t.Errorf("%s: diagnostic from wrong analyzer: %s", tc.name, d)
			}
			inCorpus := false
			for _, dir := range tc.dirs {
				if strings.HasSuffix(filepath.Dir(d.Pos.Filename), dir) {
					inCorpus = true
				}
			}
			if d.Pos.Line <= 0 || d.Pos.Column <= 0 || !inCorpus {
				t.Errorf("%s: diagnostic with bad position: %s", tc.name, d)
			}
		}
	}
}

// TestRepoLintClean is the self-test the tentpole demands: the repository
// must satisfy its own determinism contract, so every future PR inherits
// it as a regression test.
func TestRepoLintClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing module packages", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestAnalyzerNames guards the driver's -enable/-disable contract: every
// analyzer resolves by its documented name and the suite order is stable.
func TestAnalyzerNames(t *testing.T) {
	want := []string{
		"detmap", "nowallclock", "seededrand", "rawgo", "floatreduce",
		"ctxhygiene", "obsnames", "goroleak", "spanend", "dettaint", "errwrap",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName accepted an unknown analyzer")
	}
}

// TestDiagnosticString pins the file:line:col rendering the Makefile and
// editors rely on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "detmap", Message: "boom"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "x.go:3:7: [detmap] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestAnnotationGrammar exercises collectAnnotations directly on a
// synthetic package, independent of the corpus.
func TestAnnotationGrammar(t *testing.T) {
	dir := t.TempDir()
	src := `package scratch

//oarsmt:allow detmap(good reason)
var a int

//oarsmt:allow rawgo(another fine reason) trailing prose is ignored
var b int
`
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadCorpus(dir, "scratch")
	if err != nil {
		t.Fatal(err)
	}
	anns, errs := collectAnnotations(pkg)
	if len(errs) != 0 {
		t.Fatalf("unexpected grammar errors: %v", errs)
	}
	if len(anns) != 2 {
		t.Fatalf("got %d annotations, want 2", len(anns))
	}
	if anns[0].analyzer != "detmap" || anns[0].reason != "good reason" {
		t.Errorf("first annotation parsed as %q(%q)", anns[0].analyzer, anns[0].reason)
	}
	if anns[1].analyzer != "rawgo" || anns[1].reason != "another fine reason" {
		t.Errorf("second annotation parsed as %q(%q)", anns[1].analyzer, anns[1].reason)
	}
}
