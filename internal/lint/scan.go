package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The result cache must be invalidated by anything that can change a
// diagnostic without changing the analyzed source: bump engineVersion
// whenever analyzer logic, the annotation grammar, or the diagnostic
// format changes. The per-entry key additionally folds in the Go
// toolchain version and the enabled analyzer names, so those need no
// manual bump.
const engineVersion = "oarsmt-lint-2"

// pkgScan is the cheap (parse-imports-only, no type checking) fingerprint
// of one package directory.
type pkgScan struct {
	Dir     string
	Path    string   // import path
	Imports []string // module-internal imports, sorted
	selfSum string   // hash over this package's own file names+contents

	closure string // memoised closureHash result
}

// moduleScan fingerprints a set of packages and their transitive
// module-internal dependencies without type-checking anything. It exists
// so a warm `make lint` can prove the cache is still valid in
// milliseconds instead of re-typechecking the world.
type moduleScan struct {
	loader *Loader
	pkgs   map[string]*pkgScan // by directory
}

// scanModule fingerprints every directory in dirs plus everything they
// transitively import within the module.
func scanModule(l *Loader, dirs []string) (*moduleScan, error) {
	ms := &moduleScan{loader: l, pkgs: make(map[string]*pkgScan)}
	for _, d := range dirs {
		if err := ms.scanDir(d); err != nil {
			return nil, err
		}
	}
	return ms, nil
}

func (ms *moduleScan) scanDir(dir string) error {
	if _, ok := ms.pkgs[dir]; ok {
		return nil
	}
	ps := &pkgScan{Dir: dir, Path: ms.loader.importPathFor(dir)}
	ms.pkgs[dir] = ps // insert before recursing; import cycles fail at load time, not here

	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	h := sha256.New()
	imports := map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// ReadDir returns sorted entries, so the hash is order-stable.
		fmt.Fprintf(h, "%s %d\n", name, len(data))
		h.Write(data)
		f, err := parser.ParseFile(fset, path, data, parser.ImportsOnly)
		if err != nil {
			// A syntactically broken file still invalidates the cache via
			// its content hash; the real load will report the error.
			continue
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == ms.loader.ModulePath || strings.HasPrefix(p, ms.loader.ModulePath+"/") {
				imports[p] = true
			}
		}
	}
	ps.selfSum = hex.EncodeToString(h.Sum(nil))
	for p := range imports {
		ps.Imports = append(ps.Imports, p)
	}
	sort.Strings(ps.Imports)
	for _, p := range ps.Imports {
		rel := strings.TrimPrefix(strings.TrimPrefix(p, ms.loader.ModulePath), "/")
		if err := ms.scanDir(filepath.Join(ms.loader.ModuleRoot, filepath.FromSlash(rel))); err != nil {
			return err
		}
	}
	return nil
}

// closureHash is the content hash of the package and its entire
// module-internal dependency closure: if it is unchanged, no source that
// can influence the package's analysis has changed. (Standard-library
// changes are covered by the Go version folded into cache keys.)
func (ms *moduleScan) closureHash(dir string) string {
	ps := ms.pkgs[dir]
	if ps.closure != "" {
		return ps.closure
	}
	// Collect the closure's self-hashes in deterministic import-path order
	// rather than hashing recursively, so diamond dependencies contribute
	// once and cycles (which the loader rejects later anyway) terminate.
	seen := map[string]bool{}
	var sums []string
	var walk func(d string)
	walk = func(d string) {
		p := ms.pkgs[d]
		if p == nil || seen[p.Path] {
			return
		}
		seen[p.Path] = true
		sums = append(sums, p.Path+" "+p.selfSum)
		for _, imp := range p.Imports {
			rel := strings.TrimPrefix(strings.TrimPrefix(imp, ms.loader.ModulePath), "/")
			walk(filepath.Join(ms.loader.ModuleRoot, filepath.FromSlash(rel)))
		}
	}
	walk(dir)
	sort.Strings(sums)
	h := sha256.New()
	for _, s := range sums {
		fmt.Fprintln(h, s)
	}
	ps.closure = hex.EncodeToString(h.Sum(nil))
	return ps.closure
}
