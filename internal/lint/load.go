package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the enclosing module without
// golang.org/x/tools: module-internal imports are resolved from source by
// the loader itself (memoised, dependency-first), and standard-library
// imports are delegated to go/importer's source importer, which works
// offline against GOROOT/src.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader locates the module containing dir (by walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Expand resolves the patterns ("./...", "dir/...", or plain directories,
// relative to the loader's module root) to the matched package directories
// in deterministic sorted order, without parsing or type-checking anything.
// The cache layer uses it to decide what *would* be analyzed before paying
// for a load.
func (l *Loader) Expand(patterns ...string) ([]string, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.ModuleRoot, base)
		}
		if !rec {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// testdata and hidden directories are invisible to the go
			// tool, so the linter skips them too (the lint corpus contains
			// deliberate violations).
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var sorted []string
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	return sorted, nil
}

// Load expands the patterns and returns the matched packages in
// deterministic path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.Expand(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, d := range dirs {
		p, err := l.loadDir(d, l.importPathFor(d))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadDirs loads exactly the given directories (already expanded) as
// packages, memoised like every other load.
func (l *Loader) LoadDirs(dirs []string) ([]*Package, error) {
	var out []*Package
	for _, d := range dirs {
		p, err := l.loadDir(d, l.importPathFor(d))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadCorpus loads a single testdata directory as the synthetic import
// path "testdata/<name>", used by the golden-corpus tests.
func (l *Loader) LoadCorpus(dir, name string) (*Package, error) {
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(l.ModuleRoot, dir)
	}
	return l.loadDir(abs, "testdata/"+name)
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the non-test files of one directory.
// Results are memoised by import path, so diamond imports type-check once.
func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}

	p := &Package{
		Path:  importPath,
		Name:  files[0].Name.Name,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	cfg := &types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	tpkg, err := cfg.Check(importPath, l.Fset, files, p.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p.Types = tpkg
	l.pkgs[importPath] = p
	return p, nil
}

// loaderImporter routes module-internal imports back through the loader
// and everything else (the standard library) to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		p, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
