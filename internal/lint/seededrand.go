package lint

import (
	"go/token"
)

// AnalyzerSeededRand flags every use of a math/rand (or math/rand/v2)
// package-level function: the global source is shared process state, so
// two call sites interleave differently depending on goroutine schedule
// and call order, destroying label reproducibility. Only explicit
// per-purpose generators — rand.New(rand.NewSource(seed)) — are allowed,
// so the constructor family (New, NewSource, NewPCG, NewChaCha8, NewZipf)
// is exempt. Types (rand.Rand, rand.Source) and methods on instances are
// untouched.
//
// Like nowallclock, this is a thin wrapper over the shared extraction in
// facts.go; the same match feeds the summaries dettaint propagates across
// packages.
var AnalyzerSeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "math/rand top-level functions (unseeded shared source)",
	Run:  runSeededRand,
}

var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runSeededRand(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		for _, src := range globalRandSources(p, f, nil) {
			report(src.Pos, "%s uses the shared global source: results depend on call interleaving; use a seeded rand.New(rand.NewSource(seed)) instance", src.Desc)
		}
	}
}
