package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerSeededRand flags every use of a math/rand (or math/rand/v2)
// package-level function: the global source is shared process state, so
// two call sites interleave differently depending on goroutine schedule
// and call order, destroying label reproducibility. Only explicit
// per-purpose generators — rand.New(rand.NewSource(seed)) — are allowed,
// so the constructor family (New, NewSource, NewPCG, NewChaCha8, NewZipf)
// is exempt. Types (rand.Rand, rand.Source) and methods on instances are
// untouched.
var AnalyzerSeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "math/rand top-level functions (unseeded shared source)",
	Run:  runSeededRand,
}

var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runSeededRand(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := pkgOf(p, sel.X)
			if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if _, isFunc := obj.(*types.Func); !isFunc || randConstructors[sel.Sel.Name] {
				return true
			}
			report(sel.Pos(), "rand.%s uses the shared global source: results depend on call interleaving; use a seeded rand.New(rand.NewSource(seed)) instance", sel.Sel.Name)
			return true
		})
	}
}
