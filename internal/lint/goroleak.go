package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoroleak checks that every goroutine launched outside the two
// sanctioned concurrency homes (internal/parallel, internal/serve) has a
// shutdown path: a context.Context or a channel plumbed into it — as an
// argument, a captured variable, or (for method calls) channel/context
// use inside the method body. rawgo already bans raw go statements in
// compute code wholesale; goroleak covers the sites rawgo exempts or that
// carry a rawgo annotation (daemon plumbing in cmd/, background loops in
// store), where "allowed to exist" must not mean "allowed to leak": a
// goroutine nothing can stop outlives Close, keeps file handles and
// buffers alive, and turns graceful drains into hangs.
var AnalyzerGoroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines with neither a context nor a done channel plumbed in",
	Run:  runGoroleak,
}

func runGoroleak(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if pathIsAny(p.Path, "internal/parallel", "internal/serve") {
		return
	}
	// Bodies of same-package functions, so `go s.loop()` can be vetted by
	// looking inside loop for its select/ctx machinery.
	bodies := make(map[*types.Func]*ast.FuncDecl)
	eachFunc(p, func(_ *ast.File, fd *ast.FuncDecl) {
		if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
			bodies[fn] = fd
		}
	})
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goroutineHasStopPath(p, g.Call, bodies) {
				return true
			}
			report(g.Pos(), "goroutine has neither a context nor a done channel plumbed to it: nothing can stop it, so Close/drain can hang and resources leak; pass a ctx or channel, or annotate //oarsmt:allow goroleak(reason)")
			return true
		})
	}
}

// goroutineHasStopPath reports whether the spawned call can be stopped:
// an argument of context/channel type, a function literal whose body uses
// a context, performs channel operations, or waits on a WaitGroup-free
// select; or a named callee whose signature or (same-package) body does.
func goroutineHasStopPath(p *Package, call *ast.CallExpr, bodies map[*types.Func]*ast.FuncDecl) bool {
	for _, arg := range call.Args {
		if tv, ok := p.Info.Types[arg]; ok && isCtxOrChan(tv.Type) {
			return true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return nodeUsesCtxOrChan(p, fun.Body)
	default:
		callee := calleeOf(p, call)
		if callee == nil {
			return false
		}
		if fd, ok := bodies[callee]; ok && fd.Body != nil {
			return nodeUsesCtxOrChan(p, fd.Body)
		}
		// Cross-package callee: judge by signature alone.
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return false
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if isCtxOrChan(sig.Params().At(i).Type()) {
				return true
			}
		}
	}
	return false
}

// isCtxOrChan reports whether the type is a context.Context or a channel.
func isCtxOrChan(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
	}
	return false
}

// nodeUsesCtxOrChan reports whether the body mentions any context- or
// channel-typed value, or performs a channel operation (select, receive,
// close, range over channel).
func nodeUsesCtxOrChan(p *Package, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nd := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				found = true
			}
		case *ast.SendStmt:
			found = true
		case *ast.Ident:
			if obj := p.Info.Uses[nd]; obj != nil && isCtxOrChan(obj.Type()) {
				found = true
			}
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[nd]; ok && isCtxOrChan(sel.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}
