package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-program view the interprocedural analyzers run
// over: every declared function of the analyzed packages, the static call
// graph between them, and the per-function summaries propagated to a
// fixpoint. Calls through function values and interface methods are not
// resolved (the engine is a static over/under-approximation, not a points-to
// analysis); function literals are attributed to their enclosing
// declaration, which covers the repository's parallel.For(func(){...})
// idiom.
type Program struct {
	Pkgs []*Package
	// Funcs maps every declared function with a body to its info node.
	Funcs map[*types.Func]*FuncInfo
	// order holds the functions in deterministic (package path, position)
	// order, so every traversal of the graph is reproducible.
	order  []*FuncInfo
	byFile map[string]*Package
}

// FuncInfo is one call-graph node.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists the statically resolved callees in source order,
	// including calls spawned via go statements (a goroutine started under
	// a deterministic root still taints it).
	Calls []Call
	// Summary is filled by computeSummaries.
	Summary *Summary
}

// Call is one resolved call site.
type Call struct {
	Callee *types.Func
	Pos    token.Pos
}

// BuildProgram constructs the call graph and summaries over the packages.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:   pkgs,
		Funcs:  make(map[*types.Func]*FuncInfo),
		byFile: make(map[string]*Package),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			prog.byFile[p.Fset.Position(f.Pos()).Filename] = p
		}
		eachFunc(p, func(_ *ast.File, fd *ast.FuncDecl) {
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				return
			}
			fi := &FuncInfo{Fn: fn, Decl: fd, Pkg: p}
			prog.Funcs[fn] = fi
			prog.order = append(prog.order, fi)
		})
	}
	sort.Slice(prog.order, func(i, j int) bool {
		a, b := prog.order[i], prog.order[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	for _, fi := range prog.order {
		fi.Calls = collectCalls(fi.Pkg, fi.Decl)
	}
	computeSummaries(prog)
	return prog
}

// PackageOf resolves the package owning a position's file, used to apply
// suppressions to findings that program analyzers report in any package.
func (prog *Program) PackageOf(fset *token.FileSet, pos token.Pos) *Package {
	return prog.byFile[fset.Position(pos).Filename]
}

// Functions returns the call-graph nodes in deterministic order.
func (prog *Program) Functions() []*FuncInfo { return prog.order }

// collectCalls resolves the direct calls of one declaration, including
// those inside nested function literals and go/defer statements.
func collectCalls(p *Package, fd *ast.FuncDecl) []Call {
	var out []Call
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeOf(p, call); callee != nil {
			out = append(out, Call{Callee: callee, Pos: call.Pos()})
		}
		return true
	})
	return out
}

// calleeOf statically resolves a call expression to the called function:
// plain calls, package-qualified calls, and method calls on concrete
// receivers. Function values and interface dispatch return nil.
func calleeOf(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// FuncDisplayName renders a function as "pkg.(*Recv).Name" for
// diagnostics, with the package shortened to its base name.
func FuncDisplayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		recv := types.TypeString(t, func(p *types.Package) string { return "" })
		recv = strings.TrimPrefix(recv, ".")
		name = "(" + recv + ")." + name
	}
	if fn.Pkg() != nil {
		parts := strings.Split(fn.Pkg().Path(), "/")
		name = parts[len(parts)-1] + "." + name
	}
	return name
}
