package lint

import (
	"errors"
	"strings"
	"testing"
)

// FuzzAllowAnnotation fuzzes the //oarsmt:allow grammar: parseAllow must
// never panic, every outcome must be one of the three declared grammar
// errors (so collectAnnotations always turns a malformed annotation into
// a finding instead of silently dropping it), and every accepted parse
// must survive the format -> parse round trip unchanged.
func FuzzAllowAnnotation(f *testing.F) {
	for _, seed := range []string{
		"//oarsmt:allow detmap(order-insensitive sum)",
		"//oarsmt:allow nowallclock(timing only) trailing prose",
		"//oarsmt:allow rawgo()",
		"//oarsmt:allow rawgo(   )",
		"//oarsmt:allow",
		"//oarsmt:allow\tdetmap(tab separator)",
		"//oarsmt:allow detmap reason without parens",
		"//oarsmt:allow )backwards(",
		"//oarsmt:allow (no analyzer)",
		"// plain comment",
		"//oarsmt:allowdetmap(missing space)",
		"//oarsmt:allow détmap(unicode名 reason)",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, err := parseAllow(text)

		switch {
		case err == nil:
		case errors.Is(err, errAllowNotAnnotation),
			errors.Is(err, errAllowMalformed),
			errors.Is(err, errAllowEmptyReason):
			// Each of these maps to a deterministic collectAnnotations
			// outcome: skip, or a grammar finding.
		default:
			t.Fatalf("parseAllow(%q) returned an undeclared error %v", text, err)
		}

		// Anything carrying the annotation prefix must be claimed by the
		// grammar: either parsed or reported, never silently ignored.
		if strings.HasPrefix(text, allowPrefix) && errors.Is(err, errAllowNotAnnotation) {
			t.Fatalf("parseAllow(%q) disowned a prefixed comment", text)
		}
		if err != nil {
			return
		}

		if analyzer == "" || reason == "" {
			t.Fatalf("parseAllow(%q) accepted empty analyzer %q or reason %q", text, analyzer, reason)
		}
		// The round-trip property formatAllow documents. (Byte validity is
		// deliberately not the grammar's concern: garbage in, garbage out,
		// as long as it round-trips.)
		canon := formatAllow(analyzer, reason)
		a2, r2, err2 := parseAllow(canon)
		if err2 != nil {
			t.Fatalf("formatAllow(%q, %q) = %q does not re-parse: %v", analyzer, reason, canon, err2)
		}
		if a2 != analyzer || r2 != reason {
			t.Fatalf("round trip changed (%q, %q) -> (%q, %q) via %q", analyzer, reason, a2, r2, canon)
		}
		// And formatting is a fixpoint: re-formatting the re-parse yields
		// the identical canonical text.
		if canon2 := formatAllow(a2, r2); canon2 != canon {
			t.Fatalf("formatAllow is not a fixpoint: %q -> %q", canon, canon2)
		}
	})
}
