package lint

import (
	"go/ast"
	"go/types"
)

// pkgOf returns the imported package an identifier refers to, or nil when
// the expression is not a plain package qualifier.
func pkgOf(p *Package, x ast.Expr) *types.Package {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}

// selTo matches a selector expression `pkg.Name` against an import path,
// returning the selected name and true on match.
func selTo(p *Package, x ast.Expr, pkgPath string) (string, bool) {
	sel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg := pkgOf(p, sel.X)
	if pkg == nil || pkg.Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// eachFunc visits every function declaration with a body.
func eachFunc(p *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}

// isFloat reports whether t's underlying type is a floating-point scalar.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(p *Package, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t, ok := p.Info.Types[field.Type]; ok && t.Type != nil {
			if named, ok := t.Type.(*types.Named); ok {
				obj := named.Obj()
				if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
					return true
				}
			}
		}
	}
	return false
}
