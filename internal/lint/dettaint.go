package lint

import (
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerDettaint is the interprocedural determinism-taint check: it
// walks the call graph from the deterministic roots — the functions whose
// outputs the reproduction guarantees bit-for-bit (core routing, MCTS
// search, RL label generation) — and reports every nondeterminism source
// (wall-clock read, global math/rand call, order-escaping map range)
// transitively reachable from one, with the call path in the message.
//
// This subsumes the package-allowlist blind spot of nowallclock and
// seededrand: those flag *direct* reads per package, which goes blind the
// moment a clock read hides one package boundary away from a reward
// computation. Sources carrying a reviewed //oarsmt:allow annotation for
// nowallclock/seededrand/detmap are sanctioned (the obs span clocks, the
// store compaction timestamps); a taint-specific exception is written as
// //oarsmt:allow dettaint(reason) on the source line.
//
// Roots are matched by the table below plus any function whose doc
// comment carries an //oarsmt:detroot directive (used by the golden
// corpus and available to future packages that introduce new
// deterministic surfaces).
var AnalyzerDettaint = &Analyzer{
	Name:       "dettaint",
	Doc:        "nondeterminism sources reachable from deterministic roots (interprocedural)",
	RunProgram: runDettaint,
}

// detRootMarker marks additional deterministic roots in doc comments.
const detRootMarker = "//oarsmt:detroot"

// detRoots are the functions whose transitive call trees must be free of
// unsanctioned nondeterminism: the routing core, the searcher that
// generates training labels, and the trainer stages that consume them.
var detRoots = []struct {
	pkgSuffix string // module-relative package suffix
	recv      string // receiver type name, "" for plain functions
	name      string
}{
	{"internal/core", "Router", "Route"},
	{"internal/core", "", "PlainOARMST"},
	{"internal/mcts", "", "Search"},
	{"internal/mcts", "", "SearchCtx"},
	{"internal/mcts", "Searcher", "Run"},
	{"internal/mcts", "Searcher", "RunCtx"},
	{"internal/rl", "Trainer", "GenerateSamples"},
	{"internal/rl", "Trainer", "GenerateSamplesCtx"},
	{"internal/rl", "Trainer", "RunStage"},
	{"internal/rl", "Trainer", "RunStageCtx"},
	{"internal/rl", "Trainer", "Fit"},
}

// isDetRoot reports whether the function is a deterministic root.
func isDetRoot(fi *FuncInfo) bool {
	if docContains(fi.Decl, detRootMarker) {
		return true
	}
	fn := fi.Fn
	if fn.Pkg() == nil {
		return false
	}
	recv := receiverTypeName(fn)
	for _, r := range detRoots {
		if fn.Name() == r.name && recv == r.recv && pathIsAny(fn.Pkg().Path(), r.pkgSuffix) {
			return true
		}
	}
	return false
}

// receiverTypeName returns the bare receiver type name ("Router" for
// *Router), or "".
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func runDettaint(prog *Program, report func(pos token.Pos, format string, args ...any)) {
	reported := make(map[token.Pos]bool)
	for _, root := range prog.Functions() {
		if !isDetRoot(root) {
			continue
		}
		// Breadth-first from the root so the reported call path is a
		// shortest chain; neighbor order follows source order, so the
		// output is deterministic.
		parent := map[*FuncInfo]*FuncInfo{root: nil}
		queue := []*FuncInfo{root}
		for len(queue) > 0 {
			fi := queue[0]
			queue = queue[1:]
			for _, src := range fi.Summary.Sources {
				if reported[src.Pos] {
					continue
				}
				reported[src.Pos] = true
				report(src.Pos, "%s (%s) reaches deterministic root %s via %s; results must be bit-reproducible — plumb the value in from outside the root, or annotate //oarsmt:allow dettaint(reason)",
					src.Kind, src.Desc, FuncDisplayName(root.Fn), pathString(fi, parent))
			}
			for _, call := range fi.Calls {
				callee, ok := prog.Funcs[call.Callee]
				if !ok {
					continue
				}
				if _, seen := parent[callee]; seen {
					continue
				}
				if !callee.Summary.ReachesAny() {
					continue // prune: nothing to find below
				}
				parent[callee] = fi
				queue = append(queue, callee)
			}
		}
	}
}

// pathString renders the BFS chain root → … → fi.
func pathString(fi *FuncInfo, parent map[*FuncInfo]*FuncInfo) string {
	var names []string
	for n := fi; n != nil; n = parent[n] {
		names = append(names, FuncDisplayName(n.Fn))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}
