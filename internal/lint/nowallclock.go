package lint

import (
	"go/token"
)

// AnalyzerNoWallClock flags wall-clock reads (time.Now, time.Since,
// time.Until) outside the packages that legitimately measure elapsed time:
// the serving layer, the experiment/baseline harnesses, and executables
// (package main — cmd/ daemons and examples). Everywhere else a wall-clock
// read is either dead weight or, far worse, an input to a reward or cost
// that silently varies run to run.
//
// Since the interprocedural engine landed, this is a thin wrapper over the
// shared source extraction in facts.go: the same pattern match feeds the
// per-function summaries that dettaint propagates, so a clock read is
// flagged here at its site and additionally traced to any deterministic
// root that can reach it.
var AnalyzerNoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "wall-clock reads outside serve/experiments/baseline/main packages",
	Run:  runNoWallClock,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// wallClockPackages are the module-relative packages allowed to read the
// wall clock wholesale: the serving layer (request latency is the product)
// and the experiment/baseline harnesses (elapsed time is the measurement).
// Everything else gets per-site exemptions via //oarsmt:allow
// nowallclock(reason) — internal/store's compaction timestamps are the
// canonical example: two annotated reads feeding metrics only, while the
// rest of the package stays clock-free so segment bytes are a pure function
// of the records. Package main (cmd/ daemons, examples) is always exempt.
var wallClockPackages = []string{
	"internal/serve",
	"internal/cluster",
	"internal/experiments",
	"internal/baseline",
}

func runNoWallClock(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if p.Name == "main" || pathIsAny(p.Path, wallClockPackages...) {
		return
	}
	for _, f := range p.Files {
		for _, src := range wallClockSources(p, f, nil) {
			report(src.Pos, "%s outside timing code: wall-clock reads make results vary run to run; plumb durations in from the caller or annotate //oarsmt:allow nowallclock(reason)", src.Desc)
		}
	}
}
