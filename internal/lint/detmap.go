package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerDetmap flags range statements over maps in the deterministic
// packages (geom, grid, layout, route, mcts, core, nn, tensor, rl, and
// serve's canonical-hash file): Go randomises map iteration order per
// range, so any map range whose visit order can reach a result, a
// serialized byte, or a training label breaks bit-reproducibility.
//
// One idiom is recognised as safe without annotation: a loop body that
// only appends keys/values to local slices which are then passed to a
// sort.* or slices.* call later in the same function (collect-then-sort).
// Provably order-insensitive reductions — pure min/max scans, set
// membership counting — must carry //oarsmt:allow detmap(reason) instead,
// which keeps every exception reviewable in place.
var AnalyzerDetmap = &Analyzer{
	Name: "detmap",
	Doc:  "map iteration order leaking into results of deterministic packages",
	Run:  runDetmap,
}

func runDetmap(p *Package, report func(pos token.Pos, format string, args ...any)) {
	eachFunc(p, func(f *ast.File, fd *ast.FuncDecl) {
		file := p.Fset.Position(f.Pos()).Filename
		if !isDeterministicFile(p, file) {
			return
		}
		sorts := sortCalls(p, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectThenSorted(p, rng, sorts) {
				return true
			}
			report(rng.For, "range over map %s: iteration order may leak into results; collect and sort keys, or annotate //oarsmt:allow detmap(reason)",
				types.ExprString(rng.X))
			return true
		})
	})
}

// sortCall records one sort.*/slices.* call and the variables its
// arguments reference.
type sortCall struct {
	pos  token.Pos
	objs map[types.Object]bool
}

func sortCalls(p *Package, body *ast.BlockStmt) []sortCall {
	var out []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgOf(p, sel.X)
		if pkg == nil || (pkg.Path() != "sort" && pkg.Path() != "slices") {
			return true
		}
		sc := sortCall{pos: call.Pos(), objs: make(map[types.Object]bool)}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						sc.objs[obj] = true
					}
				}
				return true
			})
		}
		out = append(out, sc)
		return true
	})
	return out
}

// collectThenSorted reports whether the range body only appends to local
// slices that are all sorted later in the same function.
func collectThenSorted(p *Package, rng *ast.RangeStmt, sorts []sortCall) bool {
	targets := appendTargets(p, rng.Body.List)
	if targets == nil {
		return false
	}
	for obj := range targets {
		sorted := false
		for _, sc := range sorts {
			if sc.pos > rng.End() && sc.objs[obj] {
				sorted = true
				break
			}
		}
		if !sorted {
			return false
		}
	}
	return true
}

// appendTargets returns the objects appended to when every statement is of
// the form `s = append(s, ...)`, optionally inside if statements (filtered
// collection), `continue` branches, or nested range loops; nil when the
// body does anything else. Nested ranges are safe here because whatever
// order the appends happen in, the sort requirement on every target
// restores a canonical order afterwards.
func appendTargets(p *Package, stmts []ast.Stmt) map[types.Object]bool {
	targets := make(map[types.Object]bool)
	var walk func(list []ast.Stmt) bool
	walk = func(list []ast.Stmt) bool {
		for _, st := range list {
			switch s := st.(type) {
			case *ast.BranchStmt:
				if s.Tok != token.CONTINUE {
					return false
				}
			case *ast.RangeStmt:
				if !walk(s.Body.List) {
					return false
				}
			case *ast.AssignStmt:
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN {
					return false
				}
				lhs, ok := s.Lhs[0].(*ast.Ident)
				if !ok {
					return false
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return false
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" {
					return false
				}
				if b, ok := p.Info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
					return false
				}
				obj := p.Info.Uses[lhs]
				if obj == nil {
					obj = p.Info.Defs[lhs]
				}
				if obj == nil {
					return false
				}
				targets[obj] = true
			case *ast.IfStmt:
				if s.Init != nil {
					// An if with an init clause (`if _, ok := m[k]; ok`) is
					// still pure filtering; allow it.
					if _, ok := s.Init.(*ast.AssignStmt); !ok {
						return false
					}
				}
				if !walk(s.Body.List) {
					return false
				}
				if s.Else != nil {
					eb, ok := s.Else.(*ast.BlockStmt)
					if !ok || !walk(eb.List) {
						return false
					}
				}
			default:
				return false
			}
		}
		return true
	}
	if !walk(stmts) || len(targets) == 0 {
		return nil
	}
	return targets
}
