package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared fact-extraction layer: the syntactic patterns
// that identify nondeterminism sources and error-contract facts are
// recognised in exactly one place, used both by the package-local
// analyzers (nowallclock, seededrand are thin wrappers over it) and by
// the interprocedural summary computation (callgraph.go / summary.go).

// SourceKind classifies one nondeterminism source.
type SourceKind uint8

const (
	// SrcWallClock is a time.Now/Since/Until read.
	SrcWallClock SourceKind = iota
	// SrcGlobalRand is a math/rand (or rand/v2) package-level function
	// drawing from the shared global source.
	SrcGlobalRand
	// SrcMapOrder is a range over a map that is not collect-then-sorted,
	// so its iteration order can escape into results.
	SrcMapOrder
)

func (k SourceKind) String() string {
	switch k {
	case SrcWallClock:
		return "wall-clock read"
	case SrcGlobalRand:
		return "global math/rand call"
	case SrcMapOrder:
		return "map iteration order"
	}
	return "unknown source"
}

// Source is one nondeterminism source site.
type Source struct {
	Kind SourceKind
	Pos  token.Pos
	// Desc names the offending expression ("time.Now", "rand.Intn",
	// "range over m").
	Desc string
}

// sanctioningAnalyzers are the legacy per-site analyzers whose
// //oarsmt:allow annotations also sanction a source for the taint engine:
// an annotated clock read (obs span timing, store compaction timestamps)
// is a reviewed, reasoned exception and must not re-surface as a dettaint
// finding at every deterministic root that reaches it.
var sanctioningAnalyzers = []string{"nowallclock", "seededrand", "detmap"}

// sourceIndex answers "is this position covered by a sanctioning
// annotation" for one package.
type sourceIndex struct {
	p *Package
	// sanctionedLines is keyed by file:line of the line *covered* by a
	// sanctioning annotation (the annotation's own line and the line
	// below it, matching the suppression rule in lint.go).
	sanctionedLines map[string]bool
}

func newSourceIndex(p *Package) *sourceIndex {
	idx := &sourceIndex{p: p, sanctionedLines: make(map[string]bool)}
	anns, _ := collectAnnotations(p)
	for _, an := range anns {
		for _, name := range sanctioningAnalyzers {
			if an.analyzer == name {
				idx.sanctionedLines[fmt.Sprintf("%s:%d", an.pos.Filename, an.pos.Line)] = true
				idx.sanctionedLines[fmt.Sprintf("%s:%d", an.pos.Filename, an.pos.Line+1)] = true
			}
		}
	}
	return idx
}

func (idx *sourceIndex) sanctioned(pos token.Pos) bool {
	p := idx.p.Fset.Position(pos)
	return idx.sanctionedLines[fmt.Sprintf("%s:%d", p.Filename, p.Line)]
}

// wallClockSources appends every time.Now/Since/Until read under n.
func wallClockSources(p *Package, n ast.Node, into []Source) []Source {
	ast.Inspect(n, func(nd ast.Node) bool {
		sel, ok := nd.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name, ok := selTo(p, sel, "time"); ok && wallClockFuncs[name] {
			into = append(into, Source{Kind: SrcWallClock, Pos: sel.Pos(), Desc: "time." + name})
		}
		return true
	})
	return into
}

// globalRandSources appends every math/rand package-level function use
// under n (the seeded constructor family is exempt, as in seededrand).
func globalRandSources(p *Package, n ast.Node, into []Source) []Source {
	ast.Inspect(n, func(nd ast.Node) bool {
		sel, ok := nd.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgOf(p, sel.X)
		if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
			return true
		}
		obj := p.Info.Uses[sel.Sel]
		if _, isFunc := obj.(*types.Func); !isFunc || randConstructors[sel.Sel.Name] {
			return true
		}
		into = append(into, Source{Kind: SrcGlobalRand, Pos: sel.Pos(), Desc: "rand." + sel.Sel.Name})
		return true
	})
	return into
}

// mapOrderSources appends every map range in the function body that is not
// collect-then-sorted. The caller decides whether map order matters for
// the function (detmap restricts to deterministic packages; the taint
// engine counts them everywhere outside det packages, where detmap already
// enforces the contract directly).
func mapOrderSources(p *Package, body *ast.BlockStmt, into []Source) []Source {
	sorts := sortCalls(p, body)
	ast.Inspect(body, func(nd ast.Node) bool {
		rng, ok := nd.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if collectThenSorted(p, rng, sorts) {
			return true
		}
		into = append(into, Source{Kind: SrcMapOrder, Pos: rng.For, Desc: "range over map " + types.ExprString(rng.X)})
		return true
	})
	return into
}

// BareError is one error value created inside a function body without
// wrapping any declared sentinel, escaping through a return statement.
type BareError struct {
	Pos  token.Pos
	Desc string // "errors.New(...)" or `fmt.Errorf("...")` without %w
}

// isErrsSentinelRef reports whether the expression references a
// package-level error variable (a sentinel that callers can match with
// errors.Is): internal/errs sentinels, route.ErrUnreachable,
// serve.ErrClosed, and their like.
func isSentinelRef(p *Package, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else {
			return false
		}
	}
	obj := p.Info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	// Package-level scope, error-typed.
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	return isErrorType(v.Type())
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	// Anything implementing error counts (sentinel types like
	// errs.ErrTimeout's timeoutError).
	iface, ok := t.Underlying().(*types.Interface)
	if ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error" {
		return true
	}
	return types.Implements(t, errorIface)
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// errorFacts extracts the error-contract facts of one function body:
// whether it sanitizes (wraps a declared sentinel with %w, so everything
// below it is presumed classified), and the bare error creations that can
// escape through its returns.
func errorFacts(p *Package, fd *ast.FuncDecl) (sanitizes bool, bares []BareError) {
	if fd.Body == nil {
		return false, nil
	}
	// Objects that appear inside return statements: a bare error assigned
	// to one of these escapes.
	returned := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(rn ast.Node) bool {
				if id, ok := rn.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	// Named error results escape by definition (a bare assignment to one
	// reaches every bare `return`).
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}

	// Walk with parents so we know whether a creation sits in a return or
	// feeds a returned variable.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, wraps, sentinel := classifyErrorCreation(p, call)
		if kind == "" {
			return true
		}
		if wraps && sentinel {
			sanitizes = true
			return true
		}
		if wraps {
			return true // pass-through wrap: the sentinel comes from below
		}
		if bareEscapes(p, call, stack, returned) {
			bares = append(bares, BareError{Pos: call.Pos(), Desc: kind})
		}
		return true
	})
	return sanitizes, bares
}

// classifyErrorCreation recognises errors.New and fmt.Errorf calls:
// kind is "" for anything else; wraps reports a %w verb in a constant
// format; sentinel reports that an argument references a package-level
// error variable (or the call is errs.Classify, the module's boundary
// classifier).
func classifyErrorCreation(p *Package, call *ast.CallExpr) (kind string, wraps, sentinel bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false, false
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		return "errors.New", false, false
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		wraps = false
		if len(call.Args) > 0 {
			if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Value != nil {
				wraps = strings.Contains(tv.Value.String(), "%w")
			} else {
				// Dynamic format string: assume it wraps rather than
				// flooding call sites the analyzer cannot see through.
				wraps = true
			}
		}
		for _, arg := range call.Args[1:] {
			if isSentinelRef(p, arg) {
				sentinel = true
			}
		}
		return "fmt.Errorf without %w", wraps, sentinel
	case strings.HasSuffix(fn.Pkg().Path(), "internal/errs") && fn.Name() == "Classify":
		// Classify only reclassifies deadline errors; it is a pass-through
		// for everything else, so it neither creates nor sanitizes.
		return "", false, false
	}
	return "", false, false
}

// bareEscapes reports whether the creation call's value can flow to a
// return: the call is (transitively) inside a ReturnStmt, or it is the
// RHS of an assignment to an object that appears in some return.
func bareEscapes(p *Package, call *ast.CallExpr, stack []ast.Node, returned map[types.Object]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.AssignStmt:
			// Find which LHS corresponds (single-RHS covers the idiom).
			for _, lhs := range parent.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					obj := p.Info.Uses[id]
					if obj == nil {
						obj = p.Info.Defs[id]
					}
					if obj != nil && returned[obj] && isErrorType(obj.Type()) {
						return true
					}
				}
			}
			return false
		case *ast.FuncLit:
			// Created inside a nested literal: its returns are the
			// literal's, not the function's; the literal's enclosing
			// analysis would need its own pass. Treat returns inside the
			// literal as escapes too (conservative for deferred error
			// setters), which the ReturnStmt case above already caught.
			return false
		}
	}
	return false
}
