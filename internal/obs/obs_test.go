package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- histogram bucket boundaries ------------------------------------------

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{1 * time.Microsecond, 0},
		{2 * time.Microsecond, 1}, // first value past bucket 0's upper bound
		{3 * time.Microsecond, 1},
		{4 * time.Microsecond, 2},
		{7 * time.Microsecond, 2},
		{8 * time.Microsecond, 3},
		{1 * time.Millisecond, 9},        // 1000 µs ∈ [2^9, 2^10)
		{1 * time.Second, 19},            // 1e6 µs ∈ [2^19, 2^20)
		{24 * time.Hour, NumBuckets - 1}, // clamped to the last bucket
	}
	for _, c := range cases {
		if got := BucketIndex(c.d); got != c.want {
			t.Errorf("BucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestBucketUpperMatchesIndex(t *testing.T) {
	// Every bucket's upper bound must land in the NEXT bucket, and one
	// nanosecond less must land in the bucket itself.
	for i := 0; i < NumBuckets-1; i++ {
		up := BucketUpper(i)
		if got := BucketIndex(up); got != i+1 {
			t.Errorf("BucketIndex(BucketUpper(%d)=%v) = %d, want %d", i, up, got, i+1)
		}
		if got := BucketIndex(up - time.Nanosecond); got != i {
			t.Errorf("BucketIndex(BucketUpper(%d)-1ns) = %d, want %d", i, got, i)
		}
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	if h.Percentile(0.99) != 0 {
		t.Fatalf("empty histogram percentile = %v, want 0", h.Percentile(0.99))
	}
	// 99 fast observations and one slow one: p50 must stay in the fast
	// bucket, p99 in the fast bucket too (rank 99 of 100), p100 slow.
	for i := 0; i < 99; i++ {
		h.Observe(3 * time.Microsecond) // bucket 1, upper bound 4 µs
	}
	h.Observe(1 * time.Second)
	if got := h.Percentile(0.50); got != 4*time.Microsecond {
		t.Errorf("p50 = %v, want 4µs", got)
	}
	if got := h.Percentile(0.99); got != 4*time.Microsecond {
		t.Errorf("p99 = %v, want 4µs", got)
	}
	if got := h.Percentile(1.0); got != BucketUpper(19) {
		t.Errorf("p100 = %v, want %v", got, BucketUpper(19))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d, want 100", h.Count())
	}
	wantSum := 99*3*time.Microsecond + time.Second
	if h.Sum() != wantSum {
		t.Errorf("Sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramSnapshotBucketPadding(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Microsecond) // bucket 2
	s := h.snapshot()
	if len(s.Buckets) != 3 {
		t.Fatalf("Buckets = %v, want zero-padded length 3", s.Buckets)
	}
	if s.Buckets[0] != 0 || s.Buckets[1] != 0 || s.Buckets[2] != 1 {
		t.Fatalf("Buckets = %v, want [0 0 1]", s.Buckets)
	}
}

// --- metric primitives ----------------------------------------------------

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Load() != 5 {
		t.Fatalf("SetMax lowered the gauge: %d", g.Load())
	}
	g.SetMax(9)
	if g.Load() != 9 {
		t.Fatalf("SetMax(9) = %d", g.Load())
	}
}

func TestFloatGauge(t *testing.T) {
	var g FloatGauge
	if g.Load() != 0 {
		t.Fatalf("zero FloatGauge = %v", g.Load())
	}
	g.Set(3.25)
	if g.Load() != 3.25 {
		t.Fatalf("FloatGauge = %v, want 3.25", g.Load())
	}
}

// --- registry -------------------------------------------------------------

func TestValidName(t *testing.T) {
	good := []string{"serve.queue_depth", "mcts.leaf_eval", "a.b", "route.heap_pops", "rl.stage_3x"}
	bad := []string{"", "serve", "Serve.queue", "serve.Queue", "serve..q", ".serve", "serve.", "serve-queue.x", "serve.1q", "serve.q depth"}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestRegistryPanicsOnBadName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Counter(\"BadName\") did not panic")
		}
	}()
	NewRegistry().Counter("BadName")
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("test.hits")
	c1.Inc()
	c2 := r.Counter("test.hits")
	if c1 != c2 {
		t.Fatal("Counter returned a different instance for the same name")
	}
	if c2.Load() != 1 {
		t.Fatalf("counter = %d, want 1", c2.Load())
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.hits").Add(7)
	r.Gauge("test.depth").Set(3)
	r.FloatGauge("test.loss").Set(0.5)
	r.GaugeFunc("test.uptime_seconds", func() float64 { return 42 })
	r.Histogram("test.latency").Observe(3 * time.Microsecond)

	m := r.Snapshot()
	if m.Counters["test.hits"] != 7 {
		t.Errorf("snapshot counter = %d, want 7", m.Counters["test.hits"])
	}
	if m.Gauges["test.depth"] != 3 || m.Gauges["test.loss"] != 0.5 || m.Gauges["test.uptime_seconds"] != 42 {
		t.Errorf("snapshot gauges = %v", m.Gauges)
	}
	h := m.Histograms["test.latency"]
	if h.Count != 1 || h.SumNS != int64(3*time.Microsecond) {
		t.Errorf("snapshot histogram = %+v", h)
	}
	if _, err := json.Marshal(m); err != nil {
		t.Fatalf("snapshot not JSON-serialisable: %v", err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.hits").Add(2)
	r.Gauge("test.depth").Set(5)
	h := r.Histogram("test.latency")
	h.Observe(3 * time.Microsecond)
	h.Observe(1 * time.Second)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE oarsmt_test_hits counter",
		"oarsmt_test_hits 2",
		"# TYPE oarsmt_test_depth gauge",
		"oarsmt_test_depth 5",
		"# TYPE oarsmt_test_latency histogram",
		`oarsmt_test_latency_bucket{le="+Inf"} 2`,
		"oarsmt_test_latency_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be nondecreasing.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "oarsmt_test_latency_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscan(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Errorf("cumulative bucket count decreased: %q after %d", line, last)
		}
		last = n
	}
}

// fmtSscan pulls the trailing integer off a prometheus line.
func fmtSscan(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*n, err = parseInt(line[i+1:])
	return 1, err
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, c := range s {
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

// --- spans ----------------------------------------------------------------

func TestSpanDisabledIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, end := Span(ctx, "core.route")
	if ctx2 != ctx {
		t.Fatal("Span without a trace derived a new context")
	}
	end() // must not panic
	if Enabled(ctx) {
		t.Fatal("Enabled = true on a bare context")
	}
	ObserveSpan(ctx, "core.route", time.Second) // must not panic
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace("test.main")
	ctx := With(context.Background(), &Observer{Trace: tr})
	if !Enabled(ctx) {
		t.Fatal("Enabled = false with a trace attached")
	}

	ctx1, end1 := Span(ctx, "test.outer")
	_, endA := Span(ctx1, "test.inner_a")
	endA()
	_, endB := Span(ctx1, "test.inner_b")
	endB()
	end1()
	ObserveSpan(ctx, "test.sibling", 5*time.Millisecond)

	root := tr.Root()
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	outer := root.Children[0]
	if outer.Name != "test.outer" || len(outer.Children) != 2 {
		t.Fatalf("outer = %+v", outer)
	}
	if outer.Children[0].Name != "test.inner_a" || outer.Children[1].Name != "test.inner_b" {
		t.Fatalf("inner spans = %q, %q", outer.Children[0].Name, outer.Children[1].Name)
	}
	if sib := root.Children[1]; sib.Name != "test.sibling" || sib.DurationNS != int64(5*time.Millisecond) {
		t.Fatalf("sibling = %+v", sib)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded SpanData
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if decoded.Name != "test.main" || decoded.DurationNS == 0 {
		t.Fatalf("decoded root = %+v", decoded)
	}
}

func TestMetricsFromOverride(t *testing.T) {
	own := NewRegistry()
	ctx := With(context.Background(), &Observer{Metrics: own})
	if MetricsFrom(ctx) != own {
		t.Fatal("MetricsFrom did not resolve the observer's registry")
	}
	if MetricsFrom(context.Background()) != Default {
		t.Fatal("MetricsFrom on a bare context != Default")
	}
	if MetricsFrom(nil) != Default { //nolint:staticcheck // nil-safety is part of the contract
		t.Fatal("MetricsFrom(nil) != Default")
	}
}

// --- stopwatch ------------------------------------------------------------

func TestStopwatchNilSafe(t *testing.T) {
	var sw *Stopwatch
	sw.Reset()
	sw.Lap("test.stage")
	sw.Emit(context.Background()) // all must be no-ops
}

func TestStopwatchAggregatesLaps(t *testing.T) {
	tr := NewTrace("test.main")
	ctx := With(context.Background(), &Observer{Trace: tr})
	sw := NewStopwatch()
	for i := 0; i < 3; i++ {
		sw.Reset()
		time.Sleep(time.Millisecond)
		sw.Lap("test.select")
		time.Sleep(time.Millisecond)
		sw.Lap("test.expand")
	}
	sw.Emit(ctx)

	root := tr.Root()
	if len(root.Children) != 2 {
		t.Fatalf("emitted spans = %d, want 2 aggregated stages", len(root.Children))
	}
	for i, want := range []string{"test.select", "test.expand"} {
		s := root.Children[i]
		if s.Name != want {
			t.Errorf("span %d = %q, want %q (first-lap order)", i, s.Name, want)
		}
		if s.DurationNS < int64(2*time.Millisecond) {
			t.Errorf("span %q duration %dns, want >= 2ms aggregated", s.Name, s.DurationNS)
		}
	}

	// Emit cleared the totals: a second emit adds nothing.
	sw.Emit(ctx)
	if len(tr.Root().Children) != 2 {
		t.Fatal("Emit did not clear accumulated laps")
	}
}

// --- concurrency ----------------------------------------------------------

func TestConcurrentMetricsAndSpans(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace("test.main")
	ctx := With(context.Background(), &Observer{Trace: tr, Metrics: r})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("test.ops")
			h := r.Histogram("test.latency")
			for i := 0; i < 200; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				_, end := Span(ctx, "test.worker")
				end()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test.ops").Load(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Histogram("test.latency").Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
	if got := len(tr.Root().Children); got != 1600 {
		t.Fatalf("spans = %d, want 1600", got)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}
