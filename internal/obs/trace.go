package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace collects a tree of timed spans for one logical operation (a route,
// a training stage, a benchmark run). Spans attach concurrently from any
// goroutine; the tree is serialised with WriteJSON once the operation is
// done.
type Trace struct {
	mu    sync.Mutex
	root  *SpanData
	epoch time.Time
}

// SpanData is one node of the span tree. StartNS is relative to the
// trace's creation so traces are diffable across runs.
type SpanData struct {
	Name       string      `json:"name"`
	StartNS    int64       `json:"start_ns"`
	DurationNS int64       `json:"duration_ns"`
	Children   []*SpanData `json:"children,omitempty"`
}

// NewTrace returns a trace whose root span carries the given name
// (conventionally the binary or operation name, e.g. "oarsmt_route.main").
func NewTrace(name string) *Trace {
	mustValid(name)
	t := &Trace{epoch: time.Now()} //oarsmt:allow nowallclock(trace epoch; obs owns all wall-clock reads)
	t.root = &SpanData{Name: name}
	return t
}

// Root returns the root span of the trace's tree. The returned pointer
// must be treated as read-only until the trace is quiescent.
func (t *Trace) Root() *SpanData { return t.root }

// attach appends a child span under parent and returns it.
func (t *Trace) attach(parent *SpanData, name string, start time.Time) *SpanData {
	s := &SpanData{Name: name, StartNS: start.Sub(t.epoch).Nanoseconds()}
	t.mu.Lock()
	parent.Children = append(parent.Children, s)
	t.mu.Unlock()
	return s
}

// end seals a span's duration. Safe to call once per span.
func (t *Trace) end(s *SpanData, dur time.Duration) {
	t.mu.Lock()
	s.DurationNS = dur.Nanoseconds()
	t.mu.Unlock()
}

// WriteJSON serialises the span tree (indented) to w. The root span's
// duration is the time since the trace was created unless it was sealed
// explicitly.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	if t.root.DurationNS == 0 {
		t.root.DurationNS = time.Since(t.epoch).Nanoseconds() //oarsmt:allow nowallclock(trace serialisation; obs owns all wall-clock reads)
	}
	buf, err := json.MarshalIndent(t.root, "", "  ")
	t.mu.Unlock()
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// noopEnd is returned by Span when tracing is disabled so the caller can
// always `defer end()` without a nil check or a per-call closure
// allocation.
var noopEnd = func() {}

// Span opens a span named name under the context's current span and
// returns a derived context (the new span becomes current) plus an end
// function sealing the span's duration. When the context carries no
// active trace it returns the input context unchanged and a shared no-op
// end function — zero allocations, no clock reads.
//
// Usage:
//
//	ctx, end := obs.Span(ctx, "core.retrace")
//	defer end()
func Span(ctx context.Context, name string) (context.Context, func()) {
	o := FromContext(ctx)
	if o == nil || o.Trace == nil {
		return ctx, noopEnd
	}
	t := o.Trace
	parent, _ := ctx.Value(spanKey).(*SpanData)
	if parent == nil {
		parent = t.root
	}
	start := time.Now() //oarsmt:allow nowallclock(span timing; obs owns all wall-clock reads)
	s := t.attach(parent, name, start)
	return context.WithValue(ctx, spanKey, s), func() {
		t.end(s, time.Since(start)) //oarsmt:allow nowallclock(span timing; obs owns all wall-clock reads)
	}
}

// ObserveSpan records an already-measured duration as a leaf span under
// the context's current span. No-op without an active trace. Use it when
// the duration was produced elsewhere (a Stopwatch lap, an aggregated
// stage) and a Span bracket would be awkward.
func ObserveSpan(ctx context.Context, name string, d time.Duration) {
	o := FromContext(ctx)
	if o == nil || o.Trace == nil {
		return
	}
	t := o.Trace
	parent, _ := ctx.Value(spanKey).(*SpanData)
	if parent == nil {
		parent = t.root
	}
	s := t.attach(parent, name, time.Now().Add(-d)) //oarsmt:allow nowallclock(span timing; obs owns all wall-clock reads)
	t.end(s, d)
}

// Timer measures one duration with the clock owned by obs, so det
// packages never import time for measurement. The zero value is invalid;
// use StartTimer.
type Timer struct{ start time.Time }

// StartTimer starts a timer.
func StartTimer() Timer {
	return Timer{start: time.Now()} //oarsmt:allow nowallclock(timer; obs owns all wall-clock reads)
}

// Elapsed returns the time since the timer started.
func (t Timer) Elapsed() time.Duration {
	return time.Since(t.start) //oarsmt:allow nowallclock(timer; obs owns all wall-clock reads)
}

// Stopwatch accumulates named laps across a loop body, aggregating the
// time spent in each stage of many iterations into one duration per
// stage name. A nil Stopwatch is a valid no-op receiver, so hot loops
// can do
//
//	var sw *obs.Stopwatch
//	if obs.Enabled(ctx) { sw = obs.NewStopwatch() }
//	...
//	sw.Lap("mcts.select")
//
// without branching at every lap. Not safe for concurrent use; one
// stopwatch per goroutine.
type Stopwatch struct {
	last  time.Time
	order []string
	total map[string]time.Duration
}

// NewStopwatch returns a running stopwatch.
func NewStopwatch() *Stopwatch {
	return &Stopwatch{
		last:  time.Now(), //oarsmt:allow nowallclock(stopwatch; obs owns all wall-clock reads)
		total: make(map[string]time.Duration),
	}
}

// Reset restarts the lap clock without clearing accumulated totals; call
// it at the top of each iteration so time spent between iterations is not
// attributed to the first lap.
func (sw *Stopwatch) Reset() {
	if sw == nil {
		return
	}
	sw.last = time.Now() //oarsmt:allow nowallclock(stopwatch; obs owns all wall-clock reads)
}

// Lap attributes the time since the previous lap (or Reset) to name and
// restarts the lap clock.
func (sw *Stopwatch) Lap(name string) {
	if sw == nil {
		return
	}
	now := time.Now() //oarsmt:allow nowallclock(stopwatch; obs owns all wall-clock reads)
	if _, ok := sw.total[name]; !ok {
		sw.order = append(sw.order, name)
	}
	sw.total[name] += now.Sub(sw.last)
	sw.last = now
}

// Emit records every accumulated stage as a child span of the context's
// current span, in first-lap order, then clears the totals.
func (sw *Stopwatch) Emit(ctx context.Context) {
	if sw == nil {
		return
	}
	for _, name := range sw.order {
		ObserveSpan(ctx, name, sw.total[name])
	}
	sw.order = sw.order[:0]
	clear(sw.total)
}
