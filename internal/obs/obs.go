// Package obs is the repository's observability layer: allocation-light
// atomic counters and gauges, fixed-bucket latency histograms, and
// hierarchical span tracing, all stdlib-only.
//
// The layer is built around two sinks:
//
//   - a Registry of named metrics (Counter, Gauge, FloatGauge, Histogram,
//     GaugeFunc), snapshotted with Registry.Snapshot and exported in
//     Prometheus text format with Registry.WritePrometheus. The
//     package-level Default registry carries the process-wide hot-path
//     metrics (route.*, core.*, mcts.*, rl.*); internal/serve owns a
//     per-service registry so concurrent services never share counters.
//   - a Trace of hierarchical spans (Span, ObserveSpan), carried through
//     call trees on a context.Context and serialised as a JSON span tree.
//
// # Determinism contract
//
// Nothing in this package feeds a routing decision: metrics are
// write-mostly atomics, and a context without an Observer makes Span a
// no-op that returns its input context unchanged. Routing output is
// therefore bit-identical with tracing enabled, disabled, or absent —
// the invariant the determinism test corpus pins.
//
// # Naming
//
// Metric and span names are dotted snake_case ("serve.queue_depth",
// "mcts.leaf_eval"): every dot-separated component matches
// [a-z][a-z0-9_]*, with at least two components. Registration panics on
// malformed names and the obsnames lint analyzer enforces the convention
// statically at every call site.
package obs

import (
	"context"
)

// Observer bundles the observability sinks one call tree carries: a span
// trace and an optional metrics registry overriding Default. Either field
// may be nil.
type Observer struct {
	// Trace receives hierarchical spans; nil disables tracing.
	Trace *Trace
	// Metrics overrides the Default registry for code that resolves its
	// sink through MetricsFrom; nil means Default.
	Metrics *Registry
}

// ctxKey is the private context key space of the package.
type ctxKey int

const (
	observerKey ctxKey = iota
	spanKey
)

// With attaches the observer to the context. The trace's root span becomes
// the current span, so subsequent Span calls nest under it.
func With(ctx context.Context, o *Observer) context.Context {
	if o == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, observerKey, o)
	if o.Trace != nil {
		ctx = context.WithValue(ctx, spanKey, o.Trace.root)
	}
	return ctx
}

// FromContext returns the observer attached to the context, or nil.
func FromContext(ctx context.Context) *Observer {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(observerKey).(*Observer)
	return o
}

// MetricsFrom resolves the metrics registry of the context: the observer's
// registry when one is attached, the Default registry otherwise.
func MetricsFrom(ctx context.Context) *Registry {
	if o := FromContext(ctx); o != nil && o.Metrics != nil {
		return o.Metrics
	}
	return Default
}

// Enabled reports whether the context carries an active trace; callers can
// skip building expensive span attributes when it is false.
func Enabled(ctx context.Context) bool {
	o := FromContext(ctx)
	return o != nil && o.Trace != nil
}
