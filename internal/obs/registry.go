package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a set of named metrics. The zero value is not usable; create
// one with NewRegistry. All methods are safe for concurrent use; the
// get-or-create accessors are intended to be resolved once and the
// returned metric retained, so the registry lock never sits on a hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	floats   map[string]*FloatGauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// Default is the process-wide registry carrying the hot-path metrics of
// the routing, search and training packages.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		floats:   make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// ValidName reports whether the name follows the repository's metric/span
// naming convention: two or more dot-separated snake_case components, each
// matching [a-z][a-z0-9_]*.
func ValidName(name string) bool {
	parts := strings.Split(name, ".")
	if len(parts) < 2 {
		return false
	}
	for _, p := range parts {
		if len(p) == 0 || p[0] < 'a' || p[0] > 'z' {
			return false
		}
		for i := 1; i < len(p); i++ {
			c := p[i]
			if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
				return false
			}
		}
	}
	return true
}

// mustValid panics on a malformed metric name: names are compile-time
// literals, so a bad one is a programming error best caught at first use.
func mustValid(name string) {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: invalid metric/span name %q (want dotted snake_case like \"serve.queue_depth\")", name))
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	mustValid(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	mustValid(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	mustValid(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.floats[name]
	if !ok {
		g = &FloatGauge{}
		r.floats[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	mustValid(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a gauge computed on demand at snapshot/export time
// (queue depths, cache sizes, uptimes). Re-registering a name replaces the
// function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	mustValid(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Metrics is a point-in-time snapshot of a registry. Counters and integer
// gauges keep exact int64 values; function gauges are evaluated at
// snapshot time and folded into Gauges alongside float gauges.
type Metrics struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric of the registry. The capture is
// per-metric atomic (no torn reads of a single counter) but not a global
// consistent cut; related counters may be off by in-flight operations.
func (r *Registry) Snapshot() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := Metrics{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.floats)+len(r.funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		m.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		m.Gauges[name] = float64(g.Load())
	}
	for name, g := range r.floats {
		m.Gauges[name] = g.Load()
	}
	for name, fn := range r.funcs {
		m.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		m.Histograms[name] = h.snapshot()
	}
	return m
}

// Snapshot captures the Default registry.
func Snapshot() Metrics { return Default.Snapshot() }

// promName converts a dotted metric name to the Prometheus exposition
// name: oarsmt_<name with dots replaced by underscores>.
func promName(name string) string {
	return "oarsmt_" + strings.ReplaceAll(name, ".", "_")
}

// WritePrometheus writes every metric of the registry in the Prometheus
// text exposition format (version 0.0.4). Histograms export cumulative
// le-buckets with boundaries in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type hist struct {
		name string
		h    *Histogram
	}
	var counters, gauges []string
	cvals := map[string]int64{}
	gvals := map[string]float64{}
	var hists []hist
	for name, c := range r.counters {
		counters = append(counters, name)
		cvals[name] = c.Load()
	}
	for name, g := range r.gauges {
		gauges = append(gauges, name)
		gvals[name] = float64(g.Load())
	}
	for name, g := range r.floats {
		gauges = append(gauges, name)
		gvals[name] = g.Load()
	}
	for name, fn := range r.funcs {
		gauges = append(gauges, name)
		gvals[name] = fn()
	}
	for name, h := range r.hists {
		hists = append(hists, hist{name, h})
	}
	r.mu.Unlock()

	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	for _, name := range counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", promName(name), promName(name), cvals[name]); err != nil {
			return err
		}
	}
	for _, name := range gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", promName(name), promName(name), gvals[name]); err != nil {
			return err
		}
	}
	for _, hh := range hists {
		pn := promName(hh.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i := 0; i < NumBuckets; i++ {
			n := hh.h.buckets[i].Load()
			cum += n
			if n == 0 && i > 0 {
				continue // keep the exposition compact; cumulative counts stay correct
			}
			le := BucketUpper(i).Seconds()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatLE(le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			pn, cum, pn, hh.h.Sum().Seconds(), pn, hh.h.Count()); err != nil {
			return err
		}
	}
	return nil
}

func formatLE(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
