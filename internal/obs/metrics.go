package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus counter contract to hold;
// this is not enforced at runtime).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous integer value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n when n exceeds the current value
// (lock-free high-watermark).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatGauge is an atomic instantaneous float value (loss curves, ratios).
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores f.
func (g *FloatGauge) Set(f float64) { g.bits.Store(math.Float64bits(f)) }

// Load returns the current value (0 before the first Set).
func (g *FloatGauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// NumBuckets is the number of power-of-two latency buckets of a Histogram:
// bucket 0 counts observations below 2 µs and bucket i >= 1 counts
// [2^i µs, 2^(i+1) µs), spanning 1 µs up to ~35 minutes.
const NumBuckets = 32

// Histogram is a lock-free fixed-bucket duration histogram good enough for
// p50/p99 reporting; percentiles are upper bounds of the bucket the rank
// lands in, so they are conservative by at most 2x.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

// BucketIndex returns the bucket an observation of duration d lands in.
func BucketIndex(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < NumBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// BucketUpper returns the exclusive upper boundary of bucket i
// (2^(i+1) µs).
func BucketUpper(i int) time.Duration {
	return time.Duration(int64(1)<<uint(i+1)) * time.Microsecond
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[BucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Percentile returns an upper bound of the p-quantile (p in (0, 1]) of the
// observations, or 0 when nothing was observed.
func (h *Histogram) Percentile(p float64) time.Duration {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	SumNS   int64   `json:"sum_ns"`
	P50NS   int64   `json:"p50_ns"`
	P99NS   int64   `json:"p99_ns"`
	Buckets []int64 `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNS: h.sumNS.Load(),
		P50NS: int64(h.Percentile(0.50)),
		P99NS: int64(h.Percentile(0.99)),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			// Pad with the zero prefix so indices stay bucket indices.
			for len(s.Buckets) < i {
				s.Buckets = append(s.Buckets, 0)
			}
			s.Buckets = append(s.Buckets, n)
		}
	}
	return s
}
