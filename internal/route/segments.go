package route

import (
	"sort"

	"oarsmt/internal/geom"
	"oarsmt/internal/grid"
)

// Segment is a maximal straight run of tree edges on one layer, in
// original coordinates when the graph carries them (grid coordinates
// otherwise). A and B are the run's endpoints with A lexicographically
// first.
type Segment struct {
	A, B geom.Point
}

// Via is a layer crossing of the tree at one grid location, spanning
// [FromLayer, ToLayer] (FromLayer < ToLayer).
type Via struct {
	At        geom.Point // X/Y position; Layer holds FromLayer
	FromLayer int
	ToLayer   int
}

// Segments decomposes the tree into maximal straight wire segments per
// layer plus merged via stacks — the form a downstream flow (DEF writer,
// extraction, visualisation) consumes. Unit edges are merged while they
// continue in the same direction on the same layer through degree-2
// vertices of matching orientation; vias crossing several layers at the
// same position merge into one stack.
func (t *Tree) Segments(g *grid.Graph) ([]Segment, []Via) {
	type dirEdge struct {
		a, b grid.VertexID
	}
	// Partition edges by orientation.
	var xe, ye, ze []dirEdge
	for _, e := range t.Edges {
		ca, cb := g.CoordOf(e.A), g.CoordOf(e.B)
		switch {
		case ca.V == cb.V && ca.M == cb.M:
			xe = append(xe, dirEdge{e.A, e.B})
		case ca.H == cb.H && ca.M == cb.M:
			ye = append(ye, dirEdge{e.A, e.B})
		default:
			ze = append(ze, dirEdge{e.A, e.B})
		}
	}

	var segs []Segment
	// Merge runs along one axis: group by the invariant coordinates and
	// merge consecutive steps.
	mergeRuns := func(edges []dirEdge, key func(c grid.Coord) [2]int, along func(c grid.Coord) int) {
		groups := map[[2]int][]grid.VertexID{}
		for _, e := range edges {
			k := key(g.CoordOf(e.a))
			groups[k] = append(groups[k], e.a, e.b)
		}
		keys := make([][2]int, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			vs := groups[k]
			sort.Slice(vs, func(i, j int) bool { return along(g.CoordOf(vs[i])) < along(g.CoordOf(vs[j])) })
			// vs holds both endpoints of each unit edge, sorted along the
			// axis; a run breaks where consecutive edges don't share a
			// vertex.
			start := vs[0]
			prev := vs[1]
			for i := 2; i+1 < len(vs); i += 2 {
				if vs[i] != prev {
					segs = append(segs, Segment{A: g.PointOf(start), B: g.PointOf(prev)})
					start = vs[i]
				}
				prev = vs[i+1]
			}
			segs = append(segs, Segment{A: g.PointOf(start), B: g.PointOf(prev)})
		}
	}
	mergeRuns(xe,
		func(c grid.Coord) [2]int { return [2]int{c.V, c.M} },
		func(c grid.Coord) int { return c.H })
	mergeRuns(ye,
		func(c grid.Coord) [2]int { return [2]int{c.H, c.M} },
		func(c grid.Coord) int { return c.V })

	// Vias: group by position, merge consecutive layer crossings.
	viaGroups := map[[2]int][]int{} // (h,v) -> list of lower layers
	for _, e := range ze {
		ca, cb := g.CoordOf(e.a), g.CoordOf(e.b)
		lo := ca.M
		if cb.M < lo {
			lo = cb.M
		}
		k := [2]int{ca.H, ca.V}
		viaGroups[k] = append(viaGroups[k], lo)
	}
	viaKeys := make([][2]int, 0, len(viaGroups))
	for k := range viaGroups {
		viaKeys = append(viaKeys, k)
	}
	sort.Slice(viaKeys, func(i, j int) bool {
		if viaKeys[i][0] != viaKeys[j][0] {
			return viaKeys[i][0] < viaKeys[j][0]
		}
		return viaKeys[i][1] < viaKeys[j][1]
	})
	var vias []Via
	for _, k := range viaKeys {
		lows := viaGroups[k]
		sort.Ints(lows)
		runStart := lows[0]
		prev := lows[0]
		flush := func(from, to int) {
			p := g.PointOf(g.Index(k[0], k[1], from))
			vias = append(vias, Via{At: p, FromLayer: from, ToLayer: to + 1})
		}
		for _, m := range lows[1:] {
			if m != prev+1 {
				flush(runStart, prev)
				runStart = m
			}
			prev = m
		}
		flush(runStart, prev)
	}
	return segs, vias
}
