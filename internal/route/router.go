// Package route implements the routing substrate of the ML-OARSMT router:
// a multi-source Dijkstra maze router on the 3-D Hanan grid and the
// maze-router-based Prim's algorithm that builds an obstacle-avoiding
// rectilinear minimum spanning tree (OARMST) over a set of terminals,
// following the methodology of Lin et al. [14] that the paper adopts for
// its final tree-construction step (paper §3.1).
//
// A Router owns per-search scratch buffers sized to its graph, so repeated
// searches on large graphs allocate nothing. A Router is not safe for
// concurrent use; create one per goroutine.
package route

import (
	"context"
	"fmt"

	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
	"oarsmt/internal/grid"
	"oarsmt/internal/obs"
)

// Search-volume counters on the process-wide registry, resolved once so
// the hot loop only touches locals and a couple of atomics per search.
// Write-only telemetry: nothing here feeds a routing decision.
var (
	mSearches      = obs.Default.Counter("route.searches")
	mHeapPops      = obs.Default.Counter("route.heap_pops")
	mRelaxations   = obs.Default.Counter("route.relaxations")
	mOARMSTBuilds  = obs.Default.Counter("route.oarmst_builds")
	mRetracePasses = obs.Default.Counter("route.retrace_calls")
)

// ctxCheckInterval is how many heap pops (or BFS visits) pass between
// context checks; a power of two keeps the check a cheap mask-and-branch.
const ctxCheckInterval = 1024

// Router runs maze-routing searches over a fixed grid graph.
type Router struct {
	g *grid.Graph

	dist  []float64
	prev  []grid.VertexID
	seen  []uint32 // epoch tags: seen[v] == epoch means dist[v] is valid
	epoch uint32

	heap   pairHeap
	nbrBuf []grid.Neighbor

	// ctx, when non-nil, is consulted every ctxCheckInterval heap pops;
	// a cancelled search aborts with ok == false and records the cause in
	// ctxErr so the tree builders can surface it as an error.
	ctx    context.Context
	ctxErr error

	// Bounds, when non-nil, restricts every search to the given grid-space
	// box. Used by the bounded-exploration baseline ([14]); searches that
	// fail inside the bounds are the caller's responsibility to retry.
	Bounds *Bounds

	// BoundedExploration enables [14]-style bounded exploration inside
	// OARMST (and therefore SteinerTree): each Prim step searches only a
	// window spanning the current tree and the nearest remaining terminal,
	// inflated by BoundMargin, falling back to an unbounded search when
	// the window turns out too tight. This trades a little tree quality
	// for a large speedup on big layouts.
	BoundedExploration bool
	// BoundMargin is the window inflation of bounded exploration.
	BoundMargin int
}

// Bounds is an inclusive grid-space search window.
type Bounds struct {
	HLo, HHi int
	VLo, VHi int
	MLo, MHi int
}

// Contains reports whether the coordinate is inside the window.
func (b *Bounds) Contains(c grid.Coord) bool {
	return b.HLo <= c.H && c.H <= b.HHi &&
		b.VLo <= c.V && c.V <= b.VHi &&
		b.MLo <= c.M && c.M <= b.MHi
}

// Inflate grows the window by d in the H and V directions, clamped to the
// graph; the layer range always spans every layer (vias are cheap and
// bounding them harms quality disproportionately).
func (b Bounds) Inflate(d int, g *grid.Graph) Bounds {
	return Bounds{
		HLo: max(0, b.HLo-d), HHi: min(g.H-1, b.HHi+d),
		VLo: max(0, b.VLo-d), VHi: min(g.V-1, b.VHi+d),
		MLo: 0, MHi: g.M - 1,
	}
}

// BoundsOf returns the smallest window containing all the vertices.
func BoundsOf(g *grid.Graph, vs []grid.VertexID) Bounds {
	if len(vs) == 0 {
		return Bounds{}
	}
	c0 := g.CoordOf(vs[0])
	b := Bounds{HLo: c0.H, HHi: c0.H, VLo: c0.V, VHi: c0.V, MLo: c0.M, MHi: c0.M}
	for _, v := range vs[1:] {
		c := g.CoordOf(v)
		b.HLo = min(b.HLo, c.H)
		b.HHi = max(b.HHi, c.H)
		b.VLo = min(b.VLo, c.V)
		b.VHi = max(b.VHi, c.V)
		b.MLo = min(b.MLo, c.M)
		b.MHi = max(b.MHi, c.M)
	}
	return b
}

// NewRouter returns a Router for the graph.
func NewRouter(g *grid.Graph) *Router {
	n := g.NumVertices()
	return &Router{
		g:    g,
		dist: make([]float64, n),
		prev: make([]grid.VertexID, n),
		seen: make([]uint32, n),
	}
}

// Graph returns the graph the router operates on.
func (r *Router) Graph() *grid.Graph { return r.g }

// SetContext installs a cancellation context on the router: subsequent
// searches poll it periodically and abort once it is cancelled, making
// per-request deadlines effective even inside long Dijkstra expansions on
// large graphs. A nil context (the default) disables polling.
func (r *Router) SetContext(ctx context.Context) {
	if ctx != nil && ctx.Done() == nil {
		// A nil Done channel means the context can never be cancelled
		// (Background, TODO, or any value-only context): skip the polling
		// entirely.
		ctx = nil
	}
	r.ctx = ctx
	r.ctxErr = nil
}

// Err returns the context error that aborted the most recent search, or
// nil when the search ran to completion.
func (r *Router) Err() error { return r.ctxErr }

// cancelled polls the installed context; it records and reports the
// cancellation cause.
func (r *Router) cancelled() bool {
	if r.ctx == nil {
		return false
	}
	if err := r.ctx.Err(); err != nil {
		r.ctxErr = err
		return true
	}
	return false
}

func (r *Router) nextEpoch() {
	r.epoch++
	if r.epoch == 0 { // wrapped: clear tags and restart
		for i := range r.seen {
			r.seen[i] = 0
		}
		r.epoch = 1
	}
}

// ShortestToTarget runs a multi-source Dijkstra from sources and returns
// the first (cheapest) vertex for which isTarget returns true, together
// with the path from that vertex back to its source (inclusive on both
// ends, target first) and the path cost. ok is false when no target is
// reachable (within the bounds, if set).
func (r *Router) ShortestToTarget(sources []grid.VertexID, isTarget func(grid.VertexID) bool) (path []grid.VertexID, cost float64, ok bool) {
	r.nextEpoch()
	r.ctxErr = nil
	if fault.Enabled() {
		// The injected error travels the same road as a context
		// cancellation: recorded on ctxErr, surfaced by the tree builders.
		if err := fault.Inject("route.dijkstra"); err != nil {
			r.ctxErr = err
			return nil, 0, false
		}
	}
	r.heap = r.heap[:0]
	pops, relaxations := 0, 0
	defer func() {
		mSearches.Inc()
		mHeapPops.Add(int64(pops))
		mRelaxations.Add(int64(relaxations))
	}()
	for _, s := range sources {
		if r.g.Blocked(s) {
			continue
		}
		if r.Bounds != nil && !r.Bounds.Contains(r.g.CoordOf(s)) {
			continue
		}
		if r.seen[s] == r.epoch {
			continue
		}
		r.seen[s] = r.epoch
		r.dist[s] = 0
		r.prev[s] = -1
		r.heap.push(pair{0, s})
	}
	for len(r.heap) > 0 {
		pops++
		if pops%ctxCheckInterval == 0 && r.cancelled() {
			return nil, 0, false
		}
		p := r.heap.pop()
		if p.d > r.dist[p.id] { // stale entry
			continue
		}
		if isTarget(p.id) {
			// Trace back to the source.
			path = path[:0]
			for v := p.id; v != -1; v = r.prev[v] {
				path = append(path, v)
			}
			return path, p.d, true
		}
		r.nbrBuf = r.g.Neighbors(p.id, r.nbrBuf[:0])
		for _, nb := range r.nbrBuf {
			if r.Bounds != nil && !r.Bounds.Contains(r.g.CoordOf(nb.ID)) {
				continue
			}
			nd := p.d + nb.Cost
			if r.seen[nb.ID] != r.epoch || nd < r.dist[nb.ID] {
				relaxations++
				r.seen[nb.ID] = r.epoch
				r.dist[nb.ID] = nd
				r.prev[nb.ID] = p.id
				r.heap.push(pair{nd, nb.ID})
			}
		}
	}
	return nil, 0, false
}

// ShortestPath returns the cheapest path between two vertices (from src,
// ending at dst) and its cost.
func (r *Router) ShortestPath(src, dst grid.VertexID) ([]grid.VertexID, float64, bool) {
	return r.ShortestToTarget([]grid.VertexID{src}, func(v grid.VertexID) bool { return v == dst })
}

// pair is a heap entry; ties on distance break on smaller vertex ID so
// routing is fully deterministic.
type pair struct {
	d  float64
	id grid.VertexID
}

type pairHeap []pair

func (h pairHeap) less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].id < h[j].id
}

func (h *pairHeap) push(p pair) {
	*h = append(*h, p)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h).less(parent, i) {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *pairHeap) pop() pair {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// ErrUnreachable is returned when a terminal cannot be connected.
type ErrUnreachable struct {
	Terminal grid.VertexID
	Coord    grid.Coord
}

func (e *ErrUnreachable) Error() string {
	return fmt.Sprintf("route: terminal %d at %v is unreachable", e.Terminal, e.Coord)
}

// Is makes every unreachable-terminal error match the module's ErrNoPath
// sentinel under errors.Is, without losing the structured terminal/coord
// detail available through errors.As.
func (e *ErrUnreachable) Is(target error) bool { return target == errs.ErrNoPath }
