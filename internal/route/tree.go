package route

import (
	"fmt"
	"sort"

	"oarsmt/internal/errs"
	"oarsmt/internal/grid"
)

// Edge is one unit step of a routing tree between two grid-adjacent
// vertices, stored with A < B so edges have a canonical form.
type Edge struct {
	A, B grid.VertexID
}

// NewEdge returns the canonical edge between two vertices.
func NewEdge(a, b grid.VertexID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Tree is a routed rectilinear Steiner tree: a set of unit grid edges with
// a total cost. The vertex set of the tree is implied by its edges (plus
// the root for single-terminal trees).
type Tree struct {
	Root grid.VertexID
	// Edges in insertion order. Canonical form (A < B), no duplicates.
	Edges []Edge
	Cost  float64

	vertexSet map[grid.VertexID]struct{}
	edgeSet   map[Edge]struct{}
}

// NewTreeAt returns an empty tree rooted at root; callers grow it with
// AddPath. Custom tree constructions (the baseline routers) use this; the
// standard ones go through Router.OARMST.
func NewTreeAt(root grid.VertexID) *Tree { return newTree(root) }

// AddPath inserts every edge along the path (a vertex sequence) and
// returns the vertices that were new to the tree; see addPath.
func (t *Tree) AddPath(g *grid.Graph, path []grid.VertexID) []grid.VertexID {
	return t.addPath(g, path)
}

func newTree(root grid.VertexID) *Tree {
	return &Tree{
		Root:      root,
		vertexSet: map[grid.VertexID]struct{}{root: {}},
		edgeSet:   map[Edge]struct{}{},
	}
}

// Contains reports whether the vertex is part of the tree.
func (t *Tree) Contains(v grid.VertexID) bool {
	_, ok := t.vertexSet[v]
	return ok
}

// NumVertices returns the number of distinct vertices spanned by the tree.
func (t *Tree) NumVertices() int { return len(t.vertexSet) }

// Vertices returns the distinct vertices of the tree in increasing order.
func (t *Tree) Vertices() []grid.VertexID {
	out := make([]grid.VertexID, 0, len(t.vertexSet))
	for v := range t.vertexSet {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// addEdge inserts the edge and accumulates its cost; it is a no-op for an
// edge already present.
func (t *Tree) addEdge(g *grid.Graph, a, b grid.VertexID) {
	e := NewEdge(a, b)
	if _, dup := t.edgeSet[e]; dup {
		return
	}
	t.edgeSet[e] = struct{}{}
	t.Edges = append(t.Edges, e)
	t.Cost += g.EdgeCost(a, b)
	t.vertexSet[a] = struct{}{}
	t.vertexSet[b] = struct{}{}
}

// addPath inserts every edge along the path (a vertex sequence); edges
// already present are skipped, so a path may legally end on any tree
// vertex. It returns the vertices that were new to the tree.
func (t *Tree) addPath(g *grid.Graph, path []grid.VertexID) []grid.VertexID {
	var added []grid.VertexID
	for _, v := range path {
		if _, ok := t.vertexSet[v]; !ok {
			added = append(added, v)
		}
	}
	for i := 0; i+1 < len(path); i++ {
		t.addEdge(g, path[i], path[i+1])
	}
	return added
}

// Degrees returns the degree of every tree vertex.
func (t *Tree) Degrees() map[grid.VertexID]int {
	deg := make(map[grid.VertexID]int, len(t.vertexSet))
	for _, e := range t.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	if _, ok := deg[t.Root]; !ok {
		deg[t.Root] = 0
	}
	return deg
}

// Validate checks the structural invariants a routed tree must satisfy:
// every terminal is spanned, the edge set is connected and acyclic, no edge
// uses a blocked vertex or blocked edge, and Cost equals the sum of edge
// costs. It returns the first violation found.
func (t *Tree) Validate(g *grid.Graph, terminals []grid.VertexID) error {
	for _, term := range terminals {
		if !t.Contains(term) {
			return fmt.Errorf("%w: route: terminal %v not spanned", errs.ErrInvalidTree, g.CoordOf(term))
		}
	}
	// Acyclic + connected: |E| == |V| - 1 and a BFS from Root reaches all.
	if len(t.Edges) != len(t.vertexSet)-1 {
		return fmt.Errorf("%w: route: tree has %d edges for %d vertices (cycle or forest)",
			errs.ErrInvalidTree, len(t.Edges), len(t.vertexSet))
	}
	adj := make(map[grid.VertexID][]grid.VertexID, len(t.vertexSet))
	var cost float64
	for _, e := range t.Edges {
		ca, cb := g.CoordOf(e.A), g.CoordOf(e.B)
		switch {
		case ca.V == cb.V && ca.M == cb.M && cb.H-ca.H == 1:
			if g.EdgeXBlocked(ca.H, ca.V, ca.M) {
				return fmt.Errorf("%w: route: edge %v-%v is blocked", errs.ErrInvalidTree, ca, cb)
			}
		case ca.H == cb.H && ca.M == cb.M && cb.V-ca.V == 1:
			if g.EdgeYBlocked(ca.H, ca.V, ca.M) {
				return fmt.Errorf("%w: route: edge %v-%v is blocked", errs.ErrInvalidTree, ca, cb)
			}
		case ca.H == cb.H && ca.V == cb.V && cb.M-ca.M == 1:
			if g.EdgeZBlocked(ca.H, ca.V, ca.M) {
				return fmt.Errorf("%w: route: via %v-%v is blocked", errs.ErrInvalidTree, ca, cb)
			}
		default:
			return fmt.Errorf("%w: route: edge %v-%v joins non-adjacent vertices", errs.ErrInvalidTree, ca, cb)
		}
		cost += g.EdgeCost(e.A, e.B)
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	if diff := cost - t.Cost; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("%w: route: recorded cost %v != edge sum %v", errs.ErrInvalidTree, t.Cost, cost)
	}
	reached := map[grid.VertexID]bool{t.Root: true}
	queue := []grid.VertexID{t.Root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !reached[w] {
				reached[w] = true
				queue = append(queue, w)
			}
		}
	}
	if len(reached) != len(t.vertexSet) {
		return fmt.Errorf("%w: route: tree is disconnected (%d of %d reachable)",
			errs.ErrInvalidTree, len(reached), len(t.vertexSet))
	}
	return nil
}

// WirelengthByAxis decomposes the tree cost into horizontal, vertical and
// via components; useful for reporting and tests.
func (t *Tree) WirelengthByAxis(g *grid.Graph) (hor, ver, via float64) {
	for _, e := range t.Edges {
		ca, cb := g.CoordOf(e.A), g.CoordOf(e.B)
		c := g.EdgeCost(e.A, e.B)
		switch {
		case ca.V == cb.V && ca.M == cb.M:
			hor += c
		case ca.H == cb.H && ca.M == cb.M:
			ver += c
		default:
			via += c
		}
	}
	return hor, ver, via
}
