package route

import (
	"context"
	"errors"
	"testing"
	"time"

	"oarsmt/internal/grid"
)

// cancelledOARMST exercises the cancellation path: a pre-cancelled context
// must abort the construction with the context's error.
func TestOARMSTCancelled(t *testing.T) {
	g, err := grid.NewUniform(64, 64, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.SetContext(ctx)
	terms := []grid.VertexID{g.Index(0, 0, 0), g.Index(63, 63, 1), g.Index(0, 63, 0)}
	if _, err := r.OARMST(terms); !errors.Is(err, context.Canceled) {
		t.Fatalf("OARMST with cancelled context: err = %v, want context.Canceled", err)
	}
	if !errors.Is(r.Err(), context.Canceled) {
		t.Fatalf("Router.Err() = %v, want context.Canceled", r.Err())
	}
}

// TestOARMSTDeadline routes a large maze under a deadline that cannot be
// met and checks the search actually returns (promptly) with the deadline
// error instead of running to completion.
func TestOARMSTDeadline(t *testing.T) {
	g, err := grid.NewUniform(96, 96, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	terms := make([]grid.VertexID, 0, 24)
	for i := 0; i < 24; i++ {
		terms = append(terms, g.Index((i*17)%96, (i*41)%96, i%4))
	}
	r := NewRouter(g)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	r.SetContext(ctx)
	start := time.Now()
	_, err = r.OARMST(terms)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("OARMST past deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled OARMST took %v; cancellation is not prompt", elapsed)
	}
}

// TestSetContextBackgroundIsFree checks that installing the background
// context disables polling and routing still succeeds.
func TestSetContextBackground(t *testing.T) {
	g, err := grid.NewUniform(8, 8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g)
	r.SetContext(context.Background())
	tree, err := r.OARMST([]grid.VertexID{g.Index(0, 0, 0), g.Index(7, 7, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cost <= 0 {
		t.Fatalf("cost = %v, want > 0", tree.Cost)
	}
}

// TestSteinerTreeCancelled checks the SteinerTree entry point propagates
// cancellation too.
func TestSteinerTreeCancelled(t *testing.T) {
	g, err := grid.NewUniform(48, 48, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.SetContext(ctx)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(47, 0, 0), g.Index(0, 47, 0)}
	if _, err := r.SteinerTree(pins, []grid.VertexID{g.Index(24, 24, 0)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SteinerTree with cancelled context: err = %v, want context.Canceled", err)
	}
}
