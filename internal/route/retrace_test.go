package route

import (
	"math/rand"
	"strings"
	"testing"

	"oarsmt/internal/grid"
)

func TestRetraceRepairsDetour(t *testing.T) {
	g, err := grid.NewUniform(5, 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g)
	a, b := g.Index(0, 0, 0), g.Index(3, 0, 0)
	tree := NewTreeAt(a)
	tree.AddPath(g, []grid.VertexID{
		a, g.Index(0, 1, 0), g.Index(1, 1, 0), g.Index(2, 1, 0), g.Index(3, 1, 0), b,
	})
	if tree.Cost != 5 {
		t.Fatalf("detour tree cost = %v", tree.Cost)
	}
	fixed, improved := r.Retrace(tree, []grid.VertexID{a, b}, 2)
	if improved == 0 || fixed.Cost != 3 {
		t.Errorf("retrace: improved=%d cost=%v, want cost 3", improved, fixed.Cost)
	}
	if err := fixed.Validate(g, []grid.VertexID{a, b}); err != nil {
		t.Fatal(err)
	}
}

func TestRetraceKeepsOptimalTree(t *testing.T) {
	g, _ := grid.NewUniform(6, 6, 1, 1)
	r := NewRouter(g)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(5, 0, 0)}
	tree, err := r.OARMST(pins)
	if err != nil {
		t.Fatal(err)
	}
	same, improved := r.Retrace(tree, pins, 3)
	if improved != 0 {
		t.Error("optimal straight route should not be improvable")
	}
	if same.Cost != tree.Cost {
		t.Error("no-improvement retrace changed the cost")
	}
}

func TestRetraceInternalTerminalsUntouched(t *testing.T) {
	// A terminal in the middle of a path has degree 2: nothing dangles
	// from it and retracing must leave the tree valid.
	g, _ := grid.NewUniform(5, 1, 1, 1)
	r := NewRouter(g)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(2, 0, 0), g.Index(4, 0, 0)}
	tree, err := r.OARMST(pins)
	if err != nil {
		t.Fatal(err)
	}
	fixed, _ := r.Retrace(tree, pins, 3)
	if err := fixed.Validate(g, pins); err != nil {
		t.Fatal(err)
	}
	if fixed.Cost != 4 {
		t.Errorf("cost = %v, want 4", fixed.Cost)
	}
}

func TestRetraceRandomizedNeverWorsensOrDisconnects(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		g, _ := grid.NewUniform(7+rng.Intn(4), 7+rng.Intn(4), 1+rng.Intn(2), 2)
		for i := 0; i < g.NumVertices()/8; i++ {
			g.Block(grid.VertexID(rng.Intn(g.NumVertices())))
		}
		var pins []grid.VertexID
		seen := map[grid.VertexID]bool{}
		for len(pins) < 4+rng.Intn(3) {
			id := grid.VertexID(rng.Intn(g.NumVertices()))
			if !g.Blocked(id) && !seen[id] {
				seen[id] = true
				pins = append(pins, id)
			}
		}
		r := NewRouter(g)
		tree, err := r.OARMST(pins)
		if err != nil {
			if _, ok := err.(*ErrUnreachable); ok {
				continue
			}
			t.Fatal(err)
		}
		fixed, _ := r.Retrace(tree, pins, 3)
		if fixed.Cost > tree.Cost+1e-9 {
			t.Fatalf("trial %d: retrace worsened %v -> %v", trial, tree.Cost, fixed.Cost)
		}
		if err := fixed.Validate(g, pins); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestTreeAccessors(t *testing.T) {
	g, _ := grid.NewUniform(3, 3, 1, 1)
	tree := NewTreeAt(g.Index(0, 0, 0))
	if tree.NumVertices() != 1 {
		t.Errorf("fresh tree vertices = %d", tree.NumVertices())
	}
	tree.AddPath(g, []grid.VertexID{g.Index(0, 0, 0), g.Index(1, 0, 0), g.Index(2, 0, 0)})
	vs := tree.Vertices()
	if len(vs) != 3 || vs[0] > vs[1] || vs[1] > vs[2] {
		t.Errorf("Vertices = %v", vs)
	}
	if tree.NumVertices() != 3 {
		t.Errorf("vertices = %d", tree.NumVertices())
	}
}

func TestErrUnreachableMessage(t *testing.T) {
	g, _ := grid.NewUniform(2, 2, 1, 1)
	e := &ErrUnreachable{Terminal: 3, Coord: g.CoordOf(3)}
	if msg := e.Error(); !strings.Contains(msg, "unreachable") {
		t.Errorf("message = %q", msg)
	}
}

func TestRouterGraphAccessor(t *testing.T) {
	g, _ := grid.NewUniform(2, 2, 1, 1)
	if NewRouter(g).Graph() != g {
		t.Error("Graph accessor broken")
	}
}
