package route

import (
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
)

func benchInstance(b *testing.B, h, v, m, pins, blocked int) (*grid.Graph, []grid.VertexID) {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	g, err := grid.NewUniform(h, v, m, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < blocked; i++ {
		g.Block(grid.VertexID(r.Intn(g.NumVertices())))
	}
	var terms []grid.VertexID
	for len(terms) < pins {
		id := grid.VertexID(r.Intn(g.NumVertices()))
		if !g.Blocked(id) {
			terms = append(terms, id)
		}
	}
	// Ensure routability by unblocking a clear row per layer.
	for hh := 0; hh < h; hh++ {
		for mm := 0; mm < m; mm++ {
			g.Unblock(g.Index(hh, 0, mm))
		}
	}
	for vv := 0; vv < v; vv++ {
		for mm := 0; mm < m; mm++ {
			g.Unblock(g.Index(0, vv, mm))
		}
	}
	return g, terms
}

func BenchmarkOARMST32x32(b *testing.B) {
	g, terms := benchInstance(b, 32, 32, 4, 8, 300)
	r := NewRouter(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.OARMST(terms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOARMSTBounded32x32(b *testing.B) {
	g, terms := benchInstance(b, 32, 32, 4, 8, 300)
	r := NewRouter(g)
	r.BoundedExploration = true
	r.BoundMargin = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.OARMST(terms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOARMST128x128(b *testing.B) {
	g, terms := benchInstance(b, 128, 128, 4, 64, 5000)
	r := NewRouter(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.OARMST(terms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteinerTree32x32(b *testing.B) {
	g, terms := benchInstance(b, 32, 32, 4, 8, 300)
	r := NewRouter(g)
	rng := rand.New(rand.NewSource(2))
	var sps []grid.VertexID
	for len(sps) < 6 {
		id := grid.VertexID(rng.Intn(g.NumVertices()))
		if !g.Blocked(id) {
			sps = append(sps, id)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.SteinerTree(terms, sps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrace32x32(b *testing.B) {
	g, terms := benchInstance(b, 32, 32, 4, 8, 300)
	r := NewRouter(g)
	tree, err := r.OARMST(terms)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Retrace(tree, terms, 2)
	}
}

func BenchmarkShortestPath64(b *testing.B) {
	g, _ := benchInstance(b, 64, 64, 4, 2, 1000)
	r := NewRouter(g)
	src := g.Index(0, 0, 0)
	dst := g.Index(63, 63, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := r.ShortestPath(src, dst); !ok {
			b.Fatal("unreachable")
		}
	}
}
