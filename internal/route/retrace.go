package route

import (
	"sort"

	"oarsmt/internal/grid"
)

// Retrace performs path-assessed retracing in the spirit of [14]: for each
// terminal that dangles on a degree-1 path, the path from the terminal to
// its first branch point (or to another terminal) is ripped up and the
// terminal is re-routed against the remaining tree; the reroute is kept
// only when it is strictly cheaper. Passes repeat until a pass finds no
// improvement or maxPasses is reached.
//
// The input tree is not modified; the (possibly improved) result is
// returned together with the number of passes that found an improvement.
func (r *Router) Retrace(t *Tree, terminals []grid.VertexID, maxPasses int) (*Tree, int) {
	if maxPasses < 1 || len(t.Edges) == 0 {
		return t, 0
	}
	mRetracePasses.Inc()
	adj := make(map[grid.VertexID][]grid.VertexID, t.NumVertices())
	for _, e := range t.Edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	termSet := make(map[grid.VertexID]struct{}, len(terminals))
	for _, term := range terminals {
		termSet[term] = struct{}{}
	}
	terms := dedupSorted(terminals)

	improvedPasses := 0
	for pass := 0; pass < maxPasses; pass++ {
		if r.cancelled() {
			// A cancelled retrace returns the best tree found so far; the
			// tree builders surface the deadline, retracing never has to.
			break
		}
		improved := false
		for _, term := range terms {
			if len(adj[term]) != 1 {
				continue // internal terminal: nothing dangles
			}
			path, pathCost := danglingPath(r.g, adj, termSet, term)
			if len(path) < 2 {
				continue
			}
			removePath(adj, path)
			sources := make([]grid.VertexID, 0, len(adj))
			for v, ns := range adj {
				if v == term {
					// The detached terminal must not seed the search, or
					// the "reroute" would trivially reach itself at zero
					// cost and leave it disconnected.
					continue
				}
				if len(ns) > 0 || isTerm(termSet, v) {
					sources = append(sources, v)
				}
			}
			// Deterministic source order (map iteration is random).
			sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
			newPath, newCost, ok := r.ShortestToTarget(sources, func(v grid.VertexID) bool { return v == term })
			if ok && newCost < pathCost-1e-9 {
				addPathAdj(adj, newPath)
				improved = true
			} else {
				addPathAdj(adj, path)
			}
		}
		if !improved {
			break
		}
		improvedPasses++
	}
	if improvedPasses == 0 {
		return t, 0
	}

	// Rebuild the tree over sorted edges: inserting in adjacency-map order
	// would make both Edges order and the float Cost accumulation (addition
	// is not associative) vary run to run.
	edges := make([]Edge, 0, len(t.Edges))
	for v, ns := range adj {
		for _, w := range ns {
			if v < w {
				edges = append(edges, Edge{A: v, B: w})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		return edges[i].A < edges[j].A || (edges[i].A == edges[j].A && edges[i].B < edges[j].B)
	})
	out := newTree(terms[0])
	for _, e := range edges {
		out.addEdge(r.g, e.A, e.B)
	}
	return out, improvedPasses
}

// danglingPath walks from a degree-1 terminal through degree-2
// non-terminal vertices and returns the vertex sequence (terminal first,
// anchor last) and the cost of its edges. The anchor — a branch point,
// another terminal, or a higher-degree vertex — stays in the tree.
func danglingPath(g *grid.Graph, adj map[grid.VertexID][]grid.VertexID, termSet map[grid.VertexID]struct{}, term grid.VertexID) ([]grid.VertexID, float64) {
	path := []grid.VertexID{term}
	cost := 0.0
	prev := grid.VertexID(-1)
	cur := term
	for {
		var next grid.VertexID = -1
		for _, n := range adj[cur] {
			if n != prev {
				next = n
				break
			}
		}
		if next < 0 {
			break
		}
		cost += g.EdgeCost(cur, next)
		path = append(path, next)
		if len(adj[next]) != 2 || isTerm(termSet, next) {
			break // anchor reached
		}
		prev, cur = cur, next
	}
	return path, cost
}

func isTerm(termSet map[grid.VertexID]struct{}, v grid.VertexID) bool {
	_, ok := termSet[v]
	return ok
}

func removePath(adj map[grid.VertexID][]grid.VertexID, path []grid.VertexID) {
	for i := 0; i+1 < len(path); i++ {
		removeAdj(adj, path[i], path[i+1])
		removeAdj(adj, path[i+1], path[i])
	}
}

func removeAdj(adj map[grid.VertexID][]grid.VertexID, a, b grid.VertexID) {
	ns := adj[a]
	for i, n := range ns {
		if n == b {
			ns[i] = ns[len(ns)-1]
			adj[a] = ns[:len(ns)-1]
			return
		}
	}
}

func addPathAdj(adj map[grid.VertexID][]grid.VertexID, path []grid.VertexID) {
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if !hasAdj(adj, a, b) {
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
	}
}

func hasAdj(adj map[grid.VertexID][]grid.VertexID, a, b grid.VertexID) bool {
	for _, n := range adj[a] {
		if n == b {
			return true
		}
	}
	return false
}
