package route

import (
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
)

func uniform(t *testing.T, h, v, m int) *grid.Graph {
	t.Helper()
	g, err := grid.NewUniform(h, v, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShortestPathStraight(t *testing.T) {
	g := uniform(t, 5, 5, 1)
	r := NewRouter(g)
	path, cost, ok := r.ShortestPath(g.Index(0, 0, 0), g.Index(4, 0, 0))
	if !ok {
		t.Fatal("path not found")
	}
	if cost != 4 {
		t.Errorf("cost = %v, want 4", cost)
	}
	if len(path) != 5 {
		t.Errorf("path length = %d, want 5", len(path))
	}
	// Path is traced target-first.
	if path[0] != g.Index(4, 0, 0) || path[len(path)-1] != g.Index(0, 0, 0) {
		t.Errorf("path endpoints wrong: %v ... %v", path[0], path[len(path)-1])
	}
}

func TestShortestPathAroundObstacle(t *testing.T) {
	// Wall across the middle column except the top row.
	g := uniform(t, 5, 5, 1)
	for v := 0; v < 4; v++ {
		g.Block(g.Index(2, v, 0))
	}
	r := NewRouter(g)
	_, cost, ok := r.ShortestPath(g.Index(0, 0, 0), g.Index(4, 0, 0))
	if !ok {
		t.Fatal("detour path not found")
	}
	// Detour: up 4, right 4, down 4 = 12.
	if cost != 12 {
		t.Errorf("detour cost = %v, want 12", cost)
	}
}

func TestShortestPathUsesVias(t *testing.T) {
	// Full wall on layer 0; the route must go up a layer and back (via=2).
	g := uniform(t, 5, 3, 2)
	for v := 0; v < 3; v++ {
		g.Block(g.Index(2, v, 0))
	}
	r := NewRouter(g)
	_, cost, ok := r.ShortestPath(g.Index(0, 0, 0), g.Index(4, 0, 0))
	if !ok {
		t.Fatal("multi-layer path not found")
	}
	// 4 horizontal + 2 vias = 4 + 4 = 8.
	if cost != 8 {
		t.Errorf("cost = %v, want 8", cost)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := uniform(t, 3, 3, 1)
	// Box in the corner vertex.
	g.Block(g.Index(1, 0, 0))
	g.Block(g.Index(0, 1, 0))
	g.Block(g.Index(1, 1, 0))
	r := NewRouter(g)
	if _, _, ok := r.ShortestPath(g.Index(0, 0, 0), g.Index(2, 2, 0)); ok {
		t.Error("walled-off target should be unreachable")
	}
}

func TestShortestRespectsEdgeBlocks(t *testing.T) {
	g := uniform(t, 3, 1, 1)
	g.BlockEdgeX(1, 0, 0) // between (1,0,0) and (2,0,0); both vertices open
	r := NewRouter(g)
	if _, _, ok := r.ShortestPath(g.Index(0, 0, 0), g.Index(2, 0, 0)); ok {
		t.Error("edge-blocked route should be unreachable in a 3x1 grid")
	}
}

func TestShortestWeightedPrefersCheapRows(t *testing.T) {
	// DY[0] = 1 makes the bottom detour cheaper than the direct row if the
	// direct row's X steps are expensive... here instead make one column
	// interval expensive and verify the cost accounts for it.
	g := grid.MustNew(3, 2, 1, []float64{100, 1}, []float64{1}, 2)
	r := NewRouter(g)
	_, cost, ok := r.ShortestPath(g.Index(0, 0, 0), g.Index(2, 0, 0))
	if !ok {
		t.Fatal("no path")
	}
	// Only route: 100 + 1 (no alternative columns exist).
	if cost != 101 {
		t.Errorf("cost = %v, want 101", cost)
	}
}

func TestMultiSourceChoosesNearest(t *testing.T) {
	g := uniform(t, 9, 1, 1)
	r := NewRouter(g)
	sources := []grid.VertexID{g.Index(0, 0, 0), g.Index(8, 0, 0)}
	target := g.Index(6, 0, 0)
	path, cost, ok := r.ShortestToTarget(sources, func(v grid.VertexID) bool { return v == target })
	if !ok {
		t.Fatal("no path")
	}
	if cost != 2 {
		t.Errorf("cost = %v, want 2 (from the nearer source)", cost)
	}
	if path[len(path)-1] != g.Index(8, 0, 0) {
		t.Error("path should originate at the nearer source")
	}
}

func TestBoundsRestrictSearch(t *testing.T) {
	g := uniform(t, 5, 5, 1)
	// Wall forcing a detour through row 4.
	for v := 0; v < 4; v++ {
		g.Block(g.Index(2, v, 0))
	}
	r := NewRouter(g)
	b := Bounds{HLo: 0, HHi: 4, VLo: 0, VHi: 2, MLo: 0, MHi: 0}
	r.Bounds = &b
	if _, _, ok := r.ShortestPath(g.Index(0, 0, 0), g.Index(4, 0, 0)); ok {
		t.Error("detour outside bounds should fail")
	}
	r.Bounds = nil
	if _, _, ok := r.ShortestPath(g.Index(0, 0, 0), g.Index(4, 0, 0)); !ok {
		t.Error("unbounded retry should succeed")
	}
}

func TestBoundsOfAndInflate(t *testing.T) {
	g := uniform(t, 10, 10, 3)
	vs := []grid.VertexID{g.Index(2, 3, 1), g.Index(7, 1, 2)}
	b := BoundsOf(g, vs)
	if b != (Bounds{HLo: 2, HHi: 7, VLo: 1, VHi: 3, MLo: 1, MHi: 2}) {
		t.Errorf("BoundsOf = %+v", b)
	}
	in := b.Inflate(3, g)
	if in != (Bounds{HLo: 0, HHi: 9, VLo: 0, VHi: 6, MLo: 0, MHi: 2}) {
		t.Errorf("Inflate = %+v", in)
	}
}

func TestOARMSTTwoPins(t *testing.T) {
	g := uniform(t, 6, 6, 1)
	r := NewRouter(g)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(5, 5, 0)}
	tree, err := r.OARMST(pins)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cost != 10 {
		t.Errorf("cost = %v, want 10 (Manhattan)", tree.Cost)
	}
	if err := tree.Validate(g, pins); err != nil {
		t.Error(err)
	}
}

func TestOARMSTThreePinsAndSteinerRecovery(t *testing.T) {
	// Three pins in a T: (0,3), (6,3), (3,0). The optimal Steiner tree
	// costs 9 (trunk along row 3 plus a branch down column 3), but plain
	// maze-Prim is blind to which of the equal-cost staircases it routes
	// first, so it may pay up to 12. Supplying the Steiner point (3,3)
	// must recover the optimum — this is precisely the gap the paper's
	// learned Steiner-point selector exploits.
	g := uniform(t, 7, 7, 1)
	r := NewRouter(g)
	pins := []grid.VertexID{g.Index(0, 3, 0), g.Index(6, 3, 0), g.Index(3, 0, 0)}
	tree, err := r.OARMST(pins)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(g, pins); err != nil {
		t.Fatal(err)
	}
	if tree.Cost < 9 || tree.Cost > 12 {
		t.Errorf("plain OARMST cost = %v, want within [9, 12]", tree.Cost)
	}

	res, err := r.SteinerTree(pins, []grid.VertexID{g.Index(3, 3, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Cost != 9 {
		t.Errorf("Steiner-guided cost = %v, want 9", res.Tree.Cost)
	}
	if deg := res.Tree.Degrees()[g.Index(3, 3, 0)]; deg != 3 {
		t.Errorf("Steiner point degree = %d, want 3", deg)
	}
	if len(res.Kept) != 1 {
		t.Errorf("kept = %v, want the supplied Steiner point", res.Kept)
	}
}

func TestOARMSTSinglePin(t *testing.T) {
	g := uniform(t, 3, 3, 1)
	r := NewRouter(g)
	tree, err := r.OARMST([]grid.VertexID{g.Index(1, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cost != 0 || len(tree.Edges) != 0 {
		t.Errorf("single-pin tree should be empty, got cost %v", tree.Cost)
	}
	if err := tree.Validate(g, []grid.VertexID{g.Index(1, 1, 0)}); err != nil {
		t.Error(err)
	}
}

func TestOARMSTDuplicateTerminals(t *testing.T) {
	g := uniform(t, 4, 4, 1)
	r := NewRouter(g)
	p := g.Index(0, 0, 0)
	q := g.Index(3, 3, 0)
	tree, err := r.OARMST([]grid.VertexID{p, q, p, q})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cost != 6 {
		t.Errorf("cost = %v, want 6", tree.Cost)
	}
}

func TestOARMSTErrors(t *testing.T) {
	g := uniform(t, 4, 4, 1)
	r := NewRouter(g)
	if _, err := r.OARMST(nil); err == nil {
		t.Error("empty terminal set should fail")
	}
	g.Block(g.Index(1, 1, 0))
	if _, err := r.OARMST([]grid.VertexID{g.Index(1, 1, 0)}); err == nil {
		t.Error("blocked terminal should fail")
	}
	// Unreachable: wall off a pin.
	g2 := uniform(t, 3, 3, 1)
	g2.Block(g2.Index(1, 0, 0))
	g2.Block(g2.Index(0, 1, 0))
	g2.Block(g2.Index(1, 1, 0))
	r2 := NewRouter(g2)
	_, err := r2.OARMST([]grid.VertexID{g2.Index(0, 0, 0), g2.Index(2, 2, 0)})
	if err == nil {
		t.Fatal("unreachable terminal should fail")
	}
	if _, ok := err.(*ErrUnreachable); !ok {
		t.Errorf("error type = %T, want *ErrUnreachable", err)
	}
}

func TestSteinerTreeHelpfulPoint(t *testing.T) {
	// Four pins at the corners of a plus; the centre is the ideal Steiner
	// point and must be kept (degree 4).
	g := uniform(t, 9, 9, 1)
	r := NewRouter(g)
	pins := []grid.VertexID{
		g.Index(4, 0, 0), g.Index(4, 8, 0), g.Index(0, 4, 0), g.Index(8, 4, 0),
	}
	center := g.Index(4, 4, 0)
	res, err := r.SteinerTree(pins, []grid.VertexID{center})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 1 || res.Kept[0] != center {
		t.Errorf("kept = %v, want centre", res.Kept)
	}
	if res.Tree.Cost != 16 {
		t.Errorf("cost = %v, want 16", res.Tree.Cost)
	}
	if err := res.Tree.Validate(g, pins); err != nil {
		t.Error(err)
	}
}

func TestSteinerTreeRemovesRedundant(t *testing.T) {
	// Two pins on a line; any Steiner point ends with degree <= 2 and must
	// be dropped, leaving the plain two-pin route.
	g := uniform(t, 9, 9, 1)
	r := NewRouter(g)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(8, 0, 0)}
	sp := g.Index(4, 0, 0) // on the path: pure pass-through
	res, err := r.SteinerTree(pins, []grid.VertexID{sp})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 0 {
		t.Errorf("kept = %v, want none", res.Kept)
	}
	if len(res.Dropped) != 1 || res.Dropped[0] != sp {
		t.Errorf("dropped = %v, want [%d]", res.Dropped, sp)
	}
	if res.Tree.Cost != 8 {
		t.Errorf("cost = %v, want 8", res.Tree.Cost)
	}
}

func TestSteinerTreeRejectsInvalidPoints(t *testing.T) {
	g := uniform(t, 5, 5, 1)
	g.Block(g.Index(2, 2, 0))
	r := NewRouter(g)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(4, 4, 0)}
	res, err := r.SteinerTree(pins, []grid.VertexID{
		g.Index(2, 2, 0), // blocked
		g.Index(0, 0, 0), // coincides with a pin
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 2 {
		t.Errorf("dropped = %v, want both invalid points", res.Dropped)
	}
	if err := res.Tree.Validate(g, pins); err != nil {
		t.Error(err)
	}
}

func TestSteinerTreeOffTreePointRemovedWithoutCostIncrease(t *testing.T) {
	// A Steiner point far from the pins initially drags the tree out to
	// it; redundancy removal must restore the plain route.
	g := uniform(t, 9, 9, 1)
	r := NewRouter(g)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(8, 0, 0)}
	far := g.Index(4, 8, 0)
	res, err := r.SteinerTree(pins, []grid.VertexID{far})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 0 {
		t.Errorf("kept = %v, want none", res.Kept)
	}
	if res.Tree.Cost != 8 {
		t.Errorf("cost = %v, want 8 after removal", res.Tree.Cost)
	}
}

func TestSteinerTreeDropsUnreachablePoint(t *testing.T) {
	// Steiner point in a walled-off pocket: the router must drop it and
	// still produce a valid tree over the pins.
	g := uniform(t, 4, 4, 1)
	g.Block(g.Index(1, 0, 0))
	g.Block(g.Index(0, 1, 0))
	g.Block(g.Index(1, 1, 0))
	pocket := g.Index(0, 0, 0)
	pins := []grid.VertexID{g.Index(2, 0, 0), g.Index(3, 3, 0)}
	r := NewRouter(g)
	res, err := r.SteinerTree(pins, []grid.VertexID{pocket})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 0 {
		t.Errorf("kept = %v, want none", res.Kept)
	}
	found := false
	for _, d := range res.Dropped {
		if d == pocket {
			found = true
		}
	}
	if !found {
		t.Error("pocket point should be reported as dropped")
	}
	if err := res.Tree.Validate(g, pins); err != nil {
		t.Fatal(err)
	}
}

func TestTreeValidateCatchesCorruption(t *testing.T) {
	g := uniform(t, 4, 4, 1)
	r := NewRouter(g)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(3, 0, 0)}
	tree, err := r.OARMST(pins)
	if err != nil {
		t.Fatal(err)
	}
	tree.Cost += 5
	if err := tree.Validate(g, pins); err == nil {
		t.Error("cost corruption not caught")
	}
	tree.Cost -= 5
	if err := tree.Validate(g, []grid.VertexID{g.Index(3, 3, 0)}); err == nil {
		t.Error("missing terminal not caught")
	}
}

func TestWirelengthByAxis(t *testing.T) {
	g := uniform(t, 3, 3, 2) // via cost 2
	r := NewRouter(g)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(2, 2, 1)}
	tree, err := r.OARMST(pins)
	if err != nil {
		t.Fatal(err)
	}
	hor, ver, via := tree.WirelengthByAxis(g)
	if hor+ver+via != tree.Cost {
		t.Errorf("axis decomposition %v+%v+%v != cost %v", hor, ver, via, tree.Cost)
	}
	if via != 2 {
		t.Errorf("via component = %v, want 2", via)
	}
}

func TestOARMSTOrderInvariant(t *testing.T) {
	// The construction is seeded from the smallest terminal and all ties
	// break deterministically, so the input order of terminals must not
	// change the result.
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g, _ := grid.NewUniform(8, 8, 2, 2)
		var pins []grid.VertexID
		used := map[grid.VertexID]bool{}
		for len(pins) < 5 {
			id := grid.VertexID(r.Intn(g.NumVertices()))
			if !used[id] {
				used[id] = true
				pins = append(pins, id)
			}
		}
		router := NewRouter(g)
		a, err := router.OARMST(pins)
		if err != nil {
			t.Fatal(err)
		}
		shuffled := append([]grid.VertexID(nil), pins...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b, err := router.OARMST(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cost != b.Cost || len(a.Edges) != len(b.Edges) {
			t.Fatalf("trial %d: order-dependent OARMST: %v/%d vs %v/%d",
				trial, a.Cost, len(a.Edges), b.Cost, len(b.Edges))
		}
	}
}

func TestBoundedOARMSTMatchesUnboundedOnOpenGrid(t *testing.T) {
	// With no obstacles and a generous margin, bounded exploration must
	// find trees of the same cost as the unbounded construction.
	g, _ := grid.NewUniform(12, 12, 2, 3)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(11, 11, 1), g.Index(3, 9, 0), g.Index(8, 2, 1)}
	unb := NewRouter(g)
	a, err := unb.OARMST(pins)
	if err != nil {
		t.Fatal(err)
	}
	bnd := NewRouter(g)
	bnd.BoundedExploration = true
	bnd.BoundMargin = 12
	b, err := bnd.OARMST(pins)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("bounded %v vs unbounded %v with full-cover margin", b.Cost, a.Cost)
	}
	if err := b.Validate(g, pins); err != nil {
		t.Fatal(err)
	}
}

// TestOARMSTRandomInvariants is a randomized property test: on random
// layouts the OARMST must validate, span all pins, and never cost more
// than the sum of sequential 2-pin routes (a loose upper bound).
func TestOARMSTRandomInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		h, v, m := 4+r.Intn(8), 4+r.Intn(8), 1+r.Intn(3)
		g, err := grid.NewUniform(h, v, m, float64(1+r.Intn(4)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < h*v*m/10; i++ {
			g.Block(grid.VertexID(r.Intn(h * v * m)))
		}
		var pins []grid.VertexID
		for len(pins) < 3+r.Intn(4) {
			id := grid.VertexID(r.Intn(h * v * m))
			if !g.Blocked(id) {
				pins = append(pins, id)
			}
		}
		router := NewRouter(g)
		tree, err := router.OARMST(pins)
		if err != nil {
			if _, ok := err.(*ErrUnreachable); ok {
				continue // random blocks can legitimately disconnect pins
			}
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := tree.Validate(g, pins); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Upper bound: chain of pairwise shortest paths.
		var bound float64
		feasible := true
		for i := 0; i+1 < len(pins); i++ {
			_, c, ok := router.ShortestPath(pins[i], pins[i+1])
			if !ok {
				feasible = false
				break
			}
			bound += c
		}
		if feasible && tree.Cost > bound+1e-9 {
			t.Errorf("trial %d: tree cost %v exceeds chain bound %v", trial, tree.Cost, bound)
		}
	}
}

// TestSteinerNeverWorseAfterRemoval checks the engineering invariant the
// final router relies on: with redundancy removal, adding arbitrary
// Steiner points never leaves pass-through junk in the final tree.
func TestSteinerNeverLeavesLowDegreePoints(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		h, v := 5+r.Intn(6), 5+r.Intn(6)
		g, _ := grid.NewUniform(h, v, 2, 2)
		var pins, sps []grid.VertexID
		used := map[grid.VertexID]bool{}
		for len(pins) < 3+r.Intn(3) {
			id := grid.VertexID(r.Intn(g.NumVertices()))
			if !used[id] {
				used[id] = true
				pins = append(pins, id)
			}
		}
		for len(sps) < r.Intn(4) {
			id := grid.VertexID(r.Intn(g.NumVertices()))
			if !used[id] {
				used[id] = true
				sps = append(sps, id)
			}
		}
		router := NewRouter(g)
		res, err := router.SteinerTree(pins, sps)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		deg := res.Tree.Degrees()
		for _, s := range res.Kept {
			if deg[s] < 3 {
				t.Errorf("trial %d: kept Steiner point has degree %d", trial, deg[s])
			}
		}
		if err := res.Tree.Validate(g, pins); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
