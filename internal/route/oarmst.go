package route

import (
	"fmt"
	"sort"

	"oarsmt/internal/errs"
	"oarsmt/internal/grid"
)

// OARMST builds an obstacle-avoiding rectilinear minimum spanning tree
// connecting all terminals with the maze-router-based Prim's algorithm of
// [14]: the tree starts at one terminal and is repeatedly extended by the
// cheapest maze-routed path from any point of the current tree to the
// nearest unconnected terminal. Because new paths may attach to any tree
// vertex — not only terminals — the construction creates Steiner branching
// implicitly.
//
// Terminals are deduplicated; at least one is required. The result is
// deterministic: terminals are seeded from the smallest VertexID and all
// Dijkstra ties break on vertex ID.
func (r *Router) OARMST(terminals []grid.VertexID) (*Tree, error) {
	mOARMSTBuilds.Inc()
	terms := dedupSorted(terminals)
	if len(terms) == 0 {
		return nil, fmt.Errorf("%w: route: OARMST needs at least one terminal", errs.ErrInvalidLayout)
	}
	for _, t := range terms {
		if r.g.Blocked(t) {
			return nil, fmt.Errorf("%w: route: terminal %v is blocked", errs.ErrInvalidLayout, r.g.CoordOf(t))
		}
	}

	tree := newTree(terms[0])
	remaining := make(map[grid.VertexID]struct{}, len(terms)-1)
	for _, t := range terms[1:] {
		remaining[t] = struct{}{}
	}

	// The Dijkstra frontier is seeded with every tree vertex; the source
	// list is maintained incrementally as paths join the tree.
	sources := []grid.VertexID{terms[0]}
	for len(remaining) > 0 {
		if r.cancelled() {
			return nil, fmt.Errorf("route: OARMST: %w", r.ctxErr)
		}
		isTarget := func(v grid.VertexID) bool {
			_, isTerm := remaining[v]
			return isTerm
		}
		var path []grid.VertexID
		var ok bool
		if r.BoundedExploration {
			// Bounded exploration ([14]): window = tree box inflated to
			// reach the nearest remaining terminal plus the margin.
			treeBounds := BoundsOf(r.g, sources)
			dmin := -1
			//oarsmt:allow detmap(pure min-reduction over window distances; result is independent of visit order)
			for v := range remaining {
				if d := windowDistance(treeBounds, r.g.CoordOf(v)); dmin < 0 || d < dmin {
					dmin = d
				}
			}
			window := treeBounds.Inflate(dmin+r.BoundMargin, r.g)
			r.Bounds = &window
			path, _, ok = r.ShortestToTarget(sources, isTarget)
			r.Bounds = nil
		}
		if !ok {
			if r.ctxErr != nil {
				return nil, fmt.Errorf("route: OARMST: %w", r.ctxErr)
			}
			path, _, ok = r.ShortestToTarget(sources, isTarget)
		}
		if !ok {
			if r.ctxErr != nil {
				return nil, fmt.Errorf("route: OARMST: %w", r.ctxErr)
			}
			// Report a deterministic representative of the unreachable set.
			var worst grid.VertexID = -1
			//oarsmt:allow detmap(pure min-scan for the smallest unreachable terminal; order-insensitive)
			for v := range remaining {
				if worst == -1 || v < worst {
					worst = v
				}
			}
			return nil, &ErrUnreachable{Terminal: worst, Coord: r.g.CoordOf(worst)}
		}
		sources = append(sources, tree.addPath(r.g, path)...)
		delete(remaining, path[0]) // path[0] is the reached terminal
	}
	return tree, nil
}

// SteinerResult is the outcome of a Steiner-point-guided tree construction.
type SteinerResult struct {
	Tree *Tree
	// Kept holds the irredundant Steiner points that survived in the final
	// tree (degree >= 3, paper §2.1); sorted ascending.
	Kept []grid.VertexID
	// Dropped holds the requested Steiner points that were removed as
	// redundant or rejected as invalid (blocked / duplicate of a pin).
	Dropped []grid.VertexID
}

// SteinerTree implements the OARMST router of paper §3.1: build the
// spanning tree over pins plus the selected Steiner points, remove
// redundant Steiner points (degree < 3 in the routed tree), and
// reconstruct the spanning tree over the pins and the remaining
// irredundant Steiner points. Removal and reconstruction repeat until no
// Steiner point is redundant (the set shrinks monotonically, so this
// terminates).
//
// Invalid Steiner points — blocked vertices or vertices that coincide with
// a pin or another Steiner point — are dropped up front rather than
// reported as errors, because a learned selector may legitimately propose
// them.
func (r *Router) SteinerTree(pins, steiner []grid.VertexID) (*SteinerResult, error) {
	ps := dedupSorted(pins)
	if len(ps) == 0 {
		return nil, fmt.Errorf("%w: route: SteinerTree needs at least one pin", errs.ErrInvalidLayout)
	}
	pinSet := make(map[grid.VertexID]struct{}, len(ps))
	for _, p := range ps {
		pinSet[p] = struct{}{}
	}

	res := &SteinerResult{}
	// Obstacles can seal off pockets of free vertices; a Steiner point in
	// a pocket could never join the tree, so reachability from the pins is
	// part of validity.
	reachable := r.reachableFrom(ps[0])
	if r.ctxErr != nil {
		return nil, fmt.Errorf("route: SteinerTree: %w", r.ctxErr)
	}
	sps := make([]grid.VertexID, 0, len(steiner))
	for _, s := range dedupSorted(steiner) {
		if _, isPin := pinSet[s]; isPin || r.g.Blocked(s) || !reachable[s] {
			res.Dropped = append(res.Dropped, s)
			continue
		}
		sps = append(sps, s)
	}

	for {
		terms := make([]grid.VertexID, 0, len(ps)+len(sps))
		terms = append(terms, ps...)
		terms = append(terms, sps...)
		tree, err := r.OARMST(terms)
		if err != nil {
			return nil, err
		}
		deg := tree.Degrees()
		kept := sps[:0]
		for _, s := range sps {
			if deg[s] >= 3 {
				kept = append(kept, s)
			} else {
				res.Dropped = append(res.Dropped, s)
			}
		}
		if len(kept) == len(sps) || len(sps) == 0 {
			res.Tree = tree
			res.Kept = append([]grid.VertexID(nil), kept...)
			sort.Slice(res.Dropped, func(i, j int) bool { return res.Dropped[i] < res.Dropped[j] })
			return res, nil
		}
		sps = append([]grid.VertexID(nil), kept...)
	}
}

// windowDistance is the grid-space distance from a coordinate to a bounds
// window over the H and V axes (0 when inside).
func windowDistance(b Bounds, c grid.Coord) int {
	d := 0
	if c.H < b.HLo {
		d = max(d, b.HLo-c.H)
	}
	if c.H > b.HHi {
		d = max(d, c.H-b.HHi)
	}
	if c.V < b.VLo {
		d = max(d, b.VLo-c.V)
	}
	if c.V > b.VHi {
		d = max(d, c.V-b.VHi)
	}
	return d
}

// reachableFrom returns the set of free vertices reachable from the given
// vertex over unblocked edges (BFS, O(V+E)).
func (r *Router) reachableFrom(from grid.VertexID) []bool {
	reached := make([]bool, r.g.NumVertices())
	if r.g.Blocked(from) {
		return reached
	}
	reached[from] = true
	queue := []grid.VertexID{from}
	var buf []grid.Neighbor
	visits := 0
	for len(queue) > 0 {
		visits++
		if visits%ctxCheckInterval == 0 && r.cancelled() {
			return reached // partial; callers must consult r.ctxErr
		}
		v := queue[0]
		queue = queue[1:]
		buf = r.g.Neighbors(v, buf[:0])
		for _, nb := range buf {
			if !reached[nb.ID] {
				reached[nb.ID] = true
				queue = append(queue, nb.ID)
			}
		}
	}
	return reached
}

func dedupSorted(vs []grid.VertexID) []grid.VertexID {
	out := append([]grid.VertexID(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}
