package route

import (
	"testing"

	"oarsmt/internal/geom"
	"oarsmt/internal/grid"
)

func TestSegmentsStraightRun(t *testing.T) {
	g, _ := grid.NewUniform(5, 1, 1, 1)
	r := NewRouter(g)
	tree, err := r.OARMST([]grid.VertexID{g.Index(0, 0, 0), g.Index(4, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	segs, vias := tree.Segments(g)
	if len(segs) != 1 {
		t.Fatalf("segments = %d, want 1 merged run: %+v", len(segs), segs)
	}
	if segs[0].A.X != 0 || segs[0].B.X != 4 {
		t.Errorf("segment = %+v", segs[0])
	}
	if len(vias) != 0 {
		t.Errorf("vias = %d, want 0", len(vias))
	}
}

func TestSegmentsLShape(t *testing.T) {
	// Manually built L: (0,0) -> (2,0) -> (2,2).
	g, _ := grid.NewUniform(3, 3, 1, 1)
	tree := NewTreeAt(g.Index(0, 0, 0))
	tree.AddPath(g, []grid.VertexID{
		g.Index(0, 0, 0), g.Index(1, 0, 0), g.Index(2, 0, 0),
		g.Index(2, 1, 0), g.Index(2, 2, 0),
	})
	segs, _ := tree.Segments(g)
	if len(segs) != 2 {
		t.Fatalf("L shape should give 2 segments, got %d: %+v", len(segs), segs)
	}
}

func TestSegmentsBranching(t *testing.T) {
	// T shape: trunk along row 0 from x=0..4, branch up at x=2.
	g, _ := grid.NewUniform(5, 3, 1, 1)
	tree := NewTreeAt(g.Index(0, 0, 0))
	tree.AddPath(g, []grid.VertexID{
		g.Index(0, 0, 0), g.Index(1, 0, 0), g.Index(2, 0, 0), g.Index(3, 0, 0), g.Index(4, 0, 0),
	})
	tree.AddPath(g, []grid.VertexID{
		g.Index(2, 0, 0), g.Index(2, 1, 0), g.Index(2, 2, 0),
	})
	segs, _ := tree.Segments(g)
	// The horizontal trunk merges into one segment (the branch point does
	// not break a straight run), plus the vertical branch.
	if len(segs) != 2 {
		t.Fatalf("T shape should give 2 segments, got %d: %+v", len(segs), segs)
	}
	// Total segment length equals tree cost.
	var total float64
	for _, s := range segs {
		total += float64(abs64(s.A.X-s.B.X) + abs64(s.A.Y-s.B.Y))
	}
	if total != tree.Cost {
		t.Errorf("segment length sum %v != tree cost %v", total, tree.Cost)
	}
}

func TestSegmentsViaStack(t *testing.T) {
	// A straight via stack from layer 0 to layer 3 plus wires on two
	// layers.
	g, _ := grid.NewUniform(3, 1, 4, 1)
	tree := NewTreeAt(g.Index(0, 0, 0))
	tree.AddPath(g, []grid.VertexID{
		g.Index(0, 0, 0), g.Index(1, 0, 0),
		g.Index(1, 0, 1), g.Index(1, 0, 2), g.Index(1, 0, 3),
		g.Index(2, 0, 3),
	})
	segs, vias := tree.Segments(g)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2 (one per layer): %+v", len(segs), segs)
	}
	if len(vias) != 1 {
		t.Fatalf("vias = %d, want one merged stack: %+v", len(vias), vias)
	}
	if vias[0].FromLayer != 0 || vias[0].ToLayer != 3 {
		t.Errorf("via stack spans [%d,%d], want [0,3]", vias[0].FromLayer, vias[0].ToLayer)
	}
	if vias[0].At.X != 1 {
		t.Errorf("via at x=%d, want 1", vias[0].At.X)
	}
}

func TestSegmentsSplitViaStacks(t *testing.T) {
	// Two separate crossings at the same (h,v): layers 0-1 and 2-3, with a
	// wire detour in between would be needed for a real tree; here we
	// build the adjacency directly to test the merging logic.
	g, _ := grid.NewUniform(2, 1, 4, 1)
	tree := NewTreeAt(g.Index(0, 0, 0))
	tree.AddPath(g, []grid.VertexID{g.Index(0, 0, 0), g.Index(0, 0, 1)})
	tree.AddPath(g, []grid.VertexID{g.Index(0, 0, 1), g.Index(1, 0, 1)})
	tree.AddPath(g, []grid.VertexID{g.Index(1, 0, 1), g.Index(1, 0, 2)})
	tree.AddPath(g, []grid.VertexID{g.Index(1, 0, 2), g.Index(0, 0, 2)})
	tree.AddPath(g, []grid.VertexID{g.Index(0, 0, 2), g.Index(0, 0, 3)})
	_, vias := tree.Segments(g)
	// Crossings at h=0: layers 0-1 and 2-3 (not contiguous): two stacks.
	// Crossing at h=1: layers 1-2: one stack.
	if len(vias) != 3 {
		t.Fatalf("vias = %d, want 3: %+v", len(vias), vias)
	}
}

func TestSegmentsGeometricCoordinates(t *testing.T) {
	// Graphs built from geometry report original coordinates, so segment
	// lengths are true distances even on a sparse Hanan grid.
	pins := []geom.Point{{X: 10, Y: 5, Layer: 0}, {X: 70, Y: 5, Layer: 0}}
	g, ids, err := grid.FromObjects(pins, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g)
	tree, err := r.OARMST(ids)
	if err != nil {
		t.Fatal(err)
	}
	segs, _ := tree.Segments(g)
	if len(segs) != 1 {
		t.Fatalf("segments = %d: %+v", len(segs), segs)
	}
	if segs[0].A.X != 10 || segs[0].B.X != 70 || segs[0].A.Y != 5 {
		t.Errorf("segment in original coordinates = %+v", segs[0])
	}
}

func abs64(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
