package mcts

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

// TestSearchCtxCancelled checks a cancelled context interrupts an episode
// with the context's error instead of a partial sample.
func TestSearchCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sel, err := selector.NewRandom(rng, nn.DefaultUNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	in, err := layout.Random(rng, layout.RandomSpec{
		H: 8, V: 8, MinM: 2, MaxM: 2,
		MinPins: 5, MaxPins: 5, MinObstacles: 4, MaxObstacles: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SearchCtx(ctx, sel, in, Config{Iterations: 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchCtx with cancelled context: err = %v, want context.Canceled", err)
	}

	// The background path must still complete.
	res, err := SearchCtx(context.Background(), sel, in, Config{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.RootCost <= 0 {
		t.Fatalf("RootCost = %v, want > 0", res.RootCost)
	}
}
