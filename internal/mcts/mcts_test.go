package mcts

import (
	"math"
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

func tinySelector(t *testing.T, seed int64) *selector.Selector {
	t.Helper()
	s, err := selector.NewRandom(rand.New(rand.NewSource(seed)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smallInstance(t *testing.T, seed int64, pins int) *layout.Instance {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	in, err := layout.Random(r, layout.RandomSpec{
		H: 6, V: 6, MinM: 2, MaxM: 2,
		MinPins: pins, MaxPins: pins,
		MinObstacles: 3, MaxObstacles: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func testConfig() Config {
	return Config{Iterations: 16, ScaleIterations: false, UseCritic: true, CPuct: 1, MaxNoChange: 3}
}

func TestNewSearcherRejectsTooFewPins(t *testing.T) {
	sel := tinySelector(t, 1)
	in := smallInstance(t, 2, 2)
	if _, err := NewSearcher(sel, in, testConfig()); err == nil {
		t.Error("2-pin layout should be rejected")
	}
}

func TestActorPolicyMatchesEquation1(t *testing.T) {
	sel := tinySelector(t, 3)
	in := smallInstance(t, 4, 4)
	s, err := NewSearcher(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := in.Graph
	last := grid.VertexID(5)
	policy := s.ActorPolicy(nil, last)

	// Recompute eq. (1) independently.
	fsp := sel.FSP(g, in.Pins)
	valid := selector.ValidMask(g, in.Pins)
	want := make([]float64, g.NumVertices())
	prod, total := 1.0, 0.0
	for id := int(last) + 1; id < g.NumVertices(); id++ {
		if !valid[id] {
			continue
		}
		want[id] = fsp[id] * prod
		total += want[id]
		prod *= 1 - fsp[id]
	}
	sum := 0.0
	for id := range policy {
		if id <= int(last) && policy[id] != 0 {
			t.Fatalf("policy assigns mass to priority-violating vertex %d", id)
		}
		if !valid[id] && policy[id] != 0 {
			t.Fatalf("policy assigns mass to invalid vertex %d", id)
		}
		if total > 0 && math.Abs(policy[id]-want[id]/total) > 1e-12 {
			t.Fatalf("policy[%d] = %v, want %v", id, policy[id], want[id]/total)
		}
		sum += policy[id]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("policy sums to %v", sum)
	}
}

func TestActorPolicyOrderingWeights(t *testing.T) {
	// The weighting must multiply by (1 - fsp) of every *valid* vertex
	// between w and u — a vertex with large fsp early on suppresses all
	// later weights.
	sel := tinySelector(t, 5)
	in := smallInstance(t, 6, 4)
	s, err := NewSearcher(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	policy := s.ActorPolicy(nil, -1)
	fsp := sel.FSP(in.Graph, in.Pins)
	valid := selector.ValidMask(in.Graph, in.Pins)
	// First valid vertex: weight is exactly fsp (prod = 1) before
	// normalisation; ratio of policy to fsp must then be constant 1/total.
	var firstID = -1
	for id := 0; id < len(fsp); id++ {
		if valid[id] {
			firstID = id
			break
		}
	}
	if firstID < 0 {
		t.Skip("no valid vertices")
	}
	scale := policy[firstID] / fsp[firstID]
	// Second valid vertex must carry the (1 - fsp(first)) factor.
	for id := firstID + 1; id < len(fsp); id++ {
		if !valid[id] {
			continue
		}
		want := fsp[id] * (1 - fsp[firstID]) * scale
		if math.Abs(policy[id]-want) > 1e-9 {
			t.Errorf("policy[%d] = %v, want %v", id, policy[id], want)
		}
		break
	}
}

func TestSearchDepthLimit3Pins(t *testing.T) {
	// n = 3 pins allows at most n-2 = 1 Steiner point.
	sel := tinySelector(t, 6)
	in := smallInstance(t, 7, 3)
	res, err := Search(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Executed) > 1 {
		t.Errorf("executed %d Steiner points for a 3-pin layout", len(res.Executed))
	}
}

func TestSearchExecutedAscendingAndValid(t *testing.T) {
	sel := tinySelector(t, 8)
	in := smallInstance(t, 9, 6)
	res, err := Search(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Executed) > in.NumPins()-2 {
		t.Errorf("executed %d > n-2 = %d", len(res.Executed), in.NumPins()-2)
	}
	pinSet := in.PinSet()
	var prev grid.VertexID = -1
	for _, a := range res.Executed {
		if a <= prev {
			t.Errorf("executed actions not strictly ascending: %v", res.Executed)
		}
		prev = a
		if in.Graph.Blocked(a) {
			t.Error("executed action on obstacle")
		}
		if _, isPin := pinSet[a]; isPin {
			t.Error("executed action on pin")
		}
	}
}

func TestSearchLabelInvariants(t *testing.T) {
	sel := tinySelector(t, 10)
	in := smallInstance(t, 11, 5)
	res, err := Search(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	label := res.Sample.Label
	if len(label) != in.Graph.NumVertices() {
		t.Fatalf("label length %d", len(label))
	}
	pinSet := in.PinSet()
	anyPositive := false
	for id, l := range label {
		if l < 0 || l > 1 {
			t.Fatalf("label[%d] = %v outside [0,1]", id, l)
		}
		if l > 0 {
			anyPositive = true
		}
		v := grid.VertexID(id)
		if in.Graph.Blocked(v) && l != 0 {
			t.Errorf("blocked vertex %d has label %v", id, l)
		}
		if _, isPin := pinSet[v]; isPin && l != 0 {
			t.Errorf("pin vertex %d has label %v", id, l)
		}
	}
	if res.Iterations > 0 && !anyPositive {
		t.Error("no positive label despite search iterations")
	}
	// Executed actions should carry strong labels: they were selected at
	// least once wherever they were candidates.
	for _, a := range res.Executed {
		if label[a] == 0 {
			t.Errorf("executed action %d has zero label", a)
		}
	}
}

// TestFig7StyleCounting reconstructs the bookkeeping of the paper's Fig 7
// on a controlled single selection step: at a node whose candidates are
// known, choosing one action must grant one opportunity to every candidate
// and one selection to the chosen vertex only.
func TestFig7StyleCounting(t *testing.T) {
	sel := tinySelector(t, 50)
	in := smallInstance(t, 51, 4)
	s, err := NewSearcher(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Expand the root, then run exactly one iteration past it. That
	// iteration performs exactly one selection step at the root (the
	// child it reaches is fresh, so the traversal stops there).
	s.expand(s.root)
	candidates := make(map[grid.VertexID]bool, len(s.root.children))
	for i := range s.root.children {
		candidates[s.root.children[i].action] = true
	}
	if len(candidates) == 0 {
		t.Skip("no candidates at root")
	}
	s.iterate(in.NumPins() - 2)

	totalSel, totalOpp := 0, 0
	for id := range s.nSel {
		totalSel += s.nSel[id]
		totalOpp += s.nOpp[id]
		if s.nOpp[id] > 0 && !candidates[grid.VertexID(id)] {
			t.Errorf("vertex %d got an opportunity without being a candidate", id)
		}
	}
	if totalSel != 1 {
		t.Errorf("one selection step should record 1 selection, got %d", totalSel)
	}
	if totalOpp != len(candidates) {
		t.Errorf("opportunities = %d, want one per candidate (%d)", totalOpp, len(candidates))
	}
}

func TestLabelCountingInvariants(t *testing.T) {
	// Equation (3) bookkeeping (paper Fig 7): n_sel(v) <= n_opp(v) for
	// every vertex, the total selections equal the number of selection
	// steps performed, and opportunities are only granted to vertices that
	// were candidates at some visited node.
	sel := tinySelector(t, 30)
	in := smallInstance(t, 31, 5)
	s, err := NewSearcher(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	totalSel, totalOpp := 0, 0
	for id := range s.nSel {
		if s.nSel[id] > s.nOpp[id] {
			t.Fatalf("vertex %d selected %d times with only %d opportunities",
				id, s.nSel[id], s.nOpp[id])
		}
		totalSel += s.nSel[id]
		totalOpp += s.nOpp[id]
	}
	if totalSel == 0 {
		t.Error("no selections recorded despite a full episode")
	}
	if totalOpp < totalSel {
		t.Error("fewer opportunities than selections overall")
	}
}

func TestRootActionStats(t *testing.T) {
	sel := tinySelector(t, 40)
	in := smallInstance(t, 41, 5)
	res, err := Search(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Executed) == 0 {
		t.Skip("episode ended before any execution")
	}
	if len(res.RootActions) == 0 {
		t.Fatal("no root action stats recorded")
	}
	if len(res.RootActions) > 16 {
		t.Errorf("stats capped at 16, got %d", len(res.RootActions))
	}
	for i := 1; i < len(res.RootActions); i++ {
		if res.RootActions[i].Visits > res.RootActions[i-1].Visits {
			t.Fatal("root actions not sorted by visits")
		}
	}
	// The first executed action is the most-visited root action.
	if res.RootActions[0].Action != res.Executed[0] {
		t.Errorf("top action %d != first executed %d",
			res.RootActions[0].Action, res.Executed[0])
	}
	for _, a := range res.RootActions {
		if a.Prior < 0 || a.Prior > 1 {
			t.Errorf("prior %v out of range", a.Prior)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	selA := tinySelector(t, 12)
	selB := tinySelector(t, 12)
	inA := smallInstance(t, 13, 5)
	inB := smallInstance(t, 13, 5)
	resA, err := Search(selA, inA, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Search(selB, inB, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Executed) != len(resB.Executed) {
		t.Fatal("nondeterministic executed length")
	}
	for i := range resA.Executed {
		if resA.Executed[i] != resB.Executed[i] {
			t.Fatal("nondeterministic executed sequence")
		}
	}
	for i := range resA.Sample.Label {
		if resA.Sample.Label[i] != resB.Sample.Label[i] {
			t.Fatal("nondeterministic label")
		}
	}
}

func TestSearchCurriculumModeNoCritic(t *testing.T) {
	sel := tinySelector(t, 14)
	in := smallInstance(t, 15, 4)
	cfg := testConfig()
	cfg.UseCritic = false
	res, err := Search(sel, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RootCost <= 0 {
		t.Error("root cost should be positive")
	}
	if res.Iterations == 0 {
		t.Error("no iterations performed")
	}
}

func TestCriticCompletesRemainingPoints(t *testing.T) {
	sel := tinySelector(t, 16)
	in := smallInstance(t, 17, 6)
	s, err := NewSearcher(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// With zero remaining, the critic reduces to the direct state cost.
	direct := s.stateCost(nil)
	if got := s.CriticCost(nil, 0); got != direct {
		t.Errorf("critic with 0 remaining = %v, want direct cost %v", got, direct)
	}
	// With remaining points the critic routes pins + completed set; the
	// cost is that of a valid OARMST, hence >= the all-pins MST lower
	// bound is not guaranteed — just require positivity and determinism.
	c1 := s.CriticCost(nil, in.NumPins()-2)
	c2 := s.CriticCost(nil, in.NumPins()-2)
	if c1 <= 0 || c1 != c2 {
		t.Errorf("critic cost %v / %v", c1, c2)
	}
}

func TestTerminalOnCostIncrease(t *testing.T) {
	sel := tinySelector(t, 18)
	in := smallInstance(t, 19, 5)
	s, err := NewSearcher(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Build a child whose cost is forced higher by checking evaluation
	// logic directly: pick any valid vertex far from all pins.
	parent := s.root
	s.ensureEvaluated(parent)
	child := s.makeChild(parent, 0)
	// Find a valid action.
	pinSet := in.PinSet()
	for id := 0; id < in.Graph.NumVertices(); id++ {
		v := grid.VertexID(id)
		if in.Graph.Blocked(v) {
			continue
		}
		if _, isPin := pinSet[v]; isPin {
			continue
		}
		child = s.makeChild(parent, v)
		s.ensureEvaluatedWithPins(child, []grid.VertexID{v})
		break
	}
	if child.cost > parent.cost && !child.terminal {
		t.Error("cost-increasing child must be terminal (criterion 2)")
	}
	if math.Abs(child.cost-parent.cost) < 1e-9 && child.noChange != 1 {
		t.Error("cost-preserving child must increment noChange")
	}
}

func TestNoChangeTerminalChain(t *testing.T) {
	sel := tinySelector(t, 20)
	in := smallInstance(t, 21, 6)
	cfg := testConfig()
	cfg.MaxNoChange = 2
	s, err := NewSearcher(sel, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a chain of evaluated nodes with identical costs.
	a := s.root
	s.ensureEvaluated(a)
	b := s.makeChild(a, 1)
	b.evaluated, b.cost, b.noChange = true, a.cost, 1
	c := s.makeChild(b, 2)
	c.evaluated = false
	// Manually evaluate c against b via the internal logic by stubbing:
	c.evaluated = true
	c.cost = b.cost
	c.noChange = b.noChange + 1
	if c.noChange >= cfg.MaxNoChange {
		c.terminal = true
	}
	if !c.terminal {
		t.Error("chain of cost-preserving actions should hit criterion 3")
	}
}

func TestAlphaScaling(t *testing.T) {
	sel := tinySelector(t, 22)
	in := smallInstance(t, 23, 4) // 6x6x2 = 72 vertices < BaseVolume
	cfg := testConfig()
	cfg.Iterations = 100
	cfg.ScaleIterations = true
	s, err := NewSearcher(sel, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Smaller-than-base layouts keep the base budget (never reduced).
	if got := s.alpha(); got != 100 {
		t.Errorf("alpha = %d, want 100", got)
	}
	cfg.ScaleIterations = false
	s2, _ := NewSearcher(sel, in, cfg)
	if got := s2.alpha(); got != 100 {
		t.Errorf("unscaled alpha = %d", got)
	}
	// A layout 2x the base volume doubles the budget.
	r := rand.New(rand.NewSource(24))
	big, err := layout.Random(r, layout.RandomSpec{
		H: 16, V: 16, MinM: 8, MaxM: 8, MinPins: 3, MaxPins: 3, MinObstacles: 0, MaxObstacles: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.ScaleIterations = true
	s3, err := NewSearcher(sel, big, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.alpha(); got != 200 {
		t.Errorf("scaled alpha = %d, want 200", got)
	}
}

func TestSearchTreeChildrenRespectPriority(t *testing.T) {
	sel := tinySelector(t, 25)
	in := smallInstance(t, 26, 5)
	s, err := NewSearcher(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Walk the remaining tree from the final root upwards is not possible;
	// instead re-run a few iterations on a fresh searcher and inspect.
	s2, _ := NewSearcher(sel, in.Clone(), testConfig())
	for i := 0; i < 20; i++ {
		s2.iterate(in.NumPins() - 2)
	}
	var walk func(nd *node)
	unique := map[string]bool{}
	var walkState []grid.VertexID
	walk = func(nd *node) {
		key := ""
		for _, v := range walkState {
			key += string(rune(v)) + ","
		}
		if unique[key] {
			t.Errorf("duplicate combination in search tree: %v", walkState)
		}
		unique[key] = true
		for i := range nd.children {
			e := &nd.children[i]
			if e.action <= nd.last {
				t.Errorf("child action %d violates priority after %d", e.action, nd.last)
			}
			if e.child != nil {
				walkState = append(walkState, e.action)
				walk(e.child)
				walkState = walkState[:len(walkState)-1]
			}
		}
	}
	walk(s2.root)
}
