package mcts

import (
	"testing"

	"oarsmt/internal/parallel"
)

// TestSearchDeterministicAcrossWorkerCounts verifies the determinism
// contract of the parallel leaf prefetch: the episode's selected Steiner
// set, label, costs and search statistics are independent of the worker
// count. Prefetching only computes child routing costs — pure functions of
// the child pin set — ahead of time, so the search trajectory must be
// bit-identical to the serial one.
func TestSearchDeterministicAcrossWorkerCounts(t *testing.T) {
	prevW := parallel.Workers()
	defer parallel.SetWorkers(prevW)

	sel := tinySelector(t, 11)
	cfg := testConfig()

	for _, seed := range []int64{5, 9} {
		in := smallInstance(t, seed, 5)

		parallel.SetWorkers(1)
		ref, err := Search(sel, in, cfg)
		if err != nil {
			t.Fatal(err)
		}

		for _, w := range []int{2, 3, 5} {
			parallel.SetWorkers(w)
			got, err := Search(sel, in, cfg)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if len(got.Executed) != len(ref.Executed) {
				t.Fatalf("seed=%d workers=%d: executed %v != serial %v",
					seed, w, got.Executed, ref.Executed)
			}
			for i := range ref.Executed {
				if got.Executed[i] != ref.Executed[i] {
					t.Fatalf("seed=%d workers=%d: executed %v != serial %v",
						seed, w, got.Executed, ref.Executed)
				}
			}
			if got.RootCost != ref.RootCost || got.FinalCost != ref.FinalCost {
				t.Fatalf("seed=%d workers=%d: costs (%v,%v) != serial (%v,%v)",
					seed, w, got.RootCost, got.FinalCost, ref.RootCost, ref.FinalCost)
			}
			if got.Iterations != ref.Iterations || got.NodesExpanded != ref.NodesExpanded {
				t.Fatalf("seed=%d workers=%d: stats (%d,%d) != serial (%d,%d)",
					seed, w, got.Iterations, got.NodesExpanded, ref.Iterations, ref.NodesExpanded)
			}
			for i := range ref.Sample.Label {
				if got.Sample.Label[i] != ref.Sample.Label[i] {
					t.Fatalf("seed=%d workers=%d: label[%d] differs", seed, w, i)
				}
			}
			for i := range ref.RootActions {
				if got.RootActions[i] != ref.RootActions[i] {
					t.Fatalf("seed=%d workers=%d: root action %d differs: %+v != %+v",
						seed, w, i, got.RootActions[i], ref.RootActions[i])
				}
			}
		}
	}
}
