// Package mcts implements the paper's primary contribution: the
// combinatorial Monte-Carlo tree search (§3.4–3.5) that trains the
// Steiner-point selector to emit the entire final combination of Steiner
// points in one inference.
//
// The search differs from conventional (AlphaGo-like) MCTS in three ways:
//
//  1. Actions are constrained by a lexicographic selection priority — a
//     Steiner point may only be placed at a vertex whose (h, v, m)
//     coordinate is larger than the previously placed one — so every node
//     of the search tree represents a unique *combination* of points.
//  2. The actor converts the selector's independent per-vertex final
//     selected probabilities fsp(v) into a sequential policy with
//     eq. (1): p'(u) = fsp(u) · Π_{w<v<u} (1 − fsp(v)), normalised over
//     valid u.
//  3. The training label is extracted from the entire search tree at the
//     end of the episode with eq. (3): L_fsp(v) = n_sel(v) / n_opp(v),
//     rather than per-move visit counts.
package mcts

import (
	"context"
	"fmt"
	"math"
	"sort"

	"oarsmt/internal/errs"
	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/obs"
	"oarsmt/internal/parallel"
	"oarsmt/internal/route"
	"oarsmt/internal/selector"
)

// BaseVolume is the layout volume (16x16x4) at which Config.Iterations is
// interpreted literally; larger layouts scale the iteration budget
// proportionally (paper §3.4).
const BaseVolume = 16 * 16 * 4

// Config parameterises a combinatorial MCTS episode.
type Config struct {
	// Iterations is α, the number of search iterations per executed
	// action, specified for a BaseVolume layout (paper: 2000).
	Iterations int
	// ScaleIterations scales α with layout volume relative to BaseVolume.
	ScaleIterations bool
	// UseCritic selects the simulation value source: true uses the
	// selector-derived critic of Fig 5; false (the curriculum mode of
	// §3.6's first stages) uses the directly computed routing cost of the
	// leaf state.
	UseCritic bool
	// CPuct scales the exploration term U(s,a); the paper's eq. (2) uses
	// 1.0.
	CPuct float64
	// MaxNoChange is the number of consecutive cost-preserving actions
	// after which a state is terminal (paper: 3).
	MaxNoChange int
}

// DefaultConfig returns the paper's settings with a CPU-scale iteration
// budget.
func DefaultConfig() Config {
	return Config{
		Iterations:      128,
		ScaleIterations: true,
		UseCritic:       true,
		CPuct:           1.0,
		MaxNoChange:     3,
	}
}

func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 128
	}
	if c.CPuct == 0 {
		c.CPuct = 1.0
	}
	if c.MaxNoChange <= 0 {
		c.MaxNoChange = 3
	}
	return c
}

// Sample is one training sample produced by an episode: the initial layout
// and the per-vertex label L_fsp (eq. 3), indexed by VertexID.
type Sample struct {
	Instance *layout.Instance
	Label    []float64
}

// Result reports everything a caller may want from one episode.
type Result struct {
	Sample Sample
	// Executed is the sequence of Steiner points actually committed, in
	// execution (= priority) order.
	Executed []grid.VertexID
	// RootCost is rc_s0, the routing cost with no Steiner points.
	RootCost float64
	// FinalCost is the routing cost of the terminal executed state.
	FinalCost float64
	// Iterations is the total number of search iterations performed.
	Iterations int
	// NodesExpanded counts expansion steps.
	NodesExpanded int
	// RootActions holds the initial root's most-visited actions with
	// their UCT statistics, for introspection and debugging (sorted by
	// descending visit count, capped at 16 entries).
	RootActions []ActionStat
}

// ActionStat is one root action's search statistics (paper §3.4's
// P/N/W/Q tuple).
type ActionStat struct {
	Action grid.VertexID
	Prior  float64
	Visits int
	Q      float64
}

// edge is one (state, action) pair of the search tree with the UCT
// statistics of paper §3.4.
type edge struct {
	action grid.VertexID
	p      float64 // prior probability P(s,a)
	n      int     // visit count N(s,a)
	w      float64 // total value W(s,a)
	q      float64 // average value Q(s,a)
	child  *node
}

// node is one state: the set of Steiner points selected so far, stored as
// the ascending action sequence (ascending == priority order, so the
// sequence is canonical for the combination).
type node struct {
	parent *node
	// last is the action that created this node (-1 at the root).
	last grid.VertexID
	// depth == number of selected Steiner points.
	depth int

	evaluated bool // cost/terminal computed
	// costDone marks a routing cost prefetched by the parallel leaf
	// evaluation; terminal flags are still derived lazily.
	costDone bool
	cost     float64
	noChange int
	terminal bool

	expanded bool
	children []edge
}

// Searcher runs combinatorial MCTS episodes over one layout.
type Searcher struct {
	cfg    Config
	sel    *selector.Selector
	in     *layout.Instance
	router *route.Router

	nSel []int
	nOpp []int

	// shardRouters are per-worker routers for the parallel leaf
	// evaluation; the embedded router stays reserved for the search
	// goroutine. Grown on demand before each parallel section.
	shardRouters []*route.Router

	root     *node
	rootCost float64
	// state holds the Steiner points of the current root, ascending.
	state []grid.VertexID

	iterations    int
	nodesExpanded int

	// sw aggregates per-stage timings across iterations when the episode
	// runs under an active trace; nil (the common case) makes every lap a
	// no-op. Timing is telemetry only — it never feeds the search.
	sw *obs.Stopwatch
}

// NewSearcher prepares an episode on the instance. The instance must have
// at least 3 pins (a 2-pin layout needs no Steiner points).
func NewSearcher(sel *selector.Selector, in *layout.Instance, cfg Config) (*Searcher, error) {
	if in.NumPins() < 3 {
		return nil, fmt.Errorf("%w: mcts: layout %q has %d pins; need >= 3", errs.ErrInvalidLayout, in.Name, in.NumPins())
	}
	cfg = cfg.withDefaults()
	s := &Searcher{
		cfg:    cfg,
		sel:    sel,
		in:     in,
		router: route.NewRouter(in.Graph),
		nSel:   make([]int, in.Graph.NumVertices()),
		nOpp:   make([]int, in.Graph.NumVertices()),
	}
	tree, err := s.router.OARMST(in.Pins)
	if err != nil {
		return nil, fmt.Errorf("mcts: root state unroutable: %w", err)
	}
	s.rootCost = tree.Cost
	s.root = &node{last: -1, depth: 0, evaluated: true, cost: tree.Cost}
	return s, nil
}

// alpha returns the per-move iteration budget for this layout.
func (s *Searcher) alpha() int {
	a := s.cfg.Iterations
	if s.cfg.ScaleIterations {
		vol := s.in.Graph.NumVertices()
		scaled := int(math.Round(float64(a) * float64(vol) / float64(BaseVolume)))
		if scaled > a {
			a = scaled
		}
	}
	if a < 1 {
		a = 1
	}
	return a
}

// Run plays one full episode: α iterations per executed action until the
// root becomes terminal, then extracts the training sample.
func (s *Searcher) Run() (*Result, error) { return s.RunCtx(context.Background()) }

// RunCtx is Run with cancellation: the context is polled once per search
// iteration (each iteration routes a handful of OARMSTs, so cancellation
// lands promptly), and a cancelled episode returns the context's error
// instead of a partial sample.
func (s *Searcher) RunCtx(ctx context.Context) (*Result, error) {
	ctx, end := obs.Span(ctx, "mcts.episode")
	defer end()
	if obs.Enabled(ctx) {
		s.sw = obs.NewStopwatch()
	}
	var executed []grid.VertexID
	var rootActions []ActionStat
	alpha := s.alpha()
	maxDepth := s.in.NumPins() - 2

	for !s.rootTerminal() {
		for i := 0; i < alpha; i++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("mcts: episode on %q: %w", s.in.Name, err)
			}
			s.iterate(maxDepth)
		}
		if rootActions == nil {
			rootActions = s.rootActionStats(16)
		}
		best := s.bestRootAction()
		if best < 0 {
			break // no explorable action: treat root as terminal
		}
		e := &s.root.children[best]
		if e.child == nil {
			e.child = s.makeChild(s.root, e.action)
		}
		s.root = e.child
		s.state = append(s.state, e.action)
		executed = append(executed, e.action)
		s.ensureEvaluated(s.root)
	}

	s.sw.Emit(ctx)
	m := obs.MetricsFrom(ctx)
	m.Counter("mcts.episodes").Inc()
	m.Counter("mcts.iterations").Add(int64(s.iterations))
	m.Counter("mcts.nodes_expanded").Add(int64(s.nodesExpanded))

	label := make([]float64, len(s.nSel))
	for i := range label {
		if s.nOpp[i] > 0 {
			label[i] = float64(s.nSel[i]) / float64(s.nOpp[i])
		}
	}
	return &Result{
		Sample:        Sample{Instance: s.in, Label: label},
		Executed:      executed,
		RootCost:      s.rootCost,
		FinalCost:     s.root.cost,
		Iterations:    s.iterations,
		NodesExpanded: s.nodesExpanded,
		RootActions:   rootActions,
	}, nil
}

// rootActionStats snapshots the current root's edges sorted by descending
// visit count (ties on smaller action), capped at limit entries.
func (s *Searcher) rootActionStats(limit int) []ActionStat {
	out := make([]ActionStat, 0, len(s.root.children))
	for i := range s.root.children {
		e := &s.root.children[i]
		out = append(out, ActionStat{Action: e.action, Prior: e.p, Visits: e.n, Q: e.q})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Visits != out[j].Visits {
			return out[i].Visits > out[j].Visits
		}
		return out[i].Action < out[j].Action
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

func (s *Searcher) rootTerminal() bool {
	s.ensureEvaluated(s.root)
	if s.root.terminal {
		return true
	}
	if !s.root.expanded {
		s.expand(s.root)
	}
	return s.root.terminal || len(s.root.children) == 0
}

// iterate performs one selection→expansion→simulation→backpropagation
// pass (paper Fig 6).
func (s *Searcher) iterate(maxDepth int) {
	s.iterations++
	s.sw.Reset()
	cur := s.root
	// statePins tracks the Steiner points along the traversal path.
	path := make([]*edge, 0, 8)
	pathPins := append([]grid.VertexID(nil), s.state...)

	for {
		s.ensureEvaluatedWithPins(cur, pathPins)
		if cur.terminal {
			break
		}
		if !cur.expanded {
			s.expandWithPins(cur, pathPins)
			if len(cur.children) == 0 {
				cur.terminal = true
			}
			break
		}
		if len(cur.children) == 0 {
			cur.terminal = true
			break
		}
		ei := s.selectChild(cur)
		e := &cur.children[ei]
		// Label bookkeeping (paper Fig 7): every candidate at this node
		// had an opportunity; the chosen one is selected.
		for i := range cur.children {
			s.nOpp[cur.children[i].action]++
		}
		s.nSel[e.action]++
		if e.child == nil {
			e.child = s.makeChild(cur, e.action)
		}
		path = append(path, e)
		pathPins = append(pathPins, e.action)
		cur = e.child
	}

	// Simulation: value of the leaf.
	s.ensureEvaluatedWithPins(cur, pathPins)
	s.sw.Lap("mcts.select")
	v := s.leafValue(cur, pathPins, maxDepth)
	s.sw.Lap("mcts.leaf_eval")

	// Backpropagation.
	for _, e := range path {
		e.n++
		e.w += v
		e.q = e.w / float64(e.n)
	}
	s.sw.Lap("mcts.backprop")
}

// selectChild returns the index of the child edge maximising Q + U
// (eq. 2), ties broken on smaller action ID for determinism.
func (s *Searcher) selectChild(nd *node) int {
	sumN := 0
	for i := range nd.children {
		sumN += nd.children[i].n
	}
	sqrtSum := math.Sqrt(float64(sumN))
	best, bestScore := -1, math.Inf(-1)
	for i := range nd.children {
		e := &nd.children[i]
		u := s.cfg.CPuct * e.p * sqrtSum / float64(1+e.n)
		score := e.q + u
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

func (s *Searcher) makeChild(parent *node, action grid.VertexID) *node {
	return &node{parent: parent, last: action, depth: parent.depth + 1}
}

// ensureEvaluated computes the routing cost and terminal flags of a node
// reachable from the current root along s.state.
func (s *Searcher) ensureEvaluated(nd *node) {
	s.ensureEvaluatedWithPins(nd, s.state)
}

// ensureEvaluatedWithPins computes cost and terminal flags; pins is the
// Steiner-point set of the node (ascending).
func (s *Searcher) ensureEvaluatedWithPins(nd *node, sps []grid.VertexID) {
	if nd.evaluated {
		return
	}
	nd.evaluated = true
	if !nd.costDone {
		s.sw.Lap("mcts.select")
		nd.cost = s.stateCost(sps)
		nd.costDone = true
		s.sw.Lap("mcts.leaf_eval")
	}
	maxDepth := s.in.NumPins() - 2
	if nd.depth >= maxDepth {
		nd.terminal = true
	}
	if nd.parent != nil && nd.parent.evaluated {
		const eps = 1e-9
		switch {
		case nd.cost > nd.parent.cost+eps:
			// Criterion (2): the action increased the routing cost.
			nd.terminal = true
		case math.Abs(nd.cost-nd.parent.cost) <= eps:
			nd.noChange = nd.parent.noChange + 1
			if nd.noChange >= s.cfg.MaxNoChange {
				// Criterion (3): unchanged for MaxNoChange actions.
				nd.terminal = true
			}
		default:
			nd.noChange = 0
		}
	}
}

// stateCost is the routing cost of a state: the OARMST over the pins plus
// the selected Steiner points, all treated as terminals (paper §3.4).
func (s *Searcher) stateCost(sps []grid.VertexID) float64 {
	terms := make([]grid.VertexID, 0, len(s.in.Pins)+len(sps))
	terms = append(terms, s.in.Pins...)
	terms = append(terms, sps...)
	tree, err := s.router.OARMST(terms)
	if err != nil {
		// Steiner points are chosen from free vertices of a routable
		// layout, so this cannot happen; fail loudly if it does.
		panic(fmt.Sprintf("mcts: state cost: %v", err))
	}
	return tree.Cost
}

// expand creates the children of the current root.
func (s *Searcher) expand(nd *node) { s.expandWithPins(nd, s.state) }

// expandWithPins creates one child per valid action with prior
// probabilities from the actor policy (eq. 1).
func (s *Searcher) expandWithPins(nd *node, sps []grid.VertexID) {
	if nd.expanded {
		return
	}
	nd.expanded = true
	s.nodesExpanded++

	s.sw.Lap("mcts.select")
	policy := s.ActorPolicy(sps, nd.last)
	for id, p := range policy {
		if p > 0 {
			nd.children = append(nd.children, edge{action: grid.VertexID(id), p: p})
		}
	}
	s.prefetchChildCosts(nd, sps)
	s.sw.Lap("mcts.expand")
}

// prefetchChildCosts evaluates the routing costs of the most promising
// children of a freshly expanded node concurrently, one worker-private
// router per shard. PUCT visits high-prior children first, so prefetching
// the top priors overlaps the OARMST evaluations the serial search would
// perform one iteration at a time. A state's cost is a pure function of
// its pin set, so prefetched values are exactly the values lazy evaluation
// would compute: the search trajectory — and therefore the selected
// Steiner set and the training label — is bit-identical at every worker
// count. Terminal flags still derive lazily from the parent chain.
func (s *Searcher) prefetchChildCosts(nd *node, sps []grid.VertexID) {
	w := parallel.Workers()
	if w <= 1 || len(nd.children) < 2 {
		return
	}
	k := 2 * w
	if k > len(nd.children) {
		k = len(nd.children)
	}
	// Top-k children by descending prior, ties on smaller action.
	order := make([]int, len(nd.children))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := &nd.children[order[a]], &nd.children[order[b]]
		if ea.p != eb.p {
			return ea.p > eb.p
		}
		return ea.action < eb.action
	})
	top := order[:k]

	for len(s.shardRouters) < w {
		s.shardRouters = append(s.shardRouters, route.NewRouter(s.in.Graph))
	}
	base := make([]grid.VertexID, 0, len(s.in.Pins)+len(sps)+1)
	base = append(base, s.in.Pins...)
	base = append(base, sps...)
	parallel.For(k, func(shard, lo, hi int) {
		r := s.shardRouters[shard]
		terms := make([]grid.VertexID, len(base), len(base)+1)
		copy(terms, base)
		for i := lo; i < hi; i++ {
			e := &nd.children[top[i]]
			tree, err := r.OARMST(append(terms, e.action))
			if err != nil {
				// Same impossibility as stateCost: candidates are free
				// vertices of a routable layout.
				panic(fmt.Sprintf("mcts: prefetch state cost: %v", err))
			}
			child := s.makeChild(nd, e.action)
			child.cost = tree.Cost
			child.costDone = true
			e.child = child
		}
	})
}

// ActorPolicy implements the actor of paper Fig 5 / eq. (1): one selector
// inference yields fsp(v); each valid vertex u with priority below w (the
// last selected point) gets weight fsp(u) · Π_{w<v<u, v valid} (1−fsp(v));
// the weights are normalised to a distribution. Exported for the
// experiment harness and tests; sps must be ascending.
func (s *Searcher) ActorPolicy(sps []grid.VertexID, last grid.VertexID) []float64 {
	g := s.in.Graph
	statePins := append(append([]grid.VertexID(nil), s.in.Pins...), sps...)
	fsp := s.sel.FSP(g, statePins)
	valid := selector.ValidMask(g, statePins)

	policy := make([]float64, g.NumVertices())
	prod := 1.0
	total := 0.0
	for id := int(last) + 1; id < g.NumVertices(); id++ {
		if !valid[id] {
			continue
		}
		p := fsp[id] * prod
		policy[id] = p
		total += p
		prod *= 1 - fsp[id]
	}
	if total <= 0 {
		// Degenerate fsp (all ~0 handled by normalisation; exact zeros
		// cannot happen through a sigmoid, but guard anyway).
		return policy
	}
	for id := range policy {
		policy[id] /= total
	}
	return policy
}

// leafValue implements the simulation step: v(s_l) = (rc_s0 − c(s_l)) /
// rc_s0 where c is the critic's predicted final cost (or the direct state
// cost for terminal leaves and in curriculum mode).
func (s *Searcher) leafValue(nd *node, sps []grid.VertexID, maxDepth int) float64 {
	c := nd.cost
	if s.cfg.UseCritic && !nd.terminal {
		c = s.CriticCost(sps, maxDepth-nd.depth)
	}
	if s.rootCost <= 0 {
		return 0
	}
	return (s.rootCost - c) / s.rootCost
}

// CriticCost implements the critic of paper Fig 5: complete the state with
// the remaining Steiner points chosen greedily from the selector's fsp,
// route the OARMST over everything, and return its cost. Exported for the
// experiment harness and tests.
func (s *Searcher) CriticCost(sps []grid.VertexID, remaining int) float64 {
	g := s.in.Graph
	statePins := append(append([]grid.VertexID(nil), s.in.Pins...), sps...)
	if remaining <= 0 {
		return s.stateCost(sps)
	}
	fsp := s.sel.FSP(g, statePins)
	top := selector.TopK(fsp, selector.ValidMask(g, statePins), remaining)
	all := append(append([]grid.VertexID(nil), sps...), top...)
	return s.stateCost(all)
}

// bestRootAction returns the index of the root child with the highest
// visit count (ties on smaller action), or -1 when the root has none.
func (s *Searcher) bestRootAction() int {
	best, bestN := -1, -1
	for i := range s.root.children {
		if s.root.children[i].n > bestN {
			best, bestN = i, s.root.children[i].n
		}
	}
	return best
}

// Search runs one full combinatorial MCTS episode on the instance and
// returns its result.
func Search(sel *selector.Selector, in *layout.Instance, cfg Config) (*Result, error) {
	return SearchCtx(context.Background(), sel, in, cfg)
}

// SearchCtx is Search with cancellation; see Searcher.RunCtx.
func SearchCtx(ctx context.Context, sel *selector.Selector, in *layout.Instance, cfg Config) (*Result, error) {
	s, err := NewSearcher(sel, in, cfg)
	if err != nil {
		return nil, err
	}
	return s.RunCtx(ctx)
}
