package mcts

import (
	"math/rand"
	"testing"

	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

func benchSetup(b *testing.B) (*selector.Selector, *layout.Instance) {
	b.Helper()
	sel, err := selector.NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 4, Depth: 2, Kernel: 3})
	if err != nil {
		b.Fatal(err)
	}
	in, err := layout.Random(rand.New(rand.NewSource(2)), layout.RandomSpec{
		H: 10, V: 10, MinM: 2, MaxM: 2,
		MinPins: 5, MaxPins: 5, MinObstacles: 8, MaxObstacles: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sel, in
}

// BenchmarkEpisode measures one full combinatorial-MCTS episode (one
// training sample), the unit cost of the paper's sample generation.
func BenchmarkEpisode(b *testing.B) {
	sel, in := benchSetup(b)
	cfg := Config{Iterations: 32, UseCritic: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(sel, in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpisodeNoCritic measures the curriculum mode (direct state
// costs instead of critic inference).
func BenchmarkEpisodeNoCritic(b *testing.B) {
	sel, in := benchSetup(b)
	cfg := Config{Iterations: 32, UseCritic: false}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(sel, in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActorPolicy measures the eq. (1) policy construction.
func BenchmarkActorPolicy(b *testing.B) {
	sel, in := benchSetup(b)
	s, err := NewSearcher(sel, in, Config{Iterations: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ActorPolicy(nil, -1)
	}
}

// BenchmarkCriticCost measures one critic evaluation (inference + OARMST).
func BenchmarkCriticCost(b *testing.B) {
	sel, in := benchSetup(b)
	s, err := NewSearcher(sel, in, Config{Iterations: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CriticCost(nil, in.NumPins()-2)
	}
}
