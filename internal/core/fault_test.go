package core

import (
	"context"
	"errors"
	"testing"

	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
	"oarsmt/internal/obs"
)

// TestRouteDegradesOnSelectorFault: with selector.infer failing at 100%,
// Route still answers — with the plain OARMST, flagged Degraded — and the
// core.fallbacks counter ticks. When the fault clears, routing returns to
// normal inference.
func TestRouteDegradesOnSelectorFault(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	r := NewRouter(tinySelector(t))
	in := randomInstance(t, 2, 5)
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), &obs.Observer{Metrics: reg})

	fault.Set("selector.infer", fault.Options{Mode: fault.Error})
	res, err := r.Route(ctx, in)
	if err != nil {
		t.Fatalf("route under selector fault failed outright: %v", err)
	}
	if !res.Degraded {
		t.Error("result not flagged Degraded")
	}
	if res.UsedSteiner || res.Inferences != 0 || res.Proposed != 0 {
		t.Errorf("degraded result claims inference work: %+v", res)
	}
	if err := res.Tree.Validate(in.Graph, in.Pins); err != nil {
		t.Fatalf("degraded tree invalid: %v", err)
	}
	if n := reg.Snapshot().Counters["core.fallbacks"]; n != 1 {
		t.Errorf("core.fallbacks = %d, want 1", n)
	}

	fault.Clear("selector.infer")
	res, err = r.Route(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Inferences != 1 {
		t.Errorf("routing did not return to normal after fault cleared: %+v", res)
	}
}

// TestTryProposeErrorIsTransient pins the retry contract: injected
// inference failures are retryable.
func TestTryProposeErrorIsTransient(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	fault.Set("selector.infer", fault.Options{Mode: fault.Error, Times: 1})
	r := NewRouter(tinySelector(t))
	in := randomInstance(t, 3, 5)
	_, _, err := r.TryPropose(in)
	if !errors.Is(err, errs.ErrTransient) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("TryPropose error = %v, want transient injected", err)
	}
	// Times=1: the retry succeeds.
	sps, inf, err := r.TryPropose(in)
	if err != nil || inf != 1 || len(sps) == 0 {
		t.Fatalf("retry after one-shot fault: sps=%v inf=%d err=%v", sps, inf, err)
	}
}

// TestRouteDijkstraFaultSurfaces: an injected failure inside the maze
// router surfaces as an error from Route (construction, unlike selection,
// has no cheaper fallback).
func TestRouteDijkstraFaultSurfaces(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	fault.Set("route.dijkstra", fault.Options{Mode: fault.Error})
	r := NewRouter(tinySelector(t))
	_, err := r.Route(context.Background(), randomInstance(t, 4, 5))
	if err == nil {
		t.Fatal("route with failing dijkstra succeeded")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Errorf("error lost the injection marker: %v", err)
	}
}
