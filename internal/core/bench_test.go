package core

import (
	"context"
	"math/rand"
	"testing"

	"oarsmt/internal/fault"
	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

func benchRouter(b *testing.B) (*Router, *layout.Instance) {
	b.Helper()
	sel, err := selector.NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		b.Fatal(err)
	}
	in, err := layout.Random(rand.New(rand.NewSource(2)), layout.RandomSpec{
		H: 10, V: 10, MinM: 2, MaxM: 2,
		MinPins: 5, MaxPins: 5,
		MinObstacles: 8, MaxObstacles: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	return NewRouter(sel), in
}

// BenchmarkNormalRoute is the healthy-path baseline BenchmarkDegradedRoute
// is compared against in BENCH_fault.json.
func BenchmarkNormalRoute(b *testing.B) {
	r, in := benchRouter(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Route(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDegradedRoute measures the degraded path end to end: selector
// inference fails at 100% and every route falls back to the plain OARMST.
// The degraded path must stay cheaper than the healthy one (it skips the
// network forward pass), so a service absorbing an inference outage does
// not also absorb a latency regression.
func BenchmarkDegradedRoute(b *testing.B) {
	fault.Reset()
	b.Cleanup(fault.Reset)
	fault.Set("selector.infer", fault.Options{Mode: fault.Error})
	r, in := benchRouter(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Route(ctx, in)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Degraded {
			b.Fatal("route did not degrade under 100% selector fault")
		}
	}
}
