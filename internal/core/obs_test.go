package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"oarsmt/internal/errs"
	"oarsmt/internal/obs"
)

// spanNames flattens a span tree into the set of span names it contains.
func spanNames(s *obs.SpanData, into map[string]int64) {
	into[s.Name] += s.DurationNS
	for _, c := range s.Children {
		spanNames(c, into)
	}
}

// TestRouteSpanTreeCoversStages is the acceptance criterion for stage
// tracing: a traced route must produce a span tree with at least the four
// pipeline stages (total, selector, oarmst, retrace), each with a non-zero
// duration, and the tree must survive a JSON round trip.
func TestRouteSpanTreeCoversStages(t *testing.T) {
	r := NewRouter(tinySelector(t))
	in := randomInstance(t, 2, 5)

	trace := obs.NewTrace("core.test_route")
	ctx := obs.With(context.Background(), &obs.Observer{Trace: trace, Metrics: obs.NewRegistry()})
	if _, err := r.Route(ctx, in); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var root obs.SpanData
	if err := json.Unmarshal(buf.Bytes(), &root); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}

	durs := map[string]int64{}
	spanNames(&root, durs)
	for _, stage := range []string{"core.test_route", "core.route", "core.selector", "core.oarmst", "core.retrace"} {
		d, ok := durs[stage]
		if !ok {
			t.Errorf("span tree missing stage %q (have %v)", stage, durs)
			continue
		}
		if d <= 0 {
			t.Errorf("stage %q has non-positive duration %d", stage, d)
		}
	}
}

// TestTracingDoesNotPerturbRouting pins the determinism contract of the
// observability layer: routing with tracing and metrics enabled must
// return a bit-identical tree to routing without them.
func TestTracingDoesNotPerturbRouting(t *testing.T) {
	sel := tinySelector(t)
	in := randomInstance(t, 7, 6)

	plain, err := NewRouter(sel).Route(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	trace := obs.NewTrace("core.test_route")
	ctx := obs.With(context.Background(), &obs.Observer{Trace: trace, Metrics: obs.NewRegistry()})
	traced, err := NewRouter(sel).Route(ctx, in)
	if err != nil {
		t.Fatal(err)
	}

	if plain.Tree.Cost != traced.Tree.Cost {
		t.Errorf("tracing changed the cost: %v vs %v", plain.Tree.Cost, traced.Tree.Cost)
	}
	if !reflect.DeepEqual(plain.Tree.Edges, traced.Tree.Edges) {
		t.Error("tracing changed the routed edges")
	}
	if !reflect.DeepEqual(plain.SteinerPoints, traced.SteinerPoints) {
		t.Error("tracing changed the selected Steiner points")
	}
}

// TestRouteRecordsMetrics checks that a traced route increments the
// context registry's core counters and latency histogram.
func TestRouteRecordsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), &obs.Observer{Metrics: reg})
	if _, err := NewRouter(tinySelector(t)).Route(ctx, randomInstance(t, 3, 5)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["core.routes"] != 1 {
		t.Errorf("core.routes = %d, want 1", snap.Counters["core.routes"])
	}
	if snap.Counters["core.inferences"] < 1 {
		t.Errorf("core.inferences = %d, want >= 1", snap.Counters["core.inferences"])
	}
	if h := snap.Histograms["core.route_latency"]; h.Count != 1 {
		t.Errorf("core.route_latency count = %d, want 1", h.Count)
	}
}

// TestRouteTimeoutMatchesSentinels checks the context-first API's error
// contract end to end: an expired deadline surfaces as an error matching
// both the module's ErrTimeout and context.DeadlineExceeded.
func TestRouteTimeoutMatchesSentinels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewRouter(tinySelector(t)).Route(ctx, randomInstance(t, 4, 5))
	if err == nil {
		t.Fatal("route with a cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled route error %v does not match context.Canceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), -1)
	defer dcancel()
	_, err = NewRouter(tinySelector(t)).Route(dctx, randomInstance(t, 4, 5))
	if err == nil {
		t.Fatal("route with an expired deadline succeeded")
	}
	if !errors.Is(err, errs.ErrTimeout) {
		t.Errorf("expired route error %v does not match ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired route error %v does not match context.DeadlineExceeded", err)
	}
}
