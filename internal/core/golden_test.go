package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"oarsmt/internal/layout"
	"oarsmt/internal/models"
)

// updateGolden regenerates testdata/golden_routes.json from the current
// code. The recorded values pin the float64 routing results bit-for-bit:
// any change to the inference or construction path that alters a route,
// a cost bit or a kept Steiner point fails TestGoldenRoutes.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden routing fixtures")

const goldenPath = "testdata/golden_routes.json"

// goldenCase is one pinned route: the layout generator inputs plus the
// exact observed outputs. CostBits stores math.Float64bits of Tree.Cost so
// the comparison is bitwise, immune to formatting round trips.
type goldenCase struct {
	Seed      int64  `json:"seed"`
	H         int    `json:"h"`
	VDim      int    `json:"v"`
	M         int    `json:"m"`
	Pins      int    `json:"pins"`
	Obstacles int    `json:"obstacles"`
	CostBits  uint64 `json:"costBits"`
	EdgeHash  uint64 `json:"edgeHash"`
	Edges     int    `json:"edges"`
	Steiner   []int  `json:"steiner"`
	Used      bool   `json:"usedSteiner"`
}

func goldenInstance(t *testing.T, c goldenCase) *layout.Instance {
	t.Helper()
	in, err := layout.Random(rand.New(rand.NewSource(c.Seed)), layout.RandomSpec{
		H: c.H, V: c.VDim, MinM: c.M, MaxM: c.M,
		MinPins: c.Pins, MaxPins: c.Pins,
		MinObstacles: c.Obstacles, MaxObstacles: c.Obstacles,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// treeEdgeHash folds the canonical edge list into an FNV-1a hash.
func treeEdgeHash(edges []routeEdge) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for _, e := range edges {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(e.a) >> (8 * i))
			buf[8+i] = byte(uint64(e.b) >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

type routeEdge struct{ a, b int }

// TestGoldenRoutes routes a spread of layouts with the embedded pretrained
// selector and compares every discrete and floating-point output bit for
// bit against the recorded fixtures. It is the cross-version determinism
// pin for the float64 inference path: tensor-kernel rewrites must keep the
// routed trees, kept Steiner points and costs exactly identical.
func TestGoldenRoutes(t *testing.T) {
	sel, err := models.New()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(sel)

	specs := []goldenCase{
		{Seed: 101, H: 8, VDim: 8, M: 2, Pins: 4, Obstacles: 6},
		{Seed: 102, H: 10, VDim: 10, M: 2, Pins: 5, Obstacles: 8},
		{Seed: 103, H: 12, VDim: 9, M: 3, Pins: 6, Obstacles: 10},
		{Seed: 104, H: 16, VDim: 16, M: 2, Pins: 7, Obstacles: 16},
		{Seed: 105, H: 9, VDim: 14, M: 4, Pins: 5, Obstacles: 12},
		{Seed: 106, H: 6, VDim: 6, M: 2, Pins: 3, Obstacles: 4},
	}

	got := make([]goldenCase, 0, len(specs))
	for _, c := range specs {
		in := goldenInstance(t, c)
		res, err := r.Route(t.Context(), in)
		if err != nil {
			t.Fatalf("seed %d: %v", c.Seed, err)
		}
		edges := make([]routeEdge, 0, len(res.Tree.Edges))
		for _, e := range res.Tree.Edges {
			edges = append(edges, routeEdge{int(e.A), int(e.B)})
		}
		c.CostBits = math.Float64bits(res.Tree.Cost)
		c.EdgeHash = treeEdgeHash(edges)
		c.Edges = len(edges)
		c.Steiner = make([]int, 0, len(res.SteinerPoints))
		for _, sp := range res.SteinerPoints {
			c.Steiner = append(c.Steiner, int(sp))
		}
		c.Used = res.UsedSteiner
		got = append(got, c)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixtures (run with -update-golden to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d cases, test produced %d", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if w.Seed != g.Seed {
			t.Fatalf("case %d: seed mismatch (%d vs %d); regenerate the fixtures", i, w.Seed, g.Seed)
		}
		if g.CostBits != w.CostBits {
			t.Errorf("seed %d: cost %v (bits %016x), golden %v (bits %016x)",
				g.Seed, math.Float64frombits(g.CostBits), g.CostBits,
				math.Float64frombits(w.CostBits), w.CostBits)
		}
		if g.EdgeHash != w.EdgeHash || g.Edges != w.Edges {
			t.Errorf("seed %d: edge set hash %016x (%d edges), golden %016x (%d edges)",
				g.Seed, g.EdgeHash, g.Edges, w.EdgeHash, w.Edges)
		}
		if fmt.Sprint(g.Steiner) != fmt.Sprint(w.Steiner) || g.Used != w.Used {
			t.Errorf("seed %d: steiner %v used=%v, golden %v used=%v",
				g.Seed, g.Steiner, g.Used, w.Steiner, w.Used)
		}
	}
}
