// Package core assembles the paper's RL router end to end (Fig 2): encode
// the layout as a 3-D Hanan grid graph, run the trained Steiner-point
// selector once to pick the top n-2 candidate Steiner points, then build
// the final tree with the OARMST router (maze-router-based Prim's
// construction with redundant-point removal, following [14]).
//
// The package also provides the sequential inference mode used by the
// AlphaGo-like and PPO baseline routers of §4.2 — which re-runs the
// network after every selected point — and the ST-to-MST evaluation metric
// of Fig 11/12.
//
// The canonical entry point is the context-first Router.Route(ctx, in,
// ...Option); per-call behaviour (deadline, worker count, inference mode,
// observability sinks) is configured with functional options rather than
// by mutating the Router.
package core

import (
	"context"
	"fmt"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/obs"
	"oarsmt/internal/parallel"
	"oarsmt/internal/route"
	"oarsmt/internal/selector"
)

// InferenceMode selects how the selector proposes Steiner points.
type InferenceMode int

const (
	// OneShot runs a single network inference and takes the top n-2
	// probabilities — the paper's router.
	OneShot InferenceMode = iota
	// Sequential re-runs the network after each selected point, feeding
	// selected points back as pins — the mode of the AlphaGo-like and PPO
	// baselines, used for the inference-speedup comparison of §4.2.
	Sequential
)

// String implements fmt.Stringer.
func (m InferenceMode) String() string {
	switch m {
	case OneShot:
		return "one-shot"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("InferenceMode(%d)", int(m))
	}
}

// Router is the trained ML-OARSMT RL router.
type Router struct {
	Selector *selector.Selector
	Mode     InferenceMode
	// GuardedAcceptance, when true, also builds the plain OARMST over the
	// pins alone and returns whichever tree is cheaper. This engineering
	// guard (ablated in the benchmarks) bounds the router's regret against
	// its own tree builder at the cost of one extra OARMST construction.
	GuardedAcceptance bool
	// RetracePasses applies path-assessed retracing to the constructed
	// trees: the paper's OARMST step "follows the same algorithm in [14]"
	// (§3.1), whose methodology includes retracing. One pass keeps the
	// router fast; the [14] baseline itself retraces to convergence.
	RetracePasses int
}

// NewRouter returns a one-shot router with guarded acceptance and a single
// retracing pass, the configuration used in the experiment harness.
func NewRouter(sel *selector.Selector) *Router {
	return &Router{Selector: sel, Mode: OneShot, GuardedAcceptance: true, RetracePasses: 1}
}

// Option configures one Route call without mutating the Router, so a
// shared Router stays safe for concurrent use.
type Option func(*callConfig)

type callConfig struct {
	timeout    time.Duration
	workers    int
	hasWorkers bool
	mode       InferenceMode
	hasMode    bool
	observer   *obs.Observer
}

// WithTimeout derives a deadline for this call: the context handed to the
// maze-router searches is cancelled after d. Zero or negative d is a
// no-op.
func WithTimeout(d time.Duration) Option {
	return func(c *callConfig) { c.timeout = d }
}

// WithWorkers sets the worker-pool size before routing. The pool is
// process-wide (see internal/parallel), so the setting outlives the call
// and affects concurrent routes; it is a convenience for single-tenant
// binaries, not a per-call isolation mechanism.
func WithWorkers(n int) Option {
	return func(c *callConfig) { c.workers, c.hasWorkers = n, true }
}

// WithInferenceMode overrides the Router's inference mode for this call
// only.
func WithInferenceMode(m InferenceMode) Option {
	return func(c *callConfig) { c.mode, c.hasMode = m, true }
}

// WithObserver attaches observability sinks (span trace and/or metrics
// registry) to the call's context. Tracing never alters routing output;
// see the obs package's determinism contract.
func WithObserver(o *obs.Observer) Option {
	return func(c *callConfig) { c.observer = o }
}

// Result is the outcome of routing one layout.
type Result struct {
	Tree *route.Tree
	// SteinerPoints are the irredundant Steiner points kept in the final
	// tree (empty when the guard rejected the Steiner proposal).
	SteinerPoints []grid.VertexID
	// Proposed is the number of Steiner points the selector proposed.
	Proposed int
	// Inferences is the number of network inferences performed.
	Inferences int
	// SelectTime is the Steiner-point-selection time (the "Spoint select"
	// column of Table 3); TotalTime additionally includes the OARMST
	// construction.
	SelectTime time.Duration
	TotalTime  time.Duration
	// PlainCost is the cost of the no-Steiner-point OARMST when the guard
	// computed it (0 otherwise); UsedSteiner tells whether the final tree
	// is the Steiner-guided one.
	PlainCost   float64
	UsedSteiner bool
	// Degraded reports that the selector inference failed and the tree is
	// the plain OARMST fallback: still a valid route, but without the
	// learned Steiner points. Callers that cache results must not cache
	// degraded ones.
	Degraded bool
}

// Route routes the instance under a cancellation context: the deadline is
// threaded into every maze-router search, so long constructions on large
// layouts abort promptly once the context is cancelled. The network
// inference itself is not interruptible mid-forward; cancellation is
// checked before it starts and throughout tree construction.
//
// Deadline errors match both oarsmt.ErrTimeout and
// context.DeadlineExceeded under errors.Is; an unreachable terminal
// matches oarsmt.ErrNoPath.
func (r *Router) Route(ctx context.Context, in *layout.Instance, opts ...Option) (*Result, error) {
	var cfg callConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	if cfg.hasWorkers {
		parallel.SetWorkers(cfg.workers)
	}
	if cfg.observer != nil {
		ctx = obs.With(ctx, cfg.observer)
	}
	rr := r
	if cfg.hasMode && cfg.mode != r.Mode {
		clone := *r
		clone.Mode = cfg.mode
		rr = &clone
	}

	ctx, end := obs.Span(ctx, "core.route")
	defer end()
	if err := ctx.Err(); err != nil {
		return nil, errs.Classify(fmt.Errorf("core: route %q: %w", in.Name, err))
	}
	t := obs.StartTimer()
	_, endSel := obs.Span(ctx, "core.selector")
	sps, inferences, perr := rr.TryPropose(in)
	endSel()
	if perr != nil {
		// Selector inference failed: degrade to the plain OARMST rather
		// than failing the route. The result is still valid, just without
		// the learned Steiner points, and is flagged Degraded.
		return rr.ConstructPlain(ctx, in, t.Elapsed())
	}
	return rr.Construct(ctx, in, sps, inferences, t.Elapsed())
}

// RouteCtx routes the instance.
//
// Deprecated: RouteCtx predates the context-first redesign; it is
// equivalent to Route(ctx, in) with no options.
func (r *Router) RouteCtx(ctx context.Context, in *layout.Instance) (*Result, error) {
	return r.Route(ctx, in)
}

// Propose runs the selection phase alone: the selector's Steiner-point
// proposal for the instance and the number of network inferences spent.
// Splitting selection from construction lets a batch scheduler share one
// selector across many layouts while fanning construction out in parallel;
// Construct completes the route.
func (r *Router) Propose(in *layout.Instance) ([]grid.VertexID, int) {
	return r.propose(in)
}

// TryPropose is Propose with failure reporting: it honours the
// `selector.infer` fault-injection point, so serving and routing layers
// can exercise (and recover from) inference failures deterministically.
// An Error-mode fault returns an error matching errs.ErrTransient; a
// Panic-mode fault propagates, to be contained at the service boundary.
// Callers degrade to ConstructPlain when TryPropose fails.
func (r *Router) TryPropose(in *layout.Instance) ([]grid.VertexID, int, error) {
	if fault.Enabled() {
		if err := fault.Inject("selector.infer"); err != nil {
			return nil, 0, fmt.Errorf("core: selector inference: %w", err)
		}
	}
	sps, inferences := r.propose(in)
	return sps, inferences, nil
}

// ConstructPlain is the degraded second phase: it builds the plain OARMST
// (no Steiner points) with the router's usual retracing, flags the result
// Degraded, and counts it on core.fallbacks. It exists so callers whose
// selector inference failed can still answer with a valid route instead
// of an error — the serving layer uses it when retries are exhausted.
func (r *Router) ConstructPlain(ctx context.Context, in *layout.Instance, selectTime time.Duration) (*Result, error) {
	t := obs.StartTimer()
	router := route.NewRouter(in.Graph)
	router.SetContext(ctx)
	_, endST := obs.Span(ctx, "core.oarmst")
	tree, err := router.OARMST(in.Pins)
	endST()
	if err != nil {
		return nil, errs.Classify(fmt.Errorf("core: route %q: %w", in.Name, err))
	}
	if r.RetracePasses > 0 {
		_, endRT := obs.Span(ctx, "core.retrace")
		tree, _ = router.Retrace(tree, in.Pins, r.RetracePasses)
		endRT()
	}
	res := &Result{
		Tree:       tree,
		SelectTime: selectTime,
		TotalTime:  selectTime + t.Elapsed(),
		PlainCost:  tree.Cost,
		Degraded:   true,
	}
	m := obs.MetricsFrom(ctx)
	m.Counter("core.routes").Inc()
	m.Counter("core.fallbacks").Inc()
	m.Histogram("core.route_latency").Observe(res.TotalTime)
	return res, nil
}

// Construct builds the final tree from a Steiner-point proposal — the
// second phase of Route, honouring the same cancellation semantics.
// inferences and selectTime describe the selection phase that produced sps
// and are copied into the Result for reporting.
func (r *Router) Construct(ctx context.Context, in *layout.Instance, sps []grid.VertexID, inferences int, selectTime time.Duration) (*Result, error) {
	t := obs.StartTimer()
	res := &Result{}
	res.Proposed = len(sps)
	res.Inferences = inferences
	res.SelectTime = selectTime

	router := route.NewRouter(in.Graph)
	router.SetContext(ctx)
	// Unlike the Lin18 baseline, construction here is unbounded: the
	// router's value proposition is tree quality, and bounded windows
	// (route.Router.BoundedExploration) measurably cede exactly the cost
	// advantage Table 2 reports.
	_, endST := obs.Span(ctx, "core.oarmst")
	st, err := router.SteinerTree(in.Pins, sps)
	endST()
	if err != nil {
		return nil, errs.Classify(fmt.Errorf("core: route %q: %w", in.Name, err))
	}
	tree := st.Tree
	kept := st.Kept
	if r.RetracePasses > 0 {
		_, endRT := obs.Span(ctx, "core.retrace")
		tree, _ = router.Retrace(tree, in.Pins, r.RetracePasses)
		endRT()
		// Retracing can demote a branch point; keep the report honest.
		deg := tree.Degrees()
		filtered := kept[:0]
		for _, sp := range kept {
			if deg[sp] >= 3 {
				filtered = append(filtered, sp)
			}
		}
		kept = filtered
	}
	res.Tree = tree
	res.SteinerPoints = kept
	res.UsedSteiner = true

	if r.GuardedAcceptance {
		_, endG := obs.Span(ctx, "core.guard")
		plain, err := router.OARMST(in.Pins)
		if err != nil {
			endG()
			return nil, errs.Classify(fmt.Errorf("core: route %q: %w", in.Name, err))
		}
		if r.RetracePasses > 0 {
			plain, _ = router.Retrace(plain, in.Pins, r.RetracePasses)
		}
		endG()
		res.PlainCost = plain.Cost
		if plain.Cost < res.Tree.Cost {
			res.Tree = plain
			res.SteinerPoints = nil
			res.UsedSteiner = false
		}
	}
	res.TotalTime = selectTime + t.Elapsed()

	m := obs.MetricsFrom(ctx)
	m.Counter("core.routes").Inc()
	m.Counter("core.inferences").Add(int64(inferences))
	if !res.UsedSteiner {
		m.Counter("core.guard_rejections").Inc()
	}
	m.Histogram("core.route_latency").Observe(res.TotalTime)
	return res, nil
}

// propose returns the selector's Steiner-point proposal for the instance.
func (r *Router) propose(in *layout.Instance) ([]grid.VertexID, int) {
	k := in.MaxSteinerPoints()
	if k == 0 || r.Selector == nil {
		return nil, 0
	}
	switch r.Mode {
	case Sequential:
		return r.proposeSequential(in, k)
	default:
		return r.Selector.SelectSteinerPoints(in.Graph, in.Pins), 1
	}
}

// proposeSequential picks one point at a time, re-running the network with
// the already selected points treated as pins (n-2 inferences).
func (r *Router) proposeSequential(in *layout.Instance, k int) ([]grid.VertexID, int) {
	pins := append([]grid.VertexID(nil), in.Pins...)
	var sps []grid.VertexID
	inferences := 0
	for i := 0; i < k; i++ {
		fsp := r.Selector.FSP(in.Graph, pins)
		inferences++
		top := selector.TopK(fsp, selector.ValidMask(in.Graph, pins), 1)
		if len(top) == 0 {
			break
		}
		sps = append(sps, top[0])
		pins = append(pins, top[0])
	}
	return sps, inferences
}

// PlainOARMST routes the instance without any Steiner points: the
// baseline spanning tree of the ST-to-MST metric.
func PlainOARMST(ctx context.Context, in *layout.Instance) (*route.Tree, error) {
	_, end := obs.Span(ctx, "core.oarmst")
	defer end()
	r := route.NewRouter(in.Graph)
	r.SetContext(ctx)
	tree, err := r.OARMST(in.Pins)
	if err != nil {
		return nil, errs.Classify(err)
	}
	return tree, nil
}

// PlainOARMSTCtx routes the instance without Steiner points.
//
// Deprecated: PlainOARMSTCtx predates the context-first redesign; it is
// equivalent to PlainOARMST(ctx, in).
func PlainOARMSTCtx(ctx context.Context, in *layout.Instance) (*route.Tree, error) {
	return PlainOARMST(ctx, in)
}

// STtoMSTRatio evaluates the router on the instance and returns the
// ST-to-MST ratio of §4.2: the routed Steiner tree cost over the plain
// OARMST cost. Lower is better; 1.0 means the Steiner points bought
// nothing.
func (r *Router) STtoMSTRatio(ctx context.Context, in *layout.Instance) (float64, error) {
	mst, err := PlainOARMST(ctx, in)
	if err != nil {
		return 0, err
	}
	if mst.Cost <= 0 {
		return 0, fmt.Errorf("core: degenerate MST cost %v on %q", mst.Cost, in.Name)
	}
	res, err := r.Route(ctx, in)
	if err != nil {
		return 0, err
	}
	return res.Tree.Cost / mst.Cost, nil
}
