package core

import (
	"context"
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

func tinySelector(t *testing.T) *selector.Selector {
	t.Helper()
	s, err := selector.NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomInstance(t *testing.T, seed int64, pins int) *layout.Instance {
	t.Helper()
	in, err := layout.Random(rand.New(rand.NewSource(seed)), layout.RandomSpec{
		H: 8, V: 8, MinM: 2, MaxM: 2,
		MinPins: pins, MaxPins: pins,
		MinObstacles: 6, MaxObstacles: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRouteProducesValidTree(t *testing.T) {
	r := NewRouter(tinySelector(t))
	in := randomInstance(t, 2, 5)
	res, err := r.Route(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(in.Graph, in.Pins); err != nil {
		t.Fatal(err)
	}
	if res.Inferences != 1 {
		t.Errorf("one-shot mode ran %d inferences, want 1", res.Inferences)
	}
	if res.Proposed != in.NumPins()-2 {
		t.Errorf("proposed %d points, want n-2 = %d", res.Proposed, in.NumPins()-2)
	}
	if res.TotalTime < res.SelectTime {
		t.Error("total time should include selection time")
	}
}

func TestGuardedAcceptanceNeverWorseThanPlain(t *testing.T) {
	r := NewRouter(tinySelector(t))
	for seed := int64(10); seed < 25; seed++ {
		in := randomInstance(t, seed, 6)
		res, err := r.Route(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := PlainOARMST(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tree.Cost > plain.Cost {
			t.Errorf("seed %d: guarded cost %v exceeds plain %v", seed, res.Tree.Cost, plain.Cost)
		}
		// PlainCost is the retraced plain tree: never worse than the raw
		// OARMST, and the guard keeps the final tree at or below it.
		if res.PlainCost > plain.Cost {
			t.Errorf("seed %d: retraced plain cost %v exceeds raw %v", seed, res.PlainCost, plain.Cost)
		}
		if res.Tree.Cost > res.PlainCost {
			t.Errorf("seed %d: final cost %v exceeds guard reference %v", seed, res.Tree.Cost, res.PlainCost)
		}
	}
}

func TestUnguardedModeSkipsPlainRoute(t *testing.T) {
	r := NewRouter(tinySelector(t))
	r.GuardedAcceptance = false
	in := randomInstance(t, 3, 5)
	res, err := r.Route(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlainCost != 0 {
		t.Error("unguarded route should not compute the plain cost")
	}
	if !res.UsedSteiner {
		t.Error("unguarded route always uses the Steiner proposal")
	}
	if err := res.Tree.Validate(in.Graph, in.Pins); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialModeRunsNMinus2Inferences(t *testing.T) {
	r := NewRouter(tinySelector(t))
	r.Mode = Sequential
	in := randomInstance(t, 4, 6)
	res, err := r.Route(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inferences != in.NumPins()-2 {
		t.Errorf("sequential mode ran %d inferences, want %d", res.Inferences, in.NumPins()-2)
	}
	if err := res.Tree.Validate(in.Graph, in.Pins); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialProposalsAreDistinctAndValid(t *testing.T) {
	r := NewRouter(tinySelector(t))
	r.Mode = Sequential
	r.GuardedAcceptance = false
	in := randomInstance(t, 5, 6)
	sps, _ := r.propose(in)
	seen := map[grid.VertexID]bool{}
	pinSet := in.PinSet()
	for _, sp := range sps {
		if seen[sp] {
			t.Error("duplicate sequential proposal")
		}
		seen[sp] = true
		if in.Graph.Blocked(sp) {
			t.Error("proposal on obstacle")
		}
		if _, isPin := pinSet[sp]; isPin {
			t.Error("proposal on pin")
		}
	}
}

func TestTwoPinLayoutNeedsNoSelector(t *testing.T) {
	r := NewRouter(nil) // nil selector: only legal for <3-pin layouts
	in := randomInstance(t, 6, 2)
	res, err := r.Route(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proposed != 0 || res.Inferences != 0 {
		t.Error("2-pin layout should skip selection entirely")
	}
	if err := res.Tree.Validate(in.Graph, in.Pins); err != nil {
		t.Fatal(err)
	}
}

func TestSTtoMSTRatio(t *testing.T) {
	r := NewRouter(tinySelector(t))
	in := randomInstance(t, 7, 5)
	ratio, err := r.STtoMSTRatio(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 0 || ratio > 1.0000001 {
		t.Errorf("guarded ST-to-MST ratio = %v, want in (0, 1]", ratio)
	}
	// Without the guard the ratio may exceed 1 for an untrained selector,
	// but must stay positive and finite.
	r.GuardedAcceptance = false
	ratio2, err := r.STtoMSTRatio(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if ratio2 <= 0 {
		t.Errorf("unguarded ratio = %v", ratio2)
	}
}

func TestInferenceModeString(t *testing.T) {
	if OneShot.String() != "one-shot" || Sequential.String() != "sequential" {
		t.Error("mode strings wrong")
	}
	if InferenceMode(9).String() == "" {
		t.Error("unknown mode should still format")
	}
}
