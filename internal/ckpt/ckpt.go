// Package ckpt provides crash-safe, checksummed checkpoint files for
// long-running training jobs.
//
// A checkpoint is an opaque payload framed so that any torn, truncated or
// bit-flipped file is detected on load:
//
//	magic   "OARSMTCK"          (8 bytes)
//	version uint32 big-endian   (format version, currently 1)
//	length  uint64 big-endian   (payload byte count)
//	payload length bytes        (the caller's serialised state)
//	trailer SHA-256 over everything above (32 bytes)
//
// Save is atomic against crashes at any instruction: the frame is written
// to a temporary file in the same directory, fsynced, closed, renamed onto
// the final sequence-numbered name (ckpt-NNNNNNNN.ckpt) and the directory
// fsynced — a reader never observes a half-written final name, and a crash
// leaves at worst a stale *.tmp that the next Save of the same sequence
// overwrites. Latest scans a directory newest-first and transparently
// falls back past corrupt files to the newest checkpoint whose checksum
// verifies, so one torn write never strands a resumable run. Retain
// bounds disk growth by deleting all but the newest N checkpoints.
//
// The package is deliberately free of wall-clock reads: files carry no
// timestamps, so checkpoint bytes are a pure function of the payload and
// resume replays are bit-exact.
//
// Fault points (internal/fault): `ckpt.write` fires inside Save — Error
// aborts before the temp file is renamed (a clean crash), Partial renames
// a frame truncated mid-payload onto the final name (a torn write) so
// recovery paths can be exercised deterministically.
package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
)

// Version is the current checkpoint format version.
const Version = 1

const (
	magic       = "OARSMTCK"
	headerSize  = len(magic) + 4 + 8
	trailerSize = sha256.Size
	// maxPayload bounds the decode-time allocation a corrupt length field
	// can demand (1 GiB is far above any selector snapshot).
	maxPayload = 1 << 30
)

// Sentinel errors of the package.
var (
	// ErrCorrupt reports a checkpoint whose frame failed validation:
	// wrong magic, truncated payload, or checksum mismatch.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint")
	// ErrVersion reports a checkpoint written by an incompatible format
	// version.
	ErrVersion = errors.New("ckpt: unsupported checkpoint version")
	// ErrNotFound reports a directory holding no valid checkpoint.
	ErrNotFound = errors.New("ckpt: no valid checkpoint found")
)

// Encode frames the payload (header, payload, SHA-256 trailer) into w.
func Encode(w io.Writer, payload []byte) error {
	h := sha256.New()
	mw := io.MultiWriter(w, h)
	if err := writeHeader(mw, uint64(len(payload))); err != nil {
		return err
	}
	if _, err := mw.Write(payload); err != nil {
		return err
	}
	_, err := w.Write(h.Sum(nil))
	return err
}

func writeHeader(w io.Writer, length uint64) error {
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.BigEndian.PutUint32(hdr[len(magic):], Version)
	binary.BigEndian.PutUint64(hdr[len(magic)+4:], length)
	_, err := w.Write(hdr[:])
	return err
}

// Decode reads one framed checkpoint from r, verifying magic, version,
// length and checksum, and returns the payload. Truncations and
// corruptions of any kind match ErrCorrupt (or ErrVersion) under
// errors.Is.
func Decode(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint32(hdr[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrVersion, v, Version)
	}
	length := binary.BigEndian.Uint64(hdr[len(magic)+4:])
	if length > maxPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrCorrupt, err)
	}
	var trailer [trailerSize]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, fmt.Errorf("%w: short trailer: %v", ErrCorrupt, err)
	}
	h := sha256.New()
	h.Write(hdr[:])
	h.Write(payload)
	if !bytes.Equal(h.Sum(nil), trailer[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Name returns the file name of sequence number seq.
func Name(seq int) string { return fmt.Sprintf("ckpt-%08d.ckpt", seq) }

// Save atomically writes the payload as the checkpoint with sequence
// number seq in dir (creating the directory if needed) and returns its
// path. On any error the final name is either absent or still the
// previous checkpoint of that sequence — never a half-written frame —
// except under an injected partial-write fault, which deliberately lands
// a truncated frame to exercise recovery.
func Save(dir string, seq int, payload []byte) (string, error) {
	if seq < 0 {
		return "", fmt.Errorf("%w: ckpt: negative sequence number %d", errs.ErrInvalidConfig, seq)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	final := filepath.Join(dir, Name(seq))
	tmp := final + ".tmp"

	var frame bytes.Buffer
	if err := Encode(&frame, payload); err != nil {
		return "", err
	}
	data := frame.Bytes()

	torn := false
	if v := fault.Check("ckpt.write"); v.Mode != fault.Off {
		switch v.Mode {
		case fault.Partial:
			// Simulate a torn write: half the frame lands on the final name.
			data = data[:len(data)/2]
			torn = true
		default:
			return "", fmt.Errorf("ckpt: write %s: %w", final, v.Err)
		}
	}

	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	syncDir(dir)
	if torn {
		return "", fmt.Errorf("%w: ckpt: write %s: injected torn write", fault.ErrInjected, final)
	}
	return final, nil
}

// syncDir fsyncs the directory so the rename itself is durable; best
// effort, since not every filesystem supports directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Load reads and validates the checkpoint at path.
func Load(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	payload, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}

// Entry names one checkpoint file of a directory.
type Entry struct {
	Seq  int
	Path string
}

// List returns the checkpoints of dir sorted by ascending sequence
// number. Files not matching the ckpt-NNNNNNNN.ckpt pattern (including
// leftover *.tmp files) are ignored. A missing directory lists empty.
func List(dir string) ([]Entry, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []Entry
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		var seq int
		if n, err := fmt.Sscanf(de.Name(), "ckpt-%d.ckpt", &seq); n != 1 || err != nil {
			continue
		}
		if de.Name() != Name(seq) { // reject ckpt-1.ckpt.tmp-style stragglers
			continue
		}
		out = append(out, Entry{Seq: seq, Path: filepath.Join(dir, de.Name())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Latest returns the newest checkpoint of dir whose frame validates,
// together with its payload, skipping (but not deleting) corrupt files on
// the way down. It returns ErrNotFound when the directory holds no valid
// checkpoint.
func Latest(dir string) (Entry, []byte, error) {
	entries, err := List(dir)
	if err != nil {
		return Entry{}, nil, err
	}
	var lastErr error
	for i := len(entries) - 1; i >= 0; i-- {
		payload, err := Load(entries[i].Path)
		if err == nil {
			return entries[i], payload, nil
		}
		lastErr = err
	}
	if lastErr != nil {
		return Entry{}, nil, fmt.Errorf("%w (newest failure: %v)", ErrNotFound, lastErr)
	}
	return Entry{}, nil, ErrNotFound
}

// Retain deletes all but the newest keep checkpoints of dir (by sequence
// number, corrupt or not). keep <= 0 retains everything.
func Retain(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	entries, err := List(dir)
	if err != nil {
		return err
	}
	for i := 0; i < len(entries)-keep; i++ {
		if err := os.Remove(entries[i].Path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return nil
}
