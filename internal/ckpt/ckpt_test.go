package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"oarsmt/internal/fault"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		var buf bytes.Buffer
		if err := Encode(&buf, payload); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != headerSize+len(payload)+trailerSize {
			t.Fatalf("frame length %d, want %d", buf.Len(), headerSize+len(payload)+trailerSize)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round-trip payload mismatch: %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestDecodeRejectsEveryCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, []byte("hello checkpoint")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	// Truncation at every length below the full frame must fail.
	for cut := 0; cut < len(frame); cut++ {
		if _, err := Decode(bytes.NewReader(frame[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d/%d bytes: err = %v, want ErrCorrupt", cut, len(frame), err)
		}
	}
	// A flipped bit anywhere (magic, version, length, payload, trailer)
	// must fail with ErrCorrupt or ErrVersion.
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x01
		_, err := Decode(bytes.NewReader(mut))
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("bit flip at byte %d: err = %v, want ErrCorrupt/ErrVersion", i, err)
		}
	}
}

func TestSaveLoadLatestRetain(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := Latest(dir); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest of empty dir: %v, want ErrNotFound", err)
	}
	for seq := 0; seq < 5; seq++ {
		path, err := Save(dir, seq, []byte{byte(seq)})
		if err != nil {
			t.Fatal(err)
		}
		if filepath.Base(path) != Name(seq) {
			t.Fatalf("saved as %s, want %s", path, Name(seq))
		}
	}
	e, payload, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 4 || len(payload) != 1 || payload[0] != 4 {
		t.Fatalf("Latest = seq %d payload %v", e.Seq, payload)
	}
	if err := Retain(dir, 2); err != nil {
		t.Fatal(err)
	}
	entries, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 3 || entries[1].Seq != 4 {
		t.Fatalf("after Retain(2): %+v", entries)
	}
	// Re-saving an existing sequence replaces it atomically.
	if _, err := Save(dir, 4, []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if _, payload, _ := Latest(dir); string(payload) != "replaced" {
		t.Fatalf("re-save did not replace: %q", payload)
	}
}

func TestLatestFallsBackPastCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, 1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if _, err := Save(dir, 2, []byte("newer but doomed")); err != nil {
		t.Fatal(err)
	}
	// Truncate the newest checkpoint mid-payload, as a crash during a
	// non-atomic write would.
	path := filepath.Join(dir, Name(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of truncated file: %v, want ErrCorrupt", err)
	}
	e, payload, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 1 || string(payload) != "good" {
		t.Fatalf("Latest fell back to seq %d payload %q, want 1 %q", e.Seq, payload, "good")
	}
}

func TestSaveHonoursWriteFault(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	dir := t.TempDir()

	// Error mode: Save fails cleanly, nothing lands on disk.
	fault.Set("ckpt.write", fault.Options{Mode: fault.Error, Times: 1})
	if _, err := Save(dir, 0, []byte("never written")); err == nil {
		t.Fatal("Save under error fault succeeded")
	}
	if entries, _ := List(dir); len(entries) != 0 {
		t.Fatalf("error fault left files behind: %+v", entries)
	}

	// Partial mode: Save returns an error AND lands a truncated frame on
	// the final name — a torn write Latest must then fall back past.
	if _, err := Save(dir, 0, []byte("good base")); err != nil {
		t.Fatal(err)
	}
	fault.Set("ckpt.write", fault.Options{Mode: fault.Partial, Times: 1})
	if _, err := Save(dir, 1, []byte("torn")); err == nil {
		t.Fatal("Save under partial fault reported success")
	}
	if _, err := Load(filepath.Join(dir, Name(1))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("partial fault did not leave a corrupt file: %v", err)
	}
	e, payload, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 0 || string(payload) != "good base" {
		t.Fatalf("Latest after torn write = seq %d %q", e.Seq, payload)
	}
}

func TestListIgnoresStrangers(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, 7, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ckpt-00000001.ckpt.tmp", "notes.txt", "ckpt-x.ckpt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Seq != 7 {
		t.Fatalf("List = %+v, want only seq 7", entries)
	}
	if missing, err := List(filepath.Join(dir, "nope")); err != nil || missing != nil {
		t.Fatalf("List of missing dir = %v, %v", missing, err)
	}
}
