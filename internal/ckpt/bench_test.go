package ckpt

import (
	"fmt"
	"testing"
)

// benchPayload approximates a trainer snapshot: the tiny selector used in
// tests gobs to a few hundred KB; 256 KiB is representative.
func benchPayload() []byte {
	p := make([]byte, 256<<10)
	for i := range p {
		p[i] = byte(i * 2654435761)
	}
	return p
}

func BenchmarkCheckpointSave(b *testing.B) {
	dir := b.TempDir()
	payload := benchPayload()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Save(dir, i%8, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointLoad(b *testing.B) {
	dir := b.TempDir()
	payload := benchPayload()
	path, err := Save(dir, 0, payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointLatest(b *testing.B) {
	for _, n := range []int{1, 16} {
		b.Run(fmt.Sprintf("files=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			payload := benchPayload()
			for seq := 0; seq < n; seq++ {
				if _, err := Save(dir, seq, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Latest(dir); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
