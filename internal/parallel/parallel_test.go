package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// withWorkers runs fn under a fixed worker count and restores the previous
// setting afterwards.
func withWorkers(t *testing.T, w int, fn func()) {
	t.Helper()
	prev := Workers()
	SetWorkers(w)
	defer SetWorkers(prev)
	fn()
}

func TestForCoversRangeOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 16} {
		withWorkers(t, w, func() {
			const n = 1000
			hits := make([]int32, n)
			For(n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d: index %d visited %d times", w, i, h)
				}
			}
		})
	}
}

func TestForShardBoundsContiguousAndOrdered(t *testing.T) {
	withWorkers(t, 4, func() {
		const n = 10
		los := make([]int, 4)
		his := make([]int, 4)
		For(n, func(shard, lo, hi int) {
			los[shard], his[shard] = lo, hi
		})
		if los[0] != 0 || his[3] != n {
			t.Fatalf("shards do not span the range: lo=%v hi=%v", los, his)
		}
		for s := 1; s < 4; s++ {
			if los[s] != his[s-1] {
				t.Fatalf("shard %d not contiguous: lo=%v hi=%v", s, los, his)
			}
		}
	})
}

func TestForEmptyAndTinyRanges(t *testing.T) {
	withWorkers(t, 8, func() {
		calls := 0
		For(0, func(_, lo, hi int) { calls++ })
		if calls != 0 {
			t.Fatalf("For(0) ran %d shards", calls)
		}
		For(1, func(shard, lo, hi int) {
			calls++
			if shard != 0 || lo != 0 || hi != 1 {
				t.Fatalf("For(1) shard=%d lo=%d hi=%d", shard, lo, hi)
			}
		})
		if calls != 1 {
			t.Fatalf("For(1) ran %d shards", calls)
		}
	})
}

func TestForNested(t *testing.T) {
	withWorkers(t, 4, func() {
		const outer, inner = 8, 64
		var total atomic.Int64
		For(outer, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				For(inner, func(_, ilo, ihi int) {
					total.Add(int64(ihi - ilo))
				})
			}
		})
		if got := total.Load(); got != outer*inner {
			t.Fatalf("nested For covered %d of %d", got, outer*inner)
		}
	})
}

func TestForPanicPropagates(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		For(100, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == 57 {
					panic("boom")
				}
			}
		})
		t.Fatal("For returned after panic")
	})
}

func TestForWithCapsShards(t *testing.T) {
	withWorkers(t, 16, func() {
		maxShard := int32(-1)
		ForWith(3, 100, func(shard, lo, hi int) {
			for {
				cur := atomic.LoadInt32(&maxShard)
				if int32(shard) <= cur || atomic.CompareAndSwapInt32(&maxShard, cur, int32(shard)) {
					break
				}
			}
		})
		if maxShard > 2 {
			t.Fatalf("ForWith(3) used shard %d", maxShard)
		}
	})
}

func TestSumChunksBitIdenticalAcrossWorkerCounts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 3*sumChunk + 1234
	data := make([]float64, n)
	for i := range data {
		data[i] = r.NormFloat64() * float64(i%13)
	}
	partial := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += data[i]
		}
		return s
	}
	var ref float64
	withWorkers(t, 1, func() { ref = SumChunks(n, partial) })
	for _, w := range []int{2, 3, 5, 8} {
		withWorkers(t, w, func() {
			if got := SumChunks(n, partial); got != ref {
				t.Fatalf("workers=%d: sum %v != serial %v", w, got, ref)
			}
		})
	}
}

func TestSumChunksSmallRange(t *testing.T) {
	got := SumChunks(3, func(lo, hi int) float64 { return float64(hi - lo) })
	if got != 3 {
		t.Fatalf("SumChunks(3) = %v", got)
	}
	if s := SumChunks(0, func(lo, hi int) float64 { t.Fatal("called"); return 0 }); s != 0 {
		t.Fatalf("SumChunks(0) = %v", s)
	}
}

func TestSetWorkersClampsToOne(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)
	SetWorkers(-5)
	if w := Workers(); w != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-5)", w)
	}
}

func TestShardsForWork(t *testing.T) {
	prevW := Workers()
	prevMin := SetMinShardWork(100)
	defer func() {
		SetWorkers(prevW)
		SetMinShardWork(prevMin)
	}()
	SetWorkers(8)

	cases := []struct {
		work, n, want int
	}{
		{work: 50, n: 8, want: 1},     // under the floor: inline serial
		{work: 199, n: 8, want: 1},    // under 2x the floor: still serial
		{work: 200, n: 8, want: 2},    // exactly 2x: two full shards
		{work: 450, n: 8, want: 4},    // work/min shards, below Workers()
		{work: 10000, n: 8, want: 8},  // plenty of work: all workers
		{work: 10000, n: 3, want: 3},  // capped by unit count
		{work: 10000, n: 1, want: 1},  // a single unit cannot split
		{work: 10000, n: 0, want: 1},  // nothing to do
	}
	for _, c := range cases {
		if got := ShardsForWork(c.work, c.n); got != c.want {
			t.Errorf("ShardsForWork(%d, %d) = %d, want %d", c.work, c.n, got, c.want)
		}
	}

	SetWorkers(1)
	if got := ShardsForWork(1<<30, 1<<20); got != 1 {
		t.Errorf("ShardsForWork with 1 worker = %d, want 1", got)
	}
}

func TestSetMinShardWork(t *testing.T) {
	prev := SetMinShardWork(42)
	defer SetMinShardWork(prev)
	if got := MinShardWork(); got != 42 {
		t.Fatalf("MinShardWork() = %d after SetMinShardWork(42)", got)
	}
	if p := SetMinShardWork(0); p != 42 {
		t.Fatalf("SetMinShardWork returned prev %d, want 42", p)
	}
	if got := MinShardWork(); got != defaultMinShardWork {
		t.Fatalf("MinShardWork() = %d after reset, want default %d", got, defaultMinShardWork)
	}
}
