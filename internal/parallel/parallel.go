// Package parallel provides the shared multicore execution layer of the
// repository: a GOMAXPROCS-sized worker pool with deterministic contiguous
// sharding and a fixed-order chunked reduction.
//
// Every hot kernel (tensor convolutions, normalisation, losses), the
// combinatorial-MCTS leaf evaluation and the episode loops of the training
// and experiment harnesses dispatch through this package, so one knob
// controls all concurrency: the OARSMT_WORKERS environment variable (or
// SetWorkers). 0 or 1 forces the serial path for debugging; unset or
// negative values mean GOMAXPROCS.
//
// # Determinism
//
// All entry points are designed so results are bit-identical at every
// worker count, including the serial path:
//
//   - For splits [0, n) into at most Workers() contiguous shards. Callers
//     must make shards write disjoint outputs (or shard-private
//     accumulators merged afterwards in shard order); which goroutine runs
//     which shard then cannot matter.
//   - SumChunks always reduces over the same fixed-size chunks in the same
//     ascending order no matter how many workers computed the partial
//     sums, so floating-point rounding is independent of the worker count.
//
// # Nesting
//
// For may be called from inside a shard of an outer For (the MCTS leaf
// prefetch runs the network, whose convolutions are themselves sharded).
// The calling goroutine always participates in its own batch and claims
// every shard no helper picks up, so nested use cannot deadlock and the
// total concurrency stays bounded by the pool size.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// workers is the resolved worker count; 0 means "not resolved yet".
var workers atomic.Int32

// SetWorkers overrides the worker count for the whole process: n <= 1
// selects the serial path, larger values allow up to n concurrent shards
// per loop. It replaces any OARSMT_WORKERS setting.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	workers.Store(int32(n))
}

// Workers returns the effective worker count (>= 1). The first call
// resolves OARSMT_WORKERS; 0 or 1 mean serial, unset/invalid/negative mean
// GOMAXPROCS.
func Workers() int {
	if w := workers.Load(); w > 0 {
		return int(w)
	}
	w := runtime.GOMAXPROCS(0)
	if env, ok := os.LookupEnv("OARSMT_WORKERS"); ok {
		if v, err := strconv.Atoi(env); err == nil && v >= 0 {
			w = v
			if w < 1 {
				w = 1
			}
		}
	}
	workers.CompareAndSwap(0, int32(w))
	return int(workers.Load())
}

// batch is one For call: a shard counter claimed lock-free by the caller
// and any helper workers that pick the batch up.
type batch struct {
	fn        func(shard, lo, hi int)
	n, shards int
	next      atomic.Int32
	done      sync.WaitGroup

	panicMu  sync.Mutex
	panicked any
	hasPanic bool
}

// taskCh broadcasts batches to the helper goroutines. Sends are
// non-blocking: when every helper is busy the caller simply runs the
// remaining shards itself, which both bounds concurrency and guarantees
// progress for nested calls.
var (
	poolOnce sync.Once
	taskCh   chan *batch
)

func ensurePool() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0) - 1
		if n < 1 {
			n = 1
		}
		taskCh = make(chan *batch, 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for b := range taskCh {
					b.run()
				}
			}()
		}
	})
}

// run claims shards until none remain, recording the first panic so the
// caller can re-raise it.
func (b *batch) run() {
	for {
		s := int(b.next.Add(1)) - 1
		if s >= b.shards {
			return
		}
		b.runShard(s)
	}
}

func (b *batch) runShard(s int) {
	defer func() {
		if r := recover(); r != nil {
			b.panicMu.Lock()
			if !b.hasPanic {
				b.hasPanic = true
				b.panicked = r
			}
			b.panicMu.Unlock()
		}
		b.done.Done()
	}()
	lo := s * b.n / b.shards
	hi := (s + 1) * b.n / b.shards
	b.fn(s, lo, hi)
}

// For runs fn over the index range [0, n) split into at most Workers()
// contiguous shards: fn(shard, lo, hi) must process indices [lo, hi).
// Shards run concurrently (the caller participates), so fn must only write
// shard-disjoint or shard-private data. With one worker (or n <= 1) fn
// runs inline as fn(0, 0, n). A panic inside any shard is re-raised on the
// calling goroutine after all shards finish.
func For(n int, fn func(shard, lo, hi int)) {
	ForWith(Workers(), n, fn)
}

// ForWith is For with an explicit cap on the shard count, still bounded by
// the global pool; w <= 1 selects the serial path. Sharding depends only
// on min(w, n), so a fixed w gives identical shard boundaries on every
// machine.
func ForWith(w, n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, 0, n)
		return
	}
	ensurePool()
	b := &batch{fn: fn, n: n, shards: w}
	b.done.Add(w)
	for i := 0; i < w-1; i++ {
		select {
		case taskCh <- b:
		default:
			// All helpers busy; the caller will run the leftover shards.
		}
	}
	b.run()
	b.done.Wait()
	if b.hasPanic {
		panic(b.panicked)
	}
}

// minShardWork is the per-shard work floor used by ShardsForWork, in
// abstract work units (the tensor kernels pass multiply-add counts); 0
// means "use the default".
var minShardWork atomic.Int64

// defaultMinShardWork is tuned so one shard amortizes the pool's dispatch
// cost (two atomic ops plus a channel send per helper) at the roughly
// 1-2 multiply-adds/ns the direct kernels sustain: a shard below ~256k
// MACs finishes in the same order of magnitude as waking a helper.
const defaultMinShardWork = 1 << 18

// MinShardWork returns the current per-shard work floor.
func MinShardWork() int {
	if v := minShardWork.Load(); v > 0 {
		return int(v)
	}
	return defaultMinShardWork
}

// SetMinShardWork overrides the per-shard work floor and returns the
// previous value; n <= 0 restores the default. Like the worker count it
// only moves the serial/parallel cutover, never results — tests set it to
// 1 to force the sharded paths on tiny shapes.
func SetMinShardWork(n int) int {
	prev := MinShardWork()
	if n <= 0 {
		minShardWork.Store(0)
	} else {
		minShardWork.Store(int64(n))
	}
	return prev
}

// ShardsForWork returns how many shards a kernel with the given total work
// estimate should split its n independent units into: enough workers that
// every shard still clears MinShardWork, never more than Workers() or n,
// and 1 (the inline serial path) whenever the whole call is under twice
// the floor. Shard counts depend only on (work, n, Workers(),
// MinShardWork), so a fixed configuration shards identically everywhere.
func ShardsForWork(work, n int) int {
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 || n <= 1 {
		return 1
	}
	min := MinShardWork()
	if work < 2*min {
		return 1
	}
	if s := work / min; s < w {
		w = s
	}
	return w
}

// ForWork is For with the shard count sized by a work estimate instead of
// the raw worker count: fn(shard, lo, hi) runs over [0, n) split into
// ShardsForWork(work, n) contiguous shards, inline when that is 1. The
// same determinism contract as For applies: shards must write disjoint
// outputs, and results are bit-identical at any worker count.
func ForWork(work, n int, fn func(shard, lo, hi int)) {
	ForWith(ShardsForWork(work, n), n, fn)
}

// sumChunk is the fixed reduction granularity of SumChunks. It never
// changes with the worker count, so the addition order — chunk-internal
// sums first, then chunk sums in ascending order — is an invariant of the
// data alone.
const sumChunk = 8192

// SumChunks computes a deterministic sum over n items: partial(lo, hi)
// must return the sequential sum of items [lo, hi). The range is split
// into fixed 8192-item chunks whose partial sums are computed in parallel
// and merged in ascending chunk order, so the result is bit-identical at
// every worker count (including serial).
func SumChunks(n int, partial func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	nc := (n + sumChunk - 1) / sumChunk
	if nc == 1 {
		return partial(0, n)
	}
	sums := make([]float64, nc)
	For(nc, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			end := (c + 1) * sumChunk
			if end > n {
				end = n
			}
			sums[c] = partial(c*sumChunk, end)
		}
	})
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total
}
