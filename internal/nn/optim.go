package nn

import (
	"fmt"
	"math"

	"oarsmt/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and clears
// the gradients.
type Optimizer interface {
	Step()
	ZeroGrad()
}

// Adam implements the Adam optimizer with optional decoupled weight decay.
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64
	WeightDecay  float64

	params []*Param
	m, v   []*tensor.Tensor
	t      int
}

// NewAdam returns an Adam optimizer over the parameters with the usual
// defaults (beta1 0.9, beta2 0.999, eps 1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		params: params,
	}
	for _, p := range params {
		a.m = append(a.m, tensor.New(p.W.Shape...))
		a.v = append(a.v, tensor.New(p.W.Shape...))
	}
	return a
}

// Step applies one Adam update and zeroes the gradients.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.W.Data {
			g := p.G.Data[j]
			if a.WeightDecay != 0 {
				p.W.Data[j] -= a.LR * a.WeightDecay * p.W.Data[j]
			}
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mhat := m.Data[j] / bc1
			vhat := v.Data[j] / bc2
			p.W.Data[j] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
	a.ZeroGrad()
}

// ZeroGrad clears every parameter gradient.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.G.Zero()
	}
}

// AdamState is an exportable snapshot of an Adam optimizer's mutable
// state: the step counter and both moment estimates, ordered like the
// parameter slice the optimizer was built over. It is plain data (gob- and
// JSON-friendly) so training checkpoints can persist it; the copied
// float64 slices round-trip bit-exactly.
type AdamState struct {
	T    int
	M, V [][]float64
}

// State deep-copies the optimizer's mutable state for checkpointing.
func (a *Adam) State() AdamState {
	st := AdamState{T: a.t, M: make([][]float64, len(a.m)), V: make([][]float64, len(a.v))}
	for i := range a.m {
		st.M[i] = append([]float64(nil), a.m[i].Data...)
		st.V[i] = append([]float64(nil), a.v[i].Data...)
	}
	return st
}

// Restore overwrites the optimizer's mutable state from a snapshot taken
// by State on an optimizer over identically-shaped parameters. After a
// successful Restore, continued training is bit-identical to the run the
// snapshot was taken from.
func (a *Adam) Restore(st AdamState) error {
	if len(st.M) != len(a.m) || len(st.V) != len(a.v) {
		return fmt.Errorf("nn: adam state has %d/%d moment tensors, optimizer has %d", len(st.M), len(st.V), len(a.m))
	}
	for i := range a.m {
		if len(st.M[i]) != a.m[i].Len() || len(st.V[i]) != a.v[i].Len() {
			return fmt.Errorf("nn: adam state tensor %d has %d/%d values, want %d", i, len(st.M[i]), len(st.V[i]), a.m[i].Len())
		}
	}
	a.t = st.T
	for i := range a.m {
		copy(a.m[i].Data, st.M[i])
		copy(a.v[i].Data, st.V[i])
	}
	return nil
}

// SGD implements plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	params []*Param
	vel    []*tensor.Tensor
}

// NewSGD returns an SGD optimizer over the parameters.
func NewSGD(params []*Param, lr, momentum float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: params}
	for _, p := range params {
		s.vel = append(s.vel, tensor.New(p.W.Shape...))
	}
	return s
}

// Step applies one SGD update and zeroes the gradients.
func (s *SGD) Step() {
	for i, p := range s.params {
		vel := s.vel[i]
		for j := range p.W.Data {
			vel.Data[j] = s.Momentum*vel.Data[j] + p.G.Data[j]
			p.W.Data[j] -= s.LR * vel.Data[j]
		}
	}
	s.ZeroGrad()
}

// ZeroGrad clears every parameter gradient.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.G.Zero()
	}
}

// ClipGradNorm rescales the accumulated gradients so their global L2 norm
// does not exceed maxNorm; it returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.G.Scale(scale)
		}
	}
	return norm
}
