package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"testing"

	"oarsmt/internal/errs"
	"oarsmt/internal/tensor"
)

func savedModel(t *testing.T) []byte {
	t.Helper()
	u, err := NewUNet3D(rand.New(rand.NewSource(3)), UNetConfig{InChannels: 3, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := u.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadInvalidModelSentinel(t *testing.T) {
	data := savedModel(t)

	// Truncation at a spread of prefixes must yield ErrInvalidModel, never
	// a raw gob error or a panic.
	for _, cut := range []int{0, 1, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := LoadUNet3D(bytes.NewReader(data[:cut])); !errors.Is(err, errs.ErrInvalidModel) {
			t.Errorf("truncated at %d/%d bytes: err = %v, want ErrInvalidModel", cut, len(data), err)
		}
	}
	// Garbage bytes.
	if _, err := LoadUNet3D(bytes.NewReader([]byte("not a model at all"))); !errors.Is(err, errs.ErrInvalidModel) {
		t.Errorf("garbage: err = %v, want ErrInvalidModel", err)
	}
	// Corrupted interior bytes: flip a window and require either a clean
	// load (gob can be insensitive to some flips) or the sentinel.
	for off := 0; off+8 < len(data); off += len(data) / 13 {
		mut := append([]byte(nil), data...)
		for i := 0; i < 8; i++ {
			mut[off+i] ^= 0xFF
		}
		if _, err := LoadUNet3D(bytes.NewReader(mut)); err != nil && !errors.Is(err, errs.ErrInvalidModel) {
			t.Errorf("corruption at %d: err = %v, want nil or ErrInvalidModel", off, err)
		}
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	u, _ := NewUNet3D(rand.New(rand.NewSource(3)), UNetConfig{InChannels: 3, Base: 2, Depth: 1, Kernel: 3})
	snap := unetSnapshot{Version: snapshotVersion + 1, Config: u.Config, Params: map[string][]float64{}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadUNet3D(&buf); !errors.Is(err, errs.ErrInvalidModel) {
		t.Errorf("wrong version: err = %v, want ErrInvalidModel", err)
	}
}

func TestLoadRejectsNonFiniteWeights(t *testing.T) {
	u, _ := NewUNet3D(rand.New(rand.NewSource(3)), UNetConfig{InChannels: 3, Base: 2, Depth: 1, Kernel: 3})
	u.Params()[0].W.Data[0] = math.NaN()
	var buf bytes.Buffer
	if err := u.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadUNet3D(&buf); !errors.Is(err, errs.ErrInvalidModel) {
		t.Errorf("NaN weight: err = %v, want ErrInvalidModel", err)
	}
}

func TestAdamStateRestoreBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	u, _ := NewUNet3D(r, UNetConfig{InChannels: 2, Base: 2, Depth: 1, Kernel: 3})
	x := randTensor(r, 2, 4, 4, 1)
	y := tensor.New(4, 4, 1)
	for i := range y.Data {
		if r.Float64() < 0.3 {
			y.Data[i] = 1
		}
	}
	step := func(u *UNet3D, opt *Adam) {
		out := u.Forward(x)
		_, grad := BCEWithLogits(out, y)
		u.Backward(grad)
		opt.Step()
	}

	// Run A: 6 uninterrupted steps.
	optA := NewAdam(u.Params(), 0.01)
	snapU, _ := cloneUNet(u)
	for i := 0; i < 6; i++ {
		step(u, optA)
	}

	// Run B: 3 steps, snapshot, fresh optimizer restored from the
	// snapshot, 3 more steps — weights must match run A bit for bit.
	optB := NewAdam(snapU.Params(), 0.01)
	for i := 0; i < 3; i++ {
		step(snapU, optB)
	}
	st := optB.State()
	optB2 := NewAdam(snapU.Params(), 0.01)
	if err := optB2.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		step(snapU, optB2)
	}

	pa, pb := u.Params(), snapU.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("param %s[%d]: %v != %v after restore", pa[i].Name, j, pa[i].W.Data[j], pb[i].W.Data[j])
			}
		}
	}

	// Shape mismatches are rejected.
	bad := optB2.State()
	bad.M = bad.M[:len(bad.M)-1]
	if err := NewAdam(snapU.Params(), 0.01).Restore(bad); err == nil {
		t.Error("Restore accepted a state with missing moment tensors")
	}
}

// cloneUNet round-trips a network through its serialised form.
func cloneUNet(u *UNet3D) (*UNet3D, error) {
	var buf bytes.Buffer
	if err := u.Save(&buf); err != nil {
		return nil, err
	}
	return LoadUNet3D(&buf)
}
