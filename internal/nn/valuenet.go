package nn

import (
	"fmt"
	"math/rand"

	"oarsmt/internal/tensor"
)

// ValueNet maps a feature volume [C, H, V, M] to a single scalar via a
// small convolutional trunk and global average pooling. The PPO baseline
// (paper §4.2) uses it as the critic head of its actor-critic training;
// the combinatorial-MCTS router itself does not need one — its critic is
// derived from the selector (paper Fig 5).
type ValueNet struct {
	InChannels int
	trunk      *Sequential
	lastShape  []int
	arena      *tensor.Arena
}

// NewValueNet builds a randomly initialised value network.
func NewValueNet(r *rand.Rand, inChannels, hidden int) *ValueNet {
	return &ValueNet{
		InChannels: inChannels,
		trunk: &Sequential{Layers: []Layer{
			NewConv3D(r, "value.conv1", inChannels, hidden, 3),
			&ReLU{},
			NewResBlock(r, "value.res", hidden, 3),
			NewConv3D(r, "value.head", hidden, 1, 3),
		}},
	}
}

// Forward returns the scalar value estimate for the volume.
func (v *ValueNet) Forward(x *tensor.Tensor) float64 {
	if x.Rank() != 4 || x.Dim(0) != v.InChannels {
		panic(fmt.Sprintf("nn: ValueNet input shape %v, want [%d,H,V,M]", x.Shape, v.InChannels))
	}
	v.arena.Reset()
	out := v.trunk.Forward(x)
	v.lastShape = append(v.lastShape[:0], out.Shape...)
	return out.Sum() / float64(out.Len())
}

// Backward propagates a scalar gradient, accumulating parameter gradients,
// and returns the gradient wrt the input volume.
func (v *ValueNet) Backward(grad float64) *tensor.Tensor {
	g := tensor.New(v.lastShape...)
	g.Fill(grad / float64(g.Len()))
	return v.trunk.Backward(g)
}

// Params returns the learnable parameters.
func (v *ValueNet) Params() []*Param { return v.trunk.Params() }

// SetArena attaches a bump arena for the trunk's activations and
// gradients. Like UNet3D, the net owns the reuse boundary: Forward resets
// the arena at entry, so outputs of a pass stay valid exactly until the
// next Forward.
func (v *ValueNet) SetArena(a *tensor.Arena) {
	v.arena = a
	v.trunk.setArena(a)
}
