package nn

import (
	"fmt"
	"math/rand"

	"oarsmt/internal/errs"
	"oarsmt/internal/tensor"
)

// UNetConfig parameterises the 3-D residual U-Net of the paper's Fig 4.
type UNetConfig struct {
	// InChannels is the number of input feature planes (7 in the paper's
	// encoding, Fig 3).
	InChannels int
	// Base is the channel count of the first level; level i uses
	// Base * 2^i channels.
	Base int
	// Depth is the number of pooling levels below the top (Depth 2 gives
	// the classic three-level U).
	Depth int
	// Kernel is the cubic kernel size; the paper uses 3 throughout.
	Kernel int
	// Norm, when positive, inserts GroupNorm with that many groups after
	// the stem and each encoder/decoder fusion convolution. It must divide
	// Base. 0 disables normalisation (the default; the paper does not
	// specify its normalisation).
	Norm int
}

// DefaultUNetConfig returns the configuration used by this repo's trained
// selectors: the paper's 7-channel input and 3x3x3 kernels with a compact
// channel budget suited to CPU training.
func DefaultUNetConfig() UNetConfig {
	return UNetConfig{InChannels: 7, Base: 8, Depth: 2, Kernel: 3}
}

func (c UNetConfig) validate() error {
	switch {
	case c.InChannels < 1:
		return fmt.Errorf("%w: nn: InChannels = %d", errs.ErrInvalidModel, c.InChannels)
	case c.Base < 1:
		return fmt.Errorf("%w: nn: Base = %d", errs.ErrInvalidModel, c.Base)
	case c.Depth < 1:
		return fmt.Errorf("%w: nn: Depth = %d", errs.ErrInvalidModel, c.Depth)
	case c.Kernel < 1 || c.Kernel%2 == 0:
		return fmt.Errorf("%w: nn: Kernel = %d must be odd", errs.ErrInvalidModel, c.Kernel)
	case c.Norm < 0 || (c.Norm > 0 && c.Base%c.Norm != 0):
		return fmt.Errorf("%w: nn: Norm = %d must be 0 or divide Base = %d", errs.ErrInvalidModel, c.Norm, c.Base)
	}
	return nil
}

// UNet3D is the image-in-image-out network of the selector: it maps a
// [InChannels, H, V, M] feature volume to per-vertex logits [H, V, M] for
// any H, V, M. Apply Sigmoid to the logits to obtain the final selected
// probabilities of paper §3.3.
type UNet3D struct {
	Config UNetConfig

	stem *Conv3D
	// Per encoder level: a ReLU'd channel-expanding conv (levels > 0) and
	// a residual block.
	encConv []*Conv3D   // len Depth (level 1..Depth)
	encRes  []*ResBlock // len Depth+1 (level 0..Depth)
	// Per decoder level (top-down order index 0 = level Depth-1): a conv
	// fusing the concatenated skip, and a residual block.
	decConv []*Conv3D
	decRes  []*ResBlock
	head    *Conv3D

	// Optional GroupNorm after the stem and each enc/dec conv; nil slices
	// when Config.Norm == 0. Indexed in the same order as the ReLUs.
	norms []*GroupNorm

	relus []*ReLU // scratch ReLUs paired with encConv/decConv and stem

	// Forward state for Backward.
	encInShapes [][]int // input shape at each level before pooling
	skipChans   []int

	// arena, when attached via SetArena, provides all activation and
	// gradient storage. Forward resets it at entry, so arena-backed
	// outputs stay valid exactly until the next forward pass.
	arena *tensor.Arena
}

// NewUNet3D builds a randomly initialised U-Net.
func NewUNet3D(r *rand.Rand, cfg UNetConfig) (*UNet3D, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	u := &UNet3D{Config: cfg}
	ch := func(level int) int { return cfg.Base << level }

	u.stem = NewConv3D(r, "stem", cfg.InChannels, ch(0), cfg.Kernel)
	u.encRes = append(u.encRes, NewResBlock(r, "enc0.res", ch(0), cfg.Kernel))
	for l := 1; l <= cfg.Depth; l++ {
		u.encConv = append(u.encConv, NewConv3D(r, fmt.Sprintf("enc%d.conv", l), ch(l-1), ch(l), cfg.Kernel))
		u.encRes = append(u.encRes, NewResBlock(r, fmt.Sprintf("enc%d.res", l), ch(l), cfg.Kernel))
	}
	for l := cfg.Depth - 1; l >= 0; l-- {
		u.decConv = append(u.decConv, NewConv3D(r, fmt.Sprintf("dec%d.conv", l), ch(l+1)+ch(l), ch(l), cfg.Kernel))
		u.decRes = append(u.decRes, NewResBlock(r, fmt.Sprintf("dec%d.res", l), ch(l), cfg.Kernel))
	}
	u.head = NewConv3D(r, "head", ch(0), 1, cfg.Kernel)
	nRelu := 1 + len(u.encConv) + len(u.decConv)
	for i := 0; i < nRelu; i++ {
		u.relus = append(u.relus, &ReLU{})
	}
	if cfg.Norm > 0 {
		// One norm per ReLU position: stem (level 0 channels), encoder
		// levels 1..Depth, decoder levels Depth-1..0.
		u.norms = append(u.norms, NewGroupNorm("stem.norm", ch(0), cfg.Norm))
		for l := 1; l <= cfg.Depth; l++ {
			u.norms = append(u.norms, NewGroupNorm(fmt.Sprintf("enc%d.norm", l), ch(l), cfg.Norm))
		}
		for l := cfg.Depth - 1; l >= 0; l-- {
			u.norms = append(u.norms, NewGroupNorm(fmt.Sprintf("dec%d.norm", l), ch(l), cfg.Norm))
		}
	}
	return u, nil
}

// SetArena attaches a bump arena that provides every activation and
// gradient buffer of the network. The network owns the reuse boundary:
// Forward (and Forward32) reset the arena at entry, which recycles the
// previous pass's activations and gradients — safe because training always
// completes Backward before the next Forward. Callers must copy any
// network output they keep across passes. A network with an arena is
// single-goroutine, which Layer already requires.
func (u *UNet3D) SetArena(a *tensor.Arena) {
	u.arena = a
	u.stem.setArena(a)
	u.head.setArena(a)
	for _, c := range u.encConv {
		c.setArena(a)
	}
	for _, c := range u.decConv {
		c.setArena(a)
	}
	for _, b := range u.encRes {
		b.setArena(a)
	}
	for _, b := range u.decRes {
		b.setArena(a)
	}
	for _, n := range u.norms {
		n.setArena(a)
	}
	for _, r := range u.relus {
		r.setArena(a)
	}
}

// Precompute32 converts all weights to the float32 caches used by
// Forward32. Call once on a frozen inference network; training the
// network afterwards leaves the caches stale.
func (u *UNet3D) Precompute32() {
	u.stem.precompute32()
	u.head.precompute32()
	for _, c := range u.encConv {
		c.precompute32()
	}
	for _, c := range u.decConv {
		c.precompute32()
	}
	for _, b := range u.encRes {
		b.conv1.precompute32()
		b.conv2.precompute32()
	}
	for _, b := range u.decRes {
		b.conv1.precompute32()
		b.conv2.precompute32()
	}
	for _, n := range u.norms {
		n.precompute32()
	}
}

// applyNorm runs the i-th GroupNorm when normalisation is enabled.
func (u *UNet3D) applyNorm(i int, x *tensor.Tensor) *tensor.Tensor {
	if u.norms == nil {
		return x
	}
	return u.norms[i].Forward(x)
}

// backNorm runs the i-th GroupNorm backward when enabled.
func (u *UNet3D) backNorm(i int, g *tensor.Tensor) *tensor.Tensor {
	if u.norms == nil {
		return g
	}
	return u.norms[i].Backward(g)
}

// Forward maps a [InChannels, H, V, M] input to [H, V, M] logits.
func (u *UNet3D) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(0) != u.Config.InChannels {
		panic(fmt.Sprintf("nn: UNet input shape %v, want [%d,H,V,M]", x.Shape, u.Config.InChannels))
	}
	u.arena.Reset()
	relu := 0
	depth := u.Config.Depth
	u.encInShapes = u.encInShapes[:0]
	u.skipChans = u.skipChans[:0]

	// Encoder.
	skips := make([]*tensor.Tensor, 0, depth)
	cur := u.encRes[0].Forward(u.relus[relu].Forward(u.applyNorm(relu, u.stem.Forward(x))))
	relu++
	for l := 1; l <= depth; l++ {
		skips = append(skips, cur)
		u.encInShapes = append(u.encInShapes, append([]int(nil), cur.Shape...))
		pooled := tensor.AvgPool2In(u.arena, cur)
		cur = u.encRes[l].Forward(u.relus[relu].Forward(u.applyNorm(relu, u.encConv[l-1].Forward(pooled))))
		relu++
	}

	// Decoder.
	for i := 0; i < depth; i++ {
		skip := skips[depth-1-i]
		up := tensor.UpsampleNearestIn(u.arena, cur, skip.Dim(1), skip.Dim(2), skip.Dim(3))
		u.skipChans = append(u.skipChans, up.Dim(0))
		cat := tensor.ConcatCIn(u.arena, up, skip)
		cur = u.decRes[i].Forward(u.relus[relu].Forward(u.applyNorm(relu, u.decConv[i].Forward(cat))))
		relu++
	}

	out := u.head.Forward(cur)
	return out.Reshape(out.Dim(1), out.Dim(2), out.Dim(3))
}

// Forward32 is the float32 inference-mode forward pass: same structure as
// Forward, float32 storage end to end, no state recorded for Backward.
// Call Precompute32 (or selector.EnableFloat32) first on a frozen network.
func (u *UNet3D) Forward32(x *tensor.T32) *tensor.T32 {
	if x.Rank() != 4 || x.Dim(0) != u.Config.InChannels {
		panic(fmt.Sprintf("nn: UNet input shape %v, want [%d,H,V,M]", x.Shape, u.Config.InChannels))
	}
	u.arena.Reset()
	norm32 := func(i int, t *tensor.T32) *tensor.T32 {
		if u.norms == nil {
			return t
		}
		return u.norms[i].forward32(t)
	}
	relu := 0
	depth := u.Config.Depth

	skips := make([]*tensor.T32, 0, depth)
	cur := u.encRes[0].forward32(relu32In(u.arena, norm32(relu, u.stem.forward32(x))))
	relu++
	for l := 1; l <= depth; l++ {
		skips = append(skips, cur)
		pooled := tensor.AvgPool232(u.arena, cur)
		cur = u.encRes[l].forward32(relu32In(u.arena, norm32(relu, u.encConv[l-1].forward32(pooled))))
		relu++
	}
	for i := 0; i < depth; i++ {
		skip := skips[depth-1-i]
		up := tensor.UpsampleNearest32(u.arena, cur, skip.Dim(1), skip.Dim(2), skip.Dim(3))
		cat := tensor.ConcatC32(u.arena, up, skip)
		cur = u.decRes[i].forward32(relu32In(u.arena, norm32(relu, u.decConv[i].forward32(cat))))
		relu++
	}
	out := u.head.forward32(cur)
	return out.Reshape(out.Dim(1), out.Dim(2), out.Dim(3))
}

// Backward propagates the gradient wrt the [H, V, M] logits, accumulating
// parameter gradients, and returns the gradient wrt the input volume.
func (u *UNet3D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	depth := u.Config.Depth
	relu := len(u.relus) - 1
	g := u.head.Backward(grad.Reshape(1, grad.Dim(0), grad.Dim(1), grad.Dim(2)))

	// Skip-path gradients discovered while unwinding the decoder, indexed
	// by encoder level.
	skipGrads := make([]*tensor.Tensor, depth)
	for i := depth - 1; i >= 0; i-- {
		g = u.decConv[i].Backward(u.backNorm(relu, u.relus[relu].Backward(u.decRes[i].Backward(g))))
		relu--
		gUp, gSkip := tensor.SplitCIn(u.arena, g, u.skipChans[i])
		skipGrads[depth-1-i] = gSkip
		// Up-sampled from the level below (or bottleneck).
		srcShape := u.belowShape(depth - 1 - i)
		g = tensor.UpsampleNearestBackwardIn(u.arena, srcShape, gUp)
	}

	// Encoder, bottom-up.
	for l := depth; l >= 1; l-- {
		g = u.encConv[l-1].Backward(u.backNorm(relu, u.relus[relu].Backward(u.encRes[l].Backward(g))))
		relu--
		g = tensor.AvgPool2BackwardIn(u.arena, u.encInShapes[l-1], g)
		g.AddScaled(skipGrads[l-1], 1)
	}
	return u.stem.Backward(u.backNorm(relu, u.relus[relu].Backward(u.encRes[0].Backward(g))))
}

// belowShape returns the spatial shape of the tensor that was upsampled at
// encoder level l (the pooled shape below it).
func (u *UNet3D) belowShape(level int) []int {
	s := u.encInShapes[level]
	h, v, m := (s[1]+1)/2, (s[2]+1)/2, (s[3]+1)/2
	c := u.Config.Base << (level + 1)
	return []int{c, h, v, m}
}

// Params implements Layer.
func (u *UNet3D) Params() []*Param {
	var out []*Param
	for _, n := range u.norms {
		out = append(out, n.Params()...)
	}
	out = append(out, u.stem.Params()...)
	for _, b := range u.encRes {
		out = append(out, b.Params()...)
	}
	for _, c := range u.encConv {
		out = append(out, c.Params()...)
	}
	for _, c := range u.decConv {
		out = append(out, c.Params()...)
	}
	for _, b := range u.decRes {
		out = append(out, b.Params()...)
	}
	out = append(out, u.head.Params()...)
	return out
}

// NumParams returns the total number of learnable scalars.
func (u *UNet3D) NumParams() int {
	n := 0
	for _, p := range u.Params() {
		n += p.W.Len()
	}
	return n
}
