package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestGroupNormForwardStatistics(t *testing.T) {
	// With identity affine parameters each group is standardised.
	gn := NewGroupNorm("gn", 4, 2)
	r := rand.New(rand.NewSource(1))
	x := randTensor(r, 4, 3, 3, 2)
	out := gn.Forward(x)
	spatial := 3 * 3 * 2
	for grp := 0; grp < 2; grp++ {
		lo := grp * 2 * spatial
		hi := lo + 2*spatial
		mu, va := 0.0, 0.0
		for i := lo; i < hi; i++ {
			mu += out.Data[i]
		}
		mu /= float64(hi - lo)
		for i := lo; i < hi; i++ {
			d := out.Data[i] - mu
			va += d * d
		}
		va /= float64(hi - lo)
		if math.Abs(mu) > 1e-9 {
			t.Errorf("group %d mean = %v, want 0", grp, mu)
		}
		if math.Abs(va-1) > 1e-3 {
			t.Errorf("group %d variance = %v, want ~1", grp, va)
		}
	}
}

func TestGroupNormAffine(t *testing.T) {
	// Groups == channels: instance norm, so each channel standardises on
	// its own and beta shifts its mean exactly.
	gn := NewGroupNorm("gn", 2, 2)
	gn.gamma.W.Data[0] = 2
	gn.beta.W.Data[1] = 5
	r := rand.New(rand.NewSource(2))
	x := randTensor(r, 2, 2, 2, 1)
	out := gn.Forward(x)
	spatial := 4
	mu := 0.0
	for i := spatial; i < 2*spatial; i++ {
		mu += out.Data[i]
	}
	mu /= float64(spatial)
	if math.Abs(mu-5) > 1e-9 {
		t.Errorf("shifted channel mean = %v, want 5", mu)
	}
}

func TestGroupNormGradCheck(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	gn := NewGroupNorm("gn", 4, 2)
	x := randTensor(r, 4, 2, 3, 2)
	mask := randTensor(r, 4, 2, 3, 2)
	loss := func() float64 {
		out := gn.Forward(x)
		s := 0.0
		for i := range out.Data {
			s += out.Data[i] * mask.Data[i]
		}
		return s
	}
	loss()
	for _, p := range gn.Params() {
		p.G.Zero()
	}
	gx := gn.Backward(mask)
	if d := maxDiff(gx, numGrad(loss, x)); d > 1e-5 {
		t.Errorf("groupnorm gradX diff %v", d)
	}
	for _, p := range gn.Params() {
		if d := maxDiff(p.G, numGrad(loss, p.W)); d > 1e-5 {
			t.Errorf("groupnorm %s grad diff %v", p.Name, d)
		}
	}
}

func TestGroupNormValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-dividing groups should panic")
		}
	}()
	NewGroupNorm("bad", 4, 3)
}

func TestUNetWithNormGradCheck(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	u, err := NewUNet3D(r, UNetConfig{InChannels: 2, Base: 2, Depth: 2, Kernel: 3, Norm: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := randTensor(r, 2, 5, 4, 3)
	mask := randTensor(r, 5, 4, 3)
	loss := func() float64 {
		out := u.Forward(x)
		s := 0.0
		for i := range out.Data {
			s += out.Data[i] * mask.Data[i]
		}
		return s
	}
	loss()
	for _, p := range u.Params() {
		p.G.Zero()
	}
	gx := u.Backward(mask)
	if d := maxDiff(gx, numGrad(loss, x)); d > 1e-5 {
		t.Errorf("normed unet gradX diff %v", d)
	}
	// Spot-check a norm parameter and a conv parameter.
	params := u.Params()
	for _, idx := range []int{0, 1, len(params) - 1} {
		p := params[idx]
		if d := maxDiff(p.G, numGrad(loss, p.W)); d > 1e-5 {
			t.Errorf("normed unet %s grad diff %v", p.Name, d)
		}
	}
}

func TestUNetNormConfigValidation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	if _, err := NewUNet3D(r, UNetConfig{InChannels: 2, Base: 4, Depth: 1, Kernel: 3, Norm: 3}); err == nil {
		t.Error("Norm not dividing Base should fail")
	}
	if _, err := NewUNet3D(r, UNetConfig{InChannels: 2, Base: 4, Depth: 1, Kernel: 3, Norm: -1}); err == nil {
		t.Error("negative Norm should fail")
	}
}

func TestUNetNormSaveLoad(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	u, err := NewUNet3D(r, UNetConfig{InChannels: 2, Base: 2, Depth: 1, Kernel: 3, Norm: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := randTensor(r, 2, 4, 4, 2)
	want := u.Forward(x)
	var buf bytes.Buffer
	if err := u.Save(&buf); err != nil {
		t.Fatal(err)
	}
	u2, err := LoadUNet3D(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := u2.Forward(x)
	if d := maxDiff(got, want); d > 1e-12 {
		t.Errorf("normed model round trip differs by %v", d)
	}
}
