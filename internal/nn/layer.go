// Package nn implements the neural-network framework of the Steiner-point
// selector: 3-D convolution layers, residual blocks, the arbitrary-size
// 3-D residual U-Net of the paper's Fig 4, losses and optimizers — all on
// the tensor package, CPU-only, with manual layer-by-layer backpropagation.
//
// Layers process one sample at a time in [C, H, V, M] form; the training
// pipeline accumulates gradients across a mini-batch before each optimizer
// step, which both matches the paper's same-size batching (Fig 9) and
// keeps layers free of any fixed spatial size — the property that lets one
// trained network handle layouts of any dimensions.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"oarsmt/internal/tensor"
)

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape...)}
}

// Layer is one differentiable stage. Forward must record whatever Backward
// needs; Backward receives the gradient wrt the layer output, accumulates
// parameter gradients (+=) and returns the gradient wrt the layer input.
// A Layer processes one sample at a time and is not safe for concurrent
// use.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// arenaUser is implemented by layers whose activations can come from a
// shared bump arena (see tensor.Arena for the ownership rules).
type arenaUser interface {
	setArena(a *tensor.Arena)
}

// Conv3D is a "same" 3-D convolution layer with odd cubic kernels.
type Conv3D struct {
	InC, OutC, K int
	weight       *Param
	bias         *Param
	lastX        *tensor.Tensor

	// ar, when set, provides activation and gradient storage.
	ar *tensor.Arena
	// w32/b32 cache the float32-converted weights of the inference mode;
	// they are derived data, converted once and never trained.
	w32, b32 *tensor.T32
}

// NewConv3D creates a conv layer with He-initialised weights.
func NewConv3D(r *rand.Rand, name string, inC, outC, k int) *Conv3D {
	if k%2 == 0 || k < 1 {
		panic(fmt.Sprintf("nn: kernel size %d must be odd", k))
	}
	w := tensor.New(outC, inC, k, k, k)
	std := math.Sqrt(2.0 / float64(inC*k*k*k))
	for i := range w.Data {
		w.Data[i] = r.NormFloat64() * std
	}
	return &Conv3D{
		InC: inC, OutC: outC, K: k,
		weight: newParam(name+".weight", w),
		bias:   newParam(name+".bias", tensor.New(outC)),
	}
}

// Forward implements Layer.
func (c *Conv3D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.lastX = x
	return tensor.Conv3DIn(c.ar, x, c.weight.W, c.bias.W)
}

// Backward implements Layer.
func (c *Conv3D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gx, gw, gb := tensor.Conv3DBackwardIn(c.ar, c.lastX, c.weight.W, grad)
	c.weight.G.AddScaled(gw, 1)
	c.bias.G.AddScaled(gb, 1)
	return gx
}

// Params implements Layer.
func (c *Conv3D) Params() []*Param { return []*Param{c.weight, c.bias} }

func (c *Conv3D) setArena(a *tensor.Arena) { c.ar = a }

// precompute32 converts the weights for the float32 inference mode. The
// cache goes stale if the weights are trained afterwards; the selector
// only enables float32 on frozen inference instances.
func (c *Conv3D) precompute32() {
	c.w32 = tensor.Convert32(c.weight.W)
	c.b32 = tensor.Convert32(c.bias.W)
}

// forward32 is the inference-only float32 forward pass.
func (c *Conv3D) forward32(x *tensor.T32) *tensor.T32 {
	if c.w32 == nil {
		c.precompute32()
	}
	return tensor.Conv3D32(c.ar, x, c.w32, c.b32)
}

// ReLU is the rectified-linear activation.
type ReLU struct {
	lastX *tensor.Tensor
	ar    *tensor.Arena
}

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	l.lastX = x
	out := l.ar.New(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gx := l.ar.New(grad.Shape...)
	for i, v := range l.lastX.Data {
		if v > 0 {
			gx.Data[i] = grad.Data[i]
		}
	}
	return gx
}

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

func (l *ReLU) setArena(a *tensor.Arena) { l.ar = a }

// relu32In is the stateless float32 ReLU of the inference mode.
func relu32In(a *tensor.Arena, x *tensor.T32) *tensor.T32 {
	out := a.New32(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// ResBlock is a 3-D convolutional residual block (He et al. [8]):
// out = ReLU(x + Conv(ReLU(Conv(x)))). Channel count is preserved.
type ResBlock struct {
	conv1, conv2 *Conv3D
	relu1        ReLU
	lastSum      *tensor.Tensor
	ar           *tensor.Arena
}

// NewResBlock creates a residual block over c channels with kernel k.
func NewResBlock(r *rand.Rand, name string, c, k int) *ResBlock {
	return &ResBlock{
		conv1: NewConv3D(r, name+".conv1", c, c, k),
		conv2: NewConv3D(r, name+".conv2", c, c, k),
	}
}

// Forward implements Layer.
func (b *ResBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := b.conv2.Forward(b.relu1.Forward(b.conv1.Forward(x)))
	sum := b.ar.New(x.Shape...)
	for i, v := range x.Data {
		sum.Data[i] = v + y.Data[i]
	}
	b.lastSum = sum
	out := b.ar.New(sum.Shape...)
	for i, v := range sum.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Backward implements Layer.
func (b *ResBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// Through the final ReLU.
	gSum := b.ar.New(grad.Shape...)
	for i, v := range b.lastSum.Data {
		if v > 0 {
			gSum.Data[i] = grad.Data[i]
		}
	}
	// Branch path.
	gx := b.conv1.Backward(b.relu1.Backward(b.conv2.Backward(gSum)))
	// Skip path.
	gx.AddScaled(gSum, 1)
	return gx
}

// Params implements Layer.
func (b *ResBlock) Params() []*Param {
	return append(b.conv1.Params(), b.conv2.Params()...)
}

func (b *ResBlock) setArena(a *tensor.Arena) {
	b.ar = a
	b.conv1.setArena(a)
	b.conv2.setArena(a)
	b.relu1.setArena(a)
}

// forward32 is the inference-only float32 forward pass; the sum+ReLU tail
// is fused into one loop.
func (b *ResBlock) forward32(x *tensor.T32) *tensor.T32 {
	y := b.conv2.forward32(relu32In(b.ar, b.conv1.forward32(x)))
	out := b.ar.New32(x.Shape...)
	for i, v := range x.Data {
		if s := v + y.Data[i]; s > 0 {
			out.Data[i] = s
		}
	}
	return out
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

func (s *Sequential) setArena(a *tensor.Arena) {
	for _, l := range s.Layers {
		if u, ok := l.(arenaUser); ok {
			u.setArena(a)
		}
	}
}

// Sigmoid returns 1/(1+exp(-x)) elementwise; used at inference time to map
// selector logits to per-vertex probabilities (paper §3.3).
func Sigmoid(x float64) float64 {
	// Numerically stable in both tails.
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
