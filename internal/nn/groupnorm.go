package nn

import (
	"fmt"
	"math"

	"oarsmt/internal/parallel"
	"oarsmt/internal/tensor"
)

// GroupNorm normalises a [C, H, V, M] volume over groups of channels
// (Wu & He, 2018) with learned per-channel scale and shift. Unlike batch
// normalisation it is independent of the batch, which matters here because
// the training pipeline processes one sample at a time; unlike layer norm
// it keeps some channel locality. With Groups == C it degenerates to
// instance norm, with Groups == 1 to layer norm.
//
// The paper does not specify its U-Net's normalisation; GroupNorm is
// offered as the UNetConfig.Norm option and is exercised by the ablation
// benchmarks.
type GroupNorm struct {
	C, Groups int
	Eps       float64

	gamma, beta *Param

	// Forward state for Backward.
	lastX   *tensor.Tensor
	lastStd []float64 // per group
	lastMu  []float64
	lastN   int // elements per group

	ar *tensor.Arena
	// Float32 inference-mode weight caches (converted once).
	gamma32, beta32 *tensor.T32
}

// NewGroupNorm creates a GroupNorm over c channels in the given number of
// groups; groups must divide c.
func NewGroupNorm(name string, c, groups int) *GroupNorm {
	if groups < 1 || c%groups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm groups %d must divide channels %d", groups, c))
	}
	gamma := tensor.New(c)
	gamma.Fill(1)
	return &GroupNorm{
		C: c, Groups: groups, Eps: 1e-5,
		gamma: newParam(name+".gamma", gamma),
		beta:  newParam(name+".beta", tensor.New(c)),
	}
}

// Forward implements Layer.
func (g *GroupNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(0) != g.C {
		panic(fmt.Sprintf("nn: GroupNorm input shape %v, want [%d,H,V,M]", x.Shape, g.C))
	}
	g.lastX = x
	spatial := x.Dim(1) * x.Dim(2) * x.Dim(3)
	chPerGroup := g.C / g.Groups
	g.lastN = chPerGroup * spatial
	if cap(g.lastMu) < g.Groups {
		g.lastMu = make([]float64, g.Groups)
		g.lastStd = make([]float64, g.Groups)
	}
	g.lastMu = g.lastMu[:g.Groups]
	g.lastStd = g.lastStd[:g.Groups]

	out := g.ar.New(x.Shape...)
	g.forGroups(x.Len(), func(grp int) {
		lo := grp * chPerGroup * spatial
		hi := lo + chPerGroup*spatial
		mu := 0.0
		for i := lo; i < hi; i++ {
			mu += x.Data[i]
		}
		mu /= float64(g.lastN)
		varSum := 0.0
		for i := lo; i < hi; i++ {
			d := x.Data[i] - mu
			varSum += d * d
		}
		std := math.Sqrt(varSum/float64(g.lastN) + g.Eps)
		g.lastMu[grp] = mu
		g.lastStd[grp] = std
		for c := grp * chPerGroup; c < (grp+1)*chPerGroup; c++ {
			ga, be := g.gamma.W.Data[c], g.beta.W.Data[c]
			base := c * spatial
			for i := 0; i < spatial; i++ {
				out.Data[base+i] = ga*(x.Data[base+i]-mu)/std + be
			}
		}
	})
	return out
}

// forGroups runs body(grp) for every group, sharding the (independent)
// groups over the worker pool when the volume (the shared work estimate of
// parallel.ForWork) warrants it. Each group touches only its own channel
// slab and per-group statistics, so the results are identical at any
// worker count.
func (g *GroupNorm) forGroups(work int, body func(grp int)) {
	parallel.ForWork(work, g.Groups, func(_, lo, hi int) {
		for grp := lo; grp < hi; grp++ {
			body(grp)
		}
	})
}

// Backward implements Layer.
func (g *GroupNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := g.lastX
	spatial := x.Dim(1) * x.Dim(2) * x.Dim(3)
	chPerGroup := g.C / g.Groups
	n := float64(g.lastN)
	gx := g.ar.New(x.Shape...)

	g.forGroups(x.Len(), func(grp int) {
		mu, std := g.lastMu[grp], g.lastStd[grp]
		// Accumulate the two group-wide reductions of the standard
		// normalisation backward pass: sum(dy*gamma) and sum(dy*gamma*xhat).
		var sumDg, sumDgXhat float64
		for c := grp * chPerGroup; c < (grp+1)*chPerGroup; c++ {
			ga := g.gamma.W.Data[c]
			base := c * spatial
			var dGamma, dBeta float64
			for i := 0; i < spatial; i++ {
				xhat := (x.Data[base+i] - mu) / std
				dy := grad.Data[base+i]
				dGamma += dy * xhat
				dBeta += dy
				sumDg += dy * ga
				sumDgXhat += dy * ga * xhat
			}
			g.gamma.G.Data[c] += dGamma
			g.beta.G.Data[c] += dBeta
		}
		for c := grp * chPerGroup; c < (grp+1)*chPerGroup; c++ {
			ga := g.gamma.W.Data[c]
			base := c * spatial
			for i := 0; i < spatial; i++ {
				xhat := (x.Data[base+i] - mu) / std
				dy := grad.Data[base+i]
				gx.Data[base+i] = (dy*ga - sumDg/n - xhat*sumDgXhat/n) / std
			}
		}
	})
	return gx
}

// Params implements Layer.
func (g *GroupNorm) Params() []*Param { return []*Param{g.gamma, g.beta} }

func (g *GroupNorm) setArena(a *tensor.Arena) { g.ar = a }

// precompute32 converts the scale/shift weights for the float32 inference
// mode.
func (g *GroupNorm) precompute32() {
	g.gamma32 = tensor.Convert32(g.gamma.W)
	g.beta32 = tensor.Convert32(g.beta.W)
}

// forward32 is the inference-only float32 forward pass. The group mean and
// variance accumulate in float64 — a float32 running sum over thousands of
// elements loses enough precision to move the normalisation visibly — and
// only the final per-element scale runs in float32.
func (g *GroupNorm) forward32(x *tensor.T32) *tensor.T32 {
	if x.Rank() != 4 || x.Dim(0) != g.C {
		panic(fmt.Sprintf("nn: GroupNorm input shape %v, want [%d,H,V,M]", x.Shape, g.C))
	}
	if g.gamma32 == nil {
		g.precompute32()
	}
	spatial := x.Dim(1) * x.Dim(2) * x.Dim(3)
	chPerGroup := g.C / g.Groups
	n := float64(chPerGroup * spatial)

	out := g.ar.New32(x.Shape...)
	g.forGroups(x.Len(), func(grp int) {
		lo := grp * chPerGroup * spatial
		hi := lo + chPerGroup*spatial
		mu := 0.0
		for _, v := range x.Data[lo:hi] {
			mu += float64(v)
		}
		mu /= n
		varSum := 0.0
		for _, v := range x.Data[lo:hi] {
			d := float64(v) - mu
			varSum += d * d
		}
		std := math.Sqrt(varSum/n + g.Eps)
		mu32 := float32(mu)
		for c := grp * chPerGroup; c < (grp+1)*chPerGroup; c++ {
			scale := float32(float64(g.gamma32.Data[c]) / std)
			be := g.beta32.Data[c]
			base := c * spatial
			for i := 0; i < spatial; i++ {
				out.Data[base+i] = scale*(x.Data[base+i]-mu32) + be
			}
		}
	})
	return out
}
