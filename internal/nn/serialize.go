package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// Model files are gob-encoded snapshots: the architecture config plus
// every named parameter tensor. Loading rebuilds the architecture and
// overwrites the freshly initialised weights, so files stay valid across
// unrelated code changes as long as the architecture config semantics are
// stable. snapshotVersion guards incompatible format changes.
const snapshotVersion = 1

type unetSnapshot struct {
	Version int
	Config  UNetConfig
	Params  map[string][]float64
}

// Save writes the network weights and architecture to w.
func (u *UNet3D) Save(w io.Writer) error {
	snap := unetSnapshot{
		Version: snapshotVersion,
		Config:  u.Config,
		Params:  map[string][]float64{},
	}
	for _, p := range u.Params() {
		if _, dup := snap.Params[p.Name]; dup {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		snap.Params[p.Name] = p.W.Data
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadUNet3D reads a network saved by Save.
func LoadUNet3D(r io.Reader) (*UNet3D, error) {
	var snap unetSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("nn: decode model: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("nn: model version %d, want %d", snap.Version, snapshotVersion)
	}
	u, err := NewUNet3D(rand.New(rand.NewSource(0)), snap.Config)
	if err != nil {
		return nil, err
	}
	for _, p := range u.Params() {
		data, ok := snap.Params[p.Name]
		if !ok {
			return nil, fmt.Errorf("nn: model missing parameter %q", p.Name)
		}
		if len(data) != p.W.Len() {
			return nil, fmt.Errorf("nn: parameter %q has %d values, want %d", p.Name, len(data), p.W.Len())
		}
		copy(p.W.Data, data)
	}
	return u, nil
}
