package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"oarsmt/internal/errs"
)

// Model files are gob-encoded snapshots: the architecture config plus
// every named parameter tensor. Loading rebuilds the architecture and
// overwrites the freshly initialised weights, so files stay valid across
// unrelated code changes as long as the architecture config semantics are
// stable. snapshotVersion guards incompatible format changes.
const snapshotVersion = 1

type unetSnapshot struct {
	Version int
	Config  UNetConfig
	Params  map[string][]float64
}

// Save writes the network weights and architecture to w.
func (u *UNet3D) Save(w io.Writer) error {
	snap := unetSnapshot{
		Version: snapshotVersion,
		Config:  u.Config,
		Params:  map[string][]float64{},
	}
	for _, p := range u.Params() {
		if _, dup := snap.Params[p.Name]; dup {
			return fmt.Errorf("%w: nn: duplicate parameter name %q", errs.ErrInvalidModel, p.Name)
		}
		snap.Params[p.Name] = p.W.Data
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadUNet3D reads a network saved by Save. Every way a model file can be
// bad — truncated or garbage bytes, a foreign format version, missing or
// mis-sized parameters, non-finite weights, or an architecture config the
// constructor rejects — surfaces as an error matching errs.ErrInvalidModel,
// so callers need a single errors.Is check to map it (the HTTP layer
// returns 422). The gob decoder can panic on some malformed inputs; that
// panic is contained here and reported the same way.
func LoadUNet3D(r io.Reader) (u *UNet3D, err error) {
	defer func() {
		if p := recover(); p != nil {
			u, err = nil, fmt.Errorf("%w: decode model: panic: %v", errs.ErrInvalidModel, p)
		}
	}()
	var snap unetSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%w: decode model: %w", errs.ErrInvalidModel, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: model version %d, want %d", errs.ErrInvalidModel, snap.Version, snapshotVersion)
	}
	u, err = NewUNet3D(rand.New(rand.NewSource(0)), snap.Config)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errs.ErrInvalidModel, err)
	}
	for _, p := range u.Params() {
		data, ok := snap.Params[p.Name]
		if !ok {
			return nil, fmt.Errorf("%w: model missing parameter %q", errs.ErrInvalidModel, p.Name)
		}
		if len(data) != p.W.Len() {
			return nil, fmt.Errorf("%w: parameter %q has %d values, want %d", errs.ErrInvalidModel, p.Name, len(data), p.W.Len())
		}
		for i, v := range data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: parameter %q has non-finite value at index %d", errs.ErrInvalidModel, p.Name, i)
			}
		}
		copy(p.W.Data, data)
	}
	return u, nil
}
