package nn

import (
	"fmt"
	"math"

	"oarsmt/internal/parallel"
	"oarsmt/internal/tensor"
)

// BCEWithLogits computes the mean binary cross-entropy between sigmoid
// probabilities derived from the logits and the targets in [0, 1], plus
// the gradient wrt the logits. This is the selector's training loss
// (paper §3.5); fusing the sigmoid keeps the computation stable for large
// |logit|.
//
// The loss reduction always runs over the fixed chunks of
// parallel.SumChunks — the chunk partial sums may be computed by any
// number of workers but are merged in a fixed order, so the result is
// bit-identical at every worker count. The gradient is elementwise and
// each chunk writes a disjoint slice.
func BCEWithLogits(logits, targets *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if !logits.SameShape(targets) {
		panic(fmt.Sprintf("nn: BCE shapes %v vs %v", logits.Shape, targets.Shape))
	}
	n := float64(logits.Len())
	grad = tensor.New(logits.Shape...)
	loss = parallel.SumChunks(logits.Len(), func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			z := logits.Data[i]
			y := targets.Data[i]
			// loss_i = max(z,0) - z*y + log(1+exp(-|z|))
			l := z
			if l < 0 {
				l = 0
			}
			az := z
			if az < 0 {
				az = -az
			}
			s += l - z*y + math.Log1p(math.Exp(-az))
			grad.Data[i] = (Sigmoid(z) - y) / n
		}
		return s
	})
	return loss / n, grad
}

// MaskedSoftmax turns logits into a probability distribution over the
// vertices where mask is true; masked-out entries get probability 0. It is
// used by the sequential-selector baselines (AlphaGo-like MCTS and PPO),
// whose policies are distributions over the next Steiner point.
func MaskedSoftmax(logits []float64, mask []bool) []float64 {
	if len(logits) != len(mask) {
		panic(fmt.Sprintf("nn: softmax lengths %d vs %d", len(logits), len(mask)))
	}
	out := make([]float64, len(logits))
	maxv := math.Inf(-1)
	any := false
	for i, m := range mask {
		if m {
			any = true
			if logits[i] > maxv {
				maxv = logits[i]
			}
		}
	}
	if !any {
		return out
	}
	sum := 0.0
	for i, m := range mask {
		if m {
			out[i] = math.Exp(logits[i] - maxv)
			sum += out[i]
		}
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// CrossEntropyGrad returns the loss and the gradient wrt the logits of a
// masked-softmax distribution fitted to a target distribution: the classic
// softmax cross-entropy, with masked entries receiving zero gradient. The
// target must sum to ~1 over the masked-in entries.
func CrossEntropyGrad(logits []float64, mask []bool, target []float64) (float64, []float64) {
	p := MaskedSoftmax(logits, mask)
	grad := make([]float64, len(logits))
	loss := 0.0
	for i, m := range mask {
		if !m {
			continue
		}
		if target[i] > 0 {
			loss -= target[i] * math.Log(math.Max(p[i], 1e-12))
		}
		grad[i] = p[i] - target[i]
	}
	return loss, grad
}
