package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"oarsmt/internal/tensor"
)

func randTensor(r *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	return x
}

func numGrad(f func() float64, x *tensor.Tensor) *tensor.Tensor {
	const eps = 1e-5
	g := tensor.New(x.Shape...)
	for i := range x.Data {
		old := x.Data[i]
		x.Data[i] = old + eps
		hi := f()
		x.Data[i] = old - eps
		lo := f()
		x.Data[i] = old
		g.Data[i] = (hi - lo) / (2 * eps)
	}
	return g
}

func maxDiff(a, b *tensor.Tensor) float64 {
	m := 0.0
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Errorf("Sigmoid(0) = %v", Sigmoid(0))
	}
	if s := Sigmoid(100); s <= 0.999 || s > 1 {
		t.Errorf("Sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s >= 0.001 || s < 0 {
		t.Errorf("Sigmoid(-100) = %v", s)
	}
	// Stability in extreme tails.
	if math.IsNaN(Sigmoid(-1e9)) || math.IsNaN(Sigmoid(1e9)) {
		t.Error("Sigmoid NaN in tails")
	}
}

func TestConv3DLayerGradCheck(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	layer := NewConv3D(r, "c", 2, 3, 3)
	x := randTensor(r, 2, 3, 3, 2)
	mask := randTensor(r, 3, 3, 3, 2)
	loss := func() float64 {
		out := layer.Forward(x)
		s := 0.0
		for i := range out.Data {
			s += out.Data[i] * mask.Data[i]
		}
		return s
	}
	loss() // populate lastX
	gx := layer.Backward(mask)
	if d := maxDiff(gx, numGrad(loss, x)); d > 1e-6 {
		t.Errorf("conv layer gradX diff %v", d)
	}
	// Parameter gradients.
	for _, p := range layer.Params() {
		got := p.G.Clone()
		if d := maxDiff(got, numGrad(loss, p.W)); d > 1e-6 {
			t.Errorf("param %s grad diff %v", p.Name, d)
		}
	}
}

func TestReLU(t *testing.T) {
	l := &ReLU{}
	x := tensor.FromSlice([]float64{-1, 0, 2}, 3)
	out := l.Forward(x)
	if out.Data[0] != 0 || out.Data[1] != 0 || out.Data[2] != 2 {
		t.Errorf("ReLU forward = %v", out.Data)
	}
	g := l.Backward(tensor.FromSlice([]float64{5, 5, 5}, 3))
	if g.Data[0] != 0 || g.Data[2] != 5 {
		t.Errorf("ReLU backward = %v", g.Data)
	}
}

func TestResBlockGradCheck(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	b := NewResBlock(r, "rb", 2, 3)
	x := randTensor(r, 2, 3, 2, 2)
	mask := randTensor(r, 2, 3, 2, 2)
	loss := func() float64 {
		out := b.Forward(x)
		s := 0.0
		for i := range out.Data {
			s += out.Data[i] * mask.Data[i]
		}
		return s
	}
	loss()
	for _, p := range b.Params() {
		p.G.Zero()
	}
	gx := b.Backward(mask)
	if d := maxDiff(gx, numGrad(loss, x)); d > 1e-5 {
		t.Errorf("resblock gradX diff %v", d)
	}
	for _, p := range b.Params() {
		if d := maxDiff(p.G, numGrad(loss, p.W)); d > 1e-5 {
			t.Errorf("resblock %s grad diff %v", p.Name, d)
		}
	}
}

func TestUNetShapes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	u, err := NewUNet3D(r, UNetConfig{InChannels: 7, Base: 4, Depth: 2, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Arbitrary and odd sizes all work (image-in-image-out).
	for _, dims := range [][3]int{{16, 16, 4}, {7, 9, 3}, {5, 5, 1}, {24, 10, 6}, {3, 3, 2}} {
		x := randTensor(r, 7, dims[0], dims[1], dims[2])
		out := u.Forward(x)
		if out.Rank() != 3 || out.Dim(0) != dims[0] || out.Dim(1) != dims[1] || out.Dim(2) != dims[2] {
			t.Errorf("dims %v -> out shape %v", dims, out.Shape)
		}
	}
}

func TestUNetGradCheck(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	u, err := NewUNet3D(r, UNetConfig{InChannels: 2, Base: 2, Depth: 2, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := randTensor(r, 2, 5, 4, 3)
	mask := randTensor(r, 5, 4, 3)
	loss := func() float64 {
		out := u.Forward(x)
		s := 0.0
		for i := range out.Data {
			s += out.Data[i] * mask.Data[i]
		}
		return s
	}
	loss()
	for _, p := range u.Params() {
		p.G.Zero()
	}
	gx := u.Backward(mask)
	if d := maxDiff(gx, numGrad(loss, x)); d > 1e-5 {
		t.Errorf("unet gradX diff %v", d)
	}
	// Spot-check a few parameters (full check is expensive).
	params := u.Params()
	for _, idx := range []int{0, len(params) / 2, len(params) - 1} {
		p := params[idx]
		if d := maxDiff(p.G, numGrad(loss, p.W)); d > 1e-5 {
			t.Errorf("unet %s grad diff %v", p.Name, d)
		}
	}
}

func TestUNetParamNamesUnique(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	u, _ := NewUNet3D(r, DefaultUNetConfig())
	seen := map[string]bool{}
	for _, p := range u.Params() {
		if seen[p.Name] {
			t.Errorf("duplicate param name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if u.NumParams() == 0 {
		t.Error("no parameters")
	}
}

func TestUNetConfigValidation(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	bad := []UNetConfig{
		{InChannels: 0, Base: 4, Depth: 2, Kernel: 3},
		{InChannels: 7, Base: 0, Depth: 2, Kernel: 3},
		{InChannels: 7, Base: 4, Depth: 0, Kernel: 3},
		{InChannels: 7, Base: 4, Depth: 2, Kernel: 2},
	}
	for i, cfg := range bad {
		if _, err := NewUNet3D(r, cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestBCEWithLogits(t *testing.T) {
	logits := tensor.FromSlice([]float64{0, 0}, 2)
	targets := tensor.FromSlice([]float64{0, 1}, 2)
	loss, grad := BCEWithLogits(logits, targets)
	want := math.Log(2) // both entries: -log(0.5)
	if math.Abs(loss-want) > 1e-12 {
		t.Errorf("loss = %v, want %v", loss, want)
	}
	if math.Abs(grad.Data[0]-0.25) > 1e-12 || math.Abs(grad.Data[1]+0.25) > 1e-12 {
		t.Errorf("grad = %v", grad.Data)
	}
	// Numerical gradient agreement.
	r := rand.New(rand.NewSource(7))
	z := randTensor(r, 3, 2)
	y := tensor.New(3, 2)
	for i := range y.Data {
		y.Data[i] = r.Float64()
	}
	_, g := BCEWithLogits(z, y)
	ng := numGrad(func() float64 { l, _ := BCEWithLogits(z, y); return l }, z)
	if d := maxDiff(g, ng); d > 1e-6 {
		t.Errorf("BCE grad diff %v", d)
	}
	// Stability at extreme logits.
	ext := tensor.FromSlice([]float64{1e4, -1e4}, 2)
	l2, _ := BCEWithLogits(ext, tensor.FromSlice([]float64{1, 0}, 2))
	if math.IsNaN(l2) || math.IsInf(l2, 0) {
		t.Error("BCE unstable at extreme logits")
	}
}

func TestMaskedSoftmax(t *testing.T) {
	logits := []float64{1, 2, 3, 1000}
	mask := []bool{true, true, true, false}
	p := MaskedSoftmax(logits, mask)
	if p[3] != 0 {
		t.Error("masked entry should be 0")
	}
	sum := p[0] + p[1] + p[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Error("softmax ordering wrong")
	}
	// All masked out: zero vector.
	z := MaskedSoftmax([]float64{1, 2}, []bool{false, false})
	if z[0] != 0 || z[1] != 0 {
		t.Error("fully masked softmax should be zero")
	}
}

func TestCrossEntropyGrad(t *testing.T) {
	logits := []float64{0.3, -0.2, 1.4}
	mask := []bool{true, true, true}
	target := []float64{0.2, 0.3, 0.5}
	_, grad := CrossEntropyGrad(logits, mask, target)
	// Numerical check.
	for i := range logits {
		const eps = 1e-6
		l2 := append([]float64(nil), logits...)
		l2[i] += eps
		hi, _ := CrossEntropyGrad(l2, mask, target)
		l2[i] -= 2 * eps
		lo, _ := CrossEntropyGrad(l2, mask, target)
		ng := (hi - lo) / (2 * eps)
		if math.Abs(grad[i]-ng) > 1e-5 {
			t.Errorf("CE grad[%d] = %v, numeric %v", i, grad[i], ng)
		}
	}
	// Gradient sums to zero over a full-support softmax with prob target.
	s := grad[0] + grad[1] + grad[2]
	if math.Abs(s) > 1e-9 {
		t.Errorf("CE grad sum = %v", s)
	}
}

func TestAdamDecreasesQuadratic(t *testing.T) {
	// Minimise ||w - 3||^2 elementwise.
	p := newParam("w", tensor.FromSlice([]float64{0, 10, -5}, 3))
	opt := NewAdam([]*Param{p}, 0.1)
	lossAt := func() float64 {
		s := 0.0
		for _, w := range p.W.Data {
			s += (w - 3) * (w - 3)
		}
		return s
	}
	start := lossAt()
	for it := 0; it < 500; it++ {
		for j, w := range p.W.Data {
			p.G.Data[j] = 2 * (w - 3)
		}
		opt.Step()
	}
	if end := lossAt(); end > start/100 {
		t.Errorf("Adam failed to optimise: %v -> %v", start, end)
	}
	for _, g := range p.G.Data {
		if g != 0 {
			t.Error("Step should zero gradients")
		}
	}
}

func TestAdamFirstStepHandComputed(t *testing.T) {
	// One Adam step from zero state with gradient g has bias-corrected
	// m̂ = g and v̂ = g², so the update is -lr * g / (|g| + eps) ≈ -lr*sign(g).
	p := newParam("w", tensor.FromSlice([]float64{1, -2}, 2))
	opt := NewAdam([]*Param{p}, 0.5)
	p.G.Data[0], p.G.Data[1] = 0.3, -4.0
	opt.Step()
	want0 := 1.0 - 0.5*0.3/(0.3+1e-8)
	want1 := -2.0 + 0.5*4.0/(4.0+1e-8)
	if math.Abs(p.W.Data[0]-want0) > 1e-9 || math.Abs(p.W.Data[1]-want1) > 1e-9 {
		t.Errorf("after first step w = %v, want [%v %v]", p.W.Data, want0, want1)
	}
}

func TestAdamWeightDecay(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float64{10}, 1))
	opt := NewAdam([]*Param{p}, 0.1)
	opt.WeightDecay = 0.01
	// Zero gradient: only the decoupled decay moves the weight.
	opt.Step()
	want := 10 * (1 - 0.1*0.01)
	if math.Abs(p.W.Data[0]-want) > 1e-9 {
		t.Errorf("decayed w = %v, want %v", p.W.Data[0], want)
	}
}

func TestGradAccumulationAcrossSamples(t *testing.T) {
	// Two Backward calls before Step must accumulate (the batch-training
	// contract of the pipeline).
	r := rand.New(rand.NewSource(20))
	layer := NewConv3D(r, "c", 1, 1, 3)
	x := randTensor(r, 1, 2, 2, 2)
	g := randTensor(r, 1, 2, 2, 2)
	layer.Forward(x)
	layer.Backward(g)
	once := layer.Params()[0].G.Clone()
	layer.Forward(x)
	layer.Backward(g)
	twice := layer.Params()[0].G
	for i := range twice.Data {
		if math.Abs(twice.Data[i]-2*once.Data[i]) > 1e-9 {
			t.Fatal("gradients must accumulate across Backward calls")
		}
	}
}

func TestSGDMomentumDecreasesQuadratic(t *testing.T) {
	p := newParam("w", tensor.FromSlice([]float64{8}, 1))
	opt := NewSGD([]*Param{p}, 0.05, 0.9)
	for it := 0; it < 200; it++ {
		p.G.Data[0] = 2 * (p.W.Data[0] - 1)
		opt.Step()
	}
	if math.Abs(p.W.Data[0]-1) > 0.1 {
		t.Errorf("SGD final w = %v, want ~1", p.W.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", tensor.New(2))
	p.G.Data[0], p.G.Data[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*Param{p}, 1)
	if norm != 5 {
		t.Errorf("pre-clip norm = %v", norm)
	}
	if math.Abs(p.G.Data[0]-0.6) > 1e-12 || math.Abs(p.G.Data[1]-0.8) > 1e-12 {
		t.Errorf("clipped grads = %v", p.G.Data)
	}
	// Below threshold: untouched.
	p.G.Data[0], p.G.Data[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.G.Data[0] != 0.3 {
		t.Error("under-norm grads should be untouched")
	}
}

func TestUNetOverfitsTinySample(t *testing.T) {
	// End-to-end sanity: the network + BCE + Adam can memorise one sample.
	r := rand.New(rand.NewSource(8))
	u, err := NewUNet3D(r, UNetConfig{InChannels: 3, Base: 4, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := randTensor(r, 3, 6, 6, 2)
	y := tensor.New(6, 6, 2)
	y.Set(1, 2, 3, 0)
	y.Set(1, 4, 1, 1)
	opt := NewAdam(u.Params(), 0.01)
	var first, last float64
	for it := 0; it < 60; it++ {
		out := u.Forward(x)
		loss, grad := BCEWithLogits(out, y)
		if it == 0 {
			first = loss
		}
		last = loss
		u.Backward(grad)
		opt.Step()
	}
	if last > first/4 {
		t.Errorf("overfit failed: loss %v -> %v", first, last)
	}
}

func TestValueNetForwardBackward(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	vn := NewValueNet(r, 2, 3)
	x := randTensor(r, 2, 4, 4, 2)
	_ = vn.Forward(x)
	gx := vn.Backward(1)
	if !gx.SameShape(x) {
		t.Fatalf("value gradX shape %v", gx.Shape)
	}
	// Gradient check wrt input.
	for _, p := range vn.Params() {
		p.G.Zero()
	}
	loss := func() float64 { return vn.Forward(x) }
	loss()
	gx = vn.Backward(1)
	if d := maxDiff(gx, numGrad(loss, x)); d > 1e-5 {
		t.Errorf("value gradX diff %v", d)
	}
}

func TestValueNetTrainsToTarget(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	vn := NewValueNet(r, 1, 2)
	x := randTensor(r, 1, 4, 4, 1)
	opt := NewAdam(vn.Params(), 0.02)
	const target = 0.7
	var out float64
	for it := 0; it < 120; it++ {
		out = vn.Forward(x)
		vn.Backward(2 * (out - target))
		opt.Step()
	}
	if math.Abs(out-target) > 0.05 {
		t.Errorf("value net output %v, want ~%v", out, target)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	u, _ := NewUNet3D(r, UNetConfig{InChannels: 3, Base: 2, Depth: 2, Kernel: 3})
	x := randTensor(r, 3, 6, 5, 3)
	want := u.Forward(x)

	var buf bytes.Buffer
	if err := u.Save(&buf); err != nil {
		t.Fatal(err)
	}
	u2, err := LoadUNet3D(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := u2.Forward(x)
	if d := maxDiff(got, want); d > 1e-12 {
		t.Errorf("loaded model output differs by %v", d)
	}
	if u2.Config != u.Config {
		t.Error("config lost in round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadUNet3D(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage model should fail to load")
	}
}
