package nn

import (
	"math/rand"
	"testing"

	"oarsmt/internal/parallel"
	"oarsmt/internal/tensor"
)

func randT(r *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	return x
}

func TestGroupNormBitEqualAcrossWorkerCounts(t *testing.T) {
	prevWork := parallel.SetMinShardWork(1)
	prevW := parallel.Workers()
	defer func() {
		parallel.SetMinShardWork(prevWork)
		parallel.SetWorkers(prevW)
	}()

	r := rand.New(rand.NewSource(3))
	x := randT(r, 8, 6, 5, 3)
	gradOut := randT(r, 8, 6, 5, 3)

	run := func(workers int) (*tensor.Tensor, *tensor.Tensor, []float64, []float64) {
		parallel.SetWorkers(workers)
		gn := NewGroupNorm("t", 8, 4)
		for i := range gn.gamma.W.Data {
			gn.gamma.W.Data[i] = 1 + 0.1*float64(i)
			gn.beta.W.Data[i] = 0.05 * float64(i)
		}
		out := gn.Forward(x)
		gx := gn.Backward(gradOut)
		return out, gx, gn.gamma.G.Data, gn.beta.G.Data
	}

	refOut, refGx, refGG, refBG := run(1)
	for _, w := range []int{2, 3, 8} {
		out, gx, gg, bg := run(w)
		for i := range refOut.Data {
			if out.Data[i] != refOut.Data[i] {
				t.Fatalf("workers=%d: forward[%d] differs", w, i)
			}
		}
		for i := range refGx.Data {
			if gx.Data[i] != refGx.Data[i] {
				t.Fatalf("workers=%d: gradX[%d] differs", w, i)
			}
		}
		for i := range refGG {
			if gg[i] != refGG[i] || bg[i] != refBG[i] {
				t.Fatalf("workers=%d: param grads differ at %d", w, i)
			}
		}
	}
}

func TestBCEWithLogitsBitEqualAcrossWorkerCounts(t *testing.T) {
	prevW := parallel.Workers()
	defer parallel.SetWorkers(prevW)

	r := rand.New(rand.NewSource(4))
	// Larger than one SumChunks chunk so the reduction really splits.
	logits := randT(r, 3, 40, 40, 7)
	targets := tensor.New(logits.Shape...)
	for i := range targets.Data {
		targets.Data[i] = r.Float64()
	}

	parallel.SetWorkers(1)
	refLoss, refGrad := BCEWithLogits(logits, targets)
	for _, w := range []int{2, 3, 8} {
		parallel.SetWorkers(w)
		loss, grad := BCEWithLogits(logits, targets)
		if loss != refLoss {
			t.Fatalf("workers=%d: loss %v != serial %v", w, loss, refLoss)
		}
		for i := range refGrad.Data {
			if grad.Data[i] != refGrad.Data[i] {
				t.Fatalf("workers=%d: grad[%d] differs", w, i)
			}
		}
	}
}
