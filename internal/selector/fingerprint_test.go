package selector

import (
	"bytes"
	"math/rand"
	"testing"

	"oarsmt/internal/nn"
)

func fpSelector(t *testing.T, seed int64) *Selector {
	t.Helper()
	s, err := NewRandom(rand.New(rand.NewSource(seed)),
		nn.UNetConfig{InChannels: NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFingerprintIdentifiesWeights pins the properties the route store
// depends on: the fingerprint is a pure function of the weights (same seed
// twice, and a gob round trip, fingerprint identically), and any weight
// change — a retrained model — changes it.
func TestFingerprintIdentifiesWeights(t *testing.T) {
	a, b := fpSelector(t, 1), fpSelector(t, 1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical weights produced different fingerprints")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint is not deterministic across calls")
	}
	if a.Fingerprint() == fpSelector(t, 2).Fingerprint() {
		t.Fatal("different weights produced the same fingerprint")
	}

	// Save/Load round trip (a daemon restart loading the model file).
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint changed across a save/load round trip")
	}

	// A single-weight nudge — the smallest possible retrain — must change it.
	mutated := fpSelector(t, 1)
	mutated.Net.Params()[0].W.Data[0] += 1e-9
	if mutated.Fingerprint() == a.Fingerprint() {
		t.Fatal("weight change did not change the fingerprint")
	}
}

// TestFingerprintUnchangedByFloat32Mode: float32 inference storage is
// derived state of the same weights, so it must not look like a retrain to
// the route store.
func TestFingerprintUnchangedByFloat32Mode(t *testing.T) {
	a := fpSelector(t, 3)
	before := a.Fingerprint()
	a.EnableFloat32()
	if a.Fingerprint() != before {
		t.Fatal("EnableFloat32 changed the fingerprint")
	}
}
