// Package selector implements the Steiner-point selector of the paper: the
// 7-channel Hanan-graph feature encoding (Fig 3) and the arbitrary-size
// 3-D residual U-Net agent (Fig 4) whose single inference yields the final
// selected probability (fsp) of every vertex. It also exposes the
// sequential softmax-policy view of the same network that the AlphaGo-like
// and PPO baseline routers use (paper §4.2).
package selector

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"oarsmt/internal/errs"
	"oarsmt/internal/grid"
	"oarsmt/internal/nn"
	"oarsmt/internal/tensor"
)

// NumFeatures is the number of input feature planes of the encoding:
// pin, obstacle, right/left/up/down edge cost, via cost (paper Fig 3).
const NumFeatures = 7

// Selector wraps the U-Net agent. A selector is single-goroutine: its
// network caches activations (and, via the attached tensor.Arena, reuses
// their storage) between calls. Parallel episode loops give every worker
// its own Clone.
type Selector struct {
	Net *nn.UNet3D

	// useF32 switches inference to the float32 storage mode
	// (EnableFloat32); training entry points keep using Net directly and
	// stay float64.
	useF32 bool
	// encBuf/encBuf32 are the reused feature-volume buffers; separate
	// from the arena because Net.Forward resets the arena at entry, which
	// must not recycle its own input.
	encBuf   []float64
	encBuf32 []float32
}

// newSelector wraps a network and attaches a fresh activation arena: one
// warmed-up inference performs near-zero heap allocations.
func newSelector(net *nn.UNet3D) *Selector {
	net.SetArena(tensor.NewArena())
	return &Selector{Net: net}
}

// New wraps an existing network, attaching an activation arena to it: the
// network's Forward outputs become valid only until its next forward
// pass. Training through Net remains correct — every backward completes
// before the next forward — but callers keeping raw Net.Forward outputs
// across passes must copy them.
func New(net *nn.UNet3D) *Selector { return newSelector(net) }

// NewRandom creates a selector with freshly initialised weights.
func NewRandom(r *rand.Rand, cfg nn.UNetConfig) (*Selector, error) {
	if cfg.InChannels != NumFeatures {
		return nil, fmt.Errorf("%w: selector: config wants %d input channels, encoding has %d",
			errs.ErrInvalidModel, cfg.InChannels, NumFeatures)
	}
	net, err := nn.NewUNet3D(r, cfg)
	if err != nil {
		return nil, err
	}
	return newSelector(net), nil
}

// EnableFloat32 switches this selector's inference to float32 storage:
// all weights are converted once, and Logits/FSP/PolicySoftmax run the
// float32 forward pass (about half the memory traffic). Results differ
// from float64 in the last bits — validated against float64 within
// tolerance by the package tests — so routing outcomes may differ on
// near-ties; the float64 path stays the deterministic reference. Enable
// only on frozen inference selectors: training a float32-enabled selector
// leaves the converted weights stale.
func (s *Selector) EnableFloat32() {
	s.Net.Precompute32()
	s.useF32 = true
}

// Float32Enabled reports whether the float32 inference mode is active.
func (s *Selector) Float32Enabled() bool { return s.useF32 }

// Encode builds the [7, H, V, M] feature volume of a state: the layout's
// grid graph with the given pins, where previously selected Steiner points
// are passed as additional pins (paper §3.4 treats them as normal pins).
// The five cost features are normalised by the maximum cost in the layout
// so each lies in (0, 1]; absent neighbours (grid border) encode cost 0.
func Encode(g *grid.Graph, pins []grid.VertexID) *tensor.Tensor {
	x := tensor.New(NumFeatures, g.H, g.V, g.M)
	encodeInto(x.Data, g, pins)
	return x
}

// encodeInto fills an already-zeroed feature buffer of length
// NumFeatures*H*V*M with the Encode features.
func encodeInto(data []float64, g *grid.Graph, pins []grid.VertexID) {
	plane := g.H * g.V * g.M
	norm := g.MaxEdgeCost()
	if norm <= 0 {
		norm = 1
	}

	for _, p := range pins {
		data[0*plane+int(p)] = 1
	}
	viaFeat := g.ViaCost / norm
	scaleAt := func(s []float64, m int) float64 {
		if s == nil {
			return 1
		}
		return s[m]
	}
	idx := 0
	for h := 0; h < g.H; h++ {
		var right, left float64
		if h < g.H-1 {
			right = g.DX[h] / norm
		}
		if h > 0 {
			left = g.DX[h-1] / norm
		}
		for v := 0; v < g.V; v++ {
			var up, down float64
			if v < g.V-1 {
				up = g.DY[v] / norm
			}
			if v > 0 {
				down = g.DY[v-1] / norm
			}
			for m := 0; m < g.M; m++ {
				hs, vs := scaleAt(g.HScale, m), scaleAt(g.VScale, m)
				if g.Blocked(grid.VertexID(idx)) {
					data[1*plane+idx] = 1
				}
				data[2*plane+idx] = right * hs
				data[3*plane+idx] = left * hs
				data[4*plane+idx] = up * vs
				data[5*plane+idx] = down * vs
				data[6*plane+idx] = viaFeat
				idx++
			}
		}
	}
}

// encode builds the feature volume into the selector's persistent scratch
// buffer. The returned tensor aliases s.encBuf and is valid until the next
// encode call.
func (s *Selector) encode(g *grid.Graph, pins []grid.VertexID) *tensor.Tensor {
	n := NumFeatures * g.H * g.V * g.M
	if cap(s.encBuf) < n {
		s.encBuf = make([]float64, n)
	}
	buf := s.encBuf[:n]
	clear(buf)
	s.encBuf = buf
	encodeInto(buf, g, pins)
	return tensor.FromSlice(buf, NumFeatures, g.H, g.V, g.M)
}

// logits runs one inference and returns the network's raw logits buffer,
// valid until the selector's next forward pass. The float32 mode converts
// the result back to float64 so every consumer sees one element type.
func (s *Selector) logits(g *grid.Graph, pins []grid.VertexID) []float64 {
	x := s.encode(g, pins)
	if !s.useF32 {
		return s.Net.Forward(x).Data
	}
	if cap(s.encBuf32) < x.Len() {
		s.encBuf32 = make([]float32, x.Len())
	}
	x32 := s.encBuf32[:x.Len()]
	s.encBuf32 = x32
	for i, v := range x.Data {
		x32[i] = float32(v)
	}
	out32 := s.Net.Forward32(&tensor.T32{Shape: x.Shape, Data: x32})
	// Reuse the float64 encode buffer for the widened logits: the forward
	// pass is done with its input.
	out := s.encBuf[:len(out32.Data)]
	for i, v := range out32.Data {
		out[i] = float64(v)
	}
	return out
}

// Logits runs one network inference and returns the raw per-vertex logits
// as a flat slice indexed by VertexID. The caller owns the returned slice.
func (s *Selector) Logits(g *grid.Graph, pins []grid.VertexID) []float64 {
	raw := s.logits(g, pins)
	out := make([]float64, len(raw))
	copy(out, raw)
	return out
}

// FSP runs one network inference and returns the final selected
// probability of every vertex (sigmoid of the logits), indexed by
// VertexID. This is the fsp(v) of paper Fig 5.
func (s *Selector) FSP(g *grid.Graph, pins []grid.VertexID) []float64 {
	logits := s.logits(g, pins)
	out := make([]float64, len(logits))
	for i, z := range logits {
		out[i] = nn.Sigmoid(z)
	}
	return out
}

// ValidMask returns, for each vertex, whether it may host a Steiner point:
// not blocked, not an existing pin (paper §3.4's validity rule without the
// priority constraint, which is state-dependent), and reachable from the
// pins. The reachability condition matters on obstacle-heavy layouts:
// obstacles can seal off pockets of free vertices, and a Steiner point
// inside a pocket could never join the routing tree.
func ValidMask(g *grid.Graph, pins []grid.VertexID) []bool {
	mask := make([]bool, g.NumVertices())
	if len(pins) == 0 {
		for i := range mask {
			mask[i] = !g.Blocked(grid.VertexID(i))
		}
		return mask
	}
	// BFS over free vertices from the first pin; pins are assumed to be
	// mutually routable (the routers verify this before selection).
	if g.Blocked(pins[0]) {
		return mask
	}
	queue := []grid.VertexID{pins[0]}
	mask[pins[0]] = true
	var buf []grid.Neighbor
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		buf = g.Neighbors(v, buf[:0])
		for _, nb := range buf {
			if !mask[nb.ID] {
				mask[nb.ID] = true
				queue = append(queue, nb.ID)
			}
		}
	}
	for _, p := range pins {
		mask[p] = false
	}
	return mask
}

// TopK returns the k valid vertices with the highest scores, in descending
// score order with ties broken on smaller VertexID. Fewer than k vertices
// are returned when fewer are valid.
func TopK(scores []float64, mask []bool, k int) []grid.VertexID {
	type cand struct {
		id    grid.VertexID
		score float64
	}
	cands := make([]cand, 0, len(scores))
	for i, sc := range scores {
		if mask[i] {
			cands = append(cands, cand{grid.VertexID(i), sc})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	if k < 0 {
		k = 0
	}
	out := make([]grid.VertexID, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// SelectSteinerPoints performs the paper's one-inference selection (§3.1):
// run the network once and return the valid vertices with the top n-2
// highest probabilities, where n is the pin count.
func (s *Selector) SelectSteinerPoints(g *grid.Graph, pins []grid.VertexID) []grid.VertexID {
	k := len(pins) - 2
	if k <= 0 {
		return nil
	}
	fsp := s.FSP(g, pins)
	return TopK(fsp, ValidMask(g, pins), k)
}

// PolicySoftmax returns the sequential next-Steiner-point policy used by
// the AlphaGo-like and PPO baselines: a masked softmax of the logits over
// the valid vertices.
func (s *Selector) PolicySoftmax(g *grid.Graph, pins []grid.VertexID) []float64 {
	logits := s.logits(g, pins)
	return nn.MaskedSoftmax(logits, ValidMask(g, pins))
}

// Fingerprint returns the SHA-256 over the network's weights in canonical
// Params() order: for each parameter, its name, shape and float64 weight
// bits. Two selectors fingerprint equal exactly when every weight is
// bit-identical, and the Params() order is itself deterministic (it
// follows the network's layer structure), so the fingerprint is stable
// across processes and save/load round trips. The persistent route store
// versions its records by this hash, so loading a retrained model cleanly
// invalidates every stale route. The float32 inference mode does not
// change the fingerprint: it is derived state of the same weights.
func (s *Selector) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte("oarsmt-selector-fp-v1"))
	var buf [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, p := range s.Net.Params() {
		h.Write([]byte(p.Name))
		putU64(uint64(len(p.W.Shape)))
		for _, d := range p.W.Shape {
			putU64(uint64(d))
		}
		for _, v := range p.W.Data {
			putU64(math.Float64bits(v))
		}
	}
	var fp [sha256.Size]byte
	h.Sum(fp[:0])
	return fp
}

// Save writes the selector's network to w.
func (s *Selector) Save(w io.Writer) error { return s.Net.Save(w) }

// Clone returns a private deep copy of the selector via its serialised
// form. Network instances cache activations between Forward and Backward
// and must never be shared across goroutines; the parallel episode loops
// give every worker its own clone. Weights survive the gob round trip
// bit-exactly, so a clone's inferences are identical to the original's.
// The float32 inference mode is not part of the serialised form: clones
// (and reloaded models) start in float64 mode and need their own
// EnableFloat32 call.
func (s *Selector) Clone() (*Selector, error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return nil, err
	}
	return Load(&buf)
}

// Load reads a selector saved with Save. Any invalid model file —
// truncated, corrupt, wrong version, wrong channel count — yields an
// error matching errs.ErrInvalidModel.
func Load(r io.Reader) (*Selector, error) {
	net, err := nn.LoadUNet3D(r)
	if err != nil {
		return nil, err
	}
	if net.Config.InChannels != NumFeatures {
		return nil, fmt.Errorf("%w: model has %d input channels, selector encoding has %d",
			errs.ErrInvalidModel, net.Config.InChannels, NumFeatures)
	}
	return newSelector(net), nil
}
