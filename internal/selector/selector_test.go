package selector

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/nn"
)

func tinySelector(t *testing.T) *Selector {
	t.Helper()
	s, err := NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncodeChannels(t *testing.T) {
	g := grid.MustNew(3, 3, 2, []float64{10, 20}, []float64{30, 40}, 5)
	g.Block(g.Index(2, 2, 1))
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(1, 2, 1)}
	x := Encode(g, pins)
	if x.Dim(0) != NumFeatures || x.Dim(1) != 3 || x.Dim(2) != 3 || x.Dim(3) != 2 {
		t.Fatalf("encoded shape %v", x.Shape)
	}
	// Pin plane.
	if x.At(0, 0, 0, 0) != 1 || x.At(0, 1, 2, 1) != 1 {
		t.Error("pin plane missing pins")
	}
	if x.At(0, 1, 1, 0) != 0 {
		t.Error("pin plane has spurious entries")
	}
	// Obstacle plane.
	if x.At(1, 2, 2, 1) != 1 || x.At(1, 0, 0, 0) != 0 {
		t.Error("obstacle plane wrong")
	}
	// Cost planes normalised by max cost (40).
	if got := x.At(2, 0, 1, 0); got != 10.0/40 {
		t.Errorf("right cost at h=0 = %v, want 0.25", got)
	}
	if got := x.At(3, 0, 1, 0); got != 0 {
		t.Errorf("left cost at border = %v, want 0", got)
	}
	if got := x.At(3, 1, 1, 0); got != 10.0/40 {
		t.Errorf("left cost at h=1 = %v", got)
	}
	if got := x.At(4, 1, 0, 0); got != 30.0/40 {
		t.Errorf("up cost at v=0 = %v", got)
	}
	if got := x.At(5, 1, 0, 0); got != 0 {
		t.Errorf("down cost at v=0 border = %v", got)
	}
	// Via plane uniform.
	if got := x.At(6, 1, 1, 1); got != 5.0/40 {
		t.Errorf("via feature = %v", got)
	}
}

func TestEncodeCostRangeNormalised(t *testing.T) {
	g := grid.MustNew(4, 4, 1, []float64{1, 1000, 3}, []float64{7, 7, 7}, 4)
	x := Encode(g, []grid.VertexID{0})
	maxc := 0.0
	for i := g.NumVertices() * 2; i < x.Len(); i++ { // cost planes only
		if x.Data[i] > maxc {
			maxc = x.Data[i]
		}
		if x.Data[i] < 0 || x.Data[i] > 1 {
			t.Fatalf("cost feature %v outside [0,1]", x.Data[i])
		}
	}
	if maxc != 1 {
		t.Errorf("max normalised cost = %v, want 1", maxc)
	}
}

func TestEncodeLayerScaledCosts(t *testing.T) {
	g := grid.MustNew(3, 3, 2, []float64{2, 2}, []float64{2, 2}, 4)
	if err := g.SetLayerScales([]float64{1, 2}, []float64{2, 1}); err != nil {
		t.Fatal(err)
	}
	x := Encode(g, []grid.VertexID{0})
	// Max cost = max(2*2, 4) = 4.
	// Layer 0: right cost 2*1/4 = 0.5; up cost 2*2/4 = 1.
	if got := x.At(2, 1, 1, 0); got != 0.5 {
		t.Errorf("layer-0 right = %v, want 0.5", got)
	}
	if got := x.At(4, 1, 1, 0); got != 1.0 {
		t.Errorf("layer-0 up = %v, want 1", got)
	}
	// Layer 1: right 2*2/4 = 1; up 2*1/4 = 0.5.
	if got := x.At(2, 1, 1, 1); got != 1.0 {
		t.Errorf("layer-1 right = %v, want 1", got)
	}
	if got := x.At(4, 1, 1, 1); got != 0.5 {
		t.Errorf("layer-1 up = %v, want 0.5", got)
	}
}

func TestFSPRangeAndShape(t *testing.T) {
	s := tinySelector(t)
	g, _ := grid.NewUniform(6, 5, 3, 2)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(5, 4, 2), g.Index(3, 2, 1)}
	fsp := s.FSP(g, pins)
	if len(fsp) != g.NumVertices() {
		t.Fatalf("fsp length %d, want %d", len(fsp), g.NumVertices())
	}
	for i, p := range fsp {
		if p <= 0 || p >= 1 {
			t.Fatalf("fsp[%d] = %v outside (0,1)", i, p)
		}
	}
}

func TestArbitrarySizeInference(t *testing.T) {
	s := tinySelector(t)
	for _, dims := range [][3]int{{4, 4, 1}, {9, 5, 3}, {16, 16, 4}, {7, 13, 2}} {
		g, _ := grid.NewUniform(dims[0], dims[1], dims[2], 3)
		fsp := s.FSP(g, []grid.VertexID{0, grid.VertexID(g.NumVertices() - 1)})
		if len(fsp) != g.NumVertices() {
			t.Errorf("dims %v: fsp length %d", dims, len(fsp))
		}
	}
}

func TestValidMaskExcludesSealedPockets(t *testing.T) {
	// A free pocket at (0,0) walled off by obstacles must be invalid: a
	// Steiner point there could never join the routing tree. This is the
	// regression test for the mid-training unreachable-terminal panic.
	g, _ := grid.NewUniform(4, 4, 1, 1)
	g.Block(g.Index(1, 0, 0))
	g.Block(g.Index(0, 1, 0))
	g.Block(g.Index(1, 1, 0))
	pins := []grid.VertexID{g.Index(3, 3, 0), g.Index(2, 0, 0)}
	mask := ValidMask(g, pins)
	if mask[g.Index(0, 0, 0)] {
		t.Error("sealed pocket vertex should be invalid")
	}
	if !mask[g.Index(2, 2, 0)] {
		t.Error("reachable free vertex should be valid")
	}
	// No pins: reachability cannot be anchored; fall back to free-only.
	if m := ValidMask(g, nil); !m[g.Index(0, 0, 0)] {
		t.Error("pinless mask should only exclude blocked vertices")
	}
}

func TestValidMask(t *testing.T) {
	g, _ := grid.NewUniform(3, 3, 1, 1)
	g.Block(g.Index(1, 1, 0))
	pins := []grid.VertexID{g.Index(0, 0, 0)}
	mask := ValidMask(g, pins)
	if mask[g.Index(0, 0, 0)] {
		t.Error("pin should be invalid")
	}
	if mask[g.Index(1, 1, 0)] {
		t.Error("blocked vertex should be invalid")
	}
	if !mask[g.Index(2, 2, 0)] {
		t.Error("free vertex should be valid")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.3}
	mask := []bool{true, true, true, true, false}
	got := TopK(scores, mask, 3)
	want := []grid.VertexID{1, 3, 2} // ties break on smaller ID
	if len(got) != 3 {
		t.Fatalf("TopK returned %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopK[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// k larger than valid count.
	if got := TopK(scores, mask, 10); len(got) != 4 {
		t.Errorf("oversized k returned %d", len(got))
	}
	if got := TopK(scores, mask, 0); len(got) != 0 {
		t.Error("k=0 should return empty")
	}
}

func TestSelectSteinerPoints(t *testing.T) {
	s := tinySelector(t)
	g, _ := grid.NewUniform(5, 5, 2, 2)
	pins := []grid.VertexID{
		g.Index(0, 0, 0), g.Index(4, 4, 0), g.Index(0, 4, 1), g.Index(4, 0, 1), g.Index(2, 0, 0),
	}
	sps := s.SelectSteinerPoints(g, pins)
	if len(sps) != len(pins)-2 {
		t.Fatalf("selected %d points, want %d", len(sps), len(pins)-2)
	}
	pinSet := map[grid.VertexID]bool{}
	for _, p := range pins {
		pinSet[p] = true
	}
	seen := map[grid.VertexID]bool{}
	for _, sp := range sps {
		if pinSet[sp] {
			t.Error("Steiner point coincides with a pin")
		}
		if g.Blocked(sp) {
			t.Error("Steiner point on obstacle")
		}
		if seen[sp] {
			t.Error("duplicate Steiner point")
		}
		seen[sp] = true
	}
	// Two pins: no Steiner points.
	if got := s.SelectSteinerPoints(g, pins[:2]); len(got) != 0 {
		t.Errorf("2-pin selection returned %d points", len(got))
	}
}

func TestPolicySoftmaxSumsToOne(t *testing.T) {
	s := tinySelector(t)
	g, _ := grid.NewUniform(4, 4, 2, 2)
	g.Block(g.Index(1, 1, 0))
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(3, 3, 1)}
	p := s.PolicySoftmax(g, pins)
	sum := 0.0
	for i, v := range p {
		if v < 0 {
			t.Fatalf("negative probability at %d", i)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("policy sums to %v", sum)
	}
	if p[g.Index(1, 1, 0)] != 0 || p[g.Index(0, 0, 0)] != 0 {
		t.Error("invalid vertices should have zero policy mass")
	}
}

func TestSelectorSaveLoad(t *testing.T) {
	s := tinySelector(t)
	g, _ := grid.NewUniform(5, 4, 2, 2)
	pins := []grid.VertexID{0, 5}
	want := s.FSP(g, pins)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.FSP(g, pins)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatal("loaded selector behaves differently")
		}
	}
}

func TestNewRandomRejectsWrongChannels(t *testing.T) {
	_, err := NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: 3, Base: 2, Depth: 1, Kernel: 3})
	if err == nil {
		t.Error("wrong channel count should be rejected")
	}
}

// TestFloat32LogitsCloseToFloat64 validates the float32 inference mode
// end to end: same network, same state, logits within single-precision
// tolerance of the float64 reference, and FSP/PolicySoftmax stay valid
// distributions.
func TestFloat32LogitsCloseToFloat64(t *testing.T) {
	s := tinySelector(t)
	g := grid.MustNew(6, 5, 2, []float64{1, 2, 3, 4, 5}, []float64{2, 2, 2, 2}, 3)
	g.Block(g.Index(2, 2, 0))
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(5, 4, 1), g.Index(3, 1, 0)}

	ref := s.Logits(g, pins)

	s32, err := s.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if s32.Float32Enabled() {
		t.Fatal("fresh clone reports float32 mode")
	}
	s32.EnableFloat32()
	if !s32.Float32Enabled() {
		t.Fatal("EnableFloat32 did not stick")
	}

	got := s32.Logits(g, pins)
	if len(got) != len(ref) {
		t.Fatalf("f32 logits length %d, want %d", len(got), len(ref))
	}
	for i := range ref {
		scale := math.Max(1, math.Abs(ref[i]))
		if d := math.Abs(got[i] - ref[i]); d > 1e-4*scale {
			t.Fatalf("logit[%d]: f32 %v vs f64 %v (diff %v)", i, got[i], ref[i], d)
		}
	}

	// Repeat on the same selector: the reused buffers must not leak state
	// between calls.
	again := s32.Logits(g, pins)
	for i := range got {
		if again[i] != got[i] {
			t.Fatalf("second f32 inference differs at %d: %v vs %v", i, again[i], got[i])
		}
	}

	fsp := s32.FSP(g, pins)
	for i, p := range fsp {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("f32 fsp[%d] = %v out of [0,1]", i, p)
		}
	}
	pol := s32.PolicySoftmax(g, pins)
	sum := 0.0
	for _, p := range pol {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("f32 policy sums to %v", sum)
	}
}

// TestLogitsCallerOwned pins that Logits returns a private copy: mutating
// it and re-running inference must not corrupt later answers.
func TestLogitsCallerOwned(t *testing.T) {
	s := tinySelector(t)
	g := grid.MustNew(4, 4, 1, []float64{1, 1, 1}, []float64{1, 1, 1}, 2)
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(3, 3, 0)}

	first := s.Logits(g, pins)
	for i := range first {
		first[i] = math.Inf(1)
	}
	second := s.Logits(g, pins)
	for i, v := range second {
		if math.IsInf(v, 1) {
			t.Fatalf("logit[%d] aliases the previously returned slice", i)
		}
	}
}
