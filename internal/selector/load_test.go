package selector

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"oarsmt/internal/errs"
	"oarsmt/internal/nn"
)

func TestLoadInvalidModel(t *testing.T) {
	s := tinySelector(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)

	// Truncated .gob files must surface the sentinel, not a raw decode
	// error or a panic (the bug this guards against).
	for _, cut := range []int{0, 1, len(data) / 3, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:cut])); !errors.Is(err, errs.ErrInvalidModel) {
			t.Errorf("truncated at %d/%d bytes: err = %v, want ErrInvalidModel", cut, len(data), err)
		}
	}
	if _, err := Load(bytes.NewReader([]byte{0x00, 0x01, 0x02})); !errors.Is(err, errs.ErrInvalidModel) {
		t.Errorf("garbage bytes: err = %v, want ErrInvalidModel", err)
	}

	// A structurally valid network with the wrong channel count is not a
	// selector.
	wrong, err := nn.NewUNet3D(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: 3, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := wrong.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); !errors.Is(err, errs.ErrInvalidModel) {
		t.Errorf("wrong channel count: err = %v, want ErrInvalidModel", err)
	}

	// And the happy path still loads.
	if _, err := Load(bytes.NewReader(data)); err != nil {
		t.Errorf("valid model failed to load: %v", err)
	}
}
