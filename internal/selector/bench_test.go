package selector

import (
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/nn"
)

func benchSelector(b *testing.B) *Selector {
	b.Helper()
	s, err := NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: NumFeatures, Base: 6, Depth: 2, Kernel: 3})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchGraph(b *testing.B, h, v, m int) (*grid.Graph, []grid.VertexID) {
	b.Helper()
	g, err := grid.NewUniform(h, v, m, 3)
	if err != nil {
		b.Fatal(err)
	}
	pins := []grid.VertexID{
		g.Index(0, 0, 0),
		g.Index(h-1, v-1, m-1),
		g.Index(h/2, v/2, 0),
		g.Index(h/3, 2*v/3, m/2),
	}
	return g, pins
}

func BenchmarkEncode32x32x4(b *testing.B) {
	g, pins := benchGraph(b, 32, 32, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(g, pins)
	}
}

func BenchmarkInference16x16x4(b *testing.B) {
	s := benchSelector(b)
	g, pins := benchGraph(b, 16, 16, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FSP(g, pins)
	}
}

func BenchmarkInference32x32x4(b *testing.B) {
	s := benchSelector(b)
	g, pins := benchGraph(b, 32, 32, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FSP(g, pins)
	}
}

func BenchmarkInference64x64x4(b *testing.B) {
	s := benchSelector(b)
	g, pins := benchGraph(b, 64, 64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FSP(g, pins)
	}
}

func BenchmarkSelectSteinerPoints(b *testing.B) {
	s := benchSelector(b)
	g, pins := benchGraph(b, 32, 32, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SelectSteinerPoints(g, pins)
	}
}
