package ppo

import (
	"math"
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

func tinySelector(t *testing.T, seed int64) *selector.Selector {
	t.Helper()
	s, err := selector.NewRandom(rand.New(rand.NewSource(seed)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tinyConfig() Config {
	return Config{
		Sizes:          []layout.TrainingSize{{HV: 6, M: 2}},
		LayoutsPerSize: 2,
		MinPins:        4, MaxPins: 4,
		ClipEps:     0.2,
		Epochs:      1,
		EntropyCoef: 0.01,
		LR:          1e-3,
		ValueLR:     1e-3,
		ValueHidden: 2,
		Seed:        1,
	}
}

func TestRolloutShape(t *testing.T) {
	tr := NewTrainer(tinySelector(t, 1), tinyConfig())
	in, err := layout.Random(rand.New(rand.NewSource(2)), layout.RandomSpec{
		H: 6, V: 6, MinM: 2, MaxM: 2, MinPins: 5, MaxPins: 5, MinObstacles: 3, MaxObstacles: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := tr.rollout(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != in.NumPins()-2 {
		t.Fatalf("rollout steps = %d, want n-2 = %d", len(steps), in.NumPins()-2)
	}
	for i, s := range steps {
		if len(s.extraPins) != i {
			t.Errorf("step %d has %d extra pins", i, len(s.extraPins))
		}
		if s.oldProb <= 0 || s.oldProb > 1 {
			t.Errorf("step %d oldProb = %v", i, s.oldProb)
		}
		if in.Graph.Blocked(s.action) {
			t.Errorf("step %d action on obstacle", i)
		}
	}
	// Returns telescope: ret_i = reward_i + ret_{i+1} implies ret_0 is the
	// total cost reduction ratio, which is bounded by 1 in magnitude only
	// loosely; just check monotone consistency.
	for i := 0; i+1 < len(steps); i++ {
		if math.IsNaN(steps[i].ret) {
			t.Fatalf("NaN return at %d", i)
		}
	}
}

func TestReturnsTelescopeToFinalCostReduction(t *testing.T) {
	tr := NewTrainer(tinySelector(t, 3), tinyConfig())
	in, err := layout.Random(rand.New(rand.NewSource(4)), layout.RandomSpec{
		H: 6, V: 6, MinM: 2, MaxM: 2, MinPins: 5, MaxPins: 5, MinObstacles: 2, MaxObstacles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := tr.rollout(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Skip("empty rollout")
	}
	// ret_0 = (rc0 - finalCost)/rc0 by telescoping; recompute directly.
	sum := 0.0
	prev := steps[0].ret
	_ = prev
	for i := range steps {
		var next float64
		if i+1 < len(steps) {
			next = steps[i+1].ret
		}
		sum += steps[i].ret - next
	}
	if math.Abs(sum-steps[0].ret) > 1e-9 {
		t.Errorf("telescoping violated: %v vs %v", sum, steps[0].ret)
	}
}

func TestSampleAction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	policy := []float64{0, 0.5, 0, 0.5}
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		a, p := sampleAction(rng, policy)
		if a != 1 && a != 3 {
			t.Fatalf("sampled invalid action %d", a)
		}
		if p != 0.5 {
			t.Fatalf("returned prob %v", p)
		}
		counts[int(a)]++
	}
	if counts[1] == 0 || counts[3] == 0 {
		t.Error("sampling never chose one of the actions")
	}
	// Degenerate policy.
	if a, _ := sampleAction(rng, []float64{0, 0}); a != -1 {
		t.Errorf("empty policy sampled %d", a)
	}
}

func TestRunStageUpdatesBothNetworks(t *testing.T) {
	sel := tinySelector(t, 6)
	tr := NewTrainer(sel, tinyConfig())
	beforePi := sel.Net.Params()[0].W.Clone()
	beforeV := tr.Value.Params()[0].W.Clone()
	stats, err := tr.RunStage()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Episodes != 2 {
		t.Errorf("episodes = %d", stats.Episodes)
	}
	if stats.Steps == 0 {
		t.Skip("no steps collected")
	}
	changed := func(before, after []float64) bool {
		for i := range after {
			if after[i] != before[i] {
				return true
			}
		}
		return false
	}
	if !changed(beforePi.Data, sel.Net.Params()[0].W.Data) {
		t.Error("policy weights unchanged")
	}
	if !changed(beforeV.Data, tr.Value.Params()[0].W.Data) {
		t.Error("value weights unchanged")
	}
	if tr.Stage() != 1 {
		t.Errorf("stage = %d", tr.Stage())
	}
}

func TestValueLossDecreasesOverStages(t *testing.T) {
	sel := tinySelector(t, 7)
	cfg := tinyConfig()
	cfg.Epochs = 2
	tr := NewTrainer(sel, cfg)
	var first, last float64
	for i := 0; i < 4; i++ {
		stats, err := tr.RunStage()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = stats.ValueLoss
		}
		last = stats.ValueLoss
	}
	// The critic fits a nearly stationary target; it should not blow up.
	if math.IsNaN(last) || last > first*10+1 {
		t.Errorf("value loss diverged: %v -> %v", first, last)
	}
}

func TestUpdateIncreasesAdvantagedActionProbability(t *testing.T) {
	// A single step with positive advantage must make the chosen action
	// more probable after the update — the core PPO direction check.
	sel := tinySelector(t, 20)
	cfg := tinyConfig()
	cfg.EntropyCoef = 0 // isolate the surrogate term
	cfg.Epochs = 1
	tr := NewTrainer(sel, cfg)
	in, err := layout.Random(rand.New(rand.NewSource(21)), layout.RandomSpec{
		H: 6, V: 6, MinM: 1, MaxM: 1, MinPins: 4, MaxPins: 4, MinObstacles: 2, MaxObstacles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	policy := sel.PolicySoftmax(in.Graph, in.Pins)
	var action int
	for i, p := range policy {
		if p > 0 {
			action = i
			break
		}
	}
	before := policy[action]
	st := step{
		instance: in,
		action:   grid.VertexID(action),
		oldProb:  before,
		ret:      1.0, // value 0 => advantage +1
		value:    0,
	}
	for rep := 0; rep < 5; rep++ {
		tr.update([]step{st})
	}
	after := sel.PolicySoftmax(in.Graph, in.Pins)[action]
	if after <= before {
		t.Errorf("P(action) did not increase: %v -> %v", before, after)
	}

	// And a negative advantage pushes it down again — with a fresh
	// optimizer so phase-1 Adam momentum doesn't mask the direction.
	tr2 := NewTrainer(sel, cfg)
	st.ret = -1
	st.oldProb = after
	for rep := 0; rep < 8; rep++ {
		tr2.update([]step{st})
	}
	final := sel.PolicySoftmax(in.Graph, in.Pins)[action]
	if final >= after {
		t.Errorf("P(action) did not decrease: %v -> %v", after, final)
	}
}

func TestClippingZeroesGradient(t *testing.T) {
	// Once the ratio exceeds 1+eps with positive advantage, the surrogate
	// is clipped and the policy must stop moving.
	sel := tinySelector(t, 22)
	cfg := tinyConfig()
	cfg.EntropyCoef = 0
	cfg.Epochs = 1
	tr := NewTrainer(sel, cfg)
	in, err := layout.Random(rand.New(rand.NewSource(23)), layout.RandomSpec{
		H: 5, V: 5, MinM: 1, MaxM: 1, MinPins: 3, MaxPins: 3, MinObstacles: 1, MaxObstacles: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	policy := sel.PolicySoftmax(in.Graph, in.Pins)
	var action int
	for i, p := range policy {
		if p > 0 {
			action = i
			break
		}
	}
	cur := policy[action]
	// oldProb artificially tiny => ratio far above the clip range.
	st := step{instance: in, action: grid.VertexID(action), oldProb: cur / 100, ret: 1, value: 0}
	w0 := sel.Net.Params()[0].W.Clone()
	tr.update([]step{st})
	w1 := sel.Net.Params()[0].W
	for i := range w1.Data {
		if w1.Data[i] != w0.Data[i] {
			t.Fatal("clipped-out step still moved the policy weights")
		}
	}
}

func TestEntropyHelper(t *testing.T) {
	u := []float64{0.25, 0.25, 0.25, 0.25}
	if math.Abs(entropy(u)-math.Log(4)) > 1e-12 {
		t.Errorf("entropy of uniform = %v", entropy(u))
	}
	d := []float64{1, 0, 0}
	if entropy(d) != 0 {
		t.Errorf("entropy of delta = %v", entropy(d))
	}
}

func TestClamp(t *testing.T) {
	if clamp(0.5, 0.8, 1.2) != 0.8 || clamp(2, 0.8, 1.2) != 1.2 || clamp(1, 0.8, 1.2) != 1 {
		t.Error("clamp wrong")
	}
}
