// Package ppo implements the PPO-trained baseline router of the paper's
// §4.2: the same U-Net agent used as a sequential Steiner-point selector,
// trained with Proximal Policy Optimization [21] (clipped surrogate
// objective) in an actor-critic setup whose critic is a separate small
// convolutional value network.
//
// Episodes select one Steiner point at a time from the masked softmax
// policy; the per-step reward is the telescoped routing-cost reduction
// (cost(s_t) − cost(s_{t+1})) / rc_0, so the undiscounted return from any
// state equals the paper's value target (rc_0 − c_final) / rc_0.
package ppo

import (
	"fmt"
	"math"
	"math/rand"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/route"
	"oarsmt/internal/selector"
	"oarsmt/internal/tensor"
)

// Config parameterises PPO training.
type Config struct {
	Sizes            []layout.TrainingSize
	LayoutsPerSize   int // episodes per size per stage
	MinPins, MaxPins int
	// ClipEps is the PPO clipping radius (0.2 in [21]).
	ClipEps float64
	// Epochs is the number of PPO passes over each stage's rollouts.
	Epochs int
	// EntropyCoef weights the entropy bonus that keeps the policy from
	// collapsing early.
	EntropyCoef float64
	// LR and ValueLR are the Adam learning rates of policy and critic.
	LR, ValueLR float64
	// ValueHidden is the critic trunk width.
	ValueHidden int
	Seed        int64
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []layout.TrainingSize{{HV: 8, M: 2}}
	}
	if c.LayoutsPerSize <= 0 {
		c.LayoutsPerSize = 4
	}
	if c.MinPins < 3 {
		c.MinPins = 3
	}
	if c.MaxPins < c.MinPins {
		c.MaxPins = c.MinPins
	}
	if c.ClipEps <= 0 {
		c.ClipEps = 0.2
	}
	if c.Epochs <= 0 {
		c.Epochs = 2
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.ValueLR <= 0 {
		c.ValueLR = 1e-3
	}
	if c.ValueHidden <= 0 {
		c.ValueHidden = 4
	}
	return c
}

// step is one transition of a rollout.
type step struct {
	instance  *layout.Instance
	extraPins []grid.VertexID
	action    grid.VertexID
	oldProb   float64
	ret       float64 // undiscounted return from this step
	value     float64 // critic estimate at collection time
}

// StageStats summarises one PPO stage.
type StageStats struct {
	Stage      int
	Episodes   int
	Steps      int
	MeanReturn float64
	PolicyLoss float64
	ValueLoss  float64
}

// Trainer holds the PPO actor-critic pair.
type Trainer struct {
	Cfg      Config
	Selector *selector.Selector
	Value    *nn.ValueNet

	rng   *rand.Rand
	optPi *nn.Adam
	optV  *nn.Adam
	stage int
}

// NewTrainer creates a PPO trainer over the selector, with a fresh value
// network.
func NewTrainer(sel *selector.Selector, cfg Config) *Trainer {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	vn := nn.NewValueNet(rng, selector.NumFeatures, cfg.ValueHidden)
	return &Trainer{
		Cfg:      cfg,
		Selector: sel,
		Value:    vn,
		rng:      rng,
		optPi:    nn.NewAdam(sel.Net.Params(), cfg.LR),
		optV:     nn.NewAdam(vn.Params(), cfg.ValueLR),
	}
}

// Stage returns the number of completed stages.
func (t *Trainer) Stage() int { return t.stage }

// rollout plays one episode on the instance and returns its steps.
func (t *Trainer) rollout(in *layout.Instance) ([]step, error) {
	router := route.NewRouter(in.Graph)
	base, err := router.OARMST(in.Pins)
	if err != nil {
		return nil, err
	}
	rc0 := base.Cost
	if rc0 <= 0 {
		return nil, fmt.Errorf("ppo: degenerate layout %q", in.Name)
	}

	var steps []step
	var extra []grid.VertexID
	prevCost := rc0
	maxSteps := in.NumPins() - 2
	for i := 0; i < maxSteps; i++ {
		statePins := append(append([]grid.VertexID(nil), in.Pins...), extra...)
		policy := t.Selector.PolicySoftmax(in.Graph, statePins)
		a, p := sampleAction(t.rng, policy)
		if a < 0 {
			break
		}
		v := t.Value.Forward(selector.Encode(in.Graph, statePins))
		terms := append(append([]grid.VertexID(nil), statePins...), a)
		tree, err := router.OARMST(terms)
		if err != nil {
			return nil, err
		}
		reward := (prevCost - tree.Cost) / rc0
		steps = append(steps, step{
			instance:  in,
			extraPins: append([]grid.VertexID(nil), extra...),
			action:    a,
			oldProb:   p,
			ret:       reward, // completed into a return below
			value:     v,
		})
		prevCost = tree.Cost
		extra = append(extra, a)
	}
	// Telescoped returns: ret_i = sum of rewards from i onwards.
	for i := len(steps) - 2; i >= 0; i-- {
		steps[i].ret += steps[i+1].ret
	}
	return steps, nil
}

func sampleAction(rng *rand.Rand, policy []float64) (grid.VertexID, float64) {
	u := rng.Float64()
	acc := 0.0
	lastPos := -1
	for i, p := range policy {
		if p <= 0 {
			continue
		}
		lastPos = i
		acc += p
		if u < acc {
			return grid.VertexID(i), p
		}
	}
	if lastPos < 0 {
		return -1, 0
	}
	// Floating-point shortfall: fall back to the last positive entry.
	return grid.VertexID(lastPos), policy[lastPos]
}

// RunStage collects a batch of rollouts and performs the PPO update.
func (t *Trainer) RunStage() (StageStats, error) {
	stats := StageStats{Stage: t.stage + 1}
	var steps []step
	for _, size := range t.Cfg.Sizes {
		spec := layout.TrainingSpec(size, t.Cfg.MinPins, t.Cfg.MaxPins)
		for i := 0; i < t.Cfg.LayoutsPerSize; i++ {
			in, err := layout.Random(t.rng, spec)
			if err != nil {
				return stats, fmt.Errorf("ppo: stage %d: %w", t.stage+1, err)
			}
			ep, err := t.rollout(in)
			if err != nil {
				return stats, fmt.Errorf("ppo: stage %d: %w", t.stage+1, err)
			}
			stats.Episodes++
			if len(ep) > 0 {
				stats.MeanReturn += ep[0].ret
			}
			steps = append(steps, ep...)
		}
	}
	if stats.Episodes > 0 {
		stats.MeanReturn /= float64(stats.Episodes)
	}
	stats.Steps = len(steps)
	if len(steps) == 0 {
		t.stage++
		stats.Stage = t.stage
		return stats, nil
	}

	pl, vl := t.update(steps)
	stats.PolicyLoss, stats.ValueLoss = pl, vl
	t.stage++
	stats.Stage = t.stage
	return stats, nil
}

// update runs Cfg.Epochs PPO passes over the steps and returns the final
// epoch's mean policy and value losses.
func (t *Trainer) update(steps []step) (policyLoss, valueLoss float64) {
	idxs := make([]int, len(steps))
	for i := range idxs {
		idxs[i] = i
	}
	for epoch := 0; epoch < t.Cfg.Epochs; epoch++ {
		t.rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		policyLoss, valueLoss = 0, 0
		for _, si := range idxs {
			s := steps[si]
			g := s.instance.Graph
			statePins := append(append([]grid.VertexID(nil), s.instance.Pins...), s.extraPins...)
			enc := selector.Encode(g, statePins)

			// Policy update with the clipped surrogate objective.
			logits := t.Selector.Net.Forward(enc)
			mask := selector.ValidMask(g, statePins)
			p := nn.MaskedSoftmax(logits.Data, mask)
			adv := s.ret - s.value
			ratio := 0.0
			if s.oldProb > 0 {
				ratio = p[s.action] / s.oldProb
			}
			clippedOut := (adv > 0 && ratio > 1+t.Cfg.ClipEps) ||
				(adv < 0 && ratio < 1-t.Cfg.ClipEps)
			surr := math.Min(ratio*adv, clamp(ratio, 1-t.Cfg.ClipEps, 1+t.Cfg.ClipEps)*adv)
			policyLoss += -surr

			grad := tensor.New(g.H, g.V, g.M)
			for id := range p {
				var gpi float64
				if !clippedOut {
					// d(ratio·adv)/dz_k = adv · ratio · (1{k=a} − p_k).
					ind := 0.0
					if grid.VertexID(id) == s.action {
						ind = 1
					}
					gpi = -adv * ratio * (ind - p[id])
				}
				if t.Cfg.EntropyCoef > 0 && p[id] > 0 {
					// Entropy bonus: loss −= c·H, dH/dz_k = −p_k(log p_k + H).
					h := entropy(p)
					gpi += t.Cfg.EntropyCoef * p[id] * (math.Log(p[id]) + h)
				}
				grad.Data[id] = gpi
			}
			t.Selector.Net.Backward(grad)
			t.optPi.Step()

			// Value update toward the empirical return.
			v := t.Value.Forward(enc)
			diff := v - s.ret
			valueLoss += diff * diff
			t.Value.Backward(2 * diff)
			t.optV.Step()
		}
		policyLoss /= float64(len(steps))
		valueLoss /= float64(len(steps))
	}
	return policyLoss, valueLoss
}

func entropy(p []float64) float64 {
	h := 0.0
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
