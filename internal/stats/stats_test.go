package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std of 1..5 = sqrt(10/4).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
	// Even-length median.
	if m := Summarize([]float64{1, 2, 3, 4}).Median; m != 2.5 {
		t.Errorf("even median = %v", m)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	z := Summarize(nil)
	if z.N != 0 || z.Mean != 0 || z.CI95() != 0 {
		t.Errorf("empty summary = %+v", z)
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Std != 0 || one.CI95() != 0 || one.Median != 7 {
		t.Errorf("single summary = %+v", one)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		if s.Min > s.Median || s.Median > s.Max {
			return false
		}
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Summarize([]float64{0, 1, 0, 1})
	var many []float64
	for i := 0; i < 400; i++ {
		many = append(many, float64(i%2))
	}
	big := Summarize(many)
	if big.CI95() >= small.CI95() {
		t.Errorf("CI should shrink with n: %v vs %v", big.CI95(), small.CI95())
	}
}

func TestRate(t *testing.T) {
	r := Rate{Hits: 3, N: 4}
	if r.Value() != 0.75 {
		t.Errorf("rate = %v", r.Value())
	}
	if (Rate{}).Value() != 0 || (Rate{}).CI95() != 0 {
		t.Error("empty rate should be zero")
	}
	if ci := r.CI95(); ci <= 0 || ci > 1 {
		t.Errorf("rate CI = %v", ci)
	}
	// Degenerate rate has zero width.
	if (Rate{Hits: 5, N: 5}).CI95() != 0 {
		t.Error("p=1 CI should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Errorf("geomean = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	if GeoMean([]float64{2, 0}) != 0 {
		t.Error("non-positive input should yield 0")
	}
	// Geometric mean <= arithmetic mean.
	xs := []float64{1, 2, 3, 4, 5, 6}
	if GeoMean(xs) > Summarize(xs).Mean {
		t.Error("AM-GM violated")
	}
}

func TestSpeedupFormat(t *testing.T) {
	if s := Speedup(10, 2); s != "5.0x" {
		t.Errorf("speedup = %q", s)
	}
	if s := Speedup(10, 0); s != "n/a" {
		t.Errorf("zero denominator = %q", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Error("empty string")
	}
}
