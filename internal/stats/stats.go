// Package stats provides the small set of descriptive statistics the
// experiment harness reports: means, standard deviations, normal-theory
// confidence intervals, and rate estimates. Keeping them in one tested
// package prevents subtle disagreements between experiments (population vs
// sample variance, empty-input behaviour) and makes EXPERIMENTS.md numbers
// auditable.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of observations.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary; an empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(n)
	if n > 1 {
		var sq float64
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.Std = math.Sqrt(sq / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return s
}

// CI95 returns the normal-approximation 95% confidence half-width of the
// mean (1.96 * std / sqrt(n)); 0 for fewer than two observations.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String implements fmt.Stringer with a compact mean±CI form.
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95(), s.N)
}

// Rate is a Bernoulli rate estimate.
type Rate struct {
	Hits, N int
}

// Value returns the observed rate (0 for an empty sample).
func (r Rate) Value() float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.N)
}

// CI95 returns the Wald 95% half-width of the rate.
func (r Rate) CI95() float64 {
	if r.N < 2 {
		return 0
	}
	p := r.Value()
	return 1.96 * math.Sqrt(p*(1-p)/float64(r.N))
}

// GeoMean returns the geometric mean of positive observations; it is the
// right aggregate for per-layout cost ratios. Non-positive inputs yield 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Speedup formats a ratio of durations/quantities as "N.Nx".
func Speedup(base, ours float64) string {
	if ours <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx", base/ours)
}
