package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"oarsmt/internal/core"
	"oarsmt/internal/layout"
	"oarsmt/internal/obs"
)

// StageTiming is the wall time one pipeline stage accumulated across every
// route of a StageBench run.
type StageTiming struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
}

// ObsBenchReport is the stage-resolved timing artefact behind
// BENCH_obs.json: where a routed layout's time actually goes (selector
// inference vs OARMST construction vs retrace vs guard), plus the search
// volume the routes generated.
type ObsBenchReport struct {
	Layouts    int                              `json:"layouts"`
	Stages     []StageTiming                    `json:"stages"`
	Counters   map[string]int64                 `json:"counters"`
	Histograms map[string]obs.HistogramSnapshot `json:"histograms"`
}

// StageBench routes n random layouts with span tracing and a private
// metric registry enabled, then aggregates the span tree into per-stage
// totals. Search-volume counters (route.*) live on the process-wide
// registry, so they are reported as the delta across the run.
func StageBench(opts Options, n int) (*ObsBenchReport, error) {
	sel, err := opts.selectorOrQuick()
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	trace := obs.NewTrace("bench.stage_timings")
	ctx := obs.With(opts.Context(), &obs.Observer{Trace: trace, Metrics: reg})

	rng := rand.New(rand.NewSource(opts.seed()))
	spec := layout.RandomSpec{
		H: 12, V: 12, MinM: 2, MaxM: 3, MinPins: 4, MaxPins: 8, MinObstacles: 8, MaxObstacles: 16,
	}
	before := obs.Snapshot()
	r := core.NewRouter(sel)
	for i := 0; i < n; i++ {
		in, err := layout.Random(rng, spec)
		if err != nil {
			return nil, err
		}
		if _, err := r.Route(ctx, in); err != nil {
			return nil, err
		}
	}
	after := obs.Snapshot()

	rep := &ObsBenchReport{Layouts: n, Counters: map[string]int64{}}
	// Aggregate the span tree by stage name, preserving first-seen order.
	agg := map[string]*StageTiming{}
	var order []string
	var walk func(s *obs.SpanData)
	walk = func(s *obs.SpanData) {
		st, ok := agg[s.Name]
		if !ok {
			st = &StageTiming{Name: s.Name}
			agg[s.Name] = st
			order = append(order, s.Name)
		}
		st.Count++
		st.TotalNS += s.DurationNS
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, c := range trace.Root().Children {
		walk(c)
	}
	for _, name := range order {
		rep.Stages = append(rep.Stages, *agg[name])
	}

	// Per-run registry (core.*) plus the process-wide delta (route.*).
	snap := reg.Snapshot()
	for name, v := range snap.Counters {
		rep.Counters[name] = v
	}
	for name, v := range after.Counters {
		if d := v - before.Counters[name]; d > 0 {
			rep.Counters[name] = d
		}
	}
	rep.Histograms = snap.Histograms

	w := opts.out()
	fmt.Fprintf(w, "Stage-resolved timings over %d layouts:\n", n)
	for _, st := range rep.Stages {
		fmt.Fprintf(w, "  %-16s n=%-5d total=%.3fms\n", st.Name, st.Count, float64(st.TotalNS)/1e6)
	}
	return rep, nil
}

// WriteObsBenchJSON serialises the report (indented, trailing newline).
func WriteObsBenchJSON(w io.Writer, rep *ObsBenchReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
