package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestWriteComparisonCSV(t *testing.T) {
	evals := []SubsetEval{{
		Name: "T32",
		Layouts: []LayoutEval{
			{BaselineCost: 100, OurCost: 98, BaselineTime: time.Millisecond,
				SelectTime: 2 * time.Millisecond, TotalTime: 3 * time.Millisecond, ObstacleRatio: 0.1},
			{BaselineCost: 200, OurCost: 205, BaselineTime: time.Millisecond,
				SelectTime: time.Millisecond, TotalTime: 2 * time.Millisecond, ObstacleRatio: 0.2},
		},
	}}
	var buf bytes.Buffer
	if err := WriteComparisonCSV(&buf, evals); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want header + 2", len(recs))
	}
	if recs[0][0] != "subset" || recs[1][0] != "T32" {
		t.Errorf("unexpected rows: %v", recs[:2])
	}
	if recs[1][1] != "100" || recs[1][2] != "98" {
		t.Errorf("costs row = %v", recs[1])
	}
}

func TestWriteFig10CSV(t *testing.T) {
	buckets := map[string][]Fig10Bucket{
		"T32": {{Lo: 0, Hi: 0.1, Count: 3, AvgImp: 0.02}},
	}
	var buf bytes.Buffer
	if err := WriteFig10CSV(&buf, buckets); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T32") || !strings.Contains(out, "0.02") {
		t.Errorf("csv = %q", out)
	}
}

func TestWriteTrainingCSV(t *testing.T) {
	curves := []TrainingCurve{{
		Kind: Combinatorial,
		Points: []TrainingPoint{
			{Stage: 1, TrainTime: time.Second, RatioInRange: 0.99, RatioBeyond: 1.01},
		},
	}}
	var buf bytes.Buffer
	if err := WriteTrainingCSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1][1] != "1" || recs[1][3] != "0.99" {
		t.Errorf("row = %v", recs[1])
	}
}
