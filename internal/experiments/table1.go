package experiments

import (
	"fmt"

	"oarsmt/internal/layout"
)

// Table1Row is one row of the paper's Table 1: the settings of a randomly
// generated test subset.
type Table1Row struct {
	Name                       string
	PaperLayouts               int
	H, V                       int
	MinM, MaxM                 int
	MinPins, MaxPins           int
	MinObstacles, MaxObstacles int
	// HarnessLayouts is the layout count the current scale actually runs.
	HarnessLayouts int
}

// SubsetLayoutCounts maps each Table 1 subset to the number of layouts a
// scale evaluates. Subsets absent from the map are skipped at that scale.
func SubsetLayoutCounts(s Scale) map[string]int {
	switch s {
	case ScaleSmall:
		return map[string]int{"T32": 8, "T64": 4, "T128": 2}
	case ScaleMedium:
		return map[string]int{"T32": 30, "T64": 12, "T128": 5, "T128_2": 3, "T256": 2}
	default: // ScalePaper
		out := map[string]int{}
		for _, sub := range layout.SubsetSpecs() {
			out[sub.Name] = sub.PaperLayouts
		}
		return out
	}
}

// Table1 prints the test-subset settings (paper Table 1) and the layout
// counts the given scale will run, returning the rows.
func Table1(opts Options) []Table1Row {
	counts := SubsetLayoutCounts(opts.Scale)
	var rows []Table1Row
	w := opts.out()
	fmt.Fprintf(w, "Table 1: Setting of each randomly generated test subset (scale=%v)\n", opts.Scale)
	fmt.Fprintf(w, "%-8s %10s %5s %5s %6s %12s %16s %9s\n",
		"subset", "# layouts", "H", "V", "M", "# pins", "# obstacles", "run here")
	for _, sub := range layout.SubsetSpecs() {
		row := Table1Row{
			Name:         sub.Name,
			PaperLayouts: sub.PaperLayouts,
			H:            sub.Spec.H, V: sub.Spec.V,
			MinM: sub.Spec.MinM, MaxM: sub.Spec.MaxM,
			MinPins: sub.Spec.MinPins, MaxPins: sub.Spec.MaxPins,
			MinObstacles: sub.Spec.MinObstacles, MaxObstacles: sub.Spec.MaxObstacles,
			HarnessLayouts: counts[sub.Name],
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-8s %10d %5d %5d %2d~%-3d %5d~%-6d %7d~%-8d %9d\n",
			row.Name, row.PaperLayouts, row.H, row.V, row.MinM, row.MaxM,
			row.MinPins, row.MaxPins, row.MinObstacles, row.MaxObstacles, row.HarnessLayouts)
	}
	return rows
}
