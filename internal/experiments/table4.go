package experiments

import (
	"fmt"

	"oarsmt/internal/baseline"
	"oarsmt/internal/core"
	"oarsmt/internal/layout"
)

// Table4Row is one public-benchmark row of the paper's Table 4.
type Table4Row struct {
	Name       string
	H, V, M    int
	Pins       int
	Obstacles  int
	CostLin08  float64 // [12]
	CostLiu14  float64 // [16]
	CostLin18  float64 // [14]
	CostOurs   float64
	ImpVsLin08 float64
	ImpVsLiu14 float64
	ImpVsLin18 float64
}

// Table4Benchmarks returns the benchmark names a scale evaluates.
func Table4Benchmarks(s Scale) []string {
	switch s {
	case ScaleSmall:
		return []string{"rt1", "ind1"}
	case ScaleMedium:
		return []string{"rt1", "rt2", "ind1", "ind2", "ind3"}
	default:
		return []string{"rt1", "rt2", "rt3", "rt4", "rt5", "ind1", "ind2", "ind3"}
	}
}

// Table4 routes the synthetic public-benchmark equivalents with all three
// algorithmic routers and ours, printing the paper's Table 4 columns.
func Table4(opts Options) ([]Table4Row, error) {
	sel, err := opts.selectorOrQuick()
	if err != nil {
		return nil, err
	}
	ctx := opts.Context()
	ours := core.NewRouter(sel)
	w := opts.out()
	fmt.Fprintf(w, "Table 4: Routing-cost comparison on public-benchmark equivalents (C_via = 3, scale=%v)\n", opts.Scale)
	fmt.Fprintf(w, "%-6s %5s %5s %3s %6s %6s | %10s %10s %10s %10s | %9s %9s %9s\n",
		"case", "H", "V", "M", "pins", "obs",
		"[12] (a)", "[16] (b)", "[14] (c)", "ours (d)",
		"(a-d)/a", "(b-d)/b", "(c-d)/c")

	var rows []Table4Row
	var sumA, sumB, sumC float64
	for _, name := range Table4Benchmarks(opts.Scale) {
		spec, ok := layout.BenchmarkByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
		}
		in, err := spec.Generate()
		if err != nil {
			return nil, err
		}
		r08, err := baseline.New(baseline.Lin08).Route(in)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s [12]: %w", name, err)
		}
		r16, err := baseline.New(baseline.Liu14).Route(in)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s [16]: %w", name, err)
		}
		r14, err := baseline.New(baseline.Lin18).Route(in)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s [14]: %w", name, err)
		}
		rOurs, err := ours.Route(ctx, in)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s ours: %w", name, err)
		}
		row := Table4Row{
			Name: name, H: spec.H, V: spec.V, M: spec.M,
			Pins: spec.Pins, Obstacles: spec.Obstacles,
			CostLin08: r08.Tree.Cost,
			CostLiu14: r16.Tree.Cost,
			CostLin18: r14.Tree.Cost,
			CostOurs:  rOurs.Tree.Cost,
		}
		row.ImpVsLin08 = imp(row.CostLin08, row.CostOurs)
		row.ImpVsLiu14 = imp(row.CostLiu14, row.CostOurs)
		row.ImpVsLin18 = imp(row.CostLin18, row.CostOurs)
		rows = append(rows, row)
		sumA += row.ImpVsLin08
		sumB += row.ImpVsLiu14
		sumC += row.ImpVsLin18
		fmt.Fprintf(w, "%-6s %5d %5d %3d %6d %6d | %10.0f %10.0f %10.0f %10.0f | %8.3f%% %8.3f%% %8.3f%%\n",
			row.Name, row.H, row.V, row.M, row.Pins, row.Obstacles,
			row.CostLin08, row.CostLiu14, row.CostLin18, row.CostOurs,
			100*row.ImpVsLin08, 100*row.ImpVsLiu14, 100*row.ImpVsLin18)
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(w, "%-6s %38s | %43s | %8.3f%% %8.3f%% %8.3f%%\n",
			"avg.", "", "", 100*sumA/n, 100*sumB/n, 100*sumC/n)
	}
	return rows, nil
}

func imp(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - ours) / base
}
