package experiments

import (
	"fmt"
	"math/rand"

	"oarsmt/internal/baseline"
	"oarsmt/internal/core"
	"oarsmt/internal/layout"
	"oarsmt/internal/stats"
)

// ModelEval summarises a trained selector's routing quality on one layout
// distribution.
type ModelEval struct {
	Spec    layout.RandomSpec
	Layouts int
	// STtoMST is the unguarded ST-to-MST ratio distribution (the paper's
	// learning-quality metric; below 1 means the Steiner points genuinely
	// shorten trees).
	STtoMST stats.Summary
	// KeptSteiner counts Steiner points surviving redundancy removal.
	KeptSteiner int
	// ImprovedLayouts counts layouts where the Steiner tree beat the
	// plain spanning tree.
	ImprovedLayouts stats.Rate
	// VsLin18 is the guarded router's improvement-ratio distribution
	// against the [14] baseline.
	VsLin18 stats.Summary
	// WinVsLin18 is the fraction of layouts won against [14].
	WinVsLin18 stats.Rate
}

// EvaluateModel routes n layouts from the spec with the selector and
// reports the quality summary; this powers cmd/oarsmt-eval.
func EvaluateModel(opts Options, spec layout.RandomSpec, n int) (*ModelEval, error) {
	sel, err := opts.selectorOrQuick()
	if err != nil {
		return nil, err
	}
	unguarded := &core.Router{Selector: sel, Mode: core.OneShot, GuardedAcceptance: false, RetracePasses: 0}
	guarded := core.NewRouter(sel)
	lin18 := baseline.New(baseline.Lin18)
	rng := rand.New(rand.NewSource(opts.seed()))

	ctx := opts.Context()
	res := &ModelEval{Spec: spec, Layouts: n}
	var ratios, imps []float64
	for i := 0; i < n; i++ {
		in, err := layout.Random(rng, spec)
		if err != nil {
			return nil, err
		}
		mst, err := core.PlainOARMST(ctx, in)
		if err != nil {
			return nil, err
		}
		ru, err := unguarded.Route(ctx, in)
		if err != nil {
			return nil, err
		}
		ratios = append(ratios, ru.Tree.Cost/mst.Cost)
		res.KeptSteiner += len(ru.SteinerPoints)
		res.ImprovedLayouts.N++
		if ru.Tree.Cost < mst.Cost-1e-9 {
			res.ImprovedLayouts.Hits++
		}

		rg, err := guarded.Route(ctx, in)
		if err != nil {
			return nil, err
		}
		rb, err := lin18.Route(in)
		if err != nil {
			return nil, err
		}
		if rb.Tree.Cost > 0 {
			imps = append(imps, (rb.Tree.Cost-rg.Tree.Cost)/rb.Tree.Cost)
		}
		res.WinVsLin18.N++
		if rg.Tree.Cost < rb.Tree.Cost-1e-9 {
			res.WinVsLin18.Hits++
		}
	}
	res.STtoMST = stats.Summarize(ratios)
	res.VsLin18 = stats.Summarize(imps)

	w := opts.out()
	fmt.Fprintf(w, "model eval on %dx%dx[%d,%d] layouts, %d~%d pins, n=%d:\n",
		spec.H, spec.V, spec.MinM, spec.MaxM, spec.MinPins, spec.MaxPins, n)
	fmt.Fprintf(w, "  ST/MST (unguarded, no retrace): %s  improved %.0f%%  kept Steiner pts: %d\n",
		res.STtoMST, 100*res.ImprovedLayouts.Value(), res.KeptSteiner)
	fmt.Fprintf(w, "  vs [14] (guarded router): improvement %s  win rate %.0f%%\n",
		res.VsLin18, 100*res.WinVsLin18.Value())
	return res, nil
}
