package experiments

import (
	"fmt"
	"math/rand"

	"oarsmt/internal/baseline"
	"oarsmt/internal/core"
	"oarsmt/internal/exact"
	"oarsmt/internal/layout"
)

// OptimalityGapResult reports each router's average cost ratio to the
// Dreyfus-Wagner optimum over small random layouts. This evaluation goes
// beyond the paper (which compares heuristics against each other only) and
// quantifies how much headroom the heuristics leave; the exact reference
// plays the role of the exact algorithms [10]/[11] in the paper's related
// work.
type OptimalityGapResult struct {
	Layouts  int
	GapOurs  float64 // mean cost / optimal
	GapLin08 float64
	GapLiu14 float64
	GapLin18 float64
	GapMST   float64 // plain OARMST (no Steiner points)
}

// OptimalityGap evaluates the routers against the exact optimum on n
// small layouts (pins capped by exact.MaxTerminals).
func OptimalityGap(opts Options, n int) (*OptimalityGapResult, error) {
	sel, err := opts.selectorOrQuick()
	if err != nil {
		return nil, err
	}
	ours := core.NewRouter(sel)
	rng := rand.New(rand.NewSource(opts.seed()))
	spec := layout.RandomSpec{
		H: 10, V: 10, MinM: 1, MaxM: 2,
		MinPins: 3, MaxPins: 6,
		MinObstacles: 6, MaxObstacles: 14,
	}
	ctx := opts.Context()
	res := &OptimalityGapResult{Layouts: n}
	for i := 0; i < n; i++ {
		in, err := layout.Random(rng, spec)
		if err != nil {
			return nil, err
		}
		opt, err := exact.SteinerMinCost(in.Graph, in.Pins)
		if err != nil {
			return nil, err
		}
		if opt <= 0 {
			// Degenerate (coincident pins cannot happen; opt 0 only for a
			// single pin). Skip defensively.
			i--
			continue
		}
		ro, err := ours.Route(ctx, in)
		if err != nil {
			return nil, err
		}
		res.GapOurs += ro.Tree.Cost / opt
		for _, alg := range []struct {
			a   baseline.Algorithm
			sum *float64
		}{
			{baseline.Lin08, &res.GapLin08},
			{baseline.Liu14, &res.GapLiu14},
			{baseline.Lin18, &res.GapLin18},
		} {
			rb, err := baseline.New(alg.a).Route(in)
			if err != nil {
				return nil, err
			}
			*alg.sum += rb.Tree.Cost / opt
		}
		mst, err := core.PlainOARMST(ctx, in)
		if err != nil {
			return nil, err
		}
		res.GapMST += mst.Cost / opt
	}
	for _, p := range []*float64{&res.GapOurs, &res.GapLin08, &res.GapLiu14, &res.GapLin18, &res.GapMST} {
		*p /= float64(n)
	}
	w := opts.out()
	fmt.Fprintf(w, "Optimality gap over %d small layouts (cost / Dreyfus-Wagner optimum):\n", n)
	fmt.Fprintf(w, "  plain OARMST %.4f  [12] %.4f  [16] %.4f  [14] %.4f  ours %.4f\n",
		res.GapMST, res.GapLin08, res.GapLiu14, res.GapLin18, res.GapOurs)
	return res, nil
}
