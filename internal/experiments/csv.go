package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV exporters for the figure-shaped experiments, so the series behind
// Fig 10-12 can be plotted with any external tool.

// WriteComparisonCSV dumps the per-layout head-to-head data behind
// Tables 2/3 and Fig 10.
func WriteComparisonCSV(w io.Writer, evals []SubsetEval) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"subset", "baseline_cost", "our_cost", "baseline_seconds",
		"select_seconds", "total_seconds", "obstacle_ratio",
	}); err != nil {
		return err
	}
	for i := range evals {
		e := &evals[i]
		for _, l := range e.Layouts {
			rec := []string{
				e.Name,
				fmtF(l.BaselineCost), fmtF(l.OurCost),
				fmtF(l.BaselineTime.Seconds()),
				fmtF(l.SelectTime.Seconds()), fmtF(l.TotalTime.Seconds()),
				fmtF(l.ObstacleRatio),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig10CSV dumps the obstacle-ratio buckets of Fig 10.
func WriteFig10CSV(w io.Writer, buckets map[string][]Fig10Bucket) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"subset", "ratio_lo", "ratio_hi", "count", "avg_improvement"}); err != nil {
		return err
	}
	for name, bs := range buckets {
		for _, b := range bs {
			rec := []string{name, fmtF(b.Lo), fmtF(b.Hi), strconv.Itoa(b.Count), fmtF(b.AvgImp)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTrainingCSV dumps the Fig 11/12 training curves.
func WriteTrainingCSV(w io.Writer, curves []TrainingCurve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"trainer", "stage", "train_seconds", "st_to_mst_in_range", "st_to_mst_beyond",
	}); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			rec := []string{
				c.Kind.String(), strconv.Itoa(p.Stage),
				fmtF(p.TrainTime.Seconds()), fmtF(p.RatioInRange), fmtF(p.RatioBeyond),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return fmt.Sprintf("%g", v) }
