package experiments

import (
	"fmt"
	"math/rand"

	"oarsmt/internal/baseline"
	"oarsmt/internal/core"
	"oarsmt/internal/layout"
	"oarsmt/internal/mcts"
	"oarsmt/internal/mctsconv"
)

// AblationPriorityPruning measures how much the lexicographic selection
// priority of the combinatorial MCTS shrinks the search: it runs one
// episode of the combinatorial search and one of the conventional search
// with identical budgets on the same layouts and reports nodes expanded
// and iterations.
type PriorityPruningResult struct {
	CombinatorialExpanded int
	ConventionalExpanded  int
	CombinatorialIters    int
	ConventionalIters     int
}

// AblationPriorityPruning runs the pruning comparison over n layouts.
func AblationPriorityPruning(opts Options, n int) (*PriorityPruningResult, error) {
	sel, err := opts.selectorOrQuick()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.seed()))
	spec := layout.RandomSpec{
		H: 8, V: 8, MinM: 2, MaxM: 2, MinPins: 5, MaxPins: 5, MinObstacles: 4, MaxObstacles: 8,
	}
	res := &PriorityPruningResult{}
	for i := 0; i < n; i++ {
		in, err := layout.Random(rng, spec)
		if err != nil {
			return nil, err
		}
		comb, err := mcts.Search(sel, in, mcts.Config{Iterations: 64, UseCritic: true})
		if err != nil {
			return nil, err
		}
		conv, err := mctsconv.Search(sel, in.Clone(), mctsconv.Config{Iterations: 64, UseCritic: true})
		if err != nil {
			return nil, err
		}
		res.CombinatorialExpanded += comb.NodesExpanded
		res.ConventionalExpanded += conv.NodesExpanded
		res.CombinatorialIters += comb.Iterations
		res.ConventionalIters += conv.Iterations
	}
	fmt.Fprintf(opts.out(),
		"Priority pruning over %d layouts: combinatorial expanded %d nodes in %d iters; conventional expanded %d nodes in %d iters\n",
		n, res.CombinatorialExpanded, res.CombinatorialIters,
		res.ConventionalExpanded, res.ConventionalIters)
	return res, nil
}

// GuardedAcceptanceResult compares the router with and without the
// guarded-acceptance knob.
type GuardedAcceptanceResult struct {
	Layouts       int
	GuardedCost   float64
	UnguardedCost float64
	GuardRejected int // layouts where the guard chose the plain tree
}

// AblationGuardedAcceptance measures the effect of guarded acceptance on
// n random layouts.
func AblationGuardedAcceptance(opts Options, n int) (*GuardedAcceptanceResult, error) {
	sel, err := opts.selectorOrQuick()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.seed()))
	spec := layout.RandomSpec{
		H: 12, V: 12, MinM: 2, MaxM: 4, MinPins: 4, MaxPins: 8, MinObstacles: 10, MaxObstacles: 20,
	}
	ctx := opts.Context()
	guarded := core.NewRouter(sel)
	unguarded := &core.Router{Selector: sel, Mode: core.OneShot, GuardedAcceptance: false,
		RetracePasses: guarded.RetracePasses} // like-for-like except the guard
	res := &GuardedAcceptanceResult{Layouts: n}
	for i := 0; i < n; i++ {
		in, err := layout.Random(rng, spec)
		if err != nil {
			return nil, err
		}
		rg, err := guarded.Route(ctx, in)
		if err != nil {
			return nil, err
		}
		ru, err := unguarded.Route(ctx, in)
		if err != nil {
			return nil, err
		}
		res.GuardedCost += rg.Tree.Cost
		res.UnguardedCost += ru.Tree.Cost
		if !rg.UsedSteiner {
			res.GuardRejected++
		}
	}
	fmt.Fprintf(opts.out(),
		"Guarded acceptance over %d layouts: guarded total %.0f, unguarded total %.0f, guard rejected %d proposals\n",
		n, res.GuardedCost, res.UnguardedCost, res.GuardRejected)
	return res, nil
}

// BoundedMazeResult compares [14]'s bounded exploration against unbounded
// construction.
type BoundedMazeResult struct {
	Layouts       int
	BoundedCost   float64
	UnboundedCost float64
}

// AblationBoundedMaze measures the cost effect of bounded exploration in
// the Lin18 baseline over n layouts.
func AblationBoundedMaze(opts Options, n int) (*BoundedMazeResult, error) {
	rng := rand.New(rand.NewSource(opts.seed()))
	spec := layout.RandomSpec{
		H: 24, V: 24, MinM: 2, MaxM: 4, MinPins: 8, MaxPins: 16, MinObstacles: 40, MaxObstacles: 80,
	}
	bounded := baseline.New(baseline.Lin18)
	unbounded := baseline.New(baseline.Liu14) // plain Prim + 1 retrace
	res := &BoundedMazeResult{Layouts: n}
	for i := 0; i < n; i++ {
		in, err := layout.Random(rng, spec)
		if err != nil {
			return nil, err
		}
		rb, err := bounded.Route(in)
		if err != nil {
			return nil, err
		}
		ru, err := unbounded.Route(in)
		if err != nil {
			return nil, err
		}
		res.BoundedCost += rb.Tree.Cost
		res.UnboundedCost += ru.Tree.Cost
	}
	fmt.Fprintf(opts.out(),
		"Bounded maze over %d layouts: bounded+retrace total %.0f vs plain+1-retrace total %.0f\n",
		n, res.BoundedCost, res.UnboundedCost)
	return res, nil
}
