package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"oarsmt/internal/baseline"
	"oarsmt/internal/core"
	"oarsmt/internal/layout"
	"oarsmt/internal/parallel"
	"oarsmt/internal/selector"
	"oarsmt/internal/stats"
)

// LayoutEval records one layout's head-to-head result between the best
// algorithmic router [14] and our RL router.
type LayoutEval struct {
	BaselineCost  float64
	OurCost       float64
	BaselineTime  time.Duration
	SelectTime    time.Duration
	TotalTime     time.Duration
	ObstacleRatio float64
}

// SubsetEval aggregates one Table 1 subset.
type SubsetEval struct {
	Name    string
	Layouts []LayoutEval
}

// AvgBaselineCost returns the mean routing cost of [14] over the subset.
func (s *SubsetEval) AvgBaselineCost() float64 {
	return s.mean(func(l LayoutEval) float64 { return l.BaselineCost })
}

// AvgOurCost returns the mean routing cost of our router over the subset.
func (s *SubsetEval) AvgOurCost() float64 {
	return s.mean(func(l LayoutEval) float64 { return l.OurCost })
}

// DiffRatio returns (a-b)/a over the subset's average costs (Table 2).
func (s *SubsetEval) DiffRatio() float64 {
	a := s.AvgBaselineCost()
	if a == 0 {
		return 0
	}
	return (a - s.AvgOurCost()) / a
}

// AvgImprovementRatio returns the mean of per-layout improvement ratios,
// the bias-resistant metric of Table 2.
func (s *SubsetEval) AvgImprovementRatio() float64 {
	return s.ImprovementSummary().Mean
}

// ImprovementSummary returns full statistics of the per-layout improvement
// ratios, including the 95% confidence half-width Table 2 prints.
func (s *SubsetEval) ImprovementSummary() stats.Summary {
	xs := make([]float64, 0, len(s.Layouts))
	for _, l := range s.Layouts {
		if l.BaselineCost > 0 {
			xs = append(xs, (l.BaselineCost-l.OurCost)/l.BaselineCost)
		}
	}
	return stats.Summarize(xs)
}

// WinRate and LossRate return the fraction of layouts where our router is
// strictly cheaper / strictly more expensive than [14].
func (s *SubsetEval) WinRate() float64 {
	return s.mean(func(l LayoutEval) float64 {
		if l.OurCost < l.BaselineCost-1e-9 {
			return 1
		}
		return 0
	})
}

// LossRate returns the fraction of layouts where our router loses.
func (s *SubsetEval) LossRate() float64 {
	return s.mean(func(l LayoutEval) float64 {
		if l.OurCost > l.BaselineCost+1e-9 {
			return 1
		}
		return 0
	})
}

// AvgBaselineTime, AvgSelectTime and AvgTotalTime are the Table 3 columns.
func (s *SubsetEval) AvgBaselineTime() time.Duration {
	return s.meanDur(func(l LayoutEval) time.Duration { return l.BaselineTime })
}

// AvgSelectTime returns the mean Steiner-point-selection time.
func (s *SubsetEval) AvgSelectTime() time.Duration {
	return s.meanDur(func(l LayoutEval) time.Duration { return l.SelectTime })
}

// AvgTotalTime returns our router's mean total time.
func (s *SubsetEval) AvgTotalTime() time.Duration {
	return s.meanDur(func(l LayoutEval) time.Duration { return l.TotalTime })
}

// Speedup returns [14]'s average runtime over ours (Table 3).
func (s *SubsetEval) Speedup() float64 {
	t := s.AvgTotalTime()
	if t == 0 {
		return 0
	}
	return float64(s.AvgBaselineTime()) / float64(t)
}

func (s *SubsetEval) mean(f func(LayoutEval) float64) float64 {
	if len(s.Layouts) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range s.Layouts {
		sum += f(l)
	}
	return sum / float64(len(s.Layouts))
}

func (s *SubsetEval) meanDur(f func(LayoutEval) time.Duration) time.Duration {
	if len(s.Layouts) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range s.Layouts {
		sum += f(l)
	}
	return sum / time.Duration(len(s.Layouts))
}

// RunComparison evaluates [14] vs our router over the scale's subsets.
// The result feeds Table 2, Table 3 and Fig 10. Layout generation is
// deterministic per subset; with Options.Workers > 1 the (independent)
// per-layout evaluations run concurrently on private selector copies,
// leaving costs identical and only wall-clock timings noisier.
func RunComparison(opts Options) ([]SubsetEval, error) {
	sel, err := opts.selectorOrQuick()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = parallel.Workers()
	}
	ctx := opts.Context()
	counts := SubsetLayoutCounts(opts.Scale)

	var out []SubsetEval
	for _, sub := range layout.SubsetSpecs() {
		n := counts[sub.Name]
		if n == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(opts.seed()))
		ins := make([]*layout.Instance, n)
		for i := 0; i < n; i++ {
			in, err := layout.Random(rng, sub.Spec)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", sub.Name, err)
			}
			ins[i] = in
		}
		evals := make([]LayoutEval, n)
		if err := forEachParallel(n, workers, sel, func(w *core.Router, lin18 *baseline.Router, i int) error {
			in := ins[i]
			base, err := lin18.Route(in)
			if err != nil {
				return fmt.Errorf("experiments: %s baseline: %w", sub.Name, err)
			}
			res, err := w.Route(ctx, in)
			if err != nil {
				return fmt.Errorf("experiments: %s ours: %w", sub.Name, err)
			}
			evals[i] = LayoutEval{
				BaselineCost:  base.Tree.Cost,
				OurCost:       res.Tree.Cost,
				BaselineTime:  base.Elapsed,
				SelectTime:    res.SelectTime,
				TotalTime:     res.TotalTime,
				ObstacleRatio: in.Graph.ObstacleAreaRatio(),
			}
			return nil
		}); err != nil {
			return nil, err
		}
		out = append(out, SubsetEval{Name: sub.Name, Layouts: evals})
	}
	return out, nil
}

// forEachParallel runs fn over [0, n) sharded across the shared worker
// pool (capped at `workers`), giving each shard a private router pair (the
// selector is cloned because network instances cache activations and must
// not be shared across goroutines). The serial path avoids the copy.
// Per-index results are identical at any worker count; the first error in
// shard order is returned.
func forEachParallel(n, workers int, sel *selector.Selector, fn func(*core.Router, *baseline.Router, int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ours := core.NewRouter(sel)
		lin18 := baseline.New(baseline.Lin18)
		for i := 0; i < n; i++ {
			if err := fn(ours, lin18, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, workers)
	parallel.ForWith(workers, n, func(shard, lo, hi int) {
		priv, err := sel.Clone()
		if err != nil {
			errs[shard] = err
			return
		}
		ours := core.NewRouter(priv)
		lin18 := baseline.New(baseline.Lin18)
		for i := lo; i < hi; i++ {
			if err := fn(ours, lin18, i); err != nil {
				errs[shard] = err
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Table2 prints the routing-cost comparison (paper Table 2).
func Table2(opts Options, evals []SubsetEval) {
	w := opts.out()
	fmt.Fprintf(w, "Table 2: Routing-cost comparison between [14] and our router (scale=%v)\n", opts.Scale)
	fmt.Fprintf(w, "%-8s %14s %14s %9s %18s %8s %8s\n",
		"subset", "[14] (a)", "ours (b)", "(a-b)/a", "avg imp. (95% CI)", "win", "loss")
	for i := range evals {
		e := &evals[i]
		imp := e.ImprovementSummary()
		fmt.Fprintf(w, "%-8s %14.0f %14.0f %8.3f%% %8.3f%%±%5.3f%% %7.1f%% %7.1f%%\n",
			e.Name, e.AvgBaselineCost(), e.AvgOurCost(),
			100*e.DiffRatio(), 100*imp.Mean, 100*imp.CI95(),
			100*e.WinRate(), 100*e.LossRate())
	}
}

// Table3 prints the runtime comparison (paper Table 3).
func Table3(opts Options, evals []SubsetEval) {
	w := opts.out()
	fmt.Fprintf(w, "Table 3: Runtime comparison between [14] and our router (scale=%v)\n", opts.Scale)
	fmt.Fprintf(w, "%-8s %16s %16s %16s %9s\n",
		"subset", "[14] avg (a)", "Spoint select", "total (b)", "speedup")
	for i := range evals {
		e := &evals[i]
		fmt.Fprintf(w, "%-8s %16s %16s %16s %8.1fx\n",
			e.Name, fmtSec(e.AvgBaselineTime()), fmtSec(e.AvgSelectTime()),
			fmtSec(e.AvgTotalTime()), e.Speedup())
	}
}

func fmtSec(d time.Duration) string {
	return fmt.Sprintf("%.4fs", d.Seconds())
}

// Fig10Bucket is one point of the paper's Fig 10: the average improvement
// ratio of layouts whose obstacle ratio falls in [Lo, Hi).
type Fig10Bucket struct {
	Lo, Hi float64
	Count  int
	AvgImp float64
}

// Fig10 groups each subset's layouts by obstacle ratio and prints the
// average improvement ratio per bucket (paper Fig 10).
func Fig10(opts Options, evals []SubsetEval, nBuckets int) map[string][]Fig10Bucket {
	if nBuckets <= 0 {
		nBuckets = 5
	}
	w := opts.out()
	fmt.Fprintf(w, "Fig 10: Average improvement ratio against [14] vs obstacle ratio (scale=%v)\n", opts.Scale)
	out := map[string][]Fig10Bucket{}
	for i := range evals {
		e := &evals[i]
		lo, hi := 1.0, 0.0
		for _, l := range e.Layouts {
			if l.ObstacleRatio < lo {
				lo = l.ObstacleRatio
			}
			if l.ObstacleRatio > hi {
				hi = l.ObstacleRatio
			}
		}
		if hi <= lo {
			hi = lo + 1e-9
		}
		buckets := make([]Fig10Bucket, nBuckets)
		step := (hi - lo) / float64(nBuckets)
		for b := range buckets {
			buckets[b].Lo = lo + float64(b)*step
			buckets[b].Hi = buckets[b].Lo + step
		}
		for _, l := range e.Layouts {
			b := int((l.ObstacleRatio - lo) / step)
			if b >= nBuckets {
				b = nBuckets - 1
			}
			imp := 0.0
			if l.BaselineCost > 0 {
				imp = (l.BaselineCost - l.OurCost) / l.BaselineCost
			}
			buckets[b].AvgImp += imp
			buckets[b].Count++
		}
		fmt.Fprintf(w, "%s:", e.Name)
		for b := range buckets {
			if buckets[b].Count > 0 {
				buckets[b].AvgImp /= float64(buckets[b].Count)
			}
			fmt.Fprintf(w, "  [%.3f,%.3f) %.3f%% (n=%d)",
				buckets[b].Lo, buckets[b].Hi, 100*buckets[b].AvgImp, buckets[b].Count)
		}
		fmt.Fprintln(w)
		out[e.Name] = buckets
	}
	return out
}
