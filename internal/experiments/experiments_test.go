package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

// testSelector returns an untrained tiny selector so experiment tests run
// fast; experiment *quality* is covered by the benchmark harness and
// EXPERIMENTS.md, not by unit tests.
func testSelector(t *testing.T) *selector.Selector {
	t.Helper()
	s, err := selector.NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseScale(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
	}{{"small", ScaleSmall}, {"medium", ScaleMedium}, {"paper", ScalePaper}} {
		got, err := ParseScale(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
		if got.String() != c.in {
			t.Errorf("Scale.String() = %q, want %q", got.String(), c.in)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Error("bogus scale should fail")
	}
}

func TestTable1PrintsAllSubsets(t *testing.T) {
	var buf bytes.Buffer
	rows := Table1(Options{Scale: ScaleSmall, Out: &buf})
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, name := range []string{"T32", "T64", "T128", "T128_2", "T256", "T256_2", "T512"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("output missing %s", name)
		}
	}
	// Small scale runs only a subset.
	if rows[0].HarnessLayouts == 0 {
		t.Error("T32 should run at small scale")
	}
	if rows[6].HarnessLayouts != 0 {
		t.Error("T512 should be skipped at small scale")
	}
}

func TestSubsetLayoutCountsPaperMatchesTable1(t *testing.T) {
	counts := SubsetLayoutCounts(ScalePaper)
	if counts["T32"] != 50000 || counts["T512"] != 360 {
		t.Errorf("paper counts = %v", counts)
	}
}

// testComparisonOptions shrinks the small-scale comparison further for
// unit-test latency by reusing the harness with a tiny untrained selector.
func TestRunComparisonAndTables(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison experiment is slow")
	}
	var buf bytes.Buffer
	opts := Options{Scale: ScaleSmall, Seed: 3, Selector: testSelector(t), Out: &buf}
	evals, err := RunComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) == 0 {
		t.Fatal("no subsets evaluated")
	}
	for i := range evals {
		e := &evals[i]
		if len(e.Layouts) == 0 {
			t.Fatalf("%s: no layouts", e.Name)
		}
		if e.AvgBaselineCost() <= 0 || e.AvgOurCost() <= 0 {
			t.Errorf("%s: non-positive costs", e.Name)
		}
		// Guarded acceptance bounds our cost by the plain OARMST, not by
		// Lin18's retraced tree; win+loss must never exceed 1.
		if e.WinRate()+e.LossRate() > 1+1e-9 {
			t.Errorf("%s: win+loss > 1", e.Name)
		}
		if e.AvgTotalTime() < e.AvgSelectTime() {
			t.Errorf("%s: total < select time", e.Name)
		}
	}
	Table2(opts, evals)
	Table3(opts, evals)
	buckets := Fig10(opts, evals, 3)
	if len(buckets) != len(evals) {
		t.Errorf("fig10 buckets for %d subsets, want %d", len(buckets), len(evals))
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "Fig 10", "T32"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunComparisonParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison experiment is slow")
	}
	sel := testSelector(t)
	// Restrict to T32 only by using the small scale but trimming layouts:
	// run both modes and compare the cost columns (timings differ).
	serialOpts := Options{Scale: ScaleSmall, Seed: 12, Selector: sel, Workers: 1}
	parallelOpts := Options{Scale: ScaleSmall, Seed: 12, Selector: sel, Workers: 3}
	a, err := RunComparison(serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunComparison(parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("subset counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Layouts) != len(b[i].Layouts) {
			t.Fatalf("%s: layout counts differ", a[i].Name)
		}
		for j := range a[i].Layouts {
			if a[i].Layouts[j].BaselineCost != b[i].Layouts[j].BaselineCost ||
				a[i].Layouts[j].OurCost != b[i].Layouts[j].OurCost {
				t.Fatalf("%s layout %d: parallel costs differ from serial", a[i].Name, j)
			}
		}
	}
}

func TestTable4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("table 4 experiment is slow")
	}
	var buf bytes.Buffer
	rows, err := Table4(Options{Scale: ScaleSmall, Seed: 4, Selector: testSelector(t), Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 at small scale", len(rows))
	}
	for _, r := range rows {
		if r.CostOurs <= 0 || r.CostLin08 <= 0 || r.CostLiu14 <= 0 || r.CostLin18 <= 0 {
			t.Errorf("%s: non-positive cost", r.Name)
		}
		// Lin08 loses sharing: it should be the most expensive comparator.
		if r.CostLin08 < r.CostLin18 {
			t.Errorf("%s: [12] cost %v below [14] cost %v", r.Name, r.CostLin08, r.CostLin18)
		}
	}
	if !strings.Contains(buf.String(), "rt1") {
		t.Error("output missing rt1")
	}
}

func TestTrainingComparisonSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("training comparison is slow")
	}
	var buf bytes.Buffer
	cfg := FigTrainingDefaults(11, ScaleSmall)
	cfg.Stages = 1
	cfg.LayoutsPerStage = 1
	cfg.EvalLayouts = 2
	curves, err := TrainingComparison(Options{Scale: ScaleSmall, Seed: 5, Out: &buf}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("curves = %d, want 3", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) != cfg.Stages {
			t.Errorf("%v: points = %d, want %d", c.Kind, len(c.Points), cfg.Stages)
		}
		for _, p := range c.Points {
			if p.RatioInRange <= 0 || p.RatioBeyond <= 0 {
				t.Errorf("%v: non-positive ST/MST ratio", c.Kind)
			}
			if p.TrainTime <= 0 {
				t.Errorf("%v: no training time recorded", c.Kind)
			}
		}
	}
}

func TestFigTrainingDefaults(t *testing.T) {
	f11 := FigTrainingDefaults(11, ScalePaper)
	if f11.Size.HV != 24 || f11.Size.M != 4 {
		t.Errorf("paper fig11 size = %+v", f11.Size)
	}
	f12 := FigTrainingDefaults(12, ScalePaper)
	if f12.Size.HV != 32 {
		t.Errorf("paper fig12 size = %+v", f12.Size)
	}
	if f12.MCTSIterations != 2000 {
		t.Errorf("paper alpha = %d, want 2000", f12.MCTSIterations)
	}
	small := FigTrainingDefaults(11, ScaleSmall)
	if small.Size.HV >= 24 {
		t.Error("small scale should shrink the layouts")
	}
}

func TestAblationPriorityPruning(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	var buf bytes.Buffer
	res, err := AblationPriorityPruning(Options{Seed: 6, Selector: testSelector(t), Out: &buf}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CombinatorialIters == 0 || res.ConventionalIters == 0 {
		t.Error("no iterations recorded")
	}
}

func TestAblationGuardedAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	res, err := AblationGuardedAcceptance(Options{Seed: 7, Selector: testSelector(t)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.GuardedCost > res.UnguardedCost+1e-9 {
		t.Errorf("guarded total %v exceeds unguarded %v", res.GuardedCost, res.UnguardedCost)
	}
}

func TestAblationBoundedMaze(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is slow")
	}
	res, err := AblationBoundedMaze(Options{Seed: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundedCost <= 0 || res.UnboundedCost <= 0 {
		t.Error("non-positive costs")
	}
}

func TestOptimalityGap(t *testing.T) {
	if testing.Short() {
		t.Skip("optimality gap is slow")
	}
	var buf bytes.Buffer
	res, err := OptimalityGap(Options{Seed: 9, Selector: testSelector(t), Out: &buf}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every heuristic costs at least the optimum.
	for name, gap := range map[string]float64{
		"ours": res.GapOurs, "lin08": res.GapLin08, "liu14": res.GapLiu14,
		"lin18": res.GapLin18, "mst": res.GapMST,
	} {
		if gap < 1-1e-9 {
			t.Errorf("%s gap %v below 1 (heuristic beat the optimum)", name, gap)
		}
		if gap > 2+1e-9 {
			t.Errorf("%s gap %v above the 2x spanning bound", name, gap)
		}
	}
	// Lin08 (no sharing) must be the worst or tied.
	if res.GapLin08 < res.GapLin18-1e-9 {
		t.Errorf("lin08 gap %v below lin18 %v", res.GapLin08, res.GapLin18)
	}
	if !strings.Contains(buf.String(), "Optimality gap") {
		t.Error("missing printed header")
	}
}

func TestMeasureSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("speedups experiment is slow")
	}
	var buf bytes.Buffer
	cfg := FigTrainingDefaults(11, ScaleSmall)
	cfg.LayoutsPerStage = 1
	cfg.EvalLayouts = 2
	cfg.MCTSIterations = 8
	m, err := MeasureSpeedups(Options{Seed: 11, Selector: testSelector(t), Out: &buf}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.OneShotAvg <= 0 || m.SequentialAvg <= 0 {
		t.Error("no inference times recorded")
	}
	// Wall-clock ratios are too noisy for CI assertions on tiny layouts;
	// the mechanism (1 vs n-2 inferences) is asserted in the core package
	// tests, so here only positivity matters.
	if m.InferenceSpeedup <= 0 {
		t.Errorf("inference speedup = %v, expected > 0", m.InferenceSpeedup)
	}
	if m.CombinatorialPerSample <= 0 || m.ConventionalPerSample <= 0 {
		t.Error("no sample generation times recorded")
	}
	if !strings.Contains(buf.String(), "Sample generation") {
		t.Error("missing printed summary")
	}
}

func TestEvaluateModel(t *testing.T) {
	if testing.Short() {
		t.Skip("model eval is slow")
	}
	var buf bytes.Buffer
	opts := Options{Seed: 10, Selector: testSelector(t), Out: &buf}
	spec := layoutSpecForEval()
	res, err := EvaluateModel(opts, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.STtoMST.N != 3 {
		t.Errorf("ST/MST n = %d", res.STtoMST.N)
	}
	if res.STtoMST.Mean <= 0 {
		t.Error("non-positive ST/MST mean")
	}
	if res.WinVsLin18.N != 3 || res.ImprovedLayouts.N != 3 {
		t.Error("rates not accumulated")
	}
	if !strings.Contains(buf.String(), "model eval") {
		t.Error("missing printed summary")
	}
}

func layoutSpecForEval() layout.RandomSpec {
	return layout.RandomSpec{
		H: 8, V: 8, MinM: 2, MaxM: 2,
		MinPins: 4, MaxPins: 4, MinObstacles: 4, MaxObstacles: 4,
	}
}

func TestQuickSelectorDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("quick training is slow")
	}
	a, err := QuickSelector(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := QuickSelector(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	wa := a.Net.Params()[0].W.Data
	wb := b.Net.Params()[0].W.Data
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("QuickSelector not deterministic")
		}
	}
}
