package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"oarsmt/internal/core"
	"oarsmt/internal/layout"
	"oarsmt/internal/mcts"
	"oarsmt/internal/mctsconv"
	"oarsmt/internal/nn"
	"oarsmt/internal/ppo"
	"oarsmt/internal/rl"
	"oarsmt/internal/selector"
)

// TrainerKind identifies one of the three policy-optimization schemes
// compared in the paper's §4.2.
type TrainerKind int

const (
	// Combinatorial is the paper's combinatorial MCTS (ours).
	Combinatorial TrainerKind = iota
	// AlphaGoLike is conventional MCTS with per-move visit-count labels.
	AlphaGoLike
	// PPOKind is the PPO-trained sequential selector.
	PPOKind
)

// String implements fmt.Stringer.
func (k TrainerKind) String() string {
	switch k {
	case Combinatorial:
		return "ours (combinatorial MCTS)"
	case AlphaGoLike:
		return "AlphaGo-like MCTS"
	case PPOKind:
		return "PPO"
	default:
		return fmt.Sprintf("TrainerKind(%d)", int(k))
	}
}

// TrainingPoint is one checkpoint of a training curve: the cumulative
// training time after a stage and the average ST-to-MST ratios on the two
// evaluation sets of Fig 11/12 — (a) pin counts inside the training range
// and (b) pin counts beyond it.
type TrainingPoint struct {
	Stage        int
	TrainTime    time.Duration
	RatioInRange float64
	RatioBeyond  float64
}

// TrainingCurve is one router's training trajectory.
type TrainingCurve struct {
	Kind   TrainerKind
	Points []TrainingPoint
}

// FigTrainingConfig parameterises a Fig 11/12 run.
type FigTrainingConfig struct {
	Size   layout.TrainingSize
	Stages int
	// LayoutsPerStage is the number of training layouts per stage.
	LayoutsPerStage int
	// MCTSIterations is the per-move α of both MCTS trainers.
	MCTSIterations int
	// EvalLayouts is the number of evaluation layouts per pin count range.
	EvalLayouts int
	// InRangePins and BeyondPins are the [lo, hi] pin ranges of the two
	// evaluation sets (paper: 3~6 and 7~12).
	InRangePins [2]int
	BeyondPins  [2]int
}

// FigTrainingDefaults returns the Fig 11 (fig=11) or Fig 12 (fig=12)
// configuration for a scale. The paper trains on 24x24x4 (Fig 11) and
// 32x32x4 (Fig 12); smaller scales shrink the layouts and budgets but
// keep the three-way comparison identical in structure.
func FigTrainingDefaults(fig int, s Scale) FigTrainingConfig {
	cfg := FigTrainingConfig{
		InRangePins: [2]int{3, 6},
		BeyondPins:  [2]int{7, 12},
	}
	switch s {
	case ScaleSmall:
		cfg.Size = layout.TrainingSize{HV: 8, M: 2}
		if fig == 12 {
			cfg.Size = layout.TrainingSize{HV: 10, M: 2}
		}
		cfg.Stages, cfg.LayoutsPerStage, cfg.MCTSIterations, cfg.EvalLayouts = 3, 3, 64, 6
		cfg.InRangePins = [2]int{3, 5}
		cfg.BeyondPins = [2]int{6, 8}
	case ScaleMedium:
		cfg.Size = layout.TrainingSize{HV: 16, M: 4}
		if fig == 12 {
			cfg.Size = layout.TrainingSize{HV: 24, M: 4}
		}
		cfg.Stages, cfg.LayoutsPerStage, cfg.MCTSIterations, cfg.EvalLayouts = 4, 4, 24, 10
	default:
		cfg.Size = layout.TrainingSize{HV: 24, M: 4}
		if fig == 12 {
			cfg.Size = layout.TrainingSize{HV: 32, M: 4}
		}
		cfg.Stages, cfg.LayoutsPerStage, cfg.MCTSIterations, cfg.EvalLayouts = 32, 1000, 2000, 10000
	}
	return cfg
}

// TrainingComparison trains the three routers on fixed-size layouts and
// evaluates the average ST-to-MST ratio after every stage (paper Fig 11
// and Fig 12). All three agents start from identical network weights.
func TrainingComparison(opts Options, cfg FigTrainingConfig) ([]TrainingCurve, error) {
	evalIn, err := evalSet(opts.seed()+100, cfg.Size, cfg.InRangePins, cfg.EvalLayouts)
	if err != nil {
		return nil, err
	}
	evalBeyond, err := evalSet(opts.seed()+200, cfg.Size, cfg.BeyondPins, cfg.EvalLayouts)
	if err != nil {
		return nil, err
	}

	netCfg := nn.UNetConfig{InChannels: selector.NumFeatures, Base: 4, Depth: 2, Kernel: 3}
	newSel := func() (*selector.Selector, error) {
		return selector.NewRandom(rand.New(rand.NewSource(opts.seed())), netCfg)
	}

	w := opts.out()
	fmt.Fprintf(w, "Fig 11/12-style training comparison on %dx%dx%d layouts (scale=%v)\n",
		cfg.Size.HV, cfg.Size.HV, cfg.Size.M, opts.Scale)

	var curves []TrainingCurve
	for _, kind := range []TrainerKind{Combinatorial, AlphaGoLike, PPOKind} {
		sel, err := newSel()
		if err != nil {
			return nil, err
		}
		runStage, err := stageRunner(kind, sel, cfg, opts.seed())
		if err != nil {
			return nil, err
		}
		mode := core.Sequential
		if kind == Combinatorial {
			mode = core.OneShot
		}
		curve := TrainingCurve{Kind: kind}
		var elapsed time.Duration
		for stage := 1; stage <= cfg.Stages; stage++ {
			start := time.Now()
			if err := runStage(); err != nil {
				return nil, fmt.Errorf("experiments: %v stage %d: %w", kind, stage, err)
			}
			elapsed += time.Since(start)
			rIn, err := avgSTtoMST(opts.Context(), sel, mode, evalIn)
			if err != nil {
				return nil, err
			}
			rBeyond, err := avgSTtoMST(opts.Context(), sel, mode, evalBeyond)
			if err != nil {
				return nil, err
			}
			pt := TrainingPoint{Stage: stage, TrainTime: elapsed, RatioInRange: rIn, RatioBeyond: rBeyond}
			curve.Points = append(curve.Points, pt)
			fmt.Fprintf(w, "%-28s stage %2d  t=%8.2fs  ST/MST %d~%d-pin: %.4f  %d~%d-pin: %.4f\n",
				kind, stage, elapsed.Seconds(),
				cfg.InRangePins[0], cfg.InRangePins[1], rIn,
				cfg.BeyondPins[0], cfg.BeyondPins[1], rBeyond)
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// stageRunner adapts the three trainers to a common per-stage call.
func stageRunner(kind TrainerKind, sel *selector.Selector, cfg FigTrainingConfig, seed int64) (func() error, error) {
	sizes := []layout.TrainingSize{cfg.Size}
	switch kind {
	case Combinatorial:
		tr := rl.NewTrainer(sel, rl.Config{
			Sizes:            sizes,
			LayoutsPerSize:   cfg.LayoutsPerStage,
			MinPins:          cfg.InRangePins[0],
			MaxPins:          cfg.InRangePins[1],
			CurriculumStages: 0,
			MCTS:             mcts.Config{Iterations: cfg.MCTSIterations, UseCritic: true, CPuct: 1, MaxNoChange: 3},
			Augment:          false,
			BatchSize:        16,
			EpochsPerStage:   2,
			LR:               2e-3,
			Seed:             seed,
		})
		return func() error { _, err := tr.RunStage(); return err }, nil
	case AlphaGoLike:
		tr := mctsconv.NewTrainer(sel, mctsconv.TrainerConfig{
			Sizes:          sizes,
			LayoutsPerSize: cfg.LayoutsPerStage,
			MinPins:        cfg.InRangePins[0],
			MaxPins:        cfg.InRangePins[1],
			MCTS:           mctsconv.Config{Iterations: cfg.MCTSIterations, UseCritic: true, CPuct: 1, MaxNoChange: 3},
			BatchSize:      16,
			EpochsPerStage: 2,
			LR:             2e-3,
			Seed:           seed,
		})
		return func() error { _, err := tr.RunStage(); return err }, nil
	case PPOKind:
		tr := ppo.NewTrainer(sel, ppo.Config{
			Sizes:          sizes,
			LayoutsPerSize: cfg.LayoutsPerStage,
			MinPins:        cfg.InRangePins[0],
			MaxPins:        cfg.InRangePins[1],
			Epochs:         2,
			EntropyCoef:    0.01,
			LR:             1e-3,
			ValueLR:        1e-3,
			ValueHidden:    4,
			Seed:           seed,
		})
		return func() error { _, err := tr.RunStage(); return err }, nil
	default:
		return nil, fmt.Errorf("experiments: unknown trainer kind %v", kind)
	}
}

func evalSet(seed int64, size layout.TrainingSize, pins [2]int, n int) ([]*layout.Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	spec := layout.TrainingSpec(size, pins[0], pins[1])
	out := make([]*layout.Instance, 0, n)
	for i := 0; i < n; i++ {
		in, err := layout.Random(rng, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

// avgSTtoMST evaluates the unguarded ST-to-MST ratio — the learning-quality
// metric of Fig 11/12, where a ratio above 1 genuinely signals a selector
// that hurts — averaged over the evaluation set.
func avgSTtoMST(ctx context.Context, sel *selector.Selector, mode core.InferenceMode, evals []*layout.Instance) (float64, error) {
	// No guard and no retracing: the metric isolates what the *selected
	// Steiner points* buy over the plain spanning tree, as in the paper.
	r := &core.Router{Selector: sel, Mode: mode, GuardedAcceptance: false, RetracePasses: 0}
	sum := 0.0
	for _, in := range evals {
		ratio, err := r.STtoMSTRatio(ctx, in)
		if err != nil {
			return 0, err
		}
		sum += ratio
	}
	if len(evals) == 0 {
		return 0, nil
	}
	return sum / float64(len(evals)), nil
}

// SpeedupMetrics reports the two §4.2 headline speedups: one-shot vs
// sequential inference time, and combinatorial vs conventional MCTS
// sample-generation time.
type SpeedupMetrics struct {
	InferenceSpeedup       float64
	SampleGenSpeedup       float64
	OneShotAvg             time.Duration
	SequentialAvg          time.Duration
	CombinatorialPerSample time.Duration
	ConventionalPerSample  time.Duration
}

// MeasureSpeedups measures the §4.2 speedup claims at the given scale.
func MeasureSpeedups(opts Options, cfg FigTrainingConfig) (*SpeedupMetrics, error) {
	sel, err := opts.selectorOrQuick()
	if err != nil {
		return nil, err
	}
	evals, err := evalSet(opts.seed()+300, cfg.Size, cfg.BeyondPins, cfg.EvalLayouts)
	if err != nil {
		return nil, err
	}
	ctx := opts.Context()
	m := &SpeedupMetrics{}

	oneShot := &core.Router{Selector: sel, Mode: core.OneShot}
	seq := &core.Router{Selector: sel, Mode: core.Sequential}
	for _, in := range evals {
		r1, err := oneShot.Route(ctx, in)
		if err != nil {
			return nil, err
		}
		r2, err := seq.Route(ctx, in)
		if err != nil {
			return nil, err
		}
		m.OneShotAvg += r1.SelectTime
		m.SequentialAvg += r2.SelectTime
	}
	if n := time.Duration(len(evals)); n > 0 {
		m.OneShotAvg /= n
		m.SequentialAvg /= n
	}
	if m.OneShotAvg > 0 {
		m.InferenceSpeedup = float64(m.SequentialAvg) / float64(m.OneShotAvg)
	}

	// Sample-generation comparison with identical budgets.
	combTr := rl.NewTrainer(sel, rl.Config{
		Sizes:            []layout.TrainingSize{cfg.Size},
		LayoutsPerSize:   cfg.LayoutsPerStage,
		MinPins:          cfg.InRangePins[0],
		MaxPins:          cfg.InRangePins[1],
		CurriculumStages: 0,
		MCTS:             mcts.Config{Iterations: cfg.MCTSIterations, UseCritic: true},
		Seed:             opts.seed(),
	})
	start := time.Now()
	combSamples, _, err := combTr.GenerateSamples()
	if err != nil {
		return nil, err
	}
	combElapsed := time.Since(start)
	if len(combSamples) > 0 {
		m.CombinatorialPerSample = combElapsed / time.Duration(len(combSamples))
	}

	convTr := mctsconv.NewTrainer(sel, mctsconv.TrainerConfig{
		Sizes:          []layout.TrainingSize{cfg.Size},
		LayoutsPerSize: cfg.LayoutsPerStage,
		MinPins:        cfg.InRangePins[0],
		MaxPins:        cfg.InRangePins[1],
		MCTS:           mctsconv.Config{Iterations: cfg.MCTSIterations, UseCritic: true},
		Seed:           opts.seed(),
	})
	start = time.Now()
	_, convStats, err := convTr.GenerateSamples()
	if err != nil {
		return nil, err
	}
	convElapsed := time.Since(start)
	// Conventional MCTS produces one sample per move but one *episode*
	// label set per layout; normalise per episode for a fair comparison.
	if convStats.Episodes > 0 {
		m.ConventionalPerSample = convElapsed / time.Duration(convStats.Episodes)
	}
	if m.CombinatorialPerSample > 0 {
		m.SampleGenSpeedup = float64(m.ConventionalPerSample) / float64(m.CombinatorialPerSample)
	}

	w := opts.out()
	fmt.Fprintf(w, "Inference: one-shot %v vs sequential %v (speedup %.2fx)\n",
		m.OneShotAvg, m.SequentialAvg, m.InferenceSpeedup)
	fmt.Fprintf(w, "Sample generation: combinatorial %v/sample vs conventional %v/episode (speedup %.2fx)\n",
		m.CombinatorialPerSample, m.ConventionalPerSample, m.SampleGenSpeedup)
	return m, nil
}
