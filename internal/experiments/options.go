// Package experiments regenerates every table and figure of the paper's
// evaluation section (Tables 1-4, Figures 10-12) plus the ablation studies
// called out in DESIGN.md. Each experiment prints rows in the paper's
// format and returns the structured data behind them.
//
// Because the original experiments ran for days on a GPU server, every
// experiment takes a Scale that controls layout counts and training
// budgets; the structure of each experiment (workloads, comparisons,
// metrics) never changes with scale. EXPERIMENTS.md records the measured
// small-scale numbers next to the paper's.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"oarsmt/internal/layout"
	"oarsmt/internal/mcts"
	"oarsmt/internal/models"
	"oarsmt/internal/nn"
	"oarsmt/internal/rl"
	"oarsmt/internal/selector"
)

// Scale selects the compute budget of an experiment.
type Scale int

const (
	// ScaleSmall finishes each experiment in seconds to minutes on one
	// CPU core; used by the test suite and benchmarks.
	ScaleSmall Scale = iota
	// ScaleMedium takes minutes to tens of minutes per experiment.
	ScaleMedium
	// ScalePaper uses the paper's own layout counts and sizes; impractical
	// without days of compute, but available for completeness.
	ScalePaper
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale parses "small", "medium" or "paper".
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want small, medium or paper)", s)
	}
}

// Options configures an experiment run.
type Options struct {
	Scale Scale
	Seed  int64
	// Selector is the trained Steiner-point selector driving "ours". When
	// nil, QuickSelector trains a small one on the fly (deterministic).
	Selector *selector.Selector
	// Out receives the printed table; nil discards it.
	Out io.Writer
	// Workers bounds the parallel layout evaluations of RunComparison;
	// values below 1 mean GOMAXPROCS. Each worker gets a private copy of
	// the selector (the network caches activations between Forward and
	// Backward, so one instance must never run concurrently). Per-layout
	// results are identical at any worker count; only wall-clock changes —
	// but the *measured runtimes* of Table 3 are only meaningful at
	// Workers = 1, so the harness forces serial evaluation when timing.
	Workers int
	// Ctx bounds the run and carries observability sinks (obs.With); nil
	// means context.Background(). Cancellation aborts mid-experiment with
	// the routing error.
	Ctx context.Context
}

// Context returns the run's context, defaulting to context.Background().
func (o Options) Context() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// QuickSelector trains a compact selector with a small combinatorial-MCTS
// budget — enough for the experiment harness to exercise the full trained
// pipeline deterministically when no externally trained model is supplied.
func QuickSelector(seed int64, stages int) (*selector.Selector, error) {
	sel, err := selector.NewRandom(rand.New(rand.NewSource(seed)), nn.UNetConfig{
		InChannels: selector.NumFeatures, Base: 6, Depth: 2, Kernel: 3,
	})
	if err != nil {
		return nil, err
	}
	cfg := rl.Config{
		Sizes:            []layout.TrainingSize{{HV: 8, M: 2}, {HV: 12, M: 2}},
		LayoutsPerSize:   3,
		MinPins:          3,
		MaxPins:          6,
		CurriculumStages: 2,
		MCTS:             mcts.Config{Iterations: 16, UseCritic: true, CPuct: 1, MaxNoChange: 3},
		Augment:          true,
		BatchSize:        32,
		EpochsPerStage:   2,
		LR:               2e-3,
		Seed:             seed,
	}
	tr := rl.NewTrainer(sel, cfg)
	for i := 0; i < stages; i++ {
		if _, err := tr.RunStage(); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

// selectorOrQuick returns the configured selector, falling back to the
// repository's embedded pretrained model and finally to a quick-trained
// one.
func (o Options) selectorOrQuick() (*selector.Selector, error) {
	if o.Selector != nil {
		return o.Selector, nil
	}
	if sel, err := models.Pretrained(); err == nil {
		return sel, nil
	}
	return QuickSelector(o.seed(), 3)
}
