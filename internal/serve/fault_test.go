package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
)

// TestServeDegradesUnderSelectorFault is the serving acceptance test: with
// selector.infer failing at 100% (past the retry budget), every request is
// still answered with a valid plain-OARMST route flagged degraded:true,
// the serve.degraded counter ticks, the daemon never crashes — and when
// the fault clears, responses return to normal inference (the degraded
// answers must not have poisoned the cache).
func TestServeDegradesUnderSelectorFault(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	var slept []time.Duration
	s := newTestService(t, Config{
		MaxRetries: 2,
		sleep:      func(d time.Duration) { slept = append(slept, d) },
	})
	in := serveInstance(t, 42, 6, 6, 2, 5)

	fault.Set("selector.infer", fault.Options{Mode: fault.Error})
	resp, err := s.Submit(context.Background(), in)
	if err != nil {
		t.Fatalf("submit under 100%% selector fault failed: %v", err)
	}
	if !resp.Degraded {
		t.Error("response not flagged degraded")
	}
	if resp.UsedSteiner || len(resp.SteinerPoints) != 0 {
		t.Errorf("degraded response claims Steiner points: %+v", resp)
	}
	if resp.Cost <= 0 || resp.NumEdges == 0 {
		t.Errorf("degraded response is not a valid route: %+v", resp)
	}
	// The retry budget was spent, on the documented deterministic schedule.
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Errorf("backoff schedule %v, want [1ms 2ms]", slept)
	}
	st := s.Stats()
	if st.Degraded != 1 || st.Retries != 2 {
		t.Errorf("stats degraded=%d retries=%d, want 1 and 2", st.Degraded, st.Retries)
	}

	// Clear the fault: the same layout must now route with real inference
	// — a degraded entry in the cache would keep answering degraded.
	fault.Reset()
	resp, err = s.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Error("service still degraded after the fault cleared (cache poisoned?)")
	}
	if resp.CacheHit {
		t.Error("degraded result was served from cache")
	}
	if s.Stats().Inferences == 0 {
		t.Error("no inference recorded after recovery")
	}
}

// TestRetryRecoversWithinBudget: a fault that fires once is absorbed by a
// retry — the answer is a normal (non-degraded) response.
func TestRetryRecoversWithinBudget(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	s := newTestService(t, Config{
		MaxRetries: 2,
		sleep:      func(time.Duration) {},
	})
	fault.Set("selector.infer", fault.Options{Mode: fault.Error, Times: 1})
	resp, err := s.Submit(context.Background(), serveInstance(t, 43, 6, 6, 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Error("one transient failure degraded the response despite the retry budget")
	}
	if st := s.Stats(); st.Retries != 1 {
		t.Errorf("retries = %d, want 1", st.Retries)
	}
}

// TestInjectedPanicContained: a panic at the inference point answers the
// request with ErrInternal (HTTP 500) and leaves the scheduler alive for
// the next request.
func TestInjectedPanicContained(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	s := newTestService(t, Config{})
	fault.Set("selector.infer", fault.Options{Mode: fault.Panic, Times: 1})

	_, err := s.Submit(context.Background(), serveInstance(t, 44, 6, 6, 2, 5))
	if !errors.Is(err, errs.ErrInternal) {
		t.Fatalf("panicked request returned %v, want ErrInternal", err)
	}
	// The daemon survived: the next submit routes normally.
	resp, err := s.Submit(context.Background(), serveInstance(t, 45, 6, 6, 2, 5))
	if err != nil || resp.Degraded {
		t.Fatalf("service dead or degraded after contained panic: resp=%+v err=%v", resp, err)
	}
}

// TestEnqueueFaultShedsRetryably: an injected failure at serve.enqueue is
// shed as a transient (retryable) error, and admission recovers when the
// fault clears.
func TestEnqueueFaultShedsRetryably(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	s := newTestService(t, Config{CacheSize: -1})
	in := serveInstance(t, 46, 6, 6, 2, 4)

	fault.Set("serve.enqueue", fault.Options{Mode: fault.Error, Times: 1})
	_, err := s.Submit(context.Background(), in)
	if !errors.Is(err, errs.ErrTransient) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("enqueue fault surfaced as %v, want transient injected", err)
	}
	if s.Stats().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", s.Stats().Rejected)
	}
	if _, err := s.Submit(context.Background(), in); err != nil {
		t.Fatalf("admission did not recover: %v", err)
	}
}

// TestHTTPFaultStatusCodes covers the wire mapping of the failure modes
// as the client package surfaces them: injected panic → ErrInternal with
// the daemon still answering, 100% inference fault → a successful
// response with Degraded:true and serve.degraded visible in the metrics,
// enqueue fault → ErrTransient (503 + Retry-After on the wire).
func TestHTTPFaultStatusCodes(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	_, cl := newTestServer(t, Config{CacheSize: -1, sleep: func(time.Duration) {}})
	ctx := context.Background()

	post := func() (*Response, error) {
		t.Helper()
		return cl.RouteJSON(ctx, []byte(smallLayoutJSON), nil)
	}

	fault.Set("selector.infer", fault.Options{Mode: fault.Panic, Times: 1})
	if _, err := post(); !errors.Is(err, errs.ErrInternal) {
		t.Errorf("panic request err = %v, want ErrInternal", err)
	}

	// Daemon alive; now a persistent error fault degrades with success.
	fault.Set("selector.infer", fault.Options{Mode: fault.Error})
	resp, err := post()
	if err != nil {
		t.Fatalf("degraded request failed: %v", err)
	}
	if !resp.Degraded {
		t.Error("degraded response not flagged on the wire")
	}
	fault.Clear("selector.infer")

	mtext, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mtext, "oarsmt_serve_degraded") {
		t.Error("metrics do not expose serve.degraded")
	}

	fault.Set("serve.enqueue", fault.Options{Mode: fault.Error, Times: 1})
	if _, err := post(); !errors.Is(err, errs.ErrTransient) {
		t.Errorf("enqueue fault err = %v, want ErrTransient", err)
	}

	// Everything cleared: healthy again.
	fault.Reset()
	if _, err := post(); err != nil {
		t.Errorf("post-recovery request failed: %v", err)
	}
}
