package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
)

// TestServeDegradesUnderSelectorFault is the serving acceptance test: with
// selector.infer failing at 100% (past the retry budget), every request is
// still answered with a valid plain-OARMST route flagged degraded:true,
// the serve.degraded counter ticks, the daemon never crashes — and when
// the fault clears, responses return to normal inference (the degraded
// answers must not have poisoned the cache).
func TestServeDegradesUnderSelectorFault(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	var slept []time.Duration
	s := newTestService(t, Config{
		MaxRetries: 2,
		sleep:      func(d time.Duration) { slept = append(slept, d) },
	})
	in := serveInstance(t, 42, 6, 6, 2, 5)

	fault.Set("selector.infer", fault.Options{Mode: fault.Error})
	resp, err := s.Submit(context.Background(), in)
	if err != nil {
		t.Fatalf("submit under 100%% selector fault failed: %v", err)
	}
	if !resp.Degraded {
		t.Error("response not flagged degraded")
	}
	if resp.UsedSteiner || len(resp.SteinerPoints) != 0 {
		t.Errorf("degraded response claims Steiner points: %+v", resp)
	}
	if resp.Cost <= 0 || resp.NumEdges == 0 {
		t.Errorf("degraded response is not a valid route: %+v", resp)
	}
	// The retry budget was spent, on the documented deterministic schedule.
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Errorf("backoff schedule %v, want [1ms 2ms]", slept)
	}
	st := s.Stats()
	if st.Degraded != 1 || st.Retries != 2 {
		t.Errorf("stats degraded=%d retries=%d, want 1 and 2", st.Degraded, st.Retries)
	}

	// Clear the fault: the same layout must now route with real inference
	// — a degraded entry in the cache would keep answering degraded.
	fault.Reset()
	resp, err = s.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Error("service still degraded after the fault cleared (cache poisoned?)")
	}
	if resp.CacheHit {
		t.Error("degraded result was served from cache")
	}
	if s.Stats().Inferences == 0 {
		t.Error("no inference recorded after recovery")
	}
}

// TestRetryRecoversWithinBudget: a fault that fires once is absorbed by a
// retry — the answer is a normal (non-degraded) response.
func TestRetryRecoversWithinBudget(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	s := newTestService(t, Config{
		MaxRetries: 2,
		sleep:      func(time.Duration) {},
	})
	fault.Set("selector.infer", fault.Options{Mode: fault.Error, Times: 1})
	resp, err := s.Submit(context.Background(), serveInstance(t, 43, 6, 6, 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Error("one transient failure degraded the response despite the retry budget")
	}
	if st := s.Stats(); st.Retries != 1 {
		t.Errorf("retries = %d, want 1", st.Retries)
	}
}

// TestInjectedPanicContained: a panic at the inference point answers the
// request with ErrInternal (HTTP 500) and leaves the scheduler alive for
// the next request.
func TestInjectedPanicContained(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	s := newTestService(t, Config{})
	fault.Set("selector.infer", fault.Options{Mode: fault.Panic, Times: 1})

	_, err := s.Submit(context.Background(), serveInstance(t, 44, 6, 6, 2, 5))
	if !errors.Is(err, errs.ErrInternal) {
		t.Fatalf("panicked request returned %v, want ErrInternal", err)
	}
	// The daemon survived: the next submit routes normally.
	resp, err := s.Submit(context.Background(), serveInstance(t, 45, 6, 6, 2, 5))
	if err != nil || resp.Degraded {
		t.Fatalf("service dead or degraded after contained panic: resp=%+v err=%v", resp, err)
	}
}

// TestEnqueueFaultShedsRetryably: an injected failure at serve.enqueue is
// shed as a transient (retryable) error, and admission recovers when the
// fault clears.
func TestEnqueueFaultShedsRetryably(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	s := newTestService(t, Config{CacheSize: -1})
	in := serveInstance(t, 46, 6, 6, 2, 4)

	fault.Set("serve.enqueue", fault.Options{Mode: fault.Error, Times: 1})
	_, err := s.Submit(context.Background(), in)
	if !errors.Is(err, errs.ErrTransient) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("enqueue fault surfaced as %v, want transient injected", err)
	}
	if s.Stats().Rejected != 1 {
		t.Errorf("rejected = %d, want 1", s.Stats().Rejected)
	}
	if _, err := s.Submit(context.Background(), in); err != nil {
		t.Fatalf("admission did not recover: %v", err)
	}
}

// TestHTTPFaultStatusCodes covers the wire mapping of the failure modes:
// injected panic → 500 with the daemon still answering, 100% inference
// fault → 200 with degraded:true and serve.degraded visible in /metrics,
// enqueue fault → 503 + Retry-After.
func TestHTTPFaultStatusCodes(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	_, srv := newTestServer(t, Config{CacheSize: -1, sleep: func(time.Duration) {}})

	post := func() *http.Response {
		t.Helper()
		res, err := http.Post(srv.URL+"/route", "application/json", strings.NewReader(smallLayoutJSON))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { res.Body.Close() })
		return res
	}

	fault.Set("selector.infer", fault.Options{Mode: fault.Panic, Times: 1})
	if res := post(); res.StatusCode != http.StatusInternalServerError {
		t.Errorf("panic request = %d, want 500", res.StatusCode)
	}

	// Daemon alive; now a persistent error fault degrades with 200.
	fault.Set("selector.infer", fault.Options{Mode: fault.Error})
	res := post()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("degraded request = %d, want 200", res.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Error("degraded response not flagged on the wire")
	}
	fault.Clear("selector.infer")

	mres, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	mtext, err := io.ReadAll(mres.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mtext), "oarsmt_serve_degraded") {
		t.Error("/metrics does not expose serve.degraded")
	}

	fault.Set("serve.enqueue", fault.Options{Mode: fault.Error, Times: 1})
	if res := post(); res.StatusCode != http.StatusServiceUnavailable || res.Header.Get("Retry-After") == "" {
		t.Errorf("enqueue fault = %d (Retry-After %q), want 503 with Retry-After", res.StatusCode, res.Header.Get("Retry-After"))
	}

	// Everything cleared: healthy again.
	fault.Reset()
	if res := post(); res.StatusCode != http.StatusOK {
		t.Errorf("post-recovery request = %d, want 200", res.StatusCode)
	}
}
