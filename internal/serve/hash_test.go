package serve

import (
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
)

// augmentInstance returns the instance viewed through the augmentation,
// the same construction rl.AugmentSample applies to training samples.
func augmentInstance(in *layout.Instance, a grid.Aug) *layout.Instance {
	g := in.Graph
	ng := a.Apply(g)
	pins := make([]grid.VertexID, len(in.Pins))
	for i, p := range in.Pins {
		pins[i] = ng.IndexOf(a.ApplyCoord(g.H, g.V, g.M, g.CoordOf(p)))
	}
	return &layout.Instance{Name: in.Name, Graph: ng, Pins: pins}
}

func serveInstance(t *testing.T, seed int64, h, v, m, pins int) *layout.Instance {
	t.Helper()
	in, err := layout.Random(rand.New(rand.NewSource(seed)), layout.RandomSpec{
		H: h, V: v, MinM: m, MaxM: m,
		MinPins: pins, MaxPins: pins,
		MinObstacles: 4, MaxObstacles: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestInverseAug checks inverseAug against every augmentation on every
// coordinate of an asymmetric grid: applying a then its inverse must be
// the identity.
func TestInverseAug(t *testing.T) {
	const h, v, m = 3, 5, 2
	for _, a := range grid.AllAugmentations() {
		inv := inverseAug(a)
		// Dimensions of the space a maps into.
		ah, av := h, v
		if a.Rot%2 == 1 {
			ah, av = v, h
		}
		for hh := 0; hh < h; hh++ {
			for vv := 0; vv < v; vv++ {
				for mm := 0; mm < m; mm++ {
					c := grid.Coord{H: hh, V: vv, M: mm}
					fwd := a.ApplyCoord(h, v, m, c)
					back := inv.ApplyCoord(ah, av, m, fwd)
					if back != c {
						t.Fatalf("aug %+v: %v -> %v -> %v, want identity", a, c, fwd, back)
					}
				}
			}
		}
	}
}

// TestCanonicalKeyInvariantUnderAugmentation is the point of the cache
// key: all 16 orientations of a layout share one key.
func TestCanonicalKeyInvariantUnderAugmentation(t *testing.T) {
	in := serveInstance(t, 11, 6, 8, 2, 5)
	key0, _ := canonicalize(in)
	for _, a := range grid.AllAugmentations() {
		key, _ := canonicalize(augmentInstance(in, a))
		if key != key0 {
			t.Fatalf("augmentation %+v changed the canonical key", a)
		}
	}
}

// TestCanonicalKeySeparatesLayouts guards against a degenerate hash:
// different layouts, and the same layout with different pins, must get
// different keys.
func TestCanonicalKeySeparatesLayouts(t *testing.T) {
	a := serveInstance(t, 1, 6, 6, 2, 4)
	b := serveInstance(t, 2, 6, 6, 2, 4)
	ka, _ := canonicalize(a)
	kb, _ := canonicalize(b)
	if ka == kb {
		t.Fatal("two random layouts share a canonical key")
	}
	c := &layout.Instance{Name: a.Name, Graph: a.Graph, Pins: a.Pins[:len(a.Pins)-1]}
	kc, _ := canonicalize(c)
	if kc == ka {
		t.Fatal("dropping a pin did not change the canonical key")
	}
}

// TestEntryRoundTripIdentity checks the cache entry round trip in the
// canonicalizing orientation: storing a routed tree and mapping it back
// into the same request orientation must reproduce the tree bit for bit.
func TestEntryRoundTripAllAugmentations(t *testing.T) {
	base := serveInstance(t, 21, 5, 7, 2, 4)
	for _, a := range grid.AllAugmentations() {
		in := augmentInstance(base, a)
		tree, err := plainTree(in)
		if err != nil {
			t.Fatal(err)
		}
		_, toCanon := canonicalize(in)
		e := entryFromTree(in, toCanon, tree, nil, false, 0)
		back, _, ok := treeFromEntry(in, toCanon, e)
		if !ok {
			t.Fatalf("orientation %+v: round trip rejected", a)
		}
		if back.Cost != tree.Cost {
			t.Fatalf("orientation %+v: cost %v -> %v, want bit-identical", a, tree.Cost, back.Cost)
		}
		if len(back.Edges) != len(tree.Edges) {
			t.Fatalf("orientation %+v: %d edges -> %d", a, len(tree.Edges), len(back.Edges))
		}
		for i := range tree.Edges {
			if back.Edges[i] != tree.Edges[i] {
				t.Fatalf("orientation %+v: edge %d changed", a, i)
			}
		}
	}
}
