package serve

import (
	"time"

	"oarsmt/internal/obs"
)

// metrics are the service's instruments, resolved once from a per-Service
// obs.Registry so two services in one process (tests, blue/green) never
// share state and the hot paths only touch atomics. The registry is also
// what GET /metrics exports; earlier revisions kept a bespoke atomic
// struct here whose snapshot raced batch completion.
type metrics struct {
	reg *obs.Registry

	submitted   *obs.Counter // requests accepted (queued or served from cache)
	completed   *obs.Counter // jobs answered successfully
	failed      *obs.Counter // jobs answered with an error
	rejected    *obs.Counter // submissions shed with ErrQueueFull (HTTP 429)
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	// cacheEvictions counts memory-LRU evictions (serve.cache.evictions):
	// previously the cache recycled entries silently, leaving cache
	// pressure invisible on /metrics.
	cacheEvictions *obs.Counter
	// storeServed counts requests answered from the persistent disk tier
	// after validation (the store's own store.hits counts index lookups).
	storeServed *obs.Counter
	batches     *obs.Counter // same-size groups processed
	batchedJobs *obs.Counter // jobs carried by those groups
	inferences  *obs.Counter // selector network inferences spent
	degraded    *obs.Counter // responses answered by the plain-OARMST fallback
	retries     *obs.Counter // transient-inference retries spent
	maxBatch    *obs.Gauge   // high-watermark of jobs per group
	latency     *obs.Histogram
}

// newMetrics builds the service registry. The queue/cache/uptime gauges
// are registered later by NewService: they close over the Service, which
// does not exist yet when its metrics field is initialized.
func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg:         reg,
		submitted:   reg.Counter("serve.submitted"),
		completed:   reg.Counter("serve.completed"),
		failed:      reg.Counter("serve.failed"),
		rejected:    reg.Counter("serve.rejected"),
		cacheHits:      reg.Counter("serve.cache_hits"),
		cacheMisses:    reg.Counter("serve.cache_misses"),
		cacheEvictions: reg.Counter("serve.cache.evictions"),
		storeServed:    reg.Counter("serve.store_served"),
		batches:     reg.Counter("serve.batches"),
		batchedJobs: reg.Counter("serve.batched_jobs"),
		inferences:  reg.Counter("serve.inferences"),
		degraded:    reg.Counter("serve.degraded"),
		retries:     reg.Counter("serve.retries"),
		maxBatch:    reg.Gauge("serve.max_batch"),
		latency:     reg.Histogram("serve.latency"),
	}
}

func (m *metrics) observeBatch(n int) {
	m.batches.Inc()
	m.batchedJobs.Add(int64(n))
	m.maxBatch.SetMax(int64(n))
}

// Stats is a point-in-time snapshot of the service's counters, shaped for
// the /stats endpoint.
type Stats struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	QueueDepth    int     `json:"queueDepth"`
	QueueCapacity int     `json:"queueCapacity"`
	// CacheEntries / CacheEvictions describe the memory tier; the Store*
	// fields mirror the persistent disk tier (zero when -store-dir is
	// unset), so /stats shows both tiers' sizes side by side.
	CacheEntries   int   `json:"cacheEntries"`
	CacheEvictions int64 `json:"cacheEvictions"`

	StoreEntries       int   `json:"storeEntries,omitempty"`
	StoreSegments      int   `json:"storeSegments,omitempty"`
	StoreHits          int64 `json:"storeHits,omitempty"`
	StoreMisses        int64 `json:"storeMisses,omitempty"`
	StoreServed        int64 `json:"storeServed,omitempty"`
	StoreWrites        int64 `json:"storeWrites,omitempty"`
	StoreCompactions   int64 `json:"storeCompactions,omitempty"`
	StoreInvalidations int64 `json:"storeInvalidations,omitempty"`
	StoreEvictions     int64 `json:"storeEvictions,omitempty"`

	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Inferences  int64 `json:"inferences"`
	Degraded    int64 `json:"degraded"`
	Retries     int64 `json:"retries"`

	Batches      int64   `json:"batches"`
	BatchedJobs  int64   `json:"batchedJobs"`
	MeanBatch    float64 `json:"meanBatch"`
	MaxBatch     int64   `json:"maxBatch"`
	CacheHitRate float64 `json:"cacheHitRate"`

	P50Millis float64 `json:"p50Millis"`
	P99Millis float64 `json:"p99Millis"`
}

// Stats returns a snapshot of the service's counters.
func (s *Service) Stats() Stats {
	m := s.m
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueSize,
		Submitted:     m.submitted.Load(),
		Completed:     m.completed.Load(),
		Failed:        m.failed.Load(),
		Rejected:      m.rejected.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		Inferences:    m.inferences.Load(),
		Degraded:      m.degraded.Load(),
		Retries:       m.retries.Load(),
		Batches:       m.batches.Load(),
		BatchedJobs:   m.batchedJobs.Load(),
		MaxBatch:      m.maxBatch.Load(),
		P50Millis:     float64(m.latency.Percentile(0.50).Microseconds()) / 1000,
		P99Millis:     float64(m.latency.Percentile(0.99).Microseconds()) / 1000,
	}
	st.CacheEvictions = m.cacheEvictions.Load()
	if s.cache != nil {
		st.CacheEntries = s.cache.len()
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.StoreEntries = ss.Entries
		st.StoreSegments = ss.Segments
		st.StoreHits = ss.Hits
		st.StoreMisses = ss.Misses
		st.StoreServed = m.storeServed.Load()
		st.StoreWrites = ss.Writes
		st.StoreCompactions = ss.Compactions
		st.StoreInvalidations = ss.Invalidations
		st.StoreEvictions = ss.Evictions
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.BatchedJobs) / float64(st.Batches)
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	return st
}
