package serve

import (
	"time"

	"oarsmt/internal/obs"
	"oarsmt/wire"
)

// metrics are the service's instruments, resolved once from a per-Service
// obs.Registry so two services in one process (tests, blue/green) never
// share state and the hot paths only touch atomics. The registry is also
// what GET /metrics exports; earlier revisions kept a bespoke atomic
// struct here whose snapshot raced batch completion.
type metrics struct {
	reg *obs.Registry

	submitted   *obs.Counter // requests accepted (queued or served from cache)
	completed   *obs.Counter // jobs answered successfully
	failed      *obs.Counter // jobs answered with an error
	rejected    *obs.Counter // submissions shed with ErrQueueFull (HTTP 429)
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	// cacheEvictions counts memory-LRU evictions (serve.cache.evictions):
	// previously the cache recycled entries silently, leaving cache
	// pressure invisible on /metrics.
	cacheEvictions *obs.Counter
	// storeServed counts requests answered from the persistent disk tier
	// after validation (the store's own store.hits counts index lookups).
	storeServed *obs.Counter
	batches     *obs.Counter // same-size groups processed
	batchedJobs *obs.Counter // jobs carried by those groups
	inferences  *obs.Counter // selector network inferences spent
	degraded    *obs.Counter // responses answered by the plain-OARMST fallback
	retries     *obs.Counter // transient-inference retries spent
	// replicated / replicateRejected count /v1/replicate installs accepted
	// and refused (validation failure, degraded payload, draining).
	replicated        *obs.Counter
	replicateRejected *obs.Counter
	maxBatch    *obs.Gauge   // high-watermark of jobs per group
	latency     *obs.Histogram
}

// newMetrics builds the service registry. The queue/cache/uptime gauges
// are registered later by NewService: they close over the Service, which
// does not exist yet when its metrics field is initialized.
func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg:         reg,
		submitted:   reg.Counter("serve.submitted"),
		completed:   reg.Counter("serve.completed"),
		failed:      reg.Counter("serve.failed"),
		rejected:    reg.Counter("serve.rejected"),
		cacheHits:      reg.Counter("serve.cache_hits"),
		cacheMisses:    reg.Counter("serve.cache_misses"),
		cacheEvictions: reg.Counter("serve.cache.evictions"),
		storeServed:    reg.Counter("serve.store_served"),
		batches:     reg.Counter("serve.batches"),
		batchedJobs: reg.Counter("serve.batched_jobs"),
		inferences:  reg.Counter("serve.inferences"),
		degraded:    reg.Counter("serve.degraded"),
		retries:     reg.Counter("serve.retries"),
		replicated:        reg.Counter("serve.replicated"),
		replicateRejected: reg.Counter("serve.replicate_rejected"),
		maxBatch:    reg.Gauge("serve.max_batch"),
		latency:     reg.Histogram("serve.latency"),
	}
}

func (m *metrics) observeBatch(n int) {
	m.batches.Inc()
	m.batchedJobs.Add(int64(n))
	m.maxBatch.SetMax(int64(n))
}

// Stats is a point-in-time snapshot of the service's counters, shaped for
// the /stats endpoint. It is the wire protocol's worker-stats message;
// the alias keeps in-repo call sites compiling while the authoritative
// definition lives in package wire.
type Stats = wire.Stats

// Stats returns a snapshot of the service's counters.
func (s *Service) Stats() Stats {
	m := s.m
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueSize,
		Submitted:     m.submitted.Load(),
		Completed:     m.completed.Load(),
		Failed:        m.failed.Load(),
		Rejected:      m.rejected.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		Inferences:    m.inferences.Load(),
		Degraded:      m.degraded.Load(),
		Retries:       m.retries.Load(),
		Replicated:        m.replicated.Load(),
		ReplicateRejected: m.replicateRejected.Load(),
		Batches:       m.batches.Load(),
		BatchedJobs:   m.batchedJobs.Load(),
		MaxBatch:      m.maxBatch.Load(),
		P50Millis:     float64(m.latency.Percentile(0.50).Microseconds()) / 1000,
		P99Millis:     float64(m.latency.Percentile(0.99).Microseconds()) / 1000,
	}
	st.CacheEvictions = m.cacheEvictions.Load()
	if s.cache != nil {
		st.CacheEntries = s.cache.len()
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.StoreEntries = ss.Entries
		st.StoreSegments = ss.Segments
		st.StoreHits = ss.Hits
		st.StoreMisses = ss.Misses
		st.StoreServed = m.storeServed.Load()
		st.StoreWrites = ss.Writes
		st.StoreCompactions = ss.Compactions
		st.StoreInvalidations = ss.Invalidations
		st.StoreEvictions = ss.Evictions
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.BatchedJobs) / float64(st.Batches)
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	return st
}
