package serve

import (
	"sync/atomic"
	"time"
)

// latBuckets is the number of power-of-two latency buckets: bucket i
// counts requests whose latency fell in [2^i µs, 2^(i+1) µs), which spans
// 1 µs up to ~35 minutes.
const latBuckets = 32

// latencyHist is a lock-free fixed-bucket latency histogram good enough
// for p50/p99 reporting; percentiles are upper bounds of the bucket the
// rank lands in, so they are conservative by at most 2x.
type latencyHist struct {
	counts [latBuckets]atomic.Int64
}

func (h *latencyHist) record(d time.Duration) {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < latBuckets-1 {
		us >>= 1
		b++
	}
	h.counts[b].Add(1)
}

// percentile returns an upper bound of the p-quantile (p in (0, 1]) of the
// recorded latencies, or 0 when nothing was recorded.
func (h *latencyHist) percentile(p float64) time.Duration {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return time.Duration(int64(1)<<uint(i+1)) * time.Microsecond
		}
	}
	return time.Duration(int64(1)<<uint(latBuckets)) * time.Microsecond
}

// counters are the service's expvar-style metrics. All fields are atomics;
// a consistent-enough snapshot is taken field by field.
type counters struct {
	submitted   atomic.Int64 // requests accepted (queued or served from cache)
	completed   atomic.Int64 // jobs answered successfully
	failed      atomic.Int64 // jobs answered with an error
	rejected    atomic.Int64 // submissions shed with ErrQueueFull (HTTP 429)
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	batches     atomic.Int64 // same-size groups processed
	batchedJobs atomic.Int64 // jobs carried by those groups
	maxBatch    atomic.Int64
	inferences  atomic.Int64 // selector network inferences spent
	lat         latencyHist
}

func (c *counters) observeBatch(n int) {
	c.batches.Add(1)
	c.batchedJobs.Add(int64(n))
	for {
		cur := c.maxBatch.Load()
		if int64(n) <= cur || c.maxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of the service's counters, shaped for
// the /stats endpoint.
type Stats struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	QueueDepth    int     `json:"queueDepth"`
	QueueCapacity int     `json:"queueCapacity"`
	CacheEntries  int     `json:"cacheEntries"`

	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Inferences  int64 `json:"inferences"`

	Batches      int64   `json:"batches"`
	BatchedJobs  int64   `json:"batchedJobs"`
	MeanBatch    float64 `json:"meanBatch"`
	MaxBatch     int64   `json:"maxBatch"`
	CacheHitRate float64 `json:"cacheHitRate"`

	P50Millis float64 `json:"p50Millis"`
	P99Millis float64 `json:"p99Millis"`
}
