package serve

import (
	"time"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/store"
)

// This file is the adapter between the service's in-memory cache tier and
// the persistent route store (internal/store). The two tiers share one
// canonical-space representation: cacheEntry in memory, store.Record on
// disk, both keyed by the augmentation-normalized canonical layout hash,
// so promotion between tiers is a field-by-field copy and never re-routes.

// recordFromEntry shapes a canonical-space cache entry into its stored
// form. The slices are shared, not copied: entries are immutable once
// built.
func recordFromEntry(key cacheKey, e *cacheEntry) *store.Record {
	return &store.Record{
		Key:         store.Key(key),
		H:           e.h,
		V:           e.v,
		M:           e.m,
		Root:        e.root,
		Edges:       e.edges,
		Steiner:     e.steiner,
		UsedSteiner: e.usedSteiner,
		Proposed:    e.proposed,
		Cost:        e.cost,
	}
}

// entryFromRecord is the inverse mapping, for records loaded from disk.
func entryFromRecord(r *store.Record) *cacheEntry {
	return &cacheEntry{
		h:           r.H,
		v:           r.V,
		m:           r.M,
		root:        r.Root,
		edges:       r.Edges,
		steiner:     r.Steiner,
		usedSteiner: r.UsedSteiner,
		proposed:    r.Proposed,
		cost:        r.Cost,
	}
}

// lookupStore serves a request from the disk tier: the record is replayed
// through the same treeFromEntry Validate path as a memory hit, so a
// corrupt or hash-colliding record degrades to a miss (and is dropped from
// the store) rather than ever answering with a wrong tree. A validated hit
// is promoted into the memory LRU so the segment is only replayed once per
// process lifetime.
func (s *Service) lookupStore(in *layout.Instance, key cacheKey, toCanon grid.Aug, start time.Time) (*Response, bool) {
	rec, ok := s.store.Get(store.Key(key))
	if !ok {
		return nil, false
	}
	e := entryFromRecord(rec)
	tree, steiner, ok := treeFromEntry(in, toCanon, e)
	if !ok {
		s.store.Drop(store.Key(key))
		return nil, false
	}
	if s.cache != nil {
		s.cache.add(key, e)
	}
	s.m.storeServed.Inc()
	s.m.submitted.Inc()
	s.m.completed.Inc()
	resp := s.buildResponse(in, tree, steiner, e.usedSteiner, e.proposed, start)
	resp.CacheHit = true
	resp.StoreHit = true
	s.m.latency.Observe(time.Since(start))
	return resp, true
}

// storePut persists a freshly routed canonical entry; a nil store or a
// degraded result is a no-op (degraded trees must never be cached, in
// memory or on disk).
func (s *Service) storePut(key cacheKey, e *cacheEntry) {
	if s.store == nil {
		return
	}
	s.store.Put(recordFromEntry(key, e))
}
