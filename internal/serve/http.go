package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/internal/layout"
	"oarsmt/internal/obs"
	"oarsmt/wire"
)

// maxBodyBytes bounds a /route request body; layouts are JSON and even
// dense 256x256x4 obstacle grids fit comfortably.
const maxBodyBytes = 8 << 20

// Handler returns the service's HTTP surface — the versioned wire
// protocol plus the legacy unversioned aliases:
//
//	POST /v1/route    — route one layout (wire.RouteRequest envelope:
//	                    the layout plus timeoutMillis / edges fields)
//	GET  /v1/healthz  — 200 "ok" while serving, 503 "draining" after Close
//	GET  /v1/stats    — JSON counters snapshot (wire.Stats)
//	GET  /v1/metrics  — Prometheus text exposition: the service registry
//	                    followed by the process-wide obs.Default registry
//
//	POST /route       — deprecated alias: bare layout body, options as
//	                    ?timeout=250ms / ?edges=1 query parameters
//	GET  /healthz, /stats, /metrics — deprecated aliases of the /v1 twins
//
// Queue overflow maps to 429 with Retry-After; oversized or malformed
// layouts to 4xx; deadline expiry to 504. Every error body is a
// wire.Error carrying the sentinel code, so clients recover the exact
// sentinel with errors.Is however the error was wrapped (see
// wire.WriteError and the API.md table).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+wire.PathRoute, s.handleRouteV1)
	mux.HandleFunc("POST "+wire.PathReplicate, s.handleReplicate)
	mux.HandleFunc("GET "+wire.PathHealthz, s.handleHealthz)
	mux.HandleFunc("GET "+wire.PathStats, s.handleStats)
	mux.HandleFunc("GET "+wire.PathMetrics, s.handleMetrics)

	mux.HandleFunc("POST "+wire.LegacyPathRoute, s.handleRouteLegacy)
	mux.HandleFunc("GET "+wire.LegacyPathHealthz, deprecated(wire.PathHealthz, s.handleHealthz))
	mux.HandleFunc("GET "+wire.LegacyPathStats, deprecated(wire.PathStats, s.handleStats))
	mux.HandleFunc("GET "+wire.LegacyPathMetrics, deprecated(wire.PathMetrics, s.handleMetrics))
	return mux
}

// deprecated wraps a legacy alias handler: same behaviour, plus the
// deprecation header naming the versioned replacement.
func deprecated(replacement string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(wire.DeprecationHeader, replacement)
		h(w, r)
	}
}

// handleRouteV1 serves the typed protocol: a wire.RouteRequest envelope,
// with the per-request options as message fields. The legacy query
// parameters are still honoured when the envelope leaves them unset, so
// a half-migrated client can move the body and the options separately.
func (s *Service) handleRouteV1(w http.ResponseWriter, r *http.Request) {
	if err := wire.CheckProto(r); err != nil {
		wire.WriteError(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeBodyError(w, err)
		return
	}
	var req wire.RouteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		wire.WriteError(w, fmt.Errorf("%w: request envelope: %v", errs.ErrInvalidLayout, err))
		return
	}
	if len(req.Layout) == 0 {
		wire.WriteError(w, fmt.Errorf("%w: request envelope has no layout", errs.ErrInvalidLayout))
		return
	}
	in, err := layout.DecodeWithLimit(bytes.NewReader(req.Layout), s.cfg.MaxVolume)
	if err != nil {
		wire.WriteError(w, err)
		return
	}
	timeout := time.Duration(req.TimeoutMillis) * time.Millisecond
	if req.TimeoutMillis < 0 {
		wire.WriteErrorStatus(w, http.StatusBadRequest, "invalid_layout", "timeoutMillis: want >= 0")
		return
	}
	if timeout == 0 {
		if d, ok, qerr := legacyTimeout(r); qerr != nil {
			wire.WriteErrorStatus(w, http.StatusBadRequest, "invalid_layout", qerr.Error())
			return
		} else if ok {
			timeout = d
		}
	}
	edges := req.Edges || r.URL.Query().Get("edges") != ""
	s.serveRoute(w, r, in, timeout, edges)
}

// handleRouteLegacy serves the pre-protocol convention: the body is the
// bare layout, options are query parameters.
func (s *Service) handleRouteLegacy(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(wire.DeprecationHeader, wire.PathRoute)
	in, err := layout.DecodeWithLimit(http.MaxBytesReader(w, r.Body, maxBodyBytes), s.cfg.MaxVolume)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	var timeout time.Duration
	if d, ok, qerr := legacyTimeout(r); qerr != nil {
		wire.WriteErrorStatus(w, http.StatusBadRequest, "invalid_layout", qerr.Error())
		return
	} else if ok {
		timeout = d
	}
	s.serveRoute(w, r, in, timeout, r.URL.Query().Get("edges") != "")
}

// legacyTimeout parses the deprecated ?timeout= query parameter.
func legacyTimeout(r *http.Request) (time.Duration, bool, error) {
	tq := r.URL.Query().Get("timeout")
	if tq == "" {
		return 0, false, nil
	}
	d, err := time.ParseDuration(tq)
	if err != nil || d <= 0 {
		return 0, false, errors.New("timeout: want a positive duration like 250ms")
	}
	return d, true, nil
}

// writeBodyError maps a body-read or layout-decode failure, keeping the
// 413 for oversized bodies distinct from a 400 for malformed ones.
func writeBodyError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		wire.WriteError(w, fmt.Errorf("%w: request body too large", errs.ErrTooLarge))
		return
	}
	if !errors.Is(err, errs.ErrInvalidLayout) {
		err = fmt.Errorf("%w: %v", errs.ErrInvalidLayout, err)
	}
	wire.WriteError(w, err)
}

// serveRoute runs the shared submit path for both protocol generations.
func (s *Service) serveRoute(w http.ResponseWriter, r *http.Request, in *layout.Instance, timeout time.Duration, edges bool) {
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	resp, err := s.Submit(ctx, in)
	if err != nil {
		wire.WriteError(w, err)
		return
	}
	if !edges {
		resp.Edges = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	wire.SetProto(w.Header())
	if s.Closed() {
		wire.WriteError(w, fmt.Errorf("%w: draining", errs.ErrClosed))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics exposes the service registry followed by the process-wide
// default registry (route/core/mcts counters) in the Prometheus text
// format. Metric name sets are disjoint (serve.* vs route.*/core.*), so
// concatenating the expositions is well-formed.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	wire.SetProto(w.Header())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.m.reg.WritePrometheus(w); err != nil {
		return
	}
	obs.Default.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	wire.SetProto(w.Header())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
