package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/internal/layout"
	"oarsmt/internal/obs"
)

// maxBodyBytes bounds a /route request body; layouts are JSON and even
// dense 256x256x4 obstacle grids fit comfortably.
const maxBodyBytes = 8 << 20

// Handler returns the service's HTTP surface:
//
//	POST /route    — route one layout (JSON body, layout.Decode format);
//	                 query: timeout=250ms caps the request deadline,
//	                 edges=1 includes the routed tree in the response
//	GET  /healthz  — 200 "ok" while serving, 503 "draining" after Close
//	GET  /stats    — JSON counters snapshot (Stats)
//	GET  /metrics  — Prometheus text exposition: the service registry
//	                 followed by the process-wide obs.Default registry
//	                 (route/core search-volume counters)
//
// Queue overflow maps to 429 with Retry-After; oversized or malformed
// layouts to 4xx; deadline expiry to 504. Error classes are matched with
// errors.Is against the module sentinels (oarsmt.ErrQueueFull,
// oarsmt.ErrTimeout, ...), so wrapped errors map correctly.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /route", s.handleRoute)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Service) handleRoute(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	in, err := layout.DecodeWithLimit(body, s.cfg.MaxVolume)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx := r.Context()
	if tq := r.URL.Query().Get("timeout"); tq != "" {
		d, err := time.ParseDuration(tq)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "timeout: want a positive duration like 250ms")
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	resp, err := s.Submit(ctx, in)
	if err != nil {
		switch {
		case errors.Is(err, errs.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, ErrTooLarge):
			httpError(w, http.StatusRequestEntityTooLarge, err.Error())
		case errors.Is(err, errs.ErrInvalidLayout):
			httpError(w, http.StatusBadRequest, err.Error())
		case errors.Is(err, errs.ErrTimeout), errors.Is(err, context.Canceled):
			httpError(w, http.StatusGatewayTimeout, err.Error())
		case errors.Is(err, errs.ErrInternal):
			// A contained panic or exhausted retry budget: the daemon
			// itself is healthy, this request is not.
			httpError(w, http.StatusInternalServerError, err.Error())
		case errors.Is(err, errs.ErrTransient):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, errs.ErrInvalidModel):
			httpError(w, http.StatusUnprocessableEntity, err.Error())
		case errors.Is(err, errs.ErrNoPath):
			httpError(w, http.StatusUnprocessableEntity, err.Error())
		default:
			httpError(w, http.StatusUnprocessableEntity, err.Error())
		}
		return
	}
	if r.URL.Query().Get("edges") == "" {
		resp.Edges = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Closed() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics exposes the service registry followed by the process-wide
// default registry (route/core/mcts counters) in the Prometheus text
// format. Metric name sets are disjoint (serve.* vs route.*/core.*), so
// concatenating the expositions is well-formed.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.m.reg.WritePrometheus(w); err != nil {
		return
	}
	obs.Default.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
