package serve

import (
	"context"
	"math/rand"
	"testing"

	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

// The Store* benchmarks quantify the warm-restart value proposition for
// BENCH_store.json: a cold route pays inference + construction, a warm
// memory hit pays a map lookup + tree replay, and a warm disk hit (fresh
// process, store only) pays the same replay after one index lookup.

func benchSelector(b *testing.B) *selector.Selector {
	b.Helper()
	s, err := selector.NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchInstance(b *testing.B, seed int64) *layout.Instance {
	b.Helper()
	in, err := layout.Random(rand.New(rand.NewSource(seed)), layout.RandomSpec{
		H: 8, V: 8, MinM: 2, MaxM: 2,
		MinPins: 5, MaxPins: 5,
		MinObstacles: 4, MaxObstacles: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func benchService(b *testing.B, cfg Config) *Service {
	b.Helper()
	if cfg.Selector == nil {
		cfg.Selector = benchSelector(b)
	}
	s, err := NewService(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

// BenchmarkStoreColdRoute is the baseline: every request misses both tiers
// and runs inference + OARMST construction.
func BenchmarkStoreColdRoute(b *testing.B) {
	s := benchService(b, Config{CacheSize: -1})
	in := benchInstance(b, 1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(ctx, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWarmMemoryRoute serves every request from the memory LRU.
func BenchmarkStoreWarmMemoryRoute(b *testing.B) {
	s := benchService(b, Config{})
	in := benchInstance(b, 1)
	ctx := context.Background()
	if _, err := s.Submit(ctx, in); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Submit(ctx, in)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkStoreWarmDiskRoute serves every request from the disk tier of a
// freshly restarted service: the memory LRU is disabled, so each request
// pays the store lookup + canonical replay — the steady-state latency of a
// layout a previous process routed.
func BenchmarkStoreWarmDiskRoute(b *testing.B) {
	dir := b.TempDir()
	sel := benchSelector(b)
	cold := benchService(b, Config{Selector: sel, StoreDir: dir})
	in := benchInstance(b, 1)
	ctx := context.Background()
	if _, err := cold.Submit(ctx, in); err != nil {
		b.Fatal(err)
	}
	cold.Close()

	warm := benchService(b, Config{Selector: sel, StoreDir: dir, CacheSize: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := warm.Submit(ctx, in)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.StoreHit {
			b.Fatal("expected a store hit")
		}
	}
}
