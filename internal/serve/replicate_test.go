package serve

import (
	"context"
	"errors"
	"strings"
	"testing"

	"oarsmt/client"
	"oarsmt/internal/errs"
	"oarsmt/internal/layout"
	"oarsmt/wire"
)

// replicateFixture routes one layout on a source worker (edges included)
// and stands up a second, cold worker to install it on, returning the
// cold worker's service, its client, and the routed response.
func replicateFixture(t *testing.T) (*Service, *client.Client, *wire.RouteResponse) {
	t.Helper()
	_, src := newTestServer(t, Config{})
	resp, err := src.RouteJSON(context.Background(), []byte(smallLayoutJSON), &client.RouteOptions{Edges: true})
	if err != nil {
		t.Fatal(err)
	}
	dst, dstCl := newTestServer(t, Config{})
	return dst, dstCl, resp
}

// TestReplicateInstallsWarm: a replicated route is installed into the
// receiving worker's cache and served warm — same cost, no inference —
// and a repeat install is declined as idempotent, not an error.
func TestReplicateInstallsWarm(t *testing.T) {
	_, dstCl, resp := replicateFixture(t)
	ctx := context.Background()

	inst, err := dstCl.Replicate(ctx, wire.ReplicateRequest{
		Layout: []byte(smallLayoutJSON), Response: *resp,
	})
	if err != nil {
		t.Fatalf("replicate: %v", err)
	}
	if !inst.Installed {
		t.Fatal("first replicate declined")
	}

	got, err := dstCl.RouteJSON(ctx, []byte(smallLayoutJSON), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit {
		t.Error("replicated layout served cold")
	}
	if got.Cost != resp.Cost {
		t.Errorf("replicated cost %v, want %v", got.Cost, resp.Cost)
	}

	again, err := dstCl.Replicate(ctx, wire.ReplicateRequest{
		Layout: []byte(smallLayoutJSON), Response: *resp,
	})
	if err != nil {
		t.Fatalf("repeat replicate: %v", err)
	}
	if again.Installed {
		t.Error("repeat replicate installed over an equivalent cached entry")
	}

	st, err := dstCl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replicated != 2 || st.ReplicateRejected != 0 {
		t.Errorf("stats replicated=%d rejected=%d, want 2/0", st.Replicated, st.ReplicateRejected)
	}
}

// TestReplicateNeverInstallsWrong is the safety half of replication: a
// payload whose tree does not validate against the layout — truncated,
// corrupted, or degraded — is rejected with ErrInvalidTree and never
// enters a cache tier.
func TestReplicateNeverInstallsWrong(t *testing.T) {
	_, dstCl, resp := replicateFixture(t)
	ctx := context.Background()

	truncated := *resp
	truncated.Edges = truncated.Edges[:len(truncated.Edges)-1]
	if _, err := dstCl.Replicate(ctx, wire.ReplicateRequest{
		Layout: []byte(smallLayoutJSON), Response: truncated,
	}); !errors.Is(err, errs.ErrInvalidTree) {
		t.Errorf("truncated tree = %v, want ErrInvalidTree", err)
	}

	skewed := *resp
	skewed.Edges = append([][2]wire.Coord3{}, resp.Edges...)
	skewed.Edges[0] = [2]wire.Coord3{{H: 0, V: 0, M: 0}, {H: 2, V: 2, M: 0}} // non-adjacent
	if _, err := dstCl.Replicate(ctx, wire.ReplicateRequest{
		Layout: []byte(smallLayoutJSON), Response: skewed,
	}); !errors.Is(err, errs.ErrInvalidTree) {
		t.Errorf("non-adjacent edge = %v, want ErrInvalidTree", err)
	}

	degraded := *resp
	degraded.Degraded = true
	if _, err := dstCl.Replicate(ctx, wire.ReplicateRequest{
		Layout: []byte(smallLayoutJSON), Response: degraded,
	}); !errors.Is(err, errs.ErrInvalidTree) {
		t.Errorf("degraded response = %v, want ErrInvalidTree", err)
	}

	// None of the rejected payloads warmed the cache.
	got, err := dstCl.RouteJSON(ctx, []byte(smallLayoutJSON), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.CacheHit {
		t.Error("a rejected replicate still warmed the cache")
	}
	st, err := dstCl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplicateRejected != 3 {
		t.Errorf("replicateRejected = %d, want 3", st.ReplicateRejected)
	}
}

// TestReplicateEnvelopeValidation: malformed envelopes are rejected at
// the HTTP layer with the invalid_layout contract.
func TestReplicateEnvelopeValidation(t *testing.T) {
	_, dstCl, resp := replicateFixture(t)
	ctx := context.Background()

	if _, err := dstCl.Replicate(ctx, wire.ReplicateRequest{Response: *resp}); !errors.Is(err, errs.ErrInvalidLayout) {
		t.Errorf("replicate without layout = %v, want ErrInvalidLayout", err)
	}
	if _, err := dstCl.Replicate(ctx, wire.ReplicateRequest{
		Layout: []byte(`{"grid":{}}`), Response: *resp,
	}); !errors.Is(err, errs.ErrInvalidLayout) {
		t.Errorf("replicate with malformed layout = %v, want ErrInvalidLayout", err)
	}
}

// TestInstallDirect: the embeddable Install API enforces the same
// contract without HTTP — closed services refuse, and a valid install
// round-trips through Submit's cache lookup.
func TestInstallDirect(t *testing.T) {
	_, src := newTestServer(t, Config{})
	resp, err := src.RouteJSON(context.Background(), []byte(smallLayoutJSON), &client.RouteOptions{Edges: true})
	if err != nil {
		t.Fatal(err)
	}
	in, err := layout.Decode(strings.NewReader(smallLayoutJSON))
	if err != nil {
		t.Fatal(err)
	}

	dst := newTestService(t, Config{})
	installed, err := dst.Install(in, resp)
	if err != nil || !installed {
		t.Fatalf("Install = (%v, %v), want (true, nil)", installed, err)
	}
	got, err := dst.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheHit || got.Cost != resp.Cost {
		t.Errorf("Submit after Install = cacheHit=%v cost=%v, want warm cost %v", got.CacheHit, got.Cost, resp.Cost)
	}

	if _, err := dst.Install(nil, resp); !errors.Is(err, errs.ErrInvalidLayout) {
		t.Errorf("Install(nil) = %v, want ErrInvalidLayout", err)
	}
	dst.Close()
	if _, err := dst.Install(in, resp); !errors.Is(err, ErrClosed) {
		t.Errorf("Install on closed service = %v, want ErrClosed", err)
	}
}
