package serve

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

// TestStoreWarmRestartBitIdentical is the route store's acceptance
// criterion: after the process "dies" (service closed, a new one opened
// over the same directory with the same model), every previously-routed
// layout is served from the disk tier bit-identically — same cost, same
// edges — with zero selector inferences, pinned by the obs counters.
func TestStoreWarmRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cold := newTestService(t, Config{Selector: tinySelector(t), StoreDir: dir})

	type routed struct {
		in    *layout.Instance
		cost  float64
		edges [][2]Coord3
	}
	var want []routed
	for i := 0; i < 6; i++ {
		in := serveInstance(t, int64(200+i), 6+i%3, 8, 2, 4+i%2)
		resp, err := cold.Submit(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StoreHit {
			t.Fatal("first routing of a layout reported a store hit")
		}
		want = append(want, routed{in: in, cost: resp.Cost, edges: resp.Edges})
	}
	cold.Close() // flushes pending store writes; stands in for the old process exiting
	if st := cold.Stats(); st.StoreWrites == 0 {
		t.Fatalf("no store writes recorded: %+v", st)
	}

	// "Restart": a brand-new service over the same directory, with a
	// selector rebuilt from the same seed — exactly what a daemon restart
	// loading the same model file does. The memory cache is disabled so
	// every answer must come off disk.
	warm := newTestService(t, Config{Selector: tinySelector(t), StoreDir: dir, CacheSize: -1})
	if st := warm.Stats(); st.StoreEntries != len(want) {
		t.Fatalf("warm store loaded %d entries, want %d", st.StoreEntries, len(want))
	}
	for i, w := range want {
		resp, err := warm.Submit(context.Background(), w.in)
		if err != nil {
			t.Fatalf("layout %d after restart: %v", i, err)
		}
		if !resp.StoreHit || !resp.CacheHit {
			t.Fatalf("layout %d: StoreHit=%v CacheHit=%v, want both", i, resp.StoreHit, resp.CacheHit)
		}
		if resp.Cost != w.cost {
			t.Errorf("layout %d: warm cost %v != cold cost %v", i, resp.Cost, w.cost)
		}
		if !reflect.DeepEqual(resp.Edges, w.edges) {
			t.Errorf("layout %d: warm tree differs from cold tree", i)
		}
	}
	st := warm.Stats()
	if st.Inferences != 0 {
		t.Fatalf("warm restart spent %d selector inferences, want 0", st.Inferences)
	}
	if st.StoreServed != int64(len(want)) {
		t.Errorf("storeServed = %d, want %d", st.StoreServed, len(want))
	}
}

// TestStoreFingerprintSwapInvalidates pins the staleness guarantee: a
// restart with a *different* selector (a retrained model) invalidates 100%
// of the stored routes — nothing is served from disk, everything is routed
// fresh with real inferences.
func TestStoreFingerprintSwapInvalidates(t *testing.T) {
	dir := t.TempDir()
	cold := newTestService(t, Config{Selector: tinySelector(t), StoreDir: dir})
	const n = 4
	ins := make([]*layout.Instance, n)
	for i := range ins {
		ins[i] = serveInstance(t, int64(300+i), 7, 7, 2, 5)
		if _, err := cold.Submit(context.Background(), ins[i]); err != nil {
			t.Fatal(err)
		}
	}
	cold.Close()

	warm := newTestService(t, Config{Selector: otherSelector(t), StoreDir: dir})
	st := warm.Stats()
	if st.StoreEntries != 0 {
		t.Fatalf("retrained-model restart kept %d stale entries", st.StoreEntries)
	}
	if st.StoreInvalidations != n {
		t.Fatalf("invalidations = %d, want %d (100%%)", st.StoreInvalidations, n)
	}
	for i, in := range ins {
		resp, err := warm.Submit(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StoreHit {
			t.Fatalf("layout %d served a stale route after a model swap", i)
		}
	}
	if warm.Stats().Inferences == 0 {
		t.Fatal("retrained-model restart spent no inferences: stale routes served")
	}
}

// TestStoreHitAcrossOrientationsAfterRestart: the disk tier is keyed by the
// augmentation-normalized hash, so after a restart every one of the 16
// orientations of a previously-routed layout is a store hit.
func TestStoreHitAcrossOrientationsAfterRestart(t *testing.T) {
	dir := t.TempDir()
	in := serveInstance(t, 77, 6, 8, 2, 5)

	cold := newTestService(t, Config{Selector: tinySelector(t), StoreDir: dir})
	if _, err := cold.Submit(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	cold.Close()

	warm := newTestService(t, Config{Selector: tinySelector(t), StoreDir: dir, CacheSize: -1})
	for _, a := range grid.AllAugmentations() {
		resp, err := warm.Submit(context.Background(), augmentInstance(in, a))
		if err != nil {
			t.Fatalf("orientation %+v: %v", a, err)
		}
		if !resp.StoreHit {
			t.Errorf("orientation %+v missed the store after restart", a)
		}
	}
	if got := warm.Stats().Inferences; got != 0 {
		t.Fatalf("warm orientations spent %d inferences, want 0", got)
	}
}

// TestCacheEvictionCounterAndTierSizes covers the new observability: the
// memory LRU's evictions surface on serve.cache.evictions / /stats, and
// both tiers' sizes appear side by side in the snapshot.
func TestCacheEvictionCounterAndTierSizes(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, Config{Selector: tinySelector(t), CacheSize: 2, StoreDir: dir})
	for i := 0; i < 5; i++ {
		if _, err := s.Submit(context.Background(), serveInstance(t, int64(400+i), 6, 6, 2, 4)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheEvictions != 3 { // 5 distinct layouts through a 2-entry LRU
		t.Errorf("cacheEvictions = %d, want 3", st.CacheEvictions)
	}
	if st.CacheEntries != 2 {
		t.Errorf("cacheEntries = %d, want 2", st.CacheEntries)
	}
	if st.StoreEntries != 5 { // disk tier is not bounded by the memory LRU
		t.Errorf("storeEntries = %d, want 5", st.StoreEntries)
	}
	// The canonical gauges are registered and live.
	snap := s.Registry().Snapshot()
	if got := snap.Gauges["serve.cache.size"]; got != 2 {
		t.Errorf("serve.cache.size gauge = %v, want 2", got)
	}
	if got := snap.Counters["serve.cache.evictions"]; got != 3 {
		t.Errorf("serve.cache.evictions counter = %v, want 3", got)
	}
	if got := snap.Gauges["store.entries"]; got != 5 {
		t.Errorf("store.entries gauge = %v, want 5", got)
	}
}

// otherSelector returns a selector with different weights than
// tinySelector's (a stand-in for a retrained model).
func otherSelector(t *testing.T) *selector.Selector {
	t.Helper()
	s, err := selector.NewRandom(rand.New(rand.NewSource(999)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}
