package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"oarsmt/internal/core"
	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/route"
	"oarsmt/internal/selector"
)

func tinySelector(t *testing.T) *selector.Selector {
	t.Helper()
	s, err := selector.NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func plainTree(in *layout.Instance) (*route.Tree, error) {
	return core.PlainOARMST(context.Background(), in)
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Selector == nil {
		cfg.Selector = tinySelector(t)
	}
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestParallelSubmitsMatchSerialCore is the service's central correctness
// claim, run under the race detector by make check: N concurrent requests
// over mixed layout sizes — with repeats, so batching, dedup and the cache
// all engage — must each return exactly the tree cost the serial
// internal/core router produces for that instance.
func TestParallelSubmitsMatchSerialCore(t *testing.T) {
	sel := tinySelector(t)

	// Mixed sizes so one drain holds several same-size groups.
	sizes := [][3]int{{8, 8, 2}, {6, 10, 2}, {5, 5, 3}}
	var ins []*layout.Instance
	var want []float64
	serial := core.NewRouter(sel)
	for i := 0; i < 12; i++ {
		sz := sizes[i%len(sizes)]
		in := serveInstance(t, int64(100+i), sz[0], sz[1], sz[2], 4+i%3)
		res, err := serial.Route(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		ins = append(ins, in)
		want = append(want, res.Tree.Cost)
	}

	s := newTestService(t, Config{Selector: sel, QueueSize: 128, MaxBatch: 8})

	const repeats = 4
	var wg sync.WaitGroup
	errs := make([]error, len(ins)*repeats)
	got := make([]float64, len(ins)*repeats)
	for rep := 0; rep < repeats; rep++ {
		for i := range ins {
			wg.Add(1)
			go func(slot, i int) {
				defer wg.Done()
				resp, err := s.Submit(context.Background(), ins[i])
				if err != nil {
					errs[slot] = err
					return
				}
				got[slot] = resp.Cost
			}(rep*len(ins)+i, i)
		}
	}
	wg.Wait()

	for slot, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", slot, err)
		}
	}
	for slot, cost := range got {
		if want[slot%len(ins)] != cost {
			t.Errorf("instance %d: served cost %v, serial core cost %v (want bit-identical)",
				slot%len(ins), cost, want[slot%len(ins)])
		}
	}

	st := s.Stats()
	if st.Completed != int64(len(ins)*repeats) {
		t.Errorf("completed = %d, want %d", st.Completed, len(ins)*repeats)
	}
	if st.Failed != 0 || st.Rejected != 0 {
		t.Errorf("failed = %d rejected = %d, want 0", st.Failed, st.Rejected)
	}
	// Each distinct layout needs at most one inference (3 of the 36 repeat
	// submissions may race past the cache, but dedup inside a batch and
	// the cache bound the total well below one per request).
	if st.Inferences >= int64(len(ins)*repeats) {
		t.Errorf("inferences = %d for %d requests over %d layouts: batching/caching not engaging",
			st.Inferences, len(ins)*repeats, len(ins))
	}

	// Everything is routed now, so one more submission of any layout is a
	// deterministic cache hit (in-flight repeats above may instead have
	// been deduped inside a batch, which is not a cache hit).
	resp, err := s.Submit(context.Background(), ins[0])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("post-drain repeat submission missed the cache")
	}
	if resp.Cost != want[0] {
		t.Errorf("cached cost %v, serial core cost %v", resp.Cost, want[0])
	}
}

// TestCacheHitServedWithoutReinference pins the cache acceptance
// criterion: a repeat submission is answered from the cache with zero
// additional selector inferences, bit-identical in cost.
func TestCacheHitServedWithoutReinference(t *testing.T) {
	s := newTestService(t, Config{Selector: tinySelector(t)})
	in := serveInstance(t, 7, 8, 8, 2, 5)

	first, err := s.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	infAfterFirst := s.Stats().Inferences

	second, err := s.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("repeat submission missed the cache")
	}
	if second.Cost != first.Cost {
		t.Fatalf("cached cost %v != first cost %v", second.Cost, first.Cost)
	}
	if got := s.Stats().Inferences; got != infAfterFirst {
		t.Fatalf("cache hit spent %d extra inferences", got-infAfterFirst)
	}
}

// TestCacheHitAcrossOrientations exercises augmentation normalization:
// after routing a layout once, every one of its 16 orientations is a
// cache hit, and the served cost matches the serial cost of that
// orientation up to float summation order.
func TestCacheHitAcrossOrientations(t *testing.T) {
	sel := tinySelector(t)
	in := serveInstance(t, 13, 6, 8, 2, 5)

	serial := core.NewRouter(sel)
	base, err := serial.Route(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	s := newTestService(t, Config{Selector: sel})
	if _, err := s.Submit(context.Background(), in); err != nil {
		t.Fatal(err)
	}

	for _, a := range grid.AllAugmentations() {
		rotated := augmentInstance(in, a)
		resp, err := s.Submit(context.Background(), rotated)
		if err != nil {
			t.Fatalf("orientation %+v: %v", a, err)
		}
		if !resp.CacheHit {
			t.Errorf("orientation %+v missed the cache", a)
		}
		if rel := math.Abs(resp.Cost-base.Tree.Cost) / base.Tree.Cost; rel > 1e-12 {
			t.Errorf("orientation %+v: cost %v, base %v (rel err %v)", a, resp.Cost, base.Tree.Cost, rel)
		}
	}
}

// TestQueueFullRejects holds the scheduler on the test gate so the queue
// deterministically fills: the overflowing submission must fail fast with
// ErrQueueFull.
func TestQueueFullRejects(t *testing.T) {
	gate := make(chan struct{})
	s := newTestService(t, Config{Selector: tinySelector(t), QueueSize: 1, CacheSize: -1, gate: gate})

	inA := serveInstance(t, 31, 5, 5, 2, 4)
	inB := serveInstance(t, 32, 5, 5, 2, 4)

	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), inA)
		done <- err
	}()
	// Wait until A occupies the queue slot (scheduler is gated).
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Submit(context.Background(), inB); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submission returned %v, want ErrQueueFull", err)
	}
	if s.Stats().Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", s.Stats().Rejected)
	}

	close(gate) // release the scheduler; A must now complete
	if err := <-done; err != nil {
		t.Fatalf("gated job failed after release: %v", err)
	}
}

// TestGracefulDrain checks Close semantics: queued jobs are still
// answered, and later submissions are refused with ErrClosed.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	sel := tinySelector(t)
	s, err := NewService(Config{Selector: sel, QueueSize: 8, gate: gate})
	if err != nil {
		t.Fatal(err)
	}

	const n = 3
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		in := serveInstance(t, int64(40+i), 5, 5, 2, 4)
		go func() {
			_, err := s.Submit(context.Background(), in)
			done <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueDepth < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d jobs queued", s.Stats().QueueDepth, n)
		}
		time.Sleep(time.Millisecond)
	}

	close(gate)
	s.Close() // must drain the n queued jobs, then stop the scheduler

	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Errorf("queued job failed during drain: %v", err)
		}
	}
	if !s.Closed() {
		t.Error("Closed() = false after Close")
	}
	if _, err := s.Submit(context.Background(), serveInstance(t, 50, 5, 5, 2, 4)); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close submission returned %v, want ErrClosed", err)
	}
	s.Close() // second Close must be a no-op, not a panic
}

// TestSubmitDeadline checks request-level cancellation: an expired
// context is reported as such, not as a routing failure.
func TestSubmitDeadline(t *testing.T) {
	s := newTestService(t, Config{Selector: tinySelector(t)})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := s.Submit(ctx, serveInstance(t, 60, 8, 8, 2, 5)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline submission returned %v, want DeadlineExceeded", err)
	}
}

// TestVolumeBudget checks the pre-queue size guard.
func TestVolumeBudget(t *testing.T) {
	s := newTestService(t, Config{Selector: tinySelector(t), MaxVolume: 10})
	if _, err := s.Submit(context.Background(), serveInstance(t, 61, 8, 8, 2, 4)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized submission returned %v, want ErrTooLarge", err)
	}
}

// TestFloat32ConfigEnablesSelectorMode pins that Config.Float32 switches
// the shared selector to float32 inference and that the service still
// serves valid routes in that mode.
func TestFloat32ConfigEnablesSelectorMode(t *testing.T) {
	sel := tinySelector(t)
	s := newTestService(t, Config{Selector: sel, Float32: true})
	if !sel.Float32Enabled() {
		t.Fatal("Config.Float32 did not enable the selector's float32 mode")
	}

	in := serveInstance(t, 900, 6, 6, 2, 4)
	resp, err := s.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cost <= 0 || resp.Degraded {
		t.Fatalf("float32 serve: cost %v degraded=%v", resp.Cost, resp.Degraded)
	}
}
