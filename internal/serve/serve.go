// Package serve is the embeddable routing service of the repository: a
// long-running front end that amortizes model load and batches inference
// over the one-shot routing pipeline of internal/core.
//
// Requests enter a bounded job queue (backpressure: a full queue sheds
// load with ErrQueueFull, which the HTTP layer maps to 429 + Retry-After).
// A scheduler goroutine drains the queue, groups queued layouts into
// same-size batches — the same-size grouping of internal/rl's Fig 9
// training batches, reused here so one shared selector serves a whole
// group with one inference per distinct layout — and fans the OARMST
// constructions out on the internal/parallel worker pool. Results are
// memoized in an LRU keyed by the augmentation-normalized canonical
// layout hash, so any of the 16 symmetric orientations of a layout hits
// the same entry. Per-request deadlines travel as context.Context through
// internal/core and internal/route, interrupting even long Dijkstra
// expansions.
//
// The package is stdlib-only and embeddable; cmd/oarsmt-serve wraps it in
// an HTTP daemon.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"oarsmt/internal/core"
	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/obs"
	"oarsmt/internal/parallel"
	"oarsmt/internal/route"
	"oarsmt/internal/selector"
	"oarsmt/internal/store"
	"oarsmt/wire"
)

// Sentinel errors of the service surface. All three are module-wide
// identities from internal/errs (re-exported at the root and coded by
// package wire), so errors.Is matches them across the HTTP boundary.
var (
	// ErrQueueFull is returned when the bounded job queue is at capacity;
	// clients should back off and retry (HTTP 429).
	ErrQueueFull = errs.ErrQueueFull
	// ErrClosed is returned once the service has begun draining.
	ErrClosed = errs.ErrClosed
	// ErrTooLarge is returned for layouts above Config.MaxVolume.
	ErrTooLarge = errs.ErrTooLarge
)

// Config parameterises a Service.
type Config struct {
	// Selector is the trained Steiner-point selector shared by every
	// request. Required. The service owns it: selector inference caches
	// activations and must stay on the scheduler goroutine.
	Selector *selector.Selector
	// QueueSize bounds the job queue; <= 0 means 64.
	QueueSize int
	// MaxBatch caps how many queued jobs one scheduler pass drains;
	// <= 0 means 8, 1 disables batching.
	MaxBatch int
	// BatchWindow is how long a draining pass waits for more queued jobs
	// after the first; <= 0 means 2ms.
	BatchWindow time.Duration
	// CacheSize is the LRU capacity in routed layouts; 0 means 256,
	// negative disables caching.
	CacheSize int
	// MaxVolume rejects layouts with more Hanan-graph vertices (guards
	// both decode-time allocation and per-request CPU); <= 0 means 1<<20.
	MaxVolume int
	// DefaultTimeout is applied to requests whose context has no
	// deadline; <= 0 leaves them unbounded.
	DefaultTimeout time.Duration
	// RetracePasses and GuardedAcceptance configure the underlying
	// core.Router; NewService defaults them to core.NewRouter's settings
	// (one pass, guarded).
	RetracePasses       int
	NoGuard             bool
	SequentialInference bool
	// Float32 switches the selector to float32 inference storage
	// (selector.EnableFloat32): roughly half the inference memory traffic
	// in exchange for last-bit differences from the float64 reference,
	// which can flip near-tie Steiner-point choices. Leave false when
	// served routes must match offline float64 evaluation bit-for-bit.
	Float32 bool
	// StoreDir enables the persistent route store (internal/store): routed
	// layouts are written through to checksummed segment files under this
	// directory and reloaded on the next start, so a restarted daemon
	// serves previously-routed layouts from disk without touching the
	// selector. Records are versioned by the selector's weight fingerprint;
	// starting with a retrained model invalidates every stored route.
	// Empty disables the disk tier.
	StoreDir string
	// StoreMaxEntries bounds the disk tier's live records (and, after
	// compaction, its disk use); <= 0 means 4096. Only read when StoreDir
	// is set.
	StoreMaxEntries int
	// StoreFlushEvery is how many freshly routed layouts trigger a
	// background segment write; <= 0 means the store's default (32). Lower
	// it when routes must survive a crash quickly (the kill/restart smoke
	// runs at 1); Close always lands the partial batch regardless.
	StoreFlushEvery int
	// MaxRetries is how many times a transient selector-inference failure
	// (an error matching oarsmt.ErrTransient) is retried before the
	// request degrades to the plain-OARMST fallback; 0 means 2, negative
	// disables retries.
	MaxRetries int
	// RetryBackoff is the first retry's delay, doubling per attempt up to
	// RetryBackoffMax. The schedule is deterministic — no jitter — so
	// fault-injection tests replay exactly. Defaults: 1ms, capped at 50ms.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration

	// gate, when non-nil, is waited on before every scheduler pass; test
	// hook for deterministically holding the queue full.
	gate chan struct{}
	// sleep is the retry backoff's clock, injectable so tests observe the
	// schedule without wall-clock waits; nil means time.Sleep.
	sleep func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxVolume <= 0 {
		c.MaxVolume = 1 << 20
	}
	if c.RetracePasses == 0 {
		c.RetracePasses = 1
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 2
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 50 * time.Millisecond
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	return c
}

// Coord3 is a grid coordinate in a JSON-friendly shape. It is the wire
// protocol's coordinate type; the alias keeps every in-repo call site
// compiling while the authoritative definition lives in package wire.
type Coord3 = wire.Coord3

// Response is the answer to one routing request; it is exactly the wire
// protocol's route response (the coordinator-only Worker/Hedged fields
// stay empty when a worker is addressed directly).
type Response = wire.RouteResponse

// job is one queued request.
type job struct {
	ctx      context.Context
	in       *layout.Instance
	key      cacheKey
	toCanon  grid.Aug
	enqueued time.Time

	resp *Response
	err  error
	done chan struct{}
}

// Service is the embeddable routing service. Create one with NewService
// and shut it down with Close.
type Service struct {
	cfg    Config
	router *core.Router
	queue  chan *job
	cache  *lruCache    // nil when caching is disabled
	store  *store.Store // nil when the disk tier is disabled

	mu     sync.RWMutex // serializes enqueue against Close
	closed bool

	done  chan struct{} // scheduler exited
	start time.Time
	m     *metrics
}

// NewService starts a service (and its scheduler goroutine) over the
// configuration.
func NewService(cfg Config) (*Service, error) {
	if cfg.Selector == nil {
		return nil, fmt.Errorf("%w: serve: Config.Selector is required", errs.ErrInvalidConfig)
	}
	cfg = cfg.withDefaults()
	if cfg.Float32 {
		cfg.Selector.EnableFloat32()
	}
	r := core.NewRouter(cfg.Selector)
	r.RetracePasses = cfg.RetracePasses
	if cfg.RetracePasses < 0 {
		r.RetracePasses = 0
	}
	r.GuardedAcceptance = !cfg.NoGuard
	if cfg.SequentialInference {
		r.Mode = core.Sequential
	}
	s := &Service{
		cfg:    cfg,
		router: r,
		queue:  make(chan *job, cfg.QueueSize),
		done:   make(chan struct{}),
		start:  time.Now(),
		m:      newMetrics(),
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRUCache(cfg.CacheSize, s.m.cacheEvictions)
	}
	if cfg.StoreDir != "" {
		maxEntries := cfg.StoreMaxEntries
		if maxEntries <= 0 {
			maxEntries = 4096
		}
		st, err := store.Open(store.Options{
			Dir:         cfg.StoreDir,
			Fingerprint: store.Fingerprint(cfg.Selector.Fingerprint()),
			MaxEntries:  maxEntries,
			FlushEvery:  cfg.StoreFlushEvery,
			Registry:    s.m.reg,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: open route store: %w", err)
		}
		s.store = st
	}
	// Instantaneous state exports as on-demand gauges: evaluated at
	// snapshot/scrape time, so they are never stale the way a periodically
	// copied struct was.
	s.m.reg.GaugeFunc("serve.queue_depth", func() float64 { return float64(len(s.queue)) })
	s.m.reg.GaugeFunc("serve.queue_capacity", func() float64 { return float64(cfg.QueueSize) })
	s.m.reg.GaugeFunc("serve.cache_entries", func() float64 {
		if s.cache == nil {
			return 0
		}
		return float64(s.cache.len())
	})
	// serve.cache.size is the canonical name for the memory tier's entry
	// count (serve.cache_entries predates it and is kept for dashboards);
	// the disk tier's size is store.entries, registered by the store.
	s.m.reg.GaugeFunc("serve.cache.size", func() float64 {
		if s.cache == nil {
			return 0
		}
		return float64(s.cache.len())
	})
	s.m.reg.GaugeFunc("serve.uptime_seconds", func() float64 { return time.Since(s.start).Seconds() })
	go s.run()
	return s, nil
}

// Registry exposes the service's metric registry so embedding callers can
// export it alongside their own; the HTTP layer's GET /metrics uses it.
func (s *Service) Registry() *obs.Registry { return s.m.reg }

// Closed reports whether the service has begun draining.
func (s *Service) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Close drains the service: new submissions are rejected with ErrClosed,
// every already-queued job is still routed and answered, and Close
// returns once the scheduler has exited. Safe to call more than once.
func (s *Service) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	<-s.done
	if s.store != nil {
		// The scheduler has exited, so no Put can race the final flush;
		// pending routes land in one last segment for the next start.
		s.store.Close()
	}
}

// Submit routes one instance through the service: cache lookup, then the
// batching queue. It blocks until the response is ready, the queue
// rejects the job, or ctx is cancelled.
func (s *Service) Submit(ctx context.Context, in *layout.Instance) (*Response, error) {
	if in == nil || in.Graph == nil {
		return nil, fmt.Errorf("%w: serve: nil instance", errs.ErrInvalidLayout)
	}
	if in.Graph.NumVertices() > s.cfg.MaxVolume {
		return nil, fmt.Errorf("%w: %d vertices, budget %d",
			ErrTooLarge, in.Graph.NumVertices(), s.cfg.MaxVolume)
	}
	if s.cfg.DefaultTimeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
			defer cancel()
		}
	}

	start := time.Now()
	key, toCanon := canonicalize(in)
	if resp, ok := s.lookup(in, key, toCanon, start); ok {
		return resp, nil
	}
	s.m.cacheMisses.Inc()

	if fault.Enabled() {
		// Injection point for enqueue-path failures: Error sheds the
		// request as retryable (503 + Retry-After), Delay stalls admission
		// to force queueing/timeout behaviour.
		if err := fault.Inject("serve.enqueue"); err != nil {
			s.m.rejected.Inc()
			return nil, fmt.Errorf("serve: enqueue: %w", err)
		}
	}

	j := &job{ctx: ctx, in: in, key: key, toCanon: toCanon, enqueued: start, done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case s.queue <- j:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.m.rejected.Inc()
		return nil, ErrQueueFull
	}
	s.m.submitted.Inc()

	select {
	case <-j.done:
		return j.resp, j.err
	case <-ctx.Done():
		// The scheduler observes the same context and will answer the job
		// with the cancellation; reporting it here keeps latency honest.
		return nil, errs.Classify(ctx.Err())
	}
}

// lookup serves a request straight from a cache tier when possible: the
// memory LRU first, then the persistent store (which promotes its hit into
// the LRU). Both tiers replay through treeFromEntry's Validate path, so a
// collision or stale record is a miss, never a wrong tree.
func (s *Service) lookup(in *layout.Instance, key cacheKey, toCanon grid.Aug, start time.Time) (*Response, bool) {
	if s.cache != nil {
		if e, ok := s.cache.get(key); ok {
			if tree, steiner, ok := treeFromEntry(in, toCanon, e); ok {
				s.m.cacheHits.Inc()
				s.m.submitted.Inc()
				s.m.completed.Inc()
				resp := s.buildResponse(in, tree, steiner, e.usedSteiner, e.proposed, start)
				resp.CacheHit = true
				s.m.latency.Observe(time.Since(start))
				return resp, true
			}
		}
	}
	if s.store != nil {
		return s.lookupStore(in, key, toCanon, start)
	}
	return nil, false
}

// buildResponse shapes a routed tree into the wire response.
func (s *Service) buildResponse(in *layout.Instance, tree *route.Tree, steiner []grid.VertexID, usedSteiner bool, proposed int, start time.Time) *Response {
	g := in.Graph
	hor, ver, via := tree.WirelengthByAxis(g)
	resp := &Response{
		Name:          in.Name,
		Cost:          tree.Cost,
		HorWirelength: hor,
		VerWirelength: ver,
		ViaWirelength: via,
		NumEdges:      len(tree.Edges),
		SteinerPoints: make([]Coord3, 0, len(steiner)),
		UsedSteiner:   usedSteiner,
		Proposed:      proposed,
		ElapsedMillis: float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, sp := range steiner {
		c := g.CoordOf(sp)
		resp.SteinerPoints = append(resp.SteinerPoints, Coord3{H: c.H, V: c.V, M: c.M})
	}
	resp.Edges = make([][2]Coord3, 0, len(tree.Edges))
	for _, e := range tree.Edges {
		ca, cb := g.CoordOf(e.A), g.CoordOf(e.B)
		resp.Edges = append(resp.Edges, [2]Coord3{
			{H: ca.H, V: ca.V, M: ca.M},
			{H: cb.H, V: cb.V, M: cb.M},
		})
	}
	return resp
}

// run is the scheduler: it drains the queue in batches, groups each drain
// by grid dimensions, and processes the groups.
func (s *Service) run() {
	defer close(s.done)
	for {
		if s.cfg.gate != nil {
			<-s.cfg.gate
		}
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := s.drainBatch(first)
		for _, group := range groupByDims(batch) {
			s.processGroup(group)
		}
	}
}

// drainBatch collects up to MaxBatch queued jobs, waiting at most
// BatchWindow after the first for stragglers.
func (s *Service) drainBatch(first *job) []*job {
	batch := []*job{first}
	if s.cfg.MaxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case j, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, j)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// groupByDims splits a drained batch into same-size groups, preserving
// arrival order within and across groups.
func groupByDims(batch []*job) [][]*job {
	var order [][3]int
	groups := map[[3]int][]*job{}
	for _, j := range batch {
		g := j.in.Graph
		key := [3]int{g.H, g.V, g.M}
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], j)
	}
	out := make([][]*job, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key])
	}
	return out
}

// rep is one distinct layout of a group: the representative instance plus
// every job that asked for it (possibly in different orientations).
type rep struct {
	jobs     []*job
	sps      []grid.VertexID
	inf      int
	skip     bool // answered from cache or wholly cancelled
	degraded bool // inference failed after retries; construct the plain fallback
}

// processGroup serves one same-size group: one shared-selector inference
// per distinct layout (serial — the selector is not goroutine-safe), then
// parallel OARMST construction over the distinct layouts.
func (s *Service) processGroup(group []*job) {
	batchSize := len(group)
	s.m.observeBatch(batchSize)

	// Dedup by canonical key, preserving arrival order.
	var reps []*rep
	byKey := map[cacheKey]*rep{}
	for _, j := range group {
		if r, ok := byKey[j.key]; ok {
			r.jobs = append(r.jobs, j)
			continue
		}
		r := &rep{jobs: []*job{j}}
		byKey[j.key] = r
		reps = append(reps, r)
	}

	// Phase 1 (serial): cache re-check and shared selector inference.
	for _, r := range reps {
		lead := r.lead()
		if lead == nil {
			// Every requester gave up while queued: shed the work.
			for _, j := range r.jobs {
				s.finish(j, nil, j.ctx.Err())
			}
			r.skip = true
			continue
		}
		if s.cache != nil {
			if e, ok := s.cache.get(lead.key); ok {
				// The layout was routed between enqueue and drain: a
				// cache hit for every job of the rep.
				s.m.cacheHits.Add(int64(len(r.jobs)))
				for _, j := range s.answerFromEntry(r, e, batchSize, true, false) {
					s.routeFallback(j, batchSize)
				}
				r.skip = true
				continue
			}
		}
		// Shared-selector inference with transient-failure retry and panic
		// containment. A panic (e.g. an injected one at selector.infer)
		// fails this rep's jobs with ErrInternal — the scheduler, and the
		// daemon, stay alive. An inference *error* that survives retries
		// degrades the rep: phase 2 builds the plain OARMST instead.
		err := contained(func() error {
			var perr error
			r.sps, r.inf, perr = s.proposeWithRetry(lead.ctx, lead.in)
			return perr
		})
		switch {
		case err == nil:
			s.m.inferences.Add(int64(r.inf))
		case errors.Is(err, errs.ErrInternal):
			r.errOut(s, err)
			r.skip = true
		default:
			r.degraded = true
		}
	}

	// Phase 2 (parallel): OARMST construction per distinct layout, one
	// worker-private router each (core.Construct builds its own). Jobs
	// whose entry mapping fails (hash collision) are deferred; the
	// fallback re-route touches the shared selector and must stay serial.
	live := make([]*rep, 0, len(reps))
	for _, r := range reps {
		if !r.skip {
			live = append(live, r)
		}
	}
	fallback := make([][]*job, len(live))
	parallel.For(len(live), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := live[i]
			lead := r.lead()
			if lead == nil {
				for _, j := range r.jobs {
					s.finish(j, nil, j.ctx.Err())
				}
				continue
			}
			var res *core.Result
			err := contained(func() error {
				var cerr error
				if r.degraded {
					res, cerr = s.router.ConstructPlain(lead.ctx, lead.in, 0)
				} else {
					res, cerr = s.router.Construct(lead.ctx, lead.in, r.sps, r.inf, 0)
				}
				return cerr
			})
			if err != nil {
				r.errOut(s, err)
				continue
			}
			e := entryFromTree(lead.in, lead.toCanon, res.Tree, res.SteinerPoints, res.UsedSteiner, res.Proposed)
			if !r.degraded {
				// Never cache a degraded result: a poisoned cache would keep
				// answering without Steiner points after the fault clears.
				// The disk tier gets the same write-through, so a restart
				// starts warm.
				if s.cache != nil {
					s.cache.add(lead.key, e)
				}
				s.storePut(lead.key, e)
			}
			fallback[i] = s.answerFromEntry(r, e, batchSize, false, r.degraded)
		}
	})

	// Phase 3 (serial): collision fallbacks, routed individually — the
	// re-route runs the shared selector, so it cannot live in phase 2.
	for _, jobs := range fallback {
		for _, j := range jobs {
			s.routeFallback(j, batchSize)
		}
	}
}

// routeFallback answers one job with a direct (unbatched, uncached) route.
// Must run on the scheduler goroutine: it uses the shared selector.
func (s *Service) routeFallback(j *job, batchSize int) {
	var res *core.Result
	err := contained(func() error {
		var rerr error
		res, rerr = s.router.Route(j.ctx, j.in)
		return rerr
	})
	if err != nil {
		s.finish(j, nil, err)
		return
	}
	s.m.inferences.Add(int64(res.Inferences))
	resp := s.buildResponse(j.in, res.Tree, res.SteinerPoints, res.UsedSteiner, res.Proposed, j.enqueued)
	resp.BatchSize = batchSize
	if res.Degraded {
		resp.Degraded = true
		s.m.degraded.Inc()
	}
	s.finish(j, resp, nil)
}

// proposeWithRetry runs the shared selector's proposal, retrying transient
// failures (errors matching errs.ErrTransient) up to Config.MaxRetries
// times with deterministic capped exponential backoff. The backoff sleeps
// through the injected Config.sleep clock, never reads the wall clock, and
// has no jitter, so a seeded fault schedule replays identically.
func (s *Service) proposeWithRetry(ctx context.Context, in *layout.Instance) ([]grid.VertexID, int, error) {
	backoff := s.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		sps, inf, err := s.router.TryPropose(in)
		if err == nil {
			return sps, inf, nil
		}
		if !errors.Is(err, errs.ErrTransient) || attempt >= s.cfg.MaxRetries || ctx.Err() != nil {
			return nil, 0, err
		}
		s.m.retries.Inc()
		s.cfg.sleep(backoff)
		backoff *= 2
		if backoff > s.cfg.RetryBackoffMax {
			backoff = s.cfg.RetryBackoffMax
		}
	}
}

// contained runs fn with panic containment: a panic anywhere below (the
// scheduler's inference and construction phases route through here) is
// recovered into an error matching errs.ErrInternal, which the HTTP layer
// maps to 500. The daemon never dies to a per-request panic.
func contained(fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: recovered panic: %v", errs.ErrInternal, p)
		}
	}()
	return fn()
}

// lead returns the first job of the rep whose context is still live, or
// nil when all have been cancelled.
func (r *rep) lead() *job {
	for _, j := range r.jobs {
		if j.ctx.Err() == nil {
			return j
		}
	}
	return nil
}

// errOut answers every job of the rep with the error.
func (r *rep) errOut(s *Service, err error) {
	for _, j := range r.jobs {
		s.finish(j, nil, err)
	}
}

// answerFromEntry maps a canonical-space entry into each requesting job's
// own orientation and answers it. It returns the jobs whose mapping failed
// (possible only under a hash collision); the caller re-routes those
// serially via routeFallback.
func (s *Service) answerFromEntry(r *rep, e *cacheEntry, batchSize int, cacheHit, degraded bool) []*job {
	var fallback []*job
	for _, j := range r.jobs {
		if err := j.ctx.Err(); err != nil {
			s.finish(j, nil, err)
			continue
		}
		tree, steiner, ok := treeFromEntry(j.in, j.toCanon, e)
		if !ok {
			fallback = append(fallback, j)
			continue
		}
		resp := s.buildResponse(j.in, tree, steiner, e.usedSteiner, e.proposed, j.enqueued)
		resp.BatchSize = batchSize
		resp.CacheHit = cacheHit
		if degraded {
			resp.Degraded = true
			s.m.degraded.Inc()
		}
		s.finish(j, resp, nil)
	}
	return fallback
}

// finish answers a job exactly once and records latency. Errors are
// classified so deadline expiries surface as the module's ErrTimeout.
func (s *Service) finish(j *job, resp *Response, err error) {
	err = errs.Classify(err)
	j.resp, j.err = resp, err
	if err != nil {
		s.m.failed.Inc()
	} else {
		s.m.completed.Inc()
	}
	s.m.latency.Observe(time.Since(j.enqueued))
	close(j.done)
}
