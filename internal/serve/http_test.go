package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oarsmt/client"
	"oarsmt/internal/errs"
)

// smallLayoutJSON is a 3x3x2 grid-form layout with two pins, tiny enough
// for instant routing in HTTP tests.
const smallLayoutJSON = `{"name":"t","grid":{"h":3,"v":3,"m":2,"viaCost":2,` +
	`"dx":[1,1],"dy":[1,1],"pins":[0,8]}}`

// newTestServer stands the service up behind a real HTTP listener and
// returns a wire-protocol client bound to it. All HTTP-level tests talk
// through the client package — the same path every in-repo caller uses —
// so these tests also pin the client↔server contract.
func newTestServer(t *testing.T, cfg Config) (*Service, *client.Client) {
	t.Helper()
	s := newTestService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	cl, err := client.New(client.Config{BaseURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	return s, cl
}

func TestHTTPRoute(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()

	resp, err := cl.RouteJSON(ctx, []byte(smallLayoutJSON), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cost <= 0 || resp.NumEdges == 0 {
		t.Errorf("degenerate response: %+v", resp)
	}
	if resp.Edges != nil {
		t.Error("edges included without Edges option")
	}

	resp2, err := cl.RouteJSON(ctx, []byte(smallLayoutJSON), &client.RouteOptions{Edges: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Edges) != resp2.NumEdges {
		t.Errorf("Edges option returned %d edges, numEdges says %d", len(resp2.Edges), resp2.NumEdges)
	}
	if !resp2.CacheHit {
		t.Error("second identical request missed the cache")
	}
}

func TestHTTPRouteRejectsMalformed(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{"grid":`},
		{"one pin", `{"name":"x","grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0]}}`},
		{"oversized grid", `{"name":"x","grid":{"h":9999,"v":9999,"m":99,"viaCost":1,"dx":[],"dy":[],"pins":[0,1]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cl.RouteJSON(context.Background(), []byte(tc.body), nil)
			if !errors.Is(err, errs.ErrInvalidLayout) {
				t.Errorf("err = %v, want ErrInvalidLayout", err)
			}
		})
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	gate := make(chan struct{})
	s, cl := newTestServer(t, Config{QueueSize: 1, CacheSize: -1, gate: gate})
	gateOpen := false
	defer func() {
		if !gateOpen {
			close(gate)
		}
	}()

	// Occupy the single queue slot (the scheduler is gated, so the job
	// stays queued until the gate opens).
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		cl.RouteJSON(context.Background(), []byte(smallLayoutJSON), nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	other := `{"name":"u","grid":{"h":3,"v":3,"m":2,"viaCost":2,"dx":[1,1],"dy":[1,1],"pins":[1,7]}}`
	_, err := cl.RouteJSON(context.Background(), []byte(other), nil)
	if !errors.Is(err, errs.ErrQueueFull) {
		t.Fatalf("overflow request err = %v, want ErrQueueFull", err)
	}
	close(gate) // release the scheduler so the held request completes
	gateOpen = true
	<-hold
}

func TestHTTPTimeout504(t *testing.T) {
	gate := make(chan struct{})
	_, cl := newTestServer(t, Config{gate: gate})
	defer close(gate)

	// The scheduler is gated, so the 1ms server-side deadline always
	// expires queued; the client must surface the server's 504 as
	// ErrTimeout.
	_, err := cl.RouteJSON(context.Background(), []byte(smallLayoutJSON), &client.RouteOptions{Timeout: time.Millisecond})
	if !errors.Is(err, errs.ErrTimeout) {
		t.Fatalf("expired request err = %v, want ErrTimeout", err)
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	s, cl := newTestServer(t, Config{})
	ctx := context.Background()

	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	if _, err := cl.RouteJSON(ctx, []byte(smallLayoutJSON), nil); err != nil {
		t.Fatal(err)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed < 1 || st.QueueCapacity == 0 || st.UptimeSeconds < 0 {
		t.Errorf("implausible stats: %+v", st)
	}

	s.Close()
	if err := cl.Healthz(ctx); !errors.Is(err, errs.ErrClosed) {
		t.Fatalf("post-close healthz err = %v, want ErrClosed", err)
	}
}

// TestHTTPMetrics checks the Prometheus exposition: after one routed
// request the service counters and the process-wide routing counters both
// appear under their oarsmt_-prefixed names.
func TestHTTPMetrics(t *testing.T) {
	_, cl := newTestServer(t, Config{})
	ctx := context.Background()

	if _, err := cl.RouteJSON(ctx, []byte(smallLayoutJSON), nil); err != nil {
		t.Fatal(err)
	}

	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE oarsmt_serve_submitted counter",
		"oarsmt_serve_completed 1",
		"# TYPE oarsmt_serve_queue_capacity gauge",
		"# TYPE oarsmt_serve_latency histogram",
		"oarsmt_serve_latency_bucket{le=\"+Inf\"} 1",
		// Process-wide registry: the routed request ran Dijkstra searches.
		"# TYPE oarsmt_route_searches counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\nexposition:\n%s", want, text)
		}
	}
}
