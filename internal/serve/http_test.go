package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// smallLayoutJSON is a 3x3x2 grid-form layout with two pins, tiny enough
// for instant routing in HTTP tests.
const smallLayoutJSON = `{"name":"t","grid":{"h":3,"v":3,"m":2,"viaCost":2,` +
	`"dx":[1,1],"dy":[1,1],"pins":[0,8]}}`

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := newTestService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func TestHTTPRoute(t *testing.T) {
	_, srv := newTestServer(t, Config{})

	res, err := http.Post(srv.URL+"/route", "application/json", strings.NewReader(smallLayoutJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("POST /route = %d, want 200", res.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cost <= 0 || resp.NumEdges == 0 {
		t.Errorf("degenerate response: %+v", resp)
	}
	if resp.Edges != nil {
		t.Error("edges included without edges=1")
	}

	res2, err := http.Post(srv.URL+"/route?edges=1", "application/json", strings.NewReader(smallLayoutJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var resp2 Response
	if err := json.NewDecoder(res2.Body).Decode(&resp2); err != nil {
		t.Fatal(err)
	}
	if len(resp2.Edges) != resp2.NumEdges {
		t.Errorf("edges=1 returned %d edges, numEdges says %d", len(resp2.Edges), resp2.NumEdges)
	}
	if !resp2.CacheHit {
		t.Error("second identical request missed the cache")
	}
}

func TestHTTPRouteRejectsMalformed(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", `{"grid":`, http.StatusBadRequest},
		{"one pin", `{"name":"x","grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0]}}`, http.StatusBadRequest},
		{"oversized grid", `{"name":"x","grid":{"h":9999,"v":9999,"m":99,"viaCost":1,"dx":[],"dy":[],"pins":[0,1]}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := http.Post(srv.URL+"/route", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			res.Body.Close()
			if res.StatusCode != tc.want {
				t.Errorf("status = %d, want %d", res.StatusCode, tc.want)
			}
		})
	}

	res, err := http.Get(srv.URL + "/route")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /route = %d, want 405", res.StatusCode)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	gate := make(chan struct{})
	s, srv := newTestServer(t, Config{QueueSize: 1, CacheSize: -1, gate: gate})
	gateOpen := false
	defer func() {
		if !gateOpen {
			close(gate)
		}
	}()

	// Occupy the single queue slot (the scheduler is gated, so the job
	// stays queued until the gate opens).
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		res, err := http.Post(srv.URL+"/route", "application/json", strings.NewReader(smallLayoutJSON))
		if err == nil {
			res.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	other := `{"name":"u","grid":{"h":3,"v":3,"m":2,"viaCost":2,"dx":[1,1],"dy":[1,1],"pins":[1,7]}}`
	res, err := http.Post(srv.URL+"/route", "application/json", strings.NewReader(other))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request = %d, want 429", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	close(gate) // release the scheduler so the held request completes
	gateOpen = true
	<-hold
}

func TestHTTPTimeout504(t *testing.T) {
	gate := make(chan struct{})
	_, srv := newTestServer(t, Config{gate: gate})
	defer close(gate)

	// The scheduler is gated, so the 1ns deadline always expires queued.
	res, err := http.Post(srv.URL+"/route?timeout=1ns", "application/json", strings.NewReader(smallLayoutJSON))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired request = %d, want 504", res.StatusCode)
	}

	res2, err := http.Post(srv.URL+"/route?timeout=banana", "application/json", strings.NewReader(smallLayoutJSON))
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout = %d, want 400", res2.StatusCode)
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	s, srv := newTestServer(t, Config{})

	res, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", res.StatusCode)
	}

	post, err := http.Post(srv.URL+"/route", "application/json", strings.NewReader(smallLayoutJSON))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()

	sres, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sres.Body.Close()
	var st Stats
	if err := json.NewDecoder(sres.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed < 1 || st.QueueCapacity == 0 || st.UptimeSeconds < 0 {
		t.Errorf("implausible stats: %+v", st)
	}

	s.Close()
	hres, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close /healthz = %d, want 503", hres.StatusCode)
	}
}

// TestHTTPMetrics checks the Prometheus exposition: after one routed
// request the service counters and the process-wide routing counters both
// appear under their oarsmt_-prefixed names.
func TestHTTPMetrics(t *testing.T) {
	_, srv := newTestServer(t, Config{})

	post, err := http.Post(srv.URL+"/route", "application/json", strings.NewReader(smallLayoutJSON))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()

	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE oarsmt_serve_submitted counter",
		"oarsmt_serve_completed 1",
		"# TYPE oarsmt_serve_queue_capacity gauge",
		"# TYPE oarsmt_serve_latency histogram",
		"oarsmt_serve_latency_bucket{le=\"+Inf\"} 1",
		// Process-wide registry: the routed request ran Dijkstra searches.
		"# TYPE oarsmt_route_searches counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\nexposition:\n%s", want, text)
		}
	}
}
