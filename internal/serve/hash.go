package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
)

// cacheKey is the augmentation-normalized identity of a layout: the
// smallest SHA-256 digest over the serializations of its 16 augmented
// variants (paper §3.6's augmentation group: 4 rotations x H-mirror x
// Z-mirror). Two layouts share a key exactly when one is an augmentation
// of the other, so a cached route for any orientation serves all 16.
type cacheKey [sha256.Size]byte

// CanonicalKey returns the hex form of the instance's augmentation-
// normalized cache key. The cluster coordinator shards requests by this
// key, so all 16 orientations of a layout land on the same worker and
// share its cache and store tiers.
func CanonicalKey(in *layout.Instance) string {
	key, _ := canonicalize(in)
	return hex.EncodeToString(key[:])
}

// canonicalize returns the cache key of the instance together with the
// augmentation that maps the instance onto its canonical (smallest-digest)
// form. The canonical form is a property of the layout alone, so every
// orientation of the same layout agrees on both the key and the canonical
// space.
func canonicalize(in *layout.Instance) (key cacheKey, toCanon grid.Aug) {
	first := true
	for _, a := range grid.AllAugmentations() {
		g := a.Apply(in.Graph)
		pins := mapVertices(a, in.Graph, g, in.Pins)
		d := digest(g, pins)
		if first || bytes.Compare(d[:], key[:]) < 0 {
			key, toCanon, first = d, a, false
		}
	}
	return key, toCanon
}

// mapVertices maps vertex IDs of src through the augmentation into dst's
// index space, sorted ascending so the result is canonical.
func mapVertices(a grid.Aug, src, dst *grid.Graph, vs []grid.VertexID) []grid.VertexID {
	out := make([]grid.VertexID, len(vs))
	for i, v := range vs {
		out[i] = dst.IndexOf(a.ApplyCoord(src.H, src.V, src.M, src.CoordOf(v)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// digest hashes every observable property of a grid-form layout:
// dimensions, via cost, per-step edge costs, preferred-direction scales,
// the vertex and edge obstacle sets, and the (sorted) pin set.
func digest(g *grid.Graph, pins []grid.VertexID) cacheKey {
	h := sha256.New()
	buf := make([]byte, 0, 4096)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	putInt := func(v int64) {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		if len(buf) >= 4096 {
			flush()
		}
	}
	putFloat := func(v float64) { putInt(int64(math.Float64bits(v))) }
	putBool := func(v bool) {
		b := byte(0)
		if v {
			b = 1
		}
		buf = append(buf, b)
		if len(buf) >= 4096 {
			flush()
		}
	}

	h.Write([]byte("oarsmt-layout-v1"))
	putInt(int64(g.H))
	putInt(int64(g.V))
	putInt(int64(g.M))
	putFloat(g.ViaCost)
	for _, c := range g.DX {
		putFloat(c)
	}
	for _, c := range g.DY {
		putFloat(c)
	}
	putBool(g.HScale != nil)
	for _, s := range g.HScale {
		putFloat(s)
	}
	putBool(g.VScale != nil)
	for _, s := range g.VScale {
		putFloat(s)
	}
	for id := 0; id < g.NumVertices(); id++ {
		putBool(g.Blocked(grid.VertexID(id)))
	}
	// Edge obstacles, in the fixed (h, v, m) iteration order. Hashing the
	// per-edge values (rather than the backing arrays) makes a nil array
	// and an all-false array identical, which is the right equivalence.
	for hh := 0; hh < g.H-1; hh++ {
		for vv := 0; vv < g.V; vv++ {
			for mm := 0; mm < g.M; mm++ {
				putBool(g.EdgeXBlocked(hh, vv, mm))
			}
		}
	}
	for hh := 0; hh < g.H; hh++ {
		for vv := 0; vv < g.V-1; vv++ {
			for mm := 0; mm < g.M; mm++ {
				putBool(g.EdgeYBlocked(hh, vv, mm))
			}
		}
	}
	putInt(int64(len(pins)))
	for _, p := range pins {
		putInt(int64(p))
	}
	flush()

	var key cacheKey
	h.Sum(key[:0])
	return key
}

// inverseAug returns the augmentation undoing a. Aug.Apply composes the
// rotation first, then the H-mirror, then the Z-mirror; conjugating a
// rotation by a mirror inverts it, so the in-plane part MirH∘Rot^r is an
// involution, a pure rotation inverts to the complementary one, and the
// Z-mirror commutes with everything.
func inverseAug(a grid.Aug) grid.Aug {
	r := ((a.Rot % 4) + 4) % 4
	if a.MirH {
		return grid.Aug{Rot: r, MirH: true, MirZ: a.MirZ}
	}
	return grid.Aug{Rot: (4 - r) % 4, MirZ: a.MirZ}
}
