package serve

import (
	"container/list"
	"sync"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/obs"
	"oarsmt/internal/route"
)

// cacheEntry is a routed result stored in the canonical orientation of its
// layout (see canonicalize). Coordinates rather than vertex IDs are stored
// so the entry can be mapped into any requesting orientation without
// keeping the canonical graph alive.
type cacheEntry struct {
	h, v, m     int          // canonical grid dimensions
	root        grid.Coord   // tree root, canonical space
	edges       [][2]grid.Coord
	steiner     []grid.Coord // irredundant Steiner points kept in the tree
	usedSteiner bool
	proposed    int // Steiner points the selector proposed
	cost        float64
}

// lruCache is a mutex-guarded LRU map from canonical layout hash to routed
// result. Evictions are counted on the provided counter (the
// serve.cache.evictions metric) so cache pressure is visible on /metrics
// instead of silently recycling entries.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[cacheKey]*list.Element
	evictions *obs.Counter
}

type lruItem struct {
	key   cacheKey
	entry *cacheEntry
}

func newLRUCache(capacity int, evictions *obs.Counter) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[cacheKey]*list.Element), evictions: evictions}
}

func (c *lruCache) get(k cacheKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

func (c *lruCache) add(k cacheKey, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruItem).entry = e
		return
	}
	c.items[k] = c.ll.PushFront(&lruItem{key: k, entry: e})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruItem).key)
		c.evictions.Inc()
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// entryFromTree converts a routed result in the instance's own orientation
// into a canonical-space cache entry, mapping every coordinate through
// toCanon.
func entryFromTree(in *layout.Instance, toCanon grid.Aug, tree *route.Tree, steiner []grid.VertexID, usedSteiner bool, proposed int) *cacheEntry {
	g := in.Graph
	ch, cv := g.H, g.V
	if toCanon.Rot%2 == 1 {
		ch, cv = g.V, g.H
	}
	fw := func(id grid.VertexID) grid.Coord {
		return toCanon.ApplyCoord(g.H, g.V, g.M, g.CoordOf(id))
	}
	e := &cacheEntry{
		h: ch, v: cv, m: g.M,
		root:        fw(tree.Root),
		edges:       make([][2]grid.Coord, len(tree.Edges)),
		steiner:     make([]grid.Coord, len(steiner)),
		usedSteiner: usedSteiner,
		proposed:    proposed,
		cost:        tree.Cost,
	}
	for i, ed := range tree.Edges {
		e.edges[i] = [2]grid.Coord{fw(ed.A), fw(ed.B)}
	}
	for i, sp := range steiner {
		e.steiner[i] = fw(sp)
	}
	return e
}

// treeFromEntry maps a canonical-space entry into the requesting
// instance's orientation (via the inverse of its canonicalizing
// augmentation) and rebuilds the routed tree there. It validates the
// reconstruction against the request's graph and pins, so a hash
// collision or dimension mismatch yields ok == false (a cache miss)
// rather than a wrong answer.
func treeFromEntry(in *layout.Instance, toCanon grid.Aug, e *cacheEntry) (tree *route.Tree, steiner []grid.VertexID, ok bool) {
	g := in.Graph
	ch, cv := g.H, g.V
	if toCanon.Rot%2 == 1 {
		ch, cv = g.V, g.H
	}
	if e.h != ch || e.v != cv || e.m != g.M {
		return nil, nil, false
	}
	inv := inverseAug(toCanon)
	back := func(c grid.Coord) (grid.VertexID, bool) {
		rc := inv.ApplyCoord(e.h, e.v, e.m, c)
		if !g.InBounds(rc) {
			return 0, false
		}
		return g.IndexOf(rc), true
	}
	root, okRoot := back(e.root)
	if !okRoot {
		return nil, nil, false
	}
	t := route.NewTreeAt(root)
	for _, ed := range e.edges {
		a, okA := back(ed[0])
		b, okB := back(ed[1])
		if !okA || !okB || !adjacent(g, a, b) {
			return nil, nil, false
		}
		t.AddPath(g, []grid.VertexID{a, b})
	}
	steiner = make([]grid.VertexID, 0, len(e.steiner))
	for _, c := range e.steiner {
		sp, okSP := back(c)
		if !okSP {
			return nil, nil, false
		}
		steiner = append(steiner, sp)
	}
	if err := t.Validate(g, in.Pins); err != nil {
		return nil, nil, false
	}
	return t, steiner, true
}

// adjacent reports whether two vertices are grid-adjacent (EdgeCost panics
// on non-adjacent pairs, so mapped edges are checked first).
func adjacent(g *grid.Graph, a, b grid.VertexID) bool {
	ca, cb := g.CoordOf(a), g.CoordOf(b)
	dh, dv, dm := abs(cb.H-ca.H), abs(cb.V-ca.V), abs(cb.M-ca.M)
	return dh+dv+dm == 1
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

