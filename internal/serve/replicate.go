package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"oarsmt/internal/errs"
	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/route"
	"oarsmt/wire"
)

// This file is the receiving half of the cluster's replica fan-out: the
// coordinator POSTs a finished route to the next ring replica
// (/v1/replicate), and the worker installs it into both cache tiers after
// rebuilding and re-validating the tree against the layout. The validate
// step is the whole safety story — a corrupt, stale, or malicious payload
// is rejected with ErrInvalidTree, so a replicated entry can make a shard
// warm but can never make it wrong.

// Install rebuilds the routed tree carried by a replicated response,
// validates it against the layout's graph and pins, and installs it into
// the memory LRU and the persistent store. It returns false when the
// entry was declined because an equivalent one is already cached (not an
// error: replication is idempotent).
func (s *Service) Install(in *layout.Instance, resp *wire.RouteResponse) (bool, error) {
	if in == nil || in.Graph == nil || resp == nil {
		return false, fmt.Errorf("%w: serve: replicate: nil instance or response", errs.ErrInvalidLayout)
	}
	if in.Graph.NumVertices() > s.cfg.MaxVolume {
		return false, fmt.Errorf("%w: %d vertices, budget %d",
			ErrTooLarge, in.Graph.NumVertices(), s.cfg.MaxVolume)
	}
	if s.Closed() {
		return false, ErrClosed
	}
	if resp.Degraded {
		// A degraded answer must never enter a cache tier; replicating one
		// would poison the successor's shard.
		return false, fmt.Errorf("%w: serve: replicate: degraded response", errs.ErrInvalidTree)
	}
	tree, steiner, err := treeFromResponse(in, resp)
	if err != nil {
		return false, err
	}

	key, toCanon := canonicalize(in)
	if s.cache != nil {
		if e, ok := s.cache.get(key); ok {
			if _, _, valid := treeFromEntry(in, toCanon, e); valid {
				return false, nil
			}
		}
	}
	e := entryFromTree(in, toCanon, tree, steiner, resp.UsedSteiner, resp.Proposed)
	if s.cache != nil {
		s.cache.add(key, e)
	}
	s.storePut(key, e)
	return true, nil
}

// treeFromResponse rebuilds a routed tree from its wire shape, checking
// bounds and adjacency edge by edge, then validates it. Any defect maps
// to ErrInvalidTree.
func treeFromResponse(in *layout.Instance, resp *wire.RouteResponse) (*route.Tree, []grid.VertexID, error) {
	g := in.Graph
	if len(in.Pins) == 0 {
		return nil, nil, fmt.Errorf("%w: serve: replicate: layout has no pins", errs.ErrInvalidLayout)
	}
	if len(resp.Edges) == 0 && len(in.Pins) > 1 {
		return nil, nil, fmt.Errorf("%w: serve: replicate: response carries no edges", errs.ErrInvalidTree)
	}
	vertex := func(c wire.Coord3) (grid.VertexID, error) {
		gc := grid.Coord{H: c.H, V: c.V, M: c.M}
		if !g.InBounds(gc) {
			return 0, fmt.Errorf("%w: serve: replicate: coordinate %v out of bounds", errs.ErrInvalidTree, gc)
		}
		return g.IndexOf(gc), nil
	}
	t := route.NewTreeAt(in.Pins[0])
	for _, ed := range resp.Edges {
		a, errA := vertex(ed[0])
		if errA != nil {
			return nil, nil, errA
		}
		b, errB := vertex(ed[1])
		if errB != nil {
			return nil, nil, errB
		}
		if !adjacent(g, a, b) {
			return nil, nil, fmt.Errorf("%w: serve: replicate: edge %v-%v joins non-adjacent vertices",
				errs.ErrInvalidTree, g.CoordOf(a), g.CoordOf(b))
		}
		t.AddPath(g, []grid.VertexID{a, b})
	}
	steiner := make([]grid.VertexID, 0, len(resp.SteinerPoints))
	for _, sp := range resp.SteinerPoints {
		v, err := vertex(sp)
		if err != nil {
			return nil, nil, err
		}
		steiner = append(steiner, v)
	}
	if err := t.Validate(g, in.Pins); err != nil {
		return nil, nil, err
	}
	return t, steiner, nil
}

// handleReplicate serves POST /v1/replicate.
func (s *Service) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if err := wire.CheckProto(r); err != nil {
		wire.WriteError(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeBodyError(w, err)
		return
	}
	var req wire.ReplicateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		wire.WriteError(w, fmt.Errorf("%w: replicate envelope: %v", errs.ErrInvalidLayout, err))
		return
	}
	if len(req.Layout) == 0 {
		wire.WriteError(w, fmt.Errorf("%w: replicate envelope has no layout", errs.ErrInvalidLayout))
		return
	}
	in, err := layout.DecodeWithLimit(bytes.NewReader(req.Layout), s.cfg.MaxVolume)
	if err != nil {
		wire.WriteError(w, err)
		return
	}
	installed, err := s.Install(in, &req.Response)
	if err != nil {
		s.m.replicateRejected.Inc()
		wire.WriteError(w, err)
		return
	}
	s.m.replicated.Inc()
	writeJSON(w, http.StatusOK, wire.ReplicateResponse{Installed: installed})
}
