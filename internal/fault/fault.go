// Package fault is the repository's deterministic fault-injection
// registry: named injection points woven through the production code
// (ckpt.write, selector.infer, serve.enqueue, route.dijkstra, ...) that are
// no-ops until armed, then fail on a fully deterministic schedule.
//
// Production cost is one atomic load per point: until the first Set or a
// non-empty OARSMT_FAULTS environment spec arms the registry, Check and
// Inject return immediately. Under test, points are armed programmatically
// (Set/Clear/Reset) or from the environment:
//
//	OARSMT_FAULTS='selector.infer=error;ckpt.write=partial:times=1'
//	OARSMT_FAULTS='route.dijkstra=error:after=2:times=3;serve.enqueue=delay:5ms'
//	OARSMT_FAULTS='selector.infer=error:p=0.25:seed=7'
//
// The spec grammar is semicolon-separated `point=mode[:opt]...` entries.
// Modes are error, panic, delay (one opt is the duration) and partial
// (honoured by writers such as internal/ckpt, which truncates the write).
// Options times=N (fire at most N times), after=N (skip the first N hits),
// every=N (fire every Nth hit) and p=F:seed=S (seeded Bernoulli schedule)
// compose; everything is deterministic for a fixed spec and hit sequence,
// so crash-and-resume and degradation tests replay exactly.
//
// Injected errors wrap errs.ErrTransient, so the serving layer's
// retry-on-transient policy engages, and remain distinguishable from real
// failures through errors.Is(err, fault.ErrInjected).
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oarsmt/internal/errs"
)

// Mode is what an armed point does when its schedule fires.
type Mode uint8

// Injection modes.
const (
	// Off disarms the point.
	Off Mode = iota
	// Error makes Inject return an injected error (wrapping both
	// ErrInjected and errs.ErrTransient).
	Error
	// Panic makes Inject panic; used to exercise panic containment at
	// service boundaries.
	Panic
	// Delay makes Inject sleep for Options.Delay before returning nil;
	// used to force timeouts deterministically.
	Delay
	// Partial is advisory: Inject reports it through Check, and writers
	// that support it (internal/ckpt) truncate their write mid-payload.
	Partial
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Partial:
		return "partial"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrInjected marks every error produced by this package; tests assert on
// it and production code must never match it explicitly.
var ErrInjected = errors.New("fault: injected failure")

// Options is the schedule of one armed point.
type Options struct {
	// Mode selects the failure behaviour; Off disarms.
	Mode Mode
	// Delay is the sleep duration of Delay mode.
	Delay time.Duration
	// P is the firing probability per hit; 0 or 1 means always fire. The
	// Bernoulli draws come from a rand.Rand seeded with Seed, so the
	// schedule is deterministic per point.
	P float64
	// Seed seeds the probability schedule.
	Seed int64
	// Times caps how many times the point fires; 0 means unlimited.
	Times int
	// After skips the first N hits before the schedule starts.
	After int
	// Every fires only every Nth eligible hit; 0 or 1 means every hit.
	Every int
}

// Verdict is the outcome of one Check: what the caller should do now.
type Verdict struct {
	// Mode is Off when the point did not fire.
	Mode Mode
	// Err is the injected error of Error mode (nil otherwise).
	Err error
	// Delay is the injected sleep of Delay mode.
	Delay time.Duration
}

// point is the mutable state of one armed injection point.
type point struct {
	opts  Options
	rng   *rand.Rand // nil unless 0 < P < 1
	hits  int        // Check calls observed
	fired int        // times the schedule fired
}

var (
	// armed is the production fast path: false means Check/Inject return
	// without taking the lock.
	armed atomic.Bool

	mu     sync.Mutex
	points = map[string]*point{}
)

func init() {
	if spec := os.Getenv("OARSMT_FAULTS"); spec != "" {
		if err := ParseSpec(spec); err != nil {
			// A mistyped spec silently disabling injection would defeat the
			// whole harness; fail loudly at startup.
			panic(fmt.Sprintf("fault: OARSMT_FAULTS: %v", err))
		}
	}
}

// Enabled reports whether any point is armed; production hot paths may use
// it to skip building injection arguments.
func Enabled() bool { return armed.Load() }

// Set arms (or, with Options.Mode == Off, disarms) the named point,
// resetting its hit and fire counters.
func Set(name string, o Options) {
	mu.Lock()
	defer mu.Unlock()
	if o.Mode == Off {
		delete(points, name)
	} else {
		p := &point{opts: o}
		if o.P > 0 && o.P < 1 {
			p.rng = rand.New(rand.NewSource(o.Seed))
		}
		points[name] = p
	}
	armed.Store(len(points) > 0)
}

// Clear disarms the named point.
func Clear(name string) { Set(name, Options{}) }

// Reset disarms every point.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	armed.Store(false)
}

// Armed returns the names of the armed points, sorted.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(points))
	for name := range points {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Check consults the named point's schedule and returns what fired. It
// never sleeps or panics itself — Inject does — so writers that need the
// Partial verdict can act on it directly.
func Check(name string) Verdict {
	if !armed.Load() {
		return Verdict{}
	}
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		return Verdict{}
	}
	p.hits++
	if p.hits <= p.opts.After {
		return Verdict{}
	}
	if p.opts.Times > 0 && p.fired >= p.opts.Times {
		return Verdict{}
	}
	if every := p.opts.Every; every > 1 && (p.hits-p.opts.After)%every != 0 {
		return Verdict{}
	}
	if p.rng != nil && p.rng.Float64() >= p.opts.P {
		return Verdict{}
	}
	p.fired++
	v := Verdict{Mode: p.opts.Mode, Delay: p.opts.Delay}
	if p.opts.Mode == Error || p.opts.Mode == Partial {
		v.Err = fmt.Errorf("%w at %s (hit %d): %w", ErrInjected, name, p.hits, errs.ErrTransient)
	}
	return v
}

// Inject is the one-line hook production code places at an injection
// point: it returns nil instantly when the registry is idle, returns the
// injected error in Error (and Partial) mode, panics in Panic mode, and
// sleeps then returns nil in Delay mode.
func Inject(name string) error {
	if !armed.Load() {
		return nil
	}
	v := Check(name)
	switch v.Mode {
	case Panic:
		panic(fmt.Sprintf("fault: injected panic at %s", name))
	case Delay:
		time.Sleep(v.Delay)
		return nil
	default:
		return v.Err
	}
}

// ParseSpec arms every point of a spec string (the OARSMT_FAULTS grammar;
// see the package comment). Parsing is all-or-nothing: on error no point
// is armed.
func ParseSpec(spec string) error {
	type entry struct {
		name string
		opts Options
	}
	var entries []entry
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return fmt.Errorf("bad entry %q: want point=mode[:opt]...", part)
		}
		o, err := parseOptions(rest)
		if err != nil {
			return fmt.Errorf("point %s: %w", name, err)
		}
		entries = append(entries, entry{name, o})
	}
	if len(entries) == 0 {
		return fmt.Errorf("empty fault spec")
	}
	for _, e := range entries {
		Set(e.name, e.opts)
	}
	return nil
}

// FormatSpec renders a set of point schedules back into the OARSMT_FAULTS
// grammar, the inverse of ParseSpec: chaos drivers build a spec
// programmatically and hand it to a child process through the
// environment. Points are emitted in sorted order so the output is
// deterministic; ParseSpec(FormatSpec(m)) arms exactly m.
func FormatSpec(specs map[string]Options) string {
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, name+"="+formatOptions(specs[name]))
	}
	return strings.Join(parts, ";")
}

// formatOptions renders one schedule as "mode[:opt]...".
func formatOptions(o Options) string {
	var b strings.Builder
	b.WriteString(o.Mode.String())
	if o.Mode == Delay && o.Delay > 0 {
		b.WriteString(":" + o.Delay.String())
	}
	if o.Times > 0 {
		fmt.Fprintf(&b, ":times=%d", o.Times)
	}
	if o.After > 0 {
		fmt.Fprintf(&b, ":after=%d", o.After)
	}
	if o.Every > 1 {
		fmt.Fprintf(&b, ":every=%d", o.Every)
	}
	if o.P > 0 && o.P < 1 {
		fmt.Fprintf(&b, ":p=%g:seed=%d", o.P, o.Seed)
	}
	return b.String()
}

// parseOptions parses "mode[:opt]..." where opts are times=N, after=N,
// every=N, p=F, seed=N, or (for delay) a bare duration.
func parseOptions(s string) (Options, error) {
	var o Options
	toks := strings.Split(s, ":")
	switch strings.TrimSpace(toks[0]) {
	case "error":
		o.Mode = Error
	case "panic":
		o.Mode = Panic
	case "delay":
		o.Mode = Delay
	case "partial":
		o.Mode = Partial
	case "off":
		o.Mode = Off
	default:
		return o, fmt.Errorf("unknown mode %q", toks[0])
	}
	for _, tok := range toks[1:] {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if o.Mode == Delay {
			if d, err := time.ParseDuration(tok); err == nil {
				o.Delay = d
				continue
			}
		}
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return o, fmt.Errorf("bad option %q", tok)
		}
		switch k {
		case "times", "after", "every":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return o, fmt.Errorf("option %s: want a non-negative integer, got %q", k, v)
			}
			switch k {
			case "times":
				o.Times = n
			case "after":
				o.After = n
			case "every":
				o.Every = n
			}
		case "p":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return o, fmt.Errorf("option p: want a probability in [0,1], got %q", v)
			}
			o.P = f
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return o, fmt.Errorf("option seed: want an integer, got %q", v)
			}
			o.Seed = n
		default:
			return o, fmt.Errorf("unknown option %q", k)
		}
	}
	if o.Mode == Delay && o.Delay <= 0 {
		return o, fmt.Errorf("delay mode needs a positive duration (delay:5ms)")
	}
	return o, nil
}
