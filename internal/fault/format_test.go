package fault

import (
	"testing"
	"time"
)

// TestFormatSpecRoundTrip: FormatSpec is the exact inverse of ParseSpec
// — the chaos driver builds schedules programmatically and ships them to
// child processes through OARSMT_FAULTS, so a lossy rendering would arm
// the wrong faults.
func TestFormatSpecRoundTrip(t *testing.T) {
	defer Reset()
	specs := map[string]Options{
		"client.transport": {Mode: Error, Times: 3, After: 2},
		"serve.enqueue":    {Mode: Error, Every: 4},
		"cluster.forward":  {Mode: Delay, Delay: 250 * time.Millisecond, Times: 1},
		"ckpt.write":       {Mode: Partial, Times: 1},
		"selector.infer":   {Mode: Error, P: 0.25, Seed: 7},
		"route.dijkstra":   {Mode: Panic},
	}
	rendered := FormatSpec(specs)

	Reset()
	if err := ParseSpec(rendered); err != nil {
		t.Fatalf("ParseSpec(%q): %v", rendered, err)
	}
	mu.Lock()
	got := make(map[string]Options, len(points))
	for name, p := range points {
		got[name] = p.opts
	}
	mu.Unlock()
	if len(got) != len(specs) {
		t.Fatalf("round trip armed %d points, want %d (%q)", len(got), len(specs), rendered)
	}
	for name, want := range specs {
		if got[name] != want {
			t.Errorf("point %s round-tripped to %+v, want %+v (%q)", name, got[name], want, rendered)
		}
	}

	// Determinism: the rendering is stable across map iteration orders.
	if again := FormatSpec(specs); again != rendered {
		t.Errorf("FormatSpec not deterministic: %q then %q", rendered, again)
	}
}

// TestFormatSpecSingle: the common single-point renderings match the
// documented grammar exactly.
func TestFormatSpecSingle(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{Mode: Error}, "p=error"},
		{Options{Mode: Error, Times: 2}, "p=error:times=2"},
		{Options{Mode: Delay, Delay: 5 * time.Millisecond}, "p=delay:5ms"},
		{Options{Mode: Error, After: 1, Every: 2}, "p=error:after=1:every=2"},
	}
	for _, tc := range cases {
		if got := FormatSpec(map[string]Options{"p": tc.opts}); got != tc.want {
			t.Errorf("FormatSpec(%+v) = %q, want %q", tc.opts, got, tc.want)
		}
	}
}
