package fault

import (
	"errors"
	"sync"
	"testing"
	"time"

	"oarsmt/internal/errs"
)

func TestIdleRegistryIsNoOp(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("fresh registry reports Enabled")
	}
	if err := Inject("selector.infer"); err != nil {
		t.Fatalf("idle Inject returned %v", err)
	}
	if v := Check("selector.infer"); v.Mode != Off {
		t.Fatalf("idle Check returned %+v", v)
	}
}

func TestErrorModeFiresAndClears(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("selector.infer", Options{Mode: Error})
	err := Inject("selector.infer")
	if err == nil {
		t.Fatal("armed point did not fire")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("injected error does not match ErrInjected: %v", err)
	}
	if !errors.Is(err, errs.ErrTransient) {
		t.Errorf("injected error does not match errs.ErrTransient: %v", err)
	}
	Clear("selector.infer")
	if err := Inject("selector.infer"); err != nil {
		t.Fatalf("cleared point still fires: %v", err)
	}
	if Enabled() {
		t.Error("Enabled after the last point was cleared")
	}
}

func TestTimesAfterEverySchedule(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	// Skip 2 hits, then fire every 2nd eligible hit, at most 2 times:
	// hits 1,2 skipped; 3 no (1st eligible), 4 fires, 5 no, 6 fires, 7+ capped.
	Set("p", Options{Mode: Error, After: 2, Every: 2, Times: 2})
	var fired []int
	for i := 1; i <= 8; i++ {
		if Inject("p") != nil {
			fired = append(fired, i)
		}
	}
	want := []int{4, 6}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired on hits %v, want %v", fired, want)
	}
}

func TestSeededProbabilityDeterministic(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	run := func() []bool {
		Set("p", Options{Mode: Error, P: 0.5, Seed: 42})
		out := make([]bool, 20)
		for i := range out {
			out[i] = Inject("p") != nil
		}
		return out
	}
	a, b := run(), run()
	some, all := false, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identically-seeded runs", i)
		}
		some = some || a[i]
		all = all && a[i]
	}
	if !some || all {
		t.Errorf("p=0.5 schedule fired on %v of 20 hits; want a mix", a)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", Options{Mode: Panic})
	defer func() {
		if recover() == nil {
			t.Error("Panic mode did not panic")
		}
	}()
	Inject("p")
}

func TestDelayMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", Options{Mode: Delay, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := Inject("p"); err != nil {
		t.Fatalf("delay mode returned error %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("delay mode slept %v, want >= 10ms", d)
	}
}

func TestPartialModeVerdict(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("ckpt.write", Options{Mode: Partial, Times: 1})
	v := Check("ckpt.write")
	if v.Mode != Partial || v.Err == nil {
		t.Fatalf("partial verdict = %+v", v)
	}
	if v := Check("ckpt.write"); v.Mode != Off {
		t.Fatalf("times=1 point fired twice: %+v", v)
	}
}

func TestParseSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	spec := "selector.infer=error; ckpt.write=partial:times=1 ;serve.enqueue=delay:5ms;route.dijkstra=error:p=0.5:seed=3:after=1"
	if err := ParseSpec(spec); err != nil {
		t.Fatal(err)
	}
	got := Armed()
	want := []string{"ckpt.write", "route.dijkstra", "selector.infer", "serve.enqueue"}
	if len(got) != len(want) {
		t.Fatalf("armed points %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("armed points %v, want %v", got, want)
		}
	}
	if err := Inject("selector.infer"); err == nil {
		t.Error("parsed error point did not fire")
	}

	for _, bad := range []string{"", "noequals", "p=squash", "p=delay", "p=error:times=x", "p=error:p=2"} {
		if err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", bad)
		}
	}
}

func TestConcurrentChecksRace(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", Options{Mode: Error, Every: 3})
	var wg sync.WaitGroup
	fired := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if Inject("p") != nil {
					fired[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range fired {
		total += n
	}
	if total != 800 {
		t.Errorf("every=3 over 2400 concurrent hits fired %d times, want 800", total)
	}
}
