package geom

import (
	"testing"
	"testing/quick"
)

func TestManhattanXY(t *testing.T) {
	cases := []struct {
		p, q Point
		want int
	}{
		{Point{0, 0, 0}, Point{0, 0, 0}, 0},
		{Point{0, 0, 0}, Point{3, 4, 0}, 7},
		{Point{-2, 5, 0}, Point{1, -1, 3}, 9}, // layer ignored
		{Point{10, 10, 1}, Point{10, 3, 1}, 7},
	}
	for _, c := range cases {
		if got := c.p.ManhattanXY(c.q); got != c.want {
			t.Errorf("ManhattanXY(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
		if got := c.q.ManhattanXY(c.p); got != c.want {
			t.Errorf("ManhattanXY not symmetric for %v,%v", c.p, c.q)
		}
	}
}

func TestManhattan3D(t *testing.T) {
	p := Point{0, 0, 0}
	q := Point{2, 3, 2}
	if got := p.Manhattan(q, 4); got != 2+3+2*4 {
		t.Errorf("Manhattan = %d, want %d", got, 13)
	}
	if got := p.Manhattan(q, 0); got != 5 {
		t.Errorf("Manhattan with zero via cost = %d, want 5", got)
	}
}

func TestManhattanProperties(t *testing.T) {
	// Symmetry and triangle inequality.
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Point{int(ax), int(ay), 0}
		b := Point{int(bx), int(by), 0}
		c := Point{int(cx), int(cy), 0}
		if a.ManhattanXY(b) != b.ManhattanXY(a) {
			return false
		}
		return a.ManhattanXY(c) <= a.ManhattanXY(b)+b.ManhattanXY(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRectNormalises(t *testing.T) {
	r := NewRect(5, 7, 1, 2, 3)
	want := Rect{X1: 1, Y1: 2, X2: 5, Y2: 7, Layer: 3}
	if r != want {
		t.Errorf("NewRect = %+v, want %+v", r, want)
	}
	if !r.Valid() {
		t.Error("normalised rect should be valid")
	}
}

func TestRectAccessors(t *testing.T) {
	r := NewRect(1, 2, 4, 7, 0)
	if r.Width() != 3 || r.Height() != 5 || r.Area() != 15 {
		t.Errorf("accessors wrong: w=%d h=%d a=%d", r.Width(), r.Height(), r.Area())
	}
	deg := NewRect(2, 2, 2, 5, 0)
	if deg.Area() != 0 {
		t.Errorf("degenerate rect area = %d, want 0", deg.Area())
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 4, 4, 1)
	cases := []struct {
		p              Point
		cont, interior bool
	}{
		{Point{2, 2, 1}, true, true},
		{Point{0, 0, 1}, true, false},  // corner: boundary only
		{Point{4, 2, 1}, true, false},  // edge: boundary only
		{Point{2, 2, 0}, false, false}, // wrong layer
		{Point{5, 2, 1}, false, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.cont {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.cont)
		}
		if got := r.ContainsInterior(c.p); got != c.interior {
			t.Errorf("ContainsInterior(%v) = %v, want %v", c.p, got, c.interior)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(0, 0, 4, 4, 0)
	b := NewRect(4, 4, 8, 8, 0) // touches at corner
	c := NewRect(5, 5, 8, 8, 0) // disjoint
	d := NewRect(2, 2, 6, 6, 0) // overlaps
	e := NewRect(2, 2, 6, 6, 1) // overlaps but other layer
	if !a.Intersects(b) {
		t.Error("corner touch should intersect (closed)")
	}
	if a.IntersectsInterior(b) {
		t.Error("corner touch should not intersect interiors")
	}
	if a.Intersects(c) {
		t.Error("disjoint rects should not intersect")
	}
	if !a.Intersects(d) || !a.IntersectsInterior(d) {
		t.Error("overlapping rects should intersect both ways")
	}
	if a.Intersects(e) {
		t.Error("different layers should never intersect")
	}
}

func TestRectUnionInflate(t *testing.T) {
	a := NewRect(0, 0, 2, 2, 0)
	b := NewRect(5, -1, 6, 1, 0)
	u := a.Union(b)
	if u != (Rect{X1: 0, Y1: -1, X2: 6, Y2: 2, Layer: 0}) {
		t.Errorf("Union = %+v", u)
	}
	in := a.Inflate(2)
	if in != (Rect{X1: -2, Y1: -2, X2: 4, Y2: 4, Layer: 0}) {
		t.Errorf("Inflate = %+v", in)
	}
	// Over-shrinking must still produce a valid rect.
	if !a.Inflate(-5).Valid() {
		t.Error("Inflate(-5) should normalise to a valid rect")
	}
}

func TestSegmentCrossesInterior(t *testing.T) {
	r := NewRect(2, 2, 6, 6, 0)
	cases := []struct {
		a, b Point
		want bool
		name string
	}{
		{Point{0, 4, 0}, Point{8, 4, 0}, true, "horizontal through middle"},
		{Point{0, 2, 0}, Point{8, 2, 0}, false, "horizontal along bottom edge"},
		{Point{0, 6, 0}, Point{8, 6, 0}, false, "horizontal along top edge"},
		{Point{4, 0, 0}, Point{4, 8, 0}, true, "vertical through middle"},
		{Point{2, 0, 0}, Point{2, 8, 0}, false, "vertical along left edge"},
		{Point{0, 4, 0}, Point{2, 4, 0}, false, "horizontal stops at boundary"},
		{Point{0, 4, 0}, Point{3, 4, 0}, true, "horizontal enters interior"},
		{Point{0, 4, 1}, Point{8, 4, 1}, false, "other layer"},
		{Point{8, 4, 0}, Point{0, 4, 0}, true, "reversed endpoints"},
		{Point{0, 0, 0}, Point{1, 1, 0}, false, "diagonal ignored"},
	}
	for _, c := range cases {
		if got := r.SegmentCrossesInterior(c.a, c.b); got != c.want {
			t.Errorf("%s: SegmentCrossesInterior(%v,%v) = %v, want %v",
				c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{3, 4, 0}, {-1, 2, 1}, {5, -2, 2}}
	bb := BoundingBox(pts)
	if bb != (Rect{X1: -1, Y1: -2, X2: 5, Y2: 4, Layer: 0}) {
		t.Errorf("BoundingBox = %+v", bb)
	}
	defer func() {
		if recover() == nil {
			t.Error("BoundingBox of empty slice should panic")
		}
	}()
	BoundingBox(nil)
}

func TestBoundingBoxProperty(t *testing.T) {
	f := func(xs, ys []int8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			pts[i] = Point{int(xs[i]), int(ys[i]), 0}
		}
		bb := BoundingBox(pts)
		for _, p := range pts {
			if !bb.Contains(Point{p.X, p.Y, 0}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
