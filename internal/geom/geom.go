// Package geom provides the integer rectilinear geometry primitives used
// throughout the router: points, rectangles and Manhattan metrics on the
// original (pre-Hanan) coordinate space of a layout.
//
// Coordinates are integers because IC layouts are defined on a manufacturing
// grid; all distances are Manhattan (L1) distances, matching the rectilinear
// routing model of the OARSMT problem.
package geom

import "fmt"

// Point is a location in the original coordinate space of a layout.
// X grows to the right, Y grows upward, Layer counts routing layers from 0.
type Point struct {
	X, Y  int
	Layer int
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%d,%d,L%d)", p.X, p.Y, p.Layer)
}

// ManhattanXY returns the 2-D Manhattan distance between p and q, ignoring
// the layer coordinate.
func (p Point) ManhattanXY(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// Manhattan returns the 3-D Manhattan distance between p and q where each
// layer crossing counts viaCost.
func (p Point) Manhattan(q Point, viaCost int) int {
	return p.ManhattanXY(q) + abs(p.Layer-q.Layer)*viaCost
}

// Rect is an axis-aligned rectangle on a single layer, given by its
// inclusive lower-left corner (X1, Y1) and inclusive upper-right corner
// (X2, Y2). A Rect with X1 == X2 or Y1 == Y2 is degenerate (a segment or a
// point) and is still a valid obstacle footprint.
type Rect struct {
	X1, Y1 int
	X2, Y2 int
	Layer  int
}

// NewRect returns the rectangle spanning the two corner points on the given
// layer, normalising the corner order.
func NewRect(x1, y1, x2, y2, layer int) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{X1: x1, Y1: y1, X2: x2, Y2: y2, Layer: layer}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d]x[%d,%d]@L%d", r.X1, r.X2, r.Y1, r.Y2, r.Layer)
}

// Valid reports whether the rectangle corners are correctly ordered.
func (r Rect) Valid() bool {
	return r.X1 <= r.X2 && r.Y1 <= r.Y2
}

// Width returns the X extent of the rectangle.
func (r Rect) Width() int { return r.X2 - r.X1 }

// Height returns the Y extent of the rectangle.
func (r Rect) Height() int { return r.Y2 - r.Y1 }

// Area returns the area of the rectangle in original coordinate units.
// Degenerate rectangles have zero area.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Contains reports whether the point lies inside or on the boundary of the
// rectangle (layer must match).
func (r Rect) Contains(p Point) bool {
	return p.Layer == r.Layer &&
		r.X1 <= p.X && p.X <= r.X2 &&
		r.Y1 <= p.Y && p.Y <= r.Y2
}

// ContainsInterior reports whether the point lies strictly inside the
// rectangle. Routing along an obstacle boundary is legal in the OARSMT
// model, so blocking tests use the interior.
func (r Rect) ContainsInterior(p Point) bool {
	return p.Layer == r.Layer &&
		r.X1 < p.X && p.X < r.X2 &&
		r.Y1 < p.Y && p.Y < r.Y2
}

// Intersects reports whether the two rectangles share any point (boundary
// contact counts), on the same layer.
func (r Rect) Intersects(o Rect) bool {
	return r.Layer == o.Layer &&
		r.X1 <= o.X2 && o.X1 <= r.X2 &&
		r.Y1 <= o.Y2 && o.Y1 <= r.Y2
}

// IntersectsInterior reports whether the interiors of the two rectangles
// overlap (mere boundary contact does not count), on the same layer.
func (r Rect) IntersectsInterior(o Rect) bool {
	return r.Layer == o.Layer &&
		r.X1 < o.X2 && o.X1 < r.X2 &&
		r.Y1 < o.Y2 && o.Y1 < r.Y2
}

// Union returns the bounding box of the two rectangles. The result is on
// r's layer; callers that mix layers should track layers separately.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		X1:    min(r.X1, o.X1),
		Y1:    min(r.Y1, o.Y1),
		X2:    max(r.X2, o.X2),
		Y2:    max(r.Y2, o.Y2),
		Layer: r.Layer,
	}
}

// Inflate returns the rectangle grown by d on every side. Negative d
// shrinks it; the result is normalised so it stays valid.
func (r Rect) Inflate(d int) Rect {
	return NewRect(r.X1-d, r.Y1-d, r.X2+d, r.Y2+d, r.Layer)
}

// SegmentCrossesInterior reports whether the open axis-parallel segment from
// a to b (same layer, sharing one coordinate) passes through the strict
// interior of the rectangle. Touching the boundary does not count: routing
// is allowed along obstacle edges.
func (r Rect) SegmentCrossesInterior(a, b Point) bool {
	if a.Layer != r.Layer || b.Layer != r.Layer {
		return false
	}
	switch {
	case a.Y == b.Y: // horizontal segment
		y := a.Y
		lo, hi := minMax(a.X, b.X)
		// The segment's interior intersects the rect's interior iff the
		// y-line is strictly inside and the open x-interval overlaps the
		// open rect x-interval.
		return r.Y1 < y && y < r.Y2 && lo < r.X2 && r.X1 < hi
	case a.X == b.X: // vertical segment
		x := a.X
		lo, hi := minMax(a.Y, b.Y)
		return r.X1 < x && x < r.X2 && lo < r.Y2 && r.Y1 < hi
	default:
		// Not axis-parallel: callers never do this for rectilinear edges.
		return false
	}
}

// BoundingBox returns the smallest rectangle containing all points. The
// returned layer is 0; multi-layer callers only use the XY extent. It
// panics on an empty slice because an empty bounding box has no meaning.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingBox of empty point set")
	}
	r := Rect{X1: pts[0].X, Y1: pts[0].Y, X2: pts[0].X, Y2: pts[0].Y}
	for _, p := range pts[1:] {
		r.X1 = min(r.X1, p.X)
		r.Y1 = min(r.Y1, p.Y)
		r.X2 = max(r.X2, p.X)
		r.Y2 = max(r.Y2, p.Y)
	}
	return r
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func minMax(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}
