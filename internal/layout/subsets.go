package layout

// SubsetSpec describes one of the randomly generated test subsets of the
// paper's Table 1 together with the layout count the paper used.
type SubsetSpec struct {
	Name string
	Spec RandomSpec
	// PaperLayouts is the number of layouts the paper generated for the
	// subset; the benchmark harness scales this down for CPU budgets.
	PaperLayouts int
}

// SubsetSpecs returns the seven test subsets of Table 1 with exactly the
// paper's parameters. Pin and obstacle counts grow with the layout
// dimensions; layer counts always range over 4..10.
func SubsetSpecs() []SubsetSpec {
	mk := func(name string, h, v, minPins, maxPins, minObs, maxObs, layouts int) SubsetSpec {
		return SubsetSpec{
			Name: name,
			Spec: RandomSpec{
				H: h, V: v,
				MinM: 4, MaxM: 10,
				MinPins: minPins, MaxPins: maxPins,
				MinObstacles: minObs, MaxObstacles: maxObs,
			},
			PaperLayouts: layouts,
		}
	}
	return []SubsetSpec{
		mk("T32", 32, 32, 3, 10, 128, 640, 50000),
		mk("T64", 64, 64, 12, 40, 512, 2560, 50000),
		mk("T128", 128, 128, 48, 160, 2048, 10240, 50000),
		mk("T128_2", 128, 256, 96, 320, 4096, 20480, 50000),
		mk("T256", 256, 256, 192, 640, 8192, 40960, 16000),
		mk("T256_2", 256, 512, 384, 1280, 16384, 81920, 1000),
		mk("T512", 512, 512, 768, 2560, 32768, 163840, 360),
	}
}

// SubsetByName returns the Table 1 subset with the given name, or false.
func SubsetByName(name string) (SubsetSpec, bool) {
	for _, s := range SubsetSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return SubsetSpec{}, false
}
