package layout

import (
	"bytes"
	"strings"
	"testing"
)

const sampleText = `# demo layout
layers 4
viacost 3
pins 3
10 20
30 40 1
55 5 0
obstacles 2
0 0 8 8
12 12 20 18 2
`

func TestDecodeTextFull(t *testing.T) {
	l, err := DecodeText(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	if l.Layers != 4 || l.ViaCost != 3 {
		t.Errorf("layers=%d via=%v", l.Layers, l.ViaCost)
	}
	if len(l.Pins) != 3 || len(l.Obstacles) != 2 {
		t.Fatalf("pins=%d obstacles=%d", len(l.Pins), len(l.Obstacles))
	}
	if l.Pins[1].Layer != 1 || l.Pins[0].Layer != 0 {
		t.Errorf("pin layers = %v", l.Pins)
	}
	if l.Obstacles[1].Layer != 2 {
		t.Errorf("obstacle layer = %d", l.Obstacles[1].Layer)
	}
	// The decoded layout converts to a working instance.
	in, err := l.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if !in.Routable() {
		t.Error("decoded layout should be routable")
	}
}

func TestDecodeTextHistoricalBareCounts(t *testing.T) {
	// The historical format: bare pin count, pins, bare obstacle count,
	// obstacles, single layer implied.
	text := `2
0 0
9 9
1
2 2 5 5
`
	l, err := DecodeText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if l.Layers != 1 || len(l.Pins) != 2 || len(l.Obstacles) != 1 {
		t.Errorf("decoded %+v", l)
	}
}

func TestDecodeTextErrors(t *testing.T) {
	cases := []string{
		"pins 2\n0 0\n",                   // missing pin
		"pins 1\n0 0 0 0 0\n",             // too many fields
		"pins x\n",                        // bad count
		"layers x\n",                      // bad layers
		"pins 2\n0 0\n1 1\njunk here z\n", // trailing garbage
		"pins 1\n5 5\n",                   // single pin fails validation
	}
	for i, c := range cases {
		if _, err := DecodeText(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	l, err := DecodeText(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	l.Name = "demo"
	var buf bytes.Buffer
	if err := EncodeText(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Pins) != len(l.Pins) || len(back.Obstacles) != len(l.Obstacles) {
		t.Error("round trip changed object counts")
	}
	for i := range l.Pins {
		if back.Pins[i] != l.Pins[i] {
			t.Errorf("pin %d changed: %v vs %v", i, back.Pins[i], l.Pins[i])
		}
	}
}

func TestDecodeAnySniffsFormat(t *testing.T) {
	// JSON input.
	js := `{"grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0,3]}}`
	in, err := DecodeAny(strings.NewReader("  \n" + js))
	if err != nil {
		t.Fatal(err)
	}
	if in.Graph.H != 2 {
		t.Error("JSON path failed")
	}
	// Text input.
	in2, err := DecodeAny(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	if in2.NumPins() != 3 {
		t.Error("text path failed")
	}
	// Empty input.
	if _, err := DecodeAny(strings.NewReader("   ")); err == nil {
		t.Error("empty input should fail")
	}
}
