package layout

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode hardens the JSON layout reader: arbitrary input must either
// decode into a structurally valid instance or return an error — never
// panic, and never produce an instance that violates its own invariants.
func FuzzDecode(f *testing.F) {
	f.Add(`{"layers":2,"viaCost":3,"pins":[{"x":0,"y":0,"layer":0},{"x":5,"y":5,"layer":1}]}`)
	f.Add(`{"grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0,1]}}`)
	f.Add(`{"grid":{"h":3,"v":2,"m":2,"viaCost":2,"dx":[1,2],"dy":[3],"hscale":[1,2],"vscale":[2,1],"blocked":[5],"pins":[0,11]}}`)
	f.Add(`{"name":"x","obstacles":[{"x1":0,"y1":0,"x2":4,"y2":4,"layer":0}],"layers":1,"viaCost":1,"pins":[{"x":-1,"y":-1,"layer":0},{"x":9,"y":9,"layer":0}]}`)
	f.Add(`{`)
	f.Add(`{"grid":{"h":-1}}`)
	f.Add(`{"grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0,99]}}`)

	f.Fuzz(func(t *testing.T, data string) {
		in, err := Decode(strings.NewReader(data))
		if err != nil {
			return
		}
		g := in.Graph
		if g == nil || g.H < 1 || g.V < 1 || g.M < 1 {
			t.Fatalf("decoded invalid graph dims from %q", data)
		}
		if len(in.Pins) < 2 {
			t.Fatalf("decoded instance with %d pins", len(in.Pins))
		}
		for _, p := range in.Pins {
			if int(p) < 0 || int(p) >= g.NumVertices() {
				t.Fatalf("pin %d out of range", p)
			}
			if g.Blocked(p) {
				t.Fatal("decoded pin on blocked vertex")
			}
		}
		// Round trip must succeed and preserve the pin count.
		var buf bytes.Buffer
		if err := EncodeInstance(&buf, in); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if back.NumPins() != in.NumPins() {
			t.Fatal("round trip changed pin count")
		}
	})
}

// FuzzTextFmt hardens the plain-text benchmark reader the same way
// FuzzDecode hardens the JSON path: arbitrary input must either parse into
// a layout that survives an EncodeText/DecodeText round trip or return an
// error — never panic.
func FuzzTextFmt(f *testing.F) {
	f.Add("pins 2\n0 0\n5 5\n")
	f.Add("layers 4\nviacost 3\npins 3\n10 20\n30 40 1\n55 5 0\nobstacles 1\n0 0 8 8\n")
	f.Add("2\n0 0\n9 9\n1\n1 1 2 2\n")
	f.Add("# comment\n\npins 1\n7 7\n")
	f.Add("pins x\n")
	f.Add("layers -3\npins 2\n0 0\n1 1 9\n")

	f.Fuzz(func(t *testing.T, data string) {
		l, err := DecodeText(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeText(&buf, l); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := DecodeText(&buf)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if len(back.Pins) != len(l.Pins) || len(back.Obstacles) != len(l.Obstacles) {
			t.Fatalf("round trip changed counts: pins %d->%d, obstacles %d->%d",
				len(l.Pins), len(back.Pins), len(l.Obstacles), len(back.Obstacles))
		}
	})
}
