package layout

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"oarsmt/internal/errs"
	"oarsmt/internal/geom"
)

func pinAt(x, y, layer int) geom.Point { return geom.Point{X: x, Y: y, Layer: layer} }

func rectAt(x1, y1, x2, y2, layer int) geom.Rect { return geom.NewRect(x1, y1, x2, y2, layer) }

// Textual benchmark format, a superset of the plain-text files circulating
// with the OARSMT benchmark suites (rt1-rt5, ind1-ind3) so that users who
// have the original files can run them directly:
//
//	# comments and blank lines are ignored
//	layers 4            (optional, default 1)
//	viacost 3           (optional, default 3)
//	pins 3
//	10 20               (x y, layer defaults to 0)
//	30 40 1             (x y layer)
//	55 5 0
//	obstacles 1
//	0 0 8 8             (x1 y1 x2 y2, layer defaults to 0)
//	12 12 20 18 2       (x1 y1 x2 y2 layer)
//
// The section headers `pins N` / `obstacles N` may also be bare counts on
// their own line (the historical format), in which case the first count is
// the pin count and the second the obstacle count.
//
// DecodeText parses the format into a geometric Layout.
func DecodeText(r io.Reader) (*Layout, error) {
	sc := bufio.NewScanner(r)
	l := &Layout{Layers: 1, ViaCost: 3}
	var (
		pinsLeft, obsLeft int
		sawPins, sawObs   bool
		lineNo            int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(strings.ToLower(line))
		switch {
		case fields[0] == "layers" && len(fields) == 2:
			if _, err := fmt.Sscanf(fields[1], "%d", &l.Layers); err != nil {
				return nil, textErr(lineNo, "bad layer count %q", fields[1])
			}
		case fields[0] == "viacost" && len(fields) == 2:
			if _, err := fmt.Sscanf(fields[1], "%g", &l.ViaCost); err != nil {
				return nil, textErr(lineNo, "bad via cost %q", fields[1])
			}
		case fields[0] == "pins" && len(fields) == 2:
			if _, err := fmt.Sscanf(fields[1], "%d", &pinsLeft); err != nil {
				return nil, textErr(lineNo, "bad pin count %q", fields[1])
			}
			sawPins = true
		case fields[0] == "obstacles" && len(fields) == 2:
			if _, err := fmt.Sscanf(fields[1], "%d", &obsLeft); err != nil {
				return nil, textErr(lineNo, "bad obstacle count %q", fields[1])
			}
			sawObs = true
		case len(fields) == 1 && !sawPins:
			// Historical bare count: first is pins.
			if _, err := fmt.Sscanf(fields[0], "%d", &pinsLeft); err != nil {
				return nil, textErr(lineNo, "bad count %q", fields[0])
			}
			sawPins = true
		case len(fields) == 1 && !sawObs:
			if _, err := fmt.Sscanf(fields[0], "%d", &obsLeft); err != nil {
				return nil, textErr(lineNo, "bad count %q", fields[0])
			}
			sawObs = true
		case pinsLeft > 0:
			var x, y, layer int
			switch len(fields) {
			case 2:
				if _, err := fmt.Sscanf(line, "%d %d", &x, &y); err != nil {
					return nil, textErr(lineNo, "bad pin %q", line)
				}
			case 3:
				if _, err := fmt.Sscanf(line, "%d %d %d", &x, &y, &layer); err != nil {
					return nil, textErr(lineNo, "bad pin %q", line)
				}
			default:
				return nil, textErr(lineNo, "pin needs 2 or 3 fields, got %d", len(fields))
			}
			l.Pins = append(l.Pins, pinAt(x, y, layer))
			pinsLeft--
		case obsLeft > 0:
			var x1, y1, x2, y2, layer int
			switch len(fields) {
			case 4:
				if _, err := fmt.Sscanf(line, "%d %d %d %d", &x1, &y1, &x2, &y2); err != nil {
					return nil, textErr(lineNo, "bad obstacle %q", line)
				}
			case 5:
				if _, err := fmt.Sscanf(line, "%d %d %d %d %d", &x1, &y1, &x2, &y2, &layer); err != nil {
					return nil, textErr(lineNo, "bad obstacle %q", line)
				}
			default:
				return nil, textErr(lineNo, "obstacle needs 4 or 5 fields, got %d", len(fields))
			}
			l.Obstacles = append(l.Obstacles, rectAt(x1, y1, x2, y2, layer))
			obsLeft--
		default:
			return nil, textErr(lineNo, "unexpected line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pinsLeft > 0 || obsLeft > 0 {
		return nil, fmt.Errorf("layout: text format: %d pins and %d obstacles missing", pinsLeft, obsLeft)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// EncodeText writes the layout in the textual benchmark format.
func EncodeText(w io.Writer, l *Layout) error {
	bw := bufio.NewWriter(w)
	if l.Name != "" {
		fmt.Fprintf(bw, "# %s\n", l.Name)
	}
	fmt.Fprintf(bw, "layers %d\nviacost %g\n", l.Layers, l.ViaCost)
	fmt.Fprintf(bw, "pins %d\n", len(l.Pins))
	for _, p := range l.Pins {
		fmt.Fprintf(bw, "%d %d %d\n", p.X, p.Y, p.Layer)
	}
	fmt.Fprintf(bw, "obstacles %d\n", len(l.Obstacles))
	for _, r := range l.Obstacles {
		fmt.Fprintf(bw, "%d %d %d %d %d\n", r.X1, r.Y1, r.X2, r.Y2, r.Layer)
	}
	return bw.Flush()
}

// DecodeAny sniffs the input: a leading '{' selects the JSON reader,
// anything else the text reader (converted to grid form). Malformed
// inputs match oarsmt.ErrInvalidLayout under errors.Is.
func DecodeAny(r io.Reader) (*Instance, error) {
	in, err := decodeAny(r)
	if err != nil && !errors.Is(err, errs.ErrInvalidLayout) {
		return nil, fmt.Errorf("%w: %w", errs.ErrInvalidLayout, err)
	}
	return in, err
}

func decodeAny(r io.Reader) (*Instance, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("layout: empty input")
		}
		switch b[0] {
		case ' ', '\t', '\n', '\r':
			if _, err := br.ReadByte(); err != nil {
				return nil, err
			}
			continue
		case '{':
			return Decode(br)
		default:
			l, err := DecodeText(br)
			if err != nil {
				return nil, err
			}
			return l.Instance()
		}
	}
}

func textErr(line int, format string, args ...any) error {
	return fmt.Errorf("layout: text format line %d: %s", line, fmt.Sprintf(format, args...))
}
