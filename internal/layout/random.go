package layout

import (
	"fmt"
	"math/rand"

	"oarsmt/internal/errs"
	"oarsmt/internal/grid"
)

// RandomSpec parameterises the direct-grid random layout generator used
// both by the training schedule (paper §3.6) and the Table 1 test subsets.
// Ranges are inclusive.
type RandomSpec struct {
	H, V int
	// MinM..MaxM: routing layer count range.
	MinM, MaxM int
	// MinPins..MaxPins: pin count range.
	MinPins, MaxPins int
	// MinObstacles..MaxObstacles: obstacle count range. Each obstacle is a
	// run of ObstacleLens consecutive blocked vertices placed horizontally
	// or vertically on a random layer; obstacles may overlap, forming more
	// complicated shapes (paper §3.6).
	MinObstacles, MaxObstacles int
	// ObstacleLens are the permitted run lengths; defaults to {3, 4}.
	ObstacleLens []int
	// MinEdgeCost..MaxEdgeCost: integer Hanan edge cost range; defaults to
	// 1..1000 (paper §3.6).
	MinEdgeCost, MaxEdgeCost int
	// MinViaCost..MaxViaCost: integer via cost range; defaults to 3..5.
	MinViaCost, MaxViaCost int
	// PreferredDirectionPenalty, when > 1, makes layers direction-
	// preferred in alternation (even layers horizontal, odd vertical):
	// the non-preferred direction's edge costs are multiplied by the
	// penalty. This extension exercises the router's "any routing costs
	// between grids" generality on a realistic metal-stack cost model.
	PreferredDirectionPenalty float64
}

func (s RandomSpec) withDefaults() RandomSpec {
	if len(s.ObstacleLens) == 0 {
		s.ObstacleLens = []int{3, 4}
	}
	if s.MinEdgeCost == 0 && s.MaxEdgeCost == 0 {
		s.MinEdgeCost, s.MaxEdgeCost = 1, 1000
	}
	if s.MinViaCost == 0 && s.MaxViaCost == 0 {
		s.MinViaCost, s.MaxViaCost = 3, 5
	}
	if s.MaxM == 0 {
		s.MaxM = s.MinM
	}
	if s.MaxPins == 0 {
		s.MaxPins = s.MinPins
	}
	if s.MaxObstacles == 0 {
		s.MaxObstacles = s.MinObstacles
	}
	return s
}

func (s RandomSpec) validate() error {
	switch {
	case s.H < 2 || s.V < 2:
		return fmt.Errorf("%w: spec dims %dx%d too small", errs.ErrInvalidLayout, s.H, s.V)
	case s.MinM < 1 || s.MaxM < s.MinM:
		return fmt.Errorf("%w: spec layer range [%d,%d]", errs.ErrInvalidLayout, s.MinM, s.MaxM)
	case s.MinPins < 2 || s.MaxPins < s.MinPins:
		return fmt.Errorf("%w: spec pin range [%d,%d]", errs.ErrInvalidLayout, s.MinPins, s.MaxPins)
	case s.MinObstacles < 0 || s.MaxObstacles < s.MinObstacles:
		return fmt.Errorf("%w: spec obstacle range [%d,%d]", errs.ErrInvalidLayout, s.MinObstacles, s.MaxObstacles)
	case s.MinEdgeCost < 1 || s.MaxEdgeCost < s.MinEdgeCost:
		return fmt.Errorf("%w: spec edge cost range [%d,%d]", errs.ErrInvalidLayout, s.MinEdgeCost, s.MaxEdgeCost)
	case s.MinViaCost < 1 || s.MaxViaCost < s.MinViaCost:
		return fmt.Errorf("%w: spec via cost range [%d,%d]", errs.ErrInvalidLayout, s.MinViaCost, s.MaxViaCost)
	}
	return nil
}

func randRange(r *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Random generates one random grid-form layout from the spec. The layout
// is guaranteed routable: generation retries (up to 100 attempts) until
// every pin lies in a single free component, then fails with an error for
// pathological specs.
func Random(r *rand.Rand, spec RandomSpec) (*Instance, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	const maxAttempts = 100
	for attempt := 0; attempt < maxAttempts; attempt++ {
		in, err := randomOnce(r, spec)
		if err != nil {
			return nil, err
		}
		if in.Routable() {
			return in, nil
		}
	}
	return nil, fmt.Errorf("%w: no routable layout after %d attempts for spec %+v", errs.ErrInvalidLayout, maxAttempts, spec)
}

func randomOnce(r *rand.Rand, spec RandomSpec) (*Instance, error) {
	m := randRange(r, spec.MinM, spec.MaxM)
	dx := make([]float64, spec.H-1)
	for i := range dx {
		dx[i] = float64(randRange(r, spec.MinEdgeCost, spec.MaxEdgeCost))
	}
	dy := make([]float64, spec.V-1)
	for i := range dy {
		dy[i] = float64(randRange(r, spec.MinEdgeCost, spec.MaxEdgeCost))
	}
	via := float64(randRange(r, spec.MinViaCost, spec.MaxViaCost))
	g, err := grid.New(spec.H, spec.V, m, dx, dy, via)
	if err != nil {
		return nil, err
	}
	if p := spec.PreferredDirectionPenalty; p > 1 {
		hs := make([]float64, m)
		vs := make([]float64, m)
		for i := 0; i < m; i++ {
			if i%2 == 0 { // horizontal-preferred layer
				hs[i], vs[i] = 1, p
			} else { // vertical-preferred layer
				hs[i], vs[i] = p, 1
			}
		}
		if err := g.SetLayerScales(hs, vs); err != nil {
			return nil, err
		}
	}

	nObs := randRange(r, spec.MinObstacles, spec.MaxObstacles)
	for i := 0; i < nObs; i++ {
		placeObstacleRun(r, g, spec.ObstacleLens)
	}

	nPins := randRange(r, spec.MinPins, spec.MaxPins)
	pins, err := placePins(r, g, nPins)
	if err != nil {
		return nil, err
	}
	return &Instance{Graph: g, Pins: pins}, nil
}

// placeObstacleRun blocks a horizontal or vertical run of consecutive
// vertices on one layer. Runs are clipped at the grid border rather than
// rejected so the requested obstacle count is always placed.
func placeObstacleRun(r *rand.Rand, g *grid.Graph, lens []int) {
	length := lens[r.Intn(len(lens))]
	m := r.Intn(g.M)
	if r.Intn(2) == 0 { // horizontal run along H
		h0 := r.Intn(g.H)
		v := r.Intn(g.V)
		for i := 0; i < length && h0+i < g.H; i++ {
			g.Block(g.Index(h0+i, v, m))
		}
	} else { // vertical run along V
		h := r.Intn(g.H)
		v0 := r.Intn(g.V)
		for i := 0; i < length && v0+i < g.V; i++ {
			g.Block(g.Index(h, v0+i, m))
		}
	}
}

func placePins(r *rand.Rand, g *grid.Graph, n int) ([]grid.VertexID, error) {
	free := 0
	for id := 0; id < g.NumVertices(); id++ {
		if !g.Blocked(grid.VertexID(id)) {
			free++
		}
	}
	if free < n {
		return nil, fmt.Errorf("%w: %d free vertices for %d pins", errs.ErrInvalidLayout, free, n)
	}
	pins := make([]grid.VertexID, 0, n)
	used := make(map[grid.VertexID]bool, n)
	for len(pins) < n {
		id := grid.VertexID(r.Intn(g.NumVertices()))
		if g.Blocked(id) || used[id] {
			continue
		}
		used[id] = true
		pins = append(pins, id)
	}
	return pins, nil
}

// TrainingSize is one of the 12 layout sizes of the paper's mixed-size
// training schedule (§3.6).
type TrainingSize struct {
	HV int // H == V
	M  int
}

// TrainingSizes returns the 12 (H=V, M) combinations of §3.6:
// {16, 24, 32} x {4, 6, 8, 10}.
func TrainingSizes() []TrainingSize {
	var out []TrainingSize
	for _, hv := range []int{16, 24, 32} {
		for _, m := range []int{4, 6, 8, 10} {
			out = append(out, TrainingSize{HV: hv, M: m})
		}
	}
	return out
}

// TrainingSpec returns the random-layout spec of the training schedule for
// one size: pins in [minPins, maxPins], obstacle count scaled from the
// 32..64 range the paper specifies for 16x16x4 proportionally to the
// layout volume, 1x3/1x4 obstacle runs, edge costs 1..1000, via costs 3..5.
func TrainingSpec(size TrainingSize, minPins, maxPins int) RandomSpec {
	baseVol := 16 * 16 * 4
	vol := size.HV * size.HV * size.M
	scale := float64(vol) / float64(baseVol)
	return RandomSpec{
		H: size.HV, V: size.HV,
		MinM: size.M, MaxM: size.M,
		MinPins: minPins, MaxPins: maxPins,
		MinObstacles: int(32 * scale),
		MaxObstacles: int(64 * scale),
	}
}
