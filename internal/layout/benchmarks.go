package layout

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"oarsmt/internal/errs"
)

// BenchmarkSpec describes one public benchmark layout of the paper's
// Table 4 by its published statistics. The original benchmark files (from
// the OARSMT literature) are not distributed with the paper, so this repo
// regenerates deterministic synthetic equivalents with the same
// Hanan-graph dimensions, pin count, obstacle count and via cost; see
// DESIGN.md for the substitution rationale.
type BenchmarkSpec struct {
	Name      string
	H, V, M   int
	Pins      int
	Obstacles int
	ViaCost   float64
}

// BenchmarkSpecs returns the eight public benchmarks of Table 4 with the
// paper's published statistics (via cost 3 throughout).
func BenchmarkSpecs() []BenchmarkSpec {
	mk := func(name string, h, v, m, pins, obs int) BenchmarkSpec {
		return BenchmarkSpec{Name: name, H: h, V: v, M: m, Pins: pins, Obstacles: obs, ViaCost: 3}
	}
	return []BenchmarkSpec{
		mk("rt1", 45, 44, 10, 25, 10),
		mk("rt2", 136, 131, 10, 100, 20),
		mk("rt3", 294, 285, 10, 250, 50),
		mk("rt4", 458, 449, 10, 500, 50),
		mk("rt5", 702, 707, 4, 1000, 1000),
		mk("ind1", 33, 28, 4, 50, 6),
		mk("ind2", 83, 191, 5, 200, 85),
		mk("ind3", 221, 223, 9, 250, 13),
	}
}

// BenchmarkByName returns the Table 4 benchmark spec with the given name.
func BenchmarkByName(name string) (BenchmarkSpec, bool) {
	for _, b := range BenchmarkSpecs() {
		if b.Name == name {
			return b, true
		}
	}
	return BenchmarkSpec{}, false
}

// Generate builds the deterministic synthetic equivalent of the benchmark:
// a grid instance with the published dimensions, non-uniform Hanan edge
// costs, the published number of rectangular obstacle clusters, and the
// published pin count. The same name always yields the same layout.
func (b BenchmarkSpec) Generate() (*Instance, error) {
	if b.H < 2 || b.V < 2 || b.M < 1 || b.Pins < 2 {
		return nil, fmt.Errorf("%w: benchmark %q has invalid spec", errs.ErrInvalidLayout, b.Name)
	}
	r := rand.New(rand.NewSource(int64(nameSeed(b.Name))))

	// Non-uniform spacing emulates a Hanan grid derived from scattered
	// original coordinates.
	spec := RandomSpec{
		H: b.H, V: b.V,
		MinM: b.M, MaxM: b.M,
		MinPins: b.Pins, MaxPins: b.Pins,
		MinObstacles: 0, MaxObstacles: 0,
		MinEdgeCost: 1, MaxEdgeCost: 10,
		MinViaCost:   int(b.ViaCost),
		MaxViaCost:   int(b.ViaCost),
		ObstacleLens: []int{1}, // unused: clusters are placed below
	}
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		in, err := randomOnce(r, spec.withDefaults())
		if err != nil {
			return nil, err
		}
		placeObstacleClusters(r, in, b)
		if in.Routable() {
			in.Name = b.Name
			return in, nil
		}
	}
	return nil, fmt.Errorf("%w: benchmark %q unroutable after %d attempts", errs.ErrInvalidLayout, b.Name, maxAttempts)
}

// placeObstacleClusters blocks b.Obstacles rectangular clusters of
// vertices, each on one layer, with side lengths scaled to the benchmark
// size. Clusters avoid pins; overlaps between clusters are allowed, as in
// the original benchmarks.
func placeObstacleClusters(r *rand.Rand, in *Instance, b BenchmarkSpec) {
	g := in.Graph
	pinSet := in.PinSet()
	maxSide := max(1, min(g.H, g.V)/24)
	for i := 0; i < b.Obstacles; i++ {
		w := 1 + r.Intn(maxSide)
		d := 1 + r.Intn(maxSide)
		h0 := r.Intn(max(1, g.H-w))
		v0 := r.Intn(max(1, g.V-d))
		m := r.Intn(g.M)
		for h := h0; h < h0+w && h < g.H; h++ {
			for v := v0; v < v0+d && v < g.V; v++ {
				id := g.Index(h, v, m)
				if _, isPin := pinSet[id]; !isPin {
					g.Block(id)
				}
			}
		}
	}
}

func nameSeed(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}
