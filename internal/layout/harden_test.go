package layout

import (
	"math"
	"strings"
	"testing"

	"oarsmt/internal/grid"
)

// TestDecodeRejectsMalformed feeds the JSON decoder the malformed bodies a
// routing server must survive: each must produce a descriptive error, and
// none may panic.
func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"not json", `{"grid": `, "decode"},
		{"zero dims", `{"name":"x","grid":{"h":0,"v":4,"m":1,"viaCost":1,"dx":[],"dy":[1,1,1],"pins":[0,1]}}`, "dimensions"},
		{"negative dims", `{"name":"x","grid":{"h":-3,"v":4,"m":1,"viaCost":1,"dx":[],"dy":[1,1,1],"pins":[0,1]}}`, "dimensions"},
		{"overflow dims", `{"name":"x","grid":{"h":100000,"v":100000,"m":1000,"viaCost":1,"dx":[],"dy":[],"pins":[0,1]}}`, "exceeds"},
		{"dx length", `{"name":"x","grid":{"h":3,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0,1]}}`, "len(dx)"},
		{"zero edge cost", `{"name":"x","grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[0],"dy":[1],"pins":[0,1]}}`, "want finite > 0"},
		{"negative via", `{"name":"x","grid":{"h":2,"v":2,"m":2,"viaCost":-1,"dx":[1],"dy":[1],"pins":[0,1]}}`, "via cost"},
		{"pin out of range", `{"name":"x","grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0,99]}}`, "out of range"},
		{"negative pin", `{"name":"x","grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[-1,1]}}`, "out of range"},
		{"blocked pin", `{"name":"x","grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"blocked":[0],"pins":[0,1]}}`, "blocked"},
		{"blocked out of range", `{"name":"x","grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"blocked":[9],"pins":[0,1]}}`, "out of range"},
		{"one pin", `{"name":"x","grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0]}}`, "at least 2"},
		{"duplicate-only pins", `{"name":"x","grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[3,3,3]}}`, "distinct"},
		{"bad hscale", `{"name":"x","grid":{"h":2,"v":2,"m":2,"viaCost":1,"dx":[1],"dy":[1],"hscale":[1,0],"pins":[0,1]}}`, "HScale"},
		{"geometric no layers", `{"name":"x","viaCost":1,"pins":[{"x":0,"y":0,"layer":0},{"x":5,"y":5,"layer":0}]}`, "layers"},
		{"geometric zero via", `{"name":"x","layers":2,"viaCost":0,"pins":[{"x":0,"y":0,"layer":0},{"x":5,"y":5,"layer":0}]}`, "via cost"},
		{"geometric one pin", `{"name":"x","layers":2,"viaCost":1,"pins":[{"x":0,"y":0,"layer":0}]}`, "pins"},
		{"geometric pin layer", `{"name":"x","layers":2,"viaCost":1,"pins":[{"x":0,"y":0,"layer":5},{"x":5,"y":5,"layer":0}]}`, "layer"},
		{"geometric obstacle layer", `{"name":"x","layers":2,"viaCost":1,"pins":[{"x":0,"y":0,"layer":0},{"x":9,"y":9,"layer":0}],"obstacles":[{"x1":2,"y1":2,"x2":4,"y2":4,"layer":7}]}`, "obstacle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("Decode accepted malformed body %s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Decode error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestDecodeWithLimit checks the pre-allocation volume budget of the grid
// form and the post-construction budget of the geometric form.
func TestDecodeWithLimit(t *testing.T) {
	big := `{"name":"big","grid":{"h":100,"v":100,"m":4,"viaCost":1,` +
		`"dx":` + ones(99) + `,"dy":` + ones(99) + `,"pins":[0,1]}}`
	if _, err := DecodeWithLimit(strings.NewReader(big), 1000); err == nil {
		t.Fatal("DecodeWithLimit accepted a 40000-vertex grid with a 1000-vertex budget")
	}
	if _, err := DecodeWithLimit(strings.NewReader(big), 0); err != nil {
		t.Fatalf("unlimited decode failed: %v", err)
	}
	small := `{"name":"small","grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0,3]}}`
	if _, err := DecodeWithLimit(strings.NewReader(small), 1000); err != nil {
		t.Fatalf("DecodeWithLimit rejected a valid small grid: %v", err)
	}
}

// TestGridRejectsNaN exercises the non-finite cost checks directly (JSON
// cannot carry NaN, but programmatic construction can).
func TestGridRejectsNaN(t *testing.T) {
	if _, err := grid.New(2, 2, 1, []float64{math.NaN()}, []float64{1}, 1); err == nil {
		t.Fatal("grid.New accepted NaN dx")
	}
	if _, err := grid.New(2, 2, 1, []float64{1}, []float64{math.Inf(1)}, 1); err == nil {
		t.Fatal("grid.New accepted +Inf dy")
	}
	if _, err := grid.New(2, 2, 1, []float64{1}, []float64{1}, math.NaN()); err == nil {
		t.Fatal("grid.New accepted NaN via cost")
	}
	g, err := grid.New(2, 2, 2, []float64{1}, []float64{1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetLayerScales([]float64{1, math.NaN()}, nil); err == nil {
		t.Fatal("SetLayerScales accepted NaN")
	}
}

func ones(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = "1"
	}
	return "[" + strings.Join(parts, ",") + "]"
}
