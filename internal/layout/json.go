package layout

import (
	"encoding/json"
	"fmt"
	"io"

	"oarsmt/internal/errs"
	"oarsmt/internal/geom"
	"oarsmt/internal/grid"
)

// The JSON schema supports both layout forms. A geometric layout:
//
//	{
//	  "name": "demo", "layers": 4, "viaCost": 3,
//	  "pins": [{"x": 10, "y": 20, "layer": 0}, ...],
//	  "obstacles": [{"x1": 0, "y1": 0, "x2": 5, "y2": 5, "layer": 1}, ...]
//	}
//
// A grid-form instance:
//
//	{
//	  "name": "demo", "grid": {
//	    "h": 16, "v": 16, "m": 4, "viaCost": 3,
//	    "dx": [...H-1 costs...], "dy": [...V-1 costs...],
//	    "blocked": [vertexID, ...], "pins": [vertexID, ...]
//	  }
//	}

type jsonPin struct {
	X     int `json:"x"`
	Y     int `json:"y"`
	Layer int `json:"layer"`
}

type jsonRect struct {
	X1    int `json:"x1"`
	Y1    int `json:"y1"`
	X2    int `json:"x2"`
	Y2    int `json:"y2"`
	Layer int `json:"layer"`
}

type jsonGrid struct {
	H       int       `json:"h"`
	V       int       `json:"v"`
	M       int       `json:"m"`
	ViaCost float64   `json:"viaCost"`
	DX      []float64 `json:"dx"`
	DY      []float64 `json:"dy"`
	// HScale and VScale are optional per-layer preferred-direction cost
	// multipliers (length M).
	HScale  []float64 `json:"hscale,omitempty"`
	VScale  []float64 `json:"vscale,omitempty"`
	Blocked []int32   `json:"blocked,omitempty"`
	Pins    []int32   `json:"pins"`
}

type jsonLayout struct {
	Name      string     `json:"name,omitempty"`
	Layers    int        `json:"layers,omitempty"`
	ViaCost   float64    `json:"viaCost,omitempty"`
	Pins      []jsonPin  `json:"pins,omitempty"`
	Obstacles []jsonRect `json:"obstacles,omitempty"`
	Grid      *jsonGrid  `json:"grid,omitempty"`
}

// EncodeLayout writes the geometric layout as JSON.
func EncodeLayout(w io.Writer, l *Layout) error {
	jl := jsonLayout{Name: l.Name, Layers: l.Layers, ViaCost: l.ViaCost}
	for _, p := range l.Pins {
		jl.Pins = append(jl.Pins, jsonPin{X: p.X, Y: p.Y, Layer: p.Layer})
	}
	for _, r := range l.Obstacles {
		jl.Obstacles = append(jl.Obstacles, jsonRect{X1: r.X1, Y1: r.Y1, X2: r.X2, Y2: r.Y2, Layer: r.Layer})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jl)
}

// EncodeInstance writes the grid-form instance as JSON.
func EncodeInstance(w io.Writer, in *Instance) error {
	g := in.Graph
	jg := &jsonGrid{
		H: g.H, V: g.V, M: g.M, ViaCost: g.ViaCost,
		DX: g.DX, DY: g.DY,
		HScale: g.HScale, VScale: g.VScale,
	}
	for id := 0; id < g.NumVertices(); id++ {
		if g.Blocked(grid.VertexID(id)) {
			jg.Blocked = append(jg.Blocked, int32(id))
		}
	}
	for _, p := range in.Pins {
		jg.Pins = append(jg.Pins, int32(p))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonLayout{Name: in.Name, Grid: jg})
}

// Decode reads a JSON layout in either form and returns the grid-form
// instance, converting geometric layouts through the Hanan construction.
// Malformed inputs return errors matching the module's invalid-layout
// sentinel (oarsmt.ErrInvalidLayout) under errors.Is.
func Decode(rd io.Reader) (*Instance, error) {
	return DecodeWithLimit(rd, 0)
}

// DecodeWithLimit is Decode with a cap on the decoded instance's Hanan
// graph volume (vertex count). The grid form is checked before the graph
// is allocated, so a hostile request body cannot force a huge allocation;
// the geometric form (whose Hanan volume is bounded by the coordinate
// count of the body itself) is checked after construction. A limit <= 0
// means unlimited. Every malformed input returns a descriptive error;
// nothing in this path panics.
func DecodeWithLimit(rd io.Reader, maxVertices int) (*Instance, error) {
	in, err := decodeWithLimit(rd, maxVertices)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errs.ErrInvalidLayout, err)
	}
	return in, nil
}

func decodeWithLimit(rd io.Reader, maxVertices int) (*Instance, error) {
	var jl jsonLayout
	if err := json.NewDecoder(rd).Decode(&jl); err != nil {
		return nil, fmt.Errorf("layout: decode: %w", err)
	}
	if jl.Grid != nil {
		jg := jl.Grid
		if maxVertices > 0 && (jg.H < 1 || jg.V < 1 || jg.M < 1 ||
			int64(jg.H)*int64(jg.V)*int64(jg.M) > int64(maxVertices)) {
			return nil, fmt.Errorf("layout %q: grid %dx%dx%d outside the 1..%d vertex budget",
				jl.Name, jg.H, jg.V, jg.M, maxVertices)
		}
		return decodeGrid(&jl)
	}
	in, err := decodeGeometric(&jl)
	if err != nil {
		return nil, err
	}
	if maxVertices > 0 && in.Graph.NumVertices() > maxVertices {
		return nil, fmt.Errorf("layout %q: Hanan graph has %d vertices, budget is %d",
			jl.Name, in.Graph.NumVertices(), maxVertices)
	}
	return in, nil
}

func decodeGeometric(jl *jsonLayout) (*Instance, error) {
	l := &Layout{Name: jl.Name, Layers: jl.Layers, ViaCost: jl.ViaCost}
	for _, p := range jl.Pins {
		l.Pins = append(l.Pins, geom.Point{X: p.X, Y: p.Y, Layer: p.Layer})
	}
	for _, r := range jl.Obstacles {
		rect := geom.NewRect(r.X1, r.Y1, r.X2, r.Y2, r.Layer)
		l.Obstacles = append(l.Obstacles, rect)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l.Instance()
}

func decodeGrid(jl *jsonLayout) (*Instance, error) {
	jg := jl.Grid
	g, err := grid.New(jg.H, jg.V, jg.M, jg.DX, jg.DY, jg.ViaCost)
	if err != nil {
		return nil, fmt.Errorf("layout %q: %w", jl.Name, err)
	}
	if jg.HScale != nil || jg.VScale != nil {
		if err := g.SetLayerScales(jg.HScale, jg.VScale); err != nil {
			return nil, fmt.Errorf("layout %q: %w", jl.Name, err)
		}
	}
	n := g.NumVertices()
	for _, id := range jg.Blocked {
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("layout %q: blocked vertex %d out of range", jl.Name, id)
		}
		g.Block(grid.VertexID(id))
	}
	if len(jg.Pins) < 2 {
		return nil, fmt.Errorf("layout %q: %d pins, need at least 2", jl.Name, len(jg.Pins))
	}
	pins := make([]grid.VertexID, len(jg.Pins))
	distinct := map[int32]struct{}{}
	for i, id := range jg.Pins {
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("layout %q: pin %d out of range [0, %d)", jl.Name, id, n)
		}
		if g.Blocked(grid.VertexID(id)) {
			return nil, fmt.Errorf("layout %q: pin %d at %v is blocked by an obstacle",
				jl.Name, id, g.CoordOf(grid.VertexID(id)))
		}
		pins[i] = grid.VertexID(id)
		distinct[id] = struct{}{}
	}
	if len(distinct) < 2 {
		return nil, fmt.Errorf("layout %q: %d pins but only %d distinct, need at least 2",
			jl.Name, len(jg.Pins), len(distinct))
	}
	return &Instance{Name: jl.Name, Graph: g, Pins: pins}, nil
}
