// Package layout models ML-OARSMT routing problems and generates every
// workload the paper evaluates on: the random training layouts of §3.6,
// the random test subsets of Table 1, and synthetic equivalents of the
// public benchmarks of Table 4 (rt1–rt5, ind1–ind3).
//
// Two layout forms exist. A Layout is geometric — pins and rectangular
// obstacles in original coordinates — and is converted to a Hanan grid
// graph on demand. A Instance is the grid form every routing and learning
// component consumes: a grid.Graph plus the pin vertices. Random training
// layouts are generated directly in grid form, matching the paper's
// training schedule, which draws Hanan-graph edge costs directly.
package layout

import (
	"fmt"
	"math"

	"oarsmt/internal/geom"
	"oarsmt/internal/grid"
)

// Layout is a geometric ML-OARSMT problem: pins to connect, obstacles to
// avoid, a number of routing layers and a via cost.
type Layout struct {
	Name      string
	Layers    int
	ViaCost   float64
	Pins      []geom.Point
	Obstacles []geom.Rect
}

// Instance is the grid-form routing problem: the Hanan grid graph and the
// pin vertices on it.
type Instance struct {
	Name  string
	Graph *grid.Graph
	Pins  []grid.VertexID
}

// Instance converts the geometric layout to grid form by building its 3-D
// Hanan grid graph (paper §2.2).
func (l *Layout) Instance() (*Instance, error) {
	g, pins, err := grid.FromObjects(l.Pins, l.Obstacles, l.Layers, l.ViaCost)
	if err != nil {
		return nil, fmt.Errorf("layout %q: %w", l.Name, err)
	}
	return &Instance{Name: l.Name, Graph: g, Pins: pins}, nil
}

// Validate checks structural sanity of the geometric layout.
func (l *Layout) Validate() error {
	if l.Layers < 1 {
		return fmt.Errorf("layout %q: layers = %d", l.Name, l.Layers)
	}
	if !(l.ViaCost > 0) || math.IsInf(l.ViaCost, 1) {
		return fmt.Errorf("layout %q: via cost = %v, want finite > 0", l.Name, l.ViaCost)
	}
	if len(l.Pins) < 2 {
		return fmt.Errorf("layout %q: %d pins, need at least 2", l.Name, len(l.Pins))
	}
	for i, p := range l.Pins {
		if p.Layer < 0 || p.Layer >= l.Layers {
			return fmt.Errorf("layout %q: pin %d on layer %d of %d", l.Name, i, p.Layer, l.Layers)
		}
	}
	for i, r := range l.Obstacles {
		if !r.Valid() {
			return fmt.Errorf("layout %q: obstacle %d invalid", l.Name, i)
		}
		if r.Layer < 0 || r.Layer >= l.Layers {
			return fmt.Errorf("layout %q: obstacle %d on layer %d of %d", l.Name, i, r.Layer, l.Layers)
		}
	}
	return nil
}

// NumPins returns the pin count of the instance.
func (in *Instance) NumPins() int { return len(in.Pins) }

// MaxSteinerPoints returns n-2, the maximum number of irredundant Steiner
// points an n-pin layout can need (paper §2.1).
func (in *Instance) MaxSteinerPoints() int {
	n := len(in.Pins) - 2
	if n < 0 {
		return 0
	}
	return n
}

// PinSet returns the pins as a set.
func (in *Instance) PinSet() map[grid.VertexID]struct{} {
	s := make(map[grid.VertexID]struct{}, len(in.Pins))
	for _, p := range in.Pins {
		s[p] = struct{}{}
	}
	return s
}

// Routable reports whether every pin lies in one connected component of
// the free subgraph. It runs a BFS over free vertices, O(V+E).
func (in *Instance) Routable() bool {
	if len(in.Pins) == 0 {
		return false
	}
	g := in.Graph
	if g.Blocked(in.Pins[0]) {
		return false
	}
	visited := make([]bool, g.NumVertices())
	queue := []grid.VertexID{in.Pins[0]}
	visited[in.Pins[0]] = true
	var buf []grid.Neighbor
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		buf = g.Neighbors(v, buf[:0])
		for _, nb := range buf {
			if !visited[nb.ID] {
				visited[nb.ID] = true
				queue = append(queue, nb.ID)
			}
		}
	}
	for _, p := range in.Pins {
		if !visited[p] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	return &Instance{
		Name:  in.Name,
		Graph: in.Graph.Clone(),
		Pins:  append([]grid.VertexID(nil), in.Pins...),
	}
}
