package layout

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"oarsmt/internal/geom"
	"oarsmt/internal/grid"
)

func TestLayoutValidate(t *testing.T) {
	ok := &Layout{
		Name: "ok", Layers: 2, ViaCost: 3,
		Pins: []geom.Point{{X: 0, Y: 0, Layer: 0}, {X: 5, Y: 5, Layer: 1}},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid layout rejected: %v", err)
	}
	cases := []*Layout{
		{Name: "noLayers", Layers: 0, ViaCost: 1, Pins: ok.Pins},
		{Name: "badVia", Layers: 2, ViaCost: 0, Pins: ok.Pins},
		{Name: "onePin", Layers: 2, ViaCost: 1, Pins: ok.Pins[:1]},
		{Name: "pinLayer", Layers: 1, ViaCost: 1, Pins: []geom.Point{{X: 0, Y: 0, Layer: 0}, {X: 1, Y: 1, Layer: 3}}},
		{Name: "obsLayer", Layers: 2, ViaCost: 1, Pins: ok.Pins,
			Obstacles: []geom.Rect{geom.NewRect(0, 0, 1, 1, 9)}},
	}
	for _, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %q should fail validation", l.Name)
		}
	}
}

func TestLayoutInstance(t *testing.T) {
	l := &Layout{
		Name: "t", Layers: 2, ViaCost: 3,
		Pins:      []geom.Point{{X: 0, Y: 0, Layer: 0}, {X: 10, Y: 10, Layer: 1}},
		Obstacles: []geom.Rect{geom.NewRect(2, 2, 8, 8, 0)},
	}
	in, err := l.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if in.NumPins() != 2 || in.MaxSteinerPoints() != 0 {
		t.Errorf("pins=%d maxSP=%d", in.NumPins(), in.MaxSteinerPoints())
	}
	if !in.Routable() {
		t.Error("instance should be routable")
	}
}

func TestMaxSteinerPoints(t *testing.T) {
	in := &Instance{Pins: make([]grid.VertexID, 5)}
	if in.MaxSteinerPoints() != 3 {
		t.Errorf("n-2 = %d, want 3", in.MaxSteinerPoints())
	}
	one := &Instance{Pins: make([]grid.VertexID, 1)}
	if one.MaxSteinerPoints() != 0 {
		t.Error("single pin should need 0 Steiner points")
	}
}

func TestRoutableDetectsWalledPin(t *testing.T) {
	g, _ := grid.NewUniform(3, 3, 1, 1)
	g.Block(g.Index(1, 0, 0))
	g.Block(g.Index(0, 1, 0))
	g.Block(g.Index(1, 1, 0))
	in := &Instance{Graph: g, Pins: []grid.VertexID{g.Index(0, 0, 0), g.Index(2, 2, 0)}}
	if in.Routable() {
		t.Error("walled-off pin should be unroutable")
	}
}

func TestRandomRespectsSpec(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	spec := RandomSpec{
		H: 16, V: 16, MinM: 4, MaxM: 4,
		MinPins: 3, MaxPins: 6,
		MinObstacles: 32, MaxObstacles: 64,
	}
	for i := 0; i < 10; i++ {
		in, err := Random(r, spec)
		if err != nil {
			t.Fatal(err)
		}
		g := in.Graph
		if g.H != 16 || g.V != 16 || g.M != 4 {
			t.Fatalf("dims %dx%dx%d", g.H, g.V, g.M)
		}
		if n := in.NumPins(); n < 3 || n > 6 {
			t.Errorf("pins = %d outside [3,6]", n)
		}
		if g.ViaCost < 3 || g.ViaCost > 5 {
			t.Errorf("via cost = %v outside [3,5]", g.ViaCost)
		}
		for _, c := range g.DX {
			if c < 1 || c > 1000 {
				t.Fatalf("edge cost %v outside [1,1000]", c)
			}
		}
		if !in.Routable() {
			t.Error("generated layout must be routable")
		}
		for _, p := range in.Pins {
			if g.Blocked(p) {
				t.Error("pin on blocked vertex")
			}
		}
		// Obstacles present: 32 runs of >=1 vertices each.
		if g.NumBlocked() < 20 {
			t.Errorf("blocked = %d, expected obstacles present", g.NumBlocked())
		}
	}
}

func TestRandomDeterministicWithSeed(t *testing.T) {
	spec := RandomSpec{H: 12, V: 12, MinM: 2, MaxM: 4, MinPins: 3, MaxPins: 5, MinObstacles: 10, MaxObstacles: 20}
	a, err := Random(rand.New(rand.NewSource(99)), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(rand.New(rand.NewSource(99)), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.M != b.Graph.M || a.NumPins() != b.NumPins() {
		t.Error("same seed should give identical layouts")
	}
	for i := range a.Pins {
		if a.Pins[i] != b.Pins[i] {
			t.Fatal("pin placement differs under identical seeds")
		}
	}
}

func TestRandomSpecValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	bad := []RandomSpec{
		{H: 1, V: 5, MinM: 1, MinPins: 2},
		{H: 5, V: 5, MinM: 0, MinPins: 2},
		{H: 5, V: 5, MinM: 1, MinPins: 1},
		{H: 5, V: 5, MinM: 1, MinPins: 5, MaxPins: 3},
	}
	for i, s := range bad {
		if _, err := Random(r, s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestTrainingSizesAndSpec(t *testing.T) {
	sizes := TrainingSizes()
	if len(sizes) != 12 {
		t.Fatalf("training sizes = %d, want 12", len(sizes))
	}
	base := TrainingSpec(TrainingSize{HV: 16, M: 4}, 3, 6)
	if base.MinObstacles != 32 || base.MaxObstacles != 64 {
		t.Errorf("16x16x4 obstacles = [%d,%d], want [32,64]", base.MinObstacles, base.MaxObstacles)
	}
	big := TrainingSpec(TrainingSize{HV: 32, M: 10}, 3, 6)
	// Volume scale = (32*32*10)/(16*16*4) = 10.
	if big.MinObstacles != 320 || big.MaxObstacles != 640 {
		t.Errorf("32x32x10 obstacles = [%d,%d], want [320,640]", big.MinObstacles, big.MaxObstacles)
	}
}

func TestSubsetSpecsMatchTable1(t *testing.T) {
	specs := SubsetSpecs()
	if len(specs) != 7 {
		t.Fatalf("subsets = %d, want 7", len(specs))
	}
	t512, ok := SubsetByName("T512")
	if !ok {
		t.Fatal("T512 missing")
	}
	if t512.Spec.H != 512 || t512.Spec.V != 512 ||
		t512.Spec.MinPins != 768 || t512.Spec.MaxPins != 2560 ||
		t512.Spec.MinObstacles != 32768 || t512.Spec.MaxObstacles != 163840 ||
		t512.PaperLayouts != 360 {
		t.Errorf("T512 spec = %+v", t512)
	}
	t128x2, ok := SubsetByName("T128_2")
	if !ok || t128x2.Spec.H != 128 || t128x2.Spec.V != 256 {
		t.Errorf("T128_2 = %+v ok=%v", t128x2, ok)
	}
	if _, ok := SubsetByName("bogus"); ok {
		t.Error("unknown subset should not resolve")
	}
}

func TestBenchmarkSpecsMatchTable4(t *testing.T) {
	specs := BenchmarkSpecs()
	if len(specs) != 8 {
		t.Fatalf("benchmarks = %d, want 8", len(specs))
	}
	rt5, ok := BenchmarkByName("rt5")
	if !ok || rt5.H != 702 || rt5.V != 707 || rt5.M != 4 || rt5.Pins != 1000 || rt5.Obstacles != 1000 {
		t.Errorf("rt5 = %+v", rt5)
	}
	ind2, ok := BenchmarkByName("ind2")
	if !ok || ind2.H != 83 || ind2.V != 191 || ind2.M != 5 || ind2.Pins != 200 || ind2.Obstacles != 85 {
		t.Errorf("ind2 = %+v", ind2)
	}
	for _, b := range specs {
		if b.ViaCost != 3 {
			t.Errorf("%s via cost = %v, want 3", b.Name, b.ViaCost)
		}
	}
}

func TestBenchmarkGenerateDeterministicAndRoutable(t *testing.T) {
	spec, _ := BenchmarkByName("rt1")
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.H != 45 || a.Graph.V != 44 || a.Graph.M != 10 {
		t.Errorf("rt1 dims = %dx%dx%d", a.Graph.H, a.Graph.V, a.Graph.M)
	}
	if a.NumPins() != 25 {
		t.Errorf("rt1 pins = %d, want 25", a.NumPins())
	}
	if !a.Routable() {
		t.Error("rt1 must be routable")
	}
	for i := range a.Pins {
		if a.Pins[i] != b.Pins[i] {
			t.Fatal("benchmark generation is not deterministic")
		}
	}
	if a.Graph.NumBlocked() != b.Graph.NumBlocked() {
		t.Fatal("benchmark obstacles are not deterministic")
	}
	if a.Graph.NumBlocked() == 0 {
		t.Error("rt1 should contain obstacles")
	}
}

func TestJSONRoundTripGeometric(t *testing.T) {
	l := &Layout{
		Name: "geo", Layers: 2, ViaCost: 3,
		Pins:      []geom.Point{{X: 0, Y: 0, Layer: 0}, {X: 9, Y: 9, Layer: 1}, {X: 4, Y: 7, Layer: 0}},
		Obstacles: []geom.Rect{geom.NewRect(2, 2, 6, 6, 0)},
	}
	var buf bytes.Buffer
	if err := EncodeLayout(&buf, l); err != nil {
		t.Fatal(err)
	}
	in, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if in.Name != "geo" || in.NumPins() != 3 {
		t.Errorf("decoded name=%q pins=%d", in.Name, in.NumPins())
	}
	want, _ := l.Instance()
	if in.Graph.H != want.Graph.H || in.Graph.V != want.Graph.V || in.Graph.M != want.Graph.M {
		t.Error("decoded Hanan dims differ from direct conversion")
	}
}

func TestJSONRoundTripGrid(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	orig, err := Random(r, RandomSpec{H: 8, V: 8, MinM: 2, MaxM: 2, MinPins: 4, MaxPins: 4, MinObstacles: 5, MaxObstacles: 5})
	if err != nil {
		t.Fatal(err)
	}
	orig.Name = "gridform"
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, orig); err != nil {
		t.Fatal(err)
	}
	in, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if in.Name != "gridform" {
		t.Errorf("name = %q", in.Name)
	}
	if in.Graph.NumBlocked() != orig.Graph.NumBlocked() {
		t.Error("blocked set changed in round trip")
	}
	for i := range orig.Pins {
		if in.Pins[i] != orig.Pins[i] {
			t.Fatal("pins changed in round trip")
		}
	}
	for i := range orig.Graph.DX {
		if in.Graph.DX[i] != orig.Graph.DX[i] {
			t.Fatal("DX changed in round trip")
		}
	}
}

func TestPreferredDirectionGeneration(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	in, err := Random(r, RandomSpec{
		H: 8, V: 8, MinM: 4, MaxM: 4, MinPins: 3, MaxPins: 3,
		MinObstacles: 2, MaxObstacles: 2,
		PreferredDirectionPenalty: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := in.Graph
	if g.HScale == nil || g.VScale == nil {
		t.Fatal("preferred directions not installed")
	}
	for m := 0; m < g.M; m++ {
		if m%2 == 0 {
			if g.HScale[m] != 1 || g.VScale[m] != 3 {
				t.Errorf("layer %d scales H=%v V=%v, want 1/3", m, g.HScale[m], g.VScale[m])
			}
		} else if g.HScale[m] != 3 || g.VScale[m] != 1 {
			t.Errorf("layer %d scales H=%v V=%v, want 3/1", m, g.HScale[m], g.VScale[m])
		}
	}
}

func TestJSONRoundTripLayerScales(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	in, err := Random(r, RandomSpec{
		H: 6, V: 6, MinM: 2, MaxM: 2, MinPins: 3, MaxPins: 3,
		MinObstacles: 1, MaxObstacles: 1,
		PreferredDirectionPenalty: 2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < in.Graph.M; m++ {
		if back.Graph.HScale[m] != in.Graph.HScale[m] ||
			back.Graph.VScale[m] != in.Graph.VScale[m] {
			t.Fatal("layer scales lost in JSON round trip")
		}
	}
	// Invalid scales rejected.
	bad := `{"grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"hscale":[1,2],"pins":[0,1]}}`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("wrong-length hscale should fail to decode")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0]}}`,                  // one pin
		`{"grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"pins":[0,99]}}`,               // pin out of range
		`{"grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"blocked":[0],"pins":[0,1]}}`,  // pin blocked
		`{"grid":{"h":2,"v":2,"m":1,"viaCost":1,"dx":[1],"dy":[1],"blocked":[77],"pins":[0,1]}}`, // blocked out of range
		`{"layers":1,"viaCost":1,"pins":[{"x":0,"y":0,"layer":0}]}`,                              // geometric, one pin
	}
	for i, s := range cases {
		if _, err := Decode(strings.NewReader(s)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestInstanceClone(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	in, err := Random(r, RandomSpec{H: 6, V: 6, MinM: 2, MaxM: 2, MinPins: 3, MaxPins: 3, MinObstacles: 2, MaxObstacles: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := in.Clone()
	c.Pins[0] = 0
	c.Graph.Block(1)
	if in.Pins[0] == 0 && in.Pins[0] != c.Pins[0] {
		t.Log("pin overlap coincidence")
	}
	if in.Graph.Blocked(1) != c.Graph.Blocked(1) && in.Graph.Blocked(1) {
		t.Error("clone mutation leaked")
	}
}
