package cluster

import (
	"context"
	"testing"
	"time"

	"oarsmt/internal/fault"
	"oarsmt/wire"
)

func registerReq(id, addr string) wire.RegisterRequest {
	return wire.RegisterRequest{ID: id, Addr: addr}
}

// waitStat polls a coordinator stat until cond holds or the deadline
// lapses — replication is asynchronous by design.
func waitStat(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s never held", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicationWarmsSuccessor is the warm-failover story end to end:
// a fresh route is asynchronously installed on the key's next ring
// replica, so when the serving worker dies the successor answers the
// same layout from its cache — same cost, no re-inference.
func TestReplicationWarmsSuccessor(t *testing.T) {
	c := newTestCoord(t, Config{HedgeDelay: -1, Replicate: true})
	w1, w2 := newServeWorker(t), newServeWorker(t)
	if _, err := c.register(registerReq("w1", w1.URL)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.register(registerReq("w2", w2.URL)); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	key, err := c.canonicalKey([]byte(clusterLayout))
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.forward(ctx, key, routeReq())
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first route claims a cache hit")
	}
	// The client did not ask for edges, so the response must not carry
	// the copy replication requested internally.
	if first.Edges != nil {
		t.Errorf("response leaked %d replication edges to the client", len(first.Edges))
	}
	waitStat(t, "replicated >= 1", func() bool { return c.Stats().Replicated >= 1 })

	// The serving worker dies; the successor answers the shard warm.
	if err := c.drain(first.Worker); err != nil {
		t.Fatal(err)
	}
	second, err := c.forward(ctx, key, routeReq())
	if err != nil {
		t.Fatalf("forward after losing the serving worker: %v", err)
	}
	if second.Worker == first.Worker {
		t.Fatalf("drained worker %s still serving", first.Worker)
	}
	if !second.CacheHit {
		t.Error("successor served cold — the replicated route was not installed")
	}
	if second.Cost != first.Cost {
		t.Errorf("successor cost %v, want the replicated %v", second.Cost, first.Cost)
	}

	// A cache hit is not re-replicated: its first serve already was.
	repl := c.Stats().Replicated
	if _, err := c.forward(ctx, key, routeReq()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := c.Stats().Replicated; got != repl {
		t.Errorf("cache hit re-replicated: %d -> %d", repl, got)
	}
}

// TestReplicationFailureCounted: a failed install is counted and
// forgotten — the routing path never notices.
func TestReplicationFailureCounted(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	c := newTestCoord(t, Config{HedgeDelay: -1, Replicate: true})
	w1, w2 := newServeWorker(t), newServeWorker(t)
	if _, err := c.register(registerReq("w1", w1.URL)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.register(registerReq("w2", w2.URL)); err != nil {
		t.Fatal(err)
	}

	fault.Set("cluster.replicate", fault.Options{Mode: fault.Error, Times: 1})
	key, err := c.canonicalKey([]byte(clusterLayout))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.forward(context.Background(), key, routeReq()); err != nil {
		t.Fatalf("forward with failing replication: %v", err)
	}
	waitStat(t, "replicationErrors == 1", func() bool { return c.Stats().ReplicationErrors == 1 })
	if got := c.Stats().Replicated; got != 0 {
		t.Errorf("replicated = %d after an injected failure, want 0", got)
	}
}

// TestReplicationSingleWorkerSkips: with no distinct successor the job
// is skipped silently — never installed back onto the serving worker.
func TestReplicationSingleWorkerSkips(t *testing.T) {
	c := newTestCoord(t, Config{HedgeDelay: -1, Replicate: true})
	w1 := newServeWorker(t)
	if _, err := c.register(registerReq("w1", w1.URL)); err != nil {
		t.Fatal(err)
	}
	key, err := c.canonicalKey([]byte(clusterLayout))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.forward(context.Background(), key, routeReq()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	st := c.Stats()
	if st.Replicated != 0 || st.ReplicationErrors != 0 {
		t.Errorf("single-worker cluster replicated: %+v", st)
	}
}
