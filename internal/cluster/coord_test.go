package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"oarsmt/client"
	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
	"oarsmt/internal/serve"
	"oarsmt/wire"
)

// clusterLayout is the 3x3x2 two-pin layout the cluster tests route.
const clusterLayout = `{"name":"t","grid":{"h":3,"v":3,"m":2,"viaCost":2,` +
	`"dx":[1,1],"dy":[1,1],"pins":[0,8]}}`

// fakeClock is an injectable lease clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func newTestCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// fakeWorker stands up an httptest worker answering /v1/route with the
// given handler and registers it with the coordinator.
func fakeWorker(t *testing.T, c *Coordinator, id string, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	if _, err := c.register(wire.RegisterRequest{ID: id, Addr: srv.URL}); err != nil {
		t.Fatal(err)
	}
	return srv
}

func writeFakeRoute(w http.ResponseWriter, cost float64) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(wire.RouteResponse{Cost: cost, NumEdges: 1})
}

func instantWorker(cost float64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeFakeRoute(w, cost)
	}
}

// gatedWorker blocks each request until release closes (draining the
// body first so the server can notice a client disconnect), signalling
// every arrival on arrived.
func gatedWorker(t *testing.T, cost float64) (h http.HandlerFunc, arrived chan struct{}, release func()) {
	t.Helper()
	arrived = make(chan struct{}, 16)
	gate := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	h = func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		arrived <- struct{}{}
		select {
		case <-gate:
		case <-r.Context().Done():
			return
		}
		writeFakeRoute(w, cost)
	}
	return h, arrived, release
}

func routeReq() *wire.RouteRequest {
	return &wire.RouteRequest{Layout: json.RawMessage(clusterLayout)}
}

// TestForwardNoWorkers: an empty cluster sheds retryably, so a client
// in front of the coordinator backs off instead of failing hard.
func TestForwardNoWorkers(t *testing.T) {
	c := newTestCoord(t, Config{})
	_, err := c.forward(context.Background(), "k", routeReq())
	if !errors.Is(err, errs.ErrTransient) {
		t.Fatalf("forward on empty cluster = %v, want ErrTransient", err)
	}
}

// TestRegisterValidation: registration rejects missing identity and
// protocol versions outside the supported window.
func TestRegisterValidation(t *testing.T) {
	c := newTestCoord(t, Config{})
	if _, err := c.register(wire.RegisterRequest{Addr: "http://x"}); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Errorf("register without id = %v, want ErrInvalidConfig", err)
	}
	if _, err := c.register(wire.RegisterRequest{ID: "w"}); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Errorf("register without addr = %v, want ErrInvalidConfig", err)
	}
	if _, err := c.register(wire.RegisterRequest{ID: "w", Addr: "http://x", Proto: 99}); !errors.Is(err, errs.ErrUnsupportedProto) {
		t.Errorf("register proto 99 = %v, want ErrUnsupportedProto", err)
	}
}

// TestLeaseExpiryMidRequest: a lease lapsing while a forward is in
// flight must not kill that forward — eligibility is decided at pick
// time — but the next request finds no live worker.
func TestLeaseExpiryMidRequest(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoord(t, Config{LeaseTTL: time.Second, HedgeDelay: -1, now: clock.now})
	h, arrived, release := gatedWorker(t, 7)
	fakeWorker(t, c, "w1", h)

	type result struct {
		resp *wire.RouteResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := c.forward(context.Background(), "k", routeReq())
		done <- result{resp, err}
	}()
	<-arrived // the forward is now in flight on w1

	clock.advance(2 * time.Second) // the lease lapses mid-request
	c.collectExpired()
	if n := len(c.Workers()); n != 0 {
		t.Fatalf("expired worker still registered: %d workers", n)
	}
	if got := c.Stats().Expired; got != 1 {
		t.Errorf("expired counter = %d, want 1", got)
	}

	release()
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight forward killed by lease expiry: %v", r.err)
	}
	if r.resp.Cost != 7 || r.resp.Worker != "w1" {
		t.Errorf("in-flight forward answered %+v", r.resp)
	}

	if _, err := c.forward(context.Background(), "k", routeReq()); !errors.Is(err, errs.ErrTransient) {
		t.Fatalf("forward after expiry = %v, want ErrTransient (no live workers)", err)
	}
}

// TestDrainWithInFlightHedge: the primary shard is mid-request when it
// is drained; the armed hedge still fires to the fallback and wins, and
// every subsequent request avoids the draining shard.
func TestDrainWithInFlightHedge(t *testing.T) {
	c := newTestCoord(t, Config{HedgeDelay: 10 * time.Millisecond})
	slowH, arrived, release := gatedWorker(t, 1)

	// Work out which id the key hashes to before wiring the handlers:
	// the gated handler plays the primary, the instant one the fallback.
	probe := newRing(c.cfg.VirtualNodes)
	probe.add("w1")
	probe.add("w2")
	order := probe.pick("k", 2)
	primaryID, fallbackID := order[0], order[1]
	fakeWorker(t, c, primaryID, slowH)
	fakeWorker(t, c, fallbackID, instantWorker(2))

	type result struct {
		resp *wire.RouteResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := c.forward(context.Background(), "k", routeReq())
		done <- result{resp, err}
	}()
	<-arrived // primary holds the request
	if err := c.drain(primaryID); err != nil {
		t.Fatal(err)
	}

	r := <-done // the hedge answers while the primary is still stuck
	if r.err != nil {
		t.Fatalf("hedged forward failed: %v", r.err)
	}
	if !r.resp.Hedged || r.resp.Worker != fallbackID || r.resp.Cost != 2 {
		t.Errorf("resp = %+v, want hedged cost-2 answer from %s", r.resp, fallbackID)
	}
	release()

	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 || st.Drained != 1 {
		t.Errorf("stats hedges=%d hedgeWins=%d drained=%d, want 1/1/1", st.Hedges, st.HedgeWins, st.Drained)
	}
	for i := 0; i < 5; i++ {
		resp, err := c.forward(context.Background(), "k", routeReq())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Worker != fallbackID {
			t.Fatalf("request %d routed to draining shard %s", i, resp.Worker)
		}
	}
}

// TestSlowShardTriggersHedge: a fault-injected delay on the first
// forward makes the primary shard slow; the hedge timer fires and the
// fallback's answer wins.
func TestSlowShardTriggersHedge(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	c := newTestCoord(t, Config{HedgeDelay: 15 * time.Millisecond})
	probe := newRing(c.cfg.VirtualNodes)
	probe.add("w1")
	probe.add("w2")
	order := probe.pick("k", 2)
	fakeWorker(t, c, order[0], instantWorker(1))
	fakeWorker(t, c, order[1], instantWorker(2))

	fault.Set("cluster.forward", fault.Options{Mode: fault.Delay, Delay: 2 * time.Second, Times: 1})
	start := time.Now()
	resp, err := c.forward(context.Background(), "k", routeReq())
	if err != nil {
		t.Fatalf("forward with slow primary failed: %v", err)
	}
	if !resp.Hedged || resp.Worker != order[1] {
		t.Errorf("resp = %+v, want hedged answer from %s", resp, order[1])
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedged answer took %v — waited out the slow shard instead of hedging", elapsed)
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("stats hedges=%d hedgeWins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
}

// TestFailedShardPromotesRetry: with hedging disabled, a retryably
// failing primary is retried on the fallback shard immediately.
func TestFailedShardPromotesRetry(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	c := newTestCoord(t, Config{HedgeDelay: -1})
	probe := newRing(c.cfg.VirtualNodes)
	probe.add("w1")
	probe.add("w2")
	order := probe.pick("k", 2)
	fakeWorker(t, c, order[0], instantWorker(1))
	fakeWorker(t, c, order[1], instantWorker(2))

	fault.Set("cluster.forward", fault.Options{Mode: fault.Error, Times: 1})
	resp, err := c.forward(context.Background(), "k", routeReq())
	if err != nil {
		t.Fatalf("forward with failing primary: %v", err)
	}
	if resp.Worker != order[1] {
		t.Errorf("resp = %+v, want answer from fallback %s", resp, order[1])
	}
	st := c.Stats()
	if st.Retries != 1 || st.Hedges != 0 {
		t.Errorf("stats retries=%d hedges=%d, want 1/0", st.Retries, st.Hedges)
	}
	if st.Workers[0].Errors+st.Workers[1].Errors != 1 {
		t.Errorf("worker error counters = %+v, want exactly one error", st.Workers)
	}
}

// TestReRegisterKeepsIdentity: a worker restarting on a new port keeps
// its ring points — the shard follows the id, not the address.
func TestReRegisterKeepsIdentity(t *testing.T) {
	c := newTestCoord(t, Config{HedgeDelay: -1})
	fakeWorker(t, c, "w1", instantWorker(1))

	moved := httptest.NewServer(instantWorker(9))
	t.Cleanup(moved.Close)
	if _, err := c.register(wire.RegisterRequest{ID: "w1", Addr: moved.URL}); err != nil {
		t.Fatal(err)
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].Addr != moved.URL {
		t.Fatalf("workers after move = %+v, want one worker at the new address", ws)
	}
	resp, err := c.forward(context.Background(), "k", routeReq())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cost != 9 || resp.Worker != "w1" {
		t.Errorf("resp = %+v, want cost-9 answer from the moved worker", resp)
	}
}

// TestHedgeTimerAfterRetryDoesNotHang: the primary fails retryably
// before the hedge delay, so the fast-failure path consumes the
// fallback for an immediate retry; when the hedge timer later fires it
// must not count an attempt that was never launched. A regression here
// left race() waiting forever once the retry also failed.
func TestHedgeTimerAfterRetryDoesNotHang(t *testing.T) {
	c := newTestCoord(t, Config{HedgeDelay: 20 * time.Millisecond})
	probe := newRing(c.cfg.VirtualNodes)
	probe.add("w1")
	probe.add("w2")
	order := probe.pick("k", 2)

	arrived := make(chan struct{}, 1)
	gate := make(chan struct{})
	fakeWorker(t, c, order[0], func(w http.ResponseWriter, r *http.Request) {
		wire.WriteError(w, errs.ErrQueueFull) // fast retryable failure
	})
	fakeWorker(t, c, order[1], func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		arrived <- struct{}{}
		select {
		case <-gate:
		case <-r.Context().Done():
			return
		}
		wire.WriteError(w, errs.ErrQueueFull)
	})

	done := make(chan error, 1)
	go func() {
		_, err := c.forward(context.Background(), "k", routeReq())
		done <- err
	}()
	<-arrived                        // the retry is in flight on the fallback
	time.Sleep(3 * c.cfg.HedgeDelay) // the hedge timer fires with no fallback left
	close(gate)                      // now the retry fails too

	select {
	case err := <-done:
		if !errors.Is(err, errs.ErrQueueFull) {
			t.Fatalf("forward = %v, want ErrQueueFull", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("race() hung after the hedge timer fired with the fallback already consumed")
	}
	st := c.Stats()
	if st.Retries != 1 || st.Hedges != 0 {
		t.Errorf("stats retries=%d hedges=%d, want 1/0 (no phantom hedge)", st.Retries, st.Hedges)
	}
}

// TestReRegisterBadAddressKeepsOld: a re-registration advertising a
// malformed address fails without dropping the existing healthy
// registration.
func TestReRegisterBadAddressKeepsOld(t *testing.T) {
	c := newTestCoord(t, Config{HedgeDelay: -1})
	srv := fakeWorker(t, c, "w1", instantWorker(1))

	if _, err := c.register(wire.RegisterRequest{ID: "w1", Addr: "not-a-url"}); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Fatalf("register with malformed addr = %v, want ErrInvalidConfig", err)
	}
	ws := c.Workers()
	if len(ws) != 1 || ws[0].Addr != srv.URL {
		t.Fatalf("workers after failed re-register = %+v, want the original registration intact", ws)
	}
	if resp, err := c.forward(context.Background(), "k", routeReq()); err != nil || resp.Worker != "w1" {
		t.Errorf("forward after failed re-register = %+v, %v; want answer from w1", resp, err)
	}
}

// TestSweepSkipsDrainedFromExpiredCount: a drained worker whose lease
// lapses is reclaimed without counting as an unexpected loss.
func TestSweepSkipsDrainedFromExpiredCount(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoord(t, Config{LeaseTTL: time.Second, now: clock.now})
	fakeWorker(t, c, "w1", instantWorker(1))
	if err := c.drain("w1"); err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Second)
	c.collectExpired()
	st := c.Stats()
	if len(st.Workers) != 0 {
		t.Fatalf("drained worker not reclaimed: %+v", st.Workers)
	}
	if st.Expired != 0 || st.Drained != 1 {
		t.Errorf("stats expired=%d drained=%d, want 0/1", st.Expired, st.Drained)
	}
	if err := c.drain("w1"); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Errorf("drain of reclaimed worker = %v, want ErrInvalidConfig", err)
	}
}

// errReader fails every read, simulating a client abort mid-body.
type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("aborted") }

// TestCoordinatorBodyErrorMapping: only an oversized body maps to the
// 413 too_large code; any other body-read failure is a 400
// invalid_layout, matching the worker-side mapping.
func TestCoordinatorBodyErrorMapping(t *testing.T) {
	c := newTestCoord(t, Config{})
	h := c.Handler()
	cases := []struct {
		name string
		body func() io.Reader
		want int
	}{
		{"aborted read", func() io.Reader { return errReader{} }, http.StatusBadRequest},
		{"oversized", func() io.Reader { return bytes.NewReader(make([]byte, maxBodyBytes+1)) }, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		for _, path := range []string{wire.PathRoute, wire.LegacyPathRoute} {
			req := httptest.NewRequest(http.MethodPost, path, tc.body())
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Errorf("%s on %s = %d, want %d", tc.name, path, rec.Code, tc.want)
			}
		}
	}
}

// newServeWorker stands up a real routing worker (a serve.Service behind
// httptest) for end-to-end coordinator tests.
func newServeWorker(t *testing.T) *httptest.Server {
	t.Helper()
	sel, err := selector.NewRandom(rand.New(rand.NewSource(1)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.NewService(serve.Config{Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestClusterEndToEnd drives the full stack through the public client:
// real workers register over the wire, routing goes coordinator →
// shard → back, identical layouts keep cache affinity, drains move
// traffic, and the cluster plane rejects unknown renewals.
func TestClusterEndToEnd(t *testing.T) {
	c := newTestCoord(t, Config{HedgeDelay: -1})
	front := httptest.NewServer(c.Handler())
	t.Cleanup(front.Close)
	cl, err := client.New(client.Config{BaseURL: front.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for i := 1; i <= 3; i++ {
		w := newServeWorker(t)
		if _, err := cl.Register(ctx, wire.RegisterRequest{
			ID: fmt.Sprintf("w%d", i), Addr: w.URL, Proto: wire.Version,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("coordinator healthz: %v", err)
	}

	first, err := cl.RouteJSON(ctx, []byte(clusterLayout), &client.RouteOptions{Edges: true})
	if err != nil {
		t.Fatalf("routed through coordinator: %v", err)
	}
	if first.Worker == "" || first.Cost <= 0 || len(first.Edges) != first.NumEdges {
		t.Fatalf("degenerate clustered response: %+v", first)
	}
	again, err := cl.RouteJSON(ctx, []byte(clusterLayout), nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Worker != first.Worker {
		t.Errorf("same layout moved shards: %s then %s", first.Worker, again.Worker)
	}
	if !again.CacheHit {
		t.Error("repeat of an identical layout missed the shard's cache")
	}
	if again.Cost != first.Cost {
		t.Errorf("cost changed across shard-affine repeats: %v then %v", first.Cost, again.Cost)
	}

	// Distinct layouts spread across shards.
	workersSeen := map[string]bool{}
	for i := 0; i < 8; i++ {
		l := fmt.Sprintf(`{"name":"v%d","grid":{"h":3,"v":3,"m":2,"viaCost":2,`+
			`"dx":[1,1],"dy":[1,1],"pins":[%d,8]}}`, i, i)
		resp, err := cl.RouteJSON(ctx, []byte(l), nil)
		if err != nil {
			t.Fatal(err)
		}
		workersSeen[resp.Worker] = true
	}
	if len(workersSeen) < 2 {
		t.Errorf("8 distinct layouts all landed on %v — no spread", workersSeen)
	}

	// Drain the affine shard: the layout moves, the cluster keeps
	// answering.
	if err := cl.Drain(ctx, first.Worker); err != nil {
		t.Fatal(err)
	}
	moved, err := cl.RouteJSON(ctx, []byte(clusterLayout), nil)
	if err != nil {
		t.Fatalf("route after drain failed: %v", err)
	}
	if moved.Worker == first.Worker {
		t.Errorf("drained shard %s still serving", first.Worker)
	}

	if _, err := cl.RenewLease(ctx, "ghost"); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Errorf("renew of unknown worker = %v, want ErrInvalidConfig", err)
	}

	st, err := cl.ClusterStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 3 || st.Completed < 10 || st.Drained != 1 {
		t.Errorf("implausible cluster stats: %+v", st)
	}
	mtext, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"oarsmt_cluster_forwards", "oarsmt_cluster_workers", "# TYPE oarsmt_cluster_latency histogram"} {
		if !strings.Contains(mtext, want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}

	// Malformed and oversized layouts are rejected before any forward.
	if _, err := cl.RouteJSON(ctx, []byte(`{"grid":{}}`), nil); !errors.Is(err, errs.ErrInvalidLayout) {
		t.Errorf("malformed layout through coordinator = %v, want ErrInvalidLayout", err)
	}
}
