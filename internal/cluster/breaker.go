package cluster

import (
	"errors"
	"sync"
	"time"

	"oarsmt/client"
	"oarsmt/internal/errs"
)

// breakerState is one circuit breaker's position.
type breakerState uint8

const (
	// breakerClosed passes traffic and counts consecutive failures.
	breakerClosed breakerState = iota
	// breakerOpen rejects traffic until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen admits a single probe; its outcome decides
	// between reclosing and reopening.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-worker circuit breaker on an injected clock: after
// threshold consecutive health-indicating failures it opens and the
// worker stops receiving traffic; once the cooldown elapses a single
// probe request is admitted, and its outcome either recloses the
// breaker or restarts the cooldown. All transitions are driven by the
// timestamps the coordinator passes in, never by the wall clock, so
// fault-injection tests step the breaker deterministically.
type breaker struct {
	threshold int // consecutive failures to trip; <= 0 disables
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // half-open probe outstanding
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

func (b *breaker) enabled() bool { return b.threshold > 0 }

// admit reports whether the worker may receive a request now. In the
// open state it transitions to half-open once the cooldown has elapsed
// and grants the caller the single probe slot (probe=true); the caller
// must report the attempt's outcome through record with the same flag,
// or the slot would leak and the breaker stay half-open forever.
func (b *breaker) admit(now time.Time) (ok, probe bool) {
	if !b.enabled() {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// closedNow reports whether the breaker is fully closed; only such
// workers serve hedges and retries, so a recovering shard's probe slot
// is never consumed by a speculative attempt that might not be awaited.
func (b *breaker) closedNow() bool {
	if !b.enabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerClosed
}

// record reports one attempt's outcome. It returns true when the
// outcome tripped the breaker open (for the trip counter). Outcomes of
// attempts launched before a trip arrive in the open or half-open state
// without the probe flag and are ignored — only the probe's verdict
// moves an open breaker.
func (b *breaker) record(now time.Time, failed, probe bool) (opened bool) {
	if !b.enabled() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if !failed {
			b.fails = 0
			return false
		}
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.fails = 0
			return true
		}
		return false
	case breakerHalfOpen:
		if !probe {
			return false
		}
		b.probing = false
		if failed {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
		b.state = breakerClosed
		b.fails = 0
		return false
	default: // open: stale outcomes (including a probe's, after a re-open)
		return false
	}
}

// stateAt names the breaker's effective state for stats: an open
// breaker whose cooldown has elapsed reads as half-open (a probe would
// be admitted), without mutating anything.
func (b *breaker) stateAt(now time.Time) string {
	if !b.enabled() {
		return ""
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && now.Sub(b.openedAt) >= b.cooldown {
		return breakerHalfOpen.String()
	}
	return b.state.String()
}

// breakerFailure classifies which errors count against a worker's
// breaker: failures that indicate worker health (unreachable, shedding,
// draining, timing out, crashing), not request defects like an invalid
// layout, which would fail identically on every shard.
func breakerFailure(err error) bool {
	return client.Retryable(err) ||
		errors.Is(err, errs.ErrTimeout) ||
		errors.Is(err, errs.ErrInternal)
}
