package cluster

import (
	"context"
	"encoding/json"

	"oarsmt/internal/fault"
	"oarsmt/wire"
)

// This file is the sending half of the replica fan-out: after a fresh
// (non-cached, non-degraded) route completes, the coordinator
// asynchronously installs the answer on the key's next distinct ring
// replica via POST /v1/replicate. Killing a worker then leaves its
// shard warm on the successor — the worker every coordinator would pick
// next for those keys — instead of a thundering herd of re-inference.
//
// Replication is strictly best-effort: the queue is bounded and drops
// (counted) under pressure, a failed install is counted and forgotten,
// and the receiving worker re-validates the tree before installing, so
// replication can never make a shard wrong, only warm.

// replJob is one queued replication: the shard key, the layout bytes,
// and the full response (with edges) to install.
type replJob struct {
	key    string
	layout json.RawMessage
	resp   *wire.RouteResponse
}

// enqueueReplication offers a finished route to the replicator; a full
// queue drops the job and counts the loss.
func (c *Coordinator) enqueueReplication(key string, layoutJSON json.RawMessage, resp *wire.RouteResponse) {
	if c.replq == nil || resp.Degraded || len(resp.Edges) == 0 {
		return
	}
	select {
	case c.replq <- replJob{key: key, layout: layoutJSON, resp: resp}:
	default:
		c.m.replicationDropped.Inc()
	}
}

// replicate drains the replication queue until Close.
func (c *Coordinator) replicate() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case j := <-c.replq:
			c.replicateOne(j)
		}
	}
}

// replicateOne installs one finished route on the key's successor: the
// first eligible, breaker-closed worker in ring order that is not the
// one that served the answer. No such worker (single-worker cluster,
// successor tripped) skips the job silently — the next fresh route will
// try again. fault point "cluster.replicate" fires before the send.
func (c *Coordinator) replicateOne(j replJob) {
	target := c.successor(j.key, j.resp.Worker)
	if target == nil {
		return
	}
	if err := fault.Inject("cluster.replicate"); err != nil {
		c.m.replicationErrors.Inc()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ForwardTimeout)
	defer cancel()
	_, err := target.cl.Replicate(ctx, wire.ReplicateRequest{Layout: j.layout, Response: *j.resp})
	if err != nil {
		c.m.replicationErrors.Inc()
		return
	}
	c.m.replicated.Inc()
}

// successor picks the replication target for a key: the first eligible
// worker in ring order whose id differs from the one that served the
// request.
func (c *Coordinator) successor(key, servedBy string) *worker {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.ring.pick(key, len(c.workers)) {
		if id == servedBy {
			continue
		}
		w := c.workers[id]
		if w == nil || !w.eligible(now) || !w.breaker.closedNow() {
			continue
		}
		return w
	}
	return nil
}
