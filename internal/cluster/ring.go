// Package cluster turns a fleet of serving workers into one endpoint: a
// coordinator that shards routing requests across workers by their
// augmentation-normalized canonical layout hash, so every orientation
// of a layout lands on the same worker and reuses its cache and store
// tiers. Workers register with leases and renew them; the coordinator
// hedges slow shards to a second replica and honours graceful drains.
//
// The data plane and the cluster plane both speak the versioned wire
// protocol through the public client package; the coordinator's HTTP
// surface is interchangeable with a single worker's.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring with virtual nodes. Placing each
// member at several pseudo-random points evens out the key space, and
// consistent hashing keeps reshuffling minimal when membership changes:
// adding or losing one worker moves only the keys adjacent to its
// points, so the rest of the fleet keeps its cache affinity.
type ring struct {
	replicas int
	keys     []uint64          // sorted virtual-node positions
	owners   map[uint64]string // position -> member id
}

func newRing(replicas int) *ring {
	return &ring{replicas: replicas, owners: map[uint64]string{}}
}

// hash64 is FNV-1a with a murmur-style finalizer. FNV alone has weak
// avalanche on short, similar inputs — the "id#n" virtual-node labels
// land clustered on the ring, starving some members — so the extra
// mixing rounds are what make the point placement uniform. Stable
// across processes, so every coordinator agrees on placement.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (r *ring) add(id string) {
	for i := 0; i < r.replicas; i++ {
		k := hash64(id + "#" + strconv.Itoa(i))
		if _, taken := r.owners[k]; taken {
			// A position collision between members would let add/remove
			// orders disagree about the owner; keep the first claimant
			// (removal re-checks ownership so the ring stays coherent).
			continue
		}
		r.owners[k] = id
		r.keys = append(r.keys, k)
	}
	sort.Slice(r.keys, func(i, j int) bool { return r.keys[i] < r.keys[j] })
}

func (r *ring) remove(id string) {
	kept := r.keys[:0]
	for _, k := range r.keys {
		if r.owners[k] == id {
			delete(r.owners, k)
			continue
		}
		kept = append(kept, k)
	}
	r.keys = kept
}

// pick returns up to n distinct member ids in ring order starting from
// the key's position: the first is the key's home shard, the rest are
// the successive fallbacks every member agrees on.
func (r *ring) pick(key string, n int) []string {
	if len(r.keys) == 0 || n <= 0 {
		return nil
	}
	start := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= hash64(key) })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.keys) && len(out) < n; i++ {
		id := r.owners[r.keys[(start+i)%len(r.keys)]]
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
