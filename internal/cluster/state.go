package cluster

import (
	"encoding/json"
	"errors"
	"fmt"

	"oarsmt/internal/ckpt"
)

// This file persists the coordinator's membership so a coordinator
// crash is not a cluster blackout. Every membership change (register,
// move, drain, expiry) snapshots the live workers into an internal/ckpt
// frame under Config.StateDir; a restarted coordinator rebuilds the
// ring from the newest valid frame and grants every restored worker a
// recovery-grace lease, so routing resumes immediately and agents have
// a full grace window to renew before the sweep collects them. Leases
// themselves are not persisted — a restored lease would be stale by
// exactly the coordinator's downtime — the grace window stands in for
// them.

// stateSchema versions the persisted coordinator state payload.
const stateSchema = 1

// stateKeep bounds how many state frames Retain leaves in StateDir.
const stateKeep = 4

// coordState is the persisted membership snapshot.
type coordState struct {
	Schema  int           `json:"schema"`
	Workers []stateWorker `json:"workers"`
}

// stateWorker is one registration worth restoring: identity and
// address. Draining workers are omitted — they were leaving anyway.
type stateWorker struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// persistState snapshots the current membership and writes it as the
// next ckpt frame. The snapshot is taken under c.mu; the write happens
// under persistMu only, so a slow fsync never blocks registrations or
// the routing path. Persistence failures are counted, not fatal: the
// coordinator keeps serving from memory exactly as before StateDir
// existed.
func (c *Coordinator) persistState() {
	if c.cfg.StateDir == "" {
		return
	}
	c.mu.Lock()
	st := coordState{Schema: stateSchema}
	for _, w := range c.workers {
		w.mu.Lock()
		draining := w.draining
		w.mu.Unlock()
		if draining {
			continue
		}
		st.Workers = append(st.Workers, stateWorker{ID: w.id, Addr: w.addr})
	}
	c.mu.Unlock()

	payload, err := json.Marshal(st)
	if err != nil {
		c.m.stateErrors.Inc()
		return
	}
	c.persistMu.Lock()
	defer c.persistMu.Unlock()
	c.stateSeq++
	if _, err := ckpt.Save(c.cfg.StateDir, c.stateSeq, payload); err != nil {
		c.m.stateErrors.Inc()
		return
	}
	// Retain failures leave extra frames behind, nothing worse.
	_ = ckpt.Retain(c.cfg.StateDir, stateKeep)
}

// restoreState rebuilds membership from the newest valid state frame.
// Called from New before the sweeper starts, so no locking is needed.
// Each restored worker gets a lease of max(LeaseTTL, RecoveryGrace)
// from now: long enough for its agent to renew (agents renew on TTL/3)
// even if the coordinator was down for a while. A missing or corrupt
// state directory is a fresh start, not an error — the coordinator must
// come up even when its disk did not survive.
func (c *Coordinator) restoreState() error {
	if c.cfg.StateDir == "" {
		return nil
	}
	entry, payload, err := ckpt.Latest(c.cfg.StateDir)
	if err != nil {
		if errors.Is(err, ckpt.ErrNotFound) {
			return nil
		}
		return fmt.Errorf("cluster: reading coordinator state: %w", err)
	}
	c.stateSeq = entry.Seq
	var st coordState
	if err := json.Unmarshal(payload, &st); err != nil || st.Schema != stateSchema {
		// A frame that passes its checksum but does not decode is from a
		// different build generation; start fresh rather than guess.
		return nil
	}
	grace := c.cfg.RecoveryGrace
	if grace < c.cfg.LeaseTTL {
		grace = c.cfg.LeaseTTL
	}
	until := c.cfg.now().Add(grace)
	for _, sw := range st.Workers {
		if sw.ID == "" || sw.Addr == "" {
			continue
		}
		cl, err := c.cfg.newClient(sw.Addr)
		if err != nil {
			continue
		}
		w := c.newWorker(sw.ID, sw.Addr, cl)
		w.leaseUntil = until
		c.workers[sw.ID] = w
		c.ring.add(sw.ID)
		c.restored++
	}
	return nil
}
