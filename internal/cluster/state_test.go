package cluster

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"oarsmt/internal/ckpt"
	"oarsmt/wire"
)

// TestCoordinatorCrashRecovery is the coordinator-restart story: a
// coordinator with a StateDir is killed (Close stands in for SIGKILL —
// persistence happens at every membership change, not at shutdown) and
// its successor rebuilds the ring from the newest frame, grants every
// restored worker a recovery-grace lease, and routes immediately.
func TestCoordinatorCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	cfg := Config{StateDir: dir, LeaseTTL: 10 * time.Second, HedgeDelay: -1, now: clock.now}

	c1 := newTestCoord(t, cfg)
	srv1 := fakeWorker(t, c1, "w1", instantWorker(1))
	srv2 := fakeWorker(t, c1, "w2", instantWorker(2))
	c1.Close() // crash; the state frames are already on disk

	clock.advance(3 * time.Second) // downtime
	c2 := newTestCoord(t, cfg)
	ws := c2.Workers()
	if len(ws) != 2 {
		t.Fatalf("restored coordinator has %d workers, want 2: %+v", len(ws), ws)
	}
	byID := map[string]wire.WorkerInfo{}
	for _, w := range ws {
		byID[w.ID] = w
	}
	if byID["w1"].Addr != srv1.URL || byID["w2"].Addr != srv2.URL {
		t.Errorf("restored addresses = %+v, want the registered ones", ws)
	}
	// RecoveryGrace floors at LeaseTTL: restored workers get the full
	// window to renew before the sweep can collect them.
	for _, w := range ws {
		if w.LeaseMillis != 10_000 {
			t.Errorf("restored worker %s lease = %dms, want the 10s grace", w.ID, w.LeaseMillis)
		}
	}
	if got := c2.Stats().Restored; got != 2 {
		t.Errorf("restored stat = %d, want 2", got)
	}
	// Routing resumes without waiting for any agent to re-register.
	resp, err := c2.forward(context.Background(), "k", routeReq())
	if err != nil {
		t.Fatalf("forward on restored coordinator: %v", err)
	}
	if resp.Worker != "w1" && resp.Worker != "w2" {
		t.Errorf("restored forward answered by %q", resp.Worker)
	}

	// The grace window is a lease like any other: without renewal the
	// sweep collects the restored workers.
	clock.advance(11 * time.Second)
	c2.collectExpired()
	if n := len(c2.Workers()); n != 0 {
		t.Errorf("%d restored workers survived an unrenewed grace window", n)
	}
}

// TestCoordinatorStateOmitsDrainingAndExpired: workers that drained or
// whose leases the sweep collected are not resurrected by a restart.
func TestCoordinatorStateOmitsDrainingAndExpired(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	cfg := Config{StateDir: dir, LeaseTTL: 10 * time.Second, HedgeDelay: -1, now: clock.now}

	c1 := newTestCoord(t, cfg)
	fakeWorker(t, c1, "keep", instantWorker(1))
	fakeWorker(t, c1, "leaving", instantWorker(2))
	if err := c1.drain("leaving"); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2 := newTestCoord(t, cfg)
	if ws := c2.Workers(); len(ws) != 1 || ws[0].ID != "keep" {
		t.Fatalf("restored workers = %+v, want only %q", ws, "keep")
	}

	// Let the survivor expire; the sweep's persist means a further
	// restart comes up empty instead of resurrecting a dead worker.
	clock.advance(11 * time.Second)
	c2.collectExpired()
	c2.Close()
	c3 := newTestCoord(t, cfg)
	if ws := c3.Workers(); len(ws) != 0 {
		t.Fatalf("restart after expiry restored %+v, want none", ws)
	}
	if got := c3.Stats().Restored; got != 0 {
		t.Errorf("restored stat = %d, want 0", got)
	}
}

// TestCoordinatorStateCorruptIsFreshStart: a coordinator whose every
// state frame fails validation must come up empty rather than refuse to
// start — losing membership costs one re-registration round, refusing
// to start costs the cluster.
func TestCoordinatorStateCorruptIsFreshStart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{StateDir: dir, LeaseTTL: 10 * time.Second, HedgeDelay: -1}

	c1 := newTestCoord(t, cfg)
	fakeWorker(t, c1, "w1", instantWorker(1))
	c1.Close()

	frames, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(frames) == 0 {
		t.Fatalf("no state frames written: %v, %v", frames, err)
	}
	for _, f := range frames {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xff // flip one payload byte: the checksum catches it
		if err := os.WriteFile(f, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ckpt.Latest(dir); err == nil {
		t.Fatal("corrupted every frame yet Latest still found one")
	}

	c2 := newTestCoord(t, cfg)
	if ws := c2.Workers(); len(ws) != 0 {
		t.Fatalf("corrupt state restored workers: %+v", ws)
	}
	// The fresh coordinator still registers and persists normally.
	fakeWorker(t, c2, "w2", instantWorker(2))
	if _, err := c2.forward(context.Background(), "k", routeReq()); err != nil {
		t.Fatalf("forward after fresh start: %v", err)
	}
}

// TestCoordinatorStateRetention: membership churn must not accumulate
// unbounded frames — Retain keeps the newest few.
func TestCoordinatorStateRetention(t *testing.T) {
	dir := t.TempDir()
	c := newTestCoord(t, Config{StateDir: dir, HedgeDelay: -1})
	for i := 0; i < 3*stateKeep; i++ {
		fakeWorker(t, c, string(rune('a'+i)), instantWorker(1))
	}
	entries, err := ckpt.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > stateKeep {
		t.Errorf("%d state frames retained, want at most %d", len(entries), stateKeep)
	}
}
