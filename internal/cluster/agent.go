package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"oarsmt/client"
	"oarsmt/internal/errs"
	"oarsmt/wire"
)

// AgentConfig configures a worker's membership in a cluster.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL. Required unless Client
	// is set.
	Coordinator string
	// ID is the worker's stable ring identity. Required; reusing the
	// same ID across restarts preserves the shard's store affinity.
	ID string
	// Advertise is the worker's own base URL as reachable from the
	// coordinator. Required.
	Advertise string
	// Client overrides the coordinator client (tests inject one bound
	// to an httptest server).
	Client *client.Client
	// sleep is the renewal clock, injectable by tests.
	sleep func(context.Context, time.Duration) error
}

// Agent keeps one worker registered with a coordinator: it registers,
// renews the lease on a third of its TTL, re-registers when a renewal
// is rejected (a sweep collected the lease), and announces a graceful
// drain on shutdown.
type Agent struct {
	cfg AgentConfig
	cl  *client.Client
	ttl time.Duration

	cancel   context.CancelFunc
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// StartAgent registers the worker and starts the renewal loop. The
// first registration is synchronous so a worker that cannot join the
// cluster fails its startup instead of serving unreachable.
func StartAgent(ctx context.Context, cfg AgentConfig) (*Agent, error) {
	if cfg.ID == "" || cfg.Advertise == "" {
		return nil, fmt.Errorf("%w: agent: ID and Advertise are required", errs.ErrInvalidConfig)
	}
	cl := cfg.Client
	if cl == nil {
		var err error
		cl, err = client.New(client.Config{
			BaseURL: cfg.Coordinator,
			Timeout: 10 * time.Second,
			Retries: 2,
		})
		if err != nil {
			return nil, err
		}
	}
	if cfg.sleep == nil {
		cfg.sleep = ctxSleep
	}
	a := &Agent{cfg: cfg, cl: cl}
	resp, err := a.register(ctx)
	if err != nil {
		return nil, fmt.Errorf("agent: registering with coordinator: %w", err)
	}
	a.ttl = time.Duration(resp.TTLMillis) * time.Millisecond
	// The renewal loop outlives the registration call's ctx: it runs
	// until Drain/Close, not until the caller's startup deadline.
	loopCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	a.cancel = cancel
	a.wg.Add(1)
	go a.renewLoop(loopCtx)
	return a, nil
}

func (a *Agent) register(ctx context.Context) (*wire.RegisterResponse, error) {
	return a.cl.Register(ctx, wire.RegisterRequest{
		ID:    a.cfg.ID,
		Addr:  a.cfg.Advertise,
		Proto: wire.Version,
	})
}

// renewLoop renews on TTL/3 so two renewals can fail before the lease
// lapses. A rejected renewal (unknown worker: the sweep collected us
// during a partition) falls back to a full re-registration. While the
// coordinator stays unreachable the loop backs off deterministically —
// doubling from the renewal interval up to the full TTL — instead of
// hammering a blacked-out coordinator at TTL/3; the first successful
// renewal or re-registration snaps it back to the renewal cadence.
func (a *Agent) renewLoop(ctx context.Context) {
	defer a.wg.Done()
	interval := a.ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	maxDelay := a.ttl
	if maxDelay < interval {
		maxDelay = 8 * interval
	}
	delay := interval
	for {
		if err := a.cfg.sleep(ctx, delay); err != nil {
			return
		}
		if _, err := a.cl.RenewLease(ctx, a.cfg.ID); err == nil {
			delay = interval
			continue
		}
		if ctx.Err() != nil {
			return
		}
		if resp, rerr := a.register(ctx); rerr == nil {
			if ttl := time.Duration(resp.TTLMillis) * time.Millisecond; ttl > 0 {
				interval = ttl / 3
				maxDelay = ttl
			}
			delay = interval
			continue
		}
		delay *= 2
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

// Drain stops renewing and tells the coordinator the worker is
// shutting down, so new requests stop arriving before the worker's own
// HTTP drain begins. Safe to call once; Close without Drain just lets
// the lease lapse.
func (a *Agent) Drain(ctx context.Context) error {
	a.stop()
	return a.cl.Drain(ctx, a.cfg.ID)
}

// Close stops the renewal loop without announcing a drain.
func (a *Agent) Close() { a.stop() }

// stop is safe under concurrent Drain/Close (signal handler vs defer).
func (a *Agent) stop() {
	a.stopOnce.Do(func() {
		a.cancel()
		a.wg.Wait()
	})
}

// ctxSleep waits d or until the context is done.
func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
