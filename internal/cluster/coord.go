package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oarsmt/client"
	"oarsmt/internal/errs"
	"oarsmt/internal/fault"
	"oarsmt/internal/layout"
	"oarsmt/internal/obs"
	"oarsmt/internal/serve"
	"oarsmt/wire"
)

// maxBodyBytes bounds a forwarded request body, matching the worker's
// own limit so the coordinator rejects oversized layouts before
// spending a forward on them.
const maxBodyBytes = 8 << 20

// Config configures a Coordinator. The zero value of every field is
// usable; defaults favour small test clusters.
type Config struct {
	// LeaseTTL is how long a worker registration lives without renewal;
	// default 10s. Workers conventionally renew every TTL/3.
	LeaseTTL time.Duration
	// SweepEvery is how often expired leases are collected; default
	// LeaseTTL/2. Expired workers stop receiving requests immediately
	// regardless — the sweep only reclaims their bookkeeping.
	SweepEvery time.Duration
	// HedgeDelay is how long the primary shard may stay silent before
	// an identical request is hedged to the next replica; 0 defaults to
	// 100ms. Negative disables hedging.
	HedgeDelay time.Duration
	// ForwardTimeout bounds each forwarded request; default 60s.
	ForwardTimeout time.Duration
	// VirtualNodes is the points-per-worker on the hash ring; default
	// 64.
	VirtualNodes int
	// MaxVolume rejects layouts with more Hanan-graph vertices, the
	// same guard the workers apply; default 1<<20.
	MaxVolume int

	// StateDir, when set, persists the coordinator's membership as
	// internal/ckpt frames so a restarted coordinator rebuilds its ring
	// instead of blacking out until every agent re-registers. Empty
	// keeps membership in memory only.
	StateDir string
	// RecoveryGrace is the lease granted to workers restored from
	// StateDir at startup; default (and floor) LeaseTTL. It gives
	// agents a full window to renew before the sweep collects them.
	RecoveryGrace time.Duration

	// MaxInflight bounds concurrently admitted forwards; excess
	// requests are shed with ErrQueueFull (HTTP 429 + Retry-After).
	// Default 256; negative disables the bound.
	MaxInflight int

	// BreakerThreshold is how many consecutive health-indicating
	// failures trip a worker's circuit breaker open; default 5,
	// negative disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker rejects traffic
	// before admitting a half-open probe; default 3s.
	BreakerCooldown time.Duration

	// Replicate enables the replica fan-out: fresh non-degraded routes
	// are asynchronously installed on the key's next distinct ring
	// replica, so a dead worker's shard serves warm from its successor.
	Replicate bool
	// ReplicaQueue bounds the replication queue; default 64. A full
	// queue drops (and counts) instead of blocking the routing path.
	ReplicaQueue int

	// now is the lease clock, injectable by tests.
	now func() time.Time
	// newClient builds the per-worker client, injectable by tests.
	newClient func(addr string) (*client.Client, error)
}

func (c *Config) fill() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.LeaseTTL / 2
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 100 * time.Millisecond
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 60 * time.Second
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.MaxVolume <= 0 {
		c.MaxVolume = 1 << 20
	}
	if c.RecoveryGrace < c.LeaseTTL {
		c.RecoveryGrace = c.LeaseTTL
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 3 * time.Second
	}
	if c.ReplicaQueue <= 0 {
		c.ReplicaQueue = 64
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// worker is the coordinator's view of one registered shard.
type worker struct {
	id      string
	addr    string
	cl      *client.Client
	breaker *breaker

	mu         sync.Mutex
	leaseUntil time.Time
	draining   bool

	forwards atomic.Int64
	errors   atomic.Int64
	inflight atomic.Int64 // attempts currently outstanding
	hedges   atomic.Int64 // hedged attempts this worker has served
}

// newWorker builds a shard handle with a fresh breaker; a re-registered
// worker starts closed (it just proved it is back).
func (c *Coordinator) newWorker(id, addr string, cl *client.Client) *worker {
	return &worker{
		id: id, addr: addr, cl: cl,
		breaker: newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown),
	}
}

func (w *worker) eligible(now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.draining && now.Before(w.leaseUntil)
}

// cmetrics are the coordinator's instruments, a per-Coordinator
// obs.Registry exported on /v1/metrics.
type cmetrics struct {
	reg *obs.Registry

	forwards  *obs.Counter // requests forwarded to a shard
	completed *obs.Counter // requests answered successfully
	failed    *obs.Counter // requests answered with an error
	hedges    *obs.Counter // hedged second attempts launched
	hedgeWins *obs.Counter // hedged attempts that answered first
	retries   *obs.Counter // failed primaries retried on the fallback shard
	expired   *obs.Counter // worker leases collected by the sweep
	drained   *obs.Counter // workers that drained gracefully
	latency   *obs.Histogram

	shed         *obs.Counter // requests rejected at the admission bound
	breakerOpens *obs.Counter // breaker trips (closed/half-open -> open)

	replicated         *obs.Counter // replica installs delivered
	replicationErrors  *obs.Counter // replica installs that failed
	replicationDropped *obs.Counter // replica jobs dropped (queue full)

	stateErrors *obs.Counter // coordinator-state persist failures
}

func newCMetrics() *cmetrics {
	reg := obs.NewRegistry()
	return &cmetrics{
		reg:       reg,
		forwards:  reg.Counter("cluster.forwards"),
		completed: reg.Counter("cluster.completed"),
		failed:    reg.Counter("cluster.failed"),
		hedges:    reg.Counter("cluster.hedges"),
		hedgeWins: reg.Counter("cluster.hedge_wins"),
		retries:   reg.Counter("cluster.retries"),
		expired:   reg.Counter("cluster.expired"),
		drained:   reg.Counter("cluster.drained"),
		latency:   reg.Histogram("cluster.latency"),

		shed:         reg.Counter("cluster.shed"),
		breakerOpens: reg.Counter("cluster.breaker_opens"),

		replicated:         reg.Counter("cluster.replicated"),
		replicationErrors:  reg.Counter("cluster.replication_errors"),
		replicationDropped: reg.Counter("cluster.replication_dropped"),

		stateErrors: reg.Counter("cluster.state_errors"),
	}
}

// Coordinator shards routing requests across registered workers by
// canonical layout hash. It is itself served over the same wire
// protocol as a worker, so clients cannot tell the difference.
type Coordinator struct {
	cfg   Config
	start time.Time
	m     *cmetrics

	mu      sync.Mutex
	workers map[string]*worker
	ring    *ring
	closed  bool

	// inflight is the admission counter of the load-shedding bound.
	inflight atomic.Int64

	// replq is the bounded replication queue; nil when Replicate is off.
	replq chan replJob

	// persistMu serializes state writes so a slow fsync never holds the
	// membership lock; stateSeq numbers the ckpt frames.
	persistMu sync.Mutex
	stateSeq  int
	// restored counts workers rebuilt from StateDir at startup.
	restored int64

	done chan struct{}
	wg   sync.WaitGroup
}

// New starts a coordinator and its lease sweeper.
func New(cfg Config) (*Coordinator, error) {
	cfg.fill()
	if cfg.newClient == nil {
		timeout := cfg.ForwardTimeout
		cfg.newClient = func(addr string) (*client.Client, error) {
			return client.New(client.Config{BaseURL: addr, Timeout: timeout})
		}
	}
	c := &Coordinator{
		cfg:     cfg,
		start:   cfg.now(),
		m:       newCMetrics(),
		workers: map[string]*worker{},
		ring:    newRing(cfg.VirtualNodes),
		done:    make(chan struct{}),
	}
	// Rebuild membership from the persisted state before anything can
	// route or sweep; restored workers carry a recovery-grace lease.
	if err := c.restoreState(); err != nil {
		return nil, err
	}
	if cfg.Replicate {
		c.replq = make(chan replJob, cfg.ReplicaQueue)
		c.wg.Add(1)
		go c.replicate()
	}
	c.m.reg.GaugeFunc("cluster.workers", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	c.m.reg.GaugeFunc("cluster.uptime_seconds", func() float64 {
		return c.cfg.now().Sub(c.start).Seconds()
	})
	c.m.reg.GaugeFunc("cluster.inflight", func() float64 {
		return float64(c.inflight.Load())
	})
	c.m.reg.GaugeFunc("cluster.restored", func() float64 {
		return float64(c.restored)
	})
	c.wg.Add(1)
	go c.sweep()
	return c, nil
}

// Close stops the lease sweeper. In-flight forwards finish on their own
// contexts.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
}

// sweep periodically collects workers whose lease lapsed without
// renewal. Eligibility checks already exclude them from routing the
// moment the lease expires; the sweep reclaims the bookkeeping and
// counts the loss.
func (c *Coordinator) sweep() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.collectExpired()
		}
	}
}

func (c *Coordinator) collectExpired() {
	now := c.cfg.now()
	removed := 0
	c.mu.Lock()
	for id, w := range c.workers {
		w.mu.Lock()
		expired := now.After(w.leaseUntil)
		draining := w.draining
		w.mu.Unlock()
		if expired {
			delete(c.workers, id)
			c.ring.remove(id)
			removed++
			if !draining {
				c.m.expired.Inc()
			}
		}
	}
	c.mu.Unlock()
	if removed > 0 {
		c.persistState()
	}
}

// register adds or refreshes a worker, persisting the membership when
// it changed (a plain lease refresh does not touch the state file).
func (c *Coordinator) register(req wire.RegisterRequest) (wire.RegisterResponse, error) {
	resp, changed, err := c.registerMember(req)
	if err == nil && changed {
		c.persistState()
	}
	return resp, err
}

func (c *Coordinator) registerMember(req wire.RegisterRequest) (wire.RegisterResponse, bool, error) {
	if req.ID == "" || req.Addr == "" {
		return wire.RegisterResponse{}, false, fmt.Errorf("%w: register: id and addr are required", errs.ErrInvalidConfig)
	}
	if req.Proto != 0 && (req.Proto < wire.MinVersion || req.Proto > wire.Version) {
		return wire.RegisterResponse{}, false, fmt.Errorf("%w: register: worker speaks version %d, coordinator accepts [%d, %d]",
			errs.ErrUnsupportedProto, req.Proto, wire.MinVersion, wire.Version)
	}
	until := c.cfg.now().Add(c.cfg.LeaseTTL)
	c.mu.Lock()
	defer c.mu.Unlock()
	prev, existed := c.workers[req.ID]
	if existed {
		prev.mu.Lock()
		prev.leaseUntil = until
		wasDraining := prev.draining
		prev.draining = false
		sameAddr := prev.addr == req.Addr
		prev.mu.Unlock()
		if sameAddr {
			// Un-draining is a membership change (the state file omits
			// draining workers); a plain refresh is not.
			return wire.RegisterResponse{TTLMillis: c.cfg.LeaseTTL.Milliseconds()}, wasDraining, nil
		}
	}
	// Build the client before touching membership: a malformed advertised
	// address must leave an existing healthy registration intact.
	cl, err := c.cfg.newClient(req.Addr)
	if err != nil {
		return wire.RegisterResponse{}, false, err
	}
	if existed {
		// The worker moved: swap in the new client, keep its ring points
		// (identity, not address, owns the shard).
		delete(c.workers, req.ID)
		c.ring.remove(req.ID)
	}
	w := c.newWorker(req.ID, req.Addr, cl)
	w.leaseUntil = until
	c.workers[req.ID] = w
	c.ring.add(req.ID)
	return wire.RegisterResponse{TTLMillis: c.cfg.LeaseTTL.Milliseconds()}, true, nil
}

// renew extends a known worker's lease; an unknown ID is an error so
// the worker knows to re-register.
func (c *Coordinator) renew(id string) (wire.LeaseResponse, error) {
	c.mu.Lock()
	w := c.workers[id]
	c.mu.Unlock()
	if w == nil {
		return wire.LeaseResponse{}, fmt.Errorf("%w: lease: unknown worker %q (re-register)", errs.ErrInvalidConfig, id)
	}
	w.mu.Lock()
	w.leaseUntil = c.cfg.now().Add(c.cfg.LeaseTTL)
	w.mu.Unlock()
	return wire.LeaseResponse{TTLMillis: c.cfg.LeaseTTL.Milliseconds()}, nil
}

// drain marks a worker as shutting down: no new work routes to it, its
// in-flight requests finish on the worker's own drain path, and the
// sweep reclaims it once the lease lapses.
func (c *Coordinator) drain(id string) error {
	c.mu.Lock()
	w := c.workers[id]
	c.mu.Unlock()
	if w == nil {
		return fmt.Errorf("%w: drain: unknown worker %q", errs.ErrInvalidConfig, id)
	}
	w.mu.Lock()
	already := w.draining
	w.draining = true
	w.mu.Unlock()
	if !already {
		c.m.drained.Inc()
		c.persistState()
	}
	return nil
}

// pick returns the key's home shard and its fallback: the first two
// eligible workers in ring order from the key's position. Breakers
// filter the choice: a worker whose breaker is open is skipped, a
// half-open one may serve as primary (consuming its single probe slot —
// probe reports that), and only fully closed workers serve as the
// fallback, so a recovering shard's probe is never a speculative hedge
// that might go unawaited.
func (c *Coordinator) pick(key string) (primary *worker, probe bool, secondary *worker) {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.ring.pick(key, len(c.workers)) {
		w := c.workers[id]
		if w == nil || !w.eligible(now) {
			continue
		}
		if primary == nil {
			if ok, p := w.breaker.admit(now); ok {
				primary, probe = w, p
			}
			continue
		}
		if !w.breaker.closedNow() {
			continue
		}
		return primary, probe, w
	}
	return primary, probe, nil
}

// Workers returns the current membership, sorted by id.
func (c *Coordinator) Workers() []wire.WorkerInfo {
	now := c.cfg.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]wire.WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		w.mu.Lock()
		info := wire.WorkerInfo{
			ID:          w.id,
			Addr:        w.addr,
			Draining:    w.draining,
			LeaseMillis: w.leaseUntil.Sub(now).Milliseconds(),
			Forwards:    w.forwards.Load(),
			Errors:      w.errors.Load(),
			Breaker:     w.breaker.stateAt(now),
			InFlight:    w.inflight.Load(),
			Hedges:      w.hedges.Load(),
		}
		w.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns the coordinator's snapshot.
func (c *Coordinator) Stats() wire.ClusterStats {
	m := c.m
	return wire.ClusterStats{
		UptimeSeconds: c.cfg.now().Sub(c.start).Seconds(),
		Workers:       c.Workers(),
		Forwards:      m.forwards.Load(),
		Completed:     m.completed.Load(),
		Failed:        m.failed.Load(),
		Hedges:        m.hedges.Load(),
		HedgeWins:     m.hedgeWins.Load(),
		Retries:       m.retries.Load(),
		Expired:       m.expired.Load(),
		Drained:       m.drained.Load(),

		InFlight:           c.inflight.Load(),
		Shed:               m.shed.Load(),
		BreakerOpens:       m.breakerOpens.Load(),
		Replicated:         m.replicated.Load(),
		ReplicationErrors:  m.replicationErrors.Load(),
		ReplicationDropped: m.replicationDropped.Load(),
		Restored:           c.restored,

		P50Millis: float64(m.latency.Percentile(0.50).Microseconds()) / 1000,
		P99Millis: float64(m.latency.Percentile(0.99).Microseconds()) / 1000,
	}
}

// forward routes one request to its shard, hedging to the fallback when
// the primary is slow and retrying on it when the primary fails with a
// retryable error. The winning worker's id is stamped on the response.
// Admission is bounded first: past MaxInflight the request is shed with
// ErrQueueFull (HTTP 429 + Retry-After) without spending a forward.
func (c *Coordinator) forward(ctx context.Context, key string, req *wire.RouteRequest) (*wire.RouteResponse, error) {
	n := c.inflight.Add(1)
	defer c.inflight.Add(-1)
	if limit := c.cfg.MaxInflight; limit > 0 && n > int64(limit) {
		c.m.shed.Inc()
		return nil, fmt.Errorf("%w: coordinator at admission limit (%d in flight)", errs.ErrQueueFull, limit)
	}
	primary, probe, secondary := c.pick(key)
	if primary == nil {
		return nil, fmt.Errorf("%w: cluster has no admitting workers", errs.ErrTransient)
	}
	// Replication needs the routed tree: ask the worker for edges even
	// when the client did not, and strip them from the client's copy.
	fwd := req
	if c.replq != nil && !req.Edges {
		r2 := *req
		r2.Edges = true
		fwd = &r2
	}
	c.m.forwards.Inc()
	start := c.cfg.now()
	resp, err := c.race(ctx, fwd, primary, probe, secondary)
	c.m.latency.Observe(c.cfg.now().Sub(start))
	if err != nil {
		c.m.failed.Inc()
		return nil, err
	}
	c.m.completed.Inc()
	if c.replq != nil {
		if !resp.CacheHit {
			// Fresh answer: warm the key's successor. Cache hits are not
			// re-replicated — their first serve already was.
			c.enqueueReplication(key, req.Layout, resp)
		}
		if !req.Edges {
			out := *resp
			out.Edges = nil
			resp = &out
		}
	}
	return resp, nil
}

// attemptResult is one shard attempt's outcome.
type attemptResult struct {
	resp   *wire.RouteResponse
	err    error
	w      *worker
	hedged bool
}

// race runs the primary attempt, arming a hedge to the fallback shard
// on the configured delay. fault point "cluster.forward" fires once per
// attempt, before the request leaves the coordinator: Delay mode makes
// a shard look slow (driving a hedge), Error mode makes it fail
// (driving a retry).
func (c *Coordinator) race(ctx context.Context, req *wire.RouteRequest, primary *worker, probe bool, secondary *worker) (*wire.RouteResponse, error) {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, 2)
	attempt := func(ctx context.Context, w *worker, hedged, probe bool) {
		w.forwards.Add(1)
		w.inflight.Add(1)
		if hedged {
			w.hedges.Add(1)
		}
		var resp *wire.RouteResponse
		err := fault.Inject("cluster.forward")
		if err == nil {
			resp, err = w.cl.RouteJSON(ctx, req.Layout, &client.RouteOptions{
				Timeout: time.Duration(req.TimeoutMillis) * time.Millisecond,
				Edges:   req.Edges,
			})
		}
		w.inflight.Add(-1)
		// The breaker only hears health verdicts: successes and failures
		// that indict the worker. Neutral errors (invalid layout) would
		// trip it on every shard identically — except a probe's, which
		// must always resolve or the half-open slot would leak.
		if failed := err != nil && breakerFailure(err); probe || err == nil || failed {
			if w.breaker.record(c.cfg.now(), failed, probe) {
				c.m.breakerOpens.Inc()
			}
		}
		if err != nil {
			w.errors.Add(1)
		} else {
			resp.Worker = w.id
			resp.Hedged = hedged
		}
		results <- attemptResult{resp, err, w, hedged}
	}
	go attempt(fctx, primary, false, probe)

	hedge := func() bool {
		if secondary == nil {
			return false
		}
		s := secondary
		secondary = nil
		go attempt(fctx, s, true, false)
		return true
	}

	var firstErr error
	outstanding := 1
	armed := c.cfg.HedgeDelay > 0 && secondary != nil
	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if armed {
		hedgeTimer = time.NewTimer(c.cfg.HedgeDelay)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	for outstanding > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			// hedge() is a no-op when the fast-failure retry below already
			// consumed the fallback; counting an attempt then would leave
			// the loop waiting on a result that never comes.
			if hedge() {
				c.m.hedges.Inc()
				outstanding++
			}
		case r := <-results:
			outstanding--
			if r.err == nil {
				if r.hedged {
					c.m.hedgeWins.Inc()
				}
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			// A failed attempt frees the fallback for an immediate
			// retry — no point waiting out the hedge timer on a shard
			// that already answered with an error.
			if client.Retryable(r.err) && hedge() {
				c.m.retries.Inc()
				outstanding++
			}
		case <-fctx.Done():
			return nil, errs.Classify(fctx.Err())
		}
	}
	return nil, firstErr
}

// CanonicalKeyJSON decodes a layout and returns its canonical shard
// key; the decode also validates the layout before any forward.
func (c *Coordinator) canonicalKey(layoutJSON []byte) (string, error) {
	in, err := layout.DecodeWithLimit(bytes.NewReader(layoutJSON), c.cfg.MaxVolume)
	if err != nil {
		return "", err
	}
	return serve.CanonicalKey(in), nil
}

// Handler returns the coordinator's HTTP surface: the same data-plane
// paths a worker serves (versioned and legacy), plus the cluster plane.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+wire.PathRoute, c.handleRouteV1)
	mux.HandleFunc("GET "+wire.PathHealthz, c.handleHealthz)
	mux.HandleFunc("GET "+wire.PathStats, c.handleStats)
	mux.HandleFunc("GET "+wire.PathMetrics, c.handleMetrics)

	mux.HandleFunc("POST "+wire.PathRegister, c.handleRegister)
	mux.HandleFunc("POST "+wire.PathLease, c.handleLease)
	mux.HandleFunc("POST "+wire.PathDrain, c.handleDrain)

	mux.HandleFunc("POST "+wire.LegacyPathRoute, c.handleRouteLegacy)
	mux.HandleFunc("GET "+wire.LegacyPathHealthz, c.deprecated(wire.PathHealthz, c.handleHealthz))
	mux.HandleFunc("GET "+wire.LegacyPathStats, c.deprecated(wire.PathStats, c.handleStats))
	mux.HandleFunc("GET "+wire.LegacyPathMetrics, c.deprecated(wire.PathMetrics, c.handleMetrics))
	return mux
}

func (c *Coordinator) deprecated(replacement string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(wire.DeprecationHeader, replacement)
		h(w, r)
	}
}

// writeBodyError maps a body-read failure, keeping the 413 for
// oversized bodies distinct from a 400 for anything else (client
// aborts, malformed chunked encoding).
func writeBodyError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		wire.WriteError(w, fmt.Errorf("%w: request body too large", errs.ErrTooLarge))
		return
	}
	wire.WriteError(w, fmt.Errorf("%w: request body: %v", errs.ErrInvalidLayout, err))
}

func (c *Coordinator) handleRouteV1(w http.ResponseWriter, r *http.Request) {
	if err := wire.CheckProto(r); err != nil {
		wire.WriteError(w, err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeBodyError(w, err)
		return
	}
	var req wire.RouteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		wire.WriteError(w, fmt.Errorf("%w: request envelope: %v", errs.ErrInvalidLayout, err))
		return
	}
	if len(req.Layout) == 0 {
		wire.WriteError(w, fmt.Errorf("%w: request envelope has no layout", errs.ErrInvalidLayout))
		return
	}
	c.serveForward(w, r, &req)
}

func (c *Coordinator) handleRouteLegacy(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(wire.DeprecationHeader, wire.PathRoute)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeBodyError(w, err)
		return
	}
	req := wire.RouteRequest{Layout: body, Edges: r.URL.Query().Get("edges") != ""}
	if tq := r.URL.Query().Get("timeout"); tq != "" {
		d, err := time.ParseDuration(tq)
		if err != nil || d <= 0 {
			wire.WriteErrorStatus(w, http.StatusBadRequest, "invalid_layout", "timeout: want a positive duration like 250ms")
			return
		}
		req.TimeoutMillis = d.Milliseconds()
		if req.TimeoutMillis == 0 {
			req.TimeoutMillis = 1
		}
	}
	c.serveForward(w, r, &req)
}

func (c *Coordinator) serveForward(w http.ResponseWriter, r *http.Request, req *wire.RouteRequest) {
	key, err := c.canonicalKey(req.Layout)
	if err != nil {
		wire.WriteError(w, err)
		return
	}
	resp, err := c.forward(r.Context(), key, req)
	if err != nil {
		wire.WriteError(w, err)
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	wire.SetProto(w.Header())
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		wire.WriteError(w, fmt.Errorf("%w: draining", errs.ErrClosed))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

func (c *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, c.Stats())
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	wire.SetProto(w.Header())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.m.reg.WritePrometheus(w)
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req wire.RegisterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := c.register(req)
	if err != nil {
		wire.WriteError(w, err)
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req wire.LeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := c.renew(req.ID)
	if err != nil {
		wire.WriteError(w, err)
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req wire.DrainRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := c.drain(req.ID); err != nil {
		wire.WriteError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := wire.CheckProto(r); err != nil {
		wire.WriteError(w, err)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(v); err != nil {
		wire.WriteError(w, fmt.Errorf("%w: request body: %v", errs.ErrInvalidConfig, err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	wire.SetProto(w.Header())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
