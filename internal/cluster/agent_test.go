package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oarsmt/client"
	"oarsmt/internal/errs"
	"oarsmt/wire"
)

// agentHarness wires an Agent to a coordinator over real HTTP with a
// step-driven renewal clock: each send on step releases exactly one
// renewal tick.
type agentHarness struct {
	coord *Coordinator
	clock *fakeClock
	agent *Agent
	step  chan struct{}
}

func startAgentHarness(t *testing.T, ttl time.Duration) *agentHarness {
	t.Helper()
	clock := newFakeClock()
	coord := newTestCoord(t, Config{LeaseTTL: ttl, now: clock.now})
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	cl, err := client.New(client.Config{BaseURL: front.URL})
	if err != nil {
		t.Fatal(err)
	}
	h := &agentHarness{coord: coord, clock: clock, step: make(chan struct{})}
	h.agent, err = StartAgent(context.Background(), AgentConfig{
		ID:        "w1",
		Advertise: "http://worker.invalid:1",
		Client:    cl,
		sleep: func(ctx context.Context, _ time.Duration) error {
			select {
			case <-h.step:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.agent.Close)
	return h
}

// leaseMillis polls the coordinator until cond holds for the single
// registered worker's remaining lease.
func (h *agentHarness) waitLease(t *testing.T, cond func(int64) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ws := h.coord.Workers()
		if len(ws) == 1 && cond(ws[0].LeaseMillis) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease condition never held; workers = %+v", ws)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAgentRegistersAndRenews: startup registration is synchronous, and
// each renewal tick restores the full TTL.
func TestAgentRegistersAndRenews(t *testing.T) {
	h := startAgentHarness(t, 10*time.Second)
	ws := h.coord.Workers()
	if len(ws) != 1 || ws[0].ID != "w1" || ws[0].LeaseMillis != 10_000 {
		t.Fatalf("after StartAgent workers = %+v", ws)
	}

	h.clock.advance(6 * time.Second) // lease down to 4s
	h.waitLease(t, func(ms int64) bool { return ms == 4_000 })
	h.step <- struct{}{} // one renewal tick
	h.waitLease(t, func(ms int64) bool { return ms == 10_000 })
}

// TestAgentReRegistersAfterSweep: when a sweep collected the lease (the
// agent was partitioned away), the next renewal is rejected and the
// agent falls back to a full re-registration.
func TestAgentReRegistersAfterSweep(t *testing.T) {
	h := startAgentHarness(t, 10*time.Second)

	h.clock.advance(11 * time.Second)
	h.coord.collectExpired()
	if ws := h.coord.Workers(); len(ws) != 0 {
		t.Fatalf("expired agent still registered: %+v", ws)
	}

	h.step <- struct{}{} // renewal is rejected; the agent re-registers
	h.waitLease(t, func(ms int64) bool { return ms == 10_000 })
}

// TestAgentDrainAnnounces: Drain stops the renewal loop and marks the
// worker draining on the coordinator before the worker's own HTTP
// shutdown begins.
func TestAgentDrainAnnounces(t *testing.T) {
	h := startAgentHarness(t, 10*time.Second)
	if err := h.agent.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	ws := h.coord.Workers()
	if len(ws) != 1 || !ws[0].Draining {
		t.Fatalf("after Drain workers = %+v, want one draining worker", ws)
	}
	// The renewal loop is stopped: Drain again is safe and the lease is
	// left to lapse.
	if err := h.agent.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAgentConcurrentStop: a signal handler calling Drain while a defer
// calls Close must not race on the renewal loop's shutdown.
func TestAgentConcurrentStop(t *testing.T) {
	h := startAgentHarness(t, 10*time.Second)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := h.agent.Drain(context.Background()); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		h.agent.Close()
	}()
	wg.Wait()
}

// TestAgentBackoffDuringBlackout is the re-registration storm
// regression: while the coordinator is blacked out, the renewal loop
// must back off deterministically — doubling from the renewal interval
// up to the full TTL — instead of hammering at TTL/3, and the first
// successful renewal snaps it back to the renewal cadence. The injected
// sleep hands each chosen delay to the test, pacing the loop so every
// renewal attempt completes before the next delay is observed.
func TestAgentBackoffDuringBlackout(t *testing.T) {
	coord := newTestCoord(t, Config{LeaseTTL: 9 * time.Second})
	var down atomic.Bool
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			wire.WriteError(w, errs.ErrTransient)
			return
		}
		coord.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(front.Close)
	cl, err := client.New(client.Config{BaseURL: front.URL})
	if err != nil {
		t.Fatal(err)
	}

	delays := make(chan time.Duration)
	agent, err := StartAgent(context.Background(), AgentConfig{
		ID:        "w1",
		Advertise: "http://worker.invalid:1",
		Client:    cl,
		sleep: func(ctx context.Context, d time.Duration) error {
			select {
			case delays <- d:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Close)

	next := func() time.Duration {
		t.Helper()
		select {
		case d := <-delays:
			return d
		case <-time.After(5 * time.Second):
			t.Fatal("renewal loop stopped sleeping")
			return 0
		}
	}

	down.Store(true) // blackout: renewals and re-registrations both fail
	// TTL 9s renews on 3s; failures double 3 -> 6 -> 9 and cap at the TTL.
	want := []time.Duration{3 * time.Second, 6 * time.Second, 9 * time.Second, 9 * time.Second}
	for i, w := range want {
		if d := next(); d != w {
			t.Fatalf("blackout delay %d = %v, want %v", i, d, w)
		}
	}

	down.Store(false) // the coordinator is back
	// The attempt after the last observed delay may have raced the
	// restore; within two more sleeps the loop must be back on cadence.
	d := next()
	if d != 3*time.Second {
		if d != 9*time.Second {
			t.Fatalf("post-restore delay = %v, want 3s (or one final 9s)", d)
		}
		d = next()
	}
	if d != 3*time.Second {
		t.Fatalf("delay after recovery = %v, want the 3s renewal cadence", d)
	}
}

// TestAgentValidation: missing identity fails fast, and a coordinator
// that cannot be reached fails StartAgent synchronously.
func TestAgentValidation(t *testing.T) {
	if _, err := StartAgent(context.Background(), AgentConfig{Advertise: "http://x"}); !errors.Is(err, errs.ErrInvalidConfig) {
		t.Errorf("StartAgent without ID = %v, want ErrInvalidConfig", err)
	}
	dead := httptest.NewServer(nil)
	dead.Close()
	_, err := StartAgent(context.Background(), AgentConfig{
		ID:          "w1",
		Advertise:   "http://x",
		Coordinator: dead.URL,
	})
	if !errors.Is(err, errs.ErrTransient) {
		t.Errorf("StartAgent against dead coordinator = %v, want ErrTransient", err)
	}
}
