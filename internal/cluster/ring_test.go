package cluster

import (
	"fmt"
	"testing"
)

func ringWith(members ...string) *ring {
	r := newRing(64)
	for _, m := range members {
		r.add(m)
	}
	return r
}

// TestRingPickStable: the same key always resolves to the same ordered
// shard list, and the list never repeats a member.
func TestRingPickStable(t *testing.T) {
	r := ringWith("w1", "w2", "w3")
	first := r.pick("somekey", 3)
	if len(first) != 3 {
		t.Fatalf("pick returned %v, want all 3 members", first)
	}
	seen := map[string]bool{}
	for _, id := range first {
		if seen[id] {
			t.Fatalf("pick repeated member %q: %v", id, first)
		}
		seen[id] = true
	}
	for i := 0; i < 10; i++ {
		got := r.pick("somekey", 3)
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("pick not stable: %v then %v", first, got)
			}
		}
	}
}

// TestRingEmptyAndBounds: an empty ring and non-positive n return nil;
// asking for more members than exist returns them all.
func TestRingEmptyAndBounds(t *testing.T) {
	if got := newRing(64).pick("k", 2); got != nil {
		t.Errorf("empty ring pick = %v, want nil", got)
	}
	r := ringWith("w1", "w2")
	if got := r.pick("k", 0); got != nil {
		t.Errorf("pick(k, 0) = %v, want nil", got)
	}
	if got := r.pick("k", 99); len(got) != 2 {
		t.Errorf("pick(k, 99) = %v, want both members", got)
	}
}

// TestRingDistribution: virtual nodes spread the key space — with four
// members, no shard owns less than a twentieth or more than half of a
// large key sample.
func TestRingDistribution(t *testing.T) {
	r := ringWith("w1", "w2", "w3", "w4")
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.pick(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d members received keys: %v", len(counts), counts)
	}
	for id, c := range counts {
		if c < n/20 || c > n/2 {
			t.Errorf("member %s owns %d/%d keys — distribution too skewed: %v", id, c, n, counts)
		}
	}
}

// TestRingMinimalReshuffle is the consistent-hashing property: removing
// one member must not move any key that member did not own.
func TestRingMinimalReshuffle(t *testing.T) {
	r := ringWith("w1", "w2", "w3", "w4")
	const n = 2000
	before := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.pick(k, 1)[0]
	}
	r.remove("w2")
	moved := 0
	for k, owner := range before {
		now := r.pick(k, 1)[0]
		if owner == "w2" {
			if now == "w2" {
				t.Fatalf("key %s still owned by removed member", k)
			}
			moved++
			continue
		}
		if now != owner {
			t.Errorf("key %s moved %s -> %s though its owner stayed", k, owner, now)
		}
	}
	if moved == 0 {
		t.Error("removed member owned no keys; distribution test should have caught this")
	}
}

// TestRingReAddRestoresOwnership: adding a member back gives it exactly
// its old points, so a worker rejoining under the same id recovers its
// shard (and with it the store affinity).
func TestRingReAddRestoresOwnership(t *testing.T) {
	r := ringWith("w1", "w2", "w3")
	const n = 500
	before := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.pick(k, 1)[0]
	}
	r.remove("w2")
	r.add("w2")
	for k, owner := range before {
		if now := r.pick(k, 1)[0]; now != owner {
			t.Errorf("key %s owned by %s after re-add, want %s", k, now, owner)
		}
	}
}
