package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/wire"
)

// at builds deterministic breaker timestamps: at(0) is the epoch, at(n)
// is n seconds later.
func at(sec int) time.Time { return time.Unix(2_000_000+int64(sec), 0) }

// TestBreakerTripsAtThreshold: consecutive failures trip the breaker
// exactly at the threshold; a success in between resets the count.
func TestBreakerTripsAtThreshold(t *testing.T) {
	b := newBreaker(3, time.Second)
	b.record(at(0), true, false)
	b.record(at(0), true, false)
	b.record(at(0), false, false) // success resets the streak
	b.record(at(0), true, false)
	if opened := b.record(at(0), true, false); opened {
		t.Fatal("breaker tripped after 2 consecutive failures, threshold is 3")
	}
	if opened := b.record(at(1), true, false); !opened {
		t.Fatal("breaker did not trip at the third consecutive failure")
	}
	if ok, _ := b.admit(at(1)); ok {
		t.Error("open breaker admitted a request inside the cooldown")
	}
	if got := b.stateAt(at(1)); got != "open" {
		t.Errorf("state inside cooldown = %q, want open", got)
	}
}

// TestBreakerHalfOpenSingleProbe: after the cooldown exactly one probe
// is admitted; its success recloses the breaker, its failure reopens it
// for a fresh cooldown.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(1, time.Second)
	b.record(at(0), true, false) // trip
	if got := b.stateAt(at(2)); got != "half-open" {
		t.Errorf("state past cooldown = %q, want half-open", got)
	}

	ok, probe := b.admit(at(2))
	if !ok || !probe {
		t.Fatalf("admit past cooldown = (%v, %v), want the probe slot", ok, probe)
	}
	if ok, _ := b.admit(at(2)); ok {
		t.Fatal("second admit granted while the probe is outstanding")
	}
	// A stale outcome from before the trip must not resolve the probe.
	if b.record(at(2), true, false) {
		t.Error("non-probe outcome moved a half-open breaker")
	}
	if ok, _ := b.admit(at(2)); ok {
		t.Fatal("stale outcome released the probe slot")
	}

	// Probe failure: reopen and wait out a fresh cooldown.
	if opened := b.record(at(2), true, true); !opened {
		t.Fatal("failed probe did not reopen the breaker")
	}
	if ok, _ := b.admit(at(2)); ok {
		t.Error("reopened breaker admitted inside the new cooldown")
	}

	// Second probe succeeds: fully closed again.
	if ok, probe := b.admit(at(4)); !ok || !probe {
		t.Fatalf("admit after second cooldown = (%v, %v), want the probe slot", ok, probe)
	}
	if b.record(at(4), false, true) {
		t.Error("successful probe reported as a trip")
	}
	if !b.closedNow() {
		t.Fatal("successful probe did not reclose the breaker")
	}
	if got := b.stateAt(at(4)); got != "closed" {
		t.Errorf("state after reclose = %q, want closed", got)
	}
}

// TestBreakerDisabled: a non-positive threshold disables the breaker
// entirely — always admitted, never tripped, anonymous in stats.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Second)
	for i := 0; i < 100; i++ {
		b.record(at(0), true, false)
	}
	if ok, probe := b.admit(at(0)); !ok || probe {
		t.Errorf("disabled breaker admit = (%v, %v), want (true, false)", ok, probe)
	}
	if !b.closedNow() {
		t.Error("disabled breaker not closed")
	}
	if got := b.stateAt(at(0)); got != "" {
		t.Errorf("disabled breaker state = %q, want empty", got)
	}
}

// TestBreakerFailureClassification: only health-indicating errors count
// against a worker; request defects fail identically everywhere and
// must not trip breakers cluster-wide.
func TestBreakerFailureClassification(t *testing.T) {
	for _, err := range []error{errs.ErrTransient, errs.ErrQueueFull, errs.ErrClosed, errs.ErrTimeout, errs.ErrInternal} {
		if !breakerFailure(fmt.Errorf("wrapped: %w", err)) {
			t.Errorf("breakerFailure(%v) = false, want true", err)
		}
	}
	for _, err := range []error{errs.ErrInvalidLayout, errs.ErrTooLarge, errs.ErrNoPath, nil} {
		if breakerFailure(err) {
			t.Errorf("breakerFailure(%v) = true, want false", err)
		}
	}
}

// flappyWorker answers with a transient error while failing is set —
// retryable, so the cluster keeps answering, and health-indicating, so
// the breaker counts it — and with a normal route otherwise.
func flappyWorker(failing *atomic.Bool, cost float64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			wire.WriteError(w, errs.ErrTransient)
			return
		}
		writeFakeRoute(w, cost)
	}
}

// TestCoordinatorBreakerTripAndRecover is the flapping-worker story end
// to end: a worker failing every request trips its breaker at the
// threshold, traffic routes around it (each failure retried on the
// healthy fallback), and once the cooldown elapses a single half-open
// probe recloses the breaker and traffic returns.
func TestCoordinatorBreakerTripAndRecover(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoord(t, Config{
		HedgeDelay:       -1,
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Second,
		now:              clock.now,
	})
	probe := newRing(c.cfg.VirtualNodes)
	probe.add("w1")
	probe.add("w2")
	order := probe.pick("k", 2)
	primaryID, fallbackID := order[0], order[1]

	var failing atomic.Bool
	failing.Store(true)
	fakeWorker(t, c, primaryID, flappyWorker(&failing, 1))
	fakeWorker(t, c, fallbackID, instantWorker(2))

	ctx := context.Background()
	// Three forwards: each fails on the flapping primary (counting one
	// consecutive breaker failure) and succeeds on the fallback retry.
	for i := 0; i < 3; i++ {
		resp, err := c.forward(ctx, "k", routeReq())
		if err != nil {
			t.Fatalf("forward %d: %v", i, err)
		}
		if resp.Worker != fallbackID {
			t.Fatalf("forward %d served by %s, want fallback %s", i, resp.Worker, fallbackID)
		}
	}
	st := c.Stats()
	if st.BreakerOpens != 1 {
		t.Fatalf("breakerOpens = %d after %d failures, want 1", st.BreakerOpens, 3)
	}
	for _, w := range st.Workers {
		want := "closed"
		if w.ID == primaryID {
			want = "open"
		}
		if w.Breaker != want {
			t.Errorf("worker %s breaker = %q, want %q", w.ID, w.Breaker, want)
		}
	}

	// While open the flapping worker sees no traffic at all.
	before := workerForwards(st, primaryID)
	for i := 0; i < 4; i++ {
		resp, err := c.forward(ctx, "k", routeReq())
		if err != nil || resp.Worker != fallbackID {
			t.Fatalf("forward with open breaker = %+v, %v; want fallback answer", resp, err)
		}
	}
	if got := workerForwards(c.Stats(), primaryID); got != before {
		t.Fatalf("open-breaker worker received %d forwards", got-before)
	}
	if got := c.Stats().Retries; got != 3 {
		t.Errorf("retries = %d, want 3 (none while the breaker is open)", got)
	}

	// Past the cooldown the worker has recovered: the half-open probe
	// succeeds and recloses the breaker.
	failing.Store(false)
	clock.advance(6 * time.Second)
	resp, err := c.forward(ctx, "k", routeReq())
	if err != nil {
		t.Fatalf("probe forward: %v", err)
	}
	if resp.Worker != primaryID || resp.Cost != 1 {
		t.Fatalf("probe forward served by %+v, want the recovered primary", resp)
	}
	for _, w := range c.Workers() {
		if w.Breaker != "closed" {
			t.Errorf("worker %s breaker = %q after recovery, want closed", w.ID, w.Breaker)
		}
	}
}

// TestCoordinatorBreakerProbeFailureReopens: a probe that fails sends
// the breaker straight back to open — with the request itself still
// answered by the fallback — and no second probe fires until another
// cooldown has passed.
func TestCoordinatorBreakerProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoord(t, Config{
		HedgeDelay:       -1,
		BreakerThreshold: 1,
		BreakerCooldown:  5 * time.Second,
		now:              clock.now,
	})
	probe := newRing(c.cfg.VirtualNodes)
	probe.add("w1")
	probe.add("w2")
	order := probe.pick("k", 2)
	primaryID, fallbackID := order[0], order[1]

	var failing atomic.Bool
	failing.Store(true)
	fakeWorker(t, c, primaryID, flappyWorker(&failing, 1))
	fakeWorker(t, c, fallbackID, instantWorker(2))

	ctx := context.Background()
	if _, err := c.forward(ctx, "k", routeReq()); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().BreakerOpens; got != 1 {
		t.Fatalf("breakerOpens = %d, want 1", got)
	}

	clock.advance(6 * time.Second) // cooldown elapses; worker still broken
	resp, err := c.forward(ctx, "k", routeReq())
	if err != nil || resp.Worker != fallbackID {
		t.Fatalf("probe-failure forward = %+v, %v; want fallback answer", resp, err)
	}
	if got := c.Stats().BreakerOpens; got != 2 {
		t.Fatalf("breakerOpens = %d after failed probe, want 2", got)
	}
	// Inside the fresh cooldown the worker is skipped outright.
	before := workerForwards(c.Stats(), primaryID)
	if resp, err := c.forward(ctx, "k", routeReq()); err != nil || resp.Worker != fallbackID {
		t.Fatalf("forward inside reopened cooldown = %+v, %v", resp, err)
	}
	if got := workerForwards(c.Stats(), primaryID); got != before {
		t.Fatal("reopened breaker admitted traffic inside its cooldown")
	}
}

func workerForwards(st wire.ClusterStats, id string) int64 {
	for _, w := range st.Workers {
		if w.ID == id {
			return w.Forwards
		}
	}
	return -1
}

// TestAdmissionShedsPastMaxInflight: with the admission bound at 1, a
// second concurrent forward is shed with ErrQueueFull — the wire
// contract maps it to 429 + Retry-After — and counted.
func TestAdmissionShedsPastMaxInflight(t *testing.T) {
	c := newTestCoord(t, Config{HedgeDelay: -1, MaxInflight: 1})
	h, arrived, release := gatedWorker(t, 1)
	fakeWorker(t, c, "w1", h)

	done := make(chan error, 1)
	go func() {
		_, err := c.forward(context.Background(), "k", routeReq())
		done <- err
	}()
	<-arrived // the first forward holds the only admission slot

	_, err := c.forward(context.Background(), "k", routeReq())
	if !errors.Is(err, errs.ErrQueueFull) {
		t.Fatalf("forward past the admission bound = %v, want ErrQueueFull", err)
	}
	if got := c.Stats().Shed; got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}

	release()
	if err := <-done; err != nil {
		t.Fatalf("admitted forward failed: %v", err)
	}
	// The slot freed: the next forward is admitted again.
	if _, err := c.forward(context.Background(), "k", routeReq()); err != nil {
		t.Fatalf("forward after the slot freed: %v", err)
	}
	if got := c.Stats().InFlight; got != 0 {
		t.Errorf("inFlight after quiesce = %d, want 0", got)
	}
}
