// Package baseline implements the algorithmic ML-OARSMT comparators of
// the paper's evaluation, re-created from their published methodologies
// (the original executables are not redistributable; see DESIGN.md):
//
//   - Lin08 ([12]): the earliest spanning-graph multilayer router. Modelled
//     as a terminal-to-terminal spanning construction — each new pin
//     connects by a maze route to the nearest already-connected *terminal*
//     rather than to the nearest point of the tree, which loses most
//     implicit Steiner sharing and reproduces its cost gap.
//   - Liu14 ([16]): geometric-reduction router. Modelled as the full
//     maze-router-based Prim construction plus one path-assessed
//     retracing pass.
//   - Lin18 ([14]): the strongest comparator, "maze routing with bounded
//     exploration and path-assessed retracing". Modelled as bounded-window
//     maze-Prim construction plus retracing passes until convergence.
//
// The relative quality ordering (Lin08 worst, Liu14 close to Lin18,
// Lin18 best) and the runtime growth of Lin18 with layout size are the
// properties Tables 2-4 depend on.
package baseline

import (
	"fmt"
	"sort"
	"time"

	"oarsmt/internal/errs"
	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/route"
)

// Algorithm identifies a baseline router.
type Algorithm int

const (
	// Lin08 models reference [12] (Lin et al., TCAD 2008).
	Lin08 Algorithm = iota
	// Liu14 models reference [16] (Liu et al., TCAD 2014).
	Liu14
	// Lin18 models reference [14] (Lin et al., TODAES 2018).
	Lin18
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Lin08:
		return "Lin08[12]"
	case Liu14:
		return "Liu14[16]"
	case Lin18:
		return "Lin18[14]"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Router is a configured baseline router.
type Router struct {
	Alg Algorithm
	// RetracePasses bounds the refinement passes (Lin18 only; Liu14 always
	// uses one pass, Lin08 none).
	RetracePasses int
	// BoundMargin is the grid-space inflation of the bounded search window
	// used by Lin18's construction.
	BoundMargin int
}

// New returns a baseline router with the defaults used in the paper's
// comparison harness.
func New(alg Algorithm) *Router {
	return &Router{Alg: alg, RetracePasses: 4, BoundMargin: 8}
}

// Result is a routed baseline tree with its wall-clock runtime.
type Result struct {
	Tree    *route.Tree
	Elapsed time.Duration
	// RetraceImproved counts retracing passes that found an improvement.
	RetraceImproved int
}

// Route routes the instance with the configured algorithm.
func (b *Router) Route(in *layout.Instance) (*Result, error) {
	start := time.Now()
	r := route.NewRouter(in.Graph)
	var (
		tree     *route.Tree
		err      error
		improved int
	)
	switch b.Alg {
	case Lin08:
		tree, err = terminalSpanningTree(r, in.Pins)
	case Liu14:
		tree, err = r.OARMST(in.Pins)
		if err == nil {
			tree, improved = r.Retrace(tree, in.Pins, 1)
		}
	case Lin18:
		r.BoundedExploration = true
		r.BoundMargin = b.BoundMargin
		tree, err = r.OARMST(in.Pins)
		if err == nil {
			passes := b.RetracePasses
			if passes < 1 {
				passes = 1
			}
			tree, improved = r.Retrace(tree, in.Pins, passes)
		}
	default:
		return nil, fmt.Errorf("%w: baseline: unknown algorithm %v", errs.ErrInvalidConfig, b.Alg)
	}
	if err != nil {
		return nil, fmt.Errorf("baseline %v: %w", b.Alg, err)
	}
	return &Result{Tree: tree, Elapsed: time.Since(start), RetraceImproved: improved}, nil
}

// terminalSpanningTree connects each new terminal to the nearest
// already-connected terminal (not the nearest tree point), emulating the
// spanning-graph style of [12]. Overlapping route segments still merge
// (the tree deduplicates edges), but branching is never created
// deliberately.
func terminalSpanningTree(r *route.Router, terminals []grid.VertexID) (*route.Tree, error) {
	terms := sortedUniqueIDs(terminals)
	if len(terms) == 0 {
		return nil, fmt.Errorf("%w: baseline: no terminals", errs.ErrInvalidLayout)
	}
	g := r.Graph()
	for _, t := range terms {
		if g.Blocked(t) {
			return nil, fmt.Errorf("%w: baseline: terminal %v blocked", errs.ErrInvalidLayout, g.CoordOf(t))
		}
	}
	tree := route.NewTreeAt(terms[0])
	connected := []grid.VertexID{terms[0]}
	remaining := map[grid.VertexID]struct{}{}
	for _, t := range terms[1:] {
		remaining[t] = struct{}{}
	}
	for len(remaining) > 0 {
		path, _, ok := r.ShortestToTarget(connected, func(v grid.VertexID) bool {
			_, isRem := remaining[v]
			return isRem
		})
		if !ok {
			var worst grid.VertexID = -1
			for v := range remaining {
				if worst == -1 || v < worst {
					worst = v
				}
			}
			return nil, &route.ErrUnreachable{Terminal: worst, Coord: g.CoordOf(worst)}
		}
		tree.AddPath(g, path)
		reached := path[0]
		delete(remaining, reached)
		connected = append(connected, reached)
	}
	return tree, nil
}

func sortedUniqueIDs(vs []grid.VertexID) []grid.VertexID {
	out := append([]grid.VertexID(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}
