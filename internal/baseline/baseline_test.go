package baseline

import (
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/route"
)

func randomInstance(t *testing.T, seed int64, pins int) *layout.Instance {
	t.Helper()
	in, err := layout.Random(rand.New(rand.NewSource(seed)), layout.RandomSpec{
		H: 10, V: 10, MinM: 2, MaxM: 3,
		MinPins: pins, MaxPins: pins,
		MinObstacles: 8, MaxObstacles: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestAllAlgorithmsProduceValidTrees(t *testing.T) {
	in := randomInstance(t, 1, 6)
	for _, alg := range []Algorithm{Lin08, Liu14, Lin18} {
		res, err := New(alg).Route(in)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := res.Tree.Validate(in.Graph, in.Pins); err != nil {
			t.Errorf("%v: %v", alg, err)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: elapsed = %v", alg, res.Elapsed)
		}
	}
}

func TestQualityOrderingOnAverage(t *testing.T) {
	// Lin08 loses implicit Steiner sharing, so across many layouts it must
	// be the most expensive on average; Lin18's extra retracing must be at
	// least as good as Liu14's single pass on average.
	var c08, c14, c18 float64
	n := 20
	for seed := int64(0); seed < int64(n); seed++ {
		in := randomInstance(t, 100+seed, 7)
		r08, err := New(Lin08).Route(in)
		if err != nil {
			t.Fatal(err)
		}
		r14, err := New(Liu14).Route(in)
		if err != nil {
			t.Fatal(err)
		}
		r18, err := New(Lin18).Route(in)
		if err != nil {
			t.Fatal(err)
		}
		c08 += r08.Tree.Cost
		c14 += r14.Tree.Cost
		c18 += r18.Tree.Cost
	}
	if c08 < c14 {
		t.Errorf("Lin08 avg cost %v should exceed Liu14 %v", c08/float64(n), c14/float64(n))
	}
	if c18 > c14*1.001 {
		t.Errorf("Lin18 avg cost %v should not exceed Liu14 %v", c18/float64(n), c14/float64(n))
	}
}

func TestLin18BoundedFallback(t *testing.T) {
	// A detour forced outside the bounded window must still route via the
	// unbounded fallback.
	g, err := grid.NewUniform(9, 9, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Wall splitting the grid except the top row.
	for v := 0; v < 8; v++ {
		g.Block(g.Index(4, v, 0))
	}
	in := &layout.Instance{
		Graph: g,
		Pins:  []grid.VertexID{g.Index(0, 0, 0), g.Index(8, 0, 0)},
	}
	b := New(Lin18)
	b.BoundMargin = 0 // tightest window
	res, err := b.Route(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(g, in.Pins); err != nil {
		t.Fatal(err)
	}
	// Forced detour: right 8, up 8, down 8 = 24.
	if res.Tree.Cost != 24 {
		t.Errorf("detour cost = %v, want 24", res.Tree.Cost)
	}
}

func TestRetraceImprovesBadTree(t *testing.T) {
	// Hand-build a deliberately bad tree and verify retracing repairs it.
	g, err := grid.NewUniform(5, 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := route.NewRouter(g)
	a := g.Index(0, 0, 0)
	b := g.Index(2, 0, 0)
	// Bad path: up and over instead of straight.
	tree := route.NewTreeAt(a)
	bad := []grid.VertexID{
		g.Index(0, 0, 0), g.Index(0, 1, 0), g.Index(1, 1, 0), g.Index(2, 1, 0), g.Index(2, 0, 0),
	}
	tree.AddPath(g, bad)
	if tree.Cost != 4 {
		t.Fatalf("bad tree cost = %v", tree.Cost)
	}
	better, improved := r.Retrace(tree, []grid.VertexID{a, b}, 3)
	if improved == 0 {
		t.Fatal("retrace found no improvement")
	}
	if better.Cost != 2 {
		t.Errorf("retraced cost = %v, want 2", better.Cost)
	}
	if err := better.Validate(g, []grid.VertexID{a, b}); err != nil {
		t.Fatal(err)
	}
}

func TestRetraceNeverWorsens(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in := randomInstance(t, 200+seed, 6)
		r := route.NewRouter(in.Graph)
		tree, err := r.OARMST(in.Pins)
		if err != nil {
			t.Fatal(err)
		}
		after, _ := r.Retrace(tree, in.Pins, 3)
		if after.Cost > tree.Cost+1e-9 {
			t.Errorf("seed %d: retrace worsened %v -> %v", seed, tree.Cost, after.Cost)
		}
		if err := after.Validate(in.Graph, in.Pins); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestRetraceNoPassesIsIdentity(t *testing.T) {
	in := randomInstance(t, 300, 4)
	r := route.NewRouter(in.Graph)
	tree, err := r.OARMST(in.Pins)
	if err != nil {
		t.Fatal(err)
	}
	same, improved := r.Retrace(tree, in.Pins, 0)
	if same != tree || improved != 0 {
		t.Error("0-pass retrace should return the input tree")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Lin08.String() != "Lin08[12]" || Liu14.String() != "Liu14[16]" || Lin18.String() != "Lin18[14]" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm should format")
	}
}

func TestRouteErrors(t *testing.T) {
	in := randomInstance(t, 400, 3)
	if _, err := (&Router{Alg: Algorithm(42)}).Route(in); err == nil {
		t.Error("unknown algorithm should fail")
	}
	// Blocked terminal.
	g, _ := grid.NewUniform(4, 4, 1, 1)
	g.Block(g.Index(1, 1, 0))
	bad := &layout.Instance{Graph: g, Pins: []grid.VertexID{g.Index(0, 0, 0), g.Index(1, 1, 0)}}
	for _, alg := range []Algorithm{Lin08, Lin18} {
		if _, err := New(alg).Route(bad); err == nil {
			t.Errorf("%v: blocked terminal should fail", alg)
		}
	}
}
