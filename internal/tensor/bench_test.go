package tensor

import (
	"math/rand"
	"testing"
)

func benchConvInput(c, h, v, m int) (*Tensor, *Tensor, *Tensor) {
	r := rand.New(rand.NewSource(1))
	x := New(c, h, v, m)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	w := New(c, c, 3, 3, 3)
	for i := range w.Data {
		w.Data[i] = r.NormFloat64()
	}
	b := New(c)
	return x, w, b
}

func BenchmarkConv3DForward16(b *testing.B) {
	x, w, bias := benchConvInput(8, 16, 16, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv3D(x, w, bias)
	}
}

func BenchmarkConv3DForward32(b *testing.B) {
	x, w, bias := benchConvInput(8, 32, 32, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv3D(x, w, bias)
	}
}

func BenchmarkConv3DBackward16(b *testing.B) {
	x, w, bias := benchConvInput(8, 16, 16, 4)
	out := Conv3D(x, w, bias)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv3DBackward(x, w, out)
	}
}

func BenchmarkConv3DBackward32(b *testing.B) {
	x, w, bias := benchConvInput(8, 32, 32, 4)
	out := Conv3D(x, w, bias)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv3DBackward(x, w, out)
	}
}

func BenchmarkAvgPool2(b *testing.B) {
	x, _, _ := benchConvInput(8, 32, 32, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AvgPool2(x)
	}
}

func BenchmarkUpsampleNearest(b *testing.B) {
	x, _, _ := benchConvInput(8, 16, 16, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UpsampleNearest(x, 32, 32, 4)
	}
}
