package tensor

import "fmt"

// Arena is a bump allocator for tensor storage. Inference runs dozens of
// intermediate tensors per forward pass; allocating them from a reused
// arena instead of the heap drops the allocation count of a pass to near
// zero and keeps the working set cache-resident across calls.
//
// Ownership rules (see DESIGN.md "Tensor kernels"):
//
//   - An Arena belongs to one goroutine; it has no locking.
//   - Reset recycles every tensor previously allocated from the arena.
//     The owner decides the reuse boundary: nn.UNet3D resets its attached
//     arena at the start of each Forward/Forward32, so activations stay
//     valid exactly from one forward through the matching backward.
//   - Data that must outlive the boundary (returned logits, parameter
//     gradients) is copied to the heap before the next reset.
//
// A nil *Arena is valid everywhere and falls back to plain heap
// allocation, so arena-aware code needs no branches.
type Arena struct {
	f64 slabs[float64]
	f32 slabs[float32]
}

// slabs is one element type's stack of exponentially-growing backing
// arrays. Slabs are retained across Reset, so a warmed-up arena allocates
// without touching the heap at all.
type slabs[F float32 | float64] struct {
	bufs []([]F)
	cur  int // slab currently bump-allocated from
	off  int // next free offset in bufs[cur]
}

// arenaMinSlab is the smallest slab size; doubling from here reaches any
// realistic activation volume in a few slabs.
const arenaMinSlab = 1 << 12

func (s *slabs[F]) alloc(n int) []F {
	for s.cur < len(s.bufs) {
		if buf := s.bufs[s.cur]; s.off+n <= len(buf) {
			out := buf[s.off : s.off+n : s.off+n]
			s.off += n
			return out
		}
		s.cur++
		s.off = 0
	}
	size := arenaMinSlab
	if len(s.bufs) > 0 {
		size = 2 * len(s.bufs[len(s.bufs)-1])
	}
	if size < n {
		size = n
	}
	s.bufs = append(s.bufs, make([]F, size))
	s.cur = len(s.bufs) - 1
	s.off = n
	return s.bufs[s.cur][:n:n]
}

func (s *slabs[F]) reset() { s.cur, s.off = 0, 0 }

// NewArena returns an empty arena; slabs are grown on demand and retained
// across Reset.
func NewArena() *Arena { return &Arena{} }

// Reset recycles all previous allocations. Every tensor handed out since
// the last Reset becomes invalid: its data will be overwritten by
// subsequent allocations.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.f64.reset()
	a.f32.reset()
}

// New allocates a zeroed float64 tensor from the arena; a nil receiver
// falls back to tensor.New (the heap).
func (a *Arena) New(shape ...int) *Tensor {
	if a == nil {
		return New(shape...)
	}
	d := a.f64.alloc(checkShape(shape))
	clear(d)
	return &Tensor{Shape: append([]int(nil), shape...), Data: d}
}

// New32 allocates a zeroed float32 tensor from the arena; a nil receiver
// allocates from the heap.
func (a *Arena) New32(shape ...int) *T32 {
	n := checkShape(shape)
	if a == nil {
		return &T32{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
	}
	d := a.f32.alloc(n)
	clear(d)
	return &T32{Shape: append([]int(nil), shape...), Data: d}
}

// checkShape validates a shape and returns its volume.
func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", d, shape))
		}
		n *= d
	}
	return n
}

// T32 is a dense float32 tensor in row-major order: the storage type of
// the optional float32 inference mode. It is forward-only — training and
// gradients stay float64 — so it carries none of Tensor's autodiff
// surface.
type T32 struct {
	Shape []int
	Data  []float32
}

// Len returns the number of elements.
func (t *T32) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *T32) Rank() int { return len(t.Shape) }

// Dim returns dimension i.
func (t *T32) Dim(i int) int { return t.Shape[i] }

// Reshape returns a view of the same data with a new shape of equal
// volume.
func (t *T32) Reshape(shape ...int) *T32 {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes volume", t.Shape, shape))
	}
	return &T32{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Convert32 copies a float64 tensor into a fresh heap float32 tensor.
// The float32 inference mode uses it once per parameter at enable time.
func Convert32(t *Tensor) *T32 {
	if t == nil {
		return nil
	}
	out := &T32{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	for i, v := range t.Data {
		out.Data[i] = float32(v)
	}
	return out
}
