// Package tensor provides the dense float64 tensors underlying the neural
// network of the Steiner-point selector. It is deliberately small: the
// selector needs arbitrary-rank dense arrays, a handful of elementwise
// operations, and a direct 3-D convolution with gradients — nothing more.
//
// Convolution inputs use the layout [C][H][V][M] with M innermost, which
// matches the VertexID encoding of the grid package, so feature planes and
// per-vertex probability maps can be moved between the two worlds without
// reindexing.
package tensor

import "fmt"

// Tensor is a dense float64 array of arbitrary rank in row-major order
// (the last dimension is contiguous).
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps the data with the given shape; the data is not copied.
// The element count must match the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: %d elements for shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether the two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{
		Shape: append([]int(nil), t.Shape...),
		Data:  append([]float64(nil), t.Data...),
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d for shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// AddScaled accumulates alpha*o into t elementwise; shapes must match.
func (t *Tensor) AddScaled(o *Tensor, alpha float64) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	for i, v := range o.Data {
		t.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Reshape returns a view of the same data with a new shape of equal
// volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes volume", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}
