package tensor

import (
	"math/rand"
	"testing"

	"oarsmt/internal/parallel"
)

// forceParallel drops the per-shard work floor so even tiny shapes take
// the sharded paths, runs fn, and restores everything.
func forceParallel(t *testing.T, workers int, fn func()) {
	t.Helper()
	prevMin := parallel.SetMinShardWork(1)
	prevW := parallel.Workers()
	parallel.SetWorkers(workers)
	defer func() {
		parallel.SetMinShardWork(prevMin)
		parallel.SetWorkers(prevW)
	}()
	fn()
}

// convCase is one randomized Conv3D shape; the list deliberately includes
// K != 3 (skipping the forward fast path), single-channel extremes, and
// spatial dims that do not divide evenly across odd worker counts.
type convCase struct {
	inC, outC, h, v, m, k int
}

var convCases = []convCase{
	{inC: 3, outC: 4, h: 5, v: 6, m: 3, k: 3},
	{inC: 8, outC: 8, h: 9, v: 7, m: 4, k: 3},
	{inC: 2, outC: 7, h: 4, v: 4, m: 2, k: 1},
	{inC: 5, outC: 3, h: 6, v: 5, m: 5, k: 5},
	{inC: 1, outC: 6, h: 8, v: 8, m: 2, k: 3},
	{inC: 6, outC: 1, h: 8, v: 8, m: 2, k: 3},
	{inC: 4, outC: 5, h: 1, v: 9, m: 1, k: 3},
}

// workerCounts exercises the serial knob (1), even/odd counts, and more
// workers than channels.
var workerCounts = []int{1, 2, 3, 5, 16}

func TestConv3DForwardBitEqualSerialParallel(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, c := range convCases {
		x := randTensor(r, c.inC, c.h, c.v, c.m)
		w := randTensor(r, c.outC, c.inC, c.k, c.k, c.k)
		b := randTensor(r, c.outC)

		ref := Conv3D(x, w, b) // thresholds intact: serial on these sizes
		for _, nw := range workerCounts {
			forceParallel(t, nw, func() {
				got := Conv3D(x, w, b)
				for i := range ref.Data {
					if got.Data[i] != ref.Data[i] {
						t.Fatalf("case %+v workers=%d: forward[%d] = %v, serial %v",
							c, nw, i, got.Data[i], ref.Data[i])
					}
				}
			})
		}
		// No-bias path.
		refNB := Conv3D(x, w, nil)
		forceParallel(t, 3, func() {
			got := Conv3D(x, w, nil)
			for i := range refNB.Data {
				if got.Data[i] != refNB.Data[i] {
					t.Fatalf("case %+v no-bias: forward[%d] differs", c, i)
				}
			}
		})
	}
}

func TestConv3DBackwardBitEqualSerialParallel(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, c := range convCases {
		x := randTensor(r, c.inC, c.h, c.v, c.m)
		w := randTensor(r, c.outC, c.inC, c.k, c.k, c.k)
		gradOut := randTensor(r, c.outC, c.h, c.v, c.m)

		refX, refW, refB := Conv3DBackward(x, w, gradOut)
		for _, nw := range workerCounts {
			forceParallel(t, nw, func() {
				gx, gw, gb := Conv3DBackward(x, w, gradOut)
				for i := range refX.Data {
					if gx.Data[i] != refX.Data[i] {
						t.Fatalf("case %+v workers=%d: gradX[%d] = %v, serial %v",
							c, nw, i, gx.Data[i], refX.Data[i])
					}
				}
				for i := range refW.Data {
					if gw.Data[i] != refW.Data[i] {
						t.Fatalf("case %+v workers=%d: gradW[%d] = %v, serial %v",
							c, nw, i, gw.Data[i], refW.Data[i])
					}
				}
				for i := range refB.Data {
					if gb.Data[i] != refB.Data[i] {
						t.Fatalf("case %+v workers=%d: gradB[%d] = %v, serial %v",
							c, nw, i, gb.Data[i], refB.Data[i])
					}
				}
			})
		}
	}
}

func TestPoolUpsampleBitEqualSerialParallel(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	shapes := [][4]int{{4, 7, 6, 3}, {8, 5, 5, 2}, {1, 9, 4, 4}, {3, 1, 8, 1}}
	for _, s := range shapes {
		x := randTensor(r, s[0], s[1], s[2], s[3])
		refPool := AvgPool2(x)
		gradPool := randTensor(r, refPool.Shape...)
		refPoolBack := AvgPool2Backward(x.Shape, gradPool)
		refUp := UpsampleNearest(refPool, s[1], s[2], s[3])
		gradUp := randTensor(r, refUp.Shape...)
		refUpBack := UpsampleNearestBackward(refPool.Shape, gradUp)

		for _, nw := range workerCounts {
			forceParallel(t, nw, func() {
				check := func(name string, got, want *Tensor) {
					t.Helper()
					for i := range want.Data {
						if got.Data[i] != want.Data[i] {
							t.Fatalf("shape %v workers=%d: %s[%d] differs", s, nw, name, i)
						}
					}
				}
				check("AvgPool2", AvgPool2(x), refPool)
				check("AvgPool2Backward", AvgPool2Backward(x.Shape, gradPool), refPoolBack)
				check("UpsampleNearest", UpsampleNearest(refPool, s[1], s[2], s[3]), refUp)
				check("UpsampleNearestBackward", UpsampleNearestBackward(refPool.Shape, gradUp), refUpBack)
			})
		}
	}
}

// TestConv3DParallelLargeShape runs one shape big enough to pass the real
// thresholds, so the production gating (not just the forced one) is
// exercised under multiple workers.
func TestConv3DParallelLargeShape(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	x := randTensor(r, 8, 16, 16, 4)
	w := randTensor(r, 8, 8, 3, 3, 3)
	b := randTensor(r, 8)

	prevW := parallel.Workers()
	defer parallel.SetWorkers(prevW)

	parallel.SetWorkers(1)
	ref := Conv3D(x, w, b)
	refX, refW, refB := Conv3DBackward(x, w, ref)

	parallel.SetWorkers(4)
	got := Conv3D(x, w, b)
	gx, gw, gb := Conv3DBackward(x, w, ref)
	for i := range ref.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("forward[%d] differs under real thresholds", i)
		}
	}
	for i := range refX.Data {
		if gx.Data[i] != refX.Data[i] {
			t.Fatalf("gradX[%d] differs under real thresholds", i)
		}
	}
	for i := range refW.Data {
		if gw.Data[i] != refW.Data[i] {
			t.Fatalf("gradW[%d] differs under real thresholds", i)
		}
	}
	for i := range refB.Data {
		if gb.Data[i] != refB.Data[i] {
			t.Fatalf("gradB[%d] differs under real thresholds", i)
		}
	}
}
