package tensor

import (
	"sync"

	"oarsmt/internal/parallel"
)

// This file is the im2col + blocked-GEMM convolution engine shared by the
// float64 training path and the float32 inference mode.
//
// A "same" 3-D convolution over x[InC][H][V][M] with kernel w[OutC][InC][K³]
// is lowered to a matrix multiply
//
//	out[oc][p] = bias[oc] + Σ_j W[oc][j] · Col[j][p]
//
// where j = (ic, kh, kv, km) in ascending row-major order — exactly the
// layout w.Data already has — and Col[j][p] is the input value under tap j
// at output position p (zero where the tap leaves the volume). Col is
// never materialised whole: positions are processed in fixed-width tiles
// (convTile), and within a tile only one input channel's K³ patch rows
// exist at a time, built by one flat shifted copy plus strided zeroing of
// the padding-contaminated border positions.
//
// # Bit-determinism
//
// Every output element accumulates its terms in strictly ascending j order
// from a bias-initialised single accumulator, written as separate `s += w*c`
// statements (Go never reassociates or contracts floating-point
// expressions), so the result is bit-identical to the textbook 7-loop
// direct convolution that the tests keep as reference — and independent of
// the tile width, the register blocking and the worker count: parallel
// shards split whole position tiles (forward) or whole input channels
// (backward), never an element's accumulation chain.

// num is the element domain of the generic kernels.
type num interface{ ~float32 | ~float64 }

// convShape carries the dimensions of one convolution call.
type convShape struct {
	inC, outC, h, v, m, k int
}

// n returns the output positions per channel.
func (s convShape) n() int { return s.h * s.v * s.m }

// j returns the reduction length InC·K³.
func (s convShape) j() int { return s.inC * s.k * s.k * s.k }

// macs returns the multiply-add count, the work estimate handed to
// parallel.ForWork.
func (s convShape) macs() int { return s.outC * s.j() * s.n() }

// convTile is the position-tile width: small enough that one channel's K³
// patch rows (K³ · convTile elements) and the output panel stay
// cache-resident, large enough to amortise the per-tile row builds.
const convTile = 256

// convScratch is one worker's reusable tile buffer: nRows patch rows of
// convTile elements carved out of a single backing slice.
type convScratch[F num] struct {
	buf  []F
	rows [][]F
}

func (s *convScratch[F]) ensure(nRows, width int) [][]F {
	if need := nRows * width; cap(s.buf) < need {
		s.buf = make([]F, need)
	}
	buf := s.buf[:nRows*width]
	if cap(s.rows) < nRows {
		s.rows = make([][]F, nRows)
	}
	s.rows = s.rows[:nRows]
	for i := range s.rows {
		s.rows[i] = buf[i*width : (i+1)*width]
	}
	return s.rows
}

// The scratch pools keep per-worker tile buffers alive across calls, so a
// steady-state convolution performs no heap allocation beyond its output.
var (
	scratch64Pool = sync.Pool{New: func() any { return new(convScratch[float64]) }}
	scratch32Pool = sync.Pool{New: func() any { return new(convScratch[float32]) }}
)

func getScratch[F num]() *convScratch[F] {
	var z F
	if _, is64 := any(z).(float64); is64 {
		return scratch64Pool.Get().(*convScratch[F])
	}
	return scratch32Pool.Get().(*convScratch[F])
}

func putScratch[F num](s *convScratch[F]) {
	var z F
	if _, is64 := any(z).(float64); is64 {
		scratch64Pool.Put(s)
	} else {
		scratch32Pool.Put(s)
	}
}

// im2colRow fills dst[0 : t1-t0] with patch row (dh, dv, dm) of channel
// plane xc over output positions [t0, t1): dst[p-t0] = xc at the flat
// position shifted by the tap, or 0 where the tap leaves the volume. The
// bulk is one flat copy at offset (dh·V+dv)·M+dm; the flat shift wrongly
// wraps values across M-row and V-plane ends, so those border positions
// are zeroed afterwards (their true source is padding).
func im2colRow[F num](dst, xc []F, h, v, m, dh, dv, dm, t0, t1 int) {
	off := (dh*v+dv)*m + dm
	plane := h * v * m
	dst = dst[:t1-t0]
	cs, ce := t0+off, t1+off
	if cs < 0 {
		cs = 0
	}
	if ce > plane {
		ce = plane
	}
	if cs >= ce {
		clear(dst)
		return
	}
	lo, hi := cs-off-t0, ce-off-t0
	clear(dst[:lo])
	copy(dst[lo:hi], xc[cs:ce])
	clear(dst[hi:])
	zeroBorders(dst, h, v, m, dh, dv, dm, t0, t1)
}

// zeroBorders zeroes the positions p in [t0, t1) (indexed p-t0 in dst)
// whose tap (dh, dv, dm) falls outside the volume: a whole flat band of H
// planes for dh, a V-row band per plane for dv, and |dm| strided elements
// per M-row for dm.
func zeroBorders[F num](dst []F, h, v, m, dh, dv, dm, t0, t1 int) {
	vm := v * m
	if dh != 0 {
		var lo, hi int
		if dh > 0 {
			lo, hi = max(h-dh, 0)*vm, h*vm
		} else {
			lo, hi = 0, min(-dh, h)*vm
		}
		zeroSpan(dst, lo, hi, t0, t1)
	}
	if dv != 0 {
		var s0, w int
		if dv > 0 {
			s0 = max(v-dv, 0)
			w = v - s0
		} else {
			w = min(-dv, v)
		}
		for base := (t0 / vm) * vm; base < t1; base += vm {
			zeroSpan(dst, base+s0*m, base+(s0+w)*m, t0, t1)
		}
	}
	if dm != 0 {
		var s0, w int
		if dm > 0 {
			s0 = max(m-dm, 0)
			w = m - s0
		} else {
			w = min(-dm, m)
		}
		if w == 1 {
			// One border element per M-row (every |dm| == 1 tap): a bare
			// strided store loop, no per-row span clipping.
			i := (t0/m)*m + s0
			if i < t0 {
				i += m
			}
			for ; i < t1; i += m {
				dst[i-t0] = 0
			}
			return
		}
		for base := (t0 / m) * m; base < t1; base += m {
			zeroSpan(dst, base+s0, base+s0+w, t0, t1)
		}
	}
}

// zeroSpan zeroes the intersection of flat positions [lo, hi) with the
// tile [t0, t1) in dst (which is indexed relative to t0). The border spans
// of thin dimensions are one or two elements wide, and there are many per
// tile; those go through plain stores — a memclr call per 8–16 bytes costs
// more than the clearing itself.
func zeroSpan[F num](dst []F, lo, hi, t0, t1 int) {
	lo = max(lo, t0)
	hi = min(hi, t1)
	if hi-lo <= 0 {
		return
	}
	if hi-lo <= 16 {
		for i := lo - t0; i < hi-t0; i++ {
			dst[i] = 0
		}
		return
	}
	clear(dst[lo-t0 : hi-t0])
}

// buildColsIC fills rows[0 : K³] with the patch rows of input channel
// plane xc for tile [t0, t1), in ascending (kh, kv, km) order. For K == 1
// the single row is a direct view of the channel plane — no copy.
func buildColsIC[F num](rows [][]F, xc []F, sh convShape, t0, t1 int) {
	if sh.k == 1 {
		rows[0] = xc[t0:t1]
		return
	}
	p := sh.k / 2
	jj := 0
	for kh := 0; kh < sh.k; kh++ {
		for kv := 0; kv < sh.k; kv++ {
			for km := 0; km < sh.k; km++ {
				im2colRow(rows[jj], xc, sh.h, sh.v, sh.m, kh-p, kv-p, km-p, t0, t1)
				jj++
			}
		}
	}
}

// fwdAxpy4x2 is the forward register micro-kernel: two output rows gain
// four consecutive reduction terms each, with the column loads shared.
// The four adds per element are separate statements on one accumulator,
// preserving the ascending-j chain.
func fwdAxpy4x2[F num](a, b, wa, wb, c0, c1, c2, c3 []F) {
	wa0, wa1, wa2, wa3 := wa[0], wa[1], wa[2], wa[3]
	wb0, wb1, wb2, wb3 := wb[0], wb[1], wb[2], wb[3]
	b = b[:len(a)]
	c0 = c0[:len(a)]
	c1 = c1[:len(a)]
	c2 = c2[:len(a)]
	c3 = c3[:len(a)]
	for i := range a {
		x0, x1, x2, x3 := c0[i], c1[i], c2[i], c3[i]
		s := a[i]
		s += wa0 * x0
		s += wa1 * x1
		s += wa2 * x2
		s += wa3 * x3
		a[i] = s
		u := b[i]
		u += wb0 * x0
		u += wb1 * x1
		u += wb2 * x2
		u += wb3 * x3
		b[i] = u
	}
}

// fwdAxpy4 is the single-row tail of fwdAxpy4x2 for odd output-channel
// counts.
func fwdAxpy4[F num](a, wa, c0, c1, c2, c3 []F) {
	wa0, wa1, wa2, wa3 := wa[0], wa[1], wa[2], wa[3]
	c0 = c0[:len(a)]
	c1 = c1[:len(a)]
	c2 = c2[:len(a)]
	c3 = c3[:len(a)]
	for i := range a {
		s := a[i]
		s += wa0 * c0[i]
		s += wa1 * c1[i]
		s += wa2 * c2[i]
		s += wa3 * c3[i]
		a[i] = s
	}
}

// axpy accumulates dst += w·src elementwise.
func axpy[F num](dst []F, w F, src []F) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += w * src[i]
	}
}

// convFwdTile accumulates the K³ patch rows of one input channel into the
// output panel of tile [t0, t1): ascending-j blocks of four, paired output
// channels. rows were built by buildColsIC for the same tile; jBase is the
// flat reduction index of (ic, 0, 0, 0).
func convFwdTile[F num](out, w []F, rows [][]F, sh convShape, jBase, t0, t1 int) {
	N, J, outC := sh.n(), sh.j(), sh.outC
	k3 := sh.k * sh.k * sh.k
	jj := 0
	for ; jj+4 <= k3; jj += 4 {
		c0, c1, c2, c3 := rows[jj], rows[jj+1], rows[jj+2], rows[jj+3]
		oc := 0
		for ; oc+2 <= outC; oc += 2 {
			fwdAxpy4x2(out[oc*N+t0:oc*N+t1], out[(oc+1)*N+t0:(oc+1)*N+t1],
				w[oc*J+jBase+jj:], w[(oc+1)*J+jBase+jj:], c0, c1, c2, c3)
		}
		if oc < outC {
			fwdAxpy4(out[oc*N+t0:oc*N+t1], w[oc*J+jBase+jj:], c0, c1, c2, c3)
		}
	}
	for ; jj < k3; jj++ {
		for oc := 0; oc < outC; oc++ {
			axpy(out[oc*N+t0:oc*N+t1], w[oc*J+jBase+jj], rows[jj])
		}
	}
}

// convForward runs the full forward pass: position tiles sharded over the
// worker pool by multiply-add work, each tile bias-initialised and then
// accumulated one input channel at a time (global j order stays
// ascending: ic-major, tap-minor).
func convForward[F num](out, x, w, bias []F, sh convShape) {
	N := sh.n()
	k3 := sh.k * sh.k * sh.k
	nTiles := (N + convTile - 1) / convTile
	parallel.ForWork(sh.macs(), nTiles, func(_, tlo, thi int) {
		sc := getScratch[F]()
		rows := sc.ensure(k3, convTile)
		for t := tlo; t < thi; t++ {
			t0 := t * convTile
			t1 := min(t0+convTile, N)
			for oc := 0; oc < sh.outC; oc++ {
				seg := out[oc*N+t0 : oc*N+t1]
				var b F
				if bias != nil {
					b = bias[oc]
				}
				for i := range seg {
					seg[i] = b
				}
			}
			for ic := 0; ic < sh.inC; ic++ {
				buildColsIC(rows, x[ic*N:(ic+1)*N], sh, t0, t1)
				convFwdTile(out, w, rows, sh, ic*k3, t0, t1)
			}
		}
		putScratch(sc)
	})
}

// dot2 returns the dot products of g with two patch rows, sharing the g
// loads; each accumulates in ascending position order.
func dot2[F num](c0, c1, g []F) (F, F) {
	c0 = c0[:len(g)]
	c1 = c1[:len(g)]
	var a0, a1 F
	for i := range g {
		gv := g[i]
		a0 += gv * c0[i]
		a1 += gv * c1[i]
	}
	return a0, a1
}

// dot returns the dot product of g with one patch row.
func dot[F num](c, g []F) F {
	c = c[:len(g)]
	var a F
	for i := range g {
		a += g[i] * c[i]
	}
	return a
}

// colGrad4 accumulates four patch-gradient rows: cX += w[X]·g.
func colGrad4[F num](c0, c1, c2, c3, w, g []F) {
	w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
	c0 = c0[:len(g)]
	c1 = c1[:len(g)]
	c2 = c2[:len(g)]
	c3 = c3[:len(g)]
	for i := range g {
		gv := g[i]
		c0[i] += w0 * gv
		c1[i] += w1 * gv
		c2[i] += w2 * gv
		c3[i] += w3 * gv
	}
}

// convBackwardIC computes gradX[ic] and the gradW column block of input
// channel ic. Per tile it rebuilds the channel's patch rows, takes the
// gradW dot products (positions ascending per (oc, tap), tiles ascending),
// accumulates the patch-gradient rows over ascending output channels, and
// scatter-adds them back (col2im): the exact transpose of the forward
// flat-shift, with the padding taps' gradients zeroed first.
func convBackwardIC[F num](gradX, gradW, x, w, gradOut []F, sh convShape, ic int, colRows, cgRows [][]F) {
	N, J, outC, k := sh.n(), sh.j(), sh.outC, sh.k
	k3 := k * k * k
	p := k / 2
	xc := x[ic*N : (ic+1)*N]
	gxc := gradX[ic*N : (ic+1)*N]
	jBase := ic * k3
	for t0 := 0; t0 < N; t0 += convTile {
		t1 := min(t0+convTile, N)
		T := t1 - t0
		buildColsIC(colRows, xc, sh, t0, t1)
		for jj := 0; jj < k3; jj++ {
			clear(cgRows[jj][:T])
		}
		for oc := 0; oc < outC; oc++ {
			g := gradOut[oc*N+t0 : oc*N+t1]
			wrow := w[oc*J+jBase : oc*J+jBase+k3]
			gwRow := gradW[oc*J+jBase : oc*J+jBase+k3]
			jj := 0
			for ; jj+2 <= k3; jj += 2 {
				a0, a1 := dot2(colRows[jj], colRows[jj+1], g)
				gwRow[jj] += a0
				gwRow[jj+1] += a1
			}
			if jj < k3 {
				gwRow[jj] += dot(colRows[jj], g)
			}
			jj = 0
			for ; jj+4 <= k3; jj += 4 {
				colGrad4(cgRows[jj][:T], cgRows[jj+1][:T], cgRows[jj+2][:T], cgRows[jj+3][:T], wrow[jj:], g)
			}
			for ; jj < k3; jj++ {
				axpy(cgRows[jj][:T], wrow[jj], g)
			}
		}
		jj := 0
		for kh := 0; kh < k; kh++ {
			for kv := 0; kv < k; kv++ {
				for km := 0; km < k; km++ {
					dh, dv, dm := kh-p, kv-p, km-p
					row := cgRows[jj][:T]
					zeroBorders(row, sh.h, sh.v, sh.m, dh, dv, dm, t0, t1)
					off := (dh*sh.v+dv)*sh.m + dm
					lo, hi := t0, t1
					if lo+off < 0 {
						lo = -off
					}
					if hi+off > N {
						hi = N - off
					}
					if lo < hi {
						dst := gxc[lo+off : hi+off]
						src := row[lo-t0 : hi-t0]
						for i := range dst {
							dst[i] += src[i]
						}
					}
					jj++
				}
			}
		}
	}
}

// convBackward runs the full backward pass. gradB shards its per-channel
// ascending-position sums over output channels; gradX and gradW shard
// over input channels, whose outputs are disjoint. All three outputs must
// arrive zeroed. Results are bit-identical at any worker count because a
// channel never splits across shards.
func convBackward[F num](gradX, gradW, gradB, x, w, gradOut []F, sh convShape) {
	N := sh.n()
	k3 := sh.k * sh.k * sh.k
	parallel.ForWork(sh.outC*N, sh.outC, func(_, lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			g := gradOut[oc*N : (oc+1)*N]
			var sum F
			for _, v := range g {
				sum += v
			}
			gradB[oc] = sum
		}
	})
	parallel.ForWork(2*sh.macs(), sh.inC, func(_, lo, hi int) {
		sc := getScratch[F]()
		rows := sc.ensure(2*k3, convTile)
		colRows, cgRows := rows[:k3], rows[k3:]
		for ic := lo; ic < hi; ic++ {
			convBackwardIC(gradX, gradW, x, w, gradOut, sh, ic, colRows, cgRows)
		}
		putScratch(sc)
	})
}
