package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestConv3DBitEqualNaive pins the im2col-GEMM kernel to the 7-loop naive
// reference bit-for-bit: the GEMM accumulates every output element in the
// same ascending (ic, kh, kv, km) order from the same bias start, so the
// float64 results must be identical, not merely close — at every worker
// count. convCases covers K ∈ {1, 3, 5}, non-square H/V/M including
// degenerate 1-wide dims, and single-channel InC/OutC edges.
func TestConv3DBitEqualNaive(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, c := range convCases {
		x := randTensor(r, c.inC, c.h, c.v, c.m)
		w := randTensor(r, c.outC, c.inC, c.k, c.k, c.k)
		b := randTensor(r, c.outC)
		for _, bias := range []*Tensor{b, nil} {
			want := naiveConv3D(x, w, bias)
			got := Conv3D(x, w, bias)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("case %+v bias=%v: serial out[%d] = %v, naive %v",
						c, bias != nil, i, got.Data[i], want.Data[i])
				}
			}
			for _, nw := range workerCounts {
				forceParallel(t, nw, func() {
					got := Conv3D(x, w, bias)
					for i := range want.Data {
						if got.Data[i] != want.Data[i] {
							t.Fatalf("case %+v bias=%v workers=%d: out[%d] = %v, naive %v",
								c, bias != nil, nw, i, got.Data[i], want.Data[i])
						}
					}
				})
			}
		}
	}
}

// TestConv3D32MatchesFloat64 validates the float32 inference kernel
// against the float64 reference within single-precision tolerance.
func TestConv3D32MatchesFloat64(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for _, c := range convCases {
		x := randTensor(r, c.inC, c.h, c.v, c.m)
		w := randTensor(r, c.outC, c.inC, c.k, c.k, c.k)
		b := randTensor(r, c.outC)
		want := Conv3D(x, w, b)
		got := Conv3D32(nil, Convert32(x), Convert32(w), Convert32(b))
		// Bound the error by the reduction length: each output sums
		// inC·K³ products of O(1) operands, each rounded to float32.
		tol := 1e-5 * float64(c.inC*c.k*c.k*c.k)
		for i := range want.Data {
			if d := math.Abs(float64(got.Data[i]) - want.Data[i]); d > tol {
				t.Fatalf("case %+v: f32 out[%d] = %v, f64 %v (diff %v > %v)",
					c, i, got.Data[i], want.Data[i], d, tol)
			}
		}
	}
}

// TestPool32Upsample32Concat32 validates the remaining float32 kernels
// against their float64 counterparts.
func TestPool32Upsample32Concat32(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	x := randTensor(r, 3, 6, 5, 4)
	y := randTensor(r, 2, 6, 5, 4)

	pool := AvgPool2(x)
	pool32 := AvgPool232(nil, Convert32(x))
	for i := range pool.Data {
		if d := math.Abs(float64(pool32.Data[i]) - pool.Data[i]); d > 1e-6 {
			t.Fatalf("AvgPool232[%d] diff %v", i, d)
		}
	}

	up := UpsampleNearest(pool, 6, 5, 4)
	up32 := UpsampleNearest32(nil, pool32, 6, 5, 4)
	for i := range up.Data {
		if d := math.Abs(float64(up32.Data[i]) - up.Data[i]); d > 1e-6 {
			t.Fatalf("UpsampleNearest32[%d] diff %v", i, d)
		}
	}

	cat := ConcatC(x, y)
	cat32 := ConcatC32(nil, Convert32(x), Convert32(y))
	for i := range cat.Data {
		if float64(cat32.Data[i]) != float64(float32(cat.Data[i])) {
			t.Fatalf("ConcatC32[%d] = %v, want %v", i, cat32.Data[i], float32(cat.Data[i]))
		}
	}
}

// TestArenaReuseAndReset pins the arena contract: allocations are zeroed,
// Reset recycles the same backing memory instead of growing, and the nil
// arena degrades to plain heap allocation.
func TestArenaReuseAndReset(t *testing.T) {
	a := NewArena()

	t1 := a.New(2, 3)
	for i := range t1.Data {
		t1.Data[i] = 7
	}
	t2 := a.New(4)
	if &t1.Data[0] == &t2.Data[0] {
		t.Fatal("distinct live allocations share backing memory")
	}

	a.Reset()
	t3 := a.New(2, 3)
	if &t3.Data[0] != &t1.Data[0] {
		t.Fatal("Reset did not recycle the first slab")
	}
	for i, v := range t3.Data {
		if v != 0 {
			t.Fatalf("recycled tensor not zeroed at %d: %v", i, v)
		}
	}

	f := a.New32(5)
	f.Data[0] = 1
	a.Reset()
	g := a.New32(5)
	if &g.Data[0] != &f.Data[0] {
		t.Fatal("Reset did not recycle the float32 slab")
	}
	if g.Data[0] != 0 {
		t.Fatal("recycled float32 tensor not zeroed")
	}

	var nilArena *Arena
	nilArena.Reset() // must not panic
	h := nilArena.New(3)
	if h.Len() != 3 {
		t.Fatalf("nil-arena New len = %d, want 3", h.Len())
	}
}

// TestConvAllocsPerOp pins the near-zero-allocation property of the
// arena-backed kernels: at most 10 heap allocations per op (the outputs
// and the parallel-callback closures; all scratch comes from the arena or
// the pooled im2col buffers).
func TestConvAllocsPerOp(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	x := randTensor(r, 8, 16, 16, 4)
	w := randTensor(r, 8, 8, 3, 3, 3)
	b := randTensor(r, 8)
	a := NewArena()

	// Warm up slabs and the scratch pool.
	Conv3DIn(a, x, w, b)
	Conv3DBackwardIn(a, x, w, Conv3DIn(a, x, w, b))

	fwd := testing.AllocsPerRun(10, func() {
		a.Reset()
		Conv3DIn(a, x, w, b)
	})
	if fwd > 10 {
		t.Errorf("Conv3DIn allocates %.0f/op, want <= 10", fwd)
	}

	out := Conv3DIn(a, x, w, b)
	bwd := testing.AllocsPerRun(10, func() {
		Conv3DBackward(x, w, out)
	})
	if bwd > 10 {
		t.Errorf("Conv3DBackward allocates %.0f/op, want <= 10", bwd)
	}

	pool := testing.AllocsPerRun(10, func() {
		a.Reset()
		AvgPool2In(a, x)
	})
	if pool > 10 {
		t.Errorf("AvgPool2In allocates %.0f/op, want <= 10", pool)
	}
}
