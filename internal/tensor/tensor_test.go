package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 || x.Dim(1) != 3 {
		t.Fatalf("len=%d rank=%d dim1=%d", x.Len(), x.Rank(), x.Dim(1))
	}
	x.Set(7.5, 1, 2, 3)
	if x.At(1, 2, 3) != 7.5 {
		t.Error("Set/At round trip failed")
	}
	if x.At(0, 0, 0) != 0 {
		t.Error("fresh tensor should be zero")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At should panic")
		}
	}()
	x.At(0, 2)
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive dim should panic")
		}
	}()
	New(2, 0)
}

func TestFromSliceAndReshape(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	x := FromSlice(d, 2, 3)
	if x.At(1, 2) != 6 {
		t.Error("FromSlice layout wrong")
	}
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Error("Reshape layout wrong")
	}
	y.Data[0] = 99
	if x.Data[0] != 99 {
		t.Error("Reshape should be a view")
	}
	defer func() {
		if recover() == nil {
			t.Error("volume-changing reshape should panic")
		}
	}()
	x.Reshape(5)
}

func TestCloneZeroFillOps(t *testing.T) {
	x := FromSlice([]float64{1, -2, 3}, 3)
	c := x.Clone()
	c.Data[0] = 50
	if x.Data[0] != 1 {
		t.Error("Clone should be deep")
	}
	if x.Sum() != 2 {
		t.Errorf("Sum = %v", x.Sum())
	}
	if x.MaxAbs() != 3 {
		t.Errorf("MaxAbs = %v", x.MaxAbs())
	}
	x.Scale(2)
	if x.Data[1] != -4 {
		t.Error("Scale failed")
	}
	y := FromSlice([]float64{10, 10, 10}, 3)
	x.AddScaled(y, 0.5)
	if x.Data[0] != 2+5 {
		t.Errorf("AddScaled: %v", x.Data)
	}
	x.Fill(9)
	x.Zero()
	if x.Sum() != 0 {
		t.Error("Zero failed")
	}
}

func TestConv3DIdentityKernel(t *testing.T) {
	// A 1x1x... kernel of a single 1 at the centre copies the input.
	x := randTensor(rand.New(rand.NewSource(1)), 2, 3, 4, 5)
	w := New(2, 2, 3, 3, 3)
	w.Set(1, 0, 0, 1, 1, 1)
	w.Set(1, 1, 1, 1, 1, 1)
	out := Conv3D(x, w, nil)
	if !out.SameShape(x) {
		t.Fatalf("out shape %v", out.Shape)
	}
	for i := range x.Data {
		if math.Abs(out.Data[i]-x.Data[i]) > 1e-12 {
			t.Fatalf("identity kernel changed data at %d", i)
		}
	}
}

func TestConv3DBias(t *testing.T) {
	x := New(1, 2, 2, 2)
	w := New(3, 1, 3, 3, 3)
	b := FromSlice([]float64{1, 2, 3}, 3)
	out := Conv3D(x, w, b)
	for oc := 0; oc < 3; oc++ {
		if out.At(oc, 0, 0, 0) != float64(oc+1) {
			t.Errorf("bias channel %d = %v", oc, out.At(oc, 0, 0, 0))
		}
	}
}

func TestConv3DHandKernel(t *testing.T) {
	// Single-channel 3x1x1 input, kernel averaging left+right neighbours.
	x := FromSlice([]float64{1, 2, 4}, 1, 3, 1, 1)
	w := New(1, 1, 3, 3, 3)
	w.Set(1, 0, 0, 0, 1, 1) // left neighbour (kh=0 => dh=-1)
	w.Set(1, 0, 0, 2, 1, 1) // right neighbour
	out := Conv3D(x, w, nil)
	want := []float64{2, 5, 2} // zero padded outside
	for i, v := range want {
		if math.Abs(out.Data[i]-v) > 1e-12 {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func randTensor(r *rand.Rand, shape ...int) *Tensor {
	x := New(shape...)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	return x
}

// numGrad computes the finite-difference gradient of f wrt x.
func numGrad(f func() float64, x *Tensor) *Tensor {
	const eps = 1e-5
	g := New(x.Shape...)
	for i := range x.Data {
		old := x.Data[i]
		x.Data[i] = old + eps
		hi := f()
		x.Data[i] = old - eps
		lo := f()
		x.Data[i] = old
		g.Data[i] = (hi - lo) / (2 * eps)
	}
	return g
}

func maxDiff(a, b *Tensor) float64 {
	m := 0.0
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestConv3DGradCheck(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := randTensor(r, 2, 3, 4, 3)
	w := randTensor(r, 3, 2, 3, 3, 3)
	b := randTensor(r, 3)
	// Loss = sum(out * mask) for a fixed random mask.
	mask := randTensor(r, 3, 3, 4, 3)
	loss := func() float64 {
		out := Conv3D(x, w, b)
		s := 0.0
		for i := range out.Data {
			s += out.Data[i] * mask.Data[i]
		}
		return s
	}
	gx, gw, gb := Conv3DBackward(x, w, mask)
	if d := maxDiff(gx, numGrad(loss, x)); d > 1e-6 {
		t.Errorf("gradX max diff %v", d)
	}
	if d := maxDiff(gw, numGrad(loss, w)); d > 1e-6 {
		t.Errorf("gradW max diff %v", d)
	}
	if d := maxDiff(gb, numGrad(loss, b)); d > 1e-6 {
		t.Errorf("gradB max diff %v", d)
	}
}

// naiveConv3D is a direct 7-loop reference used to validate the optimised
// kernel over many shapes, including degenerate M=1 and V=1 planes.
func naiveConv3D(x, w, b *Tensor) *Tensor {
	inC, h, v, m := convDims(x)
	outC, k := convKernelDims(w, inC)
	p := k / 2
	out := New(outC, h, v, m)
	for oc := 0; oc < outC; oc++ {
		for hh := 0; hh < h; hh++ {
			for vv := 0; vv < v; vv++ {
				for mm := 0; mm < m; mm++ {
					acc := 0.0
					if b != nil {
						acc = b.Data[oc]
					}
					for ic := 0; ic < inC; ic++ {
						for kh := 0; kh < k; kh++ {
							for kv := 0; kv < k; kv++ {
								for km := 0; km < k; km++ {
									sh, sv, sm := hh+kh-p, vv+kv-p, mm+km-p
									if sh < 0 || sh >= h || sv < 0 || sv >= v || sm < 0 || sm >= m {
										continue
									}
									acc += x.At(ic, sh, sv, sm) * w.At(oc, ic, kh, kv, km)
								}
							}
						}
					}
					out.Set(acc, oc, hh, vv, mm)
				}
			}
		}
	}
	return out
}

func TestConv3DMatchesNaiveReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	shapes := [][4]int{
		{1, 1, 1, 1}, {1, 3, 3, 3}, {2, 4, 5, 1}, {2, 1, 6, 4},
		{3, 5, 1, 2}, {2, 2, 2, 2}, {1, 7, 3, 5}, {2, 3, 4, 2},
	}
	for _, s := range shapes {
		x := randTensor(r, s[0], s[1], s[2], s[3])
		w := randTensor(r, 3, s[0], 3, 3, 3)
		b := randTensor(r, 3)
		got := Conv3D(x, w, b)
		want := naiveConv3D(x, w, b)
		if d := maxDiff(got, want); d > 1e-10 {
			t.Errorf("shape %v: fast conv differs from reference by %v", s, d)
		}
	}
	// k = 5 exercises the generic path.
	x := randTensor(r, 2, 6, 6, 3)
	w := randTensor(r, 2, 2, 5, 5, 5)
	got := Conv3D(x, w, nil)
	want := naiveConv3D(x, w, nil)
	if d := maxDiff(got, want); d > 1e-10 {
		t.Errorf("k=5 conv differs from reference by %v", d)
	}
}

func TestAvgPool2DimsAndValues(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2, 1)
	out := AvgPool2(x)
	if out.Dim(1) != 1 || out.Dim(2) != 1 || out.Dim(3) != 1 {
		t.Fatalf("pooled shape %v", out.Shape)
	}
	if out.Data[0] != 2.5 {
		t.Errorf("pooled value = %v, want 2.5", out.Data[0])
	}
	// Odd dims use ceil semantics with partial windows.
	x2 := FromSlice([]float64{1, 2, 3}, 1, 3, 1, 1)
	out2 := AvgPool2(x2)
	if out2.Dim(1) != 2 {
		t.Fatalf("ceil pooling dims %v", out2.Shape)
	}
	if out2.Data[0] != 1.5 || out2.Data[1] != 3 {
		t.Errorf("ceil pooled = %v", out2.Data)
	}
}

func TestAvgPool2GradCheck(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randTensor(r, 2, 3, 5, 3)
	out0 := AvgPool2(x)
	mask := randTensor(r, out0.Shape...)
	loss := func() float64 {
		out := AvgPool2(x)
		s := 0.0
		for i := range out.Data {
			s += out.Data[i] * mask.Data[i]
		}
		return s
	}
	gx := AvgPool2Backward(x.Shape, mask)
	if d := maxDiff(gx, numGrad(loss, x)); d > 1e-6 {
		t.Errorf("pool gradX max diff %v", d)
	}
}

func TestUpsampleNearestValues(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 1, 2, 1, 1)
	out := UpsampleNearest(x, 4, 1, 1)
	want := []float64{1, 1, 2, 2}
	for i, v := range want {
		if out.Data[i] != v {
			t.Errorf("upsampled[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
	// Round-trip shape with ceil pooling: pool 5 -> 3, upsample 3 -> 5.
	x2 := randTensor(rand.New(rand.NewSource(4)), 1, 5, 1, 1)
	p := AvgPool2(x2)
	u := UpsampleNearest(p, 5, 1, 1)
	if u.Dim(1) != 5 {
		t.Errorf("round trip dims %v", u.Shape)
	}
}

func TestUpsampleNearestGradCheck(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x := randTensor(r, 2, 3, 2, 2)
	mask := randTensor(r, 2, 5, 4, 3)
	loss := func() float64 {
		out := UpsampleNearest(x, 5, 4, 3)
		s := 0.0
		for i := range out.Data {
			s += out.Data[i] * mask.Data[i]
		}
		return s
	}
	gx := UpsampleNearestBackward(x.Shape, mask)
	if d := maxDiff(gx, numGrad(loss, x)); d > 1e-6 {
		t.Errorf("upsample gradX max diff %v", d)
	}
}

func TestConcatSplit(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2, 1)
	b := FromSlice([]float64{5, 6, 7, 8, 9, 10, 11, 12}, 2, 2, 2, 1)
	c := ConcatC(a, b)
	if c.Dim(0) != 3 {
		t.Fatalf("concat channels %v", c.Shape)
	}
	if c.At(0, 1, 1, 0) != 4 || c.At(1, 0, 0, 0) != 5 || c.At(2, 1, 1, 0) != 12 {
		t.Error("concat layout wrong")
	}
	ga, gb := SplitC(c, 1)
	if !ga.SameShape(a) || !gb.SameShape(b) {
		t.Error("split shapes wrong")
	}
	if ga.At(0, 0, 0, 0) != 1 || gb.At(1, 0, 0, 0) != 9 {
		t.Error("split values wrong")
	}
}

func TestConv3DShapePanics(t *testing.T) {
	x := New(2, 2, 2, 2)
	wrongC := New(1, 3, 3, 3, 3)
	assertPanics(t, "channel mismatch", func() { Conv3D(x, wrongC, nil) })
	even := New(1, 2, 2, 2, 2)
	assertPanics(t, "even kernel", func() { Conv3D(x, even, nil) })
	assertPanics(t, "rank-3 input", func() { Conv3D(New(2, 2, 2), New(1, 2, 3, 3, 3), nil) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s should panic", name)
		}
	}()
	f()
}
