package tensor

import (
	"fmt"

	"oarsmt/internal/parallel"
)

// Conv3D computes a "same" 3-D convolution. x has shape [InC, H, V, M],
// w has shape [OutC, InC, K, K, K] with K odd, b has shape [OutC] (or is
// nil for no bias). The result has shape [OutC, H, V, M]; the input is
// implicitly zero-padded by K/2 on every side.
//
// The implementation is the im2col + blocked-GEMM engine of gemm.go:
// results are bit-identical to the textbook direct convolution and to
// themselves at any worker count.
func Conv3D(x, w, b *Tensor) *Tensor { return Conv3DIn(nil, x, w, b) }

// Conv3DIn is Conv3D with the output allocated from the arena (heap when
// a is nil).
func Conv3DIn(a *Arena, x, w, b *Tensor) *Tensor {
	sh := convCheck(x.Shape, w.Shape, b)
	out := a.New(sh.outC, sh.h, sh.v, sh.m)
	var bias []float64
	if b != nil {
		bias = b.Data
	}
	convForward(out.Data, x.Data, w.Data, bias, sh)
	return out
}

// Conv3D32 is the float32 inference-mode convolution: same shapes and
// tap order as Conv3D, computed in float32 throughout. w and b are the
// once-converted weights (Convert32).
func Conv3D32(a *Arena, x, w, b *T32) *T32 {
	sh := convCheck32(x.Shape, w.Shape, b)
	out := a.New32(sh.outC, sh.h, sh.v, sh.m)
	var bias []float32
	if b != nil {
		bias = b.Data
	}
	convForward(out.Data, x.Data, w.Data, bias, sh)
	return out
}

// Conv3DBackward computes the gradients of a Conv3D call: gradX wrt the
// input, gradW wrt the kernel and gradB wrt the bias, given gradOut, the
// gradient wrt the output. Results are bit-identical at any worker count.
func Conv3DBackward(x, w, gradOut *Tensor) (gradX, gradW, gradB *Tensor) {
	return Conv3DBackwardIn(nil, x, w, gradOut)
}

// Conv3DBackwardIn is Conv3DBackward with the three gradients allocated
// from the arena. On the heap path they share one backing allocation.
func Conv3DBackwardIn(a *Arena, x, w, gradOut *Tensor) (gradX, gradW, gradB *Tensor) {
	sh := convCheck(x.Shape, w.Shape, nil)
	if gradOut.Rank() != 4 || gradOut.Dim(0) != sh.outC || gradOut.Dim(1) != sh.h ||
		gradOut.Dim(2) != sh.v || gradOut.Dim(3) != sh.m {
		panic(fmt.Sprintf("tensor: gradOut shape %v for input %v", gradOut.Shape, x.Shape))
	}
	if a != nil {
		gradX = a.New(sh.inC, sh.h, sh.v, sh.m)
		gradW = a.New(sh.outC, sh.inC, sh.k, sh.k, sh.k)
		gradB = a.New(sh.outC)
	} else {
		nx, nw := sh.inC*sh.n(), sh.outC*sh.j()
		backing := make([]float64, nx+nw+sh.outC)
		gradX = &Tensor{Shape: []int{sh.inC, sh.h, sh.v, sh.m}, Data: backing[:nx:nx]}
		gradW = &Tensor{Shape: []int{sh.outC, sh.inC, sh.k, sh.k, sh.k}, Data: backing[nx : nx+nw : nx+nw]}
		gradB = &Tensor{Shape: []int{sh.outC}, Data: backing[nx+nw:]}
	}
	convBackward(gradX.Data, gradW.Data, gradB.Data, x.Data, w.Data, gradOut.Data, sh)
	return gradX, gradW, gradB
}

// convCheck validates forward/backward shapes and returns the call's
// dimensions.
func convCheck(xShape, wShape []int, b *Tensor) convShape {
	inC, h, v, m := convDims4(xShape)
	outC, k := convKernelDims5(wShape, inC)
	if b != nil && (b.Rank() != 1 || b.Dim(0) != outC) {
		panic(fmt.Sprintf("tensor: bias shape %v for %d output channels", b.Shape, outC))
	}
	return convShape{inC: inC, outC: outC, h: h, v: v, m: m, k: k}
}

// convCheck32 is convCheck for the float32 types.
func convCheck32(xShape, wShape []int, b *T32) convShape {
	inC, h, v, m := convDims4(xShape)
	outC, k := convKernelDims5(wShape, inC)
	if b != nil && (len(b.Shape) != 1 || b.Shape[0] != outC) {
		panic(fmt.Sprintf("tensor: bias shape %v for %d output channels", b.Shape, outC))
	}
	return convShape{inC: inC, outC: outC, h: h, v: v, m: m, k: k}
}

func convDims(x *Tensor) (c, h, v, m int) { return convDims4(x.Shape) }

func convKernelDims(w *Tensor, inC int) (outC, k int) { return convKernelDims5(w.Shape, inC) }

func convDims4(shape []int) (c, h, v, m int) {
	if len(shape) != 4 {
		panic(fmt.Sprintf("tensor: conv input rank %d, want 4 [C,H,V,M]", len(shape)))
	}
	return shape[0], shape[1], shape[2], shape[3]
}

func convKernelDims5(shape []int, inC int) (outC, k int) {
	if len(shape) != 5 {
		panic(fmt.Sprintf("tensor: kernel rank %d, want 5 [OutC,InC,K,K,K]", len(shape)))
	}
	if shape[1] != inC {
		panic(fmt.Sprintf("tensor: kernel expects %d input channels, input has %d", shape[1], inC))
	}
	k = shape[2]
	if shape[3] != k || shape[4] != k || k%2 == 0 {
		panic(fmt.Sprintf("tensor: kernel dims %v, want odd cubic", shape))
	}
	return shape[0], k
}

// avgPool2Core downsamples by 2 with ceil semantics: per output cell the
// covered inputs are summed in ascending (dh, dv, dm) order and divided by
// the window size. Channels shard over the pool; a channel never splits,
// so results are worker-count independent.
func avgPool2Core[F num](out, x []F, c, h, v, m int) {
	oh, ov, om := (h+1)/2, (v+1)/2, (m+1)/2
	parallel.ForWork(c*h*v*m, c, func(_, lo, hi int) {
		for cc := lo; cc < hi; cc++ {
			src := x[cc*h*v*m : (cc+1)*h*v*m]
			dst := out[cc*oh*ov*om : (cc+1)*oh*ov*om]
			di := 0
			for hh := 0; hh < oh; hh++ {
				h0 := 2 * hh
				hn := min(2, h-h0)
				for vv := 0; vv < ov; vv++ {
					v0 := 2 * vv
					vn := min(2, v-v0)
					for mm := 0; mm < om; mm++ {
						m0 := 2 * mm
						mn := min(2, m-m0)
						var sum F
						for dh := 0; dh < hn; dh++ {
							rowBase := ((h0+dh)*v + v0) * m
							for dv := 0; dv < vn; dv++ {
								row := src[rowBase+dv*m+m0 : rowBase+dv*m+m0+mn]
								for _, xv := range row {
									sum += xv
								}
							}
						}
						dst[di] = sum / F(hn*vn*mn)
						di++
					}
				}
			}
		}
	})
}

// AvgPool2 downsamples [C, H, V, M] by a factor of 2 in each spatial
// dimension with ceil semantics: output dims are ceil(d/2) and border
// cells average only the inputs they cover.
func AvgPool2(x *Tensor) *Tensor { return AvgPool2In(nil, x) }

// AvgPool2In is AvgPool2 with the output allocated from the arena.
func AvgPool2In(a *Arena, x *Tensor) *Tensor {
	c, h, v, m := convDims(x)
	out := a.New(c, (h+1)/2, (v+1)/2, (m+1)/2)
	avgPool2Core(out.Data, x.Data, c, h, v, m)
	return out
}

// AvgPool232 is the float32 AvgPool2.
func AvgPool232(a *Arena, x *T32) *T32 {
	c, h, v, m := convDims4(x.Shape)
	out := a.New32(c, (h+1)/2, (v+1)/2, (m+1)/2)
	avgPool2Core(out.Data, x.Data, c, h, v, m)
	return out
}

// AvgPool2Backward distributes gradOut of an AvgPool2 call back onto the
// input shape. Every input cell belongs to exactly one window, so each
// element is written once.
func AvgPool2Backward(inShape []int, gradOut *Tensor) *Tensor {
	return AvgPool2BackwardIn(nil, inShape, gradOut)
}

// AvgPool2BackwardIn is AvgPool2Backward with the output allocated from
// the arena.
func AvgPool2BackwardIn(a *Arena, inShape []int, gradOut *Tensor) *Tensor {
	c, h, v, m := inShape[0], inShape[1], inShape[2], inShape[3]
	gx := a.New(c, h, v, m)
	oh, ov, om := (h+1)/2, (v+1)/2, (m+1)/2
	parallel.ForWork(c*h*v*m, c, func(_, lo, hi int) {
		for cc := lo; cc < hi; cc++ {
			src := gradOut.Data[cc*oh*ov*om : (cc+1)*oh*ov*om]
			dst := gx.Data[cc*h*v*m : (cc+1)*h*v*m]
			si := 0
			for hh := 0; hh < oh; hh++ {
				h0 := 2 * hh
				hn := min(2, h-h0)
				for vv := 0; vv < ov; vv++ {
					v0 := 2 * vv
					vn := min(2, v-v0)
					for mm := 0; mm < om; mm++ {
						m0 := 2 * mm
						mn := min(2, m-m0)
						g := src[si] / float64(hn*vn*mn)
						si++
						for dh := 0; dh < hn; dh++ {
							rowBase := ((h0+dh)*v + v0) * m
							for dv := 0; dv < vn; dv++ {
								row := dst[rowBase+dv*m+m0 : rowBase+dv*m+m0+mn]
								for i := range row {
									row[i] = g
								}
							}
						}
					}
				}
			}
		}
	})
	return gx
}

// upsampleCore resizes [C, sh, sv, sm] to [C, h, v, m] by nearest
// neighbour (source index = floor(out · src / dst)).
func upsampleCore[F num](out, x []F, c, sh, sv, sm, h, v, m int) {
	parallel.ForWork(c*h*v*m, c, func(_, lo, hi int) {
		for cc := lo; cc < hi; cc++ {
			src := x[cc*sh*sv*sm : (cc+1)*sh*sv*sm]
			dst := out[cc*h*v*m : (cc+1)*h*v*m]
			di := 0
			for hh := 0; hh < h; hh++ {
				shh := hh * sh / h
				for vv := 0; vv < v; vv++ {
					svv := vv * sv / v
					srcRow := src[(shh*sv+svv)*sm:]
					for mm := 0; mm < m; mm++ {
						dst[di] = srcRow[mm*sm/m]
						di++
					}
				}
			}
		}
	})
}

// UpsampleNearest resizes [C, h, v, m] to [C, H, V, M] by nearest-neighbour
// sampling. It is the exact inverse pairing of AvgPool2's ceil-mode dims,
// so U-Net skip connections always line up regardless of odd input sizes.
func UpsampleNearest(x *Tensor, h, v, m int) *Tensor {
	return UpsampleNearestIn(nil, x, h, v, m)
}

// UpsampleNearestIn is UpsampleNearest with the output allocated from the
// arena.
func UpsampleNearestIn(a *Arena, x *Tensor, h, v, m int) *Tensor {
	c, sh, sv, sm := convDims(x)
	out := a.New(c, h, v, m)
	upsampleCore(out.Data, x.Data, c, sh, sv, sm, h, v, m)
	return out
}

// UpsampleNearest32 is the float32 UpsampleNearest.
func UpsampleNearest32(a *Arena, x *T32, h, v, m int) *T32 {
	c, sh, sv, sm := convDims4(x.Shape)
	out := a.New32(c, h, v, m)
	upsampleCore(out.Data, x.Data, c, sh, sv, sm, h, v, m)
	return out
}

// UpsampleNearestBackward accumulates gradOut of an UpsampleNearest call
// back onto the source shape, in ascending output order per source cell.
func UpsampleNearestBackward(inShape []int, gradOut *Tensor) *Tensor {
	return UpsampleNearestBackwardIn(nil, inShape, gradOut)
}

// UpsampleNearestBackwardIn is UpsampleNearestBackward with the output
// allocated from the arena.
func UpsampleNearestBackwardIn(a *Arena, inShape []int, gradOut *Tensor) *Tensor {
	c, sh, sv, sm := inShape[0], inShape[1], inShape[2], inShape[3]
	_, h, v, m := convDims(gradOut)
	gx := a.New(c, sh, sv, sm)
	parallel.ForWork(c*h*v*m, c, func(_, lo, hi int) {
		for cc := lo; cc < hi; cc++ {
			src := gradOut.Data[cc*h*v*m:]
			dst := gx.Data[cc*sh*sv*sm:]
			si := 0
			for hh := 0; hh < h; hh++ {
				shh := hh * sh / h
				for vv := 0; vv < v; vv++ {
					svv := vv * sv / v
					dstRow := dst[(shh*sv+svv)*sm:]
					for mm := 0; mm < m; mm++ {
						dstRow[mm*sm/m] += src[si]
						si++
					}
				}
			}
		}
	})
	return gx
}

// ConcatC concatenates two [C,H,V,M] tensors along the channel dimension;
// spatial dims must match.
func ConcatC(a, b *Tensor) *Tensor { return ConcatCIn(nil, a, b) }

// ConcatCIn is ConcatC with the output allocated from the arena.
func ConcatCIn(ar *Arena, a, b *Tensor) *Tensor {
	ca, h, v, m := convDims(a)
	cb, h2, v2, m2 := convDims(b)
	if h != h2 || v != v2 || m != m2 {
		panic(fmt.Sprintf("tensor: ConcatC spatial mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := ar.New(ca+cb, h, v, m)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// ConcatC32 is the float32 ConcatC.
func ConcatC32(ar *Arena, a, b *T32) *T32 {
	ca, h, v, m := convDims4(a.Shape)
	cb, h2, v2, m2 := convDims4(b.Shape)
	if h != h2 || v != v2 || m != m2 {
		panic(fmt.Sprintf("tensor: ConcatC spatial mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := ar.New32(ca+cb, h, v, m)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// SplitC splits the channel-dimension gradient of a ConcatC call back into
// the two operands' gradients, the first having ca channels.
func SplitC(gradOut *Tensor, ca int) (ga, gb *Tensor) {
	return SplitCIn(nil, gradOut, ca)
}

// SplitCIn is SplitC with the outputs allocated from the arena.
func SplitCIn(a *Arena, gradOut *Tensor, ca int) (ga, gb *Tensor) {
	c, h, v, m := convDims(gradOut)
	if ca <= 0 || ca >= c {
		panic(fmt.Sprintf("tensor: SplitC at %d of %d channels", ca, c))
	}
	ga = a.New(ca, h, v, m)
	gb = a.New(c-ca, h, v, m)
	copy(ga.Data, gradOut.Data[:ca*h*v*m])
	copy(gb.Data, gradOut.Data[ca*h*v*m:])
	return ga, gb
}
