package tensor

import (
	"fmt"

	"oarsmt/internal/parallel"
)

// convParallelMinWork is the minimum number of kernel multiply-adds below
// which a convolution stays on the serial path: sharding overhead would
// dominate smaller calls. The threshold only affects wall-clock, never
// results — the sharded paths are bit-identical to serial. A var so the
// equality tests can force the parallel path on tiny shapes.
var convParallelMinWork = 1 << 16

// Conv3D computes a "same" 3-D convolution. x has shape [InC, H, V, M],
// w has shape [OutC, InC, K, K, K] with K odd, b has shape [OutC] (or is
// nil for no bias). The result has shape [OutC, H, V, M]; the input is
// implicitly zero-padded by K/2 on every side.
//
// The implementation is a direct convolution with the contiguous M axis in
// the inner loop, which is the sweet spot for the small channel counts the
// selector uses. Large calls shard the (independent) output channels over
// the parallel worker pool; every shard runs the identical per-channel
// code on disjoint output slabs, so the result is bit-identical to the
// serial path at any worker count.
func Conv3D(x, w, b *Tensor) *Tensor {
	inC, h, v, m := convDims(x)
	outC, k := convKernelDims(w, inC)
	if b != nil && (b.Rank() != 1 || b.Dim(0) != outC) {
		panic(fmt.Sprintf("tensor: bias shape %v for %d output channels", b.Shape, outC))
	}
	out := New(outC, h, v, m)
	work := outC * inC * k * k * k * h * v * m
	if outC > 1 && work >= convParallelMinWork {
		parallel.For(outC, func(_, lo, hi int) {
			convForwardRange(out, x, w, b, lo, hi)
		})
	} else {
		convForwardRange(out, x, w, b, 0, outC)
	}
	return out
}

// convForwardRange computes output channels [ocLo, ocHi) of a Conv3D call.
// Each output channel touches only its own slab of out, so disjoint ranges
// may run concurrently.
func convForwardRange(out, x, w, b *Tensor, ocLo, ocHi int) {
	inC, h, v, m := convDims(x)
	_, k := convKernelDims(w, inC)
	p := k / 2

	planeIn := h * v * m
	planeOut := h * v * m
	rowLen := m
	for oc := ocLo; oc < ocHi; oc++ {
		outBase := oc * planeOut
		if b != nil {
			bias := b.Data[oc]
			for i := outBase; i < outBase+planeOut; i++ {
				out.Data[i] = bias
			}
		}
		for ic := 0; ic < inC; ic++ {
			inBase := ic * planeIn
			for kh := 0; kh < k; kh++ {
				dh := kh - p
				h0, h1 := clipRange(dh, h)
				if k == 3 {
					// Fast path for the ubiquitous 3x3x3 kernel: each
					// (kv, km) tap is one long axpy over the contiguous
					// V*M plane of a layer-column slab, followed by a
					// cheap fix-up of the M-boundary elements that the
					// flat shift contaminated across row ends.
					wbase := (((oc*inC+ic)*k + kh) * k) * k
					for hh := h0; hh < h1; hh++ {
						src := x.Data[inBase+(hh+dh)*v*rowLen : inBase+(hh+dh+1)*v*rowLen]
						dst := out.Data[outBase+hh*v*rowLen : outBase+(hh+1)*v*rowLen]
						convPlane3(dst, src, w.Data[wbase:wbase+9], v, rowLen)
					}
					continue
				}
				for kv := 0; kv < k; kv++ {
					dv := kv - p
					v0, v1 := clipRange(dv, v)
					for km := 0; km < k; km++ {
						dm := km - p
						m0, m1 := clipRange(dm, m)
						wv := w.Data[(((oc*inC+ic)*k+kh)*k+kv)*k+km]
						if wv == 0 || m0 >= m1 {
							continue
						}
						for hh := h0; hh < h1; hh++ {
							srcRowBase := inBase + ((hh+dh)*v)*rowLen
							dstRowBase := outBase + (hh*v)*rowLen
							for vv := v0; vv < v1; vv++ {
								src := srcRowBase + (vv+dv)*rowLen + dm
								dst := dstRowBase + vv*rowLen
								xs := x.Data[src+m0 : src+m1]
								os := out.Data[dst+m0 : dst+m1]
								for i, xv := range xs {
									os[i] += wv * xv
								}
							}
						}
					}
				}
			}
		}
	}
}

// convPlane3 accumulates the 3x3 (kv, km) taps of one kernel slice into a
// contiguous [V x M] destination plane. ws holds the 9 tap weights in
// (kv, km) row-major order. Each tap is a single flat axpy over the plane
// with offset dv*M+dm; the flat shift wrongly carries values across M-row
// ends when dm != 0, so those boundary elements are corrected afterwards
// (zero padding means the correct contribution there is none).
func convPlane3(dst, src []float64, ws []float64, v, m int) {
	vm := v * m
	for kv := 0; kv < 3; kv++ {
		dv := kv - 1
		rowOff := dv * m
		w0, w1, w2 := ws[kv*3], ws[kv*3+1], ws[kv*3+2]

		// Output span where the source row (pos+rowOff) exists.
		lo, hi := 0, vm
		if rowOff > 0 {
			hi = vm - rowOff
		} else if rowOff < 0 {
			lo = -rowOff
		}
		if lo >= hi {
			continue
		}
		// Interior positions additionally need pos+rowOff-1 and
		// pos+rowOff+1 in bounds; the at most two clipped end positions
		// get the middle tap only (their side taps are fixed up below
		// together with the M-boundary corrections, or are padding).
		iLo, iHi := lo, hi
		if iLo+rowOff-1 < 0 {
			dst[iLo] += w1 * src[iLo+rowOff]
			if iLo+rowOff+1 < vm {
				dst[iLo] += w2 * src[iLo+rowOff+1]
			}
			iLo++
		}
		if iHi-1+rowOff+1 > vm-1 && iHi > iLo {
			p := iHi - 1
			dst[p] += w1 * src[p+rowOff]
			if p+rowOff-1 >= 0 {
				dst[p] += w0 * src[p+rowOff-1]
			}
			iHi--
		}
		if iLo < iHi {
			ds := dst[iLo:iHi]
			s0 := src[iLo+rowOff-1 : iHi+rowOff-1]
			s1 := src[iLo+rowOff : iHi+rowOff]
			s2 := src[iLo+rowOff+1 : iHi+rowOff+1]
			for i := range ds {
				ds[i] += w0*s0[i] + w1*s1[i] + w2*s2[i]
			}
		}
		// Fix up the M-row boundary contamination of the side taps: an
		// output at m == 0 must not receive the w0 tap (its true source
		// is padding), and an output at m == M-1 must not receive w2.
		if w0 != 0 {
			for pos := ((lo + m - 1) / m) * m; pos < hi; pos += m {
				if pos+rowOff-1 >= 0 {
					dst[pos] -= w0 * src[pos+rowOff-1]
				}
			}
		}
		if w2 != 0 {
			start := (lo/m)*m + m - 1
			if start < lo {
				start += m
			}
			for pos := start; pos < hi; pos += m {
				if pos+rowOff+1 < vm {
					dst[pos] -= w2 * src[pos+rowOff+1]
				}
			}
		}
	}
}

// Conv3DBackward computes the gradients of a Conv3D call: gradX wrt the
// input, gradW wrt the kernel and gradB wrt the bias, given gradOut, the
// gradient wrt the output.
//
// The parallel path shards gradB over output channels and gradX/gradW over
// input channels. An input-channel shard walks the output channels in
// ascending order, which reproduces the serial loop's per-element
// floating-point accumulation sequence exactly: results are bit-identical
// to the serial path at any worker count.
func Conv3DBackward(x, w, gradOut *Tensor) (gradX, gradW, gradB *Tensor) {
	inC, h, v, m := convDims(x)
	outC, k := convKernelDims(w, inC)
	if gradOut.Rank() != 4 || gradOut.Dim(0) != outC || gradOut.Dim(1) != h ||
		gradOut.Dim(2) != v || gradOut.Dim(3) != m {
		panic(fmt.Sprintf("tensor: gradOut shape %v for input %v", gradOut.Shape, x.Shape))
	}
	gradX = New(inC, h, v, m)
	gradW = New(outC, inC, k, k, k)
	gradB = New(outC)

	work := outC * inC * k * k * k * h * v * m
	if inC > 1 && work >= convParallelMinWork {
		plane := h * v * m
		parallel.For(outC, func(_, lo, hi int) {
			for oc := lo; oc < hi; oc++ {
				goBase := oc * plane
				sum := 0.0
				for i := goBase; i < goBase+plane; i++ {
					sum += gradOut.Data[i]
				}
				gradB.Data[oc] = sum
			}
		})
		parallel.For(inC, func(_, lo, hi int) {
			convBackwardInputRange(gradX, gradW, x, w, gradOut, lo, hi)
		})
		return gradX, gradW, gradB
	}
	convBackwardSerial(gradX, gradW, gradB, x, w, gradOut)
	return gradX, gradW, gradB
}

// convBackwardSerial is the reference single-pass backward: output-channel
// major, with the gradB reduction and the gradX/gradW taps fused.
func convBackwardSerial(gradX, gradW, gradB, x, w, gradOut *Tensor) {
	inC, h, v, m := convDims(x)
	outC, k := convKernelDims(w, inC)
	p := k / 2

	plane := h * v * m
	rowLen := m
	for oc := 0; oc < outC; oc++ {
		goBase := oc * plane
		sum := 0.0
		for i := goBase; i < goBase+plane; i++ {
			sum += gradOut.Data[i]
		}
		gradB.Data[oc] = sum

		for ic := 0; ic < inC; ic++ {
			inBase := ic * plane
			for kh := 0; kh < k; kh++ {
				dh := kh - p
				h0, h1 := clipRange(dh, h)
				for kv := 0; kv < k; kv++ {
					dv := kv - p
					v0, v1 := clipRange(dv, v)
					for km := 0; km < k; km++ {
						dm := km - p
						m0, m1 := clipRange(dm, m)
						if m0 >= m1 {
							continue
						}
						widx := (((oc*inC+ic)*k+kh)*k+kv)*k + km
						wv := w.Data[widx]
						wacc := 0.0
						for hh := h0; hh < h1; hh++ {
							srcRowBase := inBase + ((hh+dh)*v)*rowLen
							dstRowBase := goBase + (hh*v)*rowLen
							for vv := v0; vv < v1; vv++ {
								src := srcRowBase + (vv+dv)*rowLen + dm
								dst := dstRowBase + vv*rowLen
								xs := x.Data[src+m0 : src+m1]
								gs := gradOut.Data[dst+m0 : dst+m1]
								gxs := gradX.Data[src+m0 : src+m1]
								for i, gv := range gs {
									wacc += xs[i] * gv
									gxs[i] += wv * gv
								}
							}
						}
						gradW.Data[widx] = wacc
					}
				}
			}
		}
	}
}

// convBackwardInputRange computes gradX and gradW for input channels
// [icLo, icHi). Both outputs are disjoint across input channels, so
// distinct ranges may run concurrently. For every gradX element the
// contributions arrive in ascending output-channel order with the same
// tap order as convBackwardSerial, making the accumulation bit-identical.
func convBackwardInputRange(gradX, gradW, x, w, gradOut *Tensor, icLo, icHi int) {
	inC, h, v, m := convDims(x)
	outC, k := convKernelDims(w, inC)
	p := k / 2

	plane := h * v * m
	rowLen := m
	for ic := icLo; ic < icHi; ic++ {
		inBase := ic * plane
		for oc := 0; oc < outC; oc++ {
			goBase := oc * plane
			for kh := 0; kh < k; kh++ {
				dh := kh - p
				h0, h1 := clipRange(dh, h)
				for kv := 0; kv < k; kv++ {
					dv := kv - p
					v0, v1 := clipRange(dv, v)
					for km := 0; km < k; km++ {
						dm := km - p
						m0, m1 := clipRange(dm, m)
						if m0 >= m1 {
							continue
						}
						widx := (((oc*inC+ic)*k+kh)*k+kv)*k + km
						wv := w.Data[widx]
						wacc := 0.0
						for hh := h0; hh < h1; hh++ {
							srcRowBase := inBase + ((hh+dh)*v)*rowLen
							dstRowBase := goBase + (hh*v)*rowLen
							for vv := v0; vv < v1; vv++ {
								src := srcRowBase + (vv+dv)*rowLen + dm
								dst := dstRowBase + vv*rowLen
								xs := x.Data[src+m0 : src+m1]
								gs := gradOut.Data[dst+m0 : dst+m1]
								gxs := gradX.Data[src+m0 : src+m1]
								for i, gv := range gs {
									wacc += xs[i] * gv
									gxs[i] += wv * gv
								}
							}
						}
						gradW.Data[widx] = wacc
					}
				}
			}
		}
	}
}

func convDims(x *Tensor) (c, h, v, m int) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: conv input rank %d, want 4 [C,H,V,M]", x.Rank()))
	}
	return x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
}

func convKernelDims(w *Tensor, inC int) (outC, k int) {
	if w.Rank() != 5 {
		panic(fmt.Sprintf("tensor: kernel rank %d, want 5 [OutC,InC,K,K,K]", w.Rank()))
	}
	if w.Dim(1) != inC {
		panic(fmt.Sprintf("tensor: kernel expects %d input channels, input has %d", w.Dim(1), inC))
	}
	k = w.Dim(2)
	if w.Dim(3) != k || w.Dim(4) != k || k%2 == 0 {
		panic(fmt.Sprintf("tensor: kernel dims %v, want odd cubic", w.Shape))
	}
	return w.Dim(0), k
}

// clipRange returns the output index range [lo, hi) for which out+d is a
// valid input index in [0, n).
func clipRange(d, n int) (lo, hi int) {
	lo, hi = 0, n
	if d < 0 {
		lo = -d
	}
	if d > 0 {
		hi = n - d
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// poolParallelMinWork is the minimum element count below which the
// pooling/upsampling kernels stay serial.
var poolParallelMinWork = 1 << 14

// forChannels shards the (independent) channel loop [0, c) over the worker
// pool when the volume is worth it; body(cc) must only touch channel cc.
func forChannels(c, work int, body func(cc int)) {
	if c > 1 && work >= poolParallelMinWork {
		parallel.For(c, func(_, lo, hi int) {
			for cc := lo; cc < hi; cc++ {
				body(cc)
			}
		})
		return
	}
	for cc := 0; cc < c; cc++ {
		body(cc)
	}
}

// AvgPool2 downsamples [C, H, V, M] by a factor of 2 in each spatial
// dimension with ceil semantics: output dims are ceil(d/2) and border
// cells average only the inputs they cover.
func AvgPool2(x *Tensor) *Tensor {
	c, h, v, m := convDims(x)
	oh, ov, om := (h+1)/2, (v+1)/2, (m+1)/2
	out := New(c, oh, ov, om)
	forChannels(c, x.Len(), func(cc int) {
		for hh := 0; hh < oh; hh++ {
			for vv := 0; vv < ov; vv++ {
				for mm := 0; mm < om; mm++ {
					sum, cnt := 0.0, 0
					for dh := 0; dh < 2 && 2*hh+dh < h; dh++ {
						for dv := 0; dv < 2 && 2*vv+dv < v; dv++ {
							for dm := 0; dm < 2 && 2*mm+dm < m; dm++ {
								sum += x.At(cc, 2*hh+dh, 2*vv+dv, 2*mm+dm)
								cnt++
							}
						}
					}
					out.Set(sum/float64(cnt), cc, hh, vv, mm)
				}
			}
		}
	})
	return out
}

// AvgPool2Backward distributes gradOut of an AvgPool2 call back onto the
// input shape.
func AvgPool2Backward(inShape []int, gradOut *Tensor) *Tensor {
	c, h, v, m := inShape[0], inShape[1], inShape[2], inShape[3]
	gx := New(c, h, v, m)
	oh, ov, om := (h+1)/2, (v+1)/2, (m+1)/2
	forChannels(c, gx.Len(), func(cc int) {
		for hh := 0; hh < oh; hh++ {
			for vv := 0; vv < ov; vv++ {
				for mm := 0; mm < om; mm++ {
					cnt := 0
					for dh := 0; dh < 2 && 2*hh+dh < h; dh++ {
						for dv := 0; dv < 2 && 2*vv+dv < v; dv++ {
							for dm := 0; dm < 2 && 2*mm+dm < m; dm++ {
								cnt++
							}
						}
					}
					g := gradOut.At(cc, hh, vv, mm) / float64(cnt)
					for dh := 0; dh < 2 && 2*hh+dh < h; dh++ {
						for dv := 0; dv < 2 && 2*vv+dv < v; dv++ {
							for dm := 0; dm < 2 && 2*mm+dm < m; dm++ {
								gx.Data[((cc*h+2*hh+dh)*v+2*vv+dv)*m+2*mm+dm] += g
							}
						}
					}
				}
			}
		}
	})
	return gx
}

// UpsampleNearest resizes [C, h, v, m] to [C, H, V, M] by nearest-neighbour
// sampling (source index = floor(out * src / dst)). It is the exact inverse
// pairing of AvgPool2's ceil-mode dims, so U-Net skip connections always
// line up regardless of odd input sizes.
func UpsampleNearest(x *Tensor, h, v, m int) *Tensor {
	c, sh, sv, sm := convDims(x)
	out := New(c, h, v, m)
	forChannels(c, out.Len(), func(cc int) {
		for hh := 0; hh < h; hh++ {
			shh := hh * sh / h
			for vv := 0; vv < v; vv++ {
				svv := vv * sv / v
				for mm := 0; mm < m; mm++ {
					smm := mm * sm / m
					out.Data[((cc*h+hh)*v+vv)*m+mm] = x.Data[((cc*sh+shh)*sv+svv)*sm+smm]
				}
			}
		}
	})
	return out
}

// UpsampleNearestBackward accumulates gradOut of an UpsampleNearest call
// back onto the source shape.
func UpsampleNearestBackward(inShape []int, gradOut *Tensor) *Tensor {
	c, sh, sv, sm := inShape[0], inShape[1], inShape[2], inShape[3]
	_, h, v, m := convDims(gradOut)
	gx := New(c, sh, sv, sm)
	forChannels(c, gradOut.Len(), func(cc int) {
		for hh := 0; hh < h; hh++ {
			shh := hh * sh / h
			for vv := 0; vv < v; vv++ {
				svv := vv * sv / v
				for mm := 0; mm < m; mm++ {
					smm := mm * sm / m
					gx.Data[((cc*sh+shh)*sv+svv)*sm+smm] += gradOut.Data[((cc*h+hh)*v+vv)*m+mm]
				}
			}
		}
	})
	return gx
}

// ConcatC concatenates two [C,H,V,M] tensors along the channel dimension;
// spatial dims must match.
func ConcatC(a, b *Tensor) *Tensor {
	ca, h, v, m := convDims(a)
	cb, h2, v2, m2 := convDims(b)
	if h != h2 || v != v2 || m != m2 {
		panic(fmt.Sprintf("tensor: ConcatC spatial mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(ca+cb, h, v, m)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// SplitC splits the channel-dimension gradient of a ConcatC call back into
// the two operands' gradients, the first having ca channels.
func SplitC(gradOut *Tensor, ca int) (ga, gb *Tensor) {
	c, h, v, m := convDims(gradOut)
	if ca <= 0 || ca >= c {
		panic(fmt.Sprintf("tensor: SplitC at %d of %d channels", ca, c))
	}
	ga = FromSlice(append([]float64(nil), gradOut.Data[:ca*h*v*m]...), ca, h, v, m)
	gb = FromSlice(append([]float64(nil), gradOut.Data[ca*h*v*m:]...), c-ca, h, v, m)
	return ga, gb
}
