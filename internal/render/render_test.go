package render

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/route"
)

func routedInstance(t *testing.T) (*layout.Instance, *route.Tree) {
	t.Helper()
	in, err := layout.Random(rand.New(rand.NewSource(1)), layout.RandomSpec{
		H: 8, V: 8, MinM: 2, MaxM: 2,
		MinPins: 4, MaxPins: 4, MinObstacles: 5, MaxObstacles: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := route.NewRouter(in.Graph).OARMST(in.Pins)
	if err != nil {
		t.Fatal(err)
	}
	return in, tree
}

func TestSVGWellFormed(t *testing.T) {
	in, tree := routedInstance(t)
	var buf bytes.Buffer
	if err := SVG(&buf, in, tree, DefaultSVGConfig()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Error("SVG not well delimited")
	}
	for _, want := range []string{"layer 0", "layer 1", "<circle", "<line"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One panel label per layer.
	if strings.Count(s, "layer ") != in.Graph.M {
		t.Errorf("expected %d layer labels", in.Graph.M)
	}
}

func TestSVGWithoutTree(t *testing.T) {
	in, _ := routedInstance(t)
	var buf bytes.Buffer
	if err := SVG(&buf, in, nil, SVGConfig{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<circle") {
		t.Error("pins should render without a tree")
	}
}

func TestSVGMultiColorsNets(t *testing.T) {
	g, err := grid.NewUniform(8, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := &layout.Instance{Graph: g, Pins: []grid.VertexID{g.Index(0, 0, 0), g.Index(7, 0, 0)}}
	r := route.NewRouter(g)
	t1, err := r.OARMST([]grid.VertexID{g.Index(0, 0, 0), g.Index(7, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := r.OARMST([]grid.VertexID{g.Index(0, 7, 0), g.Index(7, 7, 0)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SVGMulti(&buf, in, []*route.Tree{t1, nil, t2}, DefaultSVGConfig()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, wireColors[0]) || !strings.Contains(s, wireColors[2]) {
		t.Error("multi-tree drawing should use distinct colours per net index")
	}
	if strings.Contains(s, wireColors[1]) {
		t.Error("nil tree should draw nothing in its colour")
	}
}

func TestASCIISymbols(t *testing.T) {
	// Hand-made layout: 3x3x1, pins at corners, an obstacle, and a
	// routed path between the pins.
	g, err := grid.NewUniform(3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Block(g.Index(1, 1, 0))
	in := &layout.Instance{
		Graph: g,
		Pins:  []grid.VertexID{g.Index(0, 0, 0), g.Index(2, 2, 0)},
	}
	tree, err := route.NewRouter(g).OARMST(in.Pins)
	if err != nil {
		t.Fatal(err)
	}
	out := ASCII(in, tree)
	if strings.Count(out, "P") != 2 {
		t.Errorf("expected 2 pins:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("expected obstacle:\n%s", out)
	}
	if !strings.Contains(out, "+") {
		t.Errorf("expected tree vertices:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 3 rows.
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestASCIIMarksSteinerAndVias(t *testing.T) {
	// Plus layout: centre is a degree-4 Steiner point.
	g, err := grid.NewUniform(5, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pins := []grid.VertexID{
		g.Index(2, 0, 0), g.Index(2, 4, 0), g.Index(0, 2, 0), g.Index(4, 2, 1),
	}
	in := &layout.Instance{Graph: g, Pins: pins}
	r := route.NewRouter(g)
	res, err := r.SteinerTree(pins, []grid.VertexID{g.Index(2, 2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	out := ASCII(in, res.Tree)
	if !strings.Contains(out, "S") {
		t.Errorf("expected Steiner point marker:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("expected via marker (pin on layer 1):\n%s", out)
	}
	if !strings.Contains(out, "layer 1") {
		t.Error("expected a second layer block")
	}
}
