// Package render draws layouts and routed trees, for debugging and for
// inspecting router behaviour: an SVG renderer with one panel per routing
// layer, and a compact ASCII renderer for terminals and tests.
//
// Rendering works in grid space (Hanan coordinates); graphs built from
// geometric layouts scale each column/row by its original spacing so the
// picture reflects true geometry.
package render

import (
	"fmt"
	"io"
	"strings"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/route"
)

// SVGConfig styles the SVG output.
type SVGConfig struct {
	// CellSize is the pixel pitch of one grid step (geometric graphs scale
	// per-interval distances relative to this).
	CellSize float64
	// ShowGrid draws light grid lines.
	ShowGrid bool
}

// DefaultSVGConfig returns the standard style.
func DefaultSVGConfig() SVGConfig { return SVGConfig{CellSize: 14, ShowGrid: true} }

// wireColors cycles across nets in multi-tree drawings.
var wireColors = []string{"#c33", "#38c", "#2a2", "#a3a", "#c80", "#088", "#844", "#666"}

// SVGMulti draws several routed trees (e.g. the nets of a multinet run)
// on one instance, one colour per tree. Nil trees are skipped.
func SVGMulti(w io.Writer, in *layout.Instance, trees []*route.Tree, cfg SVGConfig) error {
	return svgDraw(w, in, trees, cfg)
}

// SVG writes an SVG drawing of the instance and (optionally nil) routed
// tree: one panel per layer, pins as filled circles, obstacles as grey
// squares, tree edges as thick segments, vias as rings on both endpoint
// layers, and Steiner points (any tree vertex of degree >= 3 that is not a
// pin) as diamonds.
func SVG(w io.Writer, in *layout.Instance, tree *route.Tree, cfg SVGConfig) error {
	if tree == nil {
		return svgDraw(w, in, nil, cfg)
	}
	return svgDraw(w, in, []*route.Tree{tree}, cfg)
}

func svgDraw(w io.Writer, in *layout.Instance, trees []*route.Tree, cfg SVGConfig) error {
	if cfg.CellSize <= 0 {
		cfg.CellSize = 14
	}
	g := in.Graph
	xs, ys := axisOffsets(g, cfg.CellSize)
	panelW := xs[len(xs)-1] + cfg.CellSize*2
	panelH := ys[len(ys)-1] + cfg.CellSize*2
	const gap = 12.0
	totalW := panelW*float64(g.M) + gap*float64(g.M-1)
	totalH := panelH + 20

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		totalW, totalH, totalW, totalH)
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	pinSet := in.PinSet()

	px := func(layer int, h int) float64 {
		return float64(layer)*(panelW+gap) + cfg.CellSize + xs[h]
	}
	py := func(v int) float64 {
		// SVG y grows downward; flip so V grows upward.
		return cfg.CellSize + (ys[len(ys)-1] - ys[v]) + 16
	}

	for m := 0; m < g.M; m++ {
		fmt.Fprintf(w, `<text x="%.1f" y="12" font-family="monospace" font-size="11">layer %d</text>`+"\n",
			px(m, 0), m)
		if cfg.ShowGrid {
			for h := 0; h < g.H; h++ {
				fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee" stroke-width="0.5"/>`+"\n",
					px(m, h), py(0), px(m, h), py(g.V-1))
			}
			for v := 0; v < g.V; v++ {
				fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee" stroke-width="0.5"/>`+"\n",
					px(m, 0), py(v), px(m, g.H-1), py(v))
			}
		}
		// Obstacles.
		for h := 0; h < g.H; h++ {
			for v := 0; v < g.V; v++ {
				if g.BlockedCoord(grid.Coord{H: h, V: v, M: m}) {
					s := cfg.CellSize * 0.7
					fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#bbb"/>`+"\n",
						px(m, h)-s/2, py(v)-s/2, s, s)
				}
			}
		}
	}

	// Tree edges and vias, one colour per tree.
	for ti, tree := range trees {
		if tree == nil {
			continue
		}
		color := wireColors[ti%len(wireColors)]
		for _, e := range tree.Edges {
			ca, cb := g.CoordOf(e.A), g.CoordOf(e.B)
			if ca.M == cb.M {
				fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2.2" stroke-linecap="round"/>`+"\n",
					px(ca.M, ca.H), py(ca.V), px(cb.M, cb.H), py(cb.V), color)
			} else {
				for _, c := range []grid.Coord{ca, cb} {
					fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
						px(c.M, c.H), py(c.V), cfg.CellSize*0.32, color)
				}
			}
		}
		// Steiner points: non-pin branch vertices.
		for v, d := range tree.Degrees() {
			if d < 3 {
				continue
			}
			if _, isPin := pinSet[v]; isPin {
				continue
			}
			c := g.CoordOf(v)
			r := cfg.CellSize * 0.33
			fmt.Fprintf(w, `<path d="M %.1f %.1f l %.1f %.1f l %.1f %.1f l %.1f %.1f z" fill="#2a2" opacity="0.9"/>`+"\n",
				px(c.M, c.H), py(c.V)-r, r, r, -r, r, -r, -r)
		}
	}

	// Pins on top.
	for _, p := range in.Pins {
		c := g.CoordOf(p)
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#136"/>`+"\n",
			px(c.M, c.H), py(c.V), cfg.CellSize*0.28)
	}

	_, err := fmt.Fprintln(w, "</svg>")
	return err
}

// axisOffsets returns cumulative pixel offsets per column/row, scaled by
// the graph's per-interval distances (normalised so the mean interval is
// one cell).
func axisOffsets(g *grid.Graph, cell float64) (xs, ys []float64) {
	scale := func(d []float64) []float64 {
		out := make([]float64, len(d)+1)
		if len(d) == 0 {
			return out
		}
		mean := 0.0
		for _, v := range d {
			mean += v
		}
		mean /= float64(len(d))
		if mean <= 0 {
			mean = 1
		}
		for i, v := range d {
			step := cell * v / mean
			if step < cell*0.4 {
				step = cell * 0.4
			}
			if step > cell*3 {
				step = cell * 3
			}
			out[i+1] = out[i] + step
		}
		return out
	}
	return scale(g.DX), scale(g.DY)
}

// ASCII renders the instance and tree as text, one block per layer.
// Symbols: P pin, S kept Steiner point (degree >= 3 non-pin), # obstacle,
// + tree vertex, * via endpoint, . empty.
func ASCII(in *layout.Instance, tree *route.Tree) string {
	g := in.Graph
	pinSet := in.PinSet()
	inTree := map[grid.VertexID]bool{}
	viaEnd := map[grid.VertexID]bool{}
	degrees := map[grid.VertexID]int{}
	if tree != nil {
		degrees = tree.Degrees()
		for _, e := range tree.Edges {
			inTree[e.A] = true
			inTree[e.B] = true
			ca, cb := g.CoordOf(e.A), g.CoordOf(e.B)
			if ca.M != cb.M {
				viaEnd[e.A] = true
				viaEnd[e.B] = true
			}
		}
	}

	var sb strings.Builder
	for m := 0; m < g.M; m++ {
		fmt.Fprintf(&sb, "layer %d:\n", m)
		for v := g.V - 1; v >= 0; v-- {
			for h := 0; h < g.H; h++ {
				id := g.Index(h, v, m)
				ch := byte('.')
				switch {
				case func() bool { _, ok := pinSet[id]; return ok }():
					ch = 'P'
				case g.Blocked(id):
					ch = '#'
				case degrees[id] >= 3:
					ch = 'S'
				case viaEnd[id]:
					ch = '*'
				case inTree[id]:
					ch = '+'
				}
				sb.WriteByte(ch)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
