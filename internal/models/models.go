// Package models embeds the pretrained Steiner-point selector shipped with
// the repository. The model was trained with cmd/oarsmt-train (the
// combinatorial-MCTS pipeline at CPU scale):
//
//	oarsmt-train -stages 8 -hv 8,12 -layers 2 -layouts 3 -alpha 16 \
//	    -base 6 -depth 2 -batch 32 -epochs 2 -lr 2e-3 -seed 1 -curriculum 4
//
// Retrain and overwrite selector.gob to ship a stronger one (`make train`
// runs a longer schedule).
package models

import (
	"bytes"
	_ "embed"
	"sync"

	"oarsmt/internal/selector"
)

//go:embed selector.gob
var selectorGob []byte

var (
	once       sync.Once
	pretrained *selector.Selector
	loadErr    error
)

// Pretrained returns the embedded trained selector. The model is decoded
// once and shared; selectors are not safe for concurrent inference, so
// callers that need parallelism should Load a private copy with New.
func Pretrained() (*selector.Selector, error) {
	once.Do(func() {
		pretrained, loadErr = selector.Load(bytes.NewReader(selectorGob))
	})
	return pretrained, loadErr
}

// New decodes a fresh private copy of the embedded model.
func New() (*selector.Selector, error) {
	return selector.Load(bytes.NewReader(selectorGob))
}
