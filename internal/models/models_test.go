package models

import (
	"testing"

	"oarsmt/internal/grid"
)

func TestPretrainedLoads(t *testing.T) {
	sel, err := Pretrained()
	if err != nil {
		t.Fatal(err)
	}
	if sel.Net.NumParams() == 0 {
		t.Fatal("pretrained model has no parameters")
	}
	// Same instance on repeated calls.
	again, err := Pretrained()
	if err != nil {
		t.Fatal(err)
	}
	if again != sel {
		t.Error("Pretrained should cache the decoded model")
	}
}

func TestPretrainedInference(t *testing.T) {
	sel, err := Pretrained()
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.NewUniform(9, 7, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pins := []grid.VertexID{g.Index(0, 0, 0), g.Index(8, 6, 2), g.Index(4, 3, 1)}
	fsp := sel.FSP(g, pins)
	if len(fsp) != g.NumVertices() {
		t.Fatalf("fsp length %d", len(fsp))
	}
	for _, p := range fsp {
		if p <= 0 || p >= 1 {
			t.Fatalf("fsp %v outside (0,1)", p)
		}
	}
}

func TestNewReturnsPrivateCopy(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("New should decode independent copies")
	}
	a.Net.Params()[0].W.Data[0] = 12345
	if b.Net.Params()[0].W.Data[0] == 12345 {
		t.Error("copies share weight storage")
	}
}
