package mctsconv

import (
	"fmt"
	"math/rand"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
	"oarsmt/internal/tensor"
)

// TrainerConfig parameterises the AlphaGo-like training loop; it mirrors
// the combinatorial trainer's schedule so Fig 11/12's like-for-like
// comparison holds.
type TrainerConfig struct {
	Sizes            []layout.TrainingSize
	LayoutsPerSize   int
	MinPins, MaxPins int
	MCTS             Config
	BatchSize        int
	EpochsPerStage   int
	LR               float64
	Seed             int64
}

func (c TrainerConfig) withDefaults() TrainerConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []layout.TrainingSize{{HV: 8, M: 2}}
	}
	if c.LayoutsPerSize <= 0 {
		c.LayoutsPerSize = 4
	}
	if c.MinPins < 3 {
		c.MinPins = 3
	}
	if c.MaxPins < c.MinPins {
		c.MaxPins = c.MinPins
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.EpochsPerStage <= 0 {
		c.EpochsPerStage = 4
	}
	if c.LR <= 0 {
		c.LR = 3e-3
	}
	return c
}

// StageStats summarises one stage of conventional-MCTS training.
type StageStats struct {
	Stage          int
	Episodes       int
	Samples        int
	MCTSIterations int
	MeanLoss       float64
}

// Trainer drives the conventional-MCTS training loop: per stage it plays
// episodes with the current selector, collects the per-move visit-count
// samples and fits the selector with softmax cross-entropy.
type Trainer struct {
	Cfg      TrainerConfig
	Selector *selector.Selector

	rng   *rand.Rand
	opt   *nn.Adam
	stage int
}

// NewTrainer creates a trainer over the selector.
func NewTrainer(sel *selector.Selector, cfg TrainerConfig) *Trainer {
	cfg = cfg.withDefaults()
	return &Trainer{
		Cfg:      cfg,
		Selector: sel,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		opt:      nn.NewAdam(sel.Net.Params(), cfg.LR),
	}
}

// Stage returns the number of completed stages.
func (t *Trainer) Stage() int { return t.stage }

// GenerateSamples plays the stage's episodes without updating the
// selector; exported for the sample-generation comparison benchmarks.
func (t *Trainer) GenerateSamples() ([]Sample, StageStats, error) {
	stats := StageStats{Stage: t.stage + 1}
	var samples []Sample
	for _, size := range t.Cfg.Sizes {
		spec := layout.TrainingSpec(size, t.Cfg.MinPins, t.Cfg.MaxPins)
		for i := 0; i < t.Cfg.LayoutsPerSize; i++ {
			in, err := layout.Random(t.rng, spec)
			if err != nil {
				return nil, stats, fmt.Errorf("mctsconv: stage %d: %w", t.stage+1, err)
			}
			res, err := Search(t.Selector, in, t.Cfg.MCTS)
			if err != nil {
				return nil, stats, fmt.Errorf("mctsconv: stage %d: %w", t.stage+1, err)
			}
			samples = append(samples, res.Samples...)
			stats.Episodes++
			stats.MCTSIterations += res.Iterations
		}
	}
	stats.Samples = len(samples)
	return samples, stats, nil
}

// RunStage plays one stage and fits the selector on its samples.
func (t *Trainer) RunStage() (StageStats, error) {
	samples, stats, err := t.GenerateSamples()
	if err != nil {
		return stats, err
	}
	if len(samples) == 0 {
		t.stage++
		stats.Stage = t.stage
		return stats, nil
	}
	loss, err := t.Fit(samples)
	if err != nil {
		return stats, err
	}
	stats.MeanLoss = loss
	t.stage++
	stats.Stage = t.stage
	return stats, nil
}

// Fit trains the selector on per-move samples with cross-entropy loss and
// returns the final epoch's mean loss.
func (t *Trainer) Fit(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("mctsconv: no samples to fit")
	}
	var last float64
	idxs := make([]int, len(samples))
	for i := range idxs {
		idxs[i] = i
	}
	for epoch := 0; epoch < t.Cfg.EpochsPerStage; epoch++ {
		t.rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		total, nBatches := 0.0, 0
		for start := 0; start < len(idxs); start += t.Cfg.BatchSize {
			end := start + t.Cfg.BatchSize
			if end > len(idxs) {
				end = len(idxs)
			}
			batchLoss := 0.0
			for _, si := range idxs[start:end] {
				s := samples[si]
				g := s.Instance.Graph
				statePins := append(append([]grid.VertexID(nil), s.Instance.Pins...), s.ExtraPins...)
				logits := t.Selector.Net.Forward(selector.Encode(g, statePins))
				mask := selector.ValidMask(g, statePins)
				loss, gradFlat := nn.CrossEntropyGrad(logits.Data, mask, s.Policy)
				grad := tensor.FromSlice(gradFlat, g.H, g.V, g.M)
				grad.Scale(1 / float64(end-start))
				t.Selector.Net.Backward(grad)
				batchLoss += loss
			}
			t.opt.Step()
			total += batchLoss / float64(end-start)
			nBatches++
		}
		if nBatches > 0 {
			last = total / float64(nBatches)
		}
	}
	return last, nil
}
