// Package mctsconv implements the conventional, AlphaGo-like MCTS trainer
// used as a baseline in the paper's §4.2. It trains the same U-Net agent
// as a *sequential* Steiner-point selector:
//
//   - actions are unordered — any valid vertex may follow any other, so the
//     search tree re-explores permutations of the same point combination
//     (exactly the redundancy the combinatorial MCTS eliminates);
//   - the prior policy is a masked softmax of the selector logits over all
//     valid vertices;
//   - one training sample is generated per *executed move* whose label is
//     the visit-count distribution over the root's children, fitted with
//     softmax cross-entropy — the conventional MCTS labelling scheme.
package mctsconv

import (
	"fmt"
	"math"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/route"
	"oarsmt/internal/selector"
)

// Config parameterises one conventional MCTS episode. Semantics follow
// the combinatorial search's config so the two are comparable like for
// like.
type Config struct {
	Iterations      int
	ScaleIterations bool
	UseCritic       bool
	CPuct           float64
	MaxNoChange     int
}

// BaseVolume matches the combinatorial search's iteration-scaling anchor.
const BaseVolume = 16 * 16 * 4

func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 128
	}
	if c.CPuct == 0 {
		c.CPuct = 1.0
	}
	if c.MaxNoChange <= 0 {
		c.MaxNoChange = 3
	}
	return c
}

// Sample is one per-move training sample: the state (layout plus the
// Steiner points already selected, which the agent sees as pins) and the
// target policy (visit distribution over the next point).
type Sample struct {
	Instance  *layout.Instance
	ExtraPins []grid.VertexID
	Policy    []float64
}

// Result reports one episode.
type Result struct {
	Samples       []Sample
	Executed      []grid.VertexID
	RootCost      float64
	FinalCost     float64
	Iterations    int
	NodesExpanded int
}

type edge struct {
	action grid.VertexID
	p      float64
	n      int
	w      float64
	q      float64
	child  *node
}

type node struct {
	parent    *node
	depth     int
	evaluated bool
	cost      float64
	noChange  int
	terminal  bool
	expanded  bool
	children  []edge
}

// Searcher runs conventional MCTS episodes on one layout.
type Searcher struct {
	cfg    Config
	sel    *selector.Selector
	in     *layout.Instance
	router *route.Router

	root     *node
	state    []grid.VertexID // executed points, in execution order
	rootCost float64

	iterations    int
	nodesExpanded int
}

// NewSearcher prepares an episode; the instance needs at least 3 pins.
func NewSearcher(sel *selector.Selector, in *layout.Instance, cfg Config) (*Searcher, error) {
	if in.NumPins() < 3 {
		return nil, fmt.Errorf("mctsconv: layout %q has %d pins; need >= 3", in.Name, in.NumPins())
	}
	cfg = cfg.withDefaults()
	s := &Searcher{cfg: cfg, sel: sel, in: in, router: route.NewRouter(in.Graph)}
	tree, err := s.router.OARMST(in.Pins)
	if err != nil {
		return nil, fmt.Errorf("mctsconv: root state unroutable: %w", err)
	}
	s.rootCost = tree.Cost
	s.root = &node{evaluated: true, cost: tree.Cost}
	return s, nil
}

func (s *Searcher) alpha() int {
	a := s.cfg.Iterations
	if s.cfg.ScaleIterations {
		scaled := int(math.Round(float64(a) * float64(s.in.Graph.NumVertices()) / float64(BaseVolume)))
		if scaled > a {
			a = scaled
		}
	}
	if a < 1 {
		a = 1
	}
	return a
}

// Run plays one episode and collects the per-move samples.
func (s *Searcher) Run() (*Result, error) {
	res := &Result{RootCost: s.rootCost}
	alpha := s.alpha()
	maxDepth := s.in.NumPins() - 2

	for {
		s.ensureEvaluated(s.root, s.state)
		if s.root.terminal {
			break
		}
		if !s.root.expanded {
			s.expand(s.root, s.state)
		}
		if len(s.root.children) == 0 {
			break
		}
		for i := 0; i < alpha; i++ {
			s.iterate(maxDepth)
		}
		// Emit the per-move sample: visit distribution at the root.
		policy := make([]float64, s.in.Graph.NumVertices())
		total := 0
		for i := range s.root.children {
			total += s.root.children[i].n
		}
		if total == 0 {
			break
		}
		for i := range s.root.children {
			e := &s.root.children[i]
			policy[e.action] = float64(e.n) / float64(total)
		}
		res.Samples = append(res.Samples, Sample{
			Instance:  s.in,
			ExtraPins: append([]grid.VertexID(nil), s.state...),
			Policy:    policy,
		})

		best := s.bestRootAction()
		e := &s.root.children[best]
		if e.child == nil {
			e.child = &node{parent: s.root, depth: s.root.depth + 1}
		}
		s.root = e.child
		s.state = append(s.state, e.action)
		res.Executed = append(res.Executed, e.action)
	}
	s.ensureEvaluated(s.root, s.state)
	res.FinalCost = s.root.cost
	res.Iterations = s.iterations
	res.NodesExpanded = s.nodesExpanded
	return res, nil
}

func (s *Searcher) iterate(maxDepth int) {
	s.iterations++
	cur := s.root
	pathPins := append([]grid.VertexID(nil), s.state...)
	var path []*edge

	for {
		s.ensureEvaluated(cur, pathPins)
		if cur.terminal {
			break
		}
		if !cur.expanded {
			s.expand(cur, pathPins)
			if len(cur.children) == 0 {
				cur.terminal = true
			}
			break
		}
		if len(cur.children) == 0 {
			cur.terminal = true
			break
		}
		ei := s.selectChild(cur)
		e := &cur.children[ei]
		if e.child == nil {
			e.child = &node{parent: cur, depth: cur.depth + 1}
		}
		path = append(path, e)
		pathPins = append(pathPins, e.action)
		cur = e.child
	}

	s.ensureEvaluated(cur, pathPins)
	v := s.leafValue(cur, pathPins, maxDepth)
	for _, e := range path {
		e.n++
		e.w += v
		e.q = e.w / float64(e.n)
	}
}

func (s *Searcher) selectChild(nd *node) int {
	sumN := 0
	for i := range nd.children {
		sumN += nd.children[i].n
	}
	sqrtSum := math.Sqrt(float64(sumN))
	best, bestScore := -1, math.Inf(-1)
	for i := range nd.children {
		e := &nd.children[i]
		score := e.q + s.cfg.CPuct*e.p*sqrtSum/float64(1+e.n)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

func (s *Searcher) ensureEvaluated(nd *node, sps []grid.VertexID) {
	if nd.evaluated {
		return
	}
	nd.evaluated = true
	nd.cost = s.stateCost(sps)
	if nd.depth >= s.in.NumPins()-2 {
		nd.terminal = true
	}
	if nd.parent != nil && nd.parent.evaluated {
		const eps = 1e-9
		switch {
		case nd.cost > nd.parent.cost+eps:
			nd.terminal = true
		case math.Abs(nd.cost-nd.parent.cost) <= eps:
			nd.noChange = nd.parent.noChange + 1
			if nd.noChange >= s.cfg.MaxNoChange {
				nd.terminal = true
			}
		}
	}
}

func (s *Searcher) stateCost(sps []grid.VertexID) float64 {
	terms := make([]grid.VertexID, 0, len(s.in.Pins)+len(sps))
	terms = append(terms, s.in.Pins...)
	terms = append(terms, sps...)
	tree, err := s.router.OARMST(terms)
	if err != nil {
		panic(fmt.Sprintf("mctsconv: state cost: %v", err))
	}
	return tree.Cost
}

// expand creates one child per valid vertex (no priority constraint) with
// priors from the sequential softmax policy.
func (s *Searcher) expand(nd *node, sps []grid.VertexID) {
	if nd.expanded {
		return
	}
	nd.expanded = true
	s.nodesExpanded++
	statePins := append(append([]grid.VertexID(nil), s.in.Pins...), sps...)
	policy := s.sel.PolicySoftmax(s.in.Graph, statePins)
	for id, p := range policy {
		if p > 0 {
			nd.children = append(nd.children, edge{action: grid.VertexID(id), p: p})
		}
	}
}

func (s *Searcher) leafValue(nd *node, sps []grid.VertexID, maxDepth int) float64 {
	c := nd.cost
	if s.cfg.UseCritic && !nd.terminal {
		remaining := maxDepth - nd.depth
		if remaining > 0 {
			statePins := append(append([]grid.VertexID(nil), s.in.Pins...), sps...)
			fsp := s.sel.FSP(s.in.Graph, statePins)
			top := selector.TopK(fsp, selector.ValidMask(s.in.Graph, statePins), remaining)
			all := append(append([]grid.VertexID(nil), sps...), top...)
			c = s.stateCost(all)
		}
	}
	if s.rootCost <= 0 {
		return 0
	}
	return (s.rootCost - c) / s.rootCost
}

func (s *Searcher) bestRootAction() int {
	best, bestN := -1, -1
	for i := range s.root.children {
		if s.root.children[i].n > bestN {
			best, bestN = i, s.root.children[i].n
		}
	}
	return best
}

// Search runs one conventional MCTS episode.
func Search(sel *selector.Selector, in *layout.Instance, cfg Config) (*Result, error) {
	s, err := NewSearcher(sel, in, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
