package mctsconv

import (
	"math"
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

func tinySelector(t *testing.T, seed int64) *selector.Selector {
	t.Helper()
	s, err := selector.NewRandom(rand.New(rand.NewSource(seed)),
		nn.UNetConfig{InChannels: selector.NumFeatures, Base: 2, Depth: 1, Kernel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func smallInstance(t *testing.T, seed int64, pins int) *layout.Instance {
	t.Helper()
	in, err := layout.Random(rand.New(rand.NewSource(seed)), layout.RandomSpec{
		H: 6, V: 6, MinM: 2, MaxM: 2,
		MinPins: pins, MaxPins: pins,
		MinObstacles: 3, MaxObstacles: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func testConfig() Config {
	return Config{Iterations: 16, UseCritic: true, CPuct: 1, MaxNoChange: 3}
}

func TestRejectsTooFewPins(t *testing.T) {
	if _, err := Search(tinySelector(t, 1), smallInstance(t, 2, 2), testConfig()); err == nil {
		t.Error("2-pin layout should be rejected")
	}
}

func TestSearchEmitsPerMoveSamples(t *testing.T) {
	sel := tinySelector(t, 3)
	in := smallInstance(t, 4, 5)
	res, err := Search(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One sample per executed move — the conventional labelling scheme.
	if len(res.Samples) != len(res.Executed) {
		t.Errorf("samples = %d, executed = %d; conventional MCTS labels per move",
			len(res.Samples), len(res.Executed))
	}
	for i, s := range res.Samples {
		if len(s.ExtraPins) != i {
			t.Errorf("sample %d has %d extra pins, want %d", i, len(s.ExtraPins), i)
		}
		sum := 0.0
		for _, p := range s.Policy {
			if p < 0 {
				t.Fatalf("sample %d has negative policy mass", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("sample %d policy sums to %v", i, sum)
		}
		// The executed action must carry positive mass (it had max visits).
		if s.Policy[res.Executed[i]] <= 0 {
			t.Errorf("sample %d: executed action has zero policy", i)
		}
	}
}

func TestSearchNoPriorityConstraint(t *testing.T) {
	// Unlike the combinatorial search, executed actions need not ascend.
	// We can't force a descending pick, but we can check the mechanism:
	// expansion at a deeper node must include vertices below the previous
	// action.
	sel := tinySelector(t, 5)
	in := smallInstance(t, 6, 5)
	s, err := NewSearcher(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.expand(s.root, nil)
	if len(s.root.children) == 0 {
		t.Fatal("root has no children")
	}
	// Pick a high-ID action and expand the child: its children must still
	// include low-ID vertices.
	var hi *edge
	for i := range s.root.children {
		e := &s.root.children[i]
		if hi == nil || e.action > hi.action {
			hi = e
		}
	}
	child := &node{parent: s.root, depth: 1}
	s.expand(child, []grid.VertexID{hi.action})
	foundLower := false
	for i := range child.children {
		if child.children[i].action < hi.action {
			foundLower = true
			break
		}
	}
	if !foundLower {
		t.Error("conventional expansion should allow lower-priority vertices")
	}
}

func TestSearchExpandsMoreNodesThanCombinatorialWouldAllow(t *testing.T) {
	// Sanity: the root expansion covers every valid vertex, which is at
	// least as many actions as the combinatorial search's priority-pruned
	// expansion at any non-root state.
	sel := tinySelector(t, 7)
	in := smallInstance(t, 8, 4)
	s, err := NewSearcher(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.expand(s.root, nil)
	valid := 0
	mask := selector.ValidMask(in.Graph, in.Pins)
	for _, m := range mask {
		if m {
			valid++
		}
	}
	if len(s.root.children) != valid {
		t.Errorf("root children = %d, want all %d valid vertices", len(s.root.children), valid)
	}
}

func TestTrainerRunStage(t *testing.T) {
	sel := tinySelector(t, 9)
	cfg := TrainerConfig{
		Sizes:          []layout.TrainingSize{{HV: 6, M: 2}},
		LayoutsPerSize: 2,
		MinPins:        4, MaxPins: 4,
		MCTS:           testConfig(),
		BatchSize:      8,
		EpochsPerStage: 1,
		LR:             1e-3,
		Seed:           1,
	}
	tr := NewTrainer(sel, cfg)
	before := sel.Net.Params()[0].W.Clone()
	stats, err := tr.RunStage()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Episodes != 2 {
		t.Errorf("episodes = %d", stats.Episodes)
	}
	if stats.Samples == 0 {
		t.Skip("episodes terminated immediately; nothing to fit")
	}
	after := sel.Net.Params()[0].W
	changed := false
	for i := range after.Data {
		if after.Data[i] != before.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("training did not update weights")
	}
	if tr.Stage() != 1 {
		t.Errorf("stage = %d", tr.Stage())
	}
}

func TestFitDecreasesCELoss(t *testing.T) {
	sel := tinySelector(t, 10)
	in := smallInstance(t, 11, 5)
	res, err := Search(sel, in, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Skip("no samples from episode")
	}
	tr := NewTrainer(sel, TrainerConfig{EpochsPerStage: 1, BatchSize: 8, LR: 5e-3, MinPins: 4})
	first, err := tr.Fit(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 15; i++ {
		if last, err = tr.Fit(res.Samples); err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("CE loss did not decrease: %v -> %v", first, last)
	}
}

func TestFitRejectsEmpty(t *testing.T) {
	tr := NewTrainer(tinySelector(t, 12), TrainerConfig{})
	if _, err := tr.Fit(nil); err == nil {
		t.Error("empty fit should fail")
	}
}
