// Package exact computes optimal obstacle-avoiding Steiner tree costs on
// small instances with the Dreyfus-Wagner dynamic program. The paper's
// related work includes exact OARSMT algorithms ([10], [11], GeoSteiner
// [25]); this package plays their role as an optimality reference: it is
// exponential in the terminal count (3^k) but exact, so the experiment
// harness can report the optimality gap of every heuristic router on
// layouts with up to MaxTerminals pins.
//
// Only the optimal cost is produced (tree recovery would add considerable
// bookkeeping and no experiment needs the optimal tree itself).
package exact

import (
	"fmt"
	"math"

	"oarsmt/internal/grid"
)

// MaxTerminals bounds the Dreyfus-Wagner subset enumeration; beyond ~10
// the 3^k subset splits dominate and runtimes explode.
const MaxTerminals = 10

// SteinerMinCost returns the cost of an optimal Steiner tree connecting
// the terminals in the grid graph, avoiding blocked vertices and edges.
// It errors on empty input, more than MaxTerminals terminals, blocked
// terminals, or disconnected terminals.
func SteinerMinCost(g *grid.Graph, terminals []grid.VertexID) (float64, error) {
	terms := dedup(terminals)
	k := len(terms)
	switch {
	case k == 0:
		return 0, fmt.Errorf("exact: no terminals")
	case k == 1:
		if g.Blocked(terms[0]) {
			return 0, fmt.Errorf("exact: terminal %v blocked", g.CoordOf(terms[0]))
		}
		return 0, nil
	case k > MaxTerminals:
		return 0, fmt.Errorf("exact: %d terminals exceeds limit %d", k, MaxTerminals)
	}
	for _, t := range terms {
		if g.Blocked(t) {
			return 0, fmt.Errorf("exact: terminal %v blocked", g.CoordOf(t))
		}
	}

	n := g.NumVertices()
	// dp[S][v]: minimal cost of a tree spanning terminal subset S plus
	// vertex v, where S indexes terms[0..k-2] (the last terminal is the
	// final merge target). Represented as a flat [numSubsets][n] table.
	base := k - 1
	numSubsets := 1 << base
	dp := make([][]float64, numSubsets)
	for s := range dp {
		dp[s] = make([]float64, n)
		for v := range dp[s] {
			dp[s][v] = math.Inf(1)
		}
	}

	// Singleton subsets: dp[{i}][v] = dist(terms[i], v).
	for i := 0; i < base; i++ {
		dist := dijkstraAll(g, terms[i])
		copy(dp[1<<i], dist)
	}

	// Larger subsets in increasing popcount order.
	for s := 1; s < numSubsets; s++ {
		if popcount(s) < 2 {
			continue
		}
		cur := dp[s]
		// Merge step: split S at a common vertex v.
		for sub := (s - 1) & s; sub > 0; sub = (sub - 1) & s {
			if sub < s-sub {
				// Each unordered split visited once.
				continue
			}
			a, b := dp[sub], dp[s-sub]
			for v := 0; v < n; v++ {
				if c := a[v] + b[v]; c < cur[v] {
					cur[v] = c
				}
			}
		}
		// Propagation step: Dijkstra relaxation of the whole dp row.
		dijkstraRelax(g, cur)
	}

	full := numSubsets - 1
	best := math.Inf(1)
	if base == 0 {
		best = 0
	} else {
		best = dp[full][terms[base]]
	}
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("exact: terminals are disconnected")
	}
	return best, nil
}

// dijkstraAll returns the shortest-path distance from src to every vertex
// (infinity where unreachable).
func dijkstraAll(g *grid.Graph, src grid.VertexID) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &costHeap{{0, src}}
	var buf []grid.Neighbor
	for len(*h) > 0 {
		p := h.pop()
		if p.d > dist[p.id] {
			continue
		}
		buf = g.Neighbors(p.id, buf[:0])
		for _, nb := range buf {
			if nd := p.d + nb.Cost; nd < dist[nb.ID] {
				dist[nb.ID] = nd
				h.push(costEntry{nd, nb.ID})
			}
		}
	}
	return dist
}

// dijkstraRelax runs a multi-source Dijkstra where every vertex starts at
// its current dp value, updating the slice in place to the point-wise
// minimum of dp[u] + dist(u, v).
func dijkstraRelax(g *grid.Graph, dp []float64) {
	h := &costHeap{}
	for v, d := range dp {
		if !math.IsInf(d, 1) && !g.Blocked(grid.VertexID(v)) {
			h.push(costEntry{d, grid.VertexID(v)})
		}
	}
	var buf []grid.Neighbor
	for len(*h) > 0 {
		p := h.pop()
		if p.d > dp[p.id] {
			continue
		}
		buf = g.Neighbors(p.id, buf[:0])
		for _, nb := range buf {
			if nd := p.d + nb.Cost; nd < dp[nb.ID] {
				dp[nb.ID] = nd
				h.push(costEntry{nd, nb.ID})
			}
		}
	}
}

type costEntry struct {
	d  float64
	id grid.VertexID
}

type costHeap []costEntry

func (h costHeap) less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].id < h[j].id
}

func (h *costHeap) push(e costEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h).less(parent, i) {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *costHeap) pop() costEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func dedup(vs []grid.VertexID) []grid.VertexID {
	seen := map[grid.VertexID]struct{}{}
	out := make([]grid.VertexID, 0, len(vs))
	for _, v := range vs {
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}
