package exact

import (
	"math/rand"
	"testing"

	"oarsmt/internal/grid"
	"oarsmt/internal/layout"
	"oarsmt/internal/route"
)

func uniformGrid(t *testing.T, h, v, m int) *grid.Graph {
	t.Helper()
	g, err := grid.NewUniform(h, v, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTwoTerminalsIsShortestPath(t *testing.T) {
	g := uniformGrid(t, 6, 6, 2)
	g.Block(g.Index(2, 2, 0))
	a, b := g.Index(0, 0, 0), g.Index(5, 5, 1)
	got, err := SteinerMinCost(g, []grid.VertexID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	r := route.NewRouter(g)
	_, want, ok := r.ShortestPath(a, b)
	if !ok {
		t.Fatal("no path")
	}
	if got != want {
		t.Errorf("exact = %v, shortest path = %v", got, want)
	}
}

func TestThreePinTee(t *testing.T) {
	// The T configuration from the route tests: optimal cost is 9 on a
	// unit grid (trunk 6 plus branch 3).
	g, err := grid.NewUniform(7, 7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	terms := []grid.VertexID{g.Index(0, 3, 0), g.Index(6, 3, 0), g.Index(3, 0, 0)}
	got, err := SteinerMinCost(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("exact T cost = %v, want 9", got)
	}
}

func TestFourCornerPlus(t *testing.T) {
	// Plus configuration: four pins at arm tips; the optimal tree meets
	// at the centre with cost 16.
	g, err := grid.NewUniform(9, 9, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	terms := []grid.VertexID{
		g.Index(4, 0, 0), g.Index(4, 8, 0), g.Index(0, 4, 0), g.Index(8, 4, 0),
	}
	got, err := SteinerMinCost(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Errorf("exact plus cost = %v, want 16", got)
	}
}

func TestObstacleForcesDetour(t *testing.T) {
	g, err := grid.NewUniform(5, 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		g.Block(g.Index(2, v, 0))
	}
	terms := []grid.VertexID{g.Index(0, 0, 0), g.Index(4, 0, 0)}
	got, err := SteinerMinCost(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Errorf("exact detour cost = %v, want 12", got)
	}
}

func TestEdgeCases(t *testing.T) {
	g := uniformGrid(t, 4, 4, 1)
	if _, err := SteinerMinCost(g, nil); err == nil {
		t.Error("no terminals should fail")
	}
	if c, err := SteinerMinCost(g, []grid.VertexID{5}); err != nil || c != 0 {
		t.Errorf("single terminal = %v, %v", c, err)
	}
	// Duplicates collapse.
	if c, err := SteinerMinCost(g, []grid.VertexID{5, 5, 5}); err != nil || c != 0 {
		t.Errorf("duplicate single terminal = %v, %v", c, err)
	}
	g.Block(g.Index(1, 1, 0))
	if _, err := SteinerMinCost(g, []grid.VertexID{g.Index(1, 1, 0), 0}); err == nil {
		t.Error("blocked terminal should fail")
	}
	// Too many terminals.
	many := make([]grid.VertexID, MaxTerminals+1)
	for i := range many {
		many[i] = grid.VertexID(i)
	}
	big := uniformGrid(t, 6, 6, 1)
	if _, err := SteinerMinCost(big, many); err == nil {
		t.Error("terminal limit should be enforced")
	}
}

func TestDisconnectedTerminals(t *testing.T) {
	g := uniformGrid(t, 3, 3, 1)
	g.Block(g.Index(1, 0, 0))
	g.Block(g.Index(0, 1, 0))
	g.Block(g.Index(1, 1, 0))
	_, err := SteinerMinCost(g, []grid.VertexID{g.Index(0, 0, 0), g.Index(2, 2, 0)})
	if err == nil {
		t.Error("disconnected terminals should fail")
	}
}

// TestOARMSTNeverBeatsExact is the key cross-module property: every
// heuristic tree must cost at least the Dreyfus-Wagner optimum, and the
// heuristic should be within a reasonable factor on small layouts.
func TestOARMSTNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		in, err := layout.Random(rng, layout.RandomSpec{
			H: 7, V: 7, MinM: 1, MaxM: 2,
			MinPins: 3, MaxPins: 5,
			MinObstacles: 3, MaxObstacles: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SteinerMinCost(in.Graph, in.Pins)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := route.NewRouter(in.Graph)
		tree, err := r.OARMST(in.Pins)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tree.Cost < opt-1e-9 {
			t.Errorf("trial %d: heuristic %v beats optimum %v (impossible)", trial, tree.Cost, opt)
		}
		if tree.Cost > 2*opt+1e-9 {
			t.Errorf("trial %d: heuristic %v worse than 2x optimum %v (MST bound violated)", trial, tree.Cost, opt)
		}
		// Retracing must stay within the same bounds.
		after, _ := r.Retrace(tree, in.Pins, 3)
		if after.Cost < opt-1e-9 {
			t.Errorf("trial %d: retraced %v beats optimum %v", trial, after.Cost, opt)
		}
	}
}

func TestExactMatchesBruteForceSingleSteiner(t *testing.T) {
	// On a small graph with 3 terminals, the optimum equals the best
	// 1-Steiner-point OARMST found by brute force (3 terminals need at
	// most 1 Steiner point).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5; trial++ {
		in, err := layout.Random(rng, layout.RandomSpec{
			H: 6, V: 6, MinM: 1, MaxM: 1,
			MinPins: 3, MaxPins: 3,
			MinObstacles: 2, MaxObstacles: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SteinerMinCost(in.Graph, in.Pins)
		if err != nil {
			t.Fatal(err)
		}
		r := route.NewRouter(in.Graph)
		best, err := r.OARMST(in.Pins)
		if err != nil {
			t.Fatal(err)
		}
		bestCost := best.Cost
		for id := 0; id < in.Graph.NumVertices(); id++ {
			v := grid.VertexID(id)
			if in.Graph.Blocked(v) {
				continue
			}
			terms := append(append([]grid.VertexID(nil), in.Pins...), v)
			tr, err := r.OARMST(terms)
			if err != nil {
				continue
			}
			if tr.Cost < bestCost {
				bestCost = tr.Cost
			}
		}
		// Brute force over single extra terminals can still miss the true
		// optimum when maze-Prim routes suboptimally, so only one
		// direction is guaranteed.
		if bestCost < opt-1e-9 {
			t.Errorf("trial %d: brute force %v below optimum %v", trial, bestCost, opt)
		}
	}
}
