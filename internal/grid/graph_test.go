package grid

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, 1, nil, []float64{1, 1}, 1); err == nil {
		t.Error("zero H should fail")
	}
	if _, err := New(3, 3, 1, []float64{1}, []float64{1, 1}, 1); err == nil {
		t.Error("short dx should fail")
	}
	if _, err := New(3, 3, 1, []float64{1, -1}, []float64{1, 1}, 1); err == nil {
		t.Error("negative cost should fail")
	}
	if _, err := New(3, 3, 1, []float64{1, 1}, []float64{1, 1}, 0); err == nil {
		t.Error("zero via cost should fail")
	}
	if _, err := New(2, 2, 2, []float64{5}, []float64{7}, 3); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func TestIndexRoundTripAndOrder(t *testing.T) {
	g, err := NewUniform(4, 5, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := VertexID(-1)
	for h := 0; h < g.H; h++ {
		for v := 0; v < g.V; v++ {
			for m := 0; m < g.M; m++ {
				id := g.Index(h, v, m)
				if id != prev+1 {
					t.Fatalf("Index(%d,%d,%d) = %d, want %d (lexicographic order broken)",
						h, v, m, id, prev+1)
				}
				prev = id
				c := g.CoordOf(id)
				if c.H != h || c.V != v || c.M != m {
					t.Fatalf("CoordOf(Index(%d,%d,%d)) = %v", h, v, m, c)
				}
			}
		}
	}
}

func TestCoordLessMatchesIndexOrder(t *testing.T) {
	g, _ := NewUniform(3, 4, 2, 1)
	f := func(a, b uint8) bool {
		ia := VertexID(int(a) % g.NumVertices())
		ib := VertexID(int(b) % g.NumVertices())
		return g.CoordOf(ia).Less(g.CoordOf(ib)) == (ia < ib)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighbors(t *testing.T) {
	g, _ := New(3, 3, 2, []float64{10, 20}, []float64{30, 40}, 5)
	// Center of layer 0.
	nb := g.Neighbors(g.Index(1, 1, 0), nil)
	if len(nb) != 5 {
		t.Fatalf("center vertex neighbours = %d, want 5", len(nb))
	}
	costs := map[VertexID]float64{}
	for _, n := range nb {
		costs[n.ID] = n.Cost
	}
	checks := []struct {
		c    Coord
		cost float64
	}{
		{Coord{0, 1, 0}, 10},
		{Coord{2, 1, 0}, 20},
		{Coord{1, 0, 0}, 30},
		{Coord{1, 2, 0}, 40},
		{Coord{1, 1, 1}, 5},
	}
	for _, ch := range checks {
		if got, ok := costs[g.IndexOf(ch.c)]; !ok || got != ch.cost {
			t.Errorf("neighbour %v: cost %v (present=%v), want %v", ch.c, got, ok, ch.cost)
		}
	}
	// Corner vertex has 3 neighbours in a 3x3x2 grid.
	if nb := g.Neighbors(g.Index(0, 0, 0), nil); len(nb) != 3 {
		t.Errorf("corner neighbours = %d, want 3", len(nb))
	}
}

func TestNeighborsSkipBlocked(t *testing.T) {
	g, _ := NewUniform(3, 3, 1, 1)
	g.Block(g.Index(1, 0, 0))
	nb := g.Neighbors(g.Index(0, 0, 0), nil)
	if len(nb) != 1 {
		t.Fatalf("neighbours = %d, want 1 (one blocked)", len(nb))
	}
	if nb[0].ID != g.Index(0, 1, 0) {
		t.Errorf("unexpected neighbour %v", g.CoordOf(nb[0].ID))
	}
}

func TestEdgeBlocking(t *testing.T) {
	g, _ := NewUniform(3, 3, 2, 1)
	if g.EdgeXBlocked(0, 0, 0) {
		t.Error("fresh edge should be open")
	}
	g.BlockEdgeX(0, 0, 0)
	if !g.EdgeXBlocked(0, 0, 0) {
		t.Error("explicitly blocked X edge not reported")
	}
	if g.EdgeXBlocked(1, 0, 0) {
		t.Error("adjacent edge wrongly blocked")
	}
	g.BlockEdgeY(2, 1, 1)
	if !g.EdgeYBlocked(2, 1, 1) {
		t.Error("explicitly blocked Y edge not reported")
	}
	// Blocking a vertex blocks its incident edges implicitly.
	g.Block(g.Index(1, 1, 0))
	if !g.EdgeXBlocked(0, 1, 0) || !g.EdgeXBlocked(1, 1, 0) ||
		!g.EdgeYBlocked(1, 0, 0) || !g.EdgeYBlocked(1, 1, 0) ||
		!g.EdgeZBlocked(1, 1, 0) {
		t.Error("edges incident to a blocked vertex must be blocked")
	}
}

func TestEdgeCost(t *testing.T) {
	g, _ := New(3, 3, 2, []float64{10, 20}, []float64{30, 40}, 5)
	a := g.Index(1, 1, 0)
	if c := g.EdgeCost(a, g.Index(2, 1, 0)); c != 20 {
		t.Errorf("x edge cost = %v, want 20", c)
	}
	if c := g.EdgeCost(a, g.Index(0, 1, 0)); c != 10 {
		t.Errorf("reverse x edge cost = %v, want 10", c)
	}
	if c := g.EdgeCost(a, g.Index(1, 0, 0)); c != 30 {
		t.Errorf("y edge cost = %v, want 30", c)
	}
	if c := g.EdgeCost(a, g.Index(1, 1, 1)); c != 5 {
		t.Errorf("via cost = %v, want 5", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-adjacent EdgeCost should panic")
		}
	}()
	g.EdgeCost(a, g.Index(2, 2, 1))
}

func TestMaxEdgeCost(t *testing.T) {
	g, _ := New(3, 2, 1, []float64{10, 999}, []float64{30}, 5)
	if got := g.MaxEdgeCost(); got != 999 {
		t.Errorf("MaxEdgeCost = %v, want 999", got)
	}
	g2, _ := New(2, 2, 1, []float64{1}, []float64{1}, 77)
	if got := g2.MaxEdgeCost(); got != 77 {
		t.Errorf("MaxEdgeCost dominated by via = %v, want 77", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, _ := NewUniform(3, 3, 2, 1)
	g.Block(g.Index(1, 1, 0))
	g.BlockEdgeX(0, 0, 0)
	c := g.Clone()
	c.Block(c.Index(2, 2, 1))
	c.BlockEdgeY(0, 0, 0)
	c.DX[0] = 99
	if g.Blocked(g.Index(2, 2, 1)) {
		t.Error("clone vertex blocking leaked into original")
	}
	if g.EdgeYBlocked(0, 0, 0) {
		t.Error("clone edge blocking leaked into original")
	}
	if g.DX[0] == 99 {
		t.Error("clone cost mutation leaked into original")
	}
	if !c.Blocked(c.Index(1, 1, 0)) || !c.EdgeXBlocked(0, 0, 0) {
		t.Error("clone lost original blocking state")
	}
}

func TestObstacleAreaRatio(t *testing.T) {
	g, _ := NewUniform(2, 2, 2, 1)
	g.Block(0)
	g.Block(1)
	if got := g.ObstacleAreaRatio(); got != 0.25 {
		t.Errorf("ObstacleAreaRatio = %v, want 0.25", got)
	}
}
