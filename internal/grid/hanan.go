package grid

import (
	"fmt"
	"sort"

	"oarsmt/internal/geom"
)

// FromObjects builds the 3-D Hanan grid graph of a geometric layout
// (paper §2.2): all pins and obstacle boundaries are consolidated onto a
// single layer, horizontal and vertical cuts are created at every pin
// coordinate and obstacle boundary, and each object is then relocated onto
// the resulting grid on its original layer.
//
// The returned pin slice holds, for each input pin in order, the VertexID
// of the Hanan vertex it landed on.
//
// Obstacle semantics: a vertex strictly inside an obstacle is blocked, and
// an edge whose interior crosses an obstacle interior is blocked. Routing
// along an obstacle boundary remains legal, matching the rectilinear
// blockage model of the OARSMT literature.
//
// Errors are returned for layouts with no pins, pins outside the layer
// range, duplicated pin positions, or pins strictly inside an obstacle.
func FromObjects(pins []geom.Point, obstacles []geom.Rect, layers int, viaCost float64) (*Graph, []VertexID, error) {
	if len(pins) == 0 {
		return nil, nil, fmt.Errorf("grid: layout has no pins")
	}
	if layers < 1 {
		return nil, nil, fmt.Errorf("grid: layer count %d < 1", layers)
	}

	xs := make([]int, 0, len(pins)+2*len(obstacles))
	ys := make([]int, 0, len(pins)+2*len(obstacles))
	for i, p := range pins {
		if p.Layer < 0 || p.Layer >= layers {
			return nil, nil, fmt.Errorf("grid: pin %d layer %d outside [0,%d)", i, p.Layer, layers)
		}
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	for i, r := range obstacles {
		if !r.Valid() {
			return nil, nil, fmt.Errorf("grid: obstacle %d invalid: %v", i, r)
		}
		if r.Layer < 0 || r.Layer >= layers {
			return nil, nil, fmt.Errorf("grid: obstacle %d layer %d outside [0,%d)", i, r.Layer, layers)
		}
		xs = append(xs, r.X1, r.X2)
		ys = append(ys, r.Y1, r.Y2)
	}
	xs = sortedUnique(xs)
	ys = sortedUnique(ys)

	h, v := len(xs), len(ys)
	dx := make([]float64, h-1)
	for i := range dx {
		dx[i] = float64(xs[i+1] - xs[i])
	}
	dy := make([]float64, v-1)
	for i := range dy {
		dy[i] = float64(ys[i+1] - ys[i])
	}
	g, err := New(h, v, layers, dx, dy, viaCost)
	if err != nil {
		return nil, nil, err
	}
	g.XCoord = xs
	g.YCoord = ys

	for _, r := range obstacles {
		g.applyObstacle(r)
	}

	ids := make([]VertexID, len(pins))
	seen := make(map[VertexID]int, len(pins))
	for i, p := range pins {
		hi := sort.SearchInts(xs, p.X)
		vi := sort.SearchInts(ys, p.Y)
		id := g.Index(hi, vi, p.Layer)
		if g.Blocked(id) {
			return nil, nil, fmt.Errorf("grid: pin %d at %v lies inside an obstacle", i, p)
		}
		if j, dup := seen[id]; dup {
			return nil, nil, fmt.Errorf("grid: pins %d and %d share position %v", j, i, p)
		}
		seen[id] = i
		ids[i] = id
	}
	return g, ids, nil
}

// applyObstacle blocks the vertices strictly inside r and the edges whose
// interior crosses r's interior.
func (g *Graph) applyObstacle(r geom.Rect) {
	m := r.Layer
	// Index ranges of strictly interior grid lines.
	hLo := sort.SearchInts(g.XCoord, r.X1+1)
	hHi := sort.SearchInts(g.XCoord, r.X2) // first index with x >= X2
	vLo := sort.SearchInts(g.YCoord, r.Y1+1)
	vHi := sort.SearchInts(g.YCoord, r.Y2)

	for h := hLo; h < hHi; h++ {
		for v := vLo; v < vHi; v++ {
			g.Block(g.Index(h, v, m))
		}
	}

	// X-oriented edges at strictly interior rows crossing the obstacle:
	// the open interval (XCoord[h], XCoord[h+1]) must overlap (X1, X2).
	for v := vLo; v < vHi; v++ {
		for h := 0; h < g.H-1; h++ {
			if g.XCoord[h] < r.X2 && g.XCoord[h+1] > r.X1 {
				g.BlockEdgeX(h, v, m)
			}
		}
	}
	// Y-oriented edges at strictly interior columns.
	for h := hLo; h < hHi; h++ {
		for v := 0; v < g.V-1; v++ {
			if g.YCoord[v] < r.Y2 && g.YCoord[v+1] > r.Y1 {
				g.BlockEdgeY(h, v, m)
			}
		}
	}
}

// PointOf returns the original-space location of a vertex for graphs built
// by FromObjects. For directly generated grids it returns the grid
// coordinate itself.
func (g *Graph) PointOf(id VertexID) geom.Point {
	c := g.CoordOf(id)
	if g.XCoord == nil || g.YCoord == nil {
		return geom.Point{X: c.H, Y: c.V, Layer: c.M}
	}
	return geom.Point{X: g.XCoord[c.H], Y: g.YCoord[c.V], Layer: c.M}
}

func sortedUnique(a []int) []int {
	sort.Ints(a)
	out := a[:0]
	for i, x := range a {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return append([]int(nil), out...)
}
