package grid

import (
	"math/rand"
	"testing"

	"oarsmt/internal/geom"
)

// TestFromObjectsFig1 mirrors the paper's Fig 1: a uniform 9x9 layout whose
// pins and obstacles induce a smaller Hanan grid. We check that cut lines
// appear exactly at pin coordinates and obstacle boundaries.
func TestFromObjectsFig1(t *testing.T) {
	pins := []geom.Point{
		{X: 1, Y: 7, Layer: 0},
		{X: 4, Y: 2, Layer: 0},
		{X: 8, Y: 5, Layer: 0},
	}
	obstacles := []geom.Rect{
		geom.NewRect(2, 4, 5, 6, 0),
	}
	g, ids, err := FromObjects(pins, obstacles, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantX := []int{1, 2, 4, 5, 8}
	wantY := []int{2, 4, 5, 6, 7}
	if !equalInts(g.XCoord, wantX) {
		t.Errorf("XCoord = %v, want %v", g.XCoord, wantX)
	}
	if !equalInts(g.YCoord, wantY) {
		t.Errorf("YCoord = %v, want %v", g.YCoord, wantY)
	}
	if g.H != 5 || g.V != 5 || g.M != 1 {
		t.Errorf("dims = %dx%dx%d", g.H, g.V, g.M)
	}
	// Edge costs are the geometric distances between cut lines.
	wantDX := []float64{1, 2, 1, 3}
	for i, d := range wantDX {
		if g.DX[i] != d {
			t.Errorf("DX[%d] = %v, want %v", i, g.DX[i], d)
		}
	}
	// Pin 0 is at x=1 (column 0), y=7 (row 4).
	if c := g.CoordOf(ids[0]); c != (Coord{0, 4, 0}) {
		t.Errorf("pin 0 coord = %v", c)
	}
	if c := g.CoordOf(ids[1]); c != (Coord{2, 0, 0}) {
		t.Errorf("pin 1 coord = %v", c)
	}
	// The vertex at x=4, y=5 is strictly inside the obstacle: blocked.
	if !g.BlockedCoord(Coord{2, 2, 0}) {
		t.Error("vertex strictly inside obstacle should be blocked")
	}
	// Obstacle corner (x=2, y=4) is on the boundary: open.
	if g.BlockedCoord(Coord{1, 1, 0}) {
		t.Error("vertex on obstacle boundary should be open")
	}
}

func TestFromObjectsEdgeBlocking(t *testing.T) {
	// Obstacle [0,10]x[0,10]; a pin row at y=5 crosses its interior. The
	// edge between the obstacle's left and right boundary columns at y=5
	// spans the interior and must be blocked even though both endpoint
	// vertices (on the boundary) are open.
	pins := []geom.Point{
		{X: -5, Y: 5, Layer: 0},
		{X: 15, Y: 5, Layer: 0},
	}
	obstacles := []geom.Rect{geom.NewRect(0, 0, 10, 10, 0)}
	g, ids, err := FromObjects(pins, obstacles, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// X lines: -5, 0, 10, 15. Y lines: 0, 5, 10.
	if g.H != 4 || g.V != 3 {
		t.Fatalf("dims = %dx%d", g.H, g.V)
	}
	// Boundary vertices open.
	if g.BlockedCoord(Coord{1, 1, 0}) || g.BlockedCoord(Coord{2, 1, 0}) {
		t.Error("boundary vertices should be open")
	}
	// Edge between columns 1 and 2 at row 1 (y=5) crosses the interior.
	if !g.EdgeXBlocked(1, 1, 0) {
		t.Error("edge crossing obstacle interior must be blocked")
	}
	// Edges along the boundary rows are open.
	if g.EdgeXBlocked(1, 0, 0) || g.EdgeXBlocked(1, 2, 0) {
		t.Error("edges along obstacle boundary should be open")
	}
	_ = ids
}

func TestFromObjectsMultiLayer(t *testing.T) {
	pins := []geom.Point{
		{X: 0, Y: 0, Layer: 0},
		{X: 4, Y: 4, Layer: 2},
	}
	obstacles := []geom.Rect{geom.NewRect(1, 1, 3, 3, 1)}
	g, ids, err := FromObjects(pins, obstacles, 3, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.M != 3 {
		t.Fatalf("M = %d", g.M)
	}
	if g.CoordOf(ids[1]).M != 2 {
		t.Error("pin layer lost")
	}
	// Obstacle only blocks layer 1. X lines: 0,1,3,4. Vertex x=? strictly
	// inside needs 1<x<3: none of the cut lines are, so no blocked vertex,
	// but the edge between columns 1 and 2 at an interior row... Y lines:
	// 0,1,3,4; no strictly interior row either. Interior-crossing edges:
	// none at vertex level, but cell (1..3)x(1..3) edges: X edge between
	// col1(x=1) and col2(x=3) at row v with y strictly inside (none).
	if g.NumBlocked() != 0 {
		t.Errorf("blocked = %d, want 0", g.NumBlocked())
	}
	// Via through the obstacle layer at a free vertex stays open.
	if g.EdgeZBlocked(0, 0, 0) {
		t.Error("via at free location should be open")
	}
}

func TestFromObjectsErrors(t *testing.T) {
	if _, _, err := FromObjects(nil, nil, 1, 1); err == nil {
		t.Error("no pins should fail")
	}
	p := []geom.Point{{X: 0, Y: 0, Layer: 0}}
	if _, _, err := FromObjects(p, nil, 0, 1); err == nil {
		t.Error("zero layers should fail")
	}
	bad := []geom.Point{{X: 0, Y: 0, Layer: 5}}
	if _, _, err := FromObjects(bad, nil, 2, 1); err == nil {
		t.Error("pin layer out of range should fail")
	}
	dup := []geom.Point{{X: 0, Y: 0, Layer: 0}, {X: 0, Y: 0, Layer: 0}, {X: 1, Y: 1, Layer: 0}}
	if _, _, err := FromObjects(dup, nil, 1, 1); err == nil {
		t.Error("duplicate pins should fail")
	}
	// Pin strictly inside an obstacle.
	inside := []geom.Point{{X: 5, Y: 5, Layer: 0}, {X: 20, Y: 20, Layer: 0}}
	obs := []geom.Rect{geom.NewRect(0, 0, 10, 10, 0)}
	if _, _, err := FromObjects(inside, obs, 1, 1); err == nil {
		t.Error("pin inside obstacle should fail")
	}
	// Obstacle layer out of range.
	obs2 := []geom.Rect{geom.NewRect(0, 0, 1, 1, 7)}
	pts := []geom.Point{{X: 0, Y: 0, Layer: 0}, {X: 3, Y: 3, Layer: 0}}
	if _, _, err := FromObjects(pts, obs2, 2, 1); err == nil {
		t.Error("obstacle layer out of range should fail")
	}
}

func TestPointOf(t *testing.T) {
	pins := []geom.Point{{X: 3, Y: 9, Layer: 1}, {X: 7, Y: 2, Layer: 0}}
	g, ids, err := FromObjects(pins, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.PointOf(ids[0]); got != pins[0] {
		t.Errorf("PointOf = %v, want %v", got, pins[0])
	}
	// Direct grids report grid coordinates.
	d, _ := NewUniform(3, 3, 2, 1)
	if got := d.PointOf(d.Index(2, 1, 1)); got != (geom.Point{X: 2, Y: 1, Layer: 1}) {
		t.Errorf("direct PointOf = %v", got)
	}
}

// TestFromObjectsRandomProperties checks the Hanan construction on random
// geometric layouts: every pin lands on a vertex with its exact original
// coordinates, cut lines exist for every pin and obstacle boundary, and
// edge costs equal the geometric gaps between adjacent cut lines.
func TestFromObjectsRandomProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		layers := 1 + rng.Intn(3)
		nPins := 2 + rng.Intn(5)
		var pins []geom.Point
		used := map[[3]int]bool{}
		for len(pins) < nPins {
			p := geom.Point{X: rng.Intn(50), Y: rng.Intn(50), Layer: rng.Intn(layers)}
			k := [3]int{p.X, p.Y, p.Layer}
			if used[k] {
				continue
			}
			used[k] = true
			pins = append(pins, p)
		}
		var obs []geom.Rect
		for i := 0; i < rng.Intn(4); i++ {
			x, y := rng.Intn(40), rng.Intn(40)
			obs = append(obs, geom.NewRect(x, y, x+1+rng.Intn(8), y+1+rng.Intn(8), rng.Intn(layers)))
		}
		g, ids, err := FromObjects(pins, obs, layers, 1+rng.Float64()*4)
		if err != nil {
			// Pins inside obstacles are a legitimate rejection.
			continue
		}
		for i, p := range pins {
			if got := g.PointOf(ids[i]); got != p {
				t.Fatalf("trial %d: pin %d mapped to %v, want %v", trial, i, got, p)
			}
		}
		for i := 0; i < g.H-1; i++ {
			if g.DX[i] != float64(g.XCoord[i+1]-g.XCoord[i]) {
				t.Fatalf("trial %d: DX[%d] != coordinate gap", trial, i)
			}
		}
		for i := 0; i < g.V-1; i++ {
			if g.DY[i] != float64(g.YCoord[i+1]-g.YCoord[i]) {
				t.Fatalf("trial %d: DY[%d] != coordinate gap", trial, i)
			}
		}
		// Every obstacle boundary must be a cut line.
		for _, r := range obs {
			for _, x := range []int{r.X1, r.X2} {
				if !containsInt(g.XCoord, x) {
					t.Fatalf("trial %d: missing x cut at %d", trial, x)
				}
			}
			for _, y := range []int{r.Y1, r.Y2} {
				if !containsInt(g.YCoord, y) {
					t.Fatalf("trial %d: missing y cut at %d", trial, y)
				}
			}
		}
	}
}

func containsInt(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}

func TestSortedUnique(t *testing.T) {
	got := sortedUnique([]int{5, 1, 5, 3, 1, 1})
	if !equalInts(got, []int{1, 3, 5}) {
		t.Errorf("sortedUnique = %v", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
