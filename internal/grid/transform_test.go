package grid

import (
	"math/rand"
	"testing"
)

func randomGraph(r *rand.Rand, h, v, m int) *Graph {
	dx := make([]float64, h-1)
	for i := range dx {
		dx[i] = 1 + r.Float64()*9
	}
	dy := make([]float64, v-1)
	for i := range dy {
		dy[i] = 1 + r.Float64()*9
	}
	g := MustNew(h, v, m, dx, dy, 1+r.Float64()*4)
	for i := 0; i < g.NumVertices()/5; i++ {
		g.Block(VertexID(r.Intn(g.NumVertices())))
	}
	// A few explicit edge blocks.
	for i := 0; i < 3; i++ {
		if h > 1 {
			g.BlockEdgeX(r.Intn(h-1), r.Intn(v), r.Intn(m))
		}
		if v > 1 {
			g.BlockEdgeY(r.Intn(h), r.Intn(v-1), r.Intn(m))
		}
	}
	return g
}

func graphsEqual(a, b *Graph) bool {
	if a.H != b.H || a.V != b.V || a.M != b.M || a.ViaCost != b.ViaCost {
		return false
	}
	for i := range a.DX {
		if a.DX[i] != b.DX[i] {
			return false
		}
	}
	for i := range a.DY {
		if a.DY[i] != b.DY[i] {
			return false
		}
	}
	for id := 0; id < a.NumVertices(); id++ {
		if a.Blocked(VertexID(id)) != b.Blocked(VertexID(id)) {
			return false
		}
	}
	for h := 0; h < a.H-1; h++ {
		for v := 0; v < a.V; v++ {
			for m := 0; m < a.M; m++ {
				if a.EdgeXBlocked(h, v, m) != b.EdgeXBlocked(h, v, m) {
					return false
				}
			}
		}
	}
	for h := 0; h < a.H; h++ {
		for v := 0; v < a.V-1; v++ {
			for m := 0; m < a.M; m++ {
				if a.EdgeYBlocked(h, v, m) != b.EdgeYBlocked(h, v, m) {
					return false
				}
			}
		}
	}
	return true
}

func TestRotate90FourTimesIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := randomGraph(r, 5, 4, 3)
	out := g
	for i := 0; i < 4; i++ {
		out = Rotate90(out)
	}
	if !graphsEqual(g, out) {
		t.Error("four 90-degree rotations should be the identity")
	}
}

func TestRotate90SwapsDims(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := randomGraph(r, 6, 3, 2)
	out := Rotate90(g)
	if out.H != 3 || out.V != 6 {
		t.Fatalf("rotated dims = %dx%d, want 3x6", out.H, out.V)
	}
	// Vertex (h, v) moves to (V-1-v, h).
	g2, _ := NewUniform(6, 3, 2, 1)
	g2.Block(g2.Index(4, 1, 1))
	r2 := Rotate90(g2)
	if !r2.Blocked(r2.Index(3-1-1, 4, 1)) {
		t.Error("rotation moved blocked vertex to the wrong place")
	}
	if r2.NumBlocked() != 1 {
		t.Errorf("rotation changed blocked count: %d", r2.NumBlocked())
	}
}

func TestMirrorTwiceIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomGraph(r, 4, 5, 3)
	if !graphsEqual(g, MirrorH(MirrorH(g))) {
		t.Error("MirrorH twice should be identity")
	}
	if !graphsEqual(g, MirrorZ(MirrorZ(g))) {
		t.Error("MirrorZ twice should be identity")
	}
}

func TestMirrorHMovesBlockAndCosts(t *testing.T) {
	g := MustNew(3, 2, 1, []float64{10, 20}, []float64{5}, 1)
	g.Block(g.Index(0, 1, 0))
	out := MirrorH(g)
	if !out.Blocked(out.Index(2, 1, 0)) {
		t.Error("MirrorH should move block from h=0 to h=2")
	}
	if out.DX[0] != 20 || out.DX[1] != 10 {
		t.Errorf("MirrorH DX = %v, want reversed", out.DX)
	}
}

func TestMirrorZMovesBlock(t *testing.T) {
	g, _ := NewUniform(2, 2, 3, 1)
	g.Block(g.Index(1, 1, 0))
	out := MirrorZ(g)
	if !out.Blocked(out.Index(1, 1, 2)) {
		t.Error("MirrorZ should move block from m=0 to m=2")
	}
}

func TestAllAugmentations(t *testing.T) {
	augs := AllAugmentations()
	if len(augs) != 16 {
		t.Fatalf("augmentations = %d, want 16", len(augs))
	}
	if !augs[0].Identity() {
		t.Error("first augmentation should be the identity")
	}
	seen := map[Aug]bool{}
	for _, a := range augs {
		if seen[a] {
			t.Errorf("duplicate augmentation %+v", a)
		}
		seen[a] = true
	}
}

func TestAugApplyConsistentWithApplyCoord(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := randomGraph(r, 5, 4, 3)
	for _, a := range AllAugmentations() {
		out := a.Apply(g)
		for h := 0; h < g.H; h++ {
			for v := 0; v < g.V; v++ {
				for m := 0; m < g.M; m++ {
					src := Coord{h, v, m}
					dst := a.ApplyCoord(g.H, g.V, g.M, src)
					if !out.InBounds(dst) {
						t.Fatalf("aug %+v maps %v out of bounds to %v", a, src, dst)
					}
					if g.BlockedCoord(src) != out.BlockedCoord(dst) {
						t.Fatalf("aug %+v: blocked mismatch at %v -> %v", a, src, dst)
					}
				}
			}
		}
	}
}

func TestAugApplyArrayMatchesApplyCoord(t *testing.T) {
	h, v, m := 4, 3, 2
	arr := make([]float64, h*v*m)
	for i := range arr {
		arr[i] = float64(i)
	}
	for _, a := range AllAugmentations() {
		out := a.ApplyArray(h, v, m, arr)
		h2, v2 := h, v
		if a.Rot%2 == 1 {
			h2, v2 = v, h
		}
		for hh := 0; hh < h; hh++ {
			for vv := 0; vv < v; vv++ {
				for mm := 0; mm < m; mm++ {
					dst := a.ApplyCoord(h, v, m, Coord{hh, vv, mm})
					src := (hh*v+vv)*m + mm
					di := (dst.H*v2+dst.V)*m + dst.M
					if out[di] != arr[src] {
						t.Fatalf("aug %+v: array[%d]=%v, want %v (coord %v->%v)",
							a, di, out[di], arr[src], Coord{hh, vv, mm}, dst)
					}
				}
			}
		}
		_ = h2
	}
}

func TestAugApplyIdentityCopies(t *testing.T) {
	g, _ := NewUniform(3, 3, 1, 1)
	out := Aug{}.Apply(g)
	if out == g {
		t.Error("identity Apply should return a copy")
	}
	arr := []float64{1, 2, 3}
	a2 := Aug{}.ApplyArray(3, 1, 1, arr)
	a2[0] = 99
	if arr[0] == 99 {
		t.Error("identity ApplyArray should return a copy")
	}
}

func TestAugmentationPreservesEdgeBlocking(t *testing.T) {
	// A single explicitly blocked X edge must remain blocked (as some
	// oriented edge between the mapped endpoints) under every augmentation.
	g, _ := NewUniform(4, 3, 2, 1)
	g.BlockEdgeX(1, 2, 0) // between (1,2,0) and (2,2,0)
	for _, a := range AllAugmentations() {
		out := a.Apply(g)
		p := a.ApplyCoord(4, 3, 2, Coord{1, 2, 0})
		q := a.ApplyCoord(4, 3, 2, Coord{2, 2, 0})
		blocked := false
		switch {
		case p.V == q.V && p.M == q.M && abs(p.H-q.H) == 1:
			blocked = out.EdgeXBlocked(min(p.H, q.H), p.V, p.M)
		case p.H == q.H && p.M == q.M && abs(p.V-q.V) == 1:
			blocked = out.EdgeYBlocked(p.H, min(p.V, q.V), p.M)
		default:
			t.Fatalf("aug %+v: endpoints no longer adjacent: %v %v", a, p, q)
		}
		if !blocked {
			t.Errorf("aug %+v: blocked edge lost between %v and %v", a, p, q)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
