// Package grid implements the 2-D and 3-D Hanan grid graphs on which the
// ML-OARSMT router operates (paper §2.2).
//
// A Graph has H columns (the x axis), V rows (the y axis) and M routing
// layers. Vertices are addressed either by their (h, v, m) grid coordinate
// or by a linear VertexID. The linear index is chosen so that VertexID order
// equals the lexicographic order of (h, v, m), which is exactly the
// selection-priority order the combinatorial MCTS relies on (paper §3.4).
//
// Edge costs follow the Hanan-graph model: the cost of moving between
// adjacent columns h and h+1 is DX[h] for every row and layer (it is the
// geometric distance between the two grid lines), the cost between adjacent
// rows is DY[v], and every layer crossing costs ViaCost. Costs may be
// arbitrary positive values, which is what lets the router handle "any
// routing costs between grids".
//
// Obstacles block vertices (a vertex strictly inside an obstacle) and may
// additionally block individual edges whose interior crosses an obstacle,
// which happens when a Hanan cell spans an obstacle wider than one grid
// step.
package grid

import (
	"fmt"
	"math"

	"oarsmt/internal/errs"
)

// VertexID is the linear index of a grid vertex. IDs are assigned so that
// increasing ID order equals lexicographic (h, v, m) order.
type VertexID int32

// Coord is a grid coordinate triple.
type Coord struct {
	H, V, M int
}

// Less reports whether c has a higher selection priority than o, i.e. a
// smaller lexicographic (h, v, m) order (paper §3.4).
func (c Coord) Less(o Coord) bool {
	if c.H != o.H {
		return c.H < o.H
	}
	if c.V != o.V {
		return c.V < o.V
	}
	return c.M < o.M
}

// String implements fmt.Stringer.
func (c Coord) String() string {
	return fmt.Sprintf("(%d,%d,%d)", c.H, c.V, c.M)
}

// Graph is a 3-D Hanan grid graph.
type Graph struct {
	H, V, M int

	// DX[h] is the routing cost between columns h and h+1 (len H-1).
	// DY[v] is the routing cost between rows v and v+1 (len V-1).
	DX, DY []float64

	// ViaCost is the cost of one layer crossing, identical for every
	// vertex within a layout (paper §3.3) but varying across layouts.
	ViaCost float64

	// XCoord and YCoord are the original-space coordinates of the grid
	// lines when the graph was derived from a geometric layout; nil for
	// directly generated grids.
	XCoord, YCoord []int

	// HScale and VScale are optional per-layer multipliers on horizontal
	// (DX) and vertical (DY) edge costs, modelling preferred-direction
	// routing layers: a layer whose VScale exceeds its HScale is a
	// horizontal-preferred layer and vice versa. Nil means 1.0 everywhere.
	// Set them with SetLayerScales so lengths are validated.
	HScale, VScale []float64

	blocked []bool // vertex blocked, indexed by VertexID

	// blockedEX marks X-oriented edges between (h,v,m) and (h+1,v,m),
	// indexed by edgeXIndex. Nil when no edge is individually blocked.
	blockedEX []bool
	// blockedEY marks Y-oriented edges between (h,v,m) and (h,v+1,m).
	blockedEY []bool
}

// New returns a grid graph with the given dimensions and per-interval
// costs. DX must have length H-1 and DY length V-1; costs must be positive.
func New(h, v, m int, dx, dy []float64, viaCost float64) (*Graph, error) {
	if h < 1 || v < 1 || m < 1 {
		return nil, fmt.Errorf("%w: grid: dimensions must be >= 1, got %dx%dx%d", errs.ErrInvalidLayout, h, v, m)
	}
	// VertexID is an int32; reject grids whose linear index space would
	// overflow it (also guards the h*v*m allocations below against
	// attacker-controlled dimensions).
	if int64(h)*int64(v)*int64(m) > math.MaxInt32 {
		return nil, fmt.Errorf("%w: grid: %dx%dx%d = %d vertices exceeds the %d-vertex limit",
			errs.ErrInvalidLayout, h, v, m, int64(h)*int64(v)*int64(m), math.MaxInt32)
	}
	if len(dx) != h-1 {
		return nil, fmt.Errorf("%w: grid: len(dx) = %d, want H-1 = %d", errs.ErrInvalidLayout, len(dx), h-1)
	}
	if len(dy) != v-1 {
		return nil, fmt.Errorf("%w: grid: len(dy) = %d, want V-1 = %d", errs.ErrInvalidLayout, len(dy), v-1)
	}
	for i, c := range dx {
		if !(c > 0) || math.IsInf(c, 1) {
			return nil, fmt.Errorf("%w: grid: dx[%d] = %v, want finite > 0", errs.ErrInvalidLayout, i, c)
		}
	}
	for i, c := range dy {
		if !(c > 0) || math.IsInf(c, 1) {
			return nil, fmt.Errorf("%w: grid: dy[%d] = %v, want finite > 0", errs.ErrInvalidLayout, i, c)
		}
	}
	if !(viaCost > 0) || math.IsInf(viaCost, 1) {
		return nil, fmt.Errorf("%w: grid: via cost = %v, want finite > 0", errs.ErrInvalidLayout, viaCost)
	}
	return &Graph{
		H: h, V: v, M: m,
		DX: dx, DY: dy,
		ViaCost: viaCost,
		blocked: make([]bool, h*v*m),
	}, nil
}

// NewUniform returns a grid graph whose every horizontal and vertical step
// costs 1.
func NewUniform(h, v, m int, viaCost float64) (*Graph, error) {
	dx := make([]float64, max(h-1, 0))
	dy := make([]float64, max(v-1, 0))
	for i := range dx {
		dx[i] = 1
	}
	for i := range dy {
		dy[i] = 1
	}
	return New(h, v, m, dx, dy, viaCost)
}

// MustNew is New but panics on error; intended for tests and literals with
// known-good parameters.
func MustNew(h, v, m int, dx, dy []float64, viaCost float64) *Graph {
	g, err := New(h, v, m, dx, dy, viaCost)
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices returns H*V*M.
func (g *Graph) NumVertices() int { return g.H * g.V * g.M }

// Index returns the linear VertexID of (h, v, m). The encoding preserves
// lexicographic order: Index(a) < Index(b) iff a is lexicographically
// smaller than b.
func (g *Graph) Index(h, v, m int) VertexID {
	return VertexID((h*g.V+v)*g.M + m)
}

// IndexOf returns the linear VertexID of a Coord.
func (g *Graph) IndexOf(c Coord) VertexID { return g.Index(c.H, c.V, c.M) }

// CoordOf returns the grid coordinate of a VertexID.
func (g *Graph) CoordOf(id VertexID) Coord {
	i := int(id)
	m := i % g.M
	i /= g.M
	v := i % g.V
	h := i / g.V
	return Coord{H: h, V: v, M: m}
}

// InBounds reports whether the coordinate lies inside the grid.
func (g *Graph) InBounds(c Coord) bool {
	return 0 <= c.H && c.H < g.H && 0 <= c.V && c.V < g.V && 0 <= c.M && c.M < g.M
}

// Blocked reports whether the vertex is an obstacle.
func (g *Graph) Blocked(id VertexID) bool { return g.blocked[id] }

// BlockedCoord reports whether the vertex at c is an obstacle.
func (g *Graph) BlockedCoord(c Coord) bool { return g.blocked[g.IndexOf(c)] }

// Block marks the vertex as an obstacle.
func (g *Graph) Block(id VertexID) { g.blocked[id] = true }

// Unblock clears the obstacle mark of the vertex.
func (g *Graph) Unblock(id VertexID) { g.blocked[id] = false }

// NumBlocked returns the number of obstacle vertices.
func (g *Graph) NumBlocked() int {
	n := 0
	for _, b := range g.blocked {
		if b {
			n++
		}
	}
	return n
}

func (g *Graph) edgeXIndex(h, v, m int) int { return (h*g.V+v)*g.M + m } // h in [0,H-2]
func (g *Graph) edgeYIndex(h, v, m int) int { return (h*(g.V-1)+v)*g.M + m }

// BlockEdgeX marks the edge between (h,v,m) and (h+1,v,m) as blocked.
func (g *Graph) BlockEdgeX(h, v, m int) {
	if g.blockedEX == nil {
		g.blockedEX = make([]bool, max(g.H-1, 0)*g.V*g.M)
	}
	g.blockedEX[g.edgeXIndex(h, v, m)] = true
}

// BlockEdgeY marks the edge between (h,v,m) and (h,v+1,m) as blocked.
func (g *Graph) BlockEdgeY(h, v, m int) {
	if g.blockedEY == nil {
		g.blockedEY = make([]bool, g.H*max(g.V-1, 0)*g.M)
	}
	g.blockedEY[g.edgeYIndex(h, v, m)] = true
}

// EdgeXBlocked reports whether the edge between (h,v,m) and (h+1,v,m) is
// blocked, either explicitly or because one endpoint is an obstacle vertex.
func (g *Graph) EdgeXBlocked(h, v, m int) bool {
	if g.blocked[g.Index(h, v, m)] || g.blocked[g.Index(h+1, v, m)] {
		return true
	}
	return g.blockedEX != nil && g.blockedEX[g.edgeXIndex(h, v, m)]
}

// EdgeYBlocked reports whether the edge between (h,v,m) and (h,v+1,m) is
// blocked, either explicitly or because one endpoint is an obstacle vertex.
func (g *Graph) EdgeYBlocked(h, v, m int) bool {
	if g.blocked[g.Index(h, v, m)] || g.blocked[g.Index(h, v+1, m)] {
		return true
	}
	return g.blockedEY != nil && g.blockedEY[g.edgeYIndex(h, v, m)]
}

// EdgeZBlocked reports whether the via between (h,v,m) and (h,v,m+1) is
// blocked; vias are blocked only through obstacle vertices.
func (g *Graph) EdgeZBlocked(h, v, m int) bool {
	return g.blocked[g.Index(h, v, m)] || g.blocked[g.Index(h, v, m+1)]
}

// SetLayerScales installs per-layer preferred-direction multipliers; both
// slices must have length M with positive entries, or be nil to clear.
func (g *Graph) SetLayerScales(hScale, vScale []float64) error {
	check := func(name string, s []float64) error {
		if s == nil {
			return nil
		}
		if len(s) != g.M {
			return fmt.Errorf("%w: grid: %s has %d entries for %d layers", errs.ErrInvalidLayout, name, len(s), g.M)
		}
		for i, v := range s {
			if !(v > 0) || math.IsInf(v, 1) {
				return fmt.Errorf("%w: grid: %s[%d] = %v, want finite > 0", errs.ErrInvalidLayout, name, i, v)
			}
		}
		return nil
	}
	if err := check("HScale", hScale); err != nil {
		return err
	}
	if err := check("VScale", vScale); err != nil {
		return err
	}
	g.HScale, g.VScale = hScale, vScale
	return nil
}

// CostX returns the cost of moving between columns h and h+1 on layer m,
// including the layer's preferred-direction multiplier.
func (g *Graph) CostX(h, m int) float64 {
	c := g.DX[h]
	if g.HScale != nil {
		c *= g.HScale[m]
	}
	return c
}

// CostY returns the cost of moving between rows v and v+1 on layer m,
// including the layer's preferred-direction multiplier.
func (g *Graph) CostY(v, m int) float64 {
	c := g.DY[v]
	if g.VScale != nil {
		c *= g.VScale[m]
	}
	return c
}

// MaxEdgeCost returns the maximum over all (scaled) edge costs and the via
// cost; the feature encoder normalises cost channels by this value (paper
// §3.3).
func (g *Graph) MaxEdgeCost() float64 {
	maxScale := func(s []float64) float64 {
		out := 1.0
		for _, v := range s {
			if v > out {
				out = v
			}
		}
		return out
	}
	m := g.ViaCost
	hs, vs := maxScale(g.HScale), maxScale(g.VScale)
	for _, c := range g.DX {
		if c*hs > m {
			m = c * hs
		}
	}
	for _, c := range g.DY {
		if c*vs > m {
			m = c * vs
		}
	}
	return m
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		H: g.H, V: g.V, M: g.M,
		DX:      append([]float64(nil), g.DX...),
		DY:      append([]float64(nil), g.DY...),
		ViaCost: g.ViaCost,
		blocked: append([]bool(nil), g.blocked...),
	}
	if g.XCoord != nil {
		c.XCoord = append([]int(nil), g.XCoord...)
	}
	if g.YCoord != nil {
		c.YCoord = append([]int(nil), g.YCoord...)
	}
	if g.blockedEX != nil {
		c.blockedEX = append([]bool(nil), g.blockedEX...)
	}
	if g.blockedEY != nil {
		c.blockedEY = append([]bool(nil), g.blockedEY...)
	}
	if g.HScale != nil {
		c.HScale = append([]float64(nil), g.HScale...)
	}
	if g.VScale != nil {
		c.VScale = append([]float64(nil), g.VScale...)
	}
	return c
}

// Neighbors appends to buf the usable (vertexID, edge cost) pairs adjacent
// to id and returns the extended slice. Blocked vertices and blocked edges
// are skipped. The six possible neighbours follow the -h, +h, -v, +v, -m,
// +m order.
func (g *Graph) Neighbors(id VertexID, buf []Neighbor) []Neighbor {
	c := g.CoordOf(id)
	h, v, m := c.H, c.V, c.M
	hs, vs := 1.0, 1.0
	if g.HScale != nil {
		hs = g.HScale[m]
	}
	if g.VScale != nil {
		vs = g.VScale[m]
	}
	if h > 0 && !g.EdgeXBlocked(h-1, v, m) {
		buf = append(buf, Neighbor{ID: g.Index(h-1, v, m), Cost: g.DX[h-1] * hs})
	}
	if h < g.H-1 && !g.EdgeXBlocked(h, v, m) {
		buf = append(buf, Neighbor{ID: g.Index(h+1, v, m), Cost: g.DX[h] * hs})
	}
	if v > 0 && !g.EdgeYBlocked(h, v-1, m) {
		buf = append(buf, Neighbor{ID: g.Index(h, v-1, m), Cost: g.DY[v-1] * vs})
	}
	if v < g.V-1 && !g.EdgeYBlocked(h, v, m) {
		buf = append(buf, Neighbor{ID: g.Index(h, v+1, m), Cost: g.DY[v] * vs})
	}
	if m > 0 && !g.EdgeZBlocked(h, v, m-1) {
		buf = append(buf, Neighbor{ID: g.Index(h, v, m-1), Cost: g.ViaCost})
	}
	if m < g.M-1 && !g.EdgeZBlocked(h, v, m) {
		buf = append(buf, Neighbor{ID: g.Index(h, v, m+1), Cost: g.ViaCost})
	}
	return buf
}

// Neighbor is one usable adjacency returned by Graph.Neighbors.
type Neighbor struct {
	ID   VertexID
	Cost float64
}

// EdgeCost returns the cost of the edge between two adjacent vertices; it
// panics if the vertices are not grid-adjacent. It does not check blocking.
func (g *Graph) EdgeCost(a, b VertexID) float64 {
	ca, cb := g.CoordOf(a), g.CoordOf(b)
	dh, dv, dm := cb.H-ca.H, cb.V-ca.V, cb.M-ca.M
	switch {
	case dv == 0 && dm == 0 && (dh == 1 || dh == -1):
		return g.CostX(min(ca.H, cb.H), ca.M)
	case dh == 0 && dm == 0 && (dv == 1 || dv == -1):
		return g.CostY(min(ca.V, cb.V), ca.M)
	case dh == 0 && dv == 0 && (dm == 1 || dm == -1):
		return g.ViaCost
	}
	panic(fmt.Sprintf("grid: EdgeCost of non-adjacent vertices %v and %v", ca, cb))
}

// ObstacleAreaRatio returns the fraction of vertices that are blocked. For
// directly generated grids this is the "obstacle ratio" used by Fig 10 of
// the paper (area of obstacles over the overall layout area).
func (g *Graph) ObstacleAreaRatio() float64 {
	return float64(g.NumBlocked()) / float64(g.NumVertices())
}
