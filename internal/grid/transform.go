package grid

// Geometric transforms used for training-data augmentation (paper §3.6):
// rotations of the H-V plane by 0/90/180/270 degrees and reflections across
// the y and z axes, yielding 16 variants of every sample. The same
// transforms must be applied to the per-vertex label arrays produced by the
// combinatorial MCTS, so each transform exists both for graphs and for raw
// []float64 vertex arrays.
//
// Transformed graphs drop their original-coordinate arrays (XCoord/YCoord):
// augmentation is only meaningful for directly generated training grids.

// Aug describes one augmentation: Rot quarter-turn counter-clockwise
// rotations (0-3) followed by an optional reflection across the y axis
// (flipping the H/x direction) and an optional reflection across the z axis
// (flipping the layer order).
type Aug struct {
	Rot  int
	MirH bool
	MirZ bool
}

// Identity reports whether the augmentation leaves samples unchanged.
func (a Aug) Identity() bool { return a.Rot%4 == 0 && !a.MirH && !a.MirZ }

// AllAugmentations returns the 16 augmentations of the paper's schedule
// (4 rotations x 2 y-reflections x 2 z-reflections). The first entry is the
// identity.
func AllAugmentations() []Aug {
	augs := make([]Aug, 0, 16)
	for _, mz := range []bool{false, true} {
		for _, mh := range []bool{false, true} {
			for rot := 0; rot < 4; rot++ {
				augs = append(augs, Aug{Rot: rot, MirH: mh, MirZ: mz})
			}
		}
	}
	return augs
}

// Apply returns the transformed graph.
func (a Aug) Apply(g *Graph) *Graph {
	out := g
	for i := 0; i < a.Rot%4; i++ {
		out = Rotate90(out)
	}
	if a.MirH {
		out = MirrorH(out)
	}
	if a.MirZ {
		out = MirrorZ(out)
	}
	if out == g { // identity: still hand back a private copy
		out = g.Clone()
	}
	return out
}

// ApplyArray returns the per-vertex array transformed consistently with
// Apply. h, v, m are the dimensions of the graph the array belongs to
// (before transformation).
func (a Aug) ApplyArray(h, v, m int, arr []float64) []float64 {
	out := arr
	ch, cv := h, v
	for i := 0; i < a.Rot%4; i++ {
		out = rotate90Array(ch, cv, m, out)
		ch, cv = cv, ch
	}
	if a.MirH {
		out = mirrorHArray(ch, cv, m, out)
	}
	if a.MirZ {
		out = mirrorZArray(ch, cv, m, out)
	}
	if len(out) > 0 && &out[0] == &arr[0] { // identity: copy for safety
		out = append([]float64(nil), arr...)
	}
	return out
}

// ApplyCoord maps a grid coordinate through the augmentation. h, v, m are
// the pre-transform dimensions.
func (a Aug) ApplyCoord(h, v, m int, c Coord) Coord {
	ch, cv := h, v
	for i := 0; i < a.Rot%4; i++ {
		// CCW rotation: (h, v) -> (cv-1-v, h), dims swap.
		c = Coord{H: cv - 1 - c.V, V: c.H, M: c.M}
		ch, cv = cv, ch
	}
	if a.MirH {
		c = Coord{H: ch - 1 - c.H, V: c.V, M: c.M}
	}
	if a.MirZ {
		c = Coord{H: c.H, V: c.V, M: m - 1 - c.M}
	}
	return c
}

// Rotate90 returns the graph rotated 90 degrees counter-clockwise in the
// H-V plane: old vertex (h, v, m) moves to (V-1-v, h, m) and the grid
// dimensions swap.
func Rotate90(g *Graph) *Graph {
	h2, v2 := g.V, g.H
	dx2 := make([]float64, h2-1)
	for i := range dx2 {
		dx2[i] = g.DY[g.V-2-i]
	}
	dy2 := make([]float64, v2-1)
	for i := range dy2 {
		dy2[i] = g.DX[i]
	}
	out := MustNew(h2, v2, g.M, dx2, dy2, g.ViaCost)
	// Rotating the plane swaps the roles of the two in-layer directions.
	out.HScale = copyScale(g.VScale)
	out.VScale = copyScale(g.HScale)
	for h := 0; h < g.H; h++ {
		for v := 0; v < g.V; v++ {
			for m := 0; m < g.M; m++ {
				if g.blocked[g.Index(h, v, m)] {
					out.Block(out.Index(g.V-1-v, h, m))
				}
			}
		}
	}
	if g.blockedEX != nil || g.blockedEY != nil {
		// Old X edge (h,v)-(h+1,v) becomes new Y edge (V-1-v, h)-(V-1-v, h+1).
		for h := 0; h < g.H-1; h++ {
			for v := 0; v < g.V; v++ {
				for m := 0; m < g.M; m++ {
					if g.blockedEX != nil && g.blockedEX[g.edgeXIndex(h, v, m)] {
						out.BlockEdgeY(g.V-1-v, h, m)
					}
				}
			}
		}
		// Old Y edge (h,v)-(h,v+1) becomes new X edge (V-2-v, h)-(V-1-v, h).
		for h := 0; h < g.H; h++ {
			for v := 0; v < g.V-1; v++ {
				for m := 0; m < g.M; m++ {
					if g.blockedEY != nil && g.blockedEY[g.edgeYIndex(h, v, m)] {
						out.BlockEdgeX(g.V-2-v, h, m)
					}
				}
			}
		}
	}
	return out
}

// MirrorH returns the graph reflected across the y axis: old vertex
// (h, v, m) moves to (H-1-h, v, m).
func MirrorH(g *Graph) *Graph {
	dx2 := make([]float64, len(g.DX))
	for i := range dx2 {
		dx2[i] = g.DX[len(g.DX)-1-i]
	}
	out := MustNew(g.H, g.V, g.M, dx2, append([]float64(nil), g.DY...), g.ViaCost)
	out.HScale = copyScale(g.HScale)
	out.VScale = copyScale(g.VScale)
	for h := 0; h < g.H; h++ {
		for v := 0; v < g.V; v++ {
			for m := 0; m < g.M; m++ {
				if g.blocked[g.Index(h, v, m)] {
					out.Block(out.Index(g.H-1-h, v, m))
				}
			}
		}
	}
	for h := 0; h < g.H-1 && g.blockedEX != nil; h++ {
		for v := 0; v < g.V; v++ {
			for m := 0; m < g.M; m++ {
				if g.blockedEX[g.edgeXIndex(h, v, m)] {
					out.BlockEdgeX(g.H-2-h, v, m)
				}
			}
		}
	}
	for h := 0; h < g.H && g.blockedEY != nil; h++ {
		for v := 0; v < g.V-1; v++ {
			for m := 0; m < g.M; m++ {
				if g.blockedEY[g.edgeYIndex(h, v, m)] {
					out.BlockEdgeY(g.H-1-h, v, m)
				}
			}
		}
	}
	return out
}

// MirrorZ returns the graph with the layer order reversed: old vertex
// (h, v, m) moves to (h, v, M-1-m).
func MirrorZ(g *Graph) *Graph {
	out := MustNew(g.H, g.V, g.M,
		append([]float64(nil), g.DX...),
		append([]float64(nil), g.DY...), g.ViaCost)
	out.HScale = reverseScale(g.HScale)
	out.VScale = reverseScale(g.VScale)
	for h := 0; h < g.H; h++ {
		for v := 0; v < g.V; v++ {
			for m := 0; m < g.M; m++ {
				if g.blocked[g.Index(h, v, m)] {
					out.Block(out.Index(h, v, g.M-1-m))
				}
			}
		}
	}
	for h := 0; h < g.H-1 && g.blockedEX != nil; h++ {
		for v := 0; v < g.V; v++ {
			for m := 0; m < g.M; m++ {
				if g.blockedEX[g.edgeXIndex(h, v, m)] {
					out.BlockEdgeX(h, v, g.M-1-m)
				}
			}
		}
	}
	for h := 0; h < g.H && g.blockedEY != nil; h++ {
		for v := 0; v < g.V-1; v++ {
			for m := 0; m < g.M; m++ {
				if g.blockedEY[g.edgeYIndex(h, v, m)] {
					out.BlockEdgeY(h, v, g.M-1-m)
				}
			}
		}
	}
	return out
}

func copyScale(s []float64) []float64 {
	if s == nil {
		return nil
	}
	return append([]float64(nil), s...)
}

func reverseScale(s []float64) []float64 {
	if s == nil {
		return nil
	}
	out := make([]float64, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

func rotate90Array(h, v, m int, a []float64) []float64 {
	h2, v2 := v, h
	out := make([]float64, len(a))
	for hh := 0; hh < h; hh++ {
		for vv := 0; vv < v; vv++ {
			for mm := 0; mm < m; mm++ {
				nh, nv := v-1-vv, hh
				out[(nh*v2+nv)*m+mm] = a[(hh*v+vv)*m+mm]
			}
		}
	}
	_ = h2
	return out
}

func mirrorHArray(h, v, m int, a []float64) []float64 {
	out := make([]float64, len(a))
	for hh := 0; hh < h; hh++ {
		for vv := 0; vv < v; vv++ {
			for mm := 0; mm < m; mm++ {
				out[((h-1-hh)*v+vv)*m+mm] = a[(hh*v+vv)*m+mm]
			}
		}
	}
	return out
}

func mirrorZArray(h, v, m int, a []float64) []float64 {
	out := make([]float64, len(a))
	for hh := 0; hh < h; hh++ {
		for vv := 0; vv < v; vv++ {
			for mm := 0; mm < m; mm++ {
				out[(hh*v+vv)*m+(m-1-mm)] = a[(hh*v+vv)*m+mm]
			}
		}
	}
	return out
}
