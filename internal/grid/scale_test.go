package grid

import "testing"

func scaledGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewUniform(4, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Layer 0 horizontal-preferred (vertical 3x), layer 1 the reverse.
	if err := g.SetLayerScales([]float64{1, 3}, []float64{3, 1}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSetLayerScalesValidation(t *testing.T) {
	g, _ := NewUniform(3, 3, 2, 1)
	if err := g.SetLayerScales([]float64{1}, nil); err == nil {
		t.Error("wrong-length HScale should fail")
	}
	if err := g.SetLayerScales(nil, []float64{1, 0}); err == nil {
		t.Error("non-positive VScale should fail")
	}
	if err := g.SetLayerScales(nil, nil); err != nil {
		t.Errorf("clearing scales failed: %v", err)
	}
	if err := g.SetLayerScales([]float64{2, 2}, []float64{1, 1}); err != nil {
		t.Errorf("valid scales rejected: %v", err)
	}
}

func TestScaledCosts(t *testing.T) {
	g := scaledGraph(t)
	if got := g.CostX(0, 0); got != 1 {
		t.Errorf("CostX layer 0 = %v, want 1", got)
	}
	if got := g.CostX(0, 1); got != 3 {
		t.Errorf("CostX layer 1 = %v, want 3", got)
	}
	if got := g.CostY(0, 0); got != 3 {
		t.Errorf("CostY layer 0 = %v, want 3", got)
	}
	if got := g.CostY(0, 1); got != 1 {
		t.Errorf("CostY layer 1 = %v, want 1", got)
	}
	// EdgeCost agrees.
	if got := g.EdgeCost(g.Index(1, 1, 1), g.Index(2, 1, 1)); got != 3 {
		t.Errorf("EdgeCost scaled = %v, want 3", got)
	}
	// MaxEdgeCost sees the scaled maximum (1 * 3 = 3 > via 2).
	if got := g.MaxEdgeCost(); got != 3 {
		t.Errorf("MaxEdgeCost = %v, want 3", got)
	}
}

func TestScaledNeighbors(t *testing.T) {
	g := scaledGraph(t)
	nb := g.Neighbors(g.Index(1, 1, 0), nil)
	costs := map[VertexID]float64{}
	for _, n := range nb {
		costs[n.ID] = n.Cost
	}
	if costs[g.Index(2, 1, 0)] != 1 {
		t.Errorf("horizontal neighbour cost = %v, want 1", costs[g.Index(2, 1, 0)])
	}
	if costs[g.Index(1, 2, 0)] != 3 {
		t.Errorf("vertical neighbour cost = %v, want 3 (penalised)", costs[g.Index(1, 2, 0)])
	}
	if costs[g.Index(1, 1, 1)] != 2 {
		t.Errorf("via cost = %v, want 2", costs[g.Index(1, 1, 1)])
	}
}

func TestScalesSurviveCloneAndTransforms(t *testing.T) {
	g := scaledGraph(t)
	c := g.Clone()
	c.HScale[0] = 99
	if g.HScale[0] == 99 {
		t.Error("clone shares scale storage")
	}
	// Rotation swaps directions.
	r := Rotate90(g)
	if r.HScale[0] != g.VScale[0] || r.VScale[1] != g.HScale[1] {
		t.Errorf("rotate scales: H=%v V=%v", r.HScale, r.VScale)
	}
	// MirrorH keeps directions.
	mh := MirrorH(g)
	if mh.HScale[0] != g.HScale[0] || mh.VScale[1] != g.VScale[1] {
		t.Error("mirrorH should keep scales")
	}
	// MirrorZ reverses the layer order.
	mz := MirrorZ(g)
	if mz.HScale[0] != g.HScale[1] || mz.VScale[0] != g.VScale[1] {
		t.Errorf("mirrorZ scales: H=%v V=%v", mz.HScale, mz.VScale)
	}
	// Four rotations restore the scales.
	r4 := Rotate90(Rotate90(Rotate90(Rotate90(g))))
	for m := 0; m < g.M; m++ {
		if r4.HScale[m] != g.HScale[m] || r4.VScale[m] != g.VScale[m] {
			t.Error("four rotations should restore scales")
		}
	}
}
