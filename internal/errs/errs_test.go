package errs

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestSentinelRoundTrips(t *testing.T) {
	for _, sentinel := range []error{ErrTimeout, ErrQueueFull, ErrInvalidLayout, ErrNoPath} {
		wrapped := fmt.Errorf("stage 3: %w", sentinel)
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("errors.Is(wrap(%v), sentinel) = false", sentinel)
		}
		double := fmt.Errorf("outer: %w", wrapped)
		if !errors.Is(double, sentinel) {
			t.Errorf("errors.Is(double-wrap(%v), sentinel) = false", sentinel)
		}
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{ErrTimeout, ErrQueueFull, ErrInvalidLayout, ErrNoPath}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinel %v matches unrelated sentinel %v", a, b)
			}
		}
	}
}

func TestErrTimeoutMatchesDeadlineExceeded(t *testing.T) {
	if !errors.Is(ErrTimeout, context.DeadlineExceeded) {
		t.Error("ErrTimeout does not match context.DeadlineExceeded")
	}
	wrapped := fmt.Errorf("route: %w", ErrTimeout)
	if !errors.Is(wrapped, context.DeadlineExceeded) {
		t.Error("wrapped ErrTimeout does not match context.DeadlineExceeded")
	}
	if errors.Is(ErrTimeout, context.Canceled) {
		t.Error("ErrTimeout matches context.Canceled")
	}
	var te interface{ Timeout() bool }
	if !errors.As(ErrTimeout, &te) || !te.Timeout() {
		t.Error("ErrTimeout does not implement Timeout() bool == true")
	}
}

func TestClassify(t *testing.T) {
	if Classify(nil) != nil {
		t.Error("Classify(nil) != nil")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	got := Classify(ctx.Err())
	if !errors.Is(got, ErrTimeout) {
		t.Errorf("Classify(DeadlineExceeded) = %v, does not match ErrTimeout", got)
	}
	if !errors.Is(got, context.DeadlineExceeded) {
		t.Errorf("Classify lost the context.DeadlineExceeded identity: %v", got)
	}

	// Already-classified errors are not wrapped again.
	if again := Classify(got); again != got {
		t.Errorf("Classify re-wrapped: %v", again)
	}

	// Cancellation and unrelated errors pass through unchanged.
	if got := Classify(context.Canceled); got != context.Canceled {
		t.Errorf("Classify(Canceled) = %v", got)
	}
	other := errors.New("boom")
	if got := Classify(other); got != other {
		t.Errorf("Classify(other) = %v", got)
	}
}
