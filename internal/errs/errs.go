// Package errs holds the canonical sentinel errors of the module. They
// live at the bottom of the dependency graph so every internal package can
// wrap them, while the root package re-exports the same values for callers
// to match with errors.Is — wrapping happens internally, identity is
// shared, and no import cycles arise.
package errs

import (
	"context"
	"errors"
	"fmt"
)

// timeoutError is ErrTimeout's type. Besides matching itself it matches
// context.DeadlineExceeded, so callers switching on errors.Is(err,
// ErrTimeout) and legacy callers checking context.DeadlineExceeded agree.
type timeoutError struct{}

func (timeoutError) Error() string { return "oarsmt: deadline exceeded" }

// Timeout implements the net.Error-style timeout predicate.
func (timeoutError) Timeout() bool { return true }

// Is makes errors.Is(ErrTimeout, context.DeadlineExceeded) true.
func (timeoutError) Is(target error) bool { return target == context.DeadlineExceeded }

var (
	// ErrTimeout reports that a routing call exceeded its deadline. It
	// matches context.DeadlineExceeded under errors.Is.
	ErrTimeout error = timeoutError{}

	// ErrQueueFull reports that the serving queue rejected a submission
	// (backpressure).
	ErrQueueFull = errors.New("oarsmt: queue full")

	// ErrInvalidLayout reports that a layout failed to decode or validate.
	ErrInvalidLayout = errors.New("oarsmt: invalid layout")

	// ErrNoPath reports that a terminal is unreachable on the routing
	// graph.
	ErrNoPath = errors.New("oarsmt: no path")

	// ErrInvalidModel reports a selector model that failed to decode or
	// validate (truncated file, version mismatch, missing or non-finite
	// parameters). The HTTP layer maps it to 422.
	ErrInvalidModel = errors.New("oarsmt: invalid model")

	// ErrInternal reports a failure contained at a service boundary — a
	// recovered panic or an exhausted retry budget. The HTTP layer maps it
	// to 500; the daemon itself stays alive.
	ErrInternal = errors.New("oarsmt: internal error")

	// ErrTransient marks a failure as retryable: the serving scheduler
	// retries operations whose error matches it with capped exponential
	// backoff before giving up. Injected faults (internal/fault) wrap it.
	ErrTransient = errors.New("oarsmt: transient failure")

	// ErrInvalidTree reports that a routed tree violates its structural
	// invariants (unspanned terminal, cycle, blocked vertex, cost
	// mismatch, overlapping nets). Validation entry points wrap it so
	// callers can distinguish "the router produced a bad tree" from "the
	// input was bad".
	ErrInvalidTree = errors.New("oarsmt: invalid tree")

	// ErrInvalidConfig reports an invalid or incomplete configuration
	// passed to a constructor or stage runner (missing selector, empty
	// store directory, checkpoints not enabled, no samples to fit).
	ErrInvalidConfig = errors.New("oarsmt: invalid configuration")

	// ErrClosed reports a submission to a service that has begun
	// draining; the request was not accepted and is safe to resubmit to
	// another replica. The HTTP layer maps it to 503.
	ErrClosed = errors.New("oarsmt: service closed")

	// ErrTooLarge reports a layout above a service's volume budget. The
	// HTTP layer maps it to 413.
	ErrTooLarge = errors.New("oarsmt: layout too large")

	// ErrUnsupportedProto reports a wire-protocol version outside the
	// range a server accepts (see package wire). The HTTP layer maps it
	// to 400.
	ErrUnsupportedProto = errors.New("oarsmt: unsupported protocol version")
)

// Classify wraps context cancellation errors with the module's sentinels:
// a deadline becomes ErrTimeout (still matching context.DeadlineExceeded
// through it), other errors pass through unchanged. Call it at API
// boundaries that run under a caller-supplied context.
func Classify(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrTimeout) {
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	return err
}
