package rl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"

	"oarsmt/internal/ckpt"
	"oarsmt/internal/errs"
	"oarsmt/internal/nn"
	"oarsmt/internal/selector"
)

// detSource is the trainer's random source: splitmix64, chosen over
// math/rand's default source because its entire state is one uint64 and
// therefore serialisable. A resumed trainer restores the state and draws
// the exact sequence an uninterrupted run would have drawn, which is what
// makes crash-and-resume bit-identical. (rand.Rand adds no hidden state on
// top of its source for the methods the trainer uses — only Read buffers,
// and the trainer never calls it.)
type detSource struct{ state uint64 }

func newDetSource(seed int64) *detSource { return &detSource{state: uint64(seed)} }

// Seed implements rand.Source.
func (s *detSource) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 implements rand.Source64 (splitmix64, Steele et al. 2014).
func (s *detSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *detSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// trainerSnapshot is the gob payload of one training checkpoint: every
// piece of mutable trainer state, so Save + Restore + continue is
// bit-identical to never stopping.
type trainerSnapshot struct {
	// ConfigFP fingerprints the (defaulted) training configuration; resume
	// refuses a checkpoint taken under a different configuration, since
	// silently continuing with mismatched hyperparameters would corrupt
	// the run.
	ConfigFP string
	// Stage is the number of completed stages.
	Stage int
	// RNG is the trainer's random-source state.
	RNG uint64
	// Model is the selector in its serialised (gob) form.
	Model []byte
	// Opt is the Adam optimizer's mutable state.
	Opt nn.AdamState
}

// configFingerprint canonicalises a Config for checkpoint compatibility
// checks by encoding every field explicitly, in declaration order. An
// earlier revision used fmt's %+v over the struct, which silently ties the
// checkpoint format to Go's struct printing: adding a field, reordering
// fields, or a fmt formatting change across Go versions would invalidate
// (or worse, alias) every existing checkpoint. The explicit encoding is
// versioned — extend it *and* bump the prefix when Config grows a field —
// and pinned byte-for-byte by TestConfigFingerprintPinned. Floats encode
// with strconv's shortest round-trippable form, so distinct values can
// never collide.
func configFingerprint(cfg Config) string {
	var b strings.Builder
	b.WriteString("rl-config-v2")
	b.WriteString(";sizes=")
	for i, s := range cfg.Sizes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%dx%d", s.HV, s.M)
	}
	f64 := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(&b, ";layoutsPerSize=%d;minPins=%d;maxPins=%d;curriculumStages=%d",
		cfg.LayoutsPerSize, cfg.MinPins, cfg.MaxPins, cfg.CurriculumStages)
	fmt.Fprintf(&b, ";mcts={iterations=%d,scaleIterations=%t,useCritic=%t,cPuct=%s,maxNoChange=%d}",
		cfg.MCTS.Iterations, cfg.MCTS.ScaleIterations, cfg.MCTS.UseCritic,
		f64(cfg.MCTS.CPuct), cfg.MCTS.MaxNoChange)
	fmt.Fprintf(&b, ";augment=%t;batchSize=%d;epochsPerStage=%d;lr=%s;seed=%d",
		cfg.Augment, cfg.BatchSize, cfg.EpochsPerStage, f64(cfg.LR), cfg.Seed)
	return b.String()
}

// EnableCheckpoints makes every completed stage write an atomic,
// checksummed checkpoint into dir, retaining the newest keep files
// (keep <= 0 retains all). Call before the first stage; combine with
// ResumeTrainer to continue an interrupted run.
func (t *Trainer) EnableCheckpoints(dir string, keep int) {
	t.ckptDir, t.ckptKeep = dir, keep
}

// CheckpointDir returns the auto-checkpoint directory ("" when disabled).
func (t *Trainer) CheckpointDir() string { return t.ckptDir }

// snapshot captures the trainer's full mutable state as a gob payload.
func (t *Trainer) snapshot() ([]byte, error) {
	var model bytes.Buffer
	if err := t.Selector.Save(&model); err != nil {
		return nil, err
	}
	snap := trainerSnapshot{
		ConfigFP: configFingerprint(t.Cfg),
		Stage:    t.stage,
		RNG:      t.src.state,
		Model:    model.Bytes(),
		Opt:      t.opt.State(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SaveCheckpoint writes the trainer's state as the checkpoint of the last
// completed stage and applies the retention policy. It is called
// automatically after each stage once EnableCheckpoints is set, and may be
// called directly for ad-hoc snapshots.
func (t *Trainer) SaveCheckpoint() (string, error) {
	if t.ckptDir == "" {
		return "", fmt.Errorf("%w: rl: checkpoints not enabled (call EnableCheckpoints)", errs.ErrInvalidConfig)
	}
	payload, err := t.snapshot()
	if err != nil {
		return "", fmt.Errorf("rl: snapshot stage %d: %w", t.stage, err)
	}
	path, err := ckpt.Save(t.ckptDir, t.stage, payload)
	if err != nil {
		return "", fmt.Errorf("rl: checkpoint stage %d: %w", t.stage, err)
	}
	if err := ckpt.Retain(t.ckptDir, t.ckptKeep); err != nil {
		return "", fmt.Errorf("rl: checkpoint retention: %w", err)
	}
	return path, nil
}

// ResumeTrainer reconstructs a trainer from the newest valid checkpoint in
// dir, transparently skipping corrupt (torn-write) files. The returned
// trainer continues exactly where the checkpointed run stopped: its
// selector, optimizer moments, RNG state and stage counter are restored,
// so subsequent stages are bit-identical to an uninterrupted run. cfg must
// equal the configuration the checkpoint was taken under. Checkpointing
// into dir stays enabled on the returned trainer with retention keep.
func ResumeTrainer(dir string, cfg Config, keep int) (*Trainer, error) {
	entry, payload, err := ckpt.Latest(dir)
	if err != nil {
		return nil, fmt.Errorf("rl: resume from %s: %w", dir, err)
	}
	var snap trainerSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("rl: resume from %s: decode snapshot: %w", entry.Path, err)
	}
	cfg = cfg.withDefaults()
	if fp := configFingerprint(cfg); fp != snap.ConfigFP {
		return nil, fmt.Errorf("rl: resume from %s: config mismatch:\ncheckpoint: %s\ncurrent:    %s",
			entry.Path, snap.ConfigFP, fp)
	}
	sel, err := selector.Load(bytes.NewReader(snap.Model))
	if err != nil {
		return nil, fmt.Errorf("rl: resume from %s: %w", entry.Path, err)
	}
	t := NewTrainer(sel, cfg)
	t.src.state = snap.RNG
	t.stage = snap.Stage
	if err := t.opt.Restore(snap.Opt); err != nil {
		return nil, fmt.Errorf("rl: resume from %s: %w", entry.Path, err)
	}
	t.EnableCheckpoints(dir, keep)
	return t, nil
}
